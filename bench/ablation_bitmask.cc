/**
 * @file
 * Ablation for the §III-D claim that bit-granularity meta-data cache
 * writes are "essential for efficient co-processing": without the
 * 32-bit write-enable mask, every sub-word tag update becomes an
 * explicit read followed by an explicit write (two cache operations).
 */

#include <cstdio>

#include "bench_util.h"

using namespace flexcore;
using namespace flexcore::bench;

int
main()
{
    const auto suite = fullSuite();
    const struct
    {
        MonitorKind kind;
        const char *name;
        u32 period;
    } extensions[] = {
        {MonitorKind::kUmc, "UMC", 2},
        {MonitorKind::kDift, "DIFT", 2},
        {MonitorKind::kBc, "BC", 2},
    };

    std::printf("Ablation: bit-granularity meta-data writes "
                "(SS III-D)\n\n");
    std::printf("Geomean normalized time, with / without the 32-bit "
                "write-enable mask\n");
    std::printf("(without it every sub-word tag update is an explicit "
                "read followed by an explicit write)\n\n");
    std::printf("%-10s %22s %22s\n", "Extension", "fabric @ 0.5X",
                "fabric @ 0.25X");
    hr(60);
    for (const auto &ext : extensions) {
        std::printf("%-10s", ext.name);
        for (u32 period : {2u, 4u}) {
            std::vector<double> with_mask, without_mask;
            for (const Workload &workload : suite) {
                const u64 base = baselineCycles(workload);
                FabricParams on;
                on.bitmask_writes = true;
                with_mask.push_back(
                    normalizedTime(workload, ext.kind,
                                   ImplMode::kFlexFabric, period, base,
                                   {}, on));
                FabricParams off;
                off.bitmask_writes = false;
                without_mask.push_back(
                    normalizedTime(workload, ext.kind,
                                   ImplMode::kFlexFabric, period, base,
                                   {}, off));
            }
            const double g_on = geomean(with_mask);
            const double g_off = geomean(without_mask);
            std::printf("   %5.2fx->%5.2fx (+%2.0f%%)", g_on, g_off,
                        100.0 * (g_off / g_on - 1.0));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("\n(SEC keeps no meta-data and is unaffected. The "
                "effect grows as the fabric clock drops because the "
                "doubled cache occupancy eats directly into a budget "
                "that is already saturated.)\n");
    return 0;
}
