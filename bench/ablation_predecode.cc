/**
 * @file
 * Ablation for the §III-C claim that core-side instruction
 * pre-decoding matters: "our DIFT prototype can run 30% faster by
 * performing the instruction decoding for operands and control signals
 * on the core side." With pre-decoding disabled, every packet spends
 * an extra fabric cycle in a LUT-based decoder before entering the
 * monitor pipeline.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace flexcore;
using namespace flexcore::bench;

int
main()
{
    const auto suite = fullSuite();
    const struct
    {
        MonitorKind kind;
        const char *name;
        u32 period;
    } extensions[] = {
        {MonitorKind::kUmc, "UMC", 2},
        {MonitorKind::kDift, "DIFT", 2},
        {MonitorKind::kBc, "BC", 2},
        {MonitorKind::kSec, "SEC", 4},
    };

    std::printf("Ablation: core-side pre-decoding of forwarded "
                "instructions (SS III-C)\n\n");
    std::printf("%-10s %12s %12s %10s\n", "Extension", "predecode",
                "no-predecode", "slowdown");
    hr(50);
    for (const auto &ext : extensions) {
        std::vector<double> with_pd, without_pd;
        for (const Workload &workload : suite) {
            const u64 base = baselineCycles(workload);
            FabricParams on;
            on.predecode = true;
            with_pd.push_back(normalizedTime(workload, ext.kind,
                                             ImplMode::kFlexFabric,
                                             ext.period, base, {}, on));
            FabricParams off;
            off.predecode = false;
            without_pd.push_back(
                normalizedTime(workload, ext.kind, ImplMode::kFlexFabric,
                               ext.period, base, {}, off));
        }
        const double g_on = geomean(with_pd);
        const double g_off = geomean(without_pd);
        const double slowdown =
            std::max(0.0, 100.0 * (g_off / g_on - 1.0));
        std::printf("%-10s %11.2fx %11.2fx %9.0f%%\n", ext.name, g_on,
                    g_off, slowdown);
        std::fflush(stdout);
    }
    std::printf("\nPaper reference: DIFT runs ~30%% faster with "
                "core-side decoding.\n");
    return 0;
}
