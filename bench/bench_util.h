/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries.
 */

#ifndef FLEXCORE_BENCH_BENCH_UTIL_H_
#define FLEXCORE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/cliopts.h"
#include "common/log.h"
#include "common/stats.h"
#include "sim/campaign.h"

namespace flexcore::bench {

/** Table IV / figure runs use the full-scale benchmark suite. */
inline std::vector<Workload>
fullSuite()
{
    return benchmarkSuite(WorkloadScale::kFull);
}

/** Baseline cycle count for one workload. */
inline u64
baselineCycles(const Workload &workload)
{
    return SimRequest(SystemConfig{})
        .workload(workload)
        .run()
        .result.cycles;
}

/** Normalized execution time of one monitored configuration. */
inline double
normalizedTime(const Workload &workload, MonitorKind monitor,
               ImplMode mode, u32 flex_period, u64 baseline_cycles,
               FlexInterface::Params iface = {},
               FabricParams fabric_overrides = {})
{
    SystemConfig config;
    config.monitor = monitor;
    config.mode = mode;
    // flex_period is a flexcore-mode knob; ASIC and software callers
    // pass a placeholder that config validation would reject.
    config.flex_period =
        mode == ImplMode::kFlexFabric ? flex_period : 0;
    config.iface = iface;
    config.fabric = fabric_overrides;
    const SimOutcome outcome =
        SimRequest(std::move(config)).workload(workload).run();
    return static_cast<double>(outcome.result.cycles) /
           static_cast<double>(baseline_cycles);
}

inline void
hr(int width = 110)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Shared command line of the campaign-based bench binaries. */
struct BenchArgs
{
    CampaignOptions options;
    std::string out_json;   //!< empty = JSON output disabled
};

inline BenchArgs
parseBenchArgs(int argc, char **argv, const char *bench_name)
{
    BenchArgs args;
    args.options.label = bench_name;
    args.options.progress = isatty(STDERR_FILENO);
    args.out_json = std::string(bench_name) + ".json";

    bool no_json = false;
    bool progress = false;
    bool no_progress = false;
    u32 jobs = 0;
    cli::Parser parser(bench_name, "paper-reproduction bench");
    parser.option("--jobs", &jobs, "N",
                  "worker threads (default: all hardware threads)");
    parser.option("--out", &args.out_json, "FILE",
                  "merged campaign JSON path");
    parser.flag("--no-json", &no_json, "disable the JSON output");
    parser.flag("--progress", &progress, "force the progress line on");
    parser.flag("--no-progress", &no_progress,
                "disable the progress line");
    parser.parseOrExit(argc, argv);

    args.options.jobs = jobs;
    if (no_json)
        args.out_json.clear();
    if (progress)
        args.options.progress = true;
    if (no_progress)
        args.options.progress = false;
    return args;
}

/** Cycle count of the campaign row with exactly @p key. */
inline u64
cyclesFor(const std::vector<CampaignResult> &results,
          const std::string &key)
{
    const CampaignResult *row = findResult(results, key);
    if (!row)
        FLEX_PANIC("missing campaign result for key '", key, "'");
    return row->outcome.result.cycles;
}

/** Write the merged table if JSON output is enabled. */
inline void
maybeWriteJson(const BenchArgs &args, const char *bench_name,
               const std::vector<CampaignResult> &results)
{
    if (args.out_json.empty())
        return;
    writeCampaignJson(args.out_json, bench_name, results);
    std::fprintf(stderr, "[%s] wrote %zu results to %s\n", bench_name,
                 results.size(), args.out_json.c_str());
}

}  // namespace flexcore::bench

#endif  // FLEXCORE_BENCH_BENCH_UTIL_H_
