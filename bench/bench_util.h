/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries.
 */

#ifndef FLEXCORE_BENCH_BENCH_UTIL_H_
#define FLEXCORE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/log.h"
#include "sim/campaign.h"
#include "sim/runner.h"

namespace flexcore::bench {

/** Table IV / figure runs use the full-scale benchmark suite. */
inline std::vector<Workload>
fullSuite()
{
    return benchmarkSuite(WorkloadScale::kFull);
}

/** Baseline cycle count for one workload. */
inline u64
baselineCycles(const Workload &workload)
{
    SystemConfig config;
    return runWorkloadChecked(workload, config).result.cycles;
}

/** Normalized execution time of one monitored configuration. */
inline double
normalizedTime(const Workload &workload, MonitorKind monitor,
               ImplMode mode, u32 flex_period, u64 baseline_cycles,
               FlexInterface::Params iface = {},
               FabricParams fabric_overrides = {})
{
    SystemConfig config;
    config.monitor = monitor;
    config.mode = mode;
    config.flex_period = flex_period;
    config.iface = iface;
    config.fabric = fabric_overrides;
    const SimOutcome outcome = runWorkloadChecked(workload, config);
    return static_cast<double>(outcome.result.cycles) /
           static_cast<double>(baseline_cycles);
}

inline void
hr(int width = 110)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Shared command line of the campaign-based bench binaries. */
struct BenchArgs
{
    CampaignOptions options;
    std::string out_json;   //!< empty = JSON output disabled
};

inline BenchArgs
parseBenchArgs(int argc, char **argv, const char *bench_name)
{
    BenchArgs args;
    args.options.label = bench_name;
    args.options.progress = isatty(STDERR_FILENO);
    args.out_json = std::string(bench_name) + ".json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                FLEX_FATAL("option ", arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--jobs") {
            args.options.jobs =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
        } else if (arg == "--out") {
            args.out_json = next();
        } else if (arg == "--no-json") {
            args.out_json.clear();
        } else if (arg == "--progress") {
            args.options.progress = true;
        } else if (arg == "--no-progress") {
            args.options.progress = false;
        } else if (arg == "--help" || arg == "-h") {
            std::fprintf(stderr,
                         "usage: %s [--jobs N] [--out results.json] "
                         "[--no-json] [--[no-]progress]\n",
                         bench_name);
            std::exit(0);
        } else {
            FLEX_FATAL("unknown option ", arg);
        }
    }
    return args;
}

/** Cycle count of the campaign row with exactly @p key. */
inline u64
cyclesFor(const std::vector<CampaignResult> &results,
          const std::string &key)
{
    const CampaignResult *row = findResult(results, key);
    if (!row)
        FLEX_PANIC("missing campaign result for key '", key, "'");
    return row->outcome.result.cycles;
}

/** Write the merged table if JSON output is enabled. */
inline void
maybeWriteJson(const BenchArgs &args, const char *bench_name,
               const std::vector<CampaignResult> &results)
{
    if (args.out_json.empty())
        return;
    writeCampaignJson(args.out_json, bench_name, results);
    std::fprintf(stderr, "[%s] wrote %zu results to %s\n", bench_name,
                 results.size(), args.out_json.c_str());
}

}  // namespace flexcore::bench

#endif  // FLEXCORE_BENCH_BENCH_UTIL_H_
