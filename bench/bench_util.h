/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries.
 */

#ifndef FLEXCORE_BENCH_BENCH_UTIL_H_
#define FLEXCORE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "sim/runner.h"

namespace flexcore::bench {

/** Table IV / figure runs use the full-scale benchmark suite. */
inline std::vector<Workload>
fullSuite()
{
    return benchmarkSuite(WorkloadScale::kFull);
}

/** Baseline cycle count for one workload. */
inline u64
baselineCycles(const Workload &workload)
{
    SystemConfig config;
    return runWorkloadChecked(workload, config).result.cycles;
}

/** Normalized execution time of one monitored configuration. */
inline double
normalizedTime(const Workload &workload, MonitorKind monitor,
               ImplMode mode, u32 flex_period, u64 baseline_cycles,
               FlexInterface::Params iface = {},
               FabricParams fabric_overrides = {})
{
    SystemConfig config;
    config.monitor = monitor;
    config.mode = mode;
    config.flex_period = flex_period;
    config.iface = iface;
    config.fabric = fabric_overrides;
    const SimOutcome outcome = runWorkloadChecked(workload, config);
    return static_cast<double>(outcome.result.cycles) /
           static_cast<double>(baseline_cycles);
}

inline void
hr(int width = 110)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

}  // namespace flexcore::bench

#endif  // FLEXCORE_BENCH_BENCH_UTIL_H_
