/**
 * @file
 * Design-space ablation: the optional meta-data TLB (§III-B lists a
 * TLB as part of the meta-data memory subsystem when virtual memory is
 * supported; the paper's prototype omits it). This sweep quantifies
 * what the prototype avoided: the cost of translating every meta-data
 * access, as a function of TLB reach.
 */

#include <cstdio>

#include "bench_util.h"

using namespace flexcore;
using namespace flexcore::bench;

int
main()
{
    const auto suite = fullSuite();
    const struct
    {
        MonitorKind kind;
        const char *name;
        u32 period;
    } extensions[] = {
        {MonitorKind::kUmc, "UMC", 2},
        {MonitorKind::kDift, "DIFT", 2},
        {MonitorKind::kBc, "BC", 2},
    };

    std::printf("Ablation: meta-data TLB (geomean normalized time, "
                "fabric at 0.5X)\n\n");
    std::printf("%-14s", "TLB");
    for (const auto &ext : extensions)
        std::printf(" %8s", ext.name);
    std::printf("\n");
    hr(44);

    const struct
    {
        const char *label;
        bool enabled;
        u32 entries;
    } configs[] = {
        {"off (paper)", false, 0},
        {"4 entries", true, 4},
        {"16 entries", true, 16},
        {"64 entries", true, 64},
    };
    for (const auto &tlb_config : configs) {
        std::printf("%-14s", tlb_config.label);
        for (const auto &ext : extensions) {
            std::vector<double> ratios;
            for (const Workload &workload : suite) {
                const u64 base = baselineCycles(workload);
                FabricParams fabric;
                fabric.tlb.enabled = tlb_config.enabled;
                if (tlb_config.enabled)
                    fabric.tlb.entries = tlb_config.entries;
                ratios.push_back(
                    normalizedTime(workload, ext.kind,
                                   ImplMode::kFlexFabric, ext.period,
                                   base, {}, fabric));
            }
            std::printf(" %8.3f", geomean(ratios));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("\nA small TLB suffices: meta-data is 8-32x denser "
                "than program data, so a 16-entry TLB already covers "
                "hundreds of KB of program footprint.\n");
    return 0;
}
