/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot components:
 * instruction decode, cache lookups, the forward FIFO path, monitor
 * packet processing, whole-system simulation throughput, and the
 * assembler. These guard the simulator's own performance (Table IV
 * sweeps run hundreds of full simulations).
 */

#include <benchmark/benchmark.h>

#include "assembler/assembler.h"
#include "common/rng.h"
#include "isa/encoding.h"
#include "memory/cache.h"
#include "monitors/dift.h"
#include "sim/sim_request.h"

using namespace flexcore;

namespace {

void
BM_Decode(benchmark::State &state)
{
    Rng rng(7);
    std::vector<u32> words;
    for (int i = 0; i < 1024; ++i) {
        Instruction inst;
        inst.op = Op::kAdd;
        inst.rd = rng.below(32);
        inst.rs1 = rng.below(32);
        inst.has_imm = true;
        inst.simm = static_cast<s32>(rng.below(4096));
        words.push_back(encode(inst));
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(decode(words[i++ & 1023]));
    }
}
BENCHMARK(BM_Decode);

void
BM_CacheAccess(benchmark::State &state)
{
    StatGroup stats("bench");
    Cache cache(&stats, "l1", {32 * 1024, 32, 4});
    Rng rng(11);
    std::vector<Addr> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back(rng.below(1u << 18) & ~3u);
    size_t i = 0;
    for (auto _ : state) {
        const Addr addr = addrs[i++ & 4095];
        if (!cache.access(addr))
            cache.fill(addr);
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_DiftProcess(benchmark::State &state)
{
    DiftMonitor monitor;
    CommitPacket pkt;
    pkt.di.op = Op::kAdd;
    pkt.di.type = kTypeAluAdd;
    pkt.di.valid = true;
    pkt.opcode = kTypeAluAdd;
    pkt.src1 = 9;
    pkt.src2 = 10;
    pkt.dest = 11;
    for (auto _ : state) {
        MonitorResult result;
        monitor.process(pkt, &result);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_DiftProcess);

void
BM_Assemble(benchmark::State &state)
{
    const Workload workload = makeBitcount(WorkloadScale::kTest);
    for (auto _ : state) {
        Assembler assembler;
        Program program;
        const bool ok = assembler.assemble(workload.source, &program);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_Assemble);

void
BM_SimBaseline(benchmark::State &state)
{
    const Workload workload = makeSha(WorkloadScale::kTest);
    const Program program = Assembler::assembleOrDie(workload.source);
    u64 cycles_per_run = 0;
    for (auto _ : state) {
        SystemConfig config;
        System system(config);
        system.load(program);
        const RunResult result = system.run();
        cycles_per_run = result.cycles;
        benchmark::DoNotOptimize(result.cycles);
    }
    // items/s == simulated cycles per second of host time.
    state.SetItemsProcessed(state.iterations() *
                            static_cast<s64>(cycles_per_run));
}
BENCHMARK(BM_SimBaseline);

void
BM_SimDiftFabric(benchmark::State &state)
{
    const Workload workload = makeSha(WorkloadScale::kTest);
    const Program program = Assembler::assembleOrDie(workload.source);
    for (auto _ : state) {
        SystemConfig config;
        config.monitor = MonitorKind::kDift;
        config.mode = ImplMode::kFlexFabric;
        System system(config);
        system.load(program);
        const RunResult result = system.run();
        benchmark::DoNotOptimize(result.cycles);
    }
}
BENCHMARK(BM_SimDiftFabric);

}  // namespace

BENCHMARK_MAIN();
