/**
 * @file
 * Reproduces Table III: area, power, and maximum operating frequency
 * of the baseline Leon3, the four full-ASIC extensions, the dedicated
 * FlexCore modules, and the four extensions mapped onto the Flex
 * fabric (Kuon-Rose area model, LUT-level timing model, and a
 * Virtex-5-spreadsheet-style power model — the paper's methodology).
 */

#include <cstdio>

#include "synth/report.h"

using namespace flexcore;

int
main()
{
    std::printf("Table III: area, power, and frequency of the FlexCore "
                "architecture\n\n");
    std::fputs(renderSynthesisTable(synthesisTable()).c_str(), stdout);
    std::printf(
        "\nPaper values for comparison:\n"
        "  Baseline 465MHz / 835,525um^2 / 365mW\n"
        "  ASIC: UMC 463/+11.6%%/+6.3%%  DIFT 456/+15%%/+6.3%%  "
        "BC 456/+19.3%%/+7.7%%  SEC 463/+0.15%%/-\n"
        "  FlexCore common 458/+32.5%%/+14.6%%\n"
        "  Fabric: UMC 266MHz/90,384um^2/21mW  DIFT 256/123,471/23  "
        "BC 229/203,364/27  SEC 213/390,588/36\n");
    return 0;
}
