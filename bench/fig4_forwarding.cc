/**
 * @file
 * Reproduces Figure 4: the percentage of committed instructions that
 * the CFGR-configured interface forwards to the reconfigurable fabric,
 * for each extension and benchmark.
 */

#include <cstdio>

#include "bench_util.h"

using namespace flexcore;
using namespace flexcore::bench;

int
main()
{
    const auto suite = fullSuite();
    const struct
    {
        MonitorKind kind;
        const char *name;
    } extensions[] = {
        {MonitorKind::kUmc, "UMC"},
        {MonitorKind::kDift, "DIFT"},
        {MonitorKind::kBc, "BC"},
        {MonitorKind::kSec, "SEC"},
    };

    std::printf("Figure 4: %% of committed instructions forwarded to "
                "the fabric\n\n");
    std::printf("%-14s", "Benchmark");
    for (const auto &ext : extensions)
        std::printf(" %8s", ext.name);
    std::printf("\n");
    hr(52);

    std::vector<double> sums(4, 0.0);
    for (const Workload &workload : suite) {
        std::printf("%-14s", workload.name.c_str());
        unsigned i = 0;
        for (const auto &ext : extensions) {
            SystemConfig config;
            config.monitor = ext.kind;
            config.mode = ImplMode::kFlexFabric;
            const SimOutcome outcome =
                SimRequest(std::move(config)).workload(workload).run();
            std::printf(" %7.1f%%", 100.0 * outcome.fwd_fraction);
            sums[i++] += outcome.fwd_fraction;
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    hr(52);
    std::printf("%-14s", "average");
    for (double sum : sums)
        std::printf(" %7.1f%%", 100.0 * sum / suite.size());
    std::printf("\n\nShape check (paper): UMC forwards only loads/"
                "stores (smallest); DIFT the most (ALU+mem+jumps);\n"
                "BC arithmetic+mem; SEC every register-writing class "
                "(ALU checks + register residue tracking).\n");
    return 0;
}
