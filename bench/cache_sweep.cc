/**
 * @file
 * Design-space study: sensitivity of the baseline CPI and of the
 * DIFT/FlexCore overhead to the L1 D-cache size. The paper fixes
 * 32 KB L1s (§V-A); this sweep shows how monitoring overheads shift
 * when the core itself is more or less memory-bound — a smaller D$
 * raises baseline CPI, which *reduces* relative fabric pressure (the
 * fabric budget is per-cycle, not per-instruction).
 */

#include <cstdio>

#include "bench_util.h"

using namespace flexcore;
using namespace flexcore::bench;

int
main()
{
    const auto suite = fullSuite();
    const u32 sizes_kb[] = {8, 16, 32, 64};

    std::printf("Design space: L1 D-cache size vs baseline CPI and "
                "DIFT overhead (fabric at 0.5X)\n\n");
    std::printf("%-8s %14s %16s\n", "D$", "baseline CPI*", "DIFT 0.5X");
    hr(42);

    for (u32 size_kb : sizes_kb) {
        double cpi_sum = 0;
        std::vector<double> ratios;
        for (const Workload &workload : suite) {
            SystemConfig base;
            base.core.dcache.size_bytes = size_kb * 1024;
            const SimOutcome b = runWorkloadChecked(workload, base);
            cpi_sum += static_cast<double>(b.result.cycles) /
                       static_cast<double>(b.result.instructions);

            SystemConfig flex = base;
            flex.monitor = MonitorKind::kDift;
            flex.mode = ImplMode::kFlexFabric;
            const SimOutcome f = runWorkloadChecked(workload, flex);
            ratios.push_back(static_cast<double>(f.result.cycles) /
                             static_cast<double>(b.result.cycles));
        }
        std::printf("%3uKB    %13.2f %15.3fx\n", size_kb,
                    cpi_sum / suite.size(), geomean(ratios));
        std::fflush(stdout);
    }
    std::printf("\n* arithmetic mean over the suite. Monitoring "
                "overhead falls as the core becomes memory-bound: the "
                "decoupled fabric hides behind the core's own stalls.\n");
    return 0;
}
