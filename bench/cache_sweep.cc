/**
 * @file
 * Design-space study: sensitivity of the baseline CPI and of the
 * DIFT/FlexCore overhead to the L1 D-cache size. The paper fixes
 * 32 KB L1s (§V-A); this sweep shows how monitoring overheads shift
 * when the core itself is more or less memory-bound — a smaller D$
 * raises baseline CPI, which *reduces* relative fabric pressure (the
 * fabric budget is per-cycle, not per-instruction).
 *
 * The (D$ size x workload x {baseline, DIFT}) grid runs as one
 * parallel campaign; the merged table is also written as JSON.
 */

#include <cstdio>

#include "bench_util.h"

using namespace flexcore;
using namespace flexcore::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv, "cache_sweep");
    const u32 sizes_kb[] = {8, 16, 32, 64};

    SweepSpec spec;
    spec.name = "cache_sweep";
    spec.workloads = fullSuite();
    spec.monitors = {MonitorKind::kDift};
    spec.modes = {ImplMode::kBaseline, ImplMode::kFlexFabric};
    spec.dcache_bytes.clear();
    for (u32 size_kb : sizes_kb)
        spec.dcache_bytes.push_back(size_kb * 1024);
    const auto results = runCampaign(expandSweep(spec), args.options);
    maybeWriteJson(args, "cache_sweep", results);

    const u32 fifo = spec.base.iface.fifo_depth;

    std::printf("Design space: L1 D-cache size vs baseline CPI and "
                "DIFT overhead (fabric at 0.5X)\n\n");
    std::printf("%-8s %14s %16s\n", "D$", "baseline CPI*", "DIFT 0.5X");
    hr(42);

    for (u32 size_kb : sizes_kb) {
        const u32 dcache = size_kb * 1024;
        double cpi_sum = 0;
        std::vector<double> ratios;
        for (const Workload &workload : spec.workloads) {
            const CampaignResult *base = findResult(
                results, jobKey(workload.name, MonitorKind::kNone,
                                ImplMode::kBaseline, 0, 0, dcache));
            if (!base)
                FLEX_PANIC("missing baseline for ", workload.name);
            cpi_sum +=
                static_cast<double>(base->outcome.result.cycles) /
                static_cast<double>(base->outcome.result.instructions);

            const u64 flex = cyclesFor(
                results, jobKey(workload.name, MonitorKind::kDift,
                                ImplMode::kFlexFabric, 2, fifo, dcache));
            ratios.push_back(
                static_cast<double>(flex) /
                static_cast<double>(base->outcome.result.cycles));
        }
        std::printf("%3uKB    %13.2f %15.3fx\n", size_kb,
                    cpi_sum / spec.workloads.size(), geomean(ratios));
    }
    std::printf("\n* arithmetic mean over the suite. Monitoring "
                "overhead falls as the core becomes memory-bound: the "
                "decoupled fabric hides behind the core's own stalls.\n");
    return 0;
}
