/**
 * @file
 * Generality study (§II-B: "we believe the FlexCore co-processing
 * model will be applicable to a large class of hardware extensions"):
 * the performance overhead of the two extensions we built *beyond* the
 * paper's four — the PROF working-set profiler and Mondrian-style
 * MEMPROT — on the same benchmark suite, fabric at 0.5X. PROF uses the
 * accept-if-not-full CFGR policy (sampling), so it also reports its
 * trace-coverage rate.
 */

#include <cstdio>

#include "bench_util.h"

using namespace flexcore;
using namespace flexcore::bench;

int
main()
{
    const auto suite = fullSuite();
    std::printf("Extension generality: overheads of post-paper "
                "extensions (fabric at 0.5X)\n\n");
    std::printf("%-14s %10s %12s %12s\n", "Benchmark", "PROF",
                "PROF-coverage", "MEMPROT");
    hr(54);

    std::vector<double> prof_ratios, memprot_ratios;
    for (const Workload &workload : suite) {
        const u64 base = baselineCycles(workload);

        SystemConfig prof_cfg;
        prof_cfg.monitor = MonitorKind::kProf;
        prof_cfg.mode = ImplMode::kFlexFabric;
        const SimOutcome prof =
            SimRequest(std::move(prof_cfg)).workload(workload).run();
        const double prof_ratio =
            static_cast<double>(prof.result.cycles) / base;
        const double coverage =
            prof.forwarded + prof.dropped
                ? static_cast<double>(prof.forwarded) /
                      (prof.forwarded + prof.dropped)
                : 1.0;

        SystemConfig mp_cfg;
        mp_cfg.monitor = MonitorKind::kMemProt;
        mp_cfg.mode = ImplMode::kFlexFabric;
        const SimOutcome memprot =
            SimRequest(std::move(mp_cfg)).workload(workload).run();
        const double memprot_ratio =
            static_cast<double>(memprot.result.cycles) / base;

        std::printf("%-14s %9.2fx %11.1f%% %11.2fx\n",
                    workload.name.c_str(), prof_ratio,
                    100.0 * coverage, memprot_ratio);
        std::fflush(stdout);
        prof_ratios.push_back(prof_ratio);
        memprot_ratios.push_back(memprot_ratio);
    }
    hr(54);
    std::printf("%-14s %9.2fx %12s %11.2fx\n", "geomean",
                geomean(prof_ratios), "-", geomean(memprot_ratios));
    std::printf("\nPROF never stalls the core (drop-when-full policy); "
                "MEMPROT behaves like UMC (load/store classes only).\n");
    return 0;
}
