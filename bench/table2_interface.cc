/**
 * @file
 * Reproduces Table II: the core-fabric interface fields and their bit
 * widths, generated directly from the CommitPacket specification so
 * the table always reflects the implemented interface.
 */

#include <cstdio>
#include <string>

#include "flexcore/packet.h"

using namespace flexcore;

int
main()
{
    std::printf("Table II: the FlexCore interface between the core and "
                "the fabric\n\n");
    std::printf("%-8s %-8s %4s  %s\n", "Module", "Field", "Bits",
                "Description");
    for (const PacketFieldSpec &spec : packetFieldSpecs()) {
        if (spec.bits == 0)
            continue;
        std::printf("%-8s %-8s %4u  %s\n",
                    std::string(spec.module).c_str(),
                    std::string(spec.name).c_str(), spec.bits,
                    std::string(spec.desc).c_str());
    }
    std::printf("\nForward-FIFO entry width: %u bits "
                "(paper: PC..DEST fields of Table II)\n",
                ffifoEntryBits());
    return 0;
}
