/**
 * @file
 * Reproduces Figure 5: average FlexCore performance (normalized
 * execution time, geomean over the benchmark suite) as a function of
 * the forward-FIFO depth, for each extension at its synthesis-derived
 * fabric clock (UMC/DIFT/BC at 0.5X, SEC at 0.25X). Also reports the
 * FIFO SRAM cost per depth (§V-C: the FIFO area grows only ~10%% from
 * 16 to 64 entries because of the SRAM periphery).
 */

#include <cstdio>

#include "bench_util.h"
#include "synth/asic_model.h"
#include "synth/extension_synth.h"

using namespace flexcore;
using namespace flexcore::bench;

int
main()
{
    const auto suite = fullSuite();
    const u32 depths[] = {4, 8, 16, 32, 64, 128, 256};
    const struct
    {
        MonitorKind kind;
        const char *name;
        u32 period;
    } extensions[] = {
        {MonitorKind::kUmc, "UMC", 2},
        {MonitorKind::kDift, "DIFT", 2},
        {MonitorKind::kBc, "BC", 2},
        {MonitorKind::kSec, "SEC", 4},
    };

    std::vector<u64> baselines;
    for (const Workload &workload : suite)
        baselines.push_back(baselineCycles(workload));

    std::printf("Figure 5: average normalized execution time vs "
                "forward-FIFO size\n\n");
    std::printf("%-10s", "FIFO");
    for (const auto &ext : extensions)
        std::printf(" %8s", ext.name);
    std::printf("   %14s %9s\n", "FIFO SRAM bits", "FIFOarea");
    hr(72);

    for (u32 depth : depths) {
        std::printf("%-10u", depth);
        for (const auto &ext : extensions) {
            std::vector<double> ratios;
            for (size_t i = 0; i < suite.size(); ++i) {
                FlexInterface::Params iface;
                iface.fifo_depth = depth;
                ratios.push_back(normalizedTime(
                    suite[i], ext.kind, ImplMode::kFlexFabric,
                    ext.period, baselines[i], iface));
            }
            std::printf(" %8.3f", geomean(ratios));
            std::fflush(stdout);
        }
        const u64 bits = forwardFifoBits(depth);
        const double area = bits * AsicModel::kSramBitAreaUm2 +
                            AsicModel::kSramMacroPeripheryUm2;
        std::printf("   %14llu %8.0f\n",
                    static_cast<unsigned long long>(bits), area);
    }
    std::printf("\nShape check (paper): 64 entries suffice; smaller "
                "FIFOs cost noticeably more time, larger ones add only "
                "marginal benefit, and the 16->64 entry SRAM area grows "
                "modestly because the fixed periphery dominates.\n");
    return 0;
}
