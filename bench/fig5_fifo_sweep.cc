/**
 * @file
 * Reproduces Figure 5: average FlexCore performance (normalized
 * execution time, geomean over the benchmark suite) as a function of
 * the forward-FIFO depth, for each extension at its synthesis-derived
 * fabric clock (UMC/DIFT/BC at 0.5X, SEC at 0.25X). Also reports the
 * FIFO SRAM cost per depth (§V-C: the FIFO area grows only ~10%% from
 * 16 to 64 entries because of the SRAM periphery).
 *
 * The (extension x depth x workload) grid runs as one parallel
 * campaign; the merged table is also written as JSON.
 */

#include <cstdio>

#include "bench_util.h"
#include "synth/asic_model.h"
#include "synth/extension_synth.h"

using namespace flexcore;
using namespace flexcore::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv, "fig5_fifo_sweep");

    SweepSpec spec;
    spec.name = "fig5_fifo_sweep";
    spec.workloads = fullSuite();
    spec.monitors = {MonitorKind::kUmc, MonitorKind::kDift,
                     MonitorKind::kBc, MonitorKind::kSec};
    spec.modes = {ImplMode::kBaseline, ImplMode::kFlexFabric};
    spec.fifo_depths = {4, 8, 16, 32, 64, 128, 256};
    const auto results = runCampaign(expandSweep(spec), args.options);
    maybeWriteJson(args, "fig5_fifo_sweep", results);

    const u32 dcache = spec.base.core.dcache.size_bytes;
    const struct
    {
        MonitorKind kind;
        const char *name;
        u32 period;
    } extensions[] = {
        {MonitorKind::kUmc, "UMC", 2},
        {MonitorKind::kDift, "DIFT", 2},
        {MonitorKind::kBc, "BC", 2},
        {MonitorKind::kSec, "SEC", 4},
    };

    std::vector<u64> baselines;
    for (const Workload &workload : spec.workloads) {
        baselines.push_back(cyclesFor(
            results, jobKey(workload.name, MonitorKind::kNone,
                            ImplMode::kBaseline, 0, 0, dcache)));
    }

    std::printf("Figure 5: average normalized execution time vs "
                "forward-FIFO size\n\n");
    std::printf("%-10s", "FIFO");
    for (const auto &ext : extensions)
        std::printf(" %8s", ext.name);
    std::printf("   %14s %9s\n", "FIFO SRAM bits", "FIFOarea");
    hr(72);

    for (u32 depth : spec.fifo_depths) {
        std::printf("%-10u", depth);
        for (const auto &ext : extensions) {
            std::vector<double> ratios;
            for (size_t i = 0; i < spec.workloads.size(); ++i) {
                const u64 cycles = cyclesFor(
                    results,
                    jobKey(spec.workloads[i].name, ext.kind,
                           ImplMode::kFlexFabric, ext.period, depth,
                           dcache));
                ratios.push_back(static_cast<double>(cycles) /
                                 static_cast<double>(baselines[i]));
            }
            std::printf(" %8.3f", geomean(ratios));
        }
        const u64 bits = forwardFifoBits(depth);
        const double area = bits * AsicModel::kSramBitAreaUm2 +
                            AsicModel::kSramMacroPeripheryUm2;
        std::printf("   %14llu %8.0f\n",
                    static_cast<unsigned long long>(bits), area);
    }
    std::printf("\nShape check (paper): 64 entries suffice; smaller "
                "FIFOs cost noticeably more time, larger ones add only "
                "marginal benefit, and the 16->64 entry SRAM area grows "
                "modestly because the fixed periphery dominates.\n");
    return 0;
}
