/**
 * @file
 * Reproduces the software-monitoring comparison of §V-C: the same
 * extensions implemented as inline software instrumentation on the
 * same core (LIFT-class DIFT, Purify-class UMC, table-based bounds
 * checking, duplication-based soft-error checking) versus FlexCore at
 * its synthesis-derived fabric clock and the full-ASIC variant.
 *
 * Paper reference points: software DIFT 3.6x (LIFT, aggressively
 * optimized) to 37x; Purify-class UMC up to 5.5x; software bounds
 * checking up to 1.69x with extensive compiler optimization.
 */

#include <cstdio>

#include "bench_util.h"

using namespace flexcore;
using namespace flexcore::bench;

int
main()
{
    const auto suite = fullSuite();
    const struct
    {
        MonitorKind kind;
        const char *name;
        u32 period;
    } extensions[] = {
        {MonitorKind::kUmc, "UMC", 2},
        {MonitorKind::kDift, "DIFT", 2},
        {MonitorKind::kBc, "BC", 2},
        {MonitorKind::kSec, "SEC", 4},
    };

    std::printf("Software instrumentation vs FlexCore vs ASIC "
                "(normalized execution time, geomean)\n\n");
    std::printf("%-10s %10s %10s %10s   %s\n", "Extension", "ASIC",
                "FlexCore", "Software", "FlexCore advantage over SW");
    hr(80);

    for (const auto &ext : extensions) {
        std::vector<double> asic, flex, soft;
        for (const Workload &workload : suite) {
            const u64 base = baselineCycles(workload);
            asic.push_back(normalizedTime(workload, ext.kind,
                                          ImplMode::kAsic, 1, base));
            flex.push_back(normalizedTime(workload, ext.kind,
                                          ImplMode::kFlexFabric,
                                          ext.period, base));
            soft.push_back(normalizedTime(workload, ext.kind,
                                          ImplMode::kSoftware, 1, base));
        }
        const double g_asic = geomean(asic);
        const double g_flex = geomean(flex);
        const double g_soft = geomean(soft);
        std::printf("%-10s %9.2fx %9.2fx %9.2fx   %.1fx faster\n",
                    ext.name, g_asic, g_flex, g_soft,
                    g_soft / g_flex);
        std::fflush(stdout);
    }
    std::printf("\nShape check (paper): software DIFT ~3.6x+ even with "
                "aggressive optimization; Purify-class UMC up to 5.5x;\n"
                "software overheads hit hardest on simple in-order "
                "cores, while FlexCore stays within ~1.2x for\n"
                "UMC/DIFT/BC. Our SEC checks more than the software "
                "duplication model (register residue tracking,\n"
                "see docs/fault_injection.md), so its quarter-clock "
                "point lands above it.\n");
    return 0;
}
