/**
 * @file
 * Design-space ablation: sensitivity of FlexCore performance to the
 * meta-data cache size (the paper fixes 4 KB in §V-A; this sweep shows
 * why that is a reasonable choice for these workloads, and how BC's
 * 8-bit tags make it the most capacity-sensitive extension).
 */

#include <cstdio>

#include "bench_util.h"

using namespace flexcore;
using namespace flexcore::bench;

int
main()
{
    const auto suite = fullSuite();
    const u32 sizes_kb[] = {1, 2, 4, 8, 16};
    const struct
    {
        MonitorKind kind;
        const char *name;
        u32 period;
    } extensions[] = {
        {MonitorKind::kUmc, "UMC", 2},
        {MonitorKind::kDift, "DIFT", 2},
        {MonitorKind::kBc, "BC", 2},
    };

    std::printf("Ablation: meta-data cache size sweep (geomean "
                "normalized time, fabric at 0.5X)\n\n");
    std::printf("%-10s", "Size");
    for (const auto &ext : extensions)
        std::printf(" %8s", ext.name);
    std::printf("\n");
    hr(40);
    for (u32 size_kb : sizes_kb) {
        std::printf("%3uKB     ", size_kb);
        for (const auto &ext : extensions) {
            std::vector<double> ratios;
            for (const Workload &workload : suite) {
                const u64 base = baselineCycles(workload);
                FabricParams fabric;
                fabric.meta_cache.size_bytes = size_kb * 1024;
                ratios.push_back(
                    normalizedTime(workload, ext.kind,
                                   ImplMode::kFlexFabric, ext.period,
                                   base, {}, fabric));
            }
            std::printf(" %8.3f", geomean(ratios));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("\nBC (8-bit tags) covers 4x less data per meta byte "
                "than UMC/DIFT (1-bit tags), so it is the most "
                "sensitive to meta-cache capacity.\n");
    return 0;
}
