/**
 * @file
 * Reproduces Table I: the co-processing characterization of the four
 * example extensions (meta-data, transparent operations, software-
 * visible operations), generated from the implemented monitors so the
 * table always reflects the code.
 */

#include <cstdio>
#include <memory>

#include "sim/config.h"

using namespace flexcore;

namespace {

struct Row
{
    const char *name;
    const char *meta;
    const char *transparent;
    const char *visible;
};

}  // namespace

int
main()
{
    const Row rows[] = {
        {"UMC",
         "1-bit init tag per word in memory",
         "set tag on store; check tag on load",
         "clear tags on de-allocation (m.clrmtag); trap on failed check"},
        {"DIFT",
         "1-bit taint per register; 1-bit taint per word in memory",
         "propagate tags on ALU/load/store; check on control transfer",
         "set/clear tags (m.settag/m.clrtag/m.setmtag/m.clrmtag); "
         "policy register (m.policy); trap on failed check"},
        {"BC",
         "4-bit color per register; 8-bit tag per word in memory",
         "propagate pointer colors on ALU/load/store; match pointer "
         "color with location color on load/store",
         "set colors on allocation (m.settag/m.setmtag); clear on "
         "free (m.clrmtag); trap on failed check"},
        {"SEC",
         "(none)",
         "re-execute/check every ALU operation (mod-7 residues for "
         "mul/div)",
         "trap on failed check"},
    };

    std::printf("Table I: example FlexCore co-processing extensions\n\n");
    for (const Row &row : rows) {
        std::printf("%s\n", row.name);
        std::printf("  Meta-data:        %s\n", row.meta);
        std::printf("  Transparent ops:  %s\n", row.transparent);
        std::printf("  SW-visible ops:   %s\n\n", row.visible);
    }

    // Cross-check the static claims against the implementation — for
    // the paper's four extensions and the post-paper ones (§II-B's
    // "other extensions" class).
    std::printf("Implementation cross-check (all registered "
                "extensions):\n");
    for (MonitorKind kind :
         {MonitorKind::kUmc, MonitorKind::kDift, MonitorKind::kBc,
          MonitorKind::kSec, MonitorKind::kProf, MonitorKind::kMemProt,
          MonitorKind::kWatch, MonitorKind::kRefCount}) {
        const std::unique_ptr<Monitor> monitor = makeMonitor(kind);
        std::printf("  %-8s tag bits/word=%u  pipeline depth=%u\n",
                    std::string(monitor->name()).c_str(),
                    monitor->tagBitsPerWord(), monitor->pipelineDepth());
    }
    return 0;
}
