/**
 * @file
 * Reproduces Table IV: execution time of each MiBench-class benchmark
 * under UMC / DIFT / BC / SEC, normalized to the unmodified Leon3
 * baseline, for the full-ASIC implementation (1X) and FlexCore with
 * the fabric at half (0.5X) and one quarter (0.25X) of the core clock.
 *
 * The paper's headline operating points are 0.5X for UMC/DIFT/BC and
 * 0.25X for SEC (set by the fabric synthesis frequencies in Table III).
 *
 * The whole grid runs as one parallel campaign (see docs/campaign.md);
 * the merged table is also written as JSON (--out, --no-json).
 */

#include <cstdio>

#include "bench_util.h"

using namespace flexcore;
using namespace flexcore::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv,
                                          "table4_performance");

    SweepSpec spec;
    spec.name = "table4_performance";
    spec.workloads = fullSuite();
    spec.monitors = {MonitorKind::kUmc, MonitorKind::kDift,
                     MonitorKind::kBc, MonitorKind::kSec};
    spec.modes = {ImplMode::kBaseline, ImplMode::kAsic,
                  ImplMode::kFlexFabric};
    spec.flex_periods = {2, 4};
    const auto results = runCampaign(expandSweep(spec), args.options);
    maybeWriteJson(args, "table4_performance", results);

    const u32 fifo = spec.base.iface.fifo_depth;
    const u32 dcache = spec.base.core.dcache.size_bytes;
    const struct
    {
        MonitorKind kind;
        const char *name;
    } extensions[] = {
        {MonitorKind::kUmc, "UMC"},
        {MonitorKind::kDift, "DIFT"},
        {MonitorKind::kBc, "BC"},
        {MonitorKind::kSec, "SEC"},
    };

    std::printf("Table IV: normalized execution time "
                "(baseline Leon3 = 1.00)\n");
    std::printf("%-14s", "Benchmark");
    for (const auto &ext : extensions)
        std::printf(" | %4s (1X) (0.5X) (0.25X)", ext.name);
    std::printf("\n");
    hr(125);

    const auto normalized = [&](const Workload &workload,
                                MonitorKind kind, ImplMode mode,
                                u32 period, u64 base) {
        return static_cast<double>(cyclesFor(
                   results, jobKey(workload.name, kind, mode, period,
                                   fifo, dcache))) /
               static_cast<double>(base);
    };

    std::vector<std::vector<double>> columns(12);
    for (const Workload &workload : spec.workloads) {
        const u64 base = cyclesFor(
            results, jobKey(workload.name, MonitorKind::kNone,
                            ImplMode::kBaseline, 0, 0, dcache));
        std::printf("%-14s", workload.name.c_str());
        unsigned column = 0;
        for (const auto &ext : extensions) {
            const double asic = normalized(workload, ext.kind,
                                           ImplMode::kAsic, 1, base);
            const double half = normalized(
                workload, ext.kind, ImplMode::kFlexFabric, 2, base);
            const double quarter = normalized(
                workload, ext.kind, ImplMode::kFlexFabric, 4, base);
            std::printf(" |  %4.2f      %4.2f    %4.2f ", asic, half,
                        quarter);
            columns[column++].push_back(asic);
            columns[column++].push_back(half);
            columns[column++].push_back(quarter);
        }
        std::printf("\n");
    }
    hr(125);
    std::printf("%-14s", "geomean");
    for (unsigned column = 0; column < columns.size(); column += 3) {
        std::printf(" |  %4.2f      %4.2f    %4.2f ",
                    geomean(columns[column]), geomean(columns[column + 1]),
                    geomean(columns[column + 2]));
    }
    std::printf("\n\n");

    std::printf("Paper's operating points (fabric clock from synthesis):"
                " UMC/DIFT/BC at 0.5X, SEC at 0.25X.\n");
    std::printf("Paper geomeans for comparison: UMC 1.02, DIFT 1.18, "
                "BC 1.17 (all 0.5X); SEC 1.40 (0.25X).\n");
    return 0;
}
