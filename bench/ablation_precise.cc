/**
 * @file
 * Ablation for §III-C's precision discussion: the paper's extensions
 * take *imprecise* exceptions (they only terminate the program), which
 * lets instructions commit without waiting for the co-processor. This
 * bench quantifies what precise exceptions would cost on the in-order
 * core: every forwarded instruction commits only after the fabric
 * acknowledges it (the CFGR's wait-for-ack policy).
 */

#include <cstdio>

#include "bench_util.h"

using namespace flexcore;
using namespace flexcore::bench;

int
main()
{
    const auto suite = fullSuite();
    const struct
    {
        MonitorKind kind;
        const char *name;
        u32 period;
    } extensions[] = {
        {MonitorKind::kUmc, "UMC", 2},
        {MonitorKind::kDift, "DIFT", 2},
        {MonitorKind::kBc, "BC", 2},
        {MonitorKind::kSec, "SEC", 4},
    };

    std::printf("Ablation: imprecise vs precise monitor exceptions "
                "(SS III-C)\n\n");
    std::printf("%-10s %12s %12s %10s\n", "Extension", "imprecise",
                "precise", "cost");
    hr(50);
    for (const auto &ext : extensions) {
        std::vector<double> imprecise, precise;
        for (const Workload &workload : suite) {
            const u64 base = baselineCycles(workload);
            imprecise.push_back(normalizedTime(workload, ext.kind,
                                               ImplMode::kFlexFabric,
                                               ext.period, base));
            SystemConfig config;
            config.monitor = ext.kind;
            config.mode = ImplMode::kFlexFabric;
            config.flex_period = ext.period;
            config.precise_exceptions = true;
            const SimOutcome outcome =
                SimRequest(std::move(config)).workload(workload).run();
            precise.push_back(static_cast<double>(outcome.result.cycles) /
                              static_cast<double>(base));
        }
        const double g_imp = geomean(imprecise);
        const double g_pre = geomean(precise);
        std::printf("%-10s %11.2fx %11.2fx %9.1fx\n", ext.name, g_imp,
                    g_pre, g_pre / g_imp);
        std::fflush(stdout);
    }
    std::printf("\nImprecise (terminate-only) exceptions are what make "
                "decoupled monitoring cheap on an in-order core: with "
                "precise semantics every commit pays the full "
                "synchronizer + pipeline round trip.\n");
    return 0;
}
