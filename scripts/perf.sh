#!/bin/sh
# Host-throughput benchmark of the simulator itself: builds (Release)
# and runs flexcore-perf over the fixed {baseline, umc, dift, bc} x
# {sha, basicmath} matrix — each config in interp and threaded exec
# mode, plus a sampled-timing dift row — writing BENCH_perf.json next
# to the repo root. Pass --quick for the test-scale CI smoke variant (fast, but
# not comparable with the tracked full-scale baseline).
#
#   scripts/perf.sh            # full matrix, best of 2 reps
#   scripts/perf.sh --quick    # smoke
#
# See docs/performance.md for how to read the numbers and when to
# rerecord the reference baseline.
set -eu

cd "$(dirname "$0")/.."

quick=""
out="BENCH_perf.json"
for arg in "$@"; do
    case "$arg" in
      --quick) quick="--quick" ;;
      --out=*) out="${arg#--out=}" ;;
      *) echo "usage: scripts/perf.sh [--quick] [--out=FILE]" >&2
         exit 2 ;;
    esac
done

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# Throughput numbers are only meaningful from an optimized build.
# Reuse an existing build tree (whatever its type); create a Release
# one if none exists.
if [ ! -f build/CMakeCache.txt ]; then
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build build -j "$jobs" --target flexcore-perf

# shellcheck disable=SC2086  # $quick is intentionally word-split
./build/tools/flexcore-perf $quick --out "$out"
echo "wrote $out"
