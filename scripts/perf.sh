#!/bin/sh
# Host-throughput benchmark of the simulator itself: builds (Release)
# and runs flexcore-perf over the fixed {baseline, umc, dift, bc} x
# {sha, basicmath} matrix — each config in interp and threaded exec
# mode, plus a sampled-timing dift row and dift rows at 2 and 4 cores
# on the shared fabric (docs/multicore.md) — writing BENCH_perf.json
# next to the repo root. Pass --quick for the test-scale CI smoke
# variant (fast, but not comparable with the tracked full-scale
# baseline).
#
#   scripts/perf.sh            # full matrix, best of 2 reps
#   scripts/perf.sh --quick    # smoke
#
# See docs/performance.md for how to read the numbers and when to
# rerecord the reference baseline.
set -eu

cd "$(dirname "$0")/.."

quick=""
out="BENCH_perf.json"
for arg in "$@"; do
    case "$arg" in
      --quick) quick="--quick" ;;
      --out=*) out="${arg#--out=}" ;;
      *) echo "usage: scripts/perf.sh [--quick] [--out=FILE]" >&2
         exit 2 ;;
    esac
done

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# Throughput numbers are only meaningful from an optimized build.
# Reuse an existing build tree (whatever its type); create a Release
# one if none exists.
if [ ! -f build/CMakeCache.txt ]; then
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build build -j "$jobs" --target flexcore-perf

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Keep the tracked baseline around for the guard below: the default
# --out overwrites BENCH_perf.json in place.
[ -f BENCH_perf.json ] && cp BENCH_perf.json "$tmp/tracked.json"

# shellcheck disable=SC2086  # $quick is intentionally word-split
./build/tools/flexcore-perf $quick --out "$out"
echo "wrote $out"

# Zero-cost-when-off guard for the streaming trace
# (docs/observability.md). Recording never attaches a trace sink, so
# the numbers just written ARE trace-off throughput. Two checks:
#
# 1. Purity: attaching --trace-out must leave the simulated outputs
#    untouched — the stats JSON of a traced run is byte-identical to
#    an untraced one.
cmake --build build -j "$jobs" --target flexcore-run > /dev/null
./build/tools/flexcore-run --monitor dift --quiet --no-histograms \
    --stats-json "$tmp/trace_off.json" programs/fibonacci.s \
    > /dev/null
./build/tools/flexcore-run --monitor dift --quiet --no-histograms \
    --stats-json "$tmp/trace_on.json" --trace-out "$tmp/on.fxtr" \
    programs/fibonacci.s > /dev/null
cmp "$tmp/trace_off.json" "$tmp/trace_on.json"
echo "trace purity: ok"

# 2. Throughput: on a full-scale run, every row must stay within a
#    deliberately loose factor of the tracked baseline. Host timing
#    carries tens of percent of noise, so this is a floor against
#    "the disabled trace hook got expensive" regressions, not a
#    gate on real perf work (rerecord BENCH_perf.json for that).
if [ -z "$quick" ] && [ -f "$tmp/tracked.json" ] \
       && command -v python3 >/dev/null 2>&1; then
    python3 - "$out" "$tmp/tracked.json" <<'EOF'
import json, sys

fresh = {r["config"]: r for r in json.load(open(sys.argv[1]))["results"]}
tracked = json.load(open(sys.argv[2]))
if tracked.get("scale") != "full":
    sys.exit(0)    # tracked file is a smoke artifact; nothing to hold
FLOOR = 0.2
bad = []
for row in tracked["results"]:
    name, want = row["config"], FLOOR * row["cycles_per_sec"]
    got = fresh.get(name)
    if got is None:
        bad.append(f"{name}: row missing from fresh results")
    elif got["cycles_per_sec"] < want:
        bad.append(f"{name}: {got['cycles_per_sec']:.0f} cycles/sec "
                   f"< {FLOOR} x tracked {row['cycles_per_sec']}")
for line in bad:
    print(f"perf guard: {line}", file=sys.stderr)
sys.exit(1 if bad else 0)
EOF
    echo "trace-off throughput: above 0.2x floor of tracked baseline"
fi
