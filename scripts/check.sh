#!/bin/sh
# Full local CI: configure, build, run the test suite, regenerate every
# table/figure, and run all examples. Exits nonzero on any failure.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "== examples =="
for example in build/examples/*; do
    [ -f "$example" ] && [ -x "$example" ] || continue
    echo "-- $example"
    "$example" > /dev/null
done

echo "== benches =="
for bench in build/bench/*; do
    [ -f "$bench" ] && [ -x "$bench" ] || continue
    echo "-- $bench"
    "$bench" > /dev/null
done

echo "All checks passed."
