#!/bin/sh
# Full local CI: configure, build, run the test suite, regenerate every
# table/figure, and run all examples. Exits nonzero on any failure.
set -eu

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# Prefer Ninja when available, but fall back to the platform default
# generator; a bare cmake+make host must be able to run this script.
# Only choose a generator on first configure — an existing build tree
# keeps whichever one it was created with. A CXX (and optionally CC)
# environment override picks the compiler on a fresh configure, so the
# same script drives the gcc and clang CI jobs.
compiler_args=""
[ -n "${CXX:-}" ] && compiler_args="-DCMAKE_CXX_COMPILER=$CXX"
[ -n "${CC:-}" ] && compiler_args="$compiler_args -DCMAKE_C_COMPILER=$CC"
if [ ! -f build/CMakeCache.txt ] && command -v ninja >/dev/null 2>&1; then
    # shellcheck disable=SC2086
    cmake -B build -G Ninja $compiler_args
else
    # shellcheck disable=SC2086
    cmake -B build $compiler_args
fi
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

root="$PWD"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "== examples =="
for example in "$root"/build/examples/*; do
    [ -f "$example" ] && [ -x "$example" ] || continue
    echo "-- ${example#"$root"/}"
    "$example" > /dev/null
done

echo "== benches =="
for bench in "$root"/build/bench/*; do
    [ -f "$bench" ] && [ -x "$bench" ] || continue
    echo "-- ${bench#"$root"/}"
    # From inside the temp dir: the campaign benches write their JSON
    # result tables to the working directory.
    (cd "$tmpdir" && "$bench" > /dev/null)
done

echo "== extension registry =="
# Every built-in extension must be registered and documented: the
# --list-monitors table names all nine (the eight fabric extensions
# plus the software-instrumentation family), each with a doc string.
./build/tools/flexcore-run --list-monitors > "$tmpdir/monitors.txt"
for name in umc dift bc sec prof memprot watch refcnt software; do
    line="$(grep -E "^  $name " "$tmpdir/monitors.txt")" || {
        echo "missing extension '$name' in --list-monitors" >&2
        exit 1
    }
    # The description column must not be empty (>= 6 fields: name,
    # depth, tags, period, aliases, doc...).
    [ "$(echo "$line" | wc -w)" -ge 6 ] || {
        echo "extension '$name' has no doc string" >&2
        exit 1
    }
done
# The refcount alias parses everywhere a monitor name is accepted.
./build/tools/flexcore-run --monitor refcount --quiet \
    programs/hello.s > /dev/null

echo "== sweep determinism =="
./build/tools/flexcore-sweep --grid table4 --scale test --jobs 1 \
    --out "$tmpdir/serial.json" --no-progress
./build/tools/flexcore-sweep --grid table4 --scale test --jobs "$jobs" \
    --out "$tmpdir/parallel.json" --no-progress
cmp "$tmpdir/serial.json" "$tmpdir/parallel.json"

echo "== fast-forward lockstep =="
# The quiescence fast-forward must be invisible: stats JSON from the
# same run with fast-forwarding disabled is byte-identical. (Debug
# builds additionally single-step every fast-forwarded stretch under
# asserts inside System::fastForward.)
./build/tools/flexcore-run --monitor dift --quiet \
    --stats-json "$tmpdir/ff_on.json" programs/fibonacci.s > /dev/null
./build/tools/flexcore-run --monitor dift --quiet --no-fast-forward \
    --stats-json "$tmpdir/ff_off.json" programs/fibonacci.s > /dev/null
cmp "$tmpdir/ff_on.json" "$tmpdir/ff_off.json"

echo "== threaded dispatch lockstep =="
# Threaded-code dispatch must be observably identical to the
# interpreter: stats JSON from the same run in both exec modes is
# byte-identical (histograms are per-cycle instrumentation the burst
# engine cannot sample, so they are suppressed on both sides of the
# comparison). Debug builds additionally lockstep-verify every
# superblock handler against the interpreter (tests/test_differential).
./build/tools/flexcore-run --monitor dift --quiet --no-histograms \
    --stats-json "$tmpdir/exec_interp.json" \
    programs/fibonacci.s > /dev/null
./build/tools/flexcore-run --monitor dift --quiet --no-histograms \
    --exec-mode threaded --stats-json "$tmpdir/exec_threaded.json" \
    programs/fibonacci.s > /dev/null
cmp "$tmpdir/exec_interp.json" "$tmpdir/exec_threaded.json"
# Monitor verdicts survive the dispatch change: the canned attack is
# still caught by DIFT under threaded dispatch.
./build/tools/flexcore-run --monitor dift --exec-mode threaded \
    programs/overflow_attack.s 2>&1 \
    | grep -q "tainted indirect jump"

echo "== sampled timing smoke =="
# Sampled timing keeps functional output exact and reports an
# estimate; the run must actually sample (the summary says so).
./build/tools/flexcore-run --monitor dift --sample-window 200 \
    --sample-period 2000 programs/fibonacci.s \
    > "$tmpdir/sampled.txt" 2>&1
grep -q "610" "$tmpdir/sampled.txt"
grep -q "sampled" "$tmpdir/sampled.txt"

echo "== fault coverage =="
# Detection-coverage campaign: deterministic for any worker count, and
# every monitor must detect at least one injected fault
# (docs/fault_injection.md).
./build/tools/flexcore-faultcov --jobs 1 \
    --out "$tmpdir/faultcov_serial.json" --no-progress \
    --require-detections
./build/tools/flexcore-faultcov --jobs "$jobs" \
    --out "$tmpdir/faultcov_parallel.json" --no-progress \
    --require-detections
cmp "$tmpdir/faultcov_serial.json" "$tmpdir/faultcov_parallel.json"

echo "== multi-core =="
# --cores 1 is byte-identical to the pre-multi-core simulator: stats
# JSON and the FXTR commit trace of a monitored run must match the
# checked-in goldens bit for bit (docs/multicore.md).
./build/tools/flexcore-run --monitor dift --quiet \
    --stats-json "$tmpdir/mc_stats.json" \
    --trace-out "$tmpdir/mc_trace.fxtr" programs/fibonacci.s > /dev/null
cmp tests/data/golden_cores1_stats.json "$tmpdir/mc_stats.json"
cmp tests/data/golden_cores1_trace.fxtr "$tmpdir/mc_trace.fxtr"
# N-core runs are deterministic: two identical 2-core shared-fabric
# runs produce byte-identical stats, and the cores sweep grid is
# byte-identical for any --jobs value.
./build/tools/flexcore-run --cores 2 --fabric-sharing shared \
    --monitor dift --quiet --stats-json "$tmpdir/mc2_a.json" \
    programs/fibonacci.s > /dev/null
./build/tools/flexcore-run --cores 2 --fabric-sharing shared \
    --monitor dift --quiet --stats-json "$tmpdir/mc2_b.json" \
    programs/fibonacci.s > /dev/null
cmp "$tmpdir/mc2_a.json" "$tmpdir/mc2_b.json"
./build/tools/flexcore-sweep --grid cores --scale test --jobs 1 \
    --out "$tmpdir/cores_serial.json" --no-progress
./build/tools/flexcore-sweep --grid cores --scale test --jobs "$jobs" \
    --out "$tmpdir/cores_parallel.json" --no-progress
cmp "$tmpdir/cores_serial.json" "$tmpdir/cores_parallel.json"
# Cross-core taint: caught under DIFT, clean unmonitored.
./build/tools/flexcore-run --cores 2 --monitor dift \
    programs/taint_xcore.s 2>&1 | grep -q monitor_trap
./build/tools/flexcore-run --cores 2 --quiet \
    programs/taint_xcore.s > /dev/null

echo "== perf smoke =="
./build/tools/flexcore-perf --quick --out "$tmpdir/BENCH_perf.json" \
    > /dev/null

echo "== observability =="
# Stats/trace export: valid JSON, and stats are byte-identical across
# two runs of the same configuration.
./build/tools/flexcore-run --monitor dift --quiet \
    --stats-json "$tmpdir/stats_a.json" \
    --trace-json "$tmpdir/trace.json" programs/hello.s > /dev/null
./build/tools/flexcore-run --monitor dift --quiet \
    --stats-json "$tmpdir/stats_b.json" programs/hello.s > /dev/null
cmp "$tmpdir/stats_a.json" "$tmpdir/stats_b.json"
./build/tools/flexcore-sweep --grid fifo --scale test --jobs "$jobs" \
    --stat core.ffifo_full --stat interface.forwarded \
    --out "$tmpdir/fifo_stats.json" --no-progress
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$tmpdir/stats_a.json" > /dev/null
    python3 -m json.tool "$tmpdir/trace.json" > /dev/null
    python3 -m json.tool "$tmpdir/fifo_stats.json" > /dev/null
fi

echo "== streaming trace and per-PC profile =="
# FXTR pipeline: record a stream, run every flexcore-trace subcommand
# over it, and hold the byte-identity gate — the Chrome export of a
# stream must equal the legacy buffered --trace-json of the same
# configuration (docs/observability.md).
./build/tools/flexcore-run --monitor dift --quiet --no-histograms \
    --trace-json "$tmpdir/trace_legacy.json" programs/hello.s \
    > /dev/null
./build/tools/flexcore-run --monitor dift --quiet \
    --trace-out "$tmpdir/trace.fxtr" \
    --profile-json "$tmpdir/profile.json" programs/hello.s > /dev/null
./build/tools/flexcore-trace report "$tmpdir/trace.fxtr" \
    -o "$tmpdir/trace_report.json"
./build/tools/flexcore-trace stats "$tmpdir/trace.fxtr" \
    -o "$tmpdir/trace_stats.json"
./build/tools/flexcore-trace export --chrome "$tmpdir/trace.fxtr" \
    -o "$tmpdir/trace_chrome.json"
cmp "$tmpdir/trace_legacy.json" "$tmpdir/trace_chrome.json"
./build/tools/flexcore-trace diff "$tmpdir/trace.fxtr" \
    "$tmpdir/trace.fxtr" | grep -q identical
# The profile report annotates a listing, and `-` routes it to stdout
# with the program console moved to stderr.
./build/tools/flexcore-asm --annotate "$tmpdir/profile.json" \
    programs/hello.s | grep -q sethi
./build/tools/flexcore-run --monitor umc --quiet --profile-json - \
    programs/hello.s 2> /dev/null > "$tmpdir/profile_stdout.json"
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$tmpdir/trace_report.json" > /dev/null
    python3 -m json.tool "$tmpdir/trace_stats.json" > /dev/null
    python3 -m json.tool "$tmpdir/trace_chrome.json" > /dev/null
    python3 -m json.tool "$tmpdir/profile.json" > /dev/null
    python3 -m json.tool "$tmpdir/profile_stdout.json" > /dev/null
fi

echo "== simulation service =="
# flexcore-serve: drive it with the load generator at 1 and 8 clients,
# then hold the wire-identity gate — stats JSON served over the socket
# is byte-identical to what flexcore-run writes locally for the same
# configuration (docs/serve.md).
rm -f "$tmpdir/serve.sock"
./build/tools/flexcore-serve --listen "unix:$tmpdir/serve.sock" \
    --quiet --max-requests 9 &
serve_pid=$!
./build/tools/flexcore-loadgen --connect "unix:$tmpdir/serve.sock" \
    --source programs/hello.s --monitor dift --clients 1 --requests 1 \
    --stats-json "$tmpdir/serve_remote.json"
./build/tools/flexcore-loadgen --connect "unix:$tmpdir/serve.sock" \
    --workload sha --clients 8 --requests 1
wait "$serve_pid"
./build/tools/flexcore-run --monitor dift --quiet \
    --stats-json "$tmpdir/serve_local.json" programs/hello.s > /dev/null
cmp "$tmpdir/serve_local.json" "$tmpdir/serve_remote.json"

echo "== serve resilience: deadline =="
# A non-terminating program (programs/spin.s defeats the watchdog and
# fast-forward) submitted under a wall-clock deadline must come back
# as a typed deadline_exceeded error within 2x the deadline, and the
# server must keep serving afterwards (docs/serve.md).
rm -f "$tmpdir/serve_dl.sock"
./build/tools/flexcore-serve --listen "unix:$tmpdir/serve_dl.sock" \
    --quiet --default-deadline-ms 300 --max-requests 1 &
serve_pid=$!
dl_start="$(date +%s)"
./build/tools/flexcore-loadgen --connect "unix:$tmpdir/serve_dl.sock" \
    --source programs/spin.s --requests 1 \
    > "$tmpdir/serve_dl.out" 2>&1 || true
dl_elapsed=$(( $(date +%s) - dl_start ))
grep -q deadline_exceeded "$tmpdir/serve_dl.out"
# 2x a 300 ms deadline rounds to 1 s of wall clock; allow 2 s for a
# loaded CI box (the unit test pins the tight bound).
[ "$dl_elapsed" -le 2 ] || {
    echo "deadline took ${dl_elapsed}s, expected <= 2s" >&2
    exit 1
}
./build/tools/flexcore-loadgen --connect "unix:$tmpdir/serve_dl.sock" \
    --workload sha --requests 1
wait "$serve_pid"

echo "== serve resilience: chaos =="
# Deterministic protocol chaos concurrent with a well-behaved client:
# the good client's served stats must stay byte-identical to a local
# run, and the server must drain to exit 0 (docs/serve.md).
rm -f "$tmpdir/serve_chaos.sock"
./build/tools/flexcore-serve --listen "unix:$tmpdir/serve_chaos.sock" \
    --quiet --max-frame-bytes 65536 --frame-timeout-ms 500 &
serve_pid=$!
./build/tools/flexcore-chaos --connect "unix:$tmpdir/serve_chaos.sock" \
    --seed 7 --clients 2 --attacks 10 --quiet &
chaos_pid=$!
./build/tools/flexcore-loadgen --connect "unix:$tmpdir/serve_chaos.sock" \
    --source programs/hello.s --monitor dift --clients 3 --requests 2 \
    --stats-json "$tmpdir/chaos_remote.json"
wait "$chaos_pid"
./build/tools/flexcore-loadgen --connect "unix:$tmpdir/serve_chaos.sock" \
    --requests 0 --shutdown
wait "$serve_pid"
cmp "$tmpdir/serve_local.json" "$tmpdir/chaos_remote.json"

echo "== serve resilience: SIGTERM drain =="
# kill -TERM must converge to a clean exit 0: the handler writes one
# byte to the self-pipe, the accept loop drains, every thread joins.
rm -f "$tmpdir/serve_drain.sock"
./build/tools/flexcore-serve --listen "unix:$tmpdir/serve_drain.sock" \
    --quiet --drain-timeout-ms 2000 &
serve_pid=$!
./build/tools/flexcore-loadgen --connect "unix:$tmpdir/serve_drain.sock" \
    --workload sha --requests 1
kill -TERM "$serve_pid"
wait "$serve_pid"

echo "All checks passed."
