/**
 * @file
 * WATCH in action (§II-B's debugging-support class, iWatcher-style):
 * the classic "who is corrupting this variable?" session. A program
 * scribbles over memory through a stray pointer; a trap-on-store
 * watchpoint pins the exact corrupting instruction, with zero changes
 * to the program. A count-mode watchpoint then profiles accesses to a
 * hot variable without stopping anything.
 */

#include <cstdio>

#include "assembler/assembler.h"
#include "monitors/watch.h"
#include "sim/system.h"

using namespace flexcore;

int
main()
{
    std::printf("=== WATCH: hardware watchpoints ===\n\n");

    SystemConfig config;
    config.monitor = MonitorKind::kWatch;
    config.mode = ImplMode::kFlexFabric;

    // 1. Trap-on-store: find the stray write.
    const char *corruptor = R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        set counter, %l0
        m.setmtag [%l0], 2      ; watch: trap on store
        ; ... unrelated work ...
        set buf, %l1
        mov 0, %l2
loop:   sll %l2, 2, %o0
        st %l2, [%l1+%o0]       ; fills buf[0..5]...
        add %l2, 1, %l2
        cmp %l2, 6              ; ...but buf has only 4 slots:
        bne loop                ; iterations 4 and 5 stray into
        nop                     ; `counter` and beyond
        mov 0, %o0
        ta 0
        nop
        .align 4
buf:    .word 0, 0, 0, 0
counter: .word 1000
)";
    System bad_system(config);
    const Program bad_prog = Assembler::assembleOrDie(corruptor);
    bad_system.load(bad_prog);
    const RunResult bad = bad_system.run();
    std::printf("[find-the-corruptor]\n");
    std::printf("  result: %s (%s) at pc=0x%x — the stray store\n\n",
                std::string(exitName(bad.exit)).c_str(),
                bad.trap_reason.c_str(), bad.trap.pc);

    // 2. Count mode: profile accesses to a hot word, no interference.
    const char *hotspot = R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        set hot, %l0
        m.setmtag [%l0], 1      ; watch: count accesses
        mov 25, %l1
loop:   ld [%l0], %o0           ; read-modify-write the hot word
        add %o0, 1, %o0
        st %o0, [%l0]
        subcc %l1, 1, %l1
        bne loop
        nop
        m.read %o0, 0           ; total watch hits
        ta 2
        mov 10, %o0
        ta 1
        mov 0, %o0
        ta 0
        nop
        .align 4
hot:    .word 0
)";
    System prof_system(config);
    prof_system.load(Assembler::assembleOrDie(hotspot));
    const RunResult prof = prof_system.run();
    const auto *watch =
        static_cast<WatchMonitor *>(prof_system.monitor());
    std::printf("[hot-variable-profile]\n");
    std::printf("  result: %s, program read its own hit count: %s",
                std::string(exitName(prof.exit)).c_str(),
                prof.console.c_str());
    std::printf("  monitor saw %llu accesses (25 loads + 25 stores)\n",
                static_cast<unsigned long long>(watch->hits()));

    const bool pass = bad.exit == RunResult::Exit::kMonitorTrap &&
                      prof.exit == RunResult::Exit::kExited &&
                      watch->hits() == 50;
    std::printf("\n%s\n", pass ? "WATCH pinned the corruptor and "
                                 "profiled the hot word transparently."
                               : "UNEXPECTED RESULT");
    return pass ? 0 : 1;
}
