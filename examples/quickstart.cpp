/**
 * @file
 * Quickstart: assemble a small SPARC program, run it on the baseline
 * Leon3 model, then run it again with DIFT monitoring on the FlexCore
 * fabric and compare cycle counts. Start here.
 */

#include <cstdio>

#include "assembler/assembler.h"
#include "sim/system.h"

using namespace flexcore;

int
main()
{
    // A program that checksums a small table and prints the result.
    const char *source = R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        call main
        nop
        ta 0                    ; exit(%o0)
        nop

main:   save %sp, -96, %sp
        set table, %l0
        mov 8, %l1              ; word count
        mov 0, %l2              ; checksum
loop:   ld [%l0], %o0
        xor %l2, %o0, %l2
        add %l0, 4, %l0
        subcc %l1, 1, %l1
        bne loop
        nop
        mov %l2, %o0
        ta 2                    ; print checksum
        mov 10, %o0
        ta 1                    ; newline
        mov 0, %i0
        ret
        restore

        .align 4
table:  .word 0x10, 0x27, 0x3c, 0x4b, 0x5a, 0x69, 0x78, 0x87
)";

    // 1. Assemble.
    const Program program = Assembler::assembleOrDie(source);
    std::printf("assembled %u bytes at 0x%x\n", program.size(),
                program.base());

    // 2. Run on the unmodified Leon3 baseline.
    SystemConfig baseline;
    System base_system(baseline);
    base_system.load(program);
    const RunResult base = base_system.run();
    std::printf("baseline:  %s, %llu cycles, %llu instructions, "
                "output: %s",
                std::string(exitName(base.exit)).c_str(),
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(base.instructions),
                base.console.c_str());

    // 3. Run with DIFT on the reconfigurable fabric (0.5X clock).
    SystemConfig monitored;
    monitored.monitor = MonitorKind::kDift;
    monitored.mode = ImplMode::kFlexFabric;
    System flex_system(monitored);
    flex_system.load(program);
    const RunResult flex = flex_system.run();
    std::printf("with DIFT: %s, %llu cycles (%.2fx), forwarded %llu "
                "packets\n",
                std::string(exitName(flex.exit)).c_str(),
                static_cast<unsigned long long>(flex.cycles),
                static_cast<double>(flex.cycles) / base.cycles,
                static_cast<unsigned long long>(
                    flex_system.iface()->forwardedCount()));
    return flex.exit == RunResult::Exit::kExited ? 0 : 1;
}
