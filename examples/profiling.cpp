/**
 * @file
 * PROF in action (§II-B's "custom performance monitors"): a program
 * computes over two buffers while the profiling extension counts its
 * instruction mix and memory working set transparently on the fabric;
 * the program then reads the counters back with `m.read` and prints
 * its own profile — no changes to the computation itself.
 */

#include <cstdio>

#include "assembler/assembler.h"
#include "monitors/prof.h"
#include "sim/system.h"

using namespace flexcore;

int
main()
{
    const char *source = R"(
        .org 0x1000
_start: set 0x003ffff0, %sp

        ; --- the monitored computation: touch 64 words, sum them ---
        set buf, %l0
        mov 64, %l1
        mov 0, %l2
init:   sll %l2, 2, %o0
        st %l2, [%l0+%o0]
        add %l2, 1, %l2
        subcc %l1, 1, %l1
        bne init
        nop
        mov 64, %l1
        mov 0, %l3
sum:    sub %l1, 1, %l1
        sll %l1, 2, %o0
        ld [%l0+%o0], %o1
        tst %l1
        bne sum
        add %l3, %o1, %l3

        ; --- read the profile back from the co-processor ---
        m.read %o0, 0      ; packets observed
        ta 2
        mov 10, %o0
        ta 1
        m.read %o0, 1      ; loads
        ta 2
        mov 10, %o0
        ta 1
        m.read %o0, 2      ; stores
        ta 2
        mov 10, %o0
        ta 1
        m.read %o0, 5      ; distinct words touched
        ta 2
        mov 10, %o0
        ta 1
        mov 0, %o0
        ta 0
        nop

        .align 4
buf:    .space 256
)";

    SystemConfig config;
    config.monitor = MonitorKind::kProf;
    config.mode = ImplMode::kFlexFabric;
    System system(config);
    system.load(Assembler::assembleOrDie(source));
    const RunResult result = system.run();

    std::printf("=== PROF: transparent program profiling ===\n\n");
    std::printf("program self-profile via m.read "
                "(packets/loads/stores/touched):\n%s\n",
                result.console.c_str());

    const auto *prof = static_cast<ProfMonitor *>(system.monitor());
    std::printf("monitor-side view: %llu packets, %llu loads, %llu "
                "stores, %llu words touched\n",
                static_cast<unsigned long long>(prof->packets()),
                static_cast<unsigned long long>(prof->loads()),
                static_cast<unsigned long long>(prof->stores()),
                static_cast<unsigned long long>(prof->touchedWords()));
    std::printf("run: %s in %llu cycles\n",
                std::string(exitName(result.exit)).c_str(),
                static_cast<unsigned long long>(result.cycles));

    const bool pass = result.exit == RunResult::Exit::kExited &&
                      prof->touchedWords() == 64;
    std::printf("\n%s\n",
                pass ? "PROF counted the working set exactly (64 words)."
                     : "UNEXPECTED RESULT");
    return pass ? 0 : 1;
}
