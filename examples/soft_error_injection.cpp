/**
 * @file
 * SEC in action: transient faults are injected into the main core's
 * ALU at a configurable rate; the soft-error checker re-executes every
 * forwarded ALU operation on the fabric and traps on the first
 * mismatch. Without fault injection the same program runs cleanly.
 */

#include <cstdio>

#include "assembler/assembler.h"
#include "monitors/sec.h"
#include "sim/system.h"
#include "workloads/scenarios.h"

using namespace flexcore;

namespace {

RunResult
runSec(const Workload &workload, double fault_rate, u64 seed,
       u64 *checks, u64 *errors)
{
    SystemConfig config;
    config.monitor = MonitorKind::kSec;
    config.mode = ImplMode::kFlexFabric;
    config.fault_rate = fault_rate;
    config.fault_seed = seed;
    System system(config);
    system.load(Assembler::assembleOrDie(workload.source));
    const RunResult result = system.run();
    const auto *sec = static_cast<SecMonitor *>(system.monitor());
    *checks = sec->checksPerformed();
    *errors = sec->errorsDetected();
    return result;
}

}  // namespace

int
main()
{
    const Workload workload = scenarioSecWorkload();
    std::printf("=== SEC: soft-error checking with fault injection "
                "===\n\n");

    u64 checks = 0, errors = 0;
    const RunResult clean = runSec(workload, 0.0, 1, &checks, &errors);
    std::printf("fault rate 0:      %s after %llu ALU checks, "
                "%llu errors\n",
                std::string(exitName(clean.exit)).c_str(),
                static_cast<unsigned long long>(checks),
                static_cast<unsigned long long>(errors));

    int detected = 0;
    const int kTrials = 5;
    for (int trial = 0; trial < kTrials; ++trial) {
        const RunResult faulty =
            runSec(workload, 1e-4, 1000 + trial, &checks, &errors);
        const bool caught =
            faulty.exit == RunResult::Exit::kMonitorTrap;
        detected += caught;
        std::printf("fault rate 1e-4 (seed %d): %s after %llu checks "
                    "(%s)\n",
                    1000 + trial,
                    std::string(exitName(faulty.exit)).c_str(),
                    static_cast<unsigned long long>(checks),
                    caught ? faulty.trap_reason.c_str()
                           : "fault residue aliased or none injected");
    }
    std::printf("\nSEC detected injected faults in %d/%d faulty runs "
                "and stayed silent on the clean run.\n",
                detected, kTrials);
    return clean.exit == RunResult::Exit::kExited && detected > 0 ? 0
                                                                  : 1;
}
