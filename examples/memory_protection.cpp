/**
 * @file
 * MEMPROT in action (§II-B cites Mondrian-style fine-grained memory
 * protection): a word-granular permission table guards a config block.
 * Reads of the read-only words succeed; the buggy write to one traps.
 */

#include <cstdio>

#include "assembler/assembler.h"
#include "monitors/memprot.h"
#include "sim/system.h"

using namespace flexcore;

namespace {

RunResult
run(const std::string &source, System **system_out)
{
    SystemConfig config;
    config.monitor = MonitorKind::kMemProt;
    config.mode = ImplMode::kFlexFabric;
    static std::unique_ptr<System> system;
    system = std::make_unique<System>(config);
    system->load(Assembler::assembleOrDie(source));
    *system_out = system.get();
    return system->run();
}

const char *kProtectPrologue = R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        ; The loader marks the two config words read-only (perm 1)
        ; and the lock word no-access (perm 2).
        set config, %l0
        m.setmtag [%l0], 1
        m.setmtag [%l0+4], 1
        m.setmtag [%l0+8], 2
)";

}  // namespace

int
main()
{
    std::printf("=== MEMPROT: word-granular memory protection ===\n\n");

    System *system = nullptr;

    // Reading protected words is fine; writing one traps.
    const std::string buggy = std::string(kProtectPrologue) + R"(
        ld [%l0], %o0          ; read-only read: allowed
        ld [%l0+4], %o1
        add %o0, %o1, %o0
        ta 2
        mov 10, %o0
        ta 1
        st %g0, [%l0+4]        ; write to read-only word: trap
        mov 0, %o0
        ta 0
        nop
        .align 4
config: .word 40, 2
lock:   .word 0xfeedface
)";
    const RunResult bad = run(buggy, &system);
    std::printf("[overwrite-config]\n  result: %s (%s) at pc=0x%x\n",
                std::string(exitName(bad.exit)).c_str(),
                bad.trap_reason.c_str(), bad.trap.pc);

    // Inspect the permission table the monitor holds.
    const Program probe = Assembler::assembleOrDie(buggy);
    u32 config_addr = 0;
    probe.lookupSymbol("config", &config_addr);
    const auto *prot = static_cast<MemProtMonitor *>(system->monitor());
    std::printf("  perms: config[0]=%d config[1]=%d lock=%d "
                "(0=rw, 1=ro, 2=none)\n\n",
                prot->permission(config_addr),
                prot->permission(config_addr + 4),
                prot->permission(config_addr + 8));

    // A no-access word traps even on a read.
    const std::string spy = std::string(kProtectPrologue) + R"(
        ld [%l0+8], %o0        ; read the lock word: trap
        mov 0, %o0
        ta 0
        nop
        .align 4
config: .word 40, 2
lock:   .word 0xfeedface
)";
    const RunResult sneaky = run(spy, &system);
    std::printf("[read-lock-word]\n  result: %s (%s)\n\n",
                std::string(exitName(sneaky.exit)).c_str(),
                sneaky.trap_reason.c_str());

    // The well-behaved variant completes.
    const std::string clean = std::string(kProtectPrologue) + R"(
        ld [%l0], %o0
        ld [%l0+4], %o1
        add %o0, %o1, %o0
        ta 2
        mov 10, %o0
        ta 1
        mov 0, %o0
        ta 0
        nop
        .align 4
config: .word 40, 2
lock:   .word 0xfeedface
)";
    const RunResult ok = run(clean, &system);
    std::printf("[read-only-use]\n  result: %s, output: %s\n",
                std::string(exitName(ok.exit)).c_str(),
                ok.console.c_str());

    const bool pass = bad.exit == RunResult::Exit::kMonitorTrap &&
                      sneaky.exit == RunResult::Exit::kMonitorTrap &&
                      ok.exit == RunResult::Exit::kExited;
    std::printf("\n%s\n", pass ? "MEMPROT enforced both protections "
                                 "and passed the clean run."
                               : "UNEXPECTED RESULT");
    return pass ? 0 : 1;
}
