/**
 * @file
 * DIFT in action: a buffer-overflow attack overwrites a function
 * pointer with tainted "network" input; the FlexCore DIFT extension
 * tracks the taint through the copy loop and traps the program on the
 * indirect jump. The benign variant of the same I/O handling runs to
 * completion.
 */

#include <cstdio>

#include "assembler/assembler.h"
#include "sim/system.h"
#include "workloads/scenarios.h"

using namespace flexcore;

namespace {

RunResult
runUnderDift(const Workload &workload)
{
    SystemConfig config;
    config.monitor = MonitorKind::kDift;
    config.mode = ImplMode::kFlexFabric;
    System system(config);
    system.load(Assembler::assembleOrDie(workload.source));
    return system.run();
}

}  // namespace

int
main()
{
    std::printf("=== DIFT: dynamic information flow tracking ===\n\n");

    const Workload attack = scenarioDiftAttack();
    const RunResult attacked = runUnderDift(attack);
    std::printf("[%s]\n", attack.name.c_str());
    std::printf("  tainted input copied over a function pointer, then "
                "called\n");
    std::printf("  result: %s (%s) at pc=0x%x\n\n",
                std::string(exitName(attacked.exit)).c_str(),
                attacked.trap_reason.c_str(), attacked.trap.pc);

    const Workload benign = scenarioDiftBenign();
    const RunResult ok = runUnderDift(benign);
    std::printf("[%s]\n", benign.name.c_str());
    std::printf("  the same input handled with correct bounds\n");
    std::printf("  result: %s, output: %s\n",
                std::string(exitName(ok.exit)).c_str(),
                ok.console.c_str());

    const bool pass = attacked.exit == RunResult::Exit::kMonitorTrap &&
                      ok.exit == RunResult::Exit::kExited;
    std::printf("\n%s\n", pass ? "DIFT caught the attack and let the "
                                 "benign run finish."
                               : "UNEXPECTED RESULT");
    return pass ? 0 : 1;
}
