/**
 * @file
 * BC in action: color-based array bound checking catches a classic
 * off-by-one memset past a colored allocation, while the in-bounds
 * variant completes. Also shows the packed 8-bit memory tags (location
 * color in the low nibble, stored-pointer color in the high nibble).
 */

#include <cstdio>

#include "assembler/assembler.h"
#include "monitors/bc.h"
#include "sim/system.h"
#include "workloads/scenarios.h"

using namespace flexcore;

int
main()
{
    std::printf("=== BC: color-based array bound checking ===\n\n");

    SystemConfig config;
    config.monitor = MonitorKind::kBc;
    config.mode = ImplMode::kFlexFabric;

    const Workload overflow = scenarioBcOverflow();
    System bad_system(config);
    const Program bad_prog =
        Assembler::assembleOrDie(overflow.source);
    bad_system.load(bad_prog);
    const RunResult bad = bad_system.run();
    std::printf("[%s]\n", overflow.name.c_str());
    std::printf("  memset walks one element past arr[4] (color 5)\n");
    std::printf("  result: %s (%s) at pc=0x%x\n\n",
                std::string(exitName(bad.exit)).c_str(),
                bad.trap_reason.c_str(), bad.trap.pc);

    const Workload clean = scenarioBcClean();
    System ok_system(config);
    const Program ok_prog = Assembler::assembleOrDie(clean.source);
    ok_system.load(ok_prog);
    const RunResult ok = ok_system.run();
    std::printf("[%s]\n", clean.name.c_str());
    std::printf("  stays within the four colored elements\n");
    std::printf("  result: %s, output: %s\n",
                std::string(exitName(ok.exit)).c_str(),
                ok.console.c_str());

    // Peek at the colors the monitor assigned.
    const auto *bc = static_cast<BcMonitor *>(ok_system.monitor());
    u32 arr_addr = 0;
    ok_prog.lookupSymbol("arr", &arr_addr);
    std::printf("  mem colors: arr[0]=%u arr[3]=%u canary=%u\n",
                bc->memColor(arr_addr), bc->memColor(arr_addr + 12),
                bc->memColor(arr_addr + 16));

    const bool pass = bad.exit == RunResult::Exit::kMonitorTrap &&
                      ok.exit == RunResult::Exit::kExited;
    std::printf("\n%s\n", pass ? "BC caught the overflow and let the "
                                 "correct program finish."
                               : "UNEXPECTED RESULT");
    return pass ? 0 : 1;
}
