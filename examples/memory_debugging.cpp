/**
 * @file
 * UMC in action: the uninitialized-memory checker catches a program
 * reading a freshly "allocated" word before writing it, while the
 * fixed program runs cleanly. Also inspects the monitor's functional
 * tag state after the run.
 */

#include <cstdio>

#include "assembler/assembler.h"
#include "monitors/umc.h"
#include "sim/system.h"
#include "workloads/scenarios.h"

using namespace flexcore;

int
main()
{
    std::printf("=== UMC: uninitialized memory checking ===\n\n");

    SystemConfig config;
    config.monitor = MonitorKind::kUmc;
    config.mode = ImplMode::kFlexFabric;

    const Workload buggy = scenarioUmcBug();
    System bug_system(config);
    bug_system.load(Assembler::assembleOrDie(buggy.source));
    const RunResult bug = bug_system.run();
    std::printf("[%s]\n", buggy.name.c_str());
    std::printf("  reads heap word +4 before initializing it\n");
    std::printf("  result: %s (%s) at pc=0x%x\n\n",
                std::string(exitName(bug.exit)).c_str(),
                bug.trap_reason.c_str(), bug.trap.pc);

    const Workload clean = scenarioUmcClean();
    System ok_system(config);
    ok_system.load(Assembler::assembleOrDie(clean.source));
    const RunResult ok = ok_system.run();
    std::printf("[%s]\n", clean.name.c_str());
    std::printf("  initializes both words first\n");
    std::printf("  result: %s, output: %s\n",
                std::string(exitName(ok.exit)).c_str(),
                ok.console.c_str());

    // Inspect the monitor's functional tag state after the clean run.
    const auto *umc = static_cast<UmcMonitor *>(ok_system.monitor());
    std::printf("  tag state: [0x20000]=%s [0x20004]=%s [0x20008]=%s\n",
                umc->initialized(0x20000) ? "init" : "uninit",
                umc->initialized(0x20004) ? "init" : "uninit",
                umc->initialized(0x20008) ? "init" : "uninit");

    const bool pass = bug.exit == RunResult::Exit::kMonitorTrap &&
                      ok.exit == RunResult::Exit::kExited;
    std::printf("\n%s\n", pass ? "UMC caught the bug and let the fixed "
                                 "program finish."
                               : "UNEXPECTED RESULT");
    return pass ? 0 : 1;
}
