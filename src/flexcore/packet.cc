#include "flexcore/packet.h"

namespace flexcore {

const std::array<PacketFieldSpec, 21> &
packetFieldSpecs()
{
    static const std::array<PacketFieldSpec, 21> kSpecs = {{
        {"CFGR", "FFIFO",
         "FIFO behavior per instruction type: ignore / accept-if-not-full"
         " / accept-and-proceed / accept-and-wait-for-ack (2b x 32 types)",
         64},
        {"CTRL", "PACK", "acknowledgement for a co-processor trap", 1},
        {"FFIFO", "PC", "program counter", 32},
        {"FFIFO", "INST", "undecoded instruction", 32},
        {"FFIFO", "ADDR", "address for a load/store", 32},
        {"FFIFO", "RES", "result of an instruction", 32},
        {"FFIFO", "SRCV1", "source operand 1 value", 32},
        {"FFIFO", "SRCV2", "source operand 2 value", 32},
        {"FFIFO", "COND", "condition codes", 4},
        {"FFIFO", "BRANCH", "computed branch direction", 1},
        {"FFIFO", "OPCODE", "decoded instruction opcode", 5},
        {"FFIFO", "DECODE", "miscellaneous decoded signals", 32},
        {"FFIFO", "EXTRA", "extra processor control signals", 32},
        {"FFIFO", "SRC1", "decoded source 1 register number", 9},
        {"FFIFO", "SRC2", "decoded source 2 register number", 9},
        {"FFIFO", "DEST", "decoded destination register number", 9},
        {"CTRL", "CACK", "acknowledgement for FFIFO", 1},
        {"CTRL", "EMPTY", "no pending instruction in the co-processor", 1},
        {"CTRL", "TRAP", "raise an exception", 1},
        {"BFIFO", "VAL", "return value for 'read from co-processor'", 32},
        {"CTRL", "-", "(reserved)", 0},
    }};
    return kSpecs;
}

unsigned
ffifoEntryBits()
{
    unsigned total = 0;
    for (const PacketFieldSpec &spec : packetFieldSpecs()) {
        if (spec.module == "FFIFO")
            total += spec.bits;
    }
    return total;
}

}  // namespace flexcore
