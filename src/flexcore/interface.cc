#include "flexcore/interface.h"

#include <algorithm>
#include <bit>

namespace flexcore {

FlexInterface::FlexInterface(StatGroup *parent, Params params)
    : params_(params),
      stats_("interface", parent),
      forwarded_(&stats_, "forwarded", "packets pushed to the FFIFO"),
      dropped_(&stats_, "dropped",
               "packets dropped under the if-not-full policy"),
      commit_stalls_(&stats_, "commit_stalls",
                     "cycles commit stalled on a full FFIFO"),
      traps_(&stats_, "traps", "TRAP assertions from the fabric"),
      occupancy_(&stats_, "ffifo_occupancy",
                 "FFIFO entries in use, sampled per core cycle",
                 Histogram::Params{0, params.fifo_depth + 1,
                                   static_cast<u32>(params.fifo_depth + 1),
                                   false}),
      fill_frac_(&stats_, "fill_frac",
                 "mean FFIFO occupancy / FIFO depth",
                 [this]() {
                     return occupancy_.mean() /
                            static_cast<double>(params_.fifo_depth);
                 })
{
    // Capacity 1 minimum keeps the ring arithmetic well-defined even
    // for a zero-depth FIFO (offer() rejects every push then anyway).
    // Round up to a power of two so the ring indices wrap with a mask
    // instead of a divide; occupancy stays bounded by fifo_depth.
    fifo_.resize(std::bit_ceil(std::max<u32>(params_.fifo_depth, 1)));
    fifo_mask_ = static_cast<u32>(fifo_.size()) - 1;
    bfifo_.resize(1);
}

void
FlexInterface::setNumCores(u32 cores)
{
    bfifo_.resize(std::max<u32>(cores, 1));
}

CommitAction
FlexInterface::offer(const CommitPacket &packet, Cycle now)
{
    const InstrType type = static_cast<InstrType>(packet.opcode);
    const ForwardPolicy policy = cfgr_.policy(type);
    switch (policy) {
      case ForwardPolicy::kIgnore:
        return CommitAction::kProceed;
      case ForwardPolicy::kIfNotFull:
        if (fifoFull()) {
            ++dropped_;
            return CommitAction::kProceed;
        }
        break;
      case ForwardPolicy::kAlways:
      case ForwardPolicy::kWaitAck:
        if (fifoFull()) {
            ++commit_stalls_;
            return CommitAction::kStall;
        }
        break;
    }

    const bool wait_ack = policy == ForwardPolicy::kWaitAck;
    // Write into the ring slot directly: the packet copy is the bulk
    // of the cost on the commit path, so make exactly one.
    Entry &entry = fifo_[(fifo_head_ + fifo_count_) & fifo_mask_];
    ++fifo_count_;
    entry.packet = packet;
    entry.packet.wants_ack = wait_ack;
    entry.ready_at = now + params_.sync_cycles;
    fabric_idle_ = false;
    ++forwarded_;
    ++forwarded_by_type_[type];
    return wait_ack ? CommitAction::kWaitAck : CommitAction::kProceed;
}

std::optional<CommitPacket>
FlexInterface::popReady(Cycle now)
{
    const CommitPacket *head = peekReady(now);
    if (!head)
        return std::nullopt;
    CommitPacket packet = *head;
    popFront();
    return packet;
}

std::optional<u32>
FlexInterface::popBfifo(u8 core)
{
    std::deque<u32> &lane = bfifo_[core];
    if (lane.empty())
        return std::nullopt;
    const u32 value = lane.front();
    lane.pop_front();
    return value;
}

void
FlexInterface::raiseTrap(Addr pc, u8 core)
{
    if (!trap_pending_) {
        trap_pending_ = true;
        trap_pc_ = pc;
        trap_core_ = core;
    }
    ++traps_;
}

}  // namespace flexcore
