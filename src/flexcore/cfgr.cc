#include "flexcore/cfgr.h"

namespace flexcore {

void
Cfgr::setAll(ForwardPolicy policy)
{
    value_ = 0;
    for (unsigned type = 0; type < kNumInstrTypes; ++type)
        value_ |= static_cast<u64>(policy) << (2 * type);
}

}  // namespace flexcore
