/**
 * @file
 * Timing model of the reconfigurable fabric (or, at period 1 with no
 * synchronizers, of an ASIC extension). The fabric runs at an integer
 * divisor of the core clock, dequeues at most one FFIFO packet per
 * fabric cycle into a pipelined monitor, and freezes while a meta-data
 * cache miss is serviced over the shared bus. Extra meta-data cache
 * operations beyond a packet's first (e.g. the read+write of a BC
 * store, or read-modify-write when bit-mask writes are disabled) block
 * packet input for one fabric cycle each, exactly like a structural
 * hazard on the single cache port.
 */

#ifndef FLEXCORE_FLEXCORE_FABRIC_H_
#define FLEXCORE_FLEXCORE_FABRIC_H_

#include <deque>
#include <vector>

#include "common/stats.h"
#include "flexcore/interface.h"
#include "memory/bus.h"
#include "memory/meta_cache.h"
#include "monitors/monitor.h"

namespace flexcore {

/**
 * Optional meta-data TLB (§III-B: "optionally a TLB if virtual memory
 * is supported"). The paper's prototype omits it, so it defaults off;
 * when enabled, every meta-data access is translated first, and a TLB
 * miss freezes the fabric for a page-table walk on the shared bus.
 */
struct MetaTlbParams
{
    bool enabled = false;
    u32 entries = 16;        //!< direct-mapped
    u32 page_shift = 12;     //!< 4 KB pages
};

struct FabricParams
{
    /** Core cycles per fabric cycle: 1 = ASIC/1X, 2 = 0.5X, 4 = 0.25X. */
    u32 period = 2;
    /** Core-side instruction pre-decoding (§III-C; ablation knob). */
    bool predecode = true;
    CacheParams meta_cache{4 * 1024, 32, 4};
    /** Bit-granularity meta-data writes (§III-D; ablation knob). */
    bool bitmask_writes = true;
    MetaTlbParams tlb;
    /** Record the freeze-run-length histogram (SystemConfig mirrors). */
    bool histograms = false;
};

class Fabric
{
  public:
    Fabric(StatGroup *parent, FlexInterface *iface, Bus *bus,
           Monitor *monitor, FabricParams params);

    /**
     * Advance one *core* cycle (internally divided to fabric cycles).
     * Called every system cycle; on most of them the divider does not
     * wrap and nothing happens, so that path is inline.
     */
    void
    tick(Cycle now)
    {
        if (++divider_ >= params_.period) {
            divider_ = 0;
            boundary(now);
        }
        iface_->setFabricIdle(idle());
    }

    /**
     * Bulk-advance @p cycles quiescent core cycles. Only legal while
     * idle(): every divided fabric cycle inside the stretch would be a
     * no-op, so only the clock divider (and a possibly unflushed
     * freeze-run histogram entry) needs updating.
     */
    void advanceIdle(u64 cycles);

    /** True when no packet is buffered or in flight. */
    bool
    idle() const
    {
        return !have_pending_ && !frozen_ && pipe_count_ == 0 &&
               iface_->fifoSize() == 0;
    }

    MetaCache &metaCache() { return meta_cache_; }
    Monitor *monitor() { return monitor_; }
    const FabricParams &params() const { return params_; }

    /** Bus arbitration port for meta refills/walks (default 0). A
     * per-core fabric uses its core's port; a shared fabric keeps 0. */
    void setBusPort(u8 port) { bus_port_ = port; }

    /**
     * Shared-topology monitor bank: one monitor instance per core, all
     * of the same kind, so each core's shadow/meta-data state stays
     * private while one time-multiplexed fabric does the processing.
     * Packets dispatch to @p bank[packet.core]; bank[0] must equal the
     * constructor's monitor. Unset (the default, and always for
     * per-core fabrics) every packet goes to the constructor's monitor.
     */
    void setMonitorBank(std::vector<Monitor *> bank)
    {
        monitor_bank_ = std::move(bank);
    }

    /** True while a meta refill / table walk is in flight on the bus. */
    bool frozen() const { return frozen_; }

    /**
     * Attach a trace sink (null = off). Frozen stretches then emit
     * `fabric_freeze` duration events on tid 3, independent of the
     * freeze-run histogram (which needs SystemConfig::histograms).
     */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }
    /** Close an open freeze episode (end of run). */
    void flushTrace(Cycle now);

    u64 packetsProcessed() const { return packets_.value(); }
    u64 metaStallCycles() const { return meta_stall_cycles_.value(); }
    u64 tlbMisses() const { return tlb_misses_.value(); }

  private:
    // The threaded burst engine's functional-warming path reuses the
    // monitor-processing recipe of fabricCycle() without the timing
    // pipe; it needs the same private monitor/interface handles.
    friend class ThreadedEngine;

    /** Deferred side effects applied when a packet leaves the pipe. */
    struct InFlight
    {
        u32 remaining = 0;   // fabric cycles until completion
        bool wants_ack = false;
        bool trap = false;
        const char *trap_reason = nullptr;
        bool has_bfifo = false;
        u32 bfifo = 0;
        Addr pc = 0;
        u8 core = 0;         // routes CACK/BFIFO/TRAP (shared fabric)
    };

    /** One fabric-clock boundary: freeze bookkeeping + fabricCycle. */
    void boundary(Cycle now);
    void fabricCycle(Cycle now);
    /** Access the meta cache; returns false if frozen on a miss. */
    bool metaAccess(const MetaAccess &op);
    /** TLB lookup; returns false if frozen on a table walk. */
    bool tlbLookup(Addr meta_addr);

    /** Monitor handling @p core's packets (bank lookup or the default). */
    Monitor *
    monitorFor(u8 core) const
    {
        return monitor_bank_.empty() ? monitor_ : monitor_bank_[core];
    }

    FlexInterface *iface_;
    Bus *bus_;
    Monitor *monitor_;
    std::vector<Monitor *> monitor_bank_;   //!< shared topology only
    FabricParams params_;
    MetaCache meta_cache_;

    u32 divider_ = 0;
    u8 bus_port_ = 0;              // bus arbitration port for refills
    bool frozen_ = false;          // waiting on a meta refill
    u32 decode_phase_ = 0;         // LUT-decoder occupancy (no predecode)
    /**
     * The monitor pipeline, as a fixed ring: at most one packet enters
     * per fabric cycle and each retires after pipelineDepth() cycles,
     * so occupancy never exceeds pipelineDepth() + 1. The ring is
     * allocated at the next power of two of that bound so the per-cycle
     * advance/retire indices wrap with a mask, not a divide.
     * pipe_count_ is the fill.
     */
    std::vector<InFlight> pipe_;
    u32 pipe_mask_ = 0;
    u32 pipe_head_ = 0;
    u32 pipe_count_ = 0;

    /** Append to the monitor pipeline ring. */
    void
    pipePush(const InFlight &flight)
    {
        pipe_[(pipe_head_ + pipe_count_) & pipe_mask_] = flight;
        ++pipe_count_;
    }

    /** Direct-mapped meta-data TLB entries (valid + tag = VPN). */
    struct TlbEntry
    {
        bool valid = false;
        u32 vpn = 0;
    };
    std::vector<TlbEntry> tlb_;

    // A dequeued packet whose extra cache ops are still draining.
    bool have_pending_ = false;
    InFlight pending_effects_;
    std::array<MetaAccess, 4> pending_ops_;
    unsigned pending_num_ops_ = 0;
    unsigned pending_idx_ = 0;
    u32 pending_extra_input_block_ = 0;   // e.g. LUT decode w/o predecode

    u64 freeze_run_ = 0;   //!< fabric cycles in the current frozen run

    TraceSink *trace_ = nullptr;
    /** Core cycle the open freeze episode started (kCycleNever: none).
     * Episodes open and close at fabric-clock boundaries, so they can
     * never span a quiescent fast-forward stretch (the fabric is not
     * idle while frozen, nor until the post-unfreeze boundary has
     * processed the pending packet) — trace output stays byte-identical
     * with fast-forward on or off, like the core's episodes. */
    Cycle freeze_start_ = kCycleNever;

    StatGroup stats_;
    Counter packets_;
    Counter meta_accesses_;
    Counter meta_misses_;
    Counter meta_stall_cycles_;
    Counter input_block_cycles_;
    Counter tlb_hits_;
    Counter tlb_misses_;
    Histogram freeze_runs_;
};

}  // namespace flexcore

#endif  // FLEXCORE_FLEXCORE_FABRIC_H_
