/**
 * @file
 * The core-fabric interface module (§III-C): forwarding configuration
 * register, forward FIFO with clock-domain-crossing latency, back FIFO
 * (BFIFO) for 'read from co-processor' values, and the CTRL signals
 * (CACK, EMPTY, TRAP, PACK).
 */

#ifndef FLEXCORE_FLEXCORE_INTERFACE_H_
#define FLEXCORE_FLEXCORE_INTERFACE_H_

#include <deque>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "flexcore/cfgr.h"
#include "flexcore/packet.h"

namespace flexcore {

/** Outcome of offering a committing instruction to the interface. */
enum class CommitAction : u8 {
    kProceed,    //!< commit may complete this cycle
    kStall,      //!< FIFO full under kAlways/kWaitAck: retry next cycle
    kWaitAck,    //!< enqueued; commit must wait for CACK
};

class FlexInterface
{
  public:
    struct Params
    {
        u32 fifo_depth = 64;     //!< forward FIFO entries (§V-A default)
        u32 sync_cycles = 1;     //!< CDC synchronizer latency, core cycles
    };

    FlexInterface(StatGroup *parent, Params params);

    /**
     * Size the per-core response state (BFIFO lanes, CACK flags) for a
     * shared (time-multiplexed) interface serving @p cores cores.
     * Defaults to 1; per-core interfaces never call it. Cores offer in
     * core-index order within a cycle, which is the push arbitration —
     * deterministic by construction (docs/multicore.md).
     */
    void setNumCores(u32 cores);

    Cfgr &cfgr() { return cfgr_; }
    const Cfgr &cfgr() const { return cfgr_; }

    // ---- Core side ----

    /**
     * Offer a committing instruction. Applies the CFGR policy for its
     * class; pushes a packet when the policy and occupancy allow.
     */
    CommitAction offer(const CommitPacket &packet, Cycle now);

    /** TRAP signal from the fabric; sticky until acknowledged (PACK). */
    bool trapPending() const { return trap_pending_; }
    Addr trapPc() const { return trap_pc_; }
    /** Core whose packet raised the pending trap (0 single-core). */
    u8 trapCore() const { return trap_core_; }
    /** PACK: acknowledge the trap. */
    void ackTrap() { trap_pending_ = false; }

    /** CACK arrived for @p core's in-flight wait-ack instruction. */
    bool ackReady(u8 core = 0) const
    {
        return (ack_ready_mask_ & (1u << core)) != 0;
    }
    void consumeAck(u8 core = 0) { ack_ready_mask_ &= ~(1u << core); }

    /** Pop a BFIFO value for @p core ('read from co-processor'). */
    std::optional<u32> popBfifo(u8 core = 0);

    /** EMPTY: no packet queued and the fabric pipeline is drained. */
    bool empty() const { return fifo_count_ == 0 && fabric_idle_; }

    // ---- Fabric side ----

    /** Dequeue the next packet whose synchronizer delay has elapsed. */
    std::optional<CommitPacket> popReady(Cycle now);

    /**
     * Zero-copy variant: the head packet if its synchronizer delay has
     * elapsed, else null. The pointer stays valid until popFront().
     */
    const CommitPacket *
    peekReady(Cycle now) const
    {
        if (fifo_count_ == 0 || fifo_[fifo_head_].ready_at > now)
            return nullptr;
        return &fifo_[fifo_head_].packet;
    }

    /** Drop the head packet (pairs with a non-null peekReady()). */
    void
    popFront()
    {
        fifo_head_ = (fifo_head_ + 1) & fifo_mask_;
        --fifo_count_;
    }

    /** Fabric reports pipeline-idle status each fabric cycle. */
    void setFabricIdle(bool idle) { fabric_idle_ = idle; }

    /** CACK for @p core's completed wait-ack packet. */
    void signalAck(u8 core = 0) { ack_ready_mask_ |= 1u << core; }

    /** Push a 'read from co-processor' return value for @p core. */
    void pushBfifo(u32 value, u8 core = 0)
    {
        bfifo_[core].push_back(value);
    }

    /** Fabric raises an exception (imprecise; PC is informational).
     * @p core attributes it to the offending packet's core. */
    void raiseTrap(Addr pc, u8 core = 0);

    /**
     * Fault-injection hook: mutable access to the @p pick-th queued
     * packet (modulo the current occupancy, oldest first), or null
     * when the FIFO is empty. Only the fault injector uses this to
     * corrupt in-flight packet fields.
     */
    CommitPacket *
    queuedPacket(u32 pick)
    {
        if (fifo_count_ == 0)
            return nullptr;
        const u32 idx =
            (fifo_head_ + pick % fifo_count_) & fifo_mask_;
        return &fifo_[idx].packet;
    }

    // ---- Introspection / statistics ----

    u32 fifoDepth() const { return params_.fifo_depth; }
    size_t fifoSize() const { return fifo_count_; }
    bool fifoFull() const { return fifo_count_ >= params_.fifo_depth; }

    /**
     * Record the current FFIFO occupancy into the occupancy histogram.
     * Called once per core cycle by System when histogram sampling is
     * enabled (SystemConfig::histograms); costs nothing otherwise.
     */
    void sampleOccupancy() { occupancy_.add(fifo_count_); }
    /** Record @p n per-cycle samples at once (fast-forward stretches). */
    void sampleOccupancy(u64 n) { occupancy_.add(fifo_count_, n); }
    const Histogram &occupancyHistogram() const { return occupancy_; }

    u64 forwardedCount() const { return forwarded_.value(); }
    u64 droppedCount() const { return dropped_.value(); }
    u64 stallCycles() const { return commit_stalls_.value(); }
    u64 forwardedOfType(InstrType type) const
    {
        return forwarded_by_type_[type];
    }

  private:
    // The threaded burst engine (src/core/threaded.cc) inlines the
    // common-case offer() push to keep superblock commits branch-lean;
    // it replicates this class's bookkeeping byte-exactly.
    friend class ThreadedEngine;

    struct Entry
    {
        CommitPacket packet;
        Cycle ready_at = 0;
    };

    Params params_;
    Cfgr cfgr_;
    /**
     * The forward FIFO, as a fixed ring buffer: offer() never pushes
     * past fifo_depth entries, and a bounded ring avoids the per-chunk
     * heap traffic a deque of ~90-byte entries would generate on the
     * commit path. The ring is allocated at the next power of two of
     * fifo_depth so indices wrap with a mask — `% size()` on a runtime
     * size is a hardware divide on an index computed at least once per
     * forwarded commit and once per fabric dequeue. Occupancy is still
     * bounded by fifo_depth (fifoFull()); fifo_count_ is the fill.
     */
    std::vector<Entry> fifo_;
    u32 fifo_mask_ = 0;
    u32 fifo_head_ = 0;
    u32 fifo_count_ = 0;
    /** One BFIFO lane per core (index 0 is the whole single-core FIFO). */
    std::vector<std::deque<u32>> bfifo_;
    bool fabric_idle_ = true;
    u32 ack_ready_mask_ = 0;   //!< CACK flags, one bit per core
    bool trap_pending_ = false;
    Addr trap_pc_ = 0;
    u8 trap_core_ = 0;

    StatGroup stats_;
    Counter forwarded_;
    Counter dropped_;
    Counter commit_stalls_;
    Counter traps_;
    Histogram occupancy_;
    Formula fill_frac_;
    u64 forwarded_by_type_[kNumInstrTypes] = {};
};

}  // namespace flexcore

#endif  // FLEXCORE_FLEXCORE_INTERFACE_H_
