/**
 * @file
 * The forward-FIFO packet: one committed instruction's trace record,
 * with exactly the fields and widths of Table II in the paper. The
 * simulator additionally carries the decoded Instruction struct, which
 * stands in for the hardware's pre-decoded DECODE/EXTRA signal bundles
 * (the pre-decode ablation charges fabric cycles when monitors must
 * decode INST themselves).
 */

#ifndef FLEXCORE_FLEXCORE_PACKET_H_
#define FLEXCORE_FLEXCORE_PACKET_H_

#include <array>
#include <string_view>

#include "common/types.h"
#include "isa/instruction.h"

namespace flexcore {

/** Table II: one FFIFO entry. */
struct CommitPacket
{
    u32 pc = 0;        //!< PC (32 bits)
    u32 inst = 0;      //!< undecoded instruction (32 bits)
    u32 addr = 0;      //!< load/store effective address (32 bits)
    u32 res = 0;       //!< instruction result (32 bits)
    u32 srcv1 = 0;     //!< source operand 1 value (32 bits)
    u32 srcv2 = 0;     //!< source operand 2 value (32 bits)
    u8 cond = 0;       //!< condition codes NZVC (4 bits)
    bool branch = false;  //!< computed branch direction (1 bit)
    u8 opcode = 0;     //!< decoded opcode class, InstrType (5 bits)
    u32 decode = 0;    //!< miscellaneous decoded signals (32 bits)
    u32 extra = 0;     //!< extra processor control signals (32 bits)
    u16 src1 = 0;      //!< decoded source 1 physical register (9 bits)
    u16 src2 = 0;      //!< decoded source 2 physical register (9 bits)
    u16 dest = 0;      //!< decoded destination physical register (9 bits)

    /** Simulator-side convenience: the decoded instruction. */
    Instruction di;

    /** True if the fabric must acknowledge (CFGR wait-ack class). */
    bool wants_ack = false;

    /**
     * Issuing core index. Always 0 on single-core systems; on a shared
     * (time-multiplexed) fabric it routes CACK/BFIFO/TRAP responses and
     * selects the monitor's per-core shadow bank (docs/multicore.md).
     */
    u8 core = 0;
};

/** Description of one Table II field, for the interface report. */
struct PacketFieldSpec
{
    std::string_view module;   // "CFGR", "CTRL", "FFIFO", "BFIFO"
    std::string_view name;
    std::string_view desc;
    unsigned bits;
};

/** All interface fields of Table II, in the paper's order. */
const std::array<PacketFieldSpec, 21> &packetFieldSpecs();

/** Sum of FFIFO payload bits (one forward-FIFO entry's width). */
unsigned ffifoEntryBits();

}  // namespace flexcore

#endif  // FLEXCORE_FLEXCORE_PACKET_H_
