/**
 * @file
 * The forwarding configuration register (CFGR): two bits of forwarding
 * policy per CFGR instruction class, 32 classes, packed into one 64-bit
 * register exactly as in Table II.
 */

#ifndef FLEXCORE_FLEXCORE_CFGR_H_
#define FLEXCORE_FLEXCORE_CFGR_H_

#include "common/types.h"
#include "isa/opcodes.h"

namespace flexcore {

/** The four per-class behaviors of §III-C. */
enum class ForwardPolicy : u8 {
    kIgnore = 0,      //!< never forward this class
    kIfNotFull = 1,   //!< forward unless the FIFO is full (may drop)
    kAlways = 2,      //!< forward; stall commit while the FIFO is full
    kWaitAck = 3,     //!< forward and stall commit until CACK
};

class Cfgr
{
  public:
    Cfgr() = default;

    ForwardPolicy
    policy(InstrType type) const
    {
        return static_cast<ForwardPolicy>((value_ >> (2 * type)) & 3);
    }

    void
    setPolicy(InstrType type, ForwardPolicy policy)
    {
        const unsigned shift = 2 * type;
        value_ = (value_ & ~(u64{3} << shift)) |
                 (static_cast<u64>(policy) << shift);
    }

    /** Apply one policy to every class. */
    void setAll(ForwardPolicy policy);

    /** Raw 64-bit register value (2 bits per class). */
    u64 value() const { return value_; }
    void setValue(u64 value) { value_ = value; }

  private:
    u64 value_ = 0;
};

}  // namespace flexcore

#endif  // FLEXCORE_FLEXCORE_CFGR_H_
