/**
 * @file
 * The embedded meta-data (shadow) register file (§III-E): a dedicated
 * hardware block inside the reconfigurable fabric holding an 8-bit
 * shadow entry for every physical integer register of the main core,
 * addressed by the 9-bit register numbers carried in FFIFO packets.
 * Monitors store per-register tags here (DIFT uses 1 bit, BC 4 bits).
 */

#ifndef FLEXCORE_FLEXCORE_SHADOW_REGFILE_H_
#define FLEXCORE_FLEXCORE_SHADOW_REGFILE_H_

#include <array>

#include "common/types.h"
#include "isa/registers.h"

namespace flexcore {

class ShadowRegFile
{
  public:
    ShadowRegFile() { clear(); }

    /** Read the shadow entry for a physical register. %g0 is always 0. */
    u8
    read(u16 phys_reg) const
    {
        return phys_reg == 0 ? 0 : entries_[phys_reg % kNumPhysRegs];
    }

    /** Write the shadow entry for a physical register (%g0 ignored). */
    void
    write(u16 phys_reg, u8 value)
    {
        if (phys_reg != 0)
            entries_[phys_reg % kNumPhysRegs] = value;
    }

    void clear() { entries_.fill(0); }

    /**
     * Fault-injection hook: flip one bit of a shadow entry in place
     * (entry 0 is hard-wired zero and ignores flips).
     */
    void
    flipBit(u16 phys_reg, u32 bit)
    {
        if (phys_reg != 0)
            entries_[phys_reg % kNumPhysRegs] ^=
                static_cast<u8>(1u << (bit & 7));
    }

    /** Total storage bits (for the synthesis model). */
    static constexpr unsigned storageBits() { return kNumPhysRegs * 8; }

  private:
    std::array<u8, kNumPhysRegs> entries_;
};

}  // namespace flexcore

#endif  // FLEXCORE_FLEXCORE_SHADOW_REGFILE_H_
