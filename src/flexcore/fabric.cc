#include "flexcore/fabric.h"

#include <bit>

namespace flexcore {

Fabric::Fabric(StatGroup *parent, FlexInterface *iface, Bus *bus,
               Monitor *monitor, FabricParams params)
    : iface_(iface),
      bus_(bus),
      monitor_(monitor),
      params_(params),
      meta_cache_(parent, params.meta_cache, params.bitmask_writes),
      stats_("fabric", parent),
      packets_(&stats_, "packets", "packets processed"),
      meta_accesses_(&stats_, "meta_accesses", "meta-data cache accesses"),
      meta_misses_(&stats_, "meta_misses", "meta-data cache misses"),
      meta_stall_cycles_(&stats_, "meta_stall_cycles",
                         "fabric cycles frozen on meta refills"),
      input_block_cycles_(&stats_, "input_block_cycles",
                          "fabric cycles input was blocked by extra ops"),
      tlb_hits_(&stats_, "tlb_hits", "meta-data TLB hits"),
      tlb_misses_(&stats_, "tlb_misses", "meta-data TLB misses"),
      freeze_runs_(&stats_, "freeze_runs",
                   "fabric cycles per contiguous meta-refill freeze",
                   Histogram::Params{1, 0, 12, true})
{
    if (params_.tlb.enabled)
        tlb_.resize(params_.tlb.entries);
    // Ring capacity: one packet enters per fabric cycle and retires
    // after pipelineDepth() cycles, so depth + 2 slots always suffice;
    // round up to a power of two so indices wrap with pipe_mask_.
    pipe_.resize(std::bit_ceil((monitor_ ? monitor_->pipelineDepth() : 0u)
                               + 2u));
    pipe_mask_ = static_cast<u32>(pipe_.size()) - 1;
}

bool
Fabric::tlbLookup(Addr meta_addr)
{
    if (!params_.tlb.enabled)
        return true;
    const u32 vpn = meta_addr >> params_.tlb.page_shift;
    TlbEntry &entry = tlb_[vpn % tlb_.size()];
    if (entry.valid && entry.vpn == vpn) {
        ++tlb_hits_;
        return true;
    }
    ++tlb_misses_;
    frozen_ = true;
    // Page-table walk: one line read from memory over the shared bus.
    BusRequest req;
    req.op = BusOp::kReadLine;
    req.addr = vpn << params_.tlb.page_shift;
    req.port = bus_port_;
    req.on_complete = [this, vpn]() {
        TlbEntry &victim = tlb_[vpn % tlb_.size()];
        victim.valid = true;
        victim.vpn = vpn;
        // Unlike a cache refill, the access itself has not happened
        // yet: pending_idx_ stays put and the op retries (and now
        // hits in the TLB).
        frozen_ = false;
    };
    bus_->request(std::move(req));
    return false;
}

void
Fabric::boundary(Cycle now)
{
    if (params_.histograms) {
        if (frozen_) {
            ++freeze_run_;
        } else if (freeze_run_ > 0) {
            freeze_runs_.add(freeze_run_);
            freeze_run_ = 0;
        }
    }
    if (trace_ && !frozen_ && freeze_start_ != kCycleNever) {
        trace_->complete("fabric_freeze", "fabric", 3, freeze_start_,
                         now);
        freeze_start_ = kCycleNever;
    }
    if (frozen_)
        ++meta_stall_cycles_;
    else
        fabricCycle(now);
    // A freeze that began inside fabricCycle() opens its episode at
    // this boundary, mirroring meta_stall_cycles_ accounting.
    if (trace_ && frozen_ && freeze_start_ == kCycleNever)
        freeze_start_ = now;
}

void
Fabric::flushTrace(Cycle now)
{
    if (trace_ && freeze_start_ != kCycleNever && now > freeze_start_) {
        trace_->complete("fabric_freeze", "fabric", 3, freeze_start_,
                         now);
        freeze_start_ = kCycleNever;
    }
}

void
Fabric::advanceIdle(u64 cycles)
{
    // The divider keeps counting while the fabric idles; resets at each
    // period boundary are exactly a modulo.
    const u64 total = divider_ + cycles;
    const bool crossed_boundary = total >= params_.period;
    divider_ = static_cast<u32>(total % params_.period);
    // tick() flushes a finished freeze run at the first non-frozen
    // fabric cycle; if that boundary falls inside the stretch, flush
    // here instead (histograms are orderless, so this matches).
    if (crossed_boundary && params_.histograms && freeze_run_ > 0) {
        freeze_runs_.add(freeze_run_);
        freeze_run_ = 0;
    }
    iface_->setFabricIdle(true);
}

bool
Fabric::metaAccess(const MetaAccess &op)
{
    if (!tlbLookup(op.addr))
        return false;
    ++meta_accesses_;
    if (meta_cache_.access(op.addr, op.is_write))
        return true;

    ++meta_misses_;
    frozen_ = true;
    const u32 line_bytes = params_.meta_cache.line_bytes;
    const Addr line = op.addr & ~(line_bytes - 1);
    const bool dirty = op.is_write;
    BusRequest req;
    req.op = BusOp::kReadLine;
    req.addr = line;
    req.port = bus_port_;
    req.on_complete = [this, line, dirty]() {
        const Cache::FillResult fill = meta_cache_.fill(line, dirty);
        if (fill.evicted_dirty) {
            BusRequest wb;
            wb.op = BusOp::kWriteLine;
            wb.addr = fill.victim_addr;
            wb.port = bus_port_;
            bus_->request(std::move(wb));
        }
        // The access that missed is complete once the line arrives.
        ++pending_idx_;
        frozen_ = false;
    };
    bus_->request(std::move(req));
    return false;
}

void
Fabric::fabricCycle(Cycle now)
{
    // 1. Advance the monitor pipeline; retire the head packet.
    if (pipe_count_ > 0) {
        for (u32 i = 0; i < pipe_count_; ++i) {
            InFlight &flight =
                pipe_[(pipe_head_ + i) & pipe_mask_];
            if (flight.remaining > 0)
                --flight.remaining;
        }
        while (pipe_count_ > 0 && pipe_[pipe_head_].remaining == 0) {
            const InFlight &done = pipe_[pipe_head_];
            if (done.trap) {
                monitorFor(done.core)
                    ->noteTrap(done.trap_reason ? done.trap_reason
                                                : "check failed");
                iface_->raiseTrap(done.pc, done.core);
            }
            if (done.has_bfifo)
                iface_->pushBfifo(done.bfifo, done.core);
            if (done.wants_ack)
                iface_->signalAck(done.core);
            pipe_head_ = (pipe_head_ + 1) & pipe_mask_;
            --pipe_count_;
        }
    }

    // 2. Drain extra cache ops of the packet at the pipe entrance.
    if (have_pending_) {
        ++input_block_cycles_;
        if (pending_extra_input_block_ > 0) {
            // The LUT decoder occupies this input cycle, but the first
            // cache stage can start in the same fabric cycle.
            --pending_extra_input_block_;
        }
        if (pending_idx_ < pending_num_ops_) {
            if (!metaAccess(pending_ops_[pending_idx_]))
                return;   // frozen; the refill callback advances idx
            ++pending_idx_;
            if (pending_idx_ < pending_num_ops_ ||
                pending_extra_input_block_ > 0)
                return;
        }
        pending_effects_.remaining = monitor_->pipelineDepth();
        pipePush(pending_effects_);
        have_pending_ = false;
        return;
    }

    // 3. Dequeue the next packet (one per fabric cycle). Peek + pop
    // keeps the packet in place instead of copying it out of the FIFO.
    const CommitPacket *packet = iface_->peekReady(now);
    if (!packet)
        return;
    ++packets_;

    MonitorResult result;
    monitorFor(packet->core)->process(*packet, &result);

    // Expand sub-word writes into read-modify-write pairs when the
    // bit-granularity write feature is disabled (§III-D ablation).
    pending_num_ops_ = 0;
    for (unsigned i = 0; i < result.num_ops; ++i) {
        const MetaAccess &op = result.ops[i];
        if (op.is_write && !params_.bitmask_writes &&
            pending_num_ops_ < pending_ops_.size()) {
            pending_ops_[pending_num_ops_++] = {op.addr, false};
        }
        if (pending_num_ops_ < pending_ops_.size())
            pending_ops_[pending_num_ops_++] = op;
    }

    pending_effects_ = InFlight{};
    pending_effects_.wants_ack = packet->wants_ack;
    pending_effects_.trap = result.trap;
    pending_effects_.trap_reason = result.trap_reason;
    pending_effects_.has_bfifo = result.has_bfifo;
    pending_effects_.bfifo = result.bfifo;
    pending_effects_.pc = packet->pc;
    pending_effects_.core = packet->core;
    iface_->popFront();   // last use of the peeked packet
    pending_idx_ = 0;
    // Without core-side pre-decoding, the monitor needs its own
    // LUT-based decoder for INST. It is two-stage pipelined, so it
    // sustains two back-to-back packets but stalls the input for one
    // fabric cycle on every third — a ~1/3 throughput loss under
    // saturation (the paper reports DIFT running ~30% faster with
    // core-side decoding).
    pending_extra_input_block_ = 0;
    if (!params_.predecode && ++decode_phase_ % 3 == 0)
        pending_extra_input_block_ = 1;
    have_pending_ = true;

    // First cache op is part of this cycle's pipeline stage: process it
    // now so single-op packets sustain one packet per fabric cycle.
    if (pending_extra_input_block_ == 0) {
        if (pending_idx_ < pending_num_ops_) {
            if (!metaAccess(pending_ops_[pending_idx_]))
                return;
            ++pending_idx_;
        }
        if (pending_idx_ >= pending_num_ops_) {
            pending_effects_.remaining = monitor_->pipelineDepth();
            pipePush(pending_effects_);
            have_pending_ = false;
        }
    }
}

}  // namespace flexcore
