/**
 * @file
 * The unified extension registry: one ExtensionDescriptor per
 * monitoring extension is the single source of truth for everything
 * the rest of the system derives per extension — CLI names and
 * aliases, the monitor factory, fabric pipeline depth, meta-data tag
 * width, the default fabric clock divisor, the CFGR forwarding-class
 * spec, the Table III synthesis inventories, and fault-campaign grid
 * membership. Each extension registers itself from its own source
 * file in src/monitors/, so adding a new extension touches exactly
 * one file (plus the bootstrap list in extensions/builtin.cc). See
 * docs/extensions.md.
 *
 * MonitorKind stays the stable in-memory handle; this registry is the
 * only place allowed to bridge between the enum and per-extension
 * data. Per-extension switch statements anywhere else are a bug.
 */

#ifndef FLEXCORE_EXTENSIONS_REGISTRY_H_
#define FLEXCORE_EXTENSIONS_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "flexcore/cfgr.h"
#include "sim/config.h"
#include "synth/resources.h"

namespace flexcore {

class Monitor;
class SoftwareMonitor;

/** Options a monitor factory may honor (from SystemConfig). */
struct MonitorOptions
{
    /** DIFT taint-tag width: 1 (default) or 4 (multi-source labels). */
    unsigned dift_tag_bits = 1;
};

/** One CFGR programming step: forward @p type under @p policy. */
struct ForwardRule
{
    InstrType type;
    ForwardPolicy policy;
};

/**
 * Everything one monitoring extension declares about itself. The
 * registered descriptor drives the simulator (factory, default
 * fabric period, CFGR programming), the synthesis model (pipeline
 * depth, tapped groups, inventory builders), and every tool (names,
 * aliases, docs, campaign grids).
 */
struct ExtensionDescriptor
{
    MonitorKind kind = MonitorKind::kNone;

    /** Canonical lowercase name; the one name in all JSON output. */
    std::string_view name;
    /** Accepted spellings besides @ref name (parse-only). */
    std::vector<std::string_view> aliases;
    /** One-line description (--list-monitors, docs). */
    std::string_view doc;

    /** Construct a fresh monitor instance. */
    std::unique_ptr<Monitor> (*make)(const MonitorOptions &options) =
        nullptr;

    /** Fabric pipeline depth in fabric cycles (§IV: 3 to 6 stages). */
    unsigned pipeline_depth = 0;
    /** Meta-data bits per data word of the default configuration
     * (0 = stateless, e.g. SEC). */
    unsigned tag_bits_per_word = 0;
    /** Default fabric clock divisor in kFlexFabric mode (§V-C). */
    u32 default_flex_period = 0;

    /**
     * Declarative CFGR forwarding spec: starting from all-ignore,
     * apply these rules in order. Replaces the per-monitor virtual
     * configureCfgr code of earlier revisions.
     */
    std::vector<ForwardRule> forward;

    /** Commit-stage signal groups tapped (Table II / Table III). */
    unsigned tapped_groups = 0;
    /**
     * Build the fabric (FPGA) inventory. The builder receives the
     * descriptor so structural facts stated there — most importantly
     * pipeline_depth, which sizes the pipeline-register stages — are
     * never restated. name/critical_levels/primitives are filled in;
     * the inventory name is derived from the canonical name.
     */
    void (*build_fabric)(const ExtensionDescriptor &desc,
                         Inventory *fabric) = nullptr;
    /** Build the extra blocks of the full-ASIC variant (optional). */
    void (*build_asic)(const ExtensionDescriptor &desc,
                       Inventory *asic) = nullptr;

    /**
     * Member of the paper's four-extension evaluation set: the
     * Table III synthesis report, the table4/fifo sweep grids, and
     * the default fault-coverage campaign all derive their extension
     * lists from this flag.
     */
    bool paper_grid = false;

    /** Append forwarding rules for @p types under one policy. */
    void forwardClasses(std::initializer_list<InstrType> types,
                        ForwardPolicy policy = ForwardPolicy::kAlways);
};

/**
 * Process-global table of registered extensions. Populated once, on
 * first use, from the per-monitor registration functions listed in
 * extensions/builtin.cc; thread-safe to read afterwards.
 */
class ExtensionRegistry
{
  public:
    /** The global registry (lazily built with all built-ins). */
    static const ExtensionRegistry &instance();

    /** Register one extension (fatal on duplicate kind or name). */
    void add(ExtensionDescriptor desc);

    /**
     * Register the software-instrumentation model of one registered
     * extension (--mode software). @p make returns a process-lifetime
     * singleton, matching the software monitor factories.
     */
    void addSoftwareModel(MonitorKind kind,
                          const SoftwareMonitor *(*make)());

    /** Descriptor for @p kind (null for kNone / unregistered). */
    const ExtensionDescriptor *find(MonitorKind kind) const;
    /** Case-insensitive lookup by canonical name or alias. */
    const ExtensionDescriptor *find(std::string_view name) const;

    /** All descriptors, sorted by MonitorKind value. */
    const std::vector<ExtensionDescriptor> &all() const
    {
        return descriptors_;
    }

    /** Kinds with paper_grid set, in registration (enum) order. */
    std::vector<MonitorKind> paperGrid() const;

    /** Software model for @p kind (null if none registered). */
    const SoftwareMonitor *softwareModel(MonitorKind kind) const;
    /** Kinds that have a software model, in enum order. */
    std::vector<MonitorKind> softwareModelKinds() const;

  private:
    struct SoftwareEntry
    {
        MonitorKind kind;
        const SoftwareMonitor *(*make)();
    };

    std::vector<ExtensionDescriptor> descriptors_;
    std::vector<SoftwareEntry> software_;
};

/** Program @p cfgr from the descriptor's forwarding spec. */
void programCfgr(const ExtensionDescriptor &desc, Cfgr *cfgr);

/**
 * Program @p cfgr for @p kind's registered forwarding spec. Returns
 * false (cfgr untouched) for kNone or an unregistered kind.
 */
bool programCfgr(MonitorKind kind, Cfgr *cfgr);

/** Comma-separated canonical names ("umc, dift, ...") for help text. */
std::string knownMonitorNames();

/**
 * Human-readable table of every registered extension (name, aliases,
 * pipeline depth, tag width, default period, doc) plus the software
 * instrumentation models — the --list-monitors output of the tools.
 */
std::string listMonitorsText();

}  // namespace flexcore

#endif  // FLEXCORE_EXTENSIONS_REGISTRY_H_
