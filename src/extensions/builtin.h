/**
 * @file
 * Registration entry points of the built-in extensions. Each function
 * lives in the extension's own source file under src/monitors/ and
 * registers that extension's complete ExtensionDescriptor; the
 * bootstrap list in builtin.cc calls them all exactly once before the
 * registry is first read. A static library would silently drop
 * initializer-based self-registration objects whose object files
 * nothing references, so registration is an explicit call instead.
 */

#ifndef FLEXCORE_EXTENSIONS_BUILTIN_H_
#define FLEXCORE_EXTENSIONS_BUILTIN_H_

namespace flexcore {

class ExtensionRegistry;

void registerUmcExtension(ExtensionRegistry &registry);
void registerDiftExtension(ExtensionRegistry &registry);
void registerBcExtension(ExtensionRegistry &registry);
void registerSecExtension(ExtensionRegistry &registry);
void registerProfExtension(ExtensionRegistry &registry);
void registerMemProtExtension(ExtensionRegistry &registry);
void registerWatchExtension(ExtensionRegistry &registry);
void registerRefCountExtension(ExtensionRegistry &registry);
/** Software-instrumentation models (--mode software) of the above. */
void registerSoftwareModels(ExtensionRegistry &registry);

/** Run every registration above against @p registry. */
void registerBuiltinExtensions(ExtensionRegistry &registry);

}  // namespace flexcore

#endif  // FLEXCORE_EXTENSIONS_BUILTIN_H_
