#include "extensions/builtin.h"

#include "extensions/registry.h"

namespace flexcore {

void
registerBuiltinExtensions(ExtensionRegistry &registry)
{
    // Enum order; ExtensionRegistry::all() relies on it being sorted.
    registerUmcExtension(registry);
    registerDiftExtension(registry);
    registerBcExtension(registry);
    registerSecExtension(registry);
    registerProfExtension(registry);
    registerMemProtExtension(registry);
    registerWatchExtension(registry);
    registerRefCountExtension(registry);
    registerSoftwareModels(registry);
}

}  // namespace flexcore
