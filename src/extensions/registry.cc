#include "extensions/registry.h"

#include <algorithm>
#include <cctype>

#include "common/log.h"
#include "extensions/builtin.h"
#include "monitors/monitor.h"
#include "monitors/software.h"

namespace flexcore {

namespace {

bool
equalsIgnoreCase(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

}  // namespace

void
ExtensionDescriptor::forwardClasses(
    std::initializer_list<InstrType> types, ForwardPolicy policy)
{
    for (InstrType type : types)
        forward.push_back({type, policy});
}

const ExtensionRegistry &
ExtensionRegistry::instance()
{
    static const ExtensionRegistry *global = [] {
        auto *registry = new ExtensionRegistry;
        registerBuiltinExtensions(*registry);
        return registry;
    }();
    return *global;
}

void
ExtensionRegistry::add(ExtensionDescriptor desc)
{
    if (desc.kind == MonitorKind::kNone || desc.name.empty() ||
        !desc.make || !desc.build_fabric) {
        FLEX_FATAL("incomplete extension descriptor '", desc.name, "'");
    }
    for (const ExtensionDescriptor &existing : descriptors_) {
        if (existing.kind == desc.kind ||
            equalsIgnoreCase(existing.name, desc.name)) {
            FLEX_FATAL("duplicate extension registration '", desc.name,
                       "'");
        }
    }
    descriptors_.push_back(std::move(desc));
    std::sort(descriptors_.begin(), descriptors_.end(),
              [](const ExtensionDescriptor &a,
                 const ExtensionDescriptor &b) {
                  return static_cast<u8>(a.kind) <
                         static_cast<u8>(b.kind);
              });
}

void
ExtensionRegistry::addSoftwareModel(MonitorKind kind,
                                    const SoftwareMonitor *(*make)())
{
    if (!find(kind))
        FLEX_FATAL("software model for unregistered extension kind ",
                   static_cast<int>(kind));
    for (const SoftwareEntry &entry : software_) {
        if (entry.kind == kind)
            FLEX_FATAL("duplicate software model registration");
    }
    software_.push_back({kind, make});
}

const ExtensionDescriptor *
ExtensionRegistry::find(MonitorKind kind) const
{
    for (const ExtensionDescriptor &desc : descriptors_) {
        if (desc.kind == kind)
            return &desc;
    }
    return nullptr;
}

const ExtensionDescriptor *
ExtensionRegistry::find(std::string_view name) const
{
    for (const ExtensionDescriptor &desc : descriptors_) {
        if (equalsIgnoreCase(desc.name, name))
            return &desc;
        for (std::string_view alias : desc.aliases) {
            if (equalsIgnoreCase(alias, name))
                return &desc;
        }
    }
    return nullptr;
}

std::vector<MonitorKind>
ExtensionRegistry::paperGrid() const
{
    std::vector<MonitorKind> kinds;
    for (const ExtensionDescriptor &desc : descriptors_) {
        if (desc.paper_grid)
            kinds.push_back(desc.kind);
    }
    return kinds;
}

const SoftwareMonitor *
ExtensionRegistry::softwareModel(MonitorKind kind) const
{
    for (const SoftwareEntry &entry : software_) {
        if (entry.kind == kind)
            return entry.make();
    }
    return nullptr;
}

std::vector<MonitorKind>
ExtensionRegistry::softwareModelKinds() const
{
    std::vector<MonitorKind> kinds;
    for (const SoftwareEntry &entry : software_)
        kinds.push_back(entry.kind);
    std::sort(kinds.begin(), kinds.end(),
              [](MonitorKind a, MonitorKind b) {
                  return static_cast<u8>(a) < static_cast<u8>(b);
              });
    return kinds;
}

void
programCfgr(const ExtensionDescriptor &desc, Cfgr *cfgr)
{
    cfgr->setAll(ForwardPolicy::kIgnore);
    for (const ForwardRule &rule : desc.forward)
        cfgr->setPolicy(rule.type, rule.policy);
}

bool
programCfgr(MonitorKind kind, Cfgr *cfgr)
{
    const ExtensionDescriptor *desc =
        ExtensionRegistry::instance().find(kind);
    if (!desc)
        return false;
    programCfgr(*desc, cfgr);
    return true;
}

std::string
knownMonitorNames()
{
    std::string names;
    for (const ExtensionDescriptor &desc :
         ExtensionRegistry::instance().all()) {
        if (!names.empty())
            names += ", ";
        names += desc.name;
    }
    return names;
}

std::string
listMonitorsText()
{
    const ExtensionRegistry &registry = ExtensionRegistry::instance();
    std::string out = "registered monitoring extensions:\n";
    auto row = [&out](std::string_view name, std::string aliases,
                      std::string depth, std::string tags,
                      std::string period, std::string_view doc) {
        out += "  ";
        out += name;
        out.append(name.size() < 10 ? 10 - name.size() : 1, ' ');
        auto col = [&out](const std::string &text, size_t width) {
            out += text;
            out.append(text.size() < width ? width - text.size() : 1,
                       ' ');
        };
        col(depth, 7);
        col(tags, 6);
        col(period, 8);
        col(aliases, 10);
        out += doc;
        out += '\n';
    };
    row("name", "aliases", "depth", "tags", "period", "description");
    for (const ExtensionDescriptor &desc : registry.all()) {
        std::string aliases;
        for (std::string_view alias : desc.aliases) {
            if (!aliases.empty())
                aliases += ",";
            aliases += alias;
        }
        if (aliases.empty())
            aliases = "-";
        row(desc.name, aliases, std::to_string(desc.pipeline_depth),
            std::to_string(desc.tag_bits_per_word),
            std::to_string(desc.default_flex_period), desc.doc);
    }
    std::string sw_names;
    for (MonitorKind kind : registry.softwareModelKinds()) {
        if (!sw_names.empty())
            sw_names += ", ";
        sw_names += registry.find(kind)->name;
    }
    std::string sw_doc = "inline software-instrumentation models "
                         "(--mode software) of: " +
                         sw_names;
    row("software", "-", "-", "-", "-", sw_doc);
    return out;
}

}  // namespace flexcore
