/**
 * @file
 * Benchmark workloads. Each workload is a self-contained assembly
 * program (generated, with its input data embedded as .word blocks)
 * plus the expected console output computed by a C++ golden model, so
 * every simulation run is functionally verified end to end.
 *
 * The six kernels mirror the MiBench programs used in §V-A: sha, gmac,
 * stringsearch, fft, basicmath, and bitcount.
 */

#ifndef FLEXCORE_WORKLOADS_WORKLOAD_H_
#define FLEXCORE_WORKLOADS_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace flexcore {

struct Workload
{
    std::string name;
    std::string source;             //!< assembly text
    std::string expected_console;   //!< golden-model output
};

/** Size scaling for the benchmark suite. */
enum class WorkloadScale : u8 {
    kTest,     //!< small inputs for unit/integration tests
    kFull,     //!< evaluation-sized inputs (Table IV, figures)
};

Workload makeSha(WorkloadScale scale);
/** Not part of the paper's suite: a register-window stress test. */
Workload makeQsort(WorkloadScale scale);
Workload makeGmac(WorkloadScale scale);
Workload makeStringsearch(WorkloadScale scale);
Workload makeFft(WorkloadScale scale);
Workload makeBasicmath(WorkloadScale scale);
Workload makeBitcount(WorkloadScale scale);

/** All six benchmarks of the paper's evaluation, in Table IV order. */
std::vector<Workload> benchmarkSuite(WorkloadScale scale);

/** "test" / "full" — the wire names of WorkloadScale. */
std::string_view workloadScaleName(WorkloadScale scale);

/** Inverse of workloadScaleName; false for unknown names. */
bool parseWorkloadScale(std::string_view name, WorkloadScale *scale);

/**
 * Materialize one workload by name ("sha", "gmac", "stringsearch",
 * "fft", "basicmath", "bitcount", or the off-suite "qsort") without
 * generating the rest of the suite. Returns false for unknown names.
 */
bool makeWorkload(std::string_view name, WorkloadScale scale,
                  Workload *out);

/** Comma-separated list of every makeWorkload name (error messages). */
std::string knownWorkloadNames();

/** Common runtime prologue: `_start` sets up the stack, calls main,
 * and exits with main's return value. */
std::string runtimePrologue();

/** Render a u32 array as .word lines (16 per line). */
std::string wordData(const std::vector<u32> &words);

}  // namespace flexcore

#endif  // FLEXCORE_WORKLOADS_WORKLOAD_H_
