#include "workloads/scenarios.h"

namespace flexcore {

Workload
scenarioDiftAttack()
{
    // A "network" buffer is tainted by the OS (m.setmtag). The buggy
    // copy loop writes past the destination array into the adjacent
    // function-pointer slot; the program then calls through it. DIFT
    // propagates taint from the input through the copy into the
    // pointer and traps on the indirect jump.
    return {"dift-attack", R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        ; OS taints the 4-word input buffer.
        set input, %l0
        m.setmtag [%l0], 1
        m.setmtag [%l0+4], 1
        m.setmtag [%l0+8], 1
        m.setmtag [%l0+12], 1
        ; Buggy copy: copies 4 words into a 2-word destination,
        ; clobbering the function pointer stored after it.
        set dest, %l1
        mov 0, %l2
copy:   sll %l2, 2, %o0
        ld [%l0+%o0], %o1
        st %o1, [%l1+%o0]
        add %l2, 1, %l2
        cmp %l2, 4
        bne copy
        nop
        ; Call through the (now attacker-controlled) pointer.
        set fptr, %l3
        ld [%l3], %l4
        jmpl %l4, %o7
        nop
        mov 0, %o0
        ta 0
        nop

handler: retl
        nop

        .align 4
input:  .word 0x41414141, 0x41414141, 0x00044440, 0x42424242
dest:   .word 0, 0
fptr:   .word handler
)",
            ""};
}

Workload
scenarioDiftBenign()
{
    return {"dift-benign", R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        set input, %l0
        m.setmtag [%l0], 1
        m.setmtag [%l0+4], 1
        ; Correct copy: respects the destination size.
        set dest, %l1
        ld [%l0], %o1
        st %o1, [%l1]
        ld [%l0+4], %o1
        st %o1, [%l1+4]
        ; Compute on tainted data (allowed), print the sum.
        ld [%l1], %o0
        ld [%l1+4], %o2
        add %o0, %o2, %o0
        ta 2
        mov 10, %o0
        ta 1
        ; Call through an untainted pointer: no trap.
        set fptr, %l3
        ld [%l3], %l4
        jmpl %l4, %o7
        nop
        mov 0, %o0
        ta 0
        nop

handler: retl
        nop

        .align 4
input:  .word 40, 2
dest:   .word 0, 0
fptr:   .word handler
)",
            "42\n"};
}

Workload
scenarioUmcBug()
{
    return {"umc-bug", R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        ; "malloc": the allocator clears init tags for the new block.
        set 0x20000, %l0
        m.clrmtag [%l0]
        m.clrmtag [%l0+4]
        ; Initialize only the first word ...
        mov 7, %o0
        st %o0, [%l0]
        ld [%l0], %o1          ; fine
        ld [%l0+4], %o2        ; read of uninitialized word: trap
        mov 0, %o0
        ta 0
        nop
)",
            ""};
}

Workload
scenarioUmcClean()
{
    return {"umc-clean", R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        set 0x20000, %l0
        m.clrmtag [%l0]
        m.clrmtag [%l0+4]
        mov 7, %o0
        st %o0, [%l0]
        mov 35, %o0
        st %o0, [%l0+4]
        ld [%l0], %o1
        ld [%l0+4], %o2
        add %o1, %o2, %o0
        ta 2
        mov 10, %o0
        ta 1
        mov 0, %o0
        ta 0
        nop
)",
            "42\n"};
}

Workload
scenarioBcOverflow()
{
    return {"bc-overflow", R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        ; Allocate arr[4] with color 5; the returned pointer carries
        ; the same color.
        set arr, %l0
        m.setmtag [%l0], 5
        m.setmtag [%l0+4], 5
        m.setmtag [%l0+8], 5
        m.setmtag [%l0+12], 5
        m.settag %l0, 5
        ; memset walks one element too far (classic off-by-one).
        mov 0, %l1
fill:   sll %l1, 2, %o0
        st %g0, [%l0+%o0]
        add %l1, 1, %l1
        cmp %l1, 5
        bne fill
        nop
        mov 0, %o0
        ta 0
        nop

        .align 4
arr:    .word 1, 2, 3, 4
canary: .word 0xcafef00d
)",
            ""};
}

Workload
scenarioBcClean()
{
    return {"bc-clean", R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        set arr, %l0
        m.setmtag [%l0], 5
        m.setmtag [%l0+4], 5
        m.setmtag [%l0+8], 5
        m.setmtag [%l0+12], 5
        m.settag %l0, 5
        mov 0, %l1
fill:   sll %l1, 2, %o0
        st %l1, [%l0+%o0]
        add %l1, 1, %l1
        cmp %l1, 4
        bne fill
        nop
        ld [%l0+12], %o0
        ta 2
        mov 10, %o0
        ta 1
        mov 0, %o0
        ta 0
        nop

        .align 4
arr:    .word 1, 2, 3, 4
canary: .word 0xcafef00d
)",
            "3\n"};
}

Workload
scenarioSecWorkload()
{
    return {"sec-loop", R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        mov 0, %l0
        mov 1, %l1
        set 20000, %l2
loop:   add %l0, %l1, %l0
        xor %l0, %l1, %o0
        sub %o0, %l1, %o1
        add %l1, 1, %l1
        subcc %l2, 1, %l2
        bne loop
        nop
        mov 0, %o0
        ta 0
        nop
)",
            ""};
}

}  // namespace flexcore
