/**
 * @file
 * qsort: recursive in-place quicksort (Hoare partition). Not part of
 * the paper's six-benchmark suite — it exists as a register-window
 * stress test: the recursion runs far deeper than the 8 hardware
 * windows, so every monitored run exercises spill/fill traffic through
 * the forward FIFO. The golden model replicates the exact algorithm
 * (identical pivot choice) and the program prints a checksum plus a
 * sortedness flag.
 */

#include "workloads/workload.h"

#include <sstream>

#include "common/rng.h"

namespace flexcore {

namespace {

/** Mirror of the assembly's partition/recursion, for the golden run. */
void
goldenQsort(std::vector<u32> *values, s32 lo, s32 hi)
{
    if (lo >= hi)
        return;
    std::vector<u32> &v = *values;
    const u32 pivot = v[static_cast<u32>(lo + hi) / 2];
    s32 i = lo - 1;
    s32 j = hi + 1;
    for (;;) {
        do {
            ++i;
        } while (v[i] < pivot);
        do {
            --j;
        } while (v[j] > pivot);
        if (i >= j)
            break;
        std::swap(v[i], v[j]);
    }
    goldenQsort(values, lo, j);
    goldenQsort(values, j + 1, hi);
}

}  // namespace

Workload
makeQsort(WorkloadScale scale)
{
    const unsigned count = scale == WorkloadScale::kFull ? 2048 : 64;
    Rng rng(0x4507);
    std::vector<u32> values(count);
    for (u32 &v : values)
        v = rng.below(100000);

    std::vector<u32> sorted = values;
    goldenQsort(&sorted, 0, static_cast<s32>(count) - 1);
    u32 checksum = 0;
    bool is_sorted = true;
    for (size_t i = 0; i < sorted.size(); ++i) {
        checksum = checksum * 31 + sorted[i];
        if (i && sorted[i - 1] > sorted[i])
            is_sorted = false;
    }
    std::ostringstream expected;
    expected << static_cast<s32>(checksum) << "\n"
             << (is_sorted ? 1 : 0) << "\n";

    std::ostringstream src;
    src << runtimePrologue();
    src << R"(
main:   save %sp, -96, %sp
        set vals, %o0
        mov 0, %o1
        set )" << (count - 1) << R"(, %o2
        call qsort
        nop

        ; checksum = checksum*31 + v[i]; verify sortedness
        set vals, %l0
        set )" << count << R"(, %l1
        mov 0, %l2              ; checksum
        mov 1, %l3              ; sorted flag
        mov 0, %l4              ; prev
        mov 0, %l5              ; i
ckl:    sll %l5, 2, %o0
        ld [%l0+%o0], %o1
        umul %l2, 31, %l2
        add %l2, %o1, %l2
        cmp %l5, 0
        be ckskip
        nop
        cmp %l4, %o1
        bleu ckskip
        nop
        mov 0, %l3              ; out of order
ckskip: mov %o1, %l4
        add %l5, 1, %l5
        cmp %l5, %l1
        bne ckl
        nop
        mov %l2, %o0
        ta 2
        mov 10, %o0
        ta 1
        mov %l3, %o0
        ta 2
        mov 10, %o0
        ta 1
        mov 0, %i0
        ret
        restore

        ; qsort(base=%o0, lo=%o1, hi=%o2), Hoare partition with the
        ; middle element as pivot. Deep recursion: exercises window
        ; overflow/underflow heavily.
qsort:  save %sp, -96, %sp
        cmp %i1, %i2            ; if (lo >= hi) return  (signed)
        bge qdone
        nop
        ; pivot = v[(lo+hi)/2]
        add %i1, %i2, %o0
        sra %o0, 1, %o0
        sll %o0, 2, %o0
        ld [%i0+%o0], %l0       ; pivot
        sub %i1, 1, %l1         ; i = lo-1
        add %i2, 1, %l2         ; j = hi+1
ploop:
pi:     add %l1, 1, %l1         ; do i++ while (v[i] < pivot)
        sll %l1, 2, %o0
        ld [%i0+%o0], %l3
        cmp %l3, %l0
        blu pi
        nop
pj:     sub %l2, 1, %l2         ; do j-- while (v[j] > pivot)
        sll %l2, 2, %o0
        ld [%i0+%o0], %l4
        cmp %l4, %l0
        bgu pj
        nop
        cmp %l1, %l2            ; if (i >= j) break  (signed)
        bge pdone
        nop
        sll %l1, 2, %o0         ; swap v[i], v[j]
        sll %l2, 2, %o1
        st %l4, [%i0+%o0]
        st %l3, [%i0+%o1]
        ba ploop
        nop
pdone:  ; qsort(base, lo, j)
        mov %i0, %o0
        mov %i1, %o1
        call qsort
        mov %l2, %o2
        ; qsort(base, j+1, hi)
        mov %i0, %o0
        add %l2, 1, %o1
        call qsort
        mov %i2, %o2
qdone:  ret
        restore

        .align 4
vals:
)" << wordData(values);

    return {"qsort", src.str(), expected.str()};
}

}  // namespace flexcore
