/**
 * @file
 * sha: SHA-1 compression over a message of whole 64-byte blocks
 * (MiBench `sha` kernel class: ALU-dominated with regular word loads
 * for the message schedule). The golden model replicates the exact
 * block-hash variant (no length padding) in C++.
 */

#include "workloads/workload.h"

#include <sstream>

#include "common/rng.h"

namespace flexcore {

namespace {

u32
rotl(u32 value, unsigned amount)
{
    return (value << amount) | (value >> (32 - amount));
}

/** Golden model: SHA-1 compression over whole blocks, no padding. */
void
goldenSha(const std::vector<u32> &words, u32 h[5])
{
    h[0] = 0x67452301;
    h[1] = 0xefcdab89;
    h[2] = 0x98badcfe;
    h[3] = 0x10325476;
    h[4] = 0xc3d2e1f0;
    u32 w[80];
    for (size_t block = 0; block < words.size() / 16; ++block) {
        for (unsigned t = 0; t < 16; ++t)
            w[t] = words[block * 16 + t];
        for (unsigned t = 16; t < 80; ++t)
            w[t] = rotl(w[t-3] ^ w[t-8] ^ w[t-14] ^ w[t-16], 1);
        u32 a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
        for (unsigned t = 0; t < 80; ++t) {
            u32 f, k;
            if (t < 20) {
                f = (b & c) | (~b & d);
                k = 0x5a827999;
            } else if (t < 40) {
                f = b ^ c ^ d;
                k = 0x6ed9eba1;
            } else if (t < 60) {
                f = (b & c) | (b & d) | (c & d);
                k = 0x8f1bbcdc;
            } else {
                f = b ^ c ^ d;
                k = 0xca62c1d6;
            }
            const u32 temp = rotl(a, 5) + f + e + k + w[t];
            e = d;
            d = c;
            c = rotl(b, 30);
            b = a;
            a = temp;
        }
        h[0] += a;
        h[1] += b;
        h[2] += c;
        h[3] += d;
        h[4] += e;
    }
}

}  // namespace

Workload
makeSha(WorkloadScale scale)
{
    const unsigned num_blocks = scale == WorkloadScale::kFull ? 56 : 2;
    Rng rng(0x51a1);
    std::vector<u32> data(num_blocks * 16);
    for (u32 &word : data)
        word = rng.next32();

    u32 h[5];
    goldenSha(data, h);
    std::ostringstream expected;
    for (unsigned i = 0; i < 5; ++i)
        expected << static_cast<s32>(h[i]) << "\n";

    std::ostringstream src;
    src << runtimePrologue();
    src << R"(
main:   save %sp, -96, %sp
        set data, %i0           ; message pointer
        set )" << num_blocks << R"(, %i1
        set hbuf, %i2
        set wbuf, %i3
        set 0x67452301, %l0
        st %l0, [%i2]
        set 0xefcdab89, %l0
        st %l0, [%i2+4]
        set 0x98badcfe, %l0
        st %l0, [%i2+8]
        set 0x10325476, %l0
        st %l0, [%i2+12]
        set 0xc3d2e1f0, %l0
        st %l0, [%i2+16]

block_loop:
        tst %i1
        be done_blocks
        nop

        ; W[0..15] = message words
        mov 0, %l5
sch1:   sll %l5, 2, %l6
        ld [%i0+%l6], %l7
        st %l7, [%i3+%l6]
        add %l5, 1, %l5
        cmp %l5, 16
        bne sch1
        nop

        ; W[16..79] = rotl1(W[t-3]^W[t-8]^W[t-14]^W[t-16])
        mov 16, %l5
sch2:   sll %l5, 2, %l6
        add %i3, %l6, %l7
        ld [%l7-12], %o0
        ld [%l7-32], %o1
        xor %o0, %o1, %o0
        ld [%l7-56], %o1
        xor %o0, %o1, %o0
        ld [%l7-64], %o1
        xor %o0, %o1, %o0
        sll %o0, 1, %o1
        srl %o0, 31, %o2
        or %o1, %o2, %o0
        st %o0, [%l7]
        add %l5, 1, %l5
        cmp %l5, 80
        bne sch2
        nop

        ; a..e = h0..h4
        ld [%i2], %l0
        ld [%i2+4], %l1
        ld [%i2+8], %l2
        ld [%i2+12], %l3
        ld [%i2+16], %l4

        mov 0, %l5
rounds: cmp %l5, 20
        bl f0
        nop
        cmp %l5, 40
        bl f1
        nop
        cmp %l5, 60
        bl f2
        nop
        xor %l1, %l2, %o0       ; t >= 60: parity, k3
        xor %o0, %l3, %o0
        set 0xca62c1d6, %o1
        ba fdone
        nop
f0:     and %l1, %l2, %o0       ; ch(b,c,d)
        andn %l3, %l1, %o2
        or %o0, %o2, %o0
        set 0x5a827999, %o1
        ba fdone
        nop
f1:     xor %l1, %l2, %o0       ; parity
        xor %o0, %l3, %o0
        set 0x6ed9eba1, %o1
        ba fdone
        nop
f2:     and %l1, %l2, %o0       ; maj(b,c,d)
        and %l1, %l3, %o2
        or %o0, %o2, %o0
        and %l2, %l3, %o2
        or %o0, %o2, %o0
        set 0x8f1bbcdc, %o1
fdone:  sll %l0, 5, %o2
        srl %l0, 27, %o3
        or %o2, %o3, %o2        ; rotl5(a)
        add %o2, %o0, %o2
        add %o2, %l4, %o2
        add %o2, %o1, %o2
        sll %l5, 2, %o3
        ld [%i3+%o3], %o4
        add %o2, %o4, %o2       ; temp
        mov %l3, %l4            ; e = d
        mov %l2, %l3            ; d = c
        sll %l1, 30, %o3
        srl %l1, 2, %o4
        or %o3, %o4, %l2        ; c = rotl30(b)
        mov %l0, %l1            ; b = a
        mov %o2, %l0            ; a = temp
        add %l5, 1, %l5
        cmp %l5, 80
        bne rounds
        nop

        ; h += a..e
        ld [%i2], %o0
        add %o0, %l0, %o0
        st %o0, [%i2]
        ld [%i2+4], %o0
        add %o0, %l1, %o0
        st %o0, [%i2+4]
        ld [%i2+8], %o0
        add %o0, %l2, %o0
        st %o0, [%i2+8]
        ld [%i2+12], %o0
        add %o0, %l3, %o0
        st %o0, [%i2+12]
        ld [%i2+16], %o0
        add %o0, %l4, %o0
        st %o0, [%i2+16]

        add %i0, 64, %i0
        ba block_loop
        sub %i1, 1, %i1

done_blocks:
        mov 0, %l5
prloop: sll %l5, 2, %o1
        ld [%i2+%o1], %o0
        ta 2
        mov 10, %o0
        ta 1
        add %l5, 1, %l5
        cmp %l5, 5
        bne prloop
        nop
        mov 0, %i0
        ret
        restore

        .align 4
hbuf:   .space 20
wbuf:   .space 320
data:
)" << wordData(data);

    return {"sha", src.str(), expected.str()};
}

}  // namespace flexcore
