#include "workloads/workload.h"

#include <sstream>

namespace flexcore {

std::vector<Workload>
benchmarkSuite(WorkloadScale scale)
{
    return {
        makeSha(scale),        makeGmac(scale), makeStringsearch(scale),
        makeFft(scale),        makeBasicmath(scale),
        makeBitcount(scale),
    };
}

std::string
runtimePrologue()
{
    // The loader also initializes %sp; the explicit `set` keeps the
    // program self-contained when the entry state is unknown.
    return R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        call main
        nop
        ta 0            ; exit(%o0)
        nop
)";
}

std::string
wordData(const std::vector<u32> &words)
{
    std::ostringstream oss;
    for (size_t i = 0; i < words.size(); ++i) {
        if (i % 8 == 0)
            oss << (i ? "\n" : "") << "        .word ";
        else
            oss << ", ";
        oss << "0x" << std::hex << words[i] << std::dec;
    }
    oss << "\n";
    return oss.str();
}

}  // namespace flexcore
