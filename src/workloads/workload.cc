#include "workloads/workload.h"

#include <sstream>

namespace flexcore {

std::vector<Workload>
benchmarkSuite(WorkloadScale scale)
{
    return {
        makeSha(scale),        makeGmac(scale), makeStringsearch(scale),
        makeFft(scale),        makeBasicmath(scale),
        makeBitcount(scale),
    };
}

std::string_view
workloadScaleName(WorkloadScale scale)
{
    switch (scale) {
      case WorkloadScale::kTest: return "test";
      case WorkloadScale::kFull: return "full";
    }
    return "?";
}

bool
parseWorkloadScale(std::string_view name, WorkloadScale *scale)
{
    if (name == "test") {
        *scale = WorkloadScale::kTest;
        return true;
    }
    if (name == "full") {
        *scale = WorkloadScale::kFull;
        return true;
    }
    return false;
}

namespace {

struct WorkloadEntry
{
    std::string_view name;
    Workload (*make)(WorkloadScale);
};

// Table IV order first, then the off-suite stress test.
constexpr WorkloadEntry kWorkloads[] = {
    {"sha", makeSha},
    {"gmac", makeGmac},
    {"stringsearch", makeStringsearch},
    {"fft", makeFft},
    {"basicmath", makeBasicmath},
    {"bitcount", makeBitcount},
    {"qsort", makeQsort},
};

}  // namespace

bool
makeWorkload(std::string_view name, WorkloadScale scale, Workload *out)
{
    for (const WorkloadEntry &entry : kWorkloads) {
        if (entry.name == name) {
            *out = entry.make(scale);
            return true;
        }
    }
    return false;
}

std::string
knownWorkloadNames()
{
    std::string names;
    for (const WorkloadEntry &entry : kWorkloads) {
        if (!names.empty())
            names += ", ";
        names += entry.name;
    }
    return names;
}

std::string
runtimePrologue()
{
    // The loader also initializes %sp; the explicit `set` keeps the
    // program self-contained when the entry state is unknown.
    return R"(
        .org 0x1000
_start: set 0x003ffff0, %sp
        call main
        nop
        ta 0            ; exit(%o0)
        nop
)";
}

std::string
wordData(const std::vector<u32> &words)
{
    std::ostringstream oss;
    for (size_t i = 0; i < words.size(); ++i) {
        if (i % 8 == 0)
            oss << (i ? "\n" : "") << "        .word ";
        else
            oss << ", ";
        oss << "0x" << std::hex << words[i] << std::dec;
    }
    oss << "\n";
    return oss.str();
}

}  // namespace flexcore
