/**
 * @file
 * bitcount: counts set bits in a stream of words using three methods —
 * Kernighan clear-lowest-bit, SWAR parallel reduction, and a nibble
 * lookup table — dispatched through a function-pointer array exactly
 * like MiBench bitcnts does (indirect calls and leaf-function call
 * overhead are part of the workload's character).
 */

#include "workloads/workload.h"

#include <sstream>

#include "common/rng.h"

namespace flexcore {

namespace {

unsigned
kernighan(u32 v)
{
    unsigned count = 0;
    while (v) {
        v &= v - 1;
        ++count;
    }
    return count;
}

unsigned
swar(u32 v)
{
    v = v - ((v >> 1) & 0x55555555);
    v = (v & 0x33333333) + ((v >> 2) & 0x33333333);
    v = (v + (v >> 4)) & 0x0f0f0f0f;
    return (v * 0x01010101) >> 24;
}

u32
goldenBitcount(const std::vector<u32> &values)
{
    u32 total = 0;
    for (u32 v : values) {
        total += kernighan(v);
        total += swar(v);
        unsigned table_count = 0;
        for (unsigned shift = 0; shift < 32; shift += 4)
            table_count += kernighan((v >> shift) & 0xf);
        total += table_count;
    }
    return total;
}

}  // namespace

Workload
makeBitcount(WorkloadScale scale)
{
    const unsigned num_values =
        scale == WorkloadScale::kFull ? 3000 : 50;
    Rng rng(0xb17c);
    std::vector<u32> values(num_values);
    for (u32 &v : values)
        v = rng.next32();

    const u32 total = goldenBitcount(values);
    std::ostringstream expected;
    expected << static_cast<s32>(total) << "\n";

    // Nibble popcount table, one byte per entry.
    std::vector<u32> table_words(4, 0);
    for (unsigned nib = 0; nib < 16; ++nib) {
        table_words[nib / 4] |= static_cast<u32>(kernighan(nib))
                                << (24 - 8 * (nib % 4));
    }

    std::ostringstream src;
    src << runtimePrologue();
    src << R"(
main:   save %sp, -96, %sp
        set vals, %i0
        set )" << num_values << R"(, %i1
        mov 0, %i5              ; total
        set fptrs, %i2

vloop:  mov 0, %l1              ; method index
mloop:  sll %l1, 2, %o2
        ld [%i2+%o2], %o3       ; method pointer
        ld [%i0], %o0           ; argument
        jmpl %o3, %o7           ; indirect call, MiBench-style
        nop
        add %i5, %o0, %i5
        add %l1, 1, %l1
        cmp %l1, 3
        bne mloop
        nop
        add %i0, 4, %i0
        subcc %i1, 1, %i1
        bne vloop
        nop

        mov %i5, %o0
        ta 2
        mov 10, %o0
        ta 1
        mov 0, %i0
        ret
        restore

        ; ---- method 1: Kernighan (leaf: %o0 -> %o0) ----
bc_kern:
        mov 0, %o1
k1:     tst %o0
        be k1d
        nop
        sub %o0, 1, %o2
        and %o0, %o2, %o0
        ba k1
        add %o1, 1, %o1
k1d:    retl
        mov %o1, %o0

        ; ---- method 2: SWAR reduction ----
bc_swar:
        srl %o0, 1, %o1
        set 0x55555555, %o2
        and %o1, %o2, %o1
        sub %o0, %o1, %o0
        set 0x33333333, %o2
        and %o0, %o2, %o1
        srl %o0, 2, %o3
        and %o3, %o2, %o3
        add %o1, %o3, %o0
        srl %o0, 4, %o1
        add %o0, %o1, %o0
        set 0x0f0f0f0f, %o2
        and %o0, %o2, %o0
        set 0x01010101, %o2
        umul %o0, %o2, %o0
        retl
        srl %o0, 24, %o0

        ; ---- method 3: nibble table ----
bc_tab: set nibtab, %o4
        mov 8, %o2
        mov 0, %o1
nt:     and %o0, 15, %o3
        ldub [%o4+%o3], %o5
        add %o1, %o5, %o1
        srl %o0, 4, %o0
        subcc %o2, 1, %o2
        bne nt
        nop
        retl
        mov %o1, %o0

        .align 4
fptrs:  .word bc_kern, bc_swar, bc_tab
nibtab:
)" << wordData(table_words) << R"(
vals:
)" << wordData(values);

    return {"bitcount", src.str(), expected.str()};
}

}  // namespace flexcore
