/**
 * @file
 * Small demonstration programs for the monitoring extensions: each
 * pair has a buggy/malicious variant that must trap and a benign
 * variant that must run to completion. Used by examples/ and the
 * integration tests.
 */

#ifndef FLEXCORE_WORKLOADS_SCENARIOS_H_
#define FLEXCORE_WORKLOADS_SCENARIOS_H_

#include "workloads/workload.h"

namespace flexcore {

/** Buffer-overflow attack: tainted input overwrites a code pointer. */
Workload scenarioDiftAttack();
/** The same I/O handling done safely (bounds respected). */
Workload scenarioDiftBenign();

/** Reads a heap word before initializing it. */
Workload scenarioUmcBug();
/** Initializes then reads (no trap). */
Workload scenarioUmcClean();

/** Writes one element past a colored array. */
Workload scenarioBcOverflow();
/** Stays in bounds (no trap). */
Workload scenarioBcClean();

/** Plain checksum loop; pair with ALU fault injection to drive SEC. */
Workload scenarioSecWorkload();

}  // namespace flexcore

#endif  // FLEXCORE_WORKLOADS_SCENARIOS_H_
