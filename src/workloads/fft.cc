/**
 * @file
 * fft: in-place fixed-point radix-2 decimation-in-time FFT with Q14
 * twiddles and per-stage scaling (multiply-heavy with strided loads
 * and stores, like MiBench fft). The golden model performs the exact
 * same integer arithmetic, so the printed checksum must match
 * bit-for-bit.
 */

#include "workloads/workload.h"

#include <cmath>
#include <sstream>

#include "common/rng.h"

namespace flexcore {

namespace {

s32
sra(s32 value, unsigned amount)
{
    return value >> amount;   // arithmetic on all sane targets (gcc/clang)
}

void
goldenFft(std::vector<s32> *re_io, std::vector<s32> *im_io,
          const std::vector<s32> &wr, const std::vector<s32> &wi,
          const std::vector<u32> &brev)
{
    std::vector<s32> &re = *re_io;
    std::vector<s32> &im = *im_io;
    const u32 n = static_cast<u32>(re.size());
    for (u32 i = 0; i < n; ++i) {
        const u32 j = brev[i];
        if (i < j) {
            std::swap(re[i], re[j]);
            std::swap(im[i], im[j]);
        }
    }
    for (u32 len = 2; len <= n; len <<= 1) {
        const u32 half = len >> 1;
        const u32 step = n / len;
        for (u32 i = 0; i < n; i += len) {
            for (u32 j = 0; j < half; ++j) {
                const u32 k = j * step;
                const u32 i1 = i + j;
                const u32 i2 = i1 + half;
                const s32 tr =
                    sra(wr[k] * re[i2] - wi[k] * im[i2], 14);
                const s32 ti =
                    sra(wr[k] * im[i2] + wi[k] * re[i2], 14);
                const s32 ar = re[i1];
                const s32 ai = im[i1];
                re[i2] = sra(ar - tr, 1);
                im[i2] = sra(ai - ti, 1);
                re[i1] = sra(ar + tr, 1);
                im[i1] = sra(ai + ti, 1);
            }
        }
    }
}

}  // namespace

Workload
makeFft(WorkloadScale scale)
{
    const u32 n = scale == WorkloadScale::kFull ? 1024 : 64;
    const u32 log_n = [n] {
        u32 l = 0;
        for (u32 v = n; v > 1; v >>= 1)
            ++l;
        return l;
    }();

    Rng rng(0xff7);
    std::vector<s32> re(n), im(n, 0);
    for (s32 &v : re)
        v = static_cast<s32>(rng.below(4096)) - 2048;   // Q12 signal

    std::vector<s32> wr(n / 2), wi(n / 2);
    for (u32 k = 0; k < n / 2; ++k) {
        const double angle = -2.0 * M_PI * k / n;
        wr[k] = static_cast<s32>(std::lround(std::cos(angle) * 16384.0));
        wi[k] = static_cast<s32>(std::lround(std::sin(angle) * 16384.0));
    }
    std::vector<u32> brev(n);
    for (u32 i = 0; i < n; ++i) {
        u32 r = 0;
        for (u32 b = 0; b < log_n; ++b)
            r |= ((i >> b) & 1) << (log_n - 1 - b);
        brev[i] = r;
    }

    std::vector<s32> gre = re, gim = im;
    goldenFft(&gre, &gim, wr, wi, brev);
    u32 checksum = 0;
    for (u32 i = 0; i < n; ++i)
        checksum ^= static_cast<u32>(gre[i]) ^ static_cast<u32>(gim[i]);
    std::ostringstream expected;
    expected << static_cast<s32>(checksum) << "\n";

    auto asWords = [](const std::vector<s32> &values) {
        std::vector<u32> words(values.size());
        for (size_t i = 0; i < values.size(); ++i)
            words[i] = static_cast<u32>(values[i]);
        return words;
    };

    std::ostringstream src;
    src << runtimePrologue();
    src << R"(
main:   save %sp, -96, %sp
        set re, %i0
        set im, %i1
        set wrtab, %i2
        set witab, %i3
        set )" << n << R"(, %i4

        ; ---- bit-reverse permutation ----
        set brev, %i5
        mov 0, %l0
brl:    sll %l0, 2, %o0
        ld [%i5+%o0], %l1
        cmp %l0, %l1
        bge brnext
        nop
        sll %l1, 2, %o1
        ld [%i0+%o0], %o2
        ld [%i0+%o1], %o3
        st %o3, [%i0+%o0]
        st %o2, [%i0+%o1]
        ld [%i1+%o0], %o2
        ld [%i1+%o1], %o3
        st %o3, [%i1+%o0]
        st %o2, [%i1+%o1]
brnext: add %l0, 1, %l0
        cmp %l0, %i4
        bne brl
        nop

        ; ---- stages ----
        mov 2, %l0              ; len
stage:  cmp %l0, %i4
        bg fft_done
        nop
        srl %l0, 1, %l1         ; half
        wr %g0, %y
        udiv %i4, %l0, %l2      ; step = N / len
        mov 0, %l3              ; i
iloop:  cmp %l3, %i4
        bge istage_done
        nop
        mov 0, %l4              ; j
jloop:  cmp %l4, %l1
        bge jdone
        nop
        umul %l4, %l2, %o0
        sll %o0, 2, %o0
        ld [%i2+%o0], %g1       ; wr[k]
        ld [%i3+%o0], %g2       ; wi[k]
        add %l3, %l4, %o1
        sll %o1, 2, %g3         ; idx1 (bytes)
        sll %l1, 2, %o2
        add %g3, %o2, %g4       ; idx2 (bytes)
        ld [%i0+%g4], %g5       ; br
        ld [%i1+%g4], %g6       ; bi
        smul %g1, %g5, %o0
        smul %g2, %g6, %o1
        sub %o0, %o1, %o0
        sra %o0, 14, %o0        ; tr
        smul %g1, %g6, %o1
        smul %g2, %g5, %o2
        add %o1, %o2, %o1
        sra %o1, 14, %o1        ; ti
        ld [%i0+%g3], %o2       ; ar
        ld [%i1+%g3], %o3       ; ai
        sub %o2, %o0, %o4
        sra %o4, 1, %o4
        st %o4, [%i0+%g4]
        sub %o3, %o1, %o4
        sra %o4, 1, %o4
        st %o4, [%i1+%g4]
        add %o2, %o0, %o4
        sra %o4, 1, %o4
        st %o4, [%i0+%g3]
        add %o3, %o1, %o4
        sra %o4, 1, %o4
        st %o4, [%i1+%g3]
        ba jloop
        add %l4, 1, %l4
jdone:  ba iloop
        add %l3, %l0, %l3
istage_done:
        ba stage
        sll %l0, 1, %l0

fft_done:
        ; checksum = xor of all re[] and im[]
        mov 0, %l5
        mov 0, %l6
ckl:    sll %l6, 2, %o0
        ld [%i0+%o0], %o1
        xor %l5, %o1, %l5
        ld [%i1+%o0], %o1
        xor %l5, %o1, %l5
        add %l6, 1, %l6
        cmp %l6, %i4
        bne ckl
        nop
        mov %l5, %o0
        ta 2
        mov 10, %o0
        ta 1
        mov 0, %i0
        ret
        restore

        .align 4
re:
)" << wordData(asWords(re)) << R"(
im:
)" << wordData(asWords(im)) << R"(
wrtab:
)" << wordData(asWords(wr)) << R"(
witab:
)" << wordData(asWords(wi)) << R"(
brev:
)" << wordData(brev);

    return {"fft", src.str(), expected.str()};
}

}  // namespace flexcore
