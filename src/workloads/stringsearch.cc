/**
 * @file
 * stringsearch: Boyer-Moore-Horspool search of several 8-byte patterns
 * over a large text (byte-load dominated with a big streaming
 * footprint, like MiBench stringsearch on its large input). The golden
 * model runs the identical algorithm and reports the same total match
 * count.
 */

#include "workloads/workload.h"

#include <sstream>
#include <string>

#include "common/rng.h"

namespace flexcore {

namespace {

constexpr unsigned kPatLen = 8;

unsigned
goldenSearch(const std::string &text,
             const std::vector<std::string> &patterns)
{
    unsigned total = 0;
    for (const std::string &pat : patterns) {
        unsigned skip[256];
        for (unsigned c = 0; c < 256; ++c)
            skip[c] = kPatLen;
        for (unsigned j = 0; j + 1 < kPatLen; ++j)
            skip[static_cast<u8>(pat[j])] = kPatLen - 1 - j;
        size_t i = kPatLen - 1;
        while (i < text.size()) {
            unsigned k = 0;
            while (k < kPatLen &&
                   text[i - k] == pat[kPatLen - 1 - k]) {
                ++k;
            }
            if (k == kPatLen)
                ++total;
            i += skip[static_cast<u8>(text[i])];
        }
    }
    return total;
}

std::vector<u32>
packBytes(const std::string &bytes)
{
    std::vector<u32> words((bytes.size() + 3) / 4, 0);
    for (size_t i = 0; i < bytes.size(); ++i) {
        words[i / 4] |= static_cast<u32>(static_cast<u8>(bytes[i]))
                        << (24 - 8 * (i % 4));
    }
    return words;
}

}  // namespace

Workload
makeStringsearch(WorkloadScale scale)
{
    const unsigned text_len =
        scale == WorkloadScale::kFull ? 24 * 1024 : 512;
    const unsigned num_patterns =
        scale == WorkloadScale::kFull ? 10 : 2;
    Rng rng(0x57f1);

    std::string text(text_len, 'a');
    for (char &c : text)
        c = static_cast<char>('a' + rng.below(26));

    std::vector<std::string> patterns;
    for (unsigned p = 0; p < num_patterns; ++p) {
        std::string pat(kPatLen, 'a');
        for (char &c : pat)
            c = static_cast<char>('a' + rng.below(26));
        for (unsigned occ = 0; occ < 6; ++occ) {
            const u32 pos = rng.below(text_len - kPatLen);
            text.replace(pos, kPatLen, pat);
        }
        patterns.push_back(std::move(pat));
    }

    const unsigned total = goldenSearch(text, patterns);
    std::ostringstream expected;
    expected << total << "\n";

    // The scan compares against the reversed pattern so the inner loop
    // indexes both strings with the same counter.
    std::string pattern_bytes, pattern_rev_bytes;
    for (const std::string &pat : patterns) {
        pattern_bytes += pat;
        pattern_rev_bytes.append(pat.rbegin(), pat.rend());
    }

    std::ostringstream src;
    src << runtimePrologue();
    src << R"(
main:   save %sp, -96, %sp
        mov 0, %i5              ; total matches
        mov 0, %i4              ; pattern index
ploop:  cmp %i4, )" << num_patterns << R"(
        be pdone
        nop
        sll %i4, 3, %o0
        set patterns, %l0
        add %l0, %o0, %l0       ; pattern pointer
        set patrev, %l7
        add %l7, %o0, %l7       ; reversed pattern pointer

        ; skip[c] = 8 for all c
        set skiptab, %l1
        mov 0, %l2
sk1:    sll %l2, 2, %o0
        mov 8, %o1
        st %o1, [%l1+%o0]
        add %l2, 1, %l2
        cmp %l2, 256
        bne sk1
        nop
        ; skip[pat[j]] = 7-j for j in 0..6
        mov 0, %l2
sk2:    ldub [%l0+%l2], %o0
        sll %o0, 2, %o0
        mov 7, %o1
        sub %o1, %l2, %o1
        st %o1, [%l1+%o0]
        add %l2, 1, %l2
        cmp %l2, 7
        bne sk2
        nop

        set text, %l3
        set )" << text_len << R"(, %l4
        mov 7, %l5              ; i = plen-1
scan:   cmp %l5, %l4
        bge scandone
        nop
        mov 0, %l6              ; k
cmpl:   sub %l5, %l6, %o0
        ldub [%l3+%o0], %o1     ; text[i-k]
        ldub [%l7+%l6], %o3     ; patrev[k]
        cmp %o1, %o3
        bne cmpdone
        nop
        add %l6, 1, %l6
        cmp %l6, 8
        bne cmpl
        nop
        add %i5, 1, %i5         ; full match
cmpdone:
        ldub [%l3+%l5], %o0
        sll %o0, 2, %o0
        ld [%l1+%o0], %o1
        add %l5, %o1, %l5
        ba scan
        nop
scandone:
        add %i4, 1, %i4
        ba ploop
        nop
pdone:  mov %i5, %o0
        ta 2
        mov 10, %o0
        ta 1
        mov 0, %i0
        ret
        restore

        .align 4
skiptab:
        .space 1024
patterns:
)" << wordData(packBytes(pattern_bytes)) << R"(
patrev:
)" << wordData(packBytes(pattern_rev_bytes)) << R"(
text:
)" << wordData(packBytes(text));

    return {"stringsearch", src.str(), expected.str()};
}

}  // namespace flexcore
