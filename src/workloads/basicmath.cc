/**
 * @file
 * basicmath: software floating-point-style math kernel. MiBench
 * basicmath is FP code, which on the FPU-less Leon3 runs as soft-float
 * mantissa arithmetic — long multiply/shift/add chains with occasional
 * divides. Each input value goes through mantissa-iteration and
 * polynomial (Horner) stages plus one division; all arithmetic wraps
 * mod 2^32 exactly as the hardware does, and the golden model mirrors
 * it bit-for-bit.
 */

#include "workloads/workload.h"

#include <sstream>

#include "common/rng.h"

namespace flexcore {

namespace {

constexpr u32 kC1 = 0x41c64e6d;
constexpr u32 kC2 = 0x3039;
constexpr u32 kPoly[6] = {0x1001, 0x20a03, 0x44071, 0x80f11,
                          0x10ca05, 0x2000b3};

u32
goldenBasicmath(const std::vector<u32> &values)
{
    u32 acc = 0;
    for (u32 v : values) {
        // Mantissa iteration (cbrt/sqrt-style refinement).
        u32 m = v | 1;
        for (int iter = 0; iter < 3; ++iter)
            m = ((m * kC1) >> 3) + (m >> 5) + kC2;
        // Polynomial evaluation (Horner, wrapping).
        u32 p = 7;
        for (u32 coeff : kPoly)
            p = p * m + coeff;
        // One true division per value.
        const u32 q = v / (p | 1);
        acc ^= m + p + q;
    }
    return acc;
}

}  // namespace

Workload
makeBasicmath(WorkloadScale scale)
{
    const unsigned num_values =
        scale == WorkloadScale::kFull ? 2600 : 40;
    Rng rng(0xba51c);
    std::vector<u32> values(num_values);
    for (u32 &v : values)
        v = rng.next32() | 1;

    const u32 acc = goldenBasicmath(values);
    std::ostringstream expected;
    expected << static_cast<s32>(acc) << "\n";

    std::ostringstream src;
    src << runtimePrologue();
    src << R"(
main:   save %sp, -96, %sp
        set vals, %i0
        set )" << num_values << R"(, %i1
        mov 0, %i5              ; acc
        set 0x41c64e6d, %i2     ; C1
        set 0x3039, %i3         ; C2
        set poly, %i4

vloop:  ld [%i0], %l0           ; v
        or %l0, 1, %l1          ; m
        mov 3, %l2
mloop:  umul %l1, %i2, %o0
        srl %o0, 3, %o0
        srl %l1, 5, %o1
        add %o0, %o1, %l1
        add %l1, %i3, %l1
        subcc %l2, 1, %l2
        bne mloop
        nop

        mov 7, %l3              ; p
        mov 0, %l4
ploop:  umul %l3, %l1, %l3
        sll %l4, 2, %o0
        ld [%i4+%o0], %o1
        add %l3, %o1, %l3
        add %l4, 1, %l4
        cmp %l4, 6
        bne ploop
        nop

        or %l3, 1, %o2
        wr %g0, %y
        udiv %l0, %o2, %l5      ; q = v / (p|1)

        add %l1, %l3, %o0
        add %o0, %l5, %o0
        xor %i5, %o0, %i5

        add %i0, 4, %i0
        subcc %i1, 1, %i1
        bne vloop
        nop

        mov %i5, %o0
        ta 2
        mov 10, %o0
        ta 1
        mov 0, %i0
        ret
        restore

        .align 4
poly:   .word 0x1001, 0x20a03, 0x44071, 0x80f11, 0x10ca05, 0x2000b3
vals:
)" << wordData(values);

    return {"basicmath", src.str(), expected.str()};
}

}  // namespace flexcore
