/**
 * @file
 * gmac: table-driven Galois-field message authentication (GHASH/CRC
 * style): one table lookup and a shift-xor fold per message byte over
 * a large buffer — byte-load dominated, like authenticated-MAC inner
 * loops. The golden model performs the identical integer computation.
 */

#include "workloads/workload.h"

#include <sstream>
#include <string>

#include "common/rng.h"

namespace flexcore {

namespace {

std::vector<u32>
makeTable()
{
    // A CRC32-style table: T[i] derived from a bit-serial GF(2) fold
    // of i under a fixed polynomial, so entries are reproducible.
    std::vector<u32> table(256);
    for (u32 i = 0; i < 256; ++i) {
        u32 v = i << 24;
        for (int bit = 0; bit < 8; ++bit)
            v = (v << 1) ^ ((v & 0x80000000u) ? 0x04c11db7u : 0u);
        table[i] = v;
    }
    return table;
}

u32
goldenGmac(const std::string &data, const std::vector<u32> &table)
{
    u32 acc = 0xffffffffu;
    for (char byte : data) {
        const u32 index =
            ((acc >> 24) ^ static_cast<u8>(byte)) & 0xff;
        acc = (acc << 8) ^ table[index];
    }
    return acc;
}

std::vector<u32>
packString(const std::string &bytes)
{
    std::vector<u32> words((bytes.size() + 3) / 4, 0);
    for (size_t i = 0; i < bytes.size(); ++i) {
        words[i / 4] |= static_cast<u32>(static_cast<u8>(bytes[i]))
                        << (24 - 8 * (i % 4));
    }
    return words;
}

}  // namespace

Workload
makeGmac(WorkloadScale scale)
{
    const unsigned num_bytes =
        scale == WorkloadScale::kFull ? 128 * 1024 : 512;
    Rng rng(0x6ac0);
    std::string data(num_bytes, 0);
    for (char &byte : data)
        byte = static_cast<char>(rng.below(256));

    const std::vector<u32> table = makeTable();
    const u32 mac = goldenGmac(data, table);
    std::ostringstream expected;
    expected << static_cast<s32>(mac) << "\n";

    std::ostringstream src;
    src << runtimePrologue();
    src << R"(
main:   save %sp, -96, %sp
        set data, %i0
        set )" << num_bytes << R"(, %i1
        set table, %i2
        set 0xffffffff, %l0     ; acc

bloop:  ldub [%i0], %l2         ; message byte
        srl %l0, 24, %l3
        xor %l3, %l2, %l3
        and %l3, 255, %l3
        sll %l3, 2, %l3
        ld [%i2+%l3], %l4       ; table entry
        sll %l0, 8, %l0
        xor %l0, %l4, %l0
        add %i0, 1, %i0
        subcc %i1, 1, %i1
        bne bloop
        nop

        mov %l0, %o0
        ta 2
        mov 10, %o0
        ta 1
        mov 0, %i0
        ret
        restore

        .align 4
table:
)" << wordData(table) << R"(
data:
)" << wordData(packString(data));

    return {"gmac", src.str(), expected.str()};
}

}  // namespace flexcore
