#include "assembler/program.h"

#include "common/log.h"

namespace flexcore {

void
Program::appendWord(u32 word)
{
    image_.push_back(static_cast<u8>(word >> 24));
    image_.push_back(static_cast<u8>(word >> 16));
    image_.push_back(static_cast<u8>(word >> 8));
    image_.push_back(static_cast<u8>(word));
}

void
Program::patchWord(Addr addr, u32 word)
{
    if (addr < base_ || addr + 4 > end())
        FLEX_PANIC("patchWord outside image: ", addr);
    const u32 off = addr - base_;
    image_[off + 0] = static_cast<u8>(word >> 24);
    image_[off + 1] = static_cast<u8>(word >> 16);
    image_[off + 2] = static_cast<u8>(word >> 8);
    image_[off + 3] = static_cast<u8>(word);
}

u32
Program::wordAt(Addr addr) const
{
    if (addr < base_ || addr + 4 > end())
        FLEX_PANIC("wordAt outside image: ", addr);
    const u32 off = addr - base_;
    return (u32{image_[off]} << 24) | (u32{image_[off + 1]} << 16) |
           (u32{image_[off + 2]} << 8) | u32{image_[off + 3]};
}

void
Program::padTo(Addr addr)
{
    if (addr < end())
        FLEX_PANIC("padTo before current end");
    image_.resize(addr - base_, 0);
}

bool
Program::defineSymbol(const std::string &name, u32 value)
{
    return symbols_.emplace(name, value).second;
}

bool
Program::lookupSymbol(const std::string &name, u32 *value) const
{
    const auto it = symbols_.find(name);
    if (it == symbols_.end())
        return false;
    *value = it->second;
    return true;
}

}  // namespace flexcore
