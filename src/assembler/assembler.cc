#include "assembler/assembler.h"

#include <sstream>
#include <unordered_map>

#include "common/bitutil.h"
#include "common/log.h"
#include "isa/encoding.h"
#include "isa/registers.h"

namespace flexcore {

namespace {

/** Three-operand ALU mnemonics that share the `op rs1, ri, rd` shape. */
const std::unordered_map<std::string, Op> kAluMnemonics = {
    {"add", Op::kAdd}, {"addcc", Op::kAddcc},
    {"sub", Op::kSub}, {"subcc", Op::kSubcc},
    {"and", Op::kAnd}, {"andcc", Op::kAndcc},
    {"or", Op::kOr}, {"orcc", Op::kOrcc},
    {"xor", Op::kXor}, {"xorcc", Op::kXorcc},
    {"andn", Op::kAndn}, {"orn", Op::kOrn}, {"xnor", Op::kXnor},
    {"sll", Op::kSll}, {"srl", Op::kSrl}, {"sra", Op::kSra},
    {"umul", Op::kUmul}, {"smul", Op::kSmul},
    {"umulcc", Op::kUmulcc}, {"smulcc", Op::kSmulcc},
    {"udiv", Op::kUdiv}, {"sdiv", Op::kSdiv},
    {"save", Op::kSave}, {"restore", Op::kRestore},
};

const std::unordered_map<std::string, Op> kLoadMnemonics = {
    {"ld", Op::kLd}, {"ldub", Op::kLdub}, {"lduh", Op::kLduh},
};

const std::unordered_map<std::string, Op> kStoreMnemonics = {
    {"st", Op::kSt}, {"stb", Op::kStb}, {"sth", Op::kSth},
};

const std::unordered_map<std::string, Cond> kBranchMnemonics = {
    {"ba", Cond::kA}, {"bn", Cond::kN},
    {"be", Cond::kE}, {"bz", Cond::kE},
    {"bne", Cond::kNe}, {"bnz", Cond::kNe},
    {"bg", Cond::kG}, {"ble", Cond::kLe},
    {"bge", Cond::kGe}, {"bl", Cond::kL},
    {"bgu", Cond::kGu}, {"bleu", Cond::kLeu},
    {"bcc", Cond::kCc}, {"bgeu", Cond::kCc},
    {"bcs", Cond::kCs}, {"blu", Cond::kCs},
    {"bpos", Cond::kPos}, {"bneg", Cond::kNeg},
    {"bvc", Cond::kVc}, {"bvs", Cond::kVs},
};

const std::unordered_map<std::string, Cond> kTrapMnemonics = {
    {"ta", Cond::kA}, {"tn", Cond::kN},
    {"te", Cond::kE}, {"tz", Cond::kE},
    {"tne", Cond::kNe}, {"tnz", Cond::kNe},
    {"tg", Cond::kG}, {"tle", Cond::kLe},
    {"tge", Cond::kGe}, {"tl", Cond::kL},
    {"tgu", Cond::kGu}, {"tleu", Cond::kLeu},
    {"tcc", Cond::kCc}, {"tgeu", Cond::kCc},
    {"tcs", Cond::kCs}, {"tlu", Cond::kCs},
    {"tpos", Cond::kPos}, {"tneg", Cond::kNeg},
    {"tvc", Cond::kVc}, {"tvs", Cond::kVs},
};

const std::unordered_map<std::string, CpopFn> kMonitorMnemonics = {
    {"m.settag", CpopFn::kSetRegTag},
    {"m.clrtag", CpopFn::kClearRegTag},
    {"m.setmtag", CpopFn::kSetMemTag},
    {"m.clrmtag", CpopFn::kClearMemTag},
    {"m.policy", CpopFn::kSetPolicy},
    {"m.read", CpopFn::kReadTag},
    {"m.base", CpopFn::kSetBase},
};

bool
fitsSigned(s64 value, unsigned bits_wide)
{
    const s64 lo = -(s64{1} << (bits_wide - 1));
    const s64 hi = (s64{1} << (bits_wide - 1)) - 1;
    return value >= lo && value <= hi;
}

}  // namespace

void
Assembler::addError(int line, std::string message)
{
    errors_.push_back({line, std::move(message)});
}

std::string
Assembler::errorText() const
{
    std::ostringstream oss;
    for (const AsmError &err : errors_)
        oss << "line " << err.line << ": " << err.message << "\n";
    return oss.str();
}

bool
Assembler::isDirective(const std::string &mnemonic)
{
    return !mnemonic.empty() && mnemonic[0] == '.';
}

unsigned
Assembler::instrByteSize(const ParsedLine &parsed)
{
    // `set` always expands to sethi+or; everything else is one word.
    return parsed.mnemonic == "set" ? 8 : 4;
}

bool
Assembler::resolve(const ExprRef &expr, const Program &prog, int line,
                   u32 *value)
{
    s64 result = expr.addend;
    if (!expr.symbol.empty()) {
        u32 symval;
        if (!prog.lookupSymbol(expr.symbol, &symval)) {
            addError(line, "undefined symbol '" + expr.symbol + "'");
            return false;
        }
        result += symval;
    }
    u32 word = static_cast<u32>(result);
    switch (expr.mod) {
      case ExprRef::Mod::kHi:
        word = (word >> 10) & 0x3fffff;
        break;
      case ExprRef::Mod::kLo:
        word = word & 0x3ff;
        break;
      case ExprRef::Mod::kNone:
        break;
    }
    *value = word;
    return true;
}

bool
Assembler::runDirective(const ParsedLine &parsed, int line, Program *out)
{
    const std::string &d = parsed.mnemonic;
    auto constArg = [&](size_t idx, u32 *value) -> bool {
        if (idx >= parsed.operands.size() ||
            parsed.operands[idx].kind != Operand::Kind::kImm) {
            addError(line, d + ": expected immediate operand");
            return false;
        }
        // Directive arguments referencing labels are handled through
        // fixups (only for .word); others must be constant.
        const ExprRef &expr = parsed.operands[idx].expr;
        if (!expr.isConstant()) {
            addError(line, d + ": operand must be a constant");
            return false;
        }
        *value = static_cast<u32>(expr.addend);
        return true;
    };

    if (d == ".org") {
        u32 addr;
        if (!constArg(0, &addr))
            return false;
        if (!emitted_anything_ && out->size() == 0) {
            out->setBase(addr);
        } else if (addr < out->end()) {
            addError(line, ".org moves backwards");
            return false;
        } else {
            out->padTo(addr);
        }
        return true;
    }
    if (d == ".align") {
        u32 align;
        if (!constArg(0, &align))
            return false;
        if (!isPowerOfTwo(align)) {
            addError(line, ".align: not a power of two");
            return false;
        }
        out->padTo(alignUp(out->end(), align));
        return true;
    }
    if (d == ".word") {
        for (const Operand &op : parsed.operands) {
            if (op.kind != Operand::Kind::kImm) {
                addError(line, ".word: expected expression");
                return false;
            }
            if (op.expr.isConstant()) {
                out->appendWord(static_cast<u32>(op.expr.addend));
            } else {
                fixups_.push_back({out->end(), line, op.expr});
                out->appendWord(0);
            }
        }
        return true;
    }
    if (d == ".half") {
        for (const Operand &op : parsed.operands) {
            u32 value = 0;
            if (op.kind != Operand::Kind::kImm ||
                !op.expr.isConstant()) {
                addError(line, ".half: expected constant");
                return false;
            }
            value = static_cast<u32>(op.expr.addend);
            out->appendByte(static_cast<u8>(value >> 8));
            out->appendByte(static_cast<u8>(value));
        }
        return true;
    }
    if (d == ".byte") {
        for (const Operand &op : parsed.operands) {
            if (op.kind != Operand::Kind::kImm ||
                !op.expr.isConstant()) {
                addError(line, ".byte: expected constant");
                return false;
            }
            out->appendByte(static_cast<u8>(op.expr.addend));
        }
        return true;
    }
    if (d == ".asciz" || d == ".ascii") {
        if (parsed.string_args.empty()) {
            addError(line, d + ": expected string literal");
            return false;
        }
        for (const std::string &s : parsed.string_args) {
            for (char c : s)
                out->appendByte(static_cast<u8>(c));
            if (d == ".asciz")
                out->appendByte(0);
        }
        return true;
    }
    if (d == ".space") {
        u32 count;
        if (!constArg(0, &count))
            return false;
        for (u32 i = 0; i < count; ++i)
            out->appendByte(0);
        return true;
    }
    if (d == ".equ") {
        // .equ NAME, value — the name parses as the first operand's
        // symbol reference.
        if (parsed.operands.size() != 2 ||
            parsed.operands[0].kind != Operand::Kind::kImm ||
            parsed.operands[0].expr.symbol.empty() ||
            parsed.operands[1].kind != Operand::Kind::kImm ||
            !parsed.operands[1].expr.isConstant()) {
            addError(line, ".equ: expected NAME, constant");
            return false;
        }
        const std::string &name = parsed.operands[0].expr.symbol;
        if (!out->defineSymbol(
                name, static_cast<u32>(parsed.operands[1].expr.addend))) {
            addError(line, "duplicate symbol '" + name + "'");
            return false;
        }
        return true;
    }
    if (d == ".global" || d == ".text" || d == ".data")
        return true;  // accepted for source compatibility; no effect

    addError(line, "unknown directive '" + d + "'");
    return false;
}

bool
Assembler::assemble(const std::string &source, Program *out)
{
    errors_.clear();
    pending_.clear();
    fixups_.clear();
    emitted_anything_ = false;
    const Addr base = out->base();
    *out = Program{};
    out->setBase(base);

    // ---- Pass 1: layout, labels, data. ----
    std::istringstream stream(source);
    std::string line_text;
    int line_no = 0;
    while (std::getline(stream, line_text)) {
        ++line_no;
        std::vector<Token> tokens;
        std::string lex_error;
        if (!tokenizeLine(line_text, &tokens, &lex_error)) {
            addError(line_no, lex_error);
            continue;
        }
        ParsedLine parsed;
        std::string parse_error;
        if (!parseLine(tokens, &parsed, &parse_error)) {
            addError(line_no, parse_error);
            continue;
        }
        for (const std::string &label : parsed.labels) {
            if (!out->defineSymbol(label, out->end()))
                addError(line_no, "duplicate label '" + label + "'");
        }
        if (parsed.mnemonic.empty())
            continue;
        if (isDirective(parsed.mnemonic)) {
            runDirective(parsed, line_no, out);
            emitted_anything_ = emitted_anything_ || out->size() > 0;
            continue;
        }
        // Instruction: reserve space now, encode in pass 2.
        const Addr addr = out->end();
        if (addr % 4 != 0) {
            addError(line_no, "instruction at unaligned address");
            continue;
        }
        pending_.push_back({addr, line_no, std::move(parsed)});
        const unsigned size = instrByteSize(pending_.back().parsed);
        for (unsigned i = 0; i < size; i += 4)
            out->appendWord(0);
        emitted_anything_ = true;
    }

    // ---- Pass 2: encode instructions and patch data fixups. ----
    for (const Pending &pending : pending_)
        encodeStatement(pending, out);
    for (const DataFixup &fixup : fixups_) {
        u32 value;
        if (resolve(fixup.expr, *out, fixup.line, &value))
            out->patchWord(fixup.addr, value);
    }

    u32 entry;
    out->setEntry(out->lookupSymbol("_start", &entry) ? entry
                                                      : out->base());
    return errors_.empty();
}

void
Assembler::encodeStatement(const Pending &pending, Program *out)
{
    const ParsedLine &p = pending.parsed;
    const int line = pending.line;
    const Addr addr = pending.addr;
    const std::string &m = p.mnemonic;

    auto emit = [&](const Instruction &inst) {
        out->patchWord(addr, encode(inst));
    };
    auto emitSecond = [&](const Instruction &inst) {
        out->patchWord(addr + 4, encode(inst));
    };
    auto err = [&](const std::string &message) {
        addError(line, m + ": " + message);
    };
    auto wantReg = [&](size_t idx, unsigned *reg) -> bool {
        if (idx >= p.operands.size() ||
            p.operands[idx].kind != Operand::Kind::kReg) {
            err("expected register operand " + std::to_string(idx + 1));
            return false;
        }
        *reg = p.operands[idx].reg;
        return true;
    };
    auto wantImmValue = [&](size_t idx, u32 *value) -> bool {
        if (idx >= p.operands.size() ||
            p.operands[idx].kind != Operand::Kind::kImm) {
            err("expected immediate operand " + std::to_string(idx + 1));
            return false;
        }
        return resolve(p.operands[idx].expr, *out, line, value);
    };

    // Fill rs2-or-simm13 for the common reg/imm source slot.
    auto fillRegOrImm = [&](size_t idx, Instruction *inst) -> bool {
        if (idx >= p.operands.size()) {
            err("missing operand " + std::to_string(idx + 1));
            return false;
        }
        const Operand &op = p.operands[idx];
        if (op.kind == Operand::Kind::kReg) {
            inst->rs2 = static_cast<u8>(op.reg);
            return true;
        }
        if (op.kind == Operand::Kind::kImm) {
            u32 value;
            if (!resolve(op.expr, *out, line, &value))
                return false;
            const s32 simm = static_cast<s32>(value);
            if (!fitsSigned(simm, 13)) {
                err("immediate does not fit in simm13");
                return false;
            }
            inst->has_imm = true;
            inst->simm = simm;
            return true;
        }
        err("bad source operand");
        return false;
    };

    // Fill rs1 + (rs2|simm13) from a kMem operand.
    auto fillMem = [&](size_t idx, Instruction *inst) -> bool {
        if (idx >= p.operands.size() ||
            p.operands[idx].kind != Operand::Kind::kMem) {
            err("expected memory operand");
            return false;
        }
        const Operand &op = p.operands[idx];
        inst->rs1 = static_cast<u8>(op.reg);
        if (op.mem_has_index_reg) {
            inst->rs2 = static_cast<u8>(op.index_reg);
            return true;
        }
        u32 value;
        if (!resolve(op.expr, *out, line, &value))
            return false;
        const s32 simm = static_cast<s32>(value);
        if (!fitsSigned(simm, 13)) {
            err("offset does not fit in simm13");
            return false;
        }
        inst->has_imm = true;
        inst->simm = simm;
        return true;
    };

    Instruction inst;

    // ---- Plain ALU / save / restore ----
    if (auto it = kAluMnemonics.find(m); it != kAluMnemonics.end()) {
        inst.op = it->second;
        if (m == "restore" && p.operands.empty()) {
            // bare `restore` == restore %g0, %g0, %g0
            inst.has_imm = false;
            emit(inst);
            return;
        }
        unsigned rs1, rd;
        if (!wantReg(0, &rs1) || !fillRegOrImm(1, &inst) ||
            !wantReg(2, &rd))
            return;
        inst.rs1 = static_cast<u8>(rs1);
        inst.rd = static_cast<u8>(rd);
        emit(inst);
        return;
    }

    // ---- Loads / stores ----
    if (auto it = kLoadMnemonics.find(m); it != kLoadMnemonics.end()) {
        inst.op = it->second;
        unsigned rd;
        if (!fillMem(0, &inst) || !wantReg(1, &rd))
            return;
        inst.rd = static_cast<u8>(rd);
        emit(inst);
        return;
    }
    if (auto it = kStoreMnemonics.find(m); it != kStoreMnemonics.end()) {
        inst.op = it->second;
        unsigned rd;
        if (!wantReg(0, &rd) || !fillMem(1, &inst))
            return;
        inst.rd = static_cast<u8>(rd);
        emit(inst);
        return;
    }

    // ---- Branches ----
    if (auto it = kBranchMnemonics.find(m); it != kBranchMnemonics.end()) {
        inst.op = Op::kBicc;
        inst.cond = it->second;
        inst.annul = p.annul;
        u32 target;
        if (!wantImmValue(0, &target))
            return;
        const s64 delta = static_cast<s64>(target) - static_cast<s64>(addr);
        if (delta % 4 != 0) {
            err("branch target not word-aligned");
            return;
        }
        const s64 disp = delta / 4;
        if (!fitsSigned(disp, 22)) {
            err("branch target out of range");
            return;
        }
        inst.disp = static_cast<s32>(disp);
        emit(inst);
        return;
    }

    // ---- Traps: t<cond> [%rs1,] reg-or-imm ----
    if (auto it = kTrapMnemonics.find(m); it != kTrapMnemonics.end()) {
        inst.op = Op::kTicc;
        inst.cond = it->second;
        size_t src = 0;
        if (p.operands.size() > 1) {
            unsigned rs1;
            if (!wantReg(0, &rs1))
                return;
            inst.rs1 = static_cast<u8>(rs1);
            src = 1;
        }
        if (!fillRegOrImm(src, &inst))
            return;
        emit(inst);
        return;
    }

    // ---- Monitor (CPop1) pseudo-ops ----
    if (auto it = kMonitorMnemonics.find(m); it != kMonitorMnemonics.end()) {
        inst.op = Op::kCpop1;
        inst.cpop_fn = it->second;
        inst.has_imm = true;
        inst.simm = 0;
        switch (it->second) {
          case CpopFn::kSetRegTag: {
            unsigned rs1;
            u32 tag = 0;
            if (!wantReg(0, &rs1))
                return;
            if (p.operands.size() > 1 && !wantImmValue(1, &tag))
                return;
            inst.rs1 = static_cast<u8>(rs1);
            inst.rd = static_cast<u8>(tag & 31);
            break;
          }
          case CpopFn::kClearRegTag:
          case CpopFn::kSetBase: {
            unsigned rs1;
            if (!wantReg(0, &rs1))
                return;
            inst.rs1 = static_cast<u8>(rs1);
            break;
          }
          case CpopFn::kSetMemTag: {
            u32 tag = 0;
            if (!fillMem(0, &inst))
                return;
            if (p.operands.size() > 1 && !wantImmValue(1, &tag))
                return;
            if (!inst.has_imm || !fitsSigned(inst.simm, 9)) {
                err("offset does not fit in simm9");
                return;
            }
            inst.rd = static_cast<u8>(tag & 31);
            break;
          }
          case CpopFn::kClearMemTag: {
            if (!fillMem(0, &inst))
                return;
            if (!inst.has_imm || !fitsSigned(inst.simm, 9)) {
                err("offset does not fit in simm9");
                return;
            }
            break;
          }
          case CpopFn::kSetPolicy: {
            u32 value;
            if (!wantImmValue(0, &value))
                return;
            if (!fitsSigned(static_cast<s32>(value), 9)) {
                err("policy does not fit in simm9");
                return;
            }
            inst.simm = static_cast<s32>(value);
            break;
          }
          case CpopFn::kReadTag: {
            unsigned rd;
            u32 sel = 0;
            if (!wantReg(0, &rd))
                return;
            if (p.operands.size() > 1 && !wantImmValue(1, &sel))
                return;
            inst.rd = static_cast<u8>(rd);
            inst.simm = static_cast<s32>(sel & 0xff);
            break;
          }
          default:
            err("unsupported monitor op");
            return;
        }
        emit(inst);
        return;
    }

    // ---- Everything else, alphabetized ----
    if (m == "call") {
        inst.op = Op::kCall;
        u32 target;
        if (!wantImmValue(0, &target))
            return;
        const s64 delta = static_cast<s64>(target) - static_cast<s64>(addr);
        if (delta % 4 != 0) {
            err("call target not word-aligned");
            return;
        }
        inst.disp = static_cast<s32>(delta / 4);
        emit(inst);
        return;
    }
    if (m == "clr") {
        if (!p.operands.empty() &&
            p.operands[0].kind == Operand::Kind::kMem) {
            inst.op = Op::kSt;
            inst.rd = 0;
            if (!fillMem(0, &inst))
                return;
            emit(inst);
            return;
        }
        unsigned rd;
        if (!wantReg(0, &rd))
            return;
        inst.op = Op::kOr;
        inst.rs1 = 0;
        inst.has_imm = true;
        inst.simm = 0;
        inst.rd = static_cast<u8>(rd);
        emit(inst);
        return;
    }
    if (m == "cmp") {
        inst.op = Op::kSubcc;
        unsigned rs1;
        if (!wantReg(0, &rs1) || !fillRegOrImm(1, &inst))
            return;
        inst.rs1 = static_cast<u8>(rs1);
        inst.rd = 0;
        emit(inst);
        return;
    }
    if (m == "dec" || m == "inc") {
        inst.op = m == "inc" ? Op::kAdd : Op::kSub;
        unsigned rd;
        u32 amount = 1;
        if (p.operands.size() == 2) {
            if (!wantImmValue(0, &amount) || !wantReg(1, &rd))
                return;
        } else if (!wantReg(0, &rd)) {
            return;
        }
        inst.rs1 = static_cast<u8>(rd);
        inst.rd = static_cast<u8>(rd);
        inst.has_imm = true;
        inst.simm = static_cast<s32>(amount);
        emit(inst);
        return;
    }
    if (m == "jmp" || m == "jmpl") {
        inst.op = Op::kJmpl;
        if (p.operands.empty()) {
            err("expected address operand");
            return;
        }
        size_t idx = 0;
        const Operand &op0 = p.operands[0];
        if (op0.kind == Operand::Kind::kMem) {
            if (!fillMem(0, &inst))
                return;
        } else if (op0.kind == Operand::Kind::kReg) {
            inst.rs1 = static_cast<u8>(op0.reg);
            inst.has_imm = true;
            inst.simm = 0;
        } else {
            err("expected address operand");
            return;
        }
        idx = 1;
        if (m == "jmpl") {
            unsigned rd;
            if (!wantReg(idx, &rd))
                return;
            inst.rd = static_cast<u8>(rd);
        } else {
            inst.rd = 0;
        }
        emit(inst);
        return;
    }
    if (m == "mov") {
        inst.op = Op::kOr;
        inst.rs1 = 0;
        unsigned rd;
        if (!fillRegOrImm(0, &inst) || !wantReg(1, &rd))
            return;
        inst.rd = static_cast<u8>(rd);
        emit(inst);
        return;
    }
    if (m == "neg") {
        unsigned rd;
        if (!wantReg(0, &rd))
            return;
        inst.op = Op::kSub;
        inst.rs1 = 0;
        inst.rs2 = static_cast<u8>(rd);
        inst.rd = static_cast<u8>(rd);
        emit(inst);
        return;
    }
    if (m == "nop") {
        emit(makeNop());
        return;
    }
    if (m == "not") {
        unsigned rd;
        if (!wantReg(0, &rd))
            return;
        inst.op = Op::kXnor;
        inst.rs1 = static_cast<u8>(rd);
        inst.rs2 = 0;
        inst.rd = static_cast<u8>(rd);
        emit(inst);
        return;
    }
    if (m == "rd") {
        // rd %y, %rd
        if (p.operands.empty() ||
            p.operands[0].kind != Operand::Kind::kSpecialY) {
            err("expected %y source");
            return;
        }
        unsigned rd;
        if (!wantReg(1, &rd))
            return;
        inst.op = Op::kRdy;
        inst.rd = static_cast<u8>(rd);
        emit(inst);
        return;
    }
    if (m == "ret" || m == "retl") {
        inst.op = Op::kJmpl;
        inst.rs1 = m == "ret" ? 31 : 15;  // %i7 or %o7
        inst.has_imm = true;
        inst.simm = 8;
        inst.rd = 0;
        emit(inst);
        return;
    }
    if (m == "set") {
        u32 value;
        unsigned rd;
        if (!wantImmValue(0, &value) || !wantReg(1, &rd))
            return;
        Instruction hi;
        hi.op = Op::kSethi;
        hi.rd = static_cast<u8>(rd);
        hi.imm22 = (value >> 10) & 0x3fffff;
        emit(hi);
        Instruction lo;
        lo.op = Op::kOr;
        lo.rs1 = static_cast<u8>(rd);
        lo.rd = static_cast<u8>(rd);
        lo.has_imm = true;
        lo.simm = static_cast<s32>(value & 0x3ff);
        emitSecond(lo);
        return;
    }
    if (m == "sethi") {
        unsigned rd;
        u32 value;
        if (!wantImmValue(0, &value) || !wantReg(1, &rd))
            return;
        inst.op = Op::kSethi;
        inst.rd = static_cast<u8>(rd);
        // %hi(x) has already been shifted during resolve(); plain
        // constants are used verbatim as the 22-bit field.
        inst.imm22 = value & 0x3fffff;
        emit(inst);
        return;
    }
    if (m == "tst") {
        unsigned rs;
        if (!wantReg(0, &rs))
            return;
        inst.op = Op::kOrcc;
        inst.rs1 = 0;
        inst.rs2 = static_cast<u8>(rs);
        inst.rd = 0;
        emit(inst);
        return;
    }
    if (m == "wr") {
        // wr %rs1, %y
        unsigned rs1;
        if (!wantReg(0, &rs1))
            return;
        if (p.operands.size() < 2 ||
            p.operands[1].kind != Operand::Kind::kSpecialY) {
            err("expected %y destination");
            return;
        }
        inst.op = Op::kWry;
        inst.rs1 = static_cast<u8>(rs1);
        emit(inst);
        return;
    }

    addError(line, "unknown mnemonic '" + m + "'");
}

Program
Assembler::assembleOrDie(const std::string &source, Addr base)
{
    Assembler as;
    Program prog;
    prog.setBase(base);
    if (!as.assemble(source, &prog))
        FLEX_FATAL("assembly failed:\n", as.errorText());
    return prog;
}

}  // namespace flexcore
