#include "assembler/parser.h"

#include "isa/registers.h"

namespace flexcore {

namespace {

/** Cursor over the token vector. */
class Cursor
{
  public:
    explicit Cursor(const std::vector<Token> &tokens) : tokens_(tokens) {}

    const Token &peek() const { return tokens_[pos_]; }
    const Token &next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
    bool atEnd() const { return peek().kind == TokKind::kEnd; }

    size_t pos() const { return pos_; }
    void setPos(size_t pos) { pos_ = pos; }

    bool
    accept(TokKind kind)
    {
        if (peek().kind != kind)
            return false;
        next();
        return true;
    }

  private:
    const std::vector<Token> &tokens_;
    size_t pos_ = 0;
};

bool
parseExpr(Cursor *cur, ExprRef *out, std::string *error)
{
    *out = ExprRef{};
    // Optional %hi( ... ) / %lo( ... ) wrapper.
    if (cur->peek().kind == TokKind::kPercent &&
        (cur->peek().text == "hi" || cur->peek().text == "lo")) {
        out->mod = cur->peek().text == "hi" ? ExprRef::Mod::kHi
                                            : ExprRef::Mod::kLo;
        cur->next();
        if (!cur->accept(TokKind::kLParen)) {
            *error = "expected '(' after %hi/%lo";
            return false;
        }
        ExprRef inner;
        if (!parseExpr(cur, &inner, error))
            return false;
        if (inner.mod != ExprRef::Mod::kNone) {
            *error = "nested %hi/%lo not allowed";
            return false;
        }
        out->symbol = inner.symbol;
        out->addend = inner.addend;
        if (!cur->accept(TokKind::kRParen)) {
            *error = "expected ')' after %hi/%lo expression";
            return false;
        }
        return true;
    }

    // term ((+|-) term)* where each term is a number or (at most one,
    // non-negated) symbol.
    s64 sign = 1;
    for (;;) {
        while (cur->accept(TokKind::kMinus))
            sign = -sign;
        const Token &tok = cur->peek();
        if (tok.kind == TokKind::kNumber) {
            out->addend += sign * tok.value;
            cur->next();
        } else if (tok.kind == TokKind::kIdent && out->symbol.empty() &&
                   sign > 0) {
            out->symbol = tok.text;
            cur->next();
        } else {
            *error = "expected expression term";
            return false;
        }
        if (cur->accept(TokKind::kPlus)) {
            sign = 1;
            continue;
        }
        if (cur->peek().kind == TokKind::kMinus) {
            cur->next();
            sign = -1;
            continue;
        }
        break;
    }
    return true;
}

bool
parseMemOperand(Cursor *cur, Operand *out, std::string *error)
{
    out->kind = Operand::Kind::kMem;
    if (cur->peek().kind != TokKind::kPercent) {
        *error = "expected base register in memory operand";
        return false;
    }
    unsigned base;
    if (!parseRegName("%" + cur->peek().text, &base)) {
        *error = "bad register '%" + cur->peek().text + "'";
        return false;
    }
    cur->next();
    out->reg = base;
    out->expr = ExprRef{};

    if (cur->accept(TokKind::kPlus)) {
        if (cur->peek().kind == TokKind::kPercent) {
            unsigned index;
            if (!parseRegName("%" + cur->peek().text, &index)) {
                *error = "bad index register";
                return false;
            }
            cur->next();
            out->mem_has_index_reg = true;
            out->index_reg = index;
        } else {
            if (!parseExpr(cur, &out->expr, error))
                return false;
        }
    } else if (cur->peek().kind == TokKind::kMinus) {
        if (!parseExpr(cur, &out->expr, error))
            return false;
    }
    if (!cur->accept(TokKind::kRBracket)) {
        *error = "expected ']' in memory operand";
        return false;
    }
    return true;
}

bool
parseOperand(Cursor *cur, Operand *out, std::string *error)
{
    *out = Operand{};
    const Token &tok = cur->peek();
    if (tok.kind == TokKind::kLBracket) {
        cur->next();
        return parseMemOperand(cur, out, error);
    }
    if (tok.kind == TokKind::kPercent) {
        if (tok.text == "y") {
            out->kind = Operand::Kind::kSpecialY;
            cur->next();
            return true;
        }
        if (tok.text == "hi" || tok.text == "lo") {
            out->kind = Operand::Kind::kImm;
            return parseExpr(cur, &out->expr, error);
        }
        unsigned reg;
        if (!parseRegName("%" + tok.text, &reg)) {
            *error = "bad register '%" + tok.text + "'";
            return false;
        }
        cur->next();
        // "%r + imm" / "%r + %r" without brackets (jmpl-style address):
        // fold into a kMem operand.
        if (cur->peek().kind == TokKind::kPlus) {
            cur->next();
            out->kind = Operand::Kind::kMem;
            out->reg = reg;
            if (cur->peek().kind == TokKind::kPercent) {
                unsigned index;
                if (!parseRegName("%" + cur->peek().text, &index)) {
                    *error = "bad index register";
                    return false;
                }
                cur->next();
                out->mem_has_index_reg = true;
                out->index_reg = index;
                return true;
            }
            return parseExpr(cur, &out->expr, error);
        }
        out->kind = Operand::Kind::kReg;
        out->reg = reg;
        return true;
    }
    out->kind = Operand::Kind::kImm;
    return parseExpr(cur, &out->expr, error);
}

}  // namespace

bool
parseLine(const std::vector<Token> &tokens, ParsedLine *out,
          std::string *error)
{
    *out = ParsedLine{};
    Cursor cur(tokens);

    // Leading labels: ident ':' (possibly several).
    while (cur.peek().kind == TokKind::kIdent) {
        // Look ahead one token for ':'.
        const size_t save = cur.pos();
        const std::string name = cur.peek().text;
        cur.next();
        if (cur.accept(TokKind::kColon)) {
            out->labels.push_back(name);
            continue;
        }
        cur.setPos(save);
        break;
    }

    if (cur.atEnd())
        return true;  // blank / label-only line

    if (cur.peek().kind != TokKind::kIdent) {
        *error = "expected mnemonic or directive";
        return false;
    }
    out->mnemonic = cur.peek().text;
    cur.next();

    // Branch annul suffix: "ba,a target".
    if (cur.peek().kind == TokKind::kComma) {
        const size_t save = cur.pos();
        cur.next();
        if (cur.peek().kind == TokKind::kIdent && cur.peek().text == "a") {
            cur.next();
            out->annul = true;
        } else {
            cur.setPos(save);
        }
    }

    // Operand list.
    bool first = true;
    while (!cur.atEnd()) {
        if (!first && !cur.accept(TokKind::kComma)) {
            *error = "expected ',' between operands";
            return false;
        }
        if (cur.peek().kind == TokKind::kString) {
            out->string_args.push_back(cur.peek().text);
            cur.next();
        } else {
            Operand op;
            if (!parseOperand(&cur, &op, error))
                return false;
            out->operands.push_back(std::move(op));
        }
        first = false;
    }
    return true;
}

}  // namespace flexcore
