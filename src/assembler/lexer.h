/**
 * @file
 * Line-oriented tokenizer for the assembler. Comments start with ';',
 * '!' or '#' and run to end of line.
 */

#ifndef FLEXCORE_ASSEMBLER_LEXER_H_
#define FLEXCORE_ASSEMBLER_LEXER_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace flexcore {

enum class TokKind : u8 {
    kIdent,      // mnemonic, label, symbol, or ".directive" / "m.op"
    kPercent,    // %g0, %hi, %lo, %sp, ... (text excludes the '%')
    kNumber,     // integer literal (value in Token::value)
    kString,     // quoted string (text holds the unescaped contents)
    kComma,
    kColon,
    kLBracket,
    kRBracket,
    kLParen,
    kRParen,
    kPlus,
    kMinus,
    kEnd,        // end of line
};

struct Token
{
    TokKind kind = TokKind::kEnd;
    std::string text;
    s64 value = 0;
    int column = 0;
};

/**
 * Tokenize one source line. Returns false and fills @p error on a
 * malformed token (bad number, unterminated string, stray character).
 */
bool tokenizeLine(const std::string &line, std::vector<Token> *tokens,
                  std::string *error);

}  // namespace flexcore

#endif  // FLEXCORE_ASSEMBLER_LEXER_H_
