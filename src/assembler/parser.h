/**
 * @file
 * Syntactic analysis for the assembler: turns a token line into a
 * ParsedLine (labels, mnemonic, structured operands). Symbol values are
 * resolved later by the Assembler's second pass.
 */

#ifndef FLEXCORE_ASSEMBLER_PARSER_H_
#define FLEXCORE_ASSEMBLER_PARSER_H_

#include <string>
#include <vector>

#include "assembler/lexer.h"
#include "common/types.h"

namespace flexcore {

/**
 * A (possibly symbolic) integer expression: symbol + addend, with an
 * optional %hi/%lo modifier. An empty symbol means a plain constant.
 */
struct ExprRef
{
    enum class Mod : u8 { kNone, kHi, kLo };
    std::string symbol;
    s64 addend = 0;
    Mod mod = Mod::kNone;

    bool isConstant() const { return symbol.empty(); }
};

/** One parsed operand. */
struct Operand
{
    enum class Kind : u8 {
        kReg,       // %o0 ...
        kImm,       // expression
        kMem,       // [%rs1 + %rs2] or [%rs1 + imm]
        kSpecialY,  // %y
    };
    Kind kind = Kind::kImm;
    unsigned reg = 0;          // kReg: register index; kMem: base register
    bool mem_has_index_reg = false;
    unsigned index_reg = 0;    // kMem with register index
    ExprRef expr;              // kImm value or kMem immediate offset
};

/** A parsed source line. */
struct ParsedLine
{
    std::vector<std::string> labels;
    std::string mnemonic;      // empty for label-only/blank lines
    bool annul = false;        // ",a" suffix on branches
    std::vector<Operand> operands;
    std::vector<std::string> string_args;  // for .asciz etc.
};

/**
 * Parse one tokenized line. Returns false and fills @p error on a
 * syntax error.
 */
bool parseLine(const std::vector<Token> &tokens, ParsedLine *out,
               std::string *error);

}  // namespace flexcore

#endif  // FLEXCORE_ASSEMBLER_PARSER_H_
