/**
 * @file
 * An assembled program image: a contiguous byte image with a base
 * address, an entry point, and a symbol table.
 */

#ifndef FLEXCORE_ASSEMBLER_PROGRAM_H_
#define FLEXCORE_ASSEMBLER_PROGRAM_H_

#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace flexcore {

class Program
{
  public:
    Program() = default;

    /** Base (load) address of the image. */
    Addr base() const { return base_; }
    void setBase(Addr base) { base_ = base; }

    /** Entry point; defaults to the base address or the _start label. */
    Addr entry() const { return entry_; }
    void setEntry(Addr entry) { entry_ = entry; }

    /** Raw image bytes, to be copied into simulated memory at base(). */
    const std::vector<u8> &image() const { return image_; }

    /** Size of the image in bytes. */
    u32 size() const { return static_cast<u32>(image_.size()); }

    /** Append one byte at the current end of the image. */
    void appendByte(u8 byte) { image_.push_back(byte); }

    /** Append a 32-bit big-endian word (SPARC is big-endian). */
    void appendWord(u32 word);

    /** Write a 32-bit big-endian word at an absolute address. */
    void patchWord(Addr addr, u32 word);

    /** Read back a 32-bit word at an absolute address. */
    u32 wordAt(Addr addr) const;

    /** Pad with zero bytes up to an absolute address. */
    void padTo(Addr addr);

    /** Current end address (base + size). */
    Addr end() const { return base_ + size(); }

    /** Define a symbol. Returns false if it already exists. */
    bool defineSymbol(const std::string &name, u32 value);

    /** Look up a symbol; returns false if undefined. */
    bool lookupSymbol(const std::string &name, u32 *value) const;

    const std::map<std::string, u32> &symbols() const { return symbols_; }

  private:
    Addr base_ = 0x1000;
    Addr entry_ = 0;
    std::vector<u8> image_;
    std::map<std::string, u32> symbols_;
};

}  // namespace flexcore

#endif  // FLEXCORE_ASSEMBLER_PROGRAM_H_
