/**
 * @file
 * Two-pass assembler for the SPARC V8 subset, including the monitor
 * pseudo-ops (m.settag, m.setmtag, m.policy, m.read, ...) that assemble
 * to CPop1 instructions.
 *
 * Supported directives: .org .align .word .half .byte .asciz .ascii
 * .space .equ .global .text .data
 *
 * Supported pseudo-instructions: nop, set, mov, clr, cmp, tst, ret,
 * retl, jmp, inc, dec, neg, not, ta, and the b<cond>[,a] branch family.
 */

#ifndef FLEXCORE_ASSEMBLER_ASSEMBLER_H_
#define FLEXCORE_ASSEMBLER_ASSEMBLER_H_

#include <string>
#include <vector>

#include "assembler/parser.h"
#include "assembler/program.h"

namespace flexcore {

/** One assembly diagnostic. */
struct AsmError
{
    int line = 0;
    std::string message;
};

class Assembler
{
  public:
    /**
     * Assemble @p source into @p out. Returns true on success; on
     * failure errors() holds at least one diagnostic.
     */
    bool assemble(const std::string &source, Program *out);

    const std::vector<AsmError> &errors() const { return errors_; }

    /** Render all diagnostics as one newline-separated string. */
    std::string errorText() const;

    /**
     * Convenience for tests and workloads: assemble or die with a
     * fatal error listing the diagnostics.
     */
    static Program assembleOrDie(const std::string &source,
                                 Addr base = 0x1000);

  private:
    struct Pending
    {
        Addr addr = 0;
        int line = 0;
        ParsedLine parsed;
    };

    struct DataFixup
    {
        Addr addr = 0;
        int line = 0;
        ExprRef expr;
    };

    void addError(int line, std::string message);

    /** Pass 1 helpers. */
    bool runDirective(const ParsedLine &parsed, int line, Program *out);
    static bool isDirective(const std::string &mnemonic);
    static unsigned instrByteSize(const ParsedLine &parsed);

    /** Pass 2: resolve and encode one parsed instruction. */
    void encodeStatement(const Pending &pending, Program *out);

    bool resolve(const ExprRef &expr, const Program &prog, int line,
                 u32 *value);

    std::vector<AsmError> errors_;
    std::vector<Pending> pending_;
    std::vector<DataFixup> fixups_;
    bool emitted_anything_ = false;
};

}  // namespace flexcore

#endif  // FLEXCORE_ASSEMBLER_ASSEMBLER_H_
