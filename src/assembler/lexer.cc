#include "assembler/lexer.h"

#include <cctype>

namespace flexcore {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

}  // namespace

bool
tokenizeLine(const std::string &line, std::vector<Token> *tokens,
             std::string *error)
{
    tokens->clear();
    size_t i = 0;
    const size_t n = line.size();
    while (i < n) {
        const char c = line[i];
        if (c == ' ' || c == '\t' || c == '\r') {
            ++i;
            continue;
        }
        if (c == ';' || c == '!' || c == '#')
            break;  // comment to end of line

        Token tok;
        tok.column = static_cast<int>(i) + 1;

        if (isIdentStart(c)) {
            size_t j = i;
            while (j < n && isIdentChar(line[j]))
                ++j;
            tok.kind = TokKind::kIdent;
            tok.text = line.substr(i, j - i);
            i = j;
        } else if (c == '%') {
            size_t j = i + 1;
            while (j < n && std::isalnum(static_cast<unsigned char>(line[j])))
                ++j;
            if (j == i + 1) {
                *error = "stray '%'";
                return false;
            }
            tok.kind = TokKind::kPercent;
            tok.text = line.substr(i + 1, j - i - 1);
            i = j;
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t j = i;
            int base = 10;
            if (c == '0' && j + 1 < n && (line[j+1] == 'x' || line[j+1] == 'X')) {
                base = 16;
                j += 2;
            }
            s64 value = 0;
            bool any = false;
            while (j < n) {
                const char d = line[j];
                int digit;
                if (d >= '0' && d <= '9') {
                    digit = d - '0';
                } else if (base == 16 && d >= 'a' && d <= 'f') {
                    digit = d - 'a' + 10;
                } else if (base == 16 && d >= 'A' && d <= 'F') {
                    digit = d - 'A' + 10;
                } else {
                    break;
                }
                if (digit >= base)
                    break;
                value = value * base + digit;
                any = true;
                ++j;
            }
            if (!any) {
                *error = "malformed number";
                return false;
            }
            tok.kind = TokKind::kNumber;
            tok.value = value;
            tok.text = line.substr(i, j - i);
            i = j;
        } else if (c == '"') {
            std::string contents;
            size_t j = i + 1;
            bool closed = false;
            while (j < n) {
                if (line[j] == '"') {
                    closed = true;
                    ++j;
                    break;
                }
                if (line[j] == '\\' && j + 1 < n) {
                    ++j;
                    switch (line[j]) {
                      case 'n': contents += '\n'; break;
                      case 't': contents += '\t'; break;
                      case '0': contents += '\0'; break;
                      case '\\': contents += '\\'; break;
                      case '"': contents += '"'; break;
                      default: contents += line[j]; break;
                    }
                    ++j;
                } else {
                    contents += line[j];
                    ++j;
                }
            }
            if (!closed) {
                *error = "unterminated string literal";
                return false;
            }
            tok.kind = TokKind::kString;
            tok.text = contents;
            i = j;
        } else {
            switch (c) {
              case ',': tok.kind = TokKind::kComma; break;
              case ':': tok.kind = TokKind::kColon; break;
              case '[': tok.kind = TokKind::kLBracket; break;
              case ']': tok.kind = TokKind::kRBracket; break;
              case '(': tok.kind = TokKind::kLParen; break;
              case ')': tok.kind = TokKind::kRParen; break;
              case '+': tok.kind = TokKind::kPlus; break;
              case '-': tok.kind = TokKind::kMinus; break;
              default:
                *error = std::string("unexpected character '") + c + "'";
                return false;
            }
            ++i;
        }
        tokens->push_back(std::move(tok));
    }
    Token end;
    end.kind = TokKind::kEnd;
    end.column = static_cast<int>(i) + 1;
    tokens->push_back(std::move(end));
    return true;
}

}  // namespace flexcore
