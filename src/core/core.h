/**
 * @file
 * Cycle-level timing model of a Leon3-class SPARC V8 core: 7-stage
 * single-issue in-order pipeline abstracted as one commit per cycle
 * plus explicit stall sources (I-cache misses, load delay, multi-cycle
 * mul/div, annulled delay slots, store-buffer backpressure, window
 * spill/fill microcode, and forward-FIFO backpressure from the
 * FlexCore interface at the commit stage).
 */

#ifndef FLEXCORE_CORE_CORE_H_
#define FLEXCORE_CORE_CORE_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "assembler/program.h"
#include "common/stats.h"
#include "common/trace_event.h"
#include "core/alu.h"
#include "core/regfile.h"
#include "core/trap.h"
#include "flexcore/interface.h"
#include "memory/bus.h"
#include "memory/cache.h"
#include "memory/memory.h"
#include "memory/store_buffer.h"
#include "monitors/software.h"

namespace flexcore {

class FaultInjector;
class PcProfile;

struct CoreParams
{
    CacheParams icache{32 * 1024, 32, 4};
    CacheParams dcache{32 * 1024, 32, 4};
    u32 store_buffer_depth = 8;

    // Stall cycles beyond the base 1-cycle commit.
    u32 load_extra = 1;       //!< Leon3 load-delay cycle
    u32 mul_extra = 3;
    u32 div_extra = 34;
    u32 branch_taken_extra = 1;  //!< fetch-redirect bubble not covered
                                 //!< by the delay slot (7-stage pipe)
    u32 call_extra = 1;
    u32 jmpl_extra = 2;       //!< register-indirect target resolves late
    u32 annul_extra = 1;      //!< annulled delay slot bubble
    u32 trap_overhead = 8;    //!< window spill/fill microcode entry

    Addr stack_top = 0x00400000;  //!< initial %sp
};

class ThreadedEngine;

class Core
{
  public:
    /**
     * Exhaustive cycle attribution: every simulated cycle is charged
     * to exactly one bucket, so the buckets always sum to cycles().
     * kCommit covers productive work (execute/commit/dispatch of an
     * instruction or micro-op and trap resolution); every other bucket
     * is a distinct structural stall source. See docs/observability.md
     * for the full taxonomy.
     */
    enum class CycleBucket : u8 {
        kCommit,       //!< instruction/micro-op progress
        kLatency,      //!< fixed-latency stalls (mul/div/branch/...)
        kImiss,        //!< I-cache refill in service on the bus
        kDmiss,        //!< D-cache refill in service on the bus
        kBusQueue,     //!< refill queued behind another bus transaction
        kSbWait,       //!< store buffer full
        kFfifoFull,    //!< commit stalled on a full forward FIFO
        kAckWait,      //!< waiting for the fabric's CACK
        kBfifoWait,    //!< waiting for a 'read from co-processor' value
        kDrain,        //!< draining the fabric at exit/trap
        kNumBuckets,
    };
    static std::string_view cycleBucketName(CycleBucket bucket);

    Core(StatGroup *parent, Memory *memory, Bus *bus, CoreParams params);

    /**
     * This core's index in a multi-core system (0, the default, on
     * single-core). Sets the CommitPacket core tag, the bus arbitration
     * port, the per-core interface lane (CACK/BFIFO/TRAP routing), and
     * the value the coreid software trap returns. Call before the
     * first tick; System does.
     */
    void
    setCoreId(u8 id)
    {
        core_id_ = id;
        bus_port_ = id;
        store_buffer_.setBusPort(id);
    }
    u8 coreId() const { return core_id_; }

    /**
     * Write-through coherence over the shared window: a store by this
     * core into [base, base+size) invalidates the matching D-cache
     * line and any decoded µops in every peer. Peers exclude this core
     * (System passes the other cores). Single-core systems never call
     * this, so the store path pays only an empty-vector check.
     */
    void
    setCoherence(Addr base, u32 size, std::vector<Core *> peers)
    {
        shared_base_ = base;
        shared_size_ = size;
        coherence_peers_ = std::move(peers);
    }

    /** Attach the FlexCore interface (null = unmodified baseline). */
    void attachInterface(FlexInterface *iface) { iface_ = iface; }

    /** Attach a software instrumentation model (software-mode runs). */
    void attachSoftwareMonitor(const SoftwareMonitor *monitor)
    {
        swmon_ = monitor;
    }

    /**
     * Attach the fault injector (null = none, the default). The only
     * hot-path cost without one is a single null check per committed
     * instruction; with one, FaultInjector::onCommit() fires after
     * every architectural commit so commit-indexed faults land at
     * their exact instruction boundary.
     */
    void setFaultInjector(FaultInjector *injector)
    {
        fault_injector_ = injector;
    }

    /** Per-committed-instruction hook (debug tracing). */
    using Tracer = std::function<void(Cycle, Addr, const Instruction &)>;
    void setTracer(Tracer tracer) { tracer_ = std::move(tracer); }

    /**
     * Attach a trace-event sink (null = off, the default). When
     * attached, stall episodes emit duration events and monitor traps
     * instant events; when null the only hot-path cost is one branch.
     */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }
    /** Close the open stall episode (call once at end of run). */
    void flushTrace();

    /**
     * Attach a per-PC cycle profiler (null = off, the default). Every
     * tick then charges its bucket to attributionPc() as well; attach
     * before the first cycle so the profile total tracks core.cycles
     * exactly (debug-asserted every tick). Costs one branch when null.
     */
    void setProfile(PcProfile *profile) { profile_ = profile; }

    /**
     * The PC a profiled cycle is charged to: a fetch wait (I-miss
     * service or its bus queueing) charges the PC being fetched; every
     * other cycle charges the in-flight commit packet's PC — the
     * instruction committing, stalling, or draining. Well-defined for
     * idle stretches too: both stretch buckets (kLatency, and the
     * kWaitBus family) keep this value constant across the stretch, so
     * advanceIdle() attributes exactly as k single ticks would.
     */
    Addr
    attributionPc() const
    {
        return (state_ == State::kWaitBus && wait_is_fetch_) ? pc_
                                                             : cur_.pkt.pc;
    }

    /** Load an assembled program and reset architectural state. */
    void loadProgram(const Program &program);

    /** Advance one core-clock cycle. */
    void tick(Cycle now);

    /**
     * A provably uneventful run of upcoming cycles: every one of them
     * would charge the same bucket and change no other core state. A
     * zero length means the core is not in a skippable state.
     */
    struct IdleStretch
    {
        u64 cycles = 0;
        CycleBucket bucket = CycleBucket::kCommit;
    };

    /**
     * Detect a skippable idle stretch. Only valid when the rest of the
     * system is quiescent too (fabric idle, FFIFO empty, store buffer
     * empty) — System::fastForward() checks those.
     */
    IdleStretch idleStretch() const;

    /**
     * Cheap pre-filter for idleStretch(): true only in the two states
     * that can yield a non-zero stretch (a multi-cycle fixed-latency
     * stall, or a bus refill wait). Lets the run loop skip the full
     * quiescence checks on ordinary commit cycles.
     */
    bool
    idleCandidate() const
    {
        return (state_ == State::kReady && stall_ > 1) ||
               state_ == State::kWaitBus;
    }

    /**
     * Bulk-apply @p k cycles of @p bucket, exactly as k tick() calls
     * over an IdleStretch would: counters, stall bookkeeping, and the
     * stall-episode trace all advance identically.
     */
    void advanceIdle(u64 k, CycleBucket bucket);

    /**
     * True when the core itself has nothing in flight: ready to fetch
     * a fresh instruction with no stall, pending micro-ops, or fetch
     * retry. Sampled timing requires this (plus whole-system
     * quiescence) before switching to functional warming, so a
     * detailed window never cuts an instruction in half.
     */
    bool
    quiescent() const
    {
        return state_ == State::kReady && stall_ == 0 &&
               micro_queue_.empty() && !fetch_retry_;
    }

    bool halted() const { return halted_; }
    u32 exitCode() const { return exit_code_; }
    const TrapInfo &trap() const { return trap_; }
    const std::string &consoleOutput() const { return console_; }

    u64 instructions() const { return instructions_.value(); }
    /** Spill/fill and instrumentation micro-ops committed. */
    u64 microOps() const { return micro_ops_.value(); }
    u64 committedOfType(InstrType type) const
    {
        return committed_by_type_[type];
    }

    /** Total simulated core cycles (the sum of all cycle buckets). */
    u64 cycles() const { return cycles_.value(); }
    u64 cyclesIn(CycleBucket bucket) const
    {
        return bucket_counters_[static_cast<unsigned>(bucket)]->value();
    }

    RegWindowFile &regs() { return regs_; }
    Alu &alu() { return alu_; }
    Cache &icache() { return icache_; }
    Cache &dcache() { return dcache_; }
    StoreBuffer &storeBuffer() { return store_buffer_; }

    /**
     * Self-modifying-code / fault-injection safety: force a re-decode
     * of any resident µop covering @p addr. Stores call this on the
     * commit path; the fault injector calls it after memory bit flips
     * that may land in decoded text.
     */
    void invalidateUopsAt(Addr addr);

  private:
    /** Threaded-dispatch/warming engine (src/core/threaded.cc): drives
     * bursts over the µop cache with full access to the commit path. */
    friend class ThreadedEngine;

    enum class State : u8 {
        kReady,            //!< fetch/execute a new instruction
        kWaitBus,          //!< blocked on an I/D refill
        kWaitStoreBuffer,  //!< store buffer full, retrying
        kCommitPending,    //!< memory done; try the interface
        kCommitStall,      //!< FFIFO full under kAlways/kWaitAck
        kWaitAck,          //!< waiting for CACK
        kWaitBfifo,        //!< 'read from co-processor' outstanding
        kDrainExit,        //!< program exited; draining the fabric
        kDrainTrap,        //!< core trap raised; draining the fabric
                           //!< first so a monitor trap can take
                           //!< precedence (§III-C)
    };

    /** One spill/fill or instrumentation micro-operation. */
    struct MicroOp
    {
        enum class Kind : u8 { kAlu, kLoad, kStore };
        Kind kind = Kind::kAlu;
        Addr addr = 0;
        u16 phys_reg = 0;
        u32 store_value = 0;
        bool forward = false;   //!< forward to the fabric (spill/fill)
    };

    /** Context of the instruction currently in the commit pipeline. */
    struct ExecContext
    {
        CommitPacket pkt;
        u32 extra_stall = 0;
        bool skip_offer = false;   //!< unforwarded micro-op
        bool is_micro = false;
        bool is_cpread = false;
        unsigned cpread_rd = 0;
        bool is_exit = false;
        Addr store_addr = 0;
        bool is_store = false;
    };

    struct Uop;
    /**
     * Threaded-dispatch handler: executes one instruction's
     * architectural semantics and fills @p pkt with the exact bytes
     * executeInstruction() would produce, returning extra-stall cycles
     * and outcome flags (src/core/threaded.cc). Handlers never touch
     * timing state (caches, bus, store buffer, interface) — the engine
     * driving them does. Null marks an op the burst engine must hand
     * back to the interpreter.
     */
    using BurstFn = u32 (*)(Core &core, const Uop &uop,
                            CommitPacket &pkt);
    /** Handler for @p inst, assigned once at decode (threaded.cc). */
    static BurstFn burstHandlerFor(const Instruction &inst);

    /** One pre-decoded instruction word of a resident I-cache line. */
    struct Uop
    {
        Instruction inst;
        u32 decode_bits = 0;   //!< CommitPacket::decode, precomputed
        BurstFn exec = nullptr;  //!< threaded-dispatch handler
    };

    void step();
    void chargeBusWait();
    void traceEpisode();
    void startWork();
    void execMicroOp();
    bool fetchTimingOk();
    const Uop &decodedFetch();
    void executeInstruction(const Uop &uop);
    void scheduleStoreThenCommit();
    void tryCommit();
    void finishInstruction();
    void raiseTrap(TrapKind kind, Addr pc, std::string detail);
    void takeMonitorTrap();

    void enqueueWindowSpill();
    void enqueueWindowFill();
    unsigned windowSlot(unsigned window, unsigned arch_reg) const;

    /** Shared-window store: invalidate the line in every peer core. */
    void notifyPeersOfStore(Addr addr);

    u32 operand2(const Instruction &inst) const;
    void advancePc();

    Memory *mem_;
    Bus *bus_;
    CoreParams params_;
    u8 core_id_ = 0;
    u8 bus_port_ = 0;
    Addr shared_base_ = 0;           //!< coherent window (multi-core)
    u32 shared_size_ = 0;
    std::vector<Core *> coherence_peers_;
    FlexInterface *iface_ = nullptr;
    const SoftwareMonitor *swmon_ = nullptr;
    FaultInjector *fault_injector_ = nullptr;
    Tracer tracer_;
    TraceSink *trace_ = nullptr;
    PcProfile *profile_ = nullptr;

    // Architectural state.
    RegWindowFile regs_;
    Alu alu_;
    Icc icc_;
    u32 y_ = 0;
    Addr pc_ = 0;
    Addr npc_ = 4;
    unsigned depth_ = 1;      //!< live register windows
    unsigned spilled_ = 0;    //!< windows spilled to memory

    // Timing state.
    Cache icache_;
    Cache dcache_;
    /**
     * Pre-decoded µop cache, mirroring the I-cache line slots: slot s
     * holds the decoded words of whatever line currently occupies
     * I-cache slot s. A word is valid when its bit is set in
     * uop_masks_[s]; fill() resetting a slot's mask is the eviction
     * invalidation, and stores into decoded text clear the mask too
     * (self-modifying code). Fetches therefore never re-decode a
     * resident instruction.
     */
    std::vector<Uop> uops_;
    std::vector<u32> uop_masks_;
    Uop fallback_uop_;             //!< scratch when the cache is off
    u32 uop_words_per_line_ = 0;   //!< 0 disables the µop cache
    u32 fetch_slot_ = 0;           //!< I-cache slot of the fetched line
    Addr decoded_lo_ = ~Addr{0};   //!< line-granular bounds of all text
    Addr decoded_hi_ = 0;          //!< ever decoded (store filter)
    StoreBuffer store_buffer_;
    State state_ = State::kReady;
    u32 stall_ = 0;
    bool fetch_retry_ = false;   //!< refill done; skip the I$ recheck
    std::deque<MicroOp> micro_queue_;
    ExecContext cur_;

    // Run status.
    bool halted_ = false;
    u32 exit_code_ = 0;
    TrapInfo trap_;
    TrapInfo pending_trap_;   //!< core trap held while draining
    std::string console_;
    Cycle now_ = 0;
    std::vector<SwMicroOp> sw_expansion_;   // scratch

    // Statistics.
    StatGroup stats_;
    Counter instructions_;
    Counter micro_ops_;
    Counter cycles_;
    Counter commit_cycles_;
    Counter latency_stall_cycles_;
    Counter imiss_wait_cycles_;
    Counter dmiss_wait_cycles_;
    Counter bus_queue_wait_cycles_;
    Counter sb_wait_cycles_;
    Counter ffifo_full_cycles_;
    Counter ack_wait_cycles_;
    Counter bfifo_wait_cycles_;
    Counter drain_cycles_;
    Counter window_spills_;
    Counter window_fills_;
    Formula ipc_;
    /** Maps each CycleBucket to the counter that accumulates it. */
    Counter *bucket_counters_[static_cast<unsigned>(
        CycleBucket::kNumBuckets)] = {};
    u64 committed_by_type_[kNumInstrTypes] = {};
    bool wait_is_fetch_ = false;
    bool bus_serving_us_ = false;   //!< our refill reached the bus head

    // Per-cycle attribution state.
    CycleBucket bucket_ = CycleBucket::kCommit;
    CycleBucket episode_bucket_ = CycleBucket::kCommit;
    Cycle episode_start_ = 0;
};

}  // namespace flexcore

#endif  // FLEXCORE_CORE_CORE_H_
