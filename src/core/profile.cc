#include "core/profile.h"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>

namespace flexcore {

namespace {

/** Bucket indices in alphabetical order of their episode names, so the
 * JSON objects keyed by bucket name come out sorted. */
std::array<unsigned, PcProfile::kNumBuckets>
sortedBuckets()
{
    std::array<unsigned, PcProfile::kNumBuckets> order;
    for (unsigned i = 0; i < PcProfile::kNumBuckets; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [](unsigned a, unsigned b) {
        return Core::cycleBucketName(
                   static_cast<Core::CycleBucket>(a)) <
               Core::cycleBucketName(static_cast<Core::CycleBucket>(b));
    });
    return order;
}

void
appendPc(std::string *out, Addr pc)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08" PRIx64,
                  static_cast<u64>(pc));
    *out += buf;
}

void
appendU64(std::string *out, u64 v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    *out += buf;
}

}  // namespace

void
PcProfile::onProgramLoad(Addr base, u32 size_bytes)
{
    base_ = base;
    words_ = (size_bytes + 3) / 4;
    cells_.assign((static_cast<size_t>(words_) + 1) * kNumBuckets, 0);
    total_ = 0;
}

u64
PcProfile::bucketTotal(Core::CycleBucket bucket) const
{
    const unsigned b = static_cast<unsigned>(bucket);
    u64 sum = 0;
    for (size_t row = 0; row <= words_; ++row)
        sum += cells_[row * kNumBuckets + b];
    return sum;
}

u64
PcProfile::pcTotal(Addr pc) const
{
    const size_t row = index(pc);
    u64 sum = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b)
        sum += cells_[row * kNumBuckets + b];
    return sum;
}

u64
PcProfile::overflowTotal() const
{
    u64 sum = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b)
        sum += cells_[static_cast<size_t>(words_) * kNumBuckets + b];
    return sum;
}

std::string
PcProfile::json(u32 top_n) const
{
    const auto order = sortedBuckets();

    // Row totals once; reused by both the top-N scan and the pc list.
    std::vector<u64> row_total(words_ + 1, 0);
    for (size_t row = 0; row <= words_; ++row) {
        for (unsigned b = 0; b < kNumBuckets; ++b)
            row_total[row] += cells_[row * kNumBuckets + b];
    }

    std::string out;
    out.reserve(512);
    out += "{\"base\": \"";
    appendPc(&out, base_);
    out += "\", \"buckets\": {";
    for (unsigned i = 0; i < kNumBuckets; ++i) {
        const unsigned b = order[i];
        if (i)
            out += ", ";
        out += '"';
        out += Core::cycleBucketName(static_cast<Core::CycleBucket>(b));
        out += "\": ";
        appendU64(&out,
                  bucketTotal(static_cast<Core::CycleBucket>(b)));
    }
    out += "}, \"cycles\": ";
    appendU64(&out, total_);
    out += ", \"overflow\": ";
    appendU64(&out, overflowTotal());

    // Per-PC rows, ascending PC, nonzero rows only. The overflow row
    // has no meaningful PC; it is reported via "overflow" above.
    out += ", \"pcs\": [";
    bool first_row = true;
    for (size_t row = 0; row < words_; ++row) {
        if (row_total[row] == 0)
            continue;
        if (!first_row)
            out += ", ";
        first_row = false;
        out += "{\"pc\": \"";
        appendPc(&out, base_ + static_cast<Addr>(row * 4));
        out += "\", \"total\": ";
        appendU64(&out, row_total[row]);
        for (unsigned i = 0; i < kNumBuckets; ++i) {
            const unsigned b = order[i];
            const u64 v = cells_[row * kNumBuckets + b];
            if (v == 0)
                continue;
            out += ", \"";
            out += Core::cycleBucketName(
                static_cast<Core::CycleBucket>(b));
            out += "\": ";
            appendU64(&out, v);
        }
        out += '}';
    }
    out += ']';

    // Top-N PCs per bucket: cycles descending, PC ascending on ties.
    out += ", \"top\": {";
    for (unsigned i = 0; i < kNumBuckets; ++i) {
        const unsigned b = order[i];
        if (i)
            out += ", ";
        out += '"';
        out += Core::cycleBucketName(static_cast<Core::CycleBucket>(b));
        out += "\": [";
        std::vector<std::pair<u64, size_t>> rows;   // (cycles, row)
        for (size_t row = 0; row < words_; ++row) {
            const u64 v = cells_[row * kNumBuckets + b];
            if (v > 0)
                rows.emplace_back(v, row);
        }
        std::sort(rows.begin(), rows.end(),
                  [](const auto &a, const auto &c) {
                      if (a.first != c.first)
                          return a.first > c.first;
                      return a.second < c.second;
                  });
        if (rows.size() > top_n)
            rows.resize(top_n);
        for (size_t k = 0; k < rows.size(); ++k) {
            if (k)
                out += ", ";
            out += "{\"cycles\": ";
            appendU64(&out, rows[k].first);
            out += ", \"pc\": \"";
            appendPc(&out, base_ + static_cast<Addr>(rows[k].second * 4));
            out += "\"}";
        }
        out += ']';
    }
    out += "}}";
    return out;
}

}  // namespace flexcore
