#include "core/alu.h"

#include "common/log.h"

namespace flexcore {

namespace {

Icc
addFlags(u32 a, u32 b, u32 result)
{
    Icc icc;
    icc.n = (result >> 31) != 0;
    icc.z = result == 0;
    icc.v = (~(a ^ b) & (a ^ result) & 0x80000000u) != 0;
    icc.c = result < a;
    return icc;
}

Icc
subFlags(u32 a, u32 b, u32 result)
{
    Icc icc;
    icc.n = (result >> 31) != 0;
    icc.z = result == 0;
    icc.v = ((a ^ b) & (a ^ result) & 0x80000000u) != 0;
    icc.c = b > a;   // borrow
    return icc;
}

Icc
logicFlags(u32 result)
{
    Icc icc;
    icc.n = (result >> 31) != 0;
    icc.z = result == 0;
    return icc;
}

}  // namespace

AluResult
Alu::execute(Op op, u32 a, u32 b, u32 y_in)
{
    AluResult res;
    switch (op) {
      case Op::kAdd:
      case Op::kAddcc:
      case Op::kSave:
      case Op::kRestore:
        res.value = a + b;
        res.icc = addFlags(a, b, res.value);
        break;
      case Op::kSub:
      case Op::kSubcc:
        res.value = a - b;
        res.icc = subFlags(a, b, res.value);
        break;
      case Op::kAnd: case Op::kAndcc:
        res.value = a & b;
        res.icc = logicFlags(res.value);
        break;
      case Op::kOr: case Op::kOrcc:
        res.value = a | b;
        res.icc = logicFlags(res.value);
        break;
      case Op::kXor: case Op::kXorcc:
        res.value = a ^ b;
        res.icc = logicFlags(res.value);
        break;
      case Op::kAndn:
        res.value = a & ~b;
        res.icc = logicFlags(res.value);
        break;
      case Op::kOrn:
        res.value = a | ~b;
        res.icc = logicFlags(res.value);
        break;
      case Op::kXnor:
        res.value = ~(a ^ b);
        res.icc = logicFlags(res.value);
        break;
      case Op::kSll:
        res.value = a << (b & 31);
        break;
      case Op::kSrl:
        res.value = a >> (b & 31);
        break;
      case Op::kSra:
        res.value = static_cast<u32>(static_cast<s32>(a) >> (b & 31));
        break;
      case Op::kUmul: case Op::kUmulcc: {
        const u64 product = static_cast<u64>(a) * static_cast<u64>(b);
        res.value = static_cast<u32>(product);
        res.y_out = static_cast<u32>(product >> 32);
        res.writes_y = true;
        res.icc = logicFlags(res.value);
        break;
      }
      case Op::kSmul: case Op::kSmulcc: {
        const s64 product = static_cast<s64>(static_cast<s32>(a)) *
                            static_cast<s64>(static_cast<s32>(b));
        res.value = static_cast<u32>(product);
        res.y_out = static_cast<u32>(static_cast<u64>(product) >> 32);
        res.writes_y = true;
        res.icc = logicFlags(res.value);
        break;
      }
      case Op::kUdiv: {
        if (b == 0) {
            res.div_by_zero = true;
            break;
        }
        const u64 dividend = (static_cast<u64>(y_in) << 32) | a;
        u64 quotient = dividend / b;
        if (quotient > 0xffffffffull)
            quotient = 0xffffffffull;   // SPARC saturates on overflow
        res.value = static_cast<u32>(quotient);
        break;
      }
      case Op::kSdiv: {
        if (b == 0) {
            res.div_by_zero = true;
            break;
        }
        const s64 dividend =
            static_cast<s64>((static_cast<u64>(y_in) << 32) | a);
        s64 quotient = dividend / static_cast<s32>(b);
        if (quotient > 0x7fffffffll)
            quotient = 0x7fffffffll;
        if (quotient < -0x80000000ll)
            quotient = -0x80000000ll;
        res.value = static_cast<u32>(quotient);
        break;
      }
      default:
        FLEX_PANIC("Alu::execute on non-ALU op ", opName(op));
    }

    if (fault_probability_ > 0.0 &&
        fault_rng_.chance(fault_probability_)) {
        res.value ^= u32{1} << fault_rng_.below(32);
        ++faults_injected_;
    }
    return res;
}

void
Alu::enableFaultInjection(double per_op_probability, u64 seed)
{
    fault_probability_ = per_op_probability;
    fault_rng_ = Rng(seed);
}

bool
Alu::evalCond(Cond cond, const Icc &icc)
{
    switch (cond) {
      case Cond::kA: return true;
      case Cond::kN: return false;
      case Cond::kNe: return !icc.z;
      case Cond::kE: return icc.z;
      case Cond::kG: return !(icc.z || (icc.n != icc.v));
      case Cond::kLe: return icc.z || (icc.n != icc.v);
      case Cond::kGe: return icc.n == icc.v;
      case Cond::kL: return icc.n != icc.v;
      case Cond::kGu: return !(icc.c || icc.z);
      case Cond::kLeu: return icc.c || icc.z;
      case Cond::kCc: return !icc.c;
      case Cond::kCs: return icc.c;
      case Cond::kPos: return !icc.n;
      case Cond::kNeg: return icc.n;
      case Cond::kVc: return !icc.v;
      case Cond::kVs: return icc.v;
    }
    return false;
}

}  // namespace flexcore
