// RegWindowFile is header-only; this file anchors the module in the
// build so the target layout matches DESIGN.md's inventory.
#include "core/regfile.h"
