#include "core/core.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "core/profile.h"
#include "faults/injector.h"
#include "isa/encoding.h"

namespace flexcore {

std::string_view
Core::cycleBucketName(CycleBucket bucket)
{
    switch (bucket) {
      case CycleBucket::kCommit: return "commit";
      case CycleBucket::kLatency: return "latency_stall";
      case CycleBucket::kImiss: return "imiss_wait";
      case CycleBucket::kDmiss: return "dmiss_wait";
      case CycleBucket::kBusQueue: return "bus_queue_wait";
      case CycleBucket::kSbWait: return "sb_wait";
      case CycleBucket::kFfifoFull: return "ffifo_full";
      case CycleBucket::kAckWait: return "ack_wait";
      case CycleBucket::kBfifoWait: return "bfifo_wait";
      case CycleBucket::kDrain: return "drain";
      case CycleBucket::kNumBuckets: break;
    }
    return "?";
}

Core::Core(StatGroup *parent, Memory *memory, Bus *bus, CoreParams params)
    : mem_(memory),
      bus_(bus),
      params_(params),
      icache_(parent, "icache", params.icache),
      dcache_(parent, "dcache", params.dcache),
      store_buffer_(parent, bus, params.store_buffer_depth),
      stats_("core", parent),
      instructions_(&stats_, "instructions", "instructions committed"),
      micro_ops_(&stats_, "micro_ops",
                 "spill/fill and instrumentation micro-ops"),
      cycles_(&stats_, "cycles", "total simulated core cycles"),
      commit_cycles_(&stats_, "commit_cycles",
                     "cycles spent executing/committing work"),
      latency_stall_cycles_(&stats_, "latency_stalls",
                            "fixed-latency stall cycles"),
      imiss_wait_cycles_(&stats_, "imiss_wait", "I-cache refill cycles"),
      dmiss_wait_cycles_(&stats_, "dmiss_wait", "D-cache refill cycles"),
      bus_queue_wait_cycles_(&stats_, "bus_queue_wait",
                             "refill cycles queued behind other bus "
                             "traffic"),
      sb_wait_cycles_(&stats_, "sb_wait", "store-buffer-full cycles"),
      ffifo_full_cycles_(&stats_, "ffifo_full",
                         "commit cycles stalled on a full forward FIFO"),
      ack_wait_cycles_(&stats_, "ack_wait", "CACK wait cycles"),
      bfifo_wait_cycles_(&stats_, "bfifo_wait", "BFIFO wait cycles"),
      drain_cycles_(&stats_, "drain_cycles", "fabric drain cycles at exit"),
      window_spills_(&stats_, "window_spills", "window overflow traps"),
      window_fills_(&stats_, "window_fills", "window underflow traps"),
      ipc_(&stats_, "ipc", "instructions per cycle",
           [this]() {
               return static_cast<double>(instructions_.value()) /
                      static_cast<double>(cycles_.value());
           })
{
    const auto map = [this](CycleBucket bucket, Counter *counter) {
        bucket_counters_[static_cast<unsigned>(bucket)] = counter;
    };
    map(CycleBucket::kCommit, &commit_cycles_);
    map(CycleBucket::kLatency, &latency_stall_cycles_);
    map(CycleBucket::kImiss, &imiss_wait_cycles_);
    map(CycleBucket::kDmiss, &dmiss_wait_cycles_);
    map(CycleBucket::kBusQueue, &bus_queue_wait_cycles_);
    map(CycleBucket::kSbWait, &sb_wait_cycles_);
    map(CycleBucket::kFfifoFull, &ffifo_full_cycles_);
    map(CycleBucket::kAckWait, &ack_wait_cycles_);
    map(CycleBucket::kBfifoWait, &bfifo_wait_cycles_);
    map(CycleBucket::kDrain, &drain_cycles_);

    // The µop cache needs one mask bit per line word; lines beyond
    // 128 bytes (never used in practice) fall back to plain decoding.
    const u32 words = params_.icache.line_bytes / 4;
    if (words >= 1 && words <= 32) {
        uop_words_per_line_ = words;
        uops_.resize(static_cast<size_t>(icache_.numLineSlots()) * words);
        uop_masks_.assign(icache_.numLineSlots(), 0);
    }
}

void
Core::loadProgram(const Program &program)
{
    mem_->writeBlock(program.base(), program.image().data(),
                     program.size());
    pc_ = program.entry();
    npc_ = pc_ + 4;
    regs_ = RegWindowFile();
    regs_.write(kRegSp, params_.stack_top);
    regs_.write(kRegFp, params_.stack_top);
    icc_ = Icc{};
    y_ = 0;
    depth_ = 1;
    spilled_ = 0;
    state_ = State::kReady;
    stall_ = 0;
    fetch_retry_ = false;
    micro_queue_.clear();
    bus_serving_us_ = false;
    std::fill(uop_masks_.begin(), uop_masks_.end(), 0u);
    fetch_slot_ = 0;
    decoded_lo_ = ~Addr{0};
    decoded_hi_ = 0;
    bucket_ = CycleBucket::kCommit;
    episode_bucket_ = CycleBucket::kCommit;
    episode_start_ = 0;
    halted_ = false;
    exit_code_ = 0;
    trap_ = TrapInfo{};
    console_.clear();
}

unsigned
Core::windowSlot(unsigned window, unsigned arch_reg) const
{
    return physRegIndex(window, arch_reg);
}

u32
Core::operand2(const Instruction &inst) const
{
    return inst.has_imm ? static_cast<u32>(inst.simm)
                        : regs_.read(inst.rs2);
}

void
Core::raiseTrap(TrapKind kind, Addr pc, std::string detail)
{
    // Before taking a core-side trap the core must wait for the
    // co-processor to finish all pending instructions (§III-C); if a
    // monitor trap arrives during the drain it takes precedence, since
    // the monitored fault is the root cause.
    if (kind != TrapKind::kMonitor && iface_ && !iface_->empty()) {
        pending_trap_.kind = kind;
        pending_trap_.pc = pc;
        pending_trap_.detail = std::move(detail);
        state_ = State::kDrainTrap;
        return;
    }
    trap_.kind = kind;
    trap_.pc = pc;
    trap_.detail = std::move(detail);
    halted_ = true;
}

void
Core::takeMonitorTrap()
{
    if (trace_)
        trace_->instant("monitor_trap", "core", 1, now_);
    iface_->ackTrap();   // PACK
    raiseTrap(TrapKind::kMonitor, iface_->trapPc(),
              "monitor check failed");
}

void
Core::tick(Cycle now)
{
    now_ = now;
    if (halted_)
        return;

    // Exhaustive attribution: step() charges this cycle to exactly one
    // bucket (kCommit unless a stall path overrides it), so the bucket
    // counters always sum to cycles_.
    bucket_ = CycleBucket::kCommit;
    step();
    ++cycles_;
    ++*bucket_counters_[static_cast<unsigned>(bucket_)];
    if (profile_)
        profile_->add(attributionPc(), bucket_);
    if (trace_)
        traceEpisode();

#ifndef NDEBUG
    u64 bucket_sum = 0;
    for (const Counter *c : bucket_counters_)
        bucket_sum += c->value();
    assert(bucket_sum == cycles_.value() &&
           "cycle buckets must sum to total cycles");
    // The profiler keeps a running total, so the companion invariant —
    // per-PC attribution sums to core.cycles — is O(1) to check here.
    assert((!profile_ || profile_->total() == cycles_.value()) &&
           "per-PC profile must sum to total cycles");
#endif
}

Core::IdleStretch
Core::idleStretch() const
{
    IdleStretch stretch;
    if (halted_ || (iface_ && iface_->trapPending()))
        return stretch;
    switch (state_) {
      case State::kReady:
        // Fixed-latency stall with an idle bus: nothing anywhere can
        // change until the stall drains, and every drained cycle
        // charges kLatency.
        if (stall_ > 1 && bus_->idle()) {
            stretch.cycles = stall_;
            stretch.bucket = CycleBucket::kLatency;
        }
        break;
      case State::kWaitBus:
        // Our refill is the only bus transaction. All but its final
        // cycle charge the miss bucket; the final cycle must run
        // normally so the completion callback fires inside a real
        // tick (the bus ticks before the core each cycle).
        if (bus_serving_us_ && bus_->queueDepth() == 0 &&
            bus_->remainingCycles() > 1) {
            stretch.cycles = bus_->remainingCycles() - 1;
            stretch.bucket = wait_is_fetch_ ? CycleBucket::kImiss
                                            : CycleBucket::kDmiss;
        }
        break;
      default:
        break;
    }
    return stretch;
}

void
Core::advanceIdle(u64 k, CycleBucket bucket)
{
    assert(k > 0 && !halted_);
    // Reproduce exactly what k single ticks over the stretch would do,
    // including the stall-episode trace: the first skipped cycle is
    // where a bucket transition would have been observed.
    ++now_;
    bucket_ = bucket;
    if (profile_)
        profile_->add(attributionPc(), bucket, k);
    if (trace_)
        traceEpisode();
    now_ += k - 1;
    cycles_ += k;
    *bucket_counters_[static_cast<unsigned>(bucket)] += k;
    if (bucket == CycleBucket::kLatency) {
        assert(stall_ >= k);
        stall_ -= static_cast<u32>(k);
    }
}

void
Core::step()
{
    // Imprecise monitor exception, taken at the next commit boundary.
    // On a shared (time-multiplexed) interface the trap is attributed
    // to the offending packet's core; only that core takes it.
    if (iface_ && iface_->trapPending() &&
        iface_->trapCore() == core_id_) {
        takeMonitorTrap();
        return;
    }

    switch (state_) {
      case State::kReady:
        if (stall_ > 0) {
            --stall_;
            bucket_ = CycleBucket::kLatency;
            return;
        }
        startWork();
        break;
      case State::kWaitBus:
        chargeBusWait();
        break;
      case State::kWaitStoreBuffer:
        if (store_buffer_.push(cur_.store_addr)) {
            state_ = State::kCommitPending;
            tryCommit();
        } else {
            bucket_ = CycleBucket::kSbWait;
        }
        break;
      case State::kCommitPending:
        tryCommit();
        break;
      case State::kCommitStall:
        tryCommit();
        break;
      case State::kWaitAck:
        if (iface_->ackReady(core_id_)) {
            iface_->consumeAck(core_id_);
            finishInstruction();
        } else {
            bucket_ = CycleBucket::kAckWait;
        }
        break;
      case State::kWaitBfifo:
        if (auto value = iface_->popBfifo(core_id_)) {
            regs_.write(cur_.cpread_rd, *value);
            finishInstruction();
        } else {
            bucket_ = CycleBucket::kBfifoWait;
        }
        break;
      case State::kDrainExit:
        if (!iface_ || iface_->empty())
            halted_ = true;
        bucket_ = CycleBucket::kDrain;
        break;
      case State::kDrainTrap:
        if (!iface_ || iface_->empty()) {
            trap_ = pending_trap_;
            halted_ = true;
        }
        bucket_ = CycleBucket::kDrain;
        break;
    }
}

void
Core::chargeBusWait()
{
    // A refill cycle is a true miss-service cycle only once the bus has
    // actually started our transaction; before that we are queued
    // behind other traffic (store buffer drains, the meta-data cache).
    if (!bus_serving_us_)
        bucket_ = CycleBucket::kBusQueue;
    else if (wait_is_fetch_)
        bucket_ = CycleBucket::kImiss;
    else
        bucket_ = CycleBucket::kDmiss;
}

void
Core::traceEpisode()
{
    if (bucket_ == episode_bucket_)
        return;
    if (now_ > episode_start_) {
        trace_->complete(cycleBucketName(episode_bucket_).data(), "core",
                         1, episode_start_, now_);
    }
    episode_bucket_ = bucket_;
    episode_start_ = now_;
}

void
Core::flushTrace()
{
    if (!trace_ || cycles_.value() == 0)
        return;
    if (now_ + 1 > episode_start_) {
        trace_->complete(cycleBucketName(episode_bucket_).data(), "core",
                         1, episode_start_, now_ + 1);
    }
    episode_start_ = now_ + 1;
}

void
Core::startWork()
{
    if (!micro_queue_.empty()) {
        execMicroOp();
        return;
    }
    if (!fetchTimingOk())
        return;

    const Uop &uop = decodedFetch();
    if (!uop.inst.valid) {
        raiseTrap(TrapKind::kIllegalInstr, pc_, "undecodable instruction");
        return;
    }
    executeInstruction(uop);
}

bool
Core::fetchTimingOk()
{
    if (fetch_retry_) {
        fetch_retry_ = false;
        return true;
    }
    if (icache_.access(pc_)) {
        fetch_slot_ = icache_.lastSlot();
        return true;
    }
    wait_is_fetch_ = true;
    bus_serving_us_ = false;
    state_ = State::kWaitBus;
    BusRequest req;
    req.op = BusOp::kReadLine;
    req.addr = pc_ & ~(params_.icache.line_bytes - 1);
    req.port = bus_port_;
    req.on_start = [this]() { bus_serving_us_ = true; };
    req.on_complete = [this]() {
        const Cache::FillResult fill =
            icache_.fill(pc_ & ~(params_.icache.line_bytes - 1));
        if (uop_words_per_line_) {
            // The victim's decoded words die with it.
            uop_masks_[fill.slot] = 0;
        }
        fetch_slot_ = fill.slot;
        fetch_retry_ = true;
        state_ = State::kReady;
    };
    bus_->request(std::move(req));
    chargeBusWait();
    return false;
}

namespace {

u32
decodeBitsOf(const Instruction &inst)
{
    return (inst.writesRd() ? 1u : 0u) | (isLoad(inst.op) ? 2u : 0u) |
           (isStore(inst.op) ? 4u : 0u) | (inst.has_imm ? 8u : 0u) |
           (static_cast<u32>(inst.cpop_fn) << 8);
}

}  // namespace

const Core::Uop &
Core::decodedFetch()
{
    if (!uop_words_per_line_) {
        fallback_uop_.inst = decode(mem_->read32(pc_));
        fallback_uop_.decode_bits = decodeBitsOf(fallback_uop_.inst);
        fallback_uop_.exec = burstHandlerFor(fallback_uop_.inst);
        return fallback_uop_;
    }
    const u32 word = (pc_ >> 2) & (uop_words_per_line_ - 1);
    Uop &uop =
        uops_[static_cast<size_t>(fetch_slot_) * uop_words_per_line_ +
              word];
    const u32 bit = 1u << word;
    if (!(uop_masks_[fetch_slot_] & bit)) {
        uop.inst = decode(mem_->read32(pc_));
        uop.decode_bits = decodeBitsOf(uop.inst);
        uop.exec = burstHandlerFor(uop.inst);
        uop_masks_[fetch_slot_] |= bit;
        const Addr line = pc_ & ~(params_.icache.line_bytes - 1);
        decoded_lo_ = std::min(decoded_lo_, line);
        decoded_hi_ =
            std::max(decoded_hi_, line + params_.icache.line_bytes);
    }
    return uop;
}

void
Core::notifyPeersOfStore(Addr addr)
{
    // Write-through MESI-lite: a remote store to the coherent window
    // drops the peer's cached copy (timing) and any stale decoded µops
    // (functional, self-modifying code across cores). The functional
    // data is already coherent — the window aliases one backing Memory.
    if (addr - shared_base_ >= shared_size_)
        return;
    for (Core *peer : coherence_peers_) {
        peer->dcache_.invalidateLine(addr);
        peer->invalidateUopsAt(addr);
    }
}

void
Core::invalidateUopsAt(Addr addr)
{
    // Self-modifying-code safety: a store into text that is currently
    // decoded must force a re-decode. The bounds filter keeps ordinary
    // data stores to two compares.
    if (addr < decoded_lo_ || addr >= decoded_hi_ || !uop_words_per_line_)
        return;
    u32 slot;
    if (icache_.probeSlot(addr, &slot))
        uop_masks_[slot] = 0;
}

void
Core::execMicroOp()
{
    const MicroOp op = micro_queue_.front();
    micro_queue_.pop_front();
    ++micro_ops_;

    cur_ = ExecContext{};
    cur_.is_micro = true;
    cur_.skip_offer = !op.forward;
    cur_.pkt.pc = pc_;
    cur_.pkt.core = core_id_;

    switch (op.kind) {
      case MicroOp::Kind::kAlu:
        // One-cycle filler instruction; nothing else to do.
        return;
      case MicroOp::Kind::kLoad: {
        const u32 value = mem_->read32(op.addr);
        if (op.forward)
            regs_.writePhys(op.phys_reg, value);
        cur_.pkt.opcode = kTypeLoadWord;
        cur_.pkt.addr = op.addr;
        cur_.pkt.res = value;
        cur_.pkt.dest = static_cast<u16>(op.phys_reg);
        cur_.pkt.di.op = Op::kLd;
        cur_.pkt.di.type = kTypeLoadWord;
        cur_.pkt.di.valid = true;
        cur_.extra_stall = params_.load_extra;
        if (dcache_.access(op.addr)) {
            state_ = State::kCommitPending;
            tryCommit();
        } else {
            wait_is_fetch_ = false;
            bus_serving_us_ = false;
            state_ = State::kWaitBus;
            const Addr line = op.addr & ~(params_.dcache.line_bytes - 1);
            BusRequest req;
            req.op = BusOp::kReadLine;
            req.addr = line;
            req.port = bus_port_;
            req.on_start = [this]() { bus_serving_us_ = true; };
            req.on_complete = [this, line]() {
                dcache_.fill(line);
                state_ = State::kCommitPending;
            };
            bus_->request(std::move(req));
            chargeBusWait();
        }
        return;
      }
      case MicroOp::Kind::kStore: {
        if (op.forward) {
            mem_->write32(op.addr, op.store_value);
            invalidateUopsAt(op.addr);
            if (!coherence_peers_.empty())
                notifyPeersOfStore(op.addr);
        }
        cur_.pkt.opcode = kTypeStoreWord;
        cur_.pkt.addr = op.addr;
        cur_.pkt.res = op.store_value;
        cur_.pkt.dest = static_cast<u16>(op.phys_reg);
        cur_.pkt.di.op = Op::kSt;
        cur_.pkt.di.type = kTypeStoreWord;
        cur_.pkt.di.valid = true;
        cur_.is_store = true;
        cur_.store_addr = op.addr;
        dcache_.access(op.addr);   // write-through, no allocate
        scheduleStoreThenCommit();
        return;
      }
    }
}

void
Core::scheduleStoreThenCommit()
{
    if (store_buffer_.push(cur_.store_addr)) {
        state_ = State::kCommitPending;
        tryCommit();
    } else {
        state_ = State::kWaitStoreBuffer;
        bucket_ = CycleBucket::kSbWait;
    }
}

void
Core::enqueueWindowSpill()
{
    ++window_spills_;
    const unsigned w_spill = (regs_.cwp() + depth_ - 1) % kNumWindows;
    const Addr sp = regs_.readPhys(windowSlot(w_spill, kRegSp));
    for (unsigned k = 0; k < 16; ++k) {
        const unsigned arch = kRegL0 + k;   // l0-l7 then i0-i7
        MicroOp op;
        op.kind = MicroOp::Kind::kStore;
        op.addr = sp + 4 * k;
        op.phys_reg = static_cast<u16>(windowSlot(w_spill, arch));
        op.store_value = regs_.readPhys(op.phys_reg);
        op.forward = true;
        micro_queue_.push_back(op);
    }
    --depth_;
    ++spilled_;
    stall_ += params_.trap_overhead;
}

void
Core::enqueueWindowFill()
{
    ++window_fills_;
    const unsigned w_fill = (regs_.cwp() + 1) % kNumWindows;
    const Addr sp = regs_.readPhys(windowSlot(w_fill, kRegSp));
    for (unsigned k = 0; k < 16; ++k) {
        const unsigned arch = kRegL0 + k;
        MicroOp op;
        op.kind = MicroOp::Kind::kLoad;
        op.addr = sp + 4 * k;
        op.phys_reg = static_cast<u16>(windowSlot(w_fill, arch));
        op.forward = true;
        micro_queue_.push_back(op);
    }
    ++depth_;
    --spilled_;
    stall_ += params_.trap_overhead;
}

void
Core::executeInstruction(const Uop &uop)
{
    const Instruction &inst = uop.inst;
    // Window overflow/underflow traps fire *before* the save/restore
    // executes, exactly like the SPARC trap handlers: the spill/fill
    // micro-ops run first and the instruction then re-executes.
    if (inst.op == Op::kSave && depth_ == kNumWindows - 1) {
        enqueueWindowSpill();
        return;
    }
    if (inst.op == Op::kRestore && depth_ == 1) {
        if (spilled_ == 0) {
            raiseTrap(TrapKind::kWindowError, pc_,
                      "restore without caller frame");
            return;
        }
        enqueueWindowFill();
        return;
    }

    // Targeted reset of the commit context. Fields assigned
    // unconditionally below (pc, inst, opcode, di, srcv1, srcv2,
    // decode, extra, cond) are skipped; everything a monitor or the
    // tracer could read from a stale packet is cleared. cpread_rd and
    // store_addr are only read behind their respective flags.
    cur_.extra_stall = 0;
    cur_.skip_offer = false;
    cur_.is_micro = false;
    cur_.is_cpread = false;
    cur_.is_exit = false;
    cur_.is_store = false;
    CommitPacket &pkt = cur_.pkt;
    pkt.addr = 0;
    pkt.res = 0;
    pkt.branch = false;
    pkt.src1 = 0;
    pkt.src2 = 0;
    pkt.dest = 0;
    pkt.wants_ack = false;
    pkt.pc = pc_;
    pkt.core = core_id_;
    pkt.inst = inst.raw;
    pkt.opcode = static_cast<u8>(inst.type);
    pkt.di = inst;

    const u32 a = regs_.read(inst.rs1);
    const u32 b = operand2(inst);
    pkt.srcv1 = a;
    pkt.srcv2 = b;
    if (inst.readsRs1())
        pkt.src1 = static_cast<u16>(regs_.physIndex(inst.rs1));
    if (inst.readsRs2())
        pkt.src2 = static_cast<u16>(regs_.physIndex(inst.rs2));
    pkt.decode = uop.decode_bits;
    pkt.extra = regs_.cwp() | (depth_ << 8);

    bool needs_dcache_load = false;
    Addr ea = 0;

    switch (inst.op) {
      case Op::kSethi: {
        const u32 value = inst.imm22 << 10;
        regs_.write(inst.rd, value);
        pkt.res = value;
        pkt.dest = static_cast<u16>(regs_.physIndex(inst.rd));
        advancePc();
        break;
      }

      case Op::kAdd: case Op::kAddcc:
      case Op::kSub: case Op::kSubcc:
      case Op::kAnd: case Op::kAndcc:
      case Op::kOr: case Op::kOrcc:
      case Op::kXor: case Op::kXorcc:
      case Op::kAndn: case Op::kOrn: case Op::kXnor:
      case Op::kSll: case Op::kSrl: case Op::kSra:
      case Op::kUmul: case Op::kSmul:
      case Op::kUmulcc: case Op::kSmulcc:
      case Op::kUdiv: case Op::kSdiv: {
        const AluResult result = alu_.execute(inst.op, a, b, y_);
        if (result.div_by_zero) {
            raiseTrap(TrapKind::kDivByZero, pc_, "division by zero");
            return;
        }
        regs_.write(inst.rd, result.value);
        if (result.writes_y)
            y_ = result.y_out;
        if (writesIcc(inst.op))
            icc_ = result.icc;
        pkt.res = result.value;
        pkt.dest = static_cast<u16>(regs_.physIndex(inst.rd));
        if (inst.type == kTypeMul)
            cur_.extra_stall += params_.mul_extra;
        else if (inst.type == kTypeDiv)
            cur_.extra_stall += params_.div_extra;
        advancePc();
        break;
      }

      case Op::kSave: {
        regs_.decrementCwp();
        ++depth_;
        regs_.write(inst.rd, a + b);
        pkt.res = a + b;
        pkt.dest = static_cast<u16>(regs_.physIndex(inst.rd));
        advancePc();
        break;
      }
      case Op::kRestore: {
        regs_.incrementCwp();
        --depth_;
        regs_.write(inst.rd, a + b);
        pkt.res = a + b;
        pkt.dest = static_cast<u16>(regs_.physIndex(inst.rd));
        advancePc();
        break;
      }

      case Op::kLd: case Op::kLdub: case Op::kLduh: {
        ea = a + b;
        pkt.addr = ea;
        const unsigned align =
            inst.op == Op::kLd ? 3 : (inst.op == Op::kLduh ? 1 : 0);
        if (ea & align) {
            raiseTrap(TrapKind::kMemAlign, pc_, "misaligned load");
            return;
        }
        u32 value = 0;
        switch (inst.op) {
          case Op::kLd: value = mem_->read32(ea); break;
          case Op::kLdub: value = mem_->read8(ea); break;
          default: value = mem_->read16(ea); break;
        }
        regs_.write(inst.rd, value);
        pkt.res = value;
        pkt.dest = static_cast<u16>(regs_.physIndex(inst.rd));
        cur_.extra_stall += params_.load_extra;
        needs_dcache_load = true;
        advancePc();
        break;
      }

      case Op::kSt: case Op::kStb: case Op::kSth: {
        ea = a + b;
        pkt.addr = ea;
        const unsigned align =
            inst.op == Op::kSt ? 3 : (inst.op == Op::kSth ? 1 : 0);
        if (ea & align) {
            raiseTrap(TrapKind::kMemAlign, pc_, "misaligned store");
            return;
        }
        const u32 value = regs_.read(inst.rd);
        switch (inst.op) {
          case Op::kSt: mem_->write32(ea, value); break;
          case Op::kStb: mem_->write8(ea, static_cast<u8>(value)); break;
          default: mem_->write16(ea, static_cast<u16>(value)); break;
        }
        invalidateUopsAt(ea);
        if (!coherence_peers_.empty())
            notifyPeersOfStore(ea);
        pkt.res = value;
        // DEST carries the store-data register so monitors can read
        // its tag.
        pkt.dest = static_cast<u16>(regs_.physIndex(inst.rd));
        cur_.is_store = true;
        cur_.store_addr = ea;
        dcache_.access(ea);   // write-through, no allocate
        advancePc();
        break;
      }

      case Op::kBicc: {
        const Addr target = pc_ + 4u * static_cast<u32>(inst.disp);
        const bool taken = Alu::evalCond(inst.cond, icc_);
        pkt.branch = taken;
        pkt.res = target;
        if (inst.cond == Cond::kA && inst.annul) {
            pc_ = target;
            npc_ = target + 4;
            cur_.extra_stall +=
                params_.annul_extra + params_.branch_taken_extra;
        } else if (taken) {
            pc_ = npc_;
            npc_ = target;
            cur_.extra_stall += params_.branch_taken_extra;
        } else if (inst.annul) {
            pc_ = npc_ + 4;
            npc_ = npc_ + 8;
            cur_.extra_stall += params_.annul_extra;
        } else {
            pc_ = npc_;
            npc_ = npc_ + 4;
        }
        break;
      }

      case Op::kCall: {
        const Addr target = pc_ + 4u * static_cast<u32>(inst.disp);
        regs_.write(kRegO7, pc_);
        pkt.res = target;
        pkt.branch = true;
        pkt.dest = static_cast<u16>(regs_.physIndex(kRegO7));
        cur_.extra_stall += params_.call_extra;
        pc_ = npc_;
        npc_ = target;
        break;
      }

      case Op::kJmpl: {
        const Addr target = a + b;
        if (target & 3) {
            raiseTrap(TrapKind::kMemAlign, pc_, "misaligned jump target");
            return;
        }
        regs_.write(inst.rd, pc_);
        pkt.res = target;
        pkt.addr = target;
        pkt.branch = true;
        pkt.dest = static_cast<u16>(regs_.physIndex(inst.rd));
        cur_.extra_stall += params_.jmpl_extra;
        pc_ = npc_;
        npc_ = target;
        break;
      }

      case Op::kRdy: {
        regs_.write(inst.rd, y_);
        pkt.res = y_;
        pkt.dest = static_cast<u16>(regs_.physIndex(inst.rd));
        advancePc();
        break;
      }
      case Op::kWry: {
        y_ = a;
        pkt.res = y_;
        advancePc();
        break;
      }

      case Op::kTicc: {
        if (Alu::evalCond(inst.cond, icc_)) {
            const u32 trap_no = (a + b) & 0x7f;
            switch (static_cast<SysTrap>(trap_no)) {
              case SysTrap::kExit:
                cur_.is_exit = true;
                exit_code_ = regs_.read(kRegO0);
                break;
              case SysTrap::kPutChar:
                console_ += static_cast<char>(regs_.read(kRegO0) & 0xff);
                break;
              case SysTrap::kPutInt:
                console_ +=
                    std::to_string(static_cast<s32>(regs_.read(kRegO0)));
                break;
              case SysTrap::kCoreId:
                regs_.write(kRegO0, core_id_);
                break;
              default:
                raiseTrap(TrapKind::kBadSyscall, pc_,
                          "unknown software trap " +
                              std::to_string(trap_no));
                return;
            }
        }
        advancePc();
        break;
      }

      case Op::kCpop1: case Op::kCpop2: {
        // The core computes rs1 + operand2 as a convenience address and
        // exposes rs1's value in RES; all semantics live in the fabric.
        ea = a + b;
        pkt.addr = ea;
        pkt.res = a;
        pkt.src1 = static_cast<u16>(regs_.physIndex(inst.rs1));
        if (inst.cpop_fn == CpopFn::kReadTag) {
            cur_.is_cpread = true;
            cur_.cpread_rd = inst.rd;
            pkt.dest = static_cast<u16>(regs_.physIndex(inst.rd));
            if (!iface_)
                regs_.write(inst.rd, 0);
        } else {
            // SetRegTag/SetMemTag carry the tag value in the rd field.
            pkt.dest = inst.rd;
        }
        advancePc();
        break;
      }

      case Op::kInvalid:
      case Op::kNumOps:
        raiseTrap(TrapKind::kIllegalInstr, pc_, "illegal opcode");
        return;
    }

    pkt.cond = icc_.packed();

    if (cur_.is_store) {
        scheduleStoreThenCommit();
        return;
    }
    if (needs_dcache_load && !dcache_.access(ea)) {
        wait_is_fetch_ = false;
        bus_serving_us_ = false;
        state_ = State::kWaitBus;
        const Addr line = ea & ~(params_.dcache.line_bytes - 1);
        BusRequest req;
        req.op = BusOp::kReadLine;
        req.addr = line;
        req.port = bus_port_;
        req.on_start = [this]() { bus_serving_us_ = true; };
        req.on_complete = [this, line]() {
            dcache_.fill(line);
            state_ = State::kCommitPending;
        };
        bus_->request(std::move(req));
        chargeBusWait();
        return;
    }
    state_ = State::kCommitPending;
    tryCommit();
}

void
Core::tryCommit()
{
    if (iface_ && !cur_.skip_offer) {
        switch (iface_->offer(cur_.pkt, now_)) {
          case CommitAction::kStall:
            state_ = State::kCommitStall;
            bucket_ = CycleBucket::kFfifoFull;
            return;
          case CommitAction::kWaitAck:
            state_ = State::kWaitAck;
            return;
          case CommitAction::kProceed:
            break;
        }
    }
    if (cur_.is_cpread && iface_) {
        state_ = State::kWaitBfifo;
        return;
    }
    finishInstruction();
}

void
Core::finishInstruction()
{
    if (!cur_.is_micro) {
        ++instructions_;
        ++committed_by_type_[cur_.pkt.opcode];
        if (fault_injector_)
            fault_injector_->onCommit(instructions_.value(), now_);
        if (tracer_)
            tracer_(now_, cur_.pkt.pc, cur_.pkt.di);
        if (trace_)
            trace_->commit(now_, cur_.pkt.pc, cur_.pkt.inst);
        if (swmon_) {
            sw_expansion_.clear();
            swmon_->expand(cur_.pkt.di, cur_.pkt.addr, &sw_expansion_);
            for (const SwMicroOp &sw : sw_expansion_) {
                MicroOp op;
                switch (sw.kind) {
                  case SwMicroOp::Kind::kAlu:
                    op.kind = MicroOp::Kind::kAlu;
                    break;
                  case SwMicroOp::Kind::kLoad:
                    op.kind = MicroOp::Kind::kLoad;
                    break;
                  case SwMicroOp::Kind::kStore:
                    op.kind = MicroOp::Kind::kStore;
                    break;
                }
                op.addr = sw.addr;
                op.forward = false;
                micro_queue_.push_back(op);
            }
        }
    }
    stall_ += cur_.extra_stall;
    state_ = cur_.is_exit ? State::kDrainExit : State::kReady;
}

void
Core::advancePc()
{
    pc_ = npc_;
    npc_ += 4;
}

}  // namespace flexcore
