/**
 * @file
 * The main core's integer ALU, including SPARC condition-code
 * semantics, the Y register for multiply/divide, and a transient-fault
 * injection hook used to exercise the soft-error checker (SEC).
 */

#ifndef FLEXCORE_CORE_ALU_H_
#define FLEXCORE_CORE_ALU_H_

#include "common/rng.h"
#include "common/types.h"
#include "isa/opcodes.h"

namespace flexcore {

/** SPARC integer condition codes. */
struct Icc
{
    bool n = false, z = false, v = false, c = false;

    u8 packed() const
    {
        return static_cast<u8>((n << 3) | (z << 2) | (v << 1) |
                               (c << 0));
    }
};

/** Result of one ALU operation. */
struct AluResult
{
    u32 value = 0;
    Icc icc;           //!< valid only when the op writes icc
    u32 y_out = 0;     //!< new Y register value (mul/div ops)
    bool writes_y = false;
    bool div_by_zero = false;
};

class Alu
{
  public:
    /**
     * Execute @p op on operands @p a (rs1) and @p b (rs2/simm13).
     * @p y_in supplies the Y register for UMUL/SMUL/UDIV/SDIV.
     */
    AluResult execute(Op op, u32 a, u32 b, u32 y_in);

    /**
     * Enable transient-fault injection: each result bit-flips with
     * probability @p per_op_probability per operation.
     */
    void enableFaultInjection(double per_op_probability, u64 seed);

    /** Number of faults injected so far. */
    u64 faultsInjected() const { return faults_injected_; }

    /** Condition evaluation for Bicc/Ticc. */
    static bool evalCond(Cond cond, const Icc &icc);

  private:
    double fault_probability_ = 0.0;
    Rng fault_rng_;
    u64 faults_injected_ = 0;
};

}  // namespace flexcore

#endif  // FLEXCORE_CORE_ALU_H_
