/**
 * @file
 * SPARC V8 windowed integer register file: 8 globals plus 16 registers
 * per window, with the standard in/out overlap between adjacent
 * windows. %g0 reads as zero and ignores writes.
 */

#ifndef FLEXCORE_CORE_REGFILE_H_
#define FLEXCORE_CORE_REGFILE_H_

#include <array>

#include "common/types.h"
#include "isa/registers.h"

namespace flexcore {

class RegWindowFile
{
  public:
    RegWindowFile() { phys_.fill(0); }

    unsigned cwp() const { return cwp_; }

    /** SAVE decrements CWP (mod NWINDOWS). */
    void decrementCwp() { cwp_ = (cwp_ + kNumWindows - 1) % kNumWindows; }
    /** RESTORE increments CWP. */
    void incrementCwp() { cwp_ = (cwp_ + 1) % kNumWindows; }

    /** Physical index of an architectural register in window @p cwp. */
    static unsigned
    physIndex(unsigned cwp, unsigned arch_reg)
    {
        return physRegIndex(cwp, arch_reg);
    }

    /** Physical index in the current window. */
    unsigned physIndex(unsigned arch_reg) const
    {
        return physRegIndex(cwp_, arch_reg);
    }

    u32
    read(unsigned arch_reg) const
    {
        return arch_reg == 0 ? 0 : phys_[physIndex(arch_reg)];
    }

    void
    write(unsigned arch_reg, u32 value)
    {
        if (arch_reg != 0)
            phys_[physIndex(arch_reg)] = value;
    }

    u32 readPhys(unsigned phys) const
    {
        return phys == 0 ? 0 : phys_[phys];
    }

    void writePhys(unsigned phys, u32 value)
    {
        if (phys != 0)
            phys_[phys] = value;
    }

    /**
     * Fault-injection hook: flip one bit of a physical register in
     * place (%g0 is hard-wired and ignores flips). Only the fault
     * injector calls this; it is never on a simulation path.
     */
    void
    flipBitPhys(unsigned phys, unsigned bit)
    {
        if (phys != 0)
            phys_[phys % kNumPhysRegs] ^= 1u << (bit & 31);
    }

  private:
    std::array<u32, kNumPhysRegs> phys_;
    unsigned cwp_ = 0;
};

}  // namespace flexcore

#endif  // FLEXCORE_CORE_REGFILE_H_
