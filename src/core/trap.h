/**
 * @file
 * Trap/termination reasons reported by the core.
 */

#ifndef FLEXCORE_CORE_TRAP_H_
#define FLEXCORE_CORE_TRAP_H_

#include <string>
#include <string_view>

#include "common/types.h"

namespace flexcore {

enum class TrapKind : u8 {
    kNone = 0,
    kMonitor,          //!< TRAP asserted by the monitoring extension
    kDivByZero,
    kMemAlign,         //!< misaligned load/store/jump target
    kIllegalInstr,
    kWindowError,      //!< restore with no caller frame
    kBadSyscall,
};

struct TrapInfo
{
    TrapKind kind = TrapKind::kNone;
    Addr pc = 0;              //!< offending (or reporting) PC
    std::string detail;       //!< monitor-provided reason text

    bool pending() const { return kind != TrapKind::kNone; }
};

std::string_view trapKindName(TrapKind kind);

}  // namespace flexcore

#endif  // FLEXCORE_CORE_TRAP_H_
