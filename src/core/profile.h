/**
 * @file
 * Per-PC cycle profiling: attributes every one of the ten
 * `Core::CycleBucket`s to the instruction (I-line PC) that was
 * committing or stalling when the cycle was charged, so reports can
 * answer "which instructions cause ffifo_full back-pressure, fabric
 * freezes, and bus waits" at instruction granularity.
 *
 * Attribution rule (Core::attributionPc()): a cycle spent waiting on a
 * *fetch* (I-miss or its bus queueing) charges the PC being fetched;
 * every other cycle charges the in-flight commit packet's PC — the
 * instruction currently executing, stalling, or draining. The profiler
 * maintains a running total so Core::tick() can debug-assert, in O(1)
 * every cycle, that the profile sums to `core.cycles` exactly — the
 * same invariant contract as the bucket counters themselves
 * (docs/observability.md). End-to-end, per-bucket sums are verified
 * against the ten counters in tests/test_profile.cc.
 *
 * Storage is a flat `(text words + 1) x 10` table indexed by
 * `(pc - base) >> 2`, with the final row collecting any out-of-text PC
 * (e.g. a wild branch target), so add() is two adds and no hashing —
 * cheap enough that profiling composes with the interpreter hot loop.
 */

#ifndef FLEXCORE_CORE_PROFILE_H_
#define FLEXCORE_CORE_PROFILE_H_

#include <string>
#include <vector>

#include "core/core.h"

namespace flexcore {

class PcProfile
{
  public:
    static constexpr unsigned kNumBuckets =
        static_cast<unsigned>(Core::CycleBucket::kNumBuckets);

    /** Reset and size the table for a loaded program's text segment.
     * System::load() calls this; @p size_bytes is rounded up to words. */
    void onProgramLoad(Addr base, u32 size_bytes);

    /** Charge @p n cycles of @p bucket to @p pc. */
    void
    add(Addr pc, Core::CycleBucket bucket, u64 n = 1)
    {
        cells_[index(pc) * kNumBuckets +
               static_cast<unsigned>(bucket)] += n;
        total_ += n;
    }

    /** Total charged cycles; equals core.cycles when attached from
     * cycle zero (debug-asserted every tick). */
    u64 total() const { return total_; }

    /** Sum of one bucket's column across all PCs. */
    u64 bucketTotal(Core::CycleBucket bucket) const;

    /** All cycles charged to @p pc, across buckets. */
    u64 pcTotal(Addr pc) const;

    /** Cycles of @p bucket charged to @p pc. */
    u64
    cyclesAt(Addr pc, Core::CycleBucket bucket) const
    {
        return cells_[index(pc) * kNumBuckets +
                      static_cast<unsigned>(bucket)];
    }

    /** Cycles charged to PCs outside [base, base + words*4). */
    u64 overflowTotal() const;

    Addr base() const { return base_; }
    u32 words() const { return words_; }

    /**
     * Canonical single-line JSON hotspot report: total cycles,
     * per-bucket totals (equal to the stat counters), the top-N PCs
     * per bucket (cycles descending, PC ascending on ties), and
     * per-PC rows (PC ascending) with their nonzero buckets. Keys
     * sorted, byte-stable — the `--profile-json` document.
     */
    std::string json(u32 top_n = 10) const;

  private:
    size_t
    index(Addr pc) const
    {
        const u32 word = (pc - base_) >> 2;
        return word < words_ ? word : words_;   // last row = overflow
    }

    Addr base_ = 0;
    u32 words_ = 0;
    std::vector<u64> cells_;   //!< (words_ + 1) x kNumBuckets
    u64 total_ = 0;
};

}  // namespace flexcore

#endif  // FLEXCORE_CORE_PROFILE_H_
