/**
 * @file
 * Threaded-code dispatch handlers and engines (see threaded.h).
 *
 * Correctness discipline: every handler is a line-for-line
 * transcription of the matching Core::executeInstruction() case,
 * restricted to architectural semantics (registers, condition codes,
 * Y, PC/nPC, window depth, console, functional memory) plus the
 * CommitPacket bytes. Timing state — caches, bus, store buffer,
 * interface — is owned by the engines. Debug builds prove the
 * transcription by running the interpreter and the handler on the same
 * pre-state for every dispatched instruction and asserting identical
 * packets and post-state (ThreadedEngine::verifyUop).
 */

#include "core/threaded.h"

#include <cassert>
#include <string>

#include "faults/injector.h"
#include "flexcore/fabric.h"

namespace flexcore {

ThreadedEngine::ThreadedEngine(Core *core, Bus *bus, FlexInterface *iface,
                               Fabric *fabric, Monitor *monitor,
                               FaultInjector *injector)
    : c_(core),
      bus_(bus),
      iface_(iface),
      fabric_(fabric),
      monitor_(monitor),
      injector_(injector)
{
}

Core::BurstFn
Core::burstHandlerFor(const Instruction &inst)
{
    return ThreadedEngine::handlerFor(inst);
}

Core::BurstFn
ThreadedEngine::handlerFor(const Instruction &inst)
{
    if (!inst.valid)
        return nullptr;
    switch (inst.op) {
      case Op::kSethi: return &hSethi;
      case Op::kAdd: case Op::kAddcc:
      case Op::kSub: case Op::kSubcc:
      case Op::kAnd: case Op::kAndcc:
      case Op::kOr: case Op::kOrcc:
      case Op::kXor: case Op::kXorcc:
      case Op::kAndn: case Op::kOrn: case Op::kXnor:
      case Op::kSll: case Op::kSrl: case Op::kSra:
      case Op::kUmul: case Op::kSmul:
      case Op::kUmulcc: case Op::kSmulcc:
      case Op::kUdiv: case Op::kSdiv:
        return &hAlu;
      case Op::kSave: return &hSave;
      case Op::kRestore: return &hRestore;
      case Op::kLd: case Op::kLdub: case Op::kLduh: return &hLoad;
      case Op::kSt: case Op::kStb: case Op::kSth: return &hStore;
      case Op::kBicc: return &hBicc;
      case Op::kCall: return &hCall;
      case Op::kJmpl: return &hJmpl;
      case Op::kRdy: return &hRdy;
      case Op::kWry: return &hWry;
      case Op::kTicc: return &hTicc;
      case Op::kCpop1: case Op::kCpop2: return &hCpop;
      case Op::kInvalid:
      case Op::kNumOps:
        return nullptr;
    }
    return nullptr;
}

void
ThreadedEngine::begin(Core &c, const Core::Uop &uop, CommitPacket &pkt,
                      u32 *a, u32 *b)
{
    const Instruction &inst = uop.inst;
    pkt.addr = 0;
    pkt.res = 0;
    pkt.branch = false;
    pkt.src1 = 0;
    pkt.src2 = 0;
    pkt.dest = 0;
    pkt.wants_ack = false;
    pkt.pc = c.pc_;
    pkt.inst = inst.raw;
    pkt.opcode = static_cast<u8>(inst.type);
    pkt.di = inst;

    *a = c.regs_.read(inst.rs1);
    *b = c.operand2(inst);
    pkt.srcv1 = *a;
    pkt.srcv2 = *b;
    if (inst.readsRs1())
        pkt.src1 = static_cast<u16>(c.regs_.physIndex(inst.rs1));
    if (inst.readsRs2())
        pkt.src2 = static_cast<u16>(c.regs_.physIndex(inst.rs2));
    pkt.decode = uop.decode_bits;
    pkt.extra = c.regs_.cwp() | (c.depth_ << 8);
}

u32
ThreadedEngine::hSethi(Core &c, const Core::Uop &uop, CommitPacket &pkt)
{
    u32 a, b;
    begin(c, uop, pkt, &a, &b);
    const u32 value = uop.inst.imm22 << 10;
    c.regs_.write(uop.inst.rd, value);
    pkt.res = value;
    pkt.dest = static_cast<u16>(c.regs_.physIndex(uop.inst.rd));
    c.advancePc();
    pkt.cond = c.icc_.packed();
    return 0;
}

u32
ThreadedEngine::hAlu(Core &c, const Core::Uop &uop, CommitPacket &pkt)
{
    const Instruction &inst = uop.inst;
    u32 a, b;
    begin(c, uop, pkt, &a, &b);
    const AluResult result = c.alu_.execute(inst.op, a, b, c.y_);
    if (result.div_by_zero) {
        c.raiseTrap(TrapKind::kDivByZero, c.pc_, "division by zero");
        return kHTrap;
    }
    c.regs_.write(inst.rd, result.value);
    if (result.writes_y)
        c.y_ = result.y_out;
    if (writesIcc(inst.op))
        c.icc_ = result.icc;
    pkt.res = result.value;
    pkt.dest = static_cast<u16>(c.regs_.physIndex(inst.rd));
    u32 extra = 0;
    if (inst.type == kTypeMul)
        extra = c.params_.mul_extra;
    else if (inst.type == kTypeDiv)
        extra = c.params_.div_extra;
    c.advancePc();
    pkt.cond = c.icc_.packed();
    return extra;
}

u32
ThreadedEngine::hSave(Core &c, const Core::Uop &uop, CommitPacket &pkt)
{
    if (c.depth_ == kNumWindows - 1) {
        c.enqueueWindowSpill();
        return kHWindow;
    }
    u32 a, b;
    begin(c, uop, pkt, &a, &b);
    c.regs_.decrementCwp();
    ++c.depth_;
    c.regs_.write(uop.inst.rd, a + b);
    pkt.res = a + b;
    pkt.dest = static_cast<u16>(c.regs_.physIndex(uop.inst.rd));
    c.advancePc();
    pkt.cond = c.icc_.packed();
    return 0;
}

u32
ThreadedEngine::hRestore(Core &c, const Core::Uop &uop, CommitPacket &pkt)
{
    if (c.depth_ == 1) {
        if (c.spilled_ == 0) {
            c.raiseTrap(TrapKind::kWindowError, c.pc_,
                        "restore without caller frame");
            return kHTrap;
        }
        c.enqueueWindowFill();
        return kHWindow;
    }
    u32 a, b;
    begin(c, uop, pkt, &a, &b);
    c.regs_.incrementCwp();
    --c.depth_;
    c.regs_.write(uop.inst.rd, a + b);
    pkt.res = a + b;
    pkt.dest = static_cast<u16>(c.regs_.physIndex(uop.inst.rd));
    c.advancePc();
    pkt.cond = c.icc_.packed();
    return 0;
}

u32
ThreadedEngine::hLoad(Core &c, const Core::Uop &uop, CommitPacket &pkt)
{
    const Instruction &inst = uop.inst;
    u32 a, b;
    begin(c, uop, pkt, &a, &b);
    const Addr ea = a + b;
    pkt.addr = ea;
    const unsigned align =
        inst.op == Op::kLd ? 3 : (inst.op == Op::kLduh ? 1 : 0);
    if (ea & align) {
        c.raiseTrap(TrapKind::kMemAlign, c.pc_, "misaligned load");
        return kHTrap;
    }
    u32 value = 0;
    switch (inst.op) {
      case Op::kLd: value = c.mem_->read32(ea); break;
      case Op::kLdub: value = c.mem_->read8(ea); break;
      default: value = c.mem_->read16(ea); break;
    }
    c.regs_.write(inst.rd, value);
    pkt.res = value;
    pkt.dest = static_cast<u16>(c.regs_.physIndex(inst.rd));
    c.advancePc();
    pkt.cond = c.icc_.packed();
    return c.params_.load_extra | kHLoad;
}

u32
ThreadedEngine::hStore(Core &c, const Core::Uop &uop, CommitPacket &pkt)
{
    const Instruction &inst = uop.inst;
    u32 a, b;
    begin(c, uop, pkt, &a, &b);
    const Addr ea = a + b;
    pkt.addr = ea;
    const unsigned align =
        inst.op == Op::kSt ? 3 : (inst.op == Op::kSth ? 1 : 0);
    if (ea & align) {
        c.raiseTrap(TrapKind::kMemAlign, c.pc_, "misaligned store");
        return kHTrap;
    }
    const u32 value = c.regs_.read(inst.rd);
    switch (inst.op) {
      case Op::kSt: c.mem_->write32(ea, value); break;
      case Op::kStb: c.mem_->write8(ea, static_cast<u8>(value)); break;
      default: c.mem_->write16(ea, static_cast<u16>(value)); break;
    }
    c.invalidateUopsAt(ea);
    pkt.res = value;
    // DEST carries the store-data register so monitors can read its tag.
    pkt.dest = static_cast<u16>(c.regs_.physIndex(inst.rd));
    c.advancePc();
    pkt.cond = c.icc_.packed();
    return kHStore;
}

u32
ThreadedEngine::hBicc(Core &c, const Core::Uop &uop, CommitPacket &pkt)
{
    const Instruction &inst = uop.inst;
    u32 a, b;
    begin(c, uop, pkt, &a, &b);
    const Addr target = c.pc_ + 4u * static_cast<u32>(inst.disp);
    const bool taken = Alu::evalCond(inst.cond, c.icc_);
    pkt.branch = taken;
    pkt.res = target;
    u32 extra = 0;
    if (inst.cond == Cond::kA && inst.annul) {
        c.pc_ = target;
        c.npc_ = target + 4;
        extra = c.params_.annul_extra + c.params_.branch_taken_extra;
    } else if (taken) {
        c.pc_ = c.npc_;
        c.npc_ = target;
        extra = c.params_.branch_taken_extra;
    } else if (inst.annul) {
        c.pc_ = c.npc_ + 4;
        c.npc_ = c.npc_ + 8;
        extra = c.params_.annul_extra;
    } else {
        c.pc_ = c.npc_;
        c.npc_ = c.npc_ + 4;
    }
    pkt.cond = c.icc_.packed();
    return extra;
}

u32
ThreadedEngine::hCall(Core &c, const Core::Uop &uop, CommitPacket &pkt)
{
    u32 a, b;
    begin(c, uop, pkt, &a, &b);
    const Addr target = c.pc_ + 4u * static_cast<u32>(uop.inst.disp);
    c.regs_.write(kRegO7, c.pc_);
    pkt.res = target;
    pkt.branch = true;
    pkt.dest = static_cast<u16>(c.regs_.physIndex(kRegO7));
    c.pc_ = c.npc_;
    c.npc_ = target;
    pkt.cond = c.icc_.packed();
    return c.params_.call_extra;
}

u32
ThreadedEngine::hJmpl(Core &c, const Core::Uop &uop, CommitPacket &pkt)
{
    u32 a, b;
    begin(c, uop, pkt, &a, &b);
    const Addr target = a + b;
    if (target & 3) {
        c.raiseTrap(TrapKind::kMemAlign, c.pc_, "misaligned jump target");
        return kHTrap;
    }
    c.regs_.write(uop.inst.rd, c.pc_);
    pkt.res = target;
    pkt.addr = target;
    pkt.branch = true;
    pkt.dest = static_cast<u16>(c.regs_.physIndex(uop.inst.rd));
    c.pc_ = c.npc_;
    c.npc_ = target;
    pkt.cond = c.icc_.packed();
    return c.params_.jmpl_extra;
}

u32
ThreadedEngine::hRdy(Core &c, const Core::Uop &uop, CommitPacket &pkt)
{
    u32 a, b;
    begin(c, uop, pkt, &a, &b);
    c.regs_.write(uop.inst.rd, c.y_);
    pkt.res = c.y_;
    pkt.dest = static_cast<u16>(c.regs_.physIndex(uop.inst.rd));
    c.advancePc();
    pkt.cond = c.icc_.packed();
    return 0;
}

u32
ThreadedEngine::hWry(Core &c, const Core::Uop &uop, CommitPacket &pkt)
{
    u32 a, b;
    begin(c, uop, pkt, &a, &b);
    c.y_ = a;
    pkt.res = c.y_;
    c.advancePc();
    pkt.cond = c.icc_.packed();
    return 0;
}

u32
ThreadedEngine::hTicc(Core &c, const Core::Uop &uop, CommitPacket &pkt)
{
    u32 a, b;
    begin(c, uop, pkt, &a, &b);
    u32 flags = 0;
    if (Alu::evalCond(uop.inst.cond, c.icc_)) {
        const u32 trap_no = (a + b) & 0x7f;
        switch (static_cast<SysTrap>(trap_no)) {
          case SysTrap::kExit:
            flags |= kHExit;
            c.exit_code_ = c.regs_.read(kRegO0);
            break;
          case SysTrap::kPutChar:
            c.console_ += static_cast<char>(c.regs_.read(kRegO0) & 0xff);
            break;
          case SysTrap::kPutInt:
            c.console_ +=
                std::to_string(static_cast<s32>(c.regs_.read(kRegO0)));
            break;
          default:
            c.raiseTrap(TrapKind::kBadSyscall, c.pc_,
                        "unknown software trap " + std::to_string(trap_no));
            return kHTrap;
        }
    }
    c.advancePc();
    pkt.cond = c.icc_.packed();
    return flags;
}

u32
ThreadedEngine::hCpop(Core &c, const Core::Uop &uop, CommitPacket &pkt)
{
    const Instruction &inst = uop.inst;
    u32 a, b;
    begin(c, uop, pkt, &a, &b);
    // The core computes rs1 + operand2 as a convenience address and
    // exposes rs1's value in RES; all semantics live in the fabric.
    const Addr ea = a + b;
    pkt.addr = ea;
    pkt.res = a;
    pkt.src1 = static_cast<u16>(c.regs_.physIndex(inst.rs1));
    u32 flags = 0;
    if (inst.cpop_fn == CpopFn::kReadTag) {
        flags |= kHCpread;
        pkt.dest = static_cast<u16>(c.regs_.physIndex(inst.rd));
        if (!c.iface_)
            c.regs_.write(inst.rd, 0);
    } else {
        // SetRegTag/SetMemTag carry the tag value in the rd field.
        pkt.dest = inst.rd;
    }
    c.advancePc();
    pkt.cond = c.icc_.packed();
    return flags;
}

const Core::Uop *
ThreadedEngine::probeFetch(u32 *slot) const
{
    const Core &c = *c_;
    if (!c.uop_words_per_line_)
        return nullptr;
    if (!c.icache_.probeSlot(c.pc_, slot))
        return nullptr;
    const u32 word = (c.pc_ >> 2) & (c.uop_words_per_line_ - 1);
    if (!(c.uop_masks_[*slot] & (1u << word)))
        return nullptr;
    const Core::Uop &uop =
        c.uops_[static_cast<size_t>(*slot) * c.uop_words_per_line_ +
                word];
    // Null handler (invalid instruction) falls back to the interpreter,
    // which raises the illegal-instruction trap on its own path.
    return uop.exec ? &uop : nullptr;
}

void
ThreadedEngine::commitViaInterp(u32 flags, Cycle now)
{
    (void)now;
    Core &c = *c_;
    Core::ExecContext &cur = c.cur_;
    cur.extra_stall = flags & kHStallMask;
    cur.skip_offer = false;
    cur.is_micro = false;
    cur.is_cpread = (flags & kHCpread) != 0;
    if (cur.is_cpread)
        cur.cpread_rd = cur.pkt.di.rd;
    cur.is_exit = (flags & kHExit) != 0;
    cur.is_store = (flags & kHStore) != 0;
    if (cur.is_store)
        cur.store_addr = cur.pkt.addr;

    if (flags & kHStore) {
        c.dcache_.access(cur.pkt.addr);   // write-through, no allocate
        c.scheduleStoreThenCommit();
        return;
    }
    if (flags & kHLoad) {
        const Addr ea = cur.pkt.addr;
        if (!c.dcache_.access(ea)) {
            c.wait_is_fetch_ = false;
            c.bus_serving_us_ = false;
            c.state_ = Core::State::kWaitBus;
            const Addr line = ea & ~(c.params_.dcache.line_bytes - 1);
            Core *core = c_;
            BusRequest req;
            req.op = BusOp::kReadLine;
            req.addr = line;
            req.on_start = [core]() { core->bus_serving_us_ = true; };
            req.on_complete = [core, line]() {
                core->dcache_.fill(line);
                core->state_ = Core::State::kCommitPending;
            };
            c.bus_->request(std::move(req));
            c.chargeBusWait();
            return;
        }
    }
    c.state_ = Core::State::kCommitPending;
    c.tryCommit();
}

void
ThreadedEngine::execUop(const Core::Uop &uop, Cycle now, u64 *tally,
                        u64 *n_insts, u64 *n_fwd)
{
    Core &c = *c_;
    const Instruction &inst = uop.inst;
    c.bucket_ = Core::CycleBucket::kCommit;

    const bool is_load = (uop.decode_bits & 2u) != 0;
    const bool is_store = (uop.decode_bits & 4u) != 0;

    // Route selection, before the handler runs so the packet is written
    // straight into its final destination (the FFIFO ring slot in the
    // common case — the packet copy is the bulk of the commit cost).
    bool fallback = is_load;   // a load may miss; it needs cur_ anyway
    if (!fallback && is_store && c.store_buffer_.full())
        fallback = true;   // kWaitStoreBuffer retries out of cur_
    if (!fallback && iface_ &&
        (inst.op == Op::kCpop1 || inst.op == Op::kCpop2) &&
        inst.cpop_fn == CpopFn::kReadTag)
        fallback = true;   // 'read from co-processor' waits on the BFIFO
    bool ring = false;
    if (!fallback && iface_) {
        const ForwardPolicy policy =
            iface_->cfgr_.policy(static_cast<InstrType>(inst.type));
        if (policy == ForwardPolicy::kAlways) {
            if (iface_->fifoFull())
                fallback = true;   // real offer() counts the stall
            else
                ring = true;
        } else if (policy != ForwardPolicy::kIgnore) {
            fallback = true;   // kIfNotFull / kWaitAck bookkeeping
        }
    }

    FlexInterface::Entry *entry = nullptr;
    CommitPacket *pkt;
    if (fallback) {
        pkt = &c.cur_.pkt;
    } else if (ring) {
        entry = &iface_->fifo_[(iface_->fifo_head_ + iface_->fifo_count_) &
                               iface_->fifo_mask_];
        pkt = &entry->packet;
    } else {
        pkt = &scratch_pkt_;
    }

    const u32 flags = uop.exec(c, uop, *pkt);
    if (flags & (kHTrap | kHWindow)) {
        // raiseTrap()/enqueueWindow*() already ran inside the handler;
        // a partially written ring slot is dead until fifo_count_ grows.
        ++tally[static_cast<unsigned>(Core::CycleBucket::kCommit)];
        return;
    }
    if (fallback) {
        commitViaInterp(flags, now);
        ++tally[static_cast<unsigned>(c.bucket_)];
        return;
    }

    // Inline commit: exactly offer()'s push plus finishInstruction(),
    // with the Counter increments batched (flushed at burst exit).
    if (is_store) {
        c.dcache_.access(pkt->addr);   // write-through, no allocate
        const bool pushed = c.store_buffer_.push(pkt->addr);
        assert(pushed && "store-buffer room was pre-checked");
        (void)pushed;
    }
    if (ring) {
        entry->ready_at = now + iface_->params_.sync_cycles;
        ++iface_->fifo_count_;
        iface_->fabric_idle_ = false;
        ++*n_fwd;
        ++iface_->forwarded_by_type_[inst.type];
    }
    ++*n_insts;
    ++c.committed_by_type_[pkt->opcode];
    if (c.tracer_)
        c.tracer_(now, pkt->pc, pkt->di);
    c.stall_ += flags & kHStallMask;
    if (flags & kHExit)
        c.state_ = Core::State::kDrainExit;
    ++tally[static_cast<unsigned>(Core::CycleBucket::kCommit)];
}

Cycle
ThreadedEngine::burst(Cycle now, Cycle limit)
{
    Core &c = *c_;
#ifdef NDEBUG
    u64 tally[static_cast<unsigned>(Core::CycleBucket::kNumBuckets)] = {};
    u64 n_cycles = 0, n_insts = 0, n_fwd = 0, n_line_hits = 0;
    Addr burst_line = ~Addr{0};   //!< I-line with a real access this burst

    while (now < limit) {
        if (c.halted_ || c.state_ != Core::State::kReady)
            break;
        const bool is_stall = c.stall_ > 0;
        const Core::Uop *uop = nullptr;
        u32 slot = 0;
        if (!is_stall) {
            if (c.fetch_retry_ || !c.micro_queue_.empty())
                break;
            uop = probeFetch(&slot);
            if (!uop)
                break;
        }
        // ---- consume this cycle, in System::tick() component order ----
        c.now_ = now;
        bus_->tick();
        if (fabric_)
            fabric_->tick(now);
        if (iface_ && iface_->trapPending()) {
            // The fabric raised TRAP this or an earlier cycle; the core
            // takes it at the commit boundary instead of the classified
            // action, exactly like Core::step().
            c.takeMonitorTrap();
            ++tally[static_cast<unsigned>(Core::CycleBucket::kCommit)];
        } else if (is_stall) {
            --c.stall_;
            ++tally[static_cast<unsigned>(Core::CycleBucket::kLatency)];
        } else {
            // One real I-cache access per line entered keeps the LRU
            // relative order identical (repeat hits only re-stamp the
            // same line); the remaining same-line hits are batched.
            const Addr line = c.pc_ & ~(c.params_.icache.line_bytes - 1);
            if (line != burst_line) {
                c.icache_.access(c.pc_);
                burst_line = line;
            } else {
                ++n_line_hits;
            }
            c.fetch_slot_ = slot;
            execUop(*uop, now, tally, &n_insts, &n_fwd);
        }
        c.store_buffer_.tick();
        ++n_cycles;
        ++now;
    }

    c.cycles_ += n_cycles;
    for (unsigned b = 0;
         b < static_cast<unsigned>(Core::CycleBucket::kNumBuckets); ++b)
        *c.bucket_counters_[b] += tally[b];
    c.instructions_ += n_insts;
    c.icache_.addBatchedHits(n_line_hits);
    if (iface_)
        iface_->forwarded_ += n_fwd;
    return now;
#else
    // Debug builds run the real interpreter for every cycle and
    // lockstep-verify each dispatched handler against it, so a debug
    // threaded run is the interpreter plus proofs.
    while (now < limit) {
        if (c.halted_ || c.state_ != Core::State::kReady)
            break;
        const bool is_stall = c.stall_ > 0;
        const Core::Uop *uop = nullptr;
        u32 slot = 0;
        if (!is_stall) {
            if (c.fetch_retry_ || !c.micro_queue_.empty())
                break;
            uop = probeFetch(&slot);
            if (!uop)
                break;
        }
        bus_->tick();
        if (fabric_)
            fabric_->tick(now);
        const bool will_trap = iface_ && iface_->trapPending();
        if (uop && !is_stall && !will_trap) {
            // Copy: a store may invalidate its own µop entry in place.
            const Core::Uop verify_uop = *uop;
            const Snapshot pre = snapshot(verify_uop);
            c.tick(now);
            verifyUop(verify_uop, pre);
        } else {
            c.tick(now);
        }
        c.store_buffer_.tick();
        ++now;
    }
    return now;
#endif
}

#ifndef NDEBUG

ThreadedEngine::Snapshot
ThreadedEngine::snapshot(const Core::Uop &uop) const
{
    const Core &c = *c_;
    Snapshot s;
    s.regs = c.regs_;
    s.icc = c.icc_;
    s.y = c.y_;
    s.pc = c.pc_;
    s.npc = c.npc_;
    s.depth = c.depth_;
    s.spilled = c.spilled_;
    s.console_len = c.console_.size();
    s.exit_code = c.exit_code_;
    if (uop.decode_bits & 4u) {
        const u32 a = c.regs_.read(uop.inst.rs1);
        const u32 b = c.operand2(uop.inst);
        s.mem_word_addr = (a + b) & ~Addr{3};
        s.mem_word = c.mem_->read32(s.mem_word_addr);
        s.have_mem_word = true;
    }
    return s;
}

void
ThreadedEngine::verifyUop(const Core::Uop &uop, const Snapshot &pre)
{
    Core &c = *c_;
    // Trap and window paths delegate to the interpreter's own
    // raiseTrap()/enqueueWindowSpill()/enqueueWindowFill(), so there is
    // no transcription to verify (and no clean way to roll them back).
    if (c.halted_ || c.state_ == Core::State::kDrainTrap ||
        !c.micro_queue_.empty())
        return;

    const CommitPacket interp_pkt = c.cur_.pkt;
    const u32 interp_extra = c.cur_.extra_stall;
    const bool interp_cpread = c.cur_.is_cpread;
    const bool interp_exit = c.cur_.is_exit;
    const bool interp_store = c.cur_.is_store;

    const RegWindowFile post_regs = c.regs_;
    const u8 post_cond = c.icc_.packed();
    const u32 post_y = c.y_;
    const Addr post_pc = c.pc_;
    const Addr post_npc = c.npc_;
    const unsigned post_depth = c.depth_;
    const unsigned post_spilled = c.spilled_;
    const std::string post_console = c.console_;
    const u32 post_exit = c.exit_code_;

    // Rewind the architectural state only; the timing state keeps the
    // interpreter's (authoritative) outcome.
    c.regs_ = pre.regs;
    c.icc_ = pre.icc;
    c.y_ = pre.y;
    c.pc_ = pre.pc;
    c.npc_ = pre.npc;
    c.depth_ = pre.depth;
    c.spilled_ = pre.spilled;
    c.console_.resize(pre.console_len);
    c.exit_code_ = pre.exit_code;
    if (pre.have_mem_word)
        c.mem_->write32(pre.mem_word_addr, pre.mem_word);

    CommitPacket pkt;
    const u32 flags = uop.exec(c, uop, pkt);

    assert(!(flags & (kHTrap | kHWindow)) &&
           "handler took a trap/window path the interpreter did not");
    assert((flags & kHStallMask) == interp_extra);
    assert(((flags & kHCpread) != 0) == interp_cpread);
    assert(((flags & kHExit) != 0) == interp_exit);
    assert(((flags & kHStore) != 0) == interp_store);
    assert(pkt.pc == interp_pkt.pc && pkt.inst == interp_pkt.inst &&
           pkt.addr == interp_pkt.addr && pkt.res == interp_pkt.res &&
           pkt.srcv1 == interp_pkt.srcv1 &&
           pkt.srcv2 == interp_pkt.srcv2 &&
           pkt.cond == interp_pkt.cond &&
           pkt.branch == interp_pkt.branch &&
           pkt.opcode == interp_pkt.opcode &&
           pkt.decode == interp_pkt.decode &&
           pkt.extra == interp_pkt.extra &&
           pkt.src1 == interp_pkt.src1 && pkt.src2 == interp_pkt.src2 &&
           pkt.dest == interp_pkt.dest &&
           pkt.wants_ack == interp_pkt.wants_ack &&
           "threaded handler must reproduce the interpreter's packet");
    assert(pkt.di.raw == interp_pkt.di.raw &&
           pkt.di.op == interp_pkt.di.op);
    for (unsigned r = 0; r < kNumPhysRegs; ++r)
        assert(c.regs_.readPhys(r) == post_regs.readPhys(r) &&
               "threaded handler must reproduce the register file");
    assert(c.regs_.cwp() == post_regs.cwp());
    assert(c.icc_.packed() == post_cond && c.y_ == post_y);
    assert(c.pc_ == post_pc && c.npc_ == post_npc);
    assert(c.depth_ == post_depth && c.spilled_ == post_spilled);
    assert(c.console_ == post_console && c.exit_code_ == post_exit);
    (void)flags;
    (void)interp_extra;
    (void)interp_cpread;
    (void)interp_exit;
    (void)interp_store;
    (void)post_cond;
    (void)post_y;
    (void)post_pc;
    (void)post_npc;
    (void)post_depth;
    (void)post_spilled;
    (void)post_exit;
}

#endif  // !NDEBUG

void
ThreadedEngine::warmMetaOps(const MetaAccess *ops, unsigned num_ops)
{
    if (!fabric_)
        return;
    // Warm the meta-data cache with the accesses this packet would
    // perform (timing-free: misses fill instantly, no writebacks).
    const u32 line_bytes = fabric_->params_.meta_cache.line_bytes;
    for (unsigned i = 0; i < num_ops; ++i) {
        const MetaAccess &op = ops[i];
        if (fabric_->params_.tlb.enabled) {
            const u32 vpn = op.addr >> fabric_->params_.tlb.page_shift;
            Fabric::TlbEntry &entry =
                fabric_->tlb_[vpn % fabric_->tlb_.size()];
            entry.valid = true;
            entry.vpn = vpn;
        }
        if (!fabric_->meta_cache_.access(op.addr, op.is_write)) {
            fabric_->meta_cache_.fill(op.addr & ~(line_bytes - 1),
                                      op.is_write);
        }
    }
}

void
ThreadedEngine::warmForward(const CommitPacket &pkt)
{
    if (!iface_ || !monitor_)
        return;
    const InstrType type = static_cast<InstrType>(pkt.opcode);
    if (iface_->cfgr_.policy(type) == ForwardPolicy::kIgnore)
        return;
    // Functional forwarding: the packet reaches the monitor with no
    // FIFO occupancy or fabric-cycle modeling. The kIfNotFull policy
    // can therefore never drop here — warming processes a superset of
    // the packets a congested timing run would (docs/performance.md).
    ++iface_->forwarded_;
    ++iface_->forwarded_by_type_[type];
    MonitorResult result;
    monitor_->process(pkt, &result);
    warmMetaOps(result.ops.data(), result.num_ops);
    if (result.trap) {
        monitor_->noteTrap(result.trap_reason ? result.trap_reason
                                              : "check failed");
        iface_->raiseTrap(pkt.pc);
        // drainFunctional() emptied the FIFO at warm() entry and
        // warming keeps it empty, so the trap resolves immediately
        // (no drain phase).
        c_->takeMonitorTrap();
        return;
    }
    if (result.has_bfifo)
        iface_->pushBfifo(result.bfifo);
}

void
ThreadedEngine::drainFunctional()
{
    if (!iface_)
        return;
    // Apply one retired packet's staged effects in the fabric's retire
    // order (trap, BFIFO, CACK); returns true when the trap ends the
    // run, exactly as the timed core would take it on its next cycle.
    const auto retire = [&](bool trap, const char *trap_reason,
                            bool has_bfifo, u32 bfifo, bool wants_ack,
                            Addr pc) {
        if (trap) {
            monitor_->noteTrap(trap_reason ? trap_reason
                                           : "check failed");
            iface_->raiseTrap(pc);
        }
        if (has_bfifo)
            iface_->pushBfifo(bfifo);
        if (wants_ack)
            iface_->signalAck();
        if (trap) {
            c_->takeMonitorTrap();
            return true;
        }
        return false;
    };

    if (fabric_) {
        // 1. Packets already through the monitor, waiting out their
        // pipeline latency: only their staged effects remain.
        while (fabric_->pipe_count_ > 0) {
            const Fabric::InFlight done =
                fabric_->pipe_[fabric_->pipe_head_];
            fabric_->pipe_head_ =
                (fabric_->pipe_head_ + 1) & fabric_->pipe_mask_;
            --fabric_->pipe_count_;
            if (retire(done.trap, done.trap_reason, done.has_bfifo,
                       done.bfifo, done.wants_ack, done.pc))
                return;
        }
        // 2. A dequeued packet whose extra meta-cache ops were still
        // draining: the monitor has processed it, so warm the
        // remaining accesses and apply its staged effects. The
        // sampling boundary guarantees the bus is idle, hence no
        // refill is in flight and the fabric is not frozen.
        if (fabric_->have_pending_) {
            if (fabric_->pending_idx_ < fabric_->pending_num_ops_) {
                warmMetaOps(
                    &fabric_->pending_ops_[fabric_->pending_idx_],
                    fabric_->pending_num_ops_ - fabric_->pending_idx_);
            }
            fabric_->have_pending_ = false;
            fabric_->pending_extra_input_block_ = 0;
            const Fabric::InFlight &done = fabric_->pending_effects_;
            if (retire(done.trap, done.trap_reason, done.has_bfifo,
                       done.bfifo, done.wants_ack, done.pc))
                return;
        }
    }
    // 3. Queued FFIFO packets, oldest first: process each through the
    // monitor exactly as the fabric's dequeue stage would, then apply
    // its effects immediately. forwarded_ was counted at offer() time,
    // so only the fabric-side packet counter advances here.
    while (iface_->fifo_count_ > 0) {
        const CommitPacket pkt =
            iface_->fifo_[iface_->fifo_head_].packet;
        iface_->popFront();
        if (!monitor_)
            continue;
        if (fabric_)
            ++fabric_->packets_;
        MonitorResult result;
        monitor_->process(pkt, &result);
        warmMetaOps(result.ops.data(), result.num_ops);
        if (retire(result.trap, result.trap_reason, result.has_bfifo,
                   result.bfifo, pkt.wants_ack, pkt.pc))
            return;
    }
    if (fabric_)
        iface_->setFabricIdle(true);
}

void
ThreadedEngine::warmMicroOps()
{
    Core &c = *c_;
    while (!c.micro_queue_.empty() && !c.halted_) {
        const Core::MicroOp op = c.micro_queue_.front();
        c.micro_queue_.pop_front();
        ++c.micro_ops_;
        CommitPacket pkt;
        pkt.pc = c.pc_;
        switch (op.kind) {
          case Core::MicroOp::Kind::kAlu:
            continue;   // one-cycle filler; never forwarded
          case Core::MicroOp::Kind::kLoad: {
            const u32 value = c.mem_->read32(op.addr);
            if (op.forward)
                c.regs_.writePhys(op.phys_reg, value);
            pkt.opcode = kTypeLoadWord;
            pkt.addr = op.addr;
            pkt.res = value;
            pkt.dest = static_cast<u16>(op.phys_reg);
            pkt.di.op = Op::kLd;
            pkt.di.type = kTypeLoadWord;
            pkt.di.valid = true;
            if (!c.dcache_.access(op.addr))
                c.dcache_.fill(op.addr &
                               ~(c.params_.dcache.line_bytes - 1));
            break;
          }
          case Core::MicroOp::Kind::kStore: {
            if (op.forward) {
                c.mem_->write32(op.addr, op.store_value);
                c.invalidateUopsAt(op.addr);
            }
            pkt.opcode = kTypeStoreWord;
            pkt.addr = op.addr;
            pkt.res = op.store_value;
            pkt.dest = static_cast<u16>(op.phys_reg);
            pkt.di.op = Op::kSt;
            pkt.di.type = kTypeStoreWord;
            pkt.di.valid = true;
            c.dcache_.access(op.addr);   // write-through, no allocate
            break;
          }
        }
        if (op.forward)
            warmForward(pkt);
    }
}

u64
ThreadedEngine::warm(u64 max_instructions)
{
    Core &c = *c_;
    // The detailed window closed at a sampling boundary that allows
    // queued forward packets and staged pipe effects; retire them
    // functionally so warming (and the next detailed window) starts
    // from an empty FIFO and an idle fabric.
    drainFunctional();
    u64 done = 0;
    while (done < max_instructions && !c.halted_) {
        if (!c.micro_queue_.empty()) {
            warmMicroOps();
            continue;
        }
        // Functional fetch with I-cache warming: misses fill instantly.
        if (c.icache_.access(c.pc_)) {
            c.fetch_slot_ = c.icache_.lastSlot();
        } else {
            const Cache::FillResult fill = c.icache_.fill(
                c.pc_ & ~(c.params_.icache.line_bytes - 1));
            if (c.uop_words_per_line_)
                c.uop_masks_[fill.slot] = 0;
            c.fetch_slot_ = fill.slot;
        }
        const Core::Uop &decoded = c.decodedFetch();
        if (!decoded.inst.valid) {
            c.raiseTrap(TrapKind::kIllegalInstr, c.pc_,
                        "undecodable instruction");
            break;
        }
        if (!decoded.exec) {
            c.raiseTrap(TrapKind::kIllegalInstr, c.pc_, "illegal opcode");
            break;
        }
        // Copy: a store may invalidate its own µop entry in place.
        const Core::Uop uop = decoded;
        CommitPacket &pkt = scratch_pkt_;
        const u32 flags = uop.exec(c, uop, pkt);
        if (flags & kHTrap)
            break;   // the FIFO is empty, so raiseTrap() halted the core
        if (flags & kHWindow)
            continue;   // drain the spill/fill, then re-execute this pc
        if (flags & kHLoad) {
            if (!c.dcache_.access(pkt.addr))
                c.dcache_.fill(pkt.addr &
                               ~(c.params_.dcache.line_bytes - 1));
        } else if (flags & kHStore) {
            c.dcache_.access(pkt.addr);   // write-through, no allocate
        }
        ++c.instructions_;
        ++c.committed_by_type_[pkt.opcode];
        if (c.tracer_)
            c.tracer_(c.now_, pkt.pc, pkt.di);
        // Streamed commit records keep the instruction log complete
        // across functional warming; now_ is frozen between detailed
        // windows, so these records all carry the window-boundary
        // cycle (bracketed by the kWindow records System emits).
        if (c.trace_)
            c.trace_->commit(c.now_, pkt.pc, pkt.inst);
        warmForward(pkt);
        if (!c.halted_ && (flags & kHCpread) && c.iface_) {
            // 'read from co-processor': the monitor's BFIFO value lands
            // in rd with no kWaitBfifo stall.
            if (auto value = c.iface_->popBfifo())
                c.regs_.write(uop.inst.rd, *value);
        }
        if (injector_)
            injector_->onCommit(c.instructions_.value(), c.now_);
        ++done;
        if (flags & kHExit) {
            // No packets are in flight, so the exit drain is empty.
            c.halted_ = true;
            break;
        }
    }
    return done;
}

}  // namespace flexcore
