/**
 * @file
 * Threaded-code dispatch and functional-warming engine. Two entry
 * points, both observably identical to the per-cycle interpreter where
 * they apply:
 *
 *  - burst(): execute a superblock of straight-line cycles using the
 *    pre-decoded µop cache's function-pointer handlers, replicating the
 *    System::tick() component order per cycle but batching counter
 *    updates and inlining the common-case commit. Exits (without
 *    consuming a cycle) whenever the next cycle is not provably a
 *    plain in-line fetch/latency cycle, handing control back to the
 *    interpreter loop. Debug builds lockstep-verify every handler
 *    against the real interpreter instead (see threaded.cc).
 *
 *  - warm(): SMARTS-style functional warming — architectural state,
 *    monitor shadow state, and cache contents advance with no cycle
 *    accounting at all. Used between detailed windows in sampled
 *    timing mode (SystemConfig::sample_window/sample_period).
 *
 * Correctness arguments live in docs/performance.md; the differential
 * suites (tests/test_differential.cc, tests/test_sampling.cc) enforce
 * them on the Table IV grid.
 */

#ifndef FLEXCORE_CORE_THREADED_H_
#define FLEXCORE_CORE_THREADED_H_

#include "core/core.h"

namespace flexcore {

class Fabric;
class FaultInjector;
class Monitor;
struct MetaAccess;

class ThreadedEngine
{
  public:
    /** All pointers may be null except @p core and @p bus. */
    ThreadedEngine(Core *core, Bus *bus, FlexInterface *iface,
                   Fabric *fabric, Monitor *monitor,
                   FaultInjector *injector);

    /**
     * Run burst cycles starting at @p now until the cycle limit, the
     * core halts, or the next cycle is not burstable. Returns the new
     * current cycle (== the count of cycles consumed plus @p now); the
     * caller resumes the interpreter loop from there. Never consumes a
     * cycle it cannot handle exactly.
     */
    Cycle burst(Cycle now, Cycle limit);

    /**
     * Functionally execute up to @p max_instructions committed
     * instructions: registers, memory, console, monitor meta-data, and
     * I/D/meta cache contents all advance; cycles do not. Monitor
     * traps and program exit halt the core exactly as in timing mode.
     * Returns the number of instructions committed.
     */
    u64 warm(u64 max_instructions);

    /** Dispatch-table lookup for Core::burstHandlerFor (threaded.cc). */
    static Core::BurstFn handlerFor(const Instruction &inst);

  private:
    // Handler return flags (bits 0-7 carry the extra-stall cycles).
    static constexpr u32 kHStallMask = 0xffu;
    static constexpr u32 kHTrap = 1u << 8;     //!< raiseTrap() was called
    static constexpr u32 kHWindow = 1u << 9;   //!< spill/fill enqueued
    static constexpr u32 kHExit = 1u << 10;    //!< `ta 0` exit
    static constexpr u32 kHLoad = 1u << 11;    //!< needs a D-cache load
    static constexpr u32 kHStore = 1u << 12;   //!< needs SB + D-cache
    static constexpr u32 kHCpread = 1u << 13;  //!< 'read from co-proc'

    /** Shared packet prologue: everything executeInstruction() sets
     * before its opcode switch, byte-for-byte. */
    static void begin(Core &c, const Core::Uop &uop, CommitPacket &pkt,
                      u32 *a, u32 *b);

    // One handler per opcode group, each transcribing the matching
    // executeInstruction() case exactly (architectural semantics +
    // packet only; no timing state).
    static u32 hSethi(Core &c, const Core::Uop &uop, CommitPacket &pkt);
    static u32 hAlu(Core &c, const Core::Uop &uop, CommitPacket &pkt);
    static u32 hSave(Core &c, const Core::Uop &uop, CommitPacket &pkt);
    static u32 hRestore(Core &c, const Core::Uop &uop, CommitPacket &pkt);
    static u32 hLoad(Core &c, const Core::Uop &uop, CommitPacket &pkt);
    static u32 hStore(Core &c, const Core::Uop &uop, CommitPacket &pkt);
    static u32 hBicc(Core &c, const Core::Uop &uop, CommitPacket &pkt);
    static u32 hCall(Core &c, const Core::Uop &uop, CommitPacket &pkt);
    static u32 hJmpl(Core &c, const Core::Uop &uop, CommitPacket &pkt);
    static u32 hRdy(Core &c, const Core::Uop &uop, CommitPacket &pkt);
    static u32 hWry(Core &c, const Core::Uop &uop, CommitPacket &pkt);
    static u32 hTicc(Core &c, const Core::Uop &uop, CommitPacket &pkt);
    static u32 hCpop(Core &c, const Core::Uop &uop, CommitPacket &pkt);

    /** Probe (side-effect-free) for the µop the next fetch would hit;
     * null when the next cycle is not a burstable in-line fetch. */
    const Core::Uop *probeFetch(u32 *slot) const;

    /** Commit one handler-executed instruction on the fallback route:
     * populate Core::ExecContext and drive the real tryCommit(). */
    void commitViaInterp(u32 flags, Cycle now);

    /** Execute one burstable µop: pick the commit route, run the
     * handler, and finish inline or via commitViaInterp(). Updates the
     * burst-local counter batch. */
    void execUop(const Core::Uop &uop, Cycle now, u64 *tally,
                 u64 *n_insts, u64 *n_fwd);

    /** Functionally drain the micro-op queue (warming only). */
    void warmMicroOps();
    /** Forward one packet straight to the monitor (warming only). */
    void warmForward(const CommitPacket &pkt);
    /** Warm the meta cache (and TLB) with a processed packet's
     * accesses: misses fill instantly, no writebacks, no cycles. */
    void warmMetaOps(const MetaAccess *ops, unsigned num_ops);
    /**
     * Functionally retire everything the timing model still has in
     * flight at a sampling boundary: staged pipe effects first, then
     * the half-drained pending packet, then every queued FFIFO packet
     * (monitor processing + effects, no cycle accounting). Stops at
     * the first monitor trap, which halts the core exactly as the
     * timed drain would. Leaves the fabric idle and the FIFO empty.
     */
    void drainFunctional();

#ifndef NDEBUG
    /** Pre-execution architectural state, for handler verification. */
    struct Snapshot
    {
        RegWindowFile regs;
        Icc icc;
        u32 y = 0;
        Addr pc = 0;
        Addr npc = 0;
        unsigned depth = 0;
        unsigned spilled = 0;
        size_t console_len = 0;
        u32 exit_code = 0;
        Addr mem_word_addr = 0;   //!< store-target word (aligned)
        u32 mem_word = 0;
        bool have_mem_word = false;
    };
    Snapshot snapshot(const Core::Uop &uop) const;
    /** Lockstep check, run after the interpreter executed @p uop for
     * real: restore @p pre, run the handler, assert it reproduces the
     * interpreter's packet and post-state, then restore the
     * interpreter's post-state. */
    void verifyUop(const Core::Uop &uop, const Snapshot &pre);
#endif

    Core *c_;
    Bus *bus_;
    FlexInterface *iface_;
    Fabric *fabric_;
    Monitor *monitor_;
    FaultInjector *injector_;
    CommitPacket scratch_pkt_;   //!< target for unforwarded commits
};

}  // namespace flexcore

#endif  // FLEXCORE_CORE_THREADED_H_
