#include "core/trap.h"

namespace flexcore {

std::string_view
trapKindName(TrapKind kind)
{
    switch (kind) {
      case TrapKind::kNone: return "none";
      case TrapKind::kMonitor: return "monitor";
      case TrapKind::kDivByZero: return "div_by_zero";
      case TrapKind::kMemAlign: return "mem_align";
      case TrapKind::kIllegalInstr: return "illegal_instr";
      case TrapKind::kWindowError: return "window_error";
      case TrapKind::kBadSyscall: return "bad_syscall";
    }
    return "?";
}

}  // namespace flexcore
