#include "faults/fault_plan.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "isa/registers.h"

namespace flexcore {

std::string_view
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kRegFlip: return "reg";
      case FaultKind::kShadowRegFlip: return "shadow";
      case FaultKind::kMemFlip: return "mem";
      case FaultKind::kMetaFlip: return "meta";
      case FaultKind::kFfifoFlip: return "ffifo";
      case FaultKind::kSbFlip: return "sb";
    }
    return "?";
}

std::string_view
packetFieldName(PacketField field)
{
    switch (field) {
      case PacketField::kRes: return "res";
      case PacketField::kSrcv1: return "srcv1";
      case PacketField::kSrcv2: return "srcv2";
      case PacketField::kAddr: return "addr";
      case PacketField::kDest: return "dest";
    }
    return "?";
}

bool
parseFaultKind(std::string_view name, FaultKind *out)
{
    static constexpr FaultKind kAll[] = {
        FaultKind::kRegFlip,   FaultKind::kShadowRegFlip,
        FaultKind::kMemFlip,   FaultKind::kMetaFlip,
        FaultKind::kFfifoFlip, FaultKind::kSbFlip,
    };
    for (FaultKind kind : kAll) {
        if (name == faultKindName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

bool
parsePacketField(std::string_view name, PacketField *out)
{
    static constexpr PacketField kAll[] = {
        PacketField::kRes, PacketField::kSrcv1, PacketField::kSrcv2,
        PacketField::kAddr, PacketField::kDest,
    };
    for (PacketField field : kAll) {
        if (name == packetFieldName(field)) {
            *out = field;
            return true;
        }
    }
    return false;
}

std::string
formatFaultSpec(const FaultSpec &spec)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s@%c%llu:t%u:b%u",
                  std::string(faultKindName(spec.kind)).c_str(),
                  spec.trigger == FaultTrigger::kCycle ? 'c' : 'i',
                  static_cast<unsigned long long>(spec.when),
                  spec.target, spec.bit);
    std::string out = buf;
    if (spec.kind == FaultKind::kFfifoFlip) {
        out += ":f";
        out += packetFieldName(spec.field);
    }
    if (spec.core != 0) {
        out += ":c";
        out += std::to_string(spec.core);
    }
    return out;
}

namespace {

bool
parseU64(std::string_view text, u64 *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const std::string copy(text);
    const unsigned long long value = std::strtoull(copy.c_str(), &end, 0);
    if (end != copy.c_str() + copy.size())
        return false;
    *out = value;
    return true;
}

bool
fail(std::string *error, std::string message)
{
    if (error)
        *error = std::move(message);
    return false;
}

}  // namespace

bool
parseFaultSpec(std::string_view text, FaultSpec *out, std::string *error)
{
    const size_t at = text.find('@');
    if (at == std::string_view::npos) {
        return fail(error, "fault spec '" + std::string(text) +
                               "' has no '@' (expected "
                               "KIND@{c|i}N:tT:bB[:fFIELD])");
    }
    FaultSpec spec;
    if (!parseFaultKind(text.substr(0, at), &spec.kind)) {
        return fail(error, "unknown fault kind '" +
                               std::string(text.substr(0, at)) +
                               "' (reg|shadow|mem|meta|ffifo|sb)");
    }

    // Split the remainder on ':' into trigger, then tagged fields.
    std::string_view rest = text.substr(at + 1);
    bool have_trigger = false, have_target = false, have_bit = false;
    while (!rest.empty()) {
        const size_t colon = rest.find(':');
        const std::string_view part = rest.substr(0, colon);
        rest = colon == std::string_view::npos ? std::string_view{}
                                               : rest.substr(colon + 1);
        if (part.empty())
            return fail(error, "empty field in fault spec '" +
                                   std::string(text) + "'");
        const char tag = part[0];
        const std::string_view value = part.substr(1);
        u64 number = 0;
        switch (tag) {
          case 'c':
            // The first cN is the cycle trigger; a second one (after
            // the trigger is known) selects the target core.
            if (have_trigger) {
                if (!parseU64(value, &number) || number > ~u32{0}) {
                    return fail(error, "bad core '" + std::string(part) +
                                           "' in '" + std::string(text) +
                                           "'");
                }
                spec.core = static_cast<u32>(number);
                break;
            }
            [[fallthrough]];
          case 'i':
            if (have_trigger || !parseU64(value, &number)) {
                return fail(error, "bad trigger '" + std::string(part) +
                                       "' in '" + std::string(text) + "'");
            }
            spec.trigger = tag == 'c' ? FaultTrigger::kCycle
                                      : FaultTrigger::kCommit;
            spec.when = number;
            have_trigger = true;
            break;
          case 't':
            if (have_target || !parseU64(value, &number) ||
                number > ~u32{0}) {
                return fail(error, "bad target '" + std::string(part) +
                                       "' in '" + std::string(text) + "'");
            }
            spec.target = static_cast<u32>(number);
            have_target = true;
            break;
          case 'b':
            if (have_bit || !parseU64(value, &number) || number > 31) {
                return fail(error, "bad bit '" + std::string(part) +
                                       "' in '" + std::string(text) + "'");
            }
            spec.bit = static_cast<u32>(number);
            have_bit = true;
            break;
          case 'f':
            if (spec.kind != FaultKind::kFfifoFlip ||
                !parsePacketField(value, &spec.field)) {
                return fail(error, "bad field '" + std::string(part) +
                                       "' in '" + std::string(text) +
                                       "' (ffifo only; "
                                       "res|srcv1|srcv2|addr|dest)");
            }
            break;
          default:
            return fail(error, "unknown tag '" + std::string(part) +
                                   "' in '" + std::string(text) + "'");
        }
    }
    if (!have_trigger) {
        return fail(error, "fault spec '" + std::string(text) +
                               "' has no trigger (cN or iN)");
    }
    *out = spec;
    return true;
}

std::string
FaultPlan::format() const
{
    std::string out;
    for (size_t i = 0; i < specs.size(); ++i) {
        if (i > 0)
            out += ',';
        out += formatFaultSpec(specs[i]);
    }
    return out;
}

namespace {

/**
 * Minimal JSON scanner for the plan schema. Not a general parser: it
 * accepts exactly one object with a "faults" array of flat objects
 * whose values are strings or unsigned integers.
 */
class PlanJsonParser
{
  public:
    PlanJsonParser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(FaultPlan *out)
    {
        skipWs();
        if (!expect('{'))
            return false;
        std::string key;
        if (!parseString(&key) || key != "faults")
            return fail("expected a single \"faults\" key");
        skipWs();
        if (!expect(':'))
            return false;
        skipWs();
        if (!expect('['))
            return false;
        skipWs();
        if (peek() != ']') {
            do {
                FaultSpec spec;
                if (!parseSpecObject(&spec))
                    return false;
                out->specs.push_back(spec);
                skipWs();
            } while (consumeIf(','));
        }
        if (!expect(']'))
            return false;
        skipWs();
        if (!expect('}'))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after the plan object");
        return true;
    }

  private:
    bool
    fail(std::string message)
    {
        if (error_)
            *error_ = "fault plan JSON: " + std::move(message);
        return false;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consumeIf(char c)
    {
        skipWs();
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    expect(char c)
    {
        if (consumeIf(c))
            return true;
        return fail(std::string("expected '") + c + "' at offset " +
                    std::to_string(pos_));
    }

    bool
    parseString(std::string *out)
    {
        skipWs();
        if (peek() != '"')
            return fail("expected a string at offset " +
                        std::to_string(pos_));
        ++pos_;
        out->clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                return fail("escapes are not supported in plan strings");
            *out += text_[pos_++];
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        ++pos_;
        return true;
    }

    bool
    parseNumber(u64 *out)
    {
        skipWs();
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ == start)
            return fail("expected an unsigned integer at offset " +
                        std::to_string(start));
        return parseU64(text_.substr(start, pos_ - start), out) ||
               fail("bad number");
    }

    bool
    parseSpecObject(FaultSpec *spec)
    {
        skipWs();
        if (!expect('{'))
            return false;
        skipWs();
        if (peek() != '}') {
            do {
                std::string key;
                if (!parseString(&key))
                    return false;
                skipWs();
                if (!expect(':'))
                    return false;
                if (key == "kind") {
                    std::string value;
                    if (!parseString(&value) ||
                        !parseFaultKind(value, &spec->kind))
                        return fail("bad \"kind\"");
                } else if (key == "trigger") {
                    std::string value;
                    if (!parseString(&value))
                        return false;
                    if (value == "cycle")
                        spec->trigger = FaultTrigger::kCycle;
                    else if (value == "commit")
                        spec->trigger = FaultTrigger::kCommit;
                    else
                        return fail("bad \"trigger\" (cycle|commit)");
                } else if (key == "field") {
                    std::string value;
                    if (!parseString(&value) ||
                        !parsePacketField(value, &spec->field))
                        return fail("bad \"field\"");
                } else if (key == "when") {
                    if (!parseNumber(&spec->when))
                        return false;
                } else if (key == "target") {
                    u64 value = 0;
                    if (!parseNumber(&value) || value > ~u32{0})
                        return fail("bad \"target\"");
                    spec->target = static_cast<u32>(value);
                } else if (key == "bit") {
                    u64 value = 0;
                    if (!parseNumber(&value) || value > 31)
                        return fail("bad \"bit\"");
                    spec->bit = static_cast<u32>(value);
                } else if (key == "core") {
                    u64 value = 0;
                    if (!parseNumber(&value) || value > ~u32{0})
                        return fail("bad \"core\"");
                    spec->core = static_cast<u32>(value);
                } else {
                    return fail("unknown key \"" + key + "\"");
                }
                skipWs();
            } while (consumeIf(','));
        }
        return expect('}');
    }

    std::string_view text_;
    std::string *error_;
    size_t pos_ = 0;
};

}  // namespace

bool
parseFaultPlan(std::string_view text, FaultPlan *out, std::string *error)
{
    FaultPlan plan;
    // Autodetect: a JSON document starts with '{'.
    size_t first = 0;
    while (first < text.size() &&
           std::isspace(static_cast<unsigned char>(text[first])))
        ++first;
    if (first < text.size() && text[first] == '{') {
        if (!PlanJsonParser(text, error).parse(&plan))
            return false;
        *out = std::move(plan);
        return true;
    }

    // Compact syntax: specs separated by newlines or commas, with '#'
    // comments running to end of line.
    std::string current;
    const auto flush = [&]() -> bool {
        // Trim surrounding whitespace.
        size_t b = 0, e = current.size();
        while (b < e && std::isspace(static_cast<unsigned char>(
                            current[b])))
            ++b;
        while (e > b && std::isspace(static_cast<unsigned char>(
                            current[e - 1])))
            --e;
        if (b == e)
            return true;
        FaultSpec spec;
        if (!parseFaultSpec(current.substr(b, e - b), &spec, error))
            return false;
        plan.specs.push_back(spec);
        return true;
    };
    bool in_comment = false;
    for (char c : text) {
        if (c == '\n') {
            in_comment = false;
            if (!flush())
                return false;
            current.clear();
        } else if (in_comment) {
            // skip
        } else if (c == '#') {
            in_comment = true;
        } else if (c == ',') {
            if (!flush())
                return false;
            current.clear();
        } else {
            current += c;
        }
    }
    if (!flush())
        return false;
    *out = std::move(plan);
    return true;
}

std::string
faultSpecJson(const FaultSpec &spec)
{
    char buf[160];
    std::snprintf(
        buf, sizeof(buf),
        "{\"kind\": \"%s\", \"trigger\": \"%s\", \"when\": %llu, "
        "\"target\": %u, \"bit\": %u",
        std::string(faultKindName(spec.kind)).c_str(),
        spec.trigger == FaultTrigger::kCycle ? "cycle" : "commit",
        static_cast<unsigned long long>(spec.when), spec.target,
        spec.bit);
    std::string out = buf;
    if (spec.kind == FaultKind::kFfifoFlip) {
        out += ", \"field\": \"";
        out += packetFieldName(spec.field);
        out += "\"";
    }
    if (spec.core != 0) {
        out += ", \"core\": ";
        out += std::to_string(spec.core);
    }
    out += "}";
    return out;
}

std::string
faultPlanJson(const FaultPlan &plan)
{
    std::string out = "{\"faults\": [";
    for (size_t i = 0; i < plan.specs.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += faultSpecJson(plan.specs[i]);
    }
    out += "]}";
    return out;
}

std::string
validateFaultPlan(const FaultPlan &plan)
{
    for (const FaultSpec &spec : plan.specs) {
        const std::string where =
            "fault '" + formatFaultSpec(spec) + "': ";
        if (spec.when == 0)
            return where + "trigger point must be >= 1";
        u32 max_bit = 31;
        switch (spec.kind) {
          case FaultKind::kRegFlip:
            if (spec.target == 0 || spec.target >= kNumPhysRegs) {
                return where + "register target must be in [1, " +
                       std::to_string(kNumPhysRegs - 1) + "]";
            }
            break;
          case FaultKind::kShadowRegFlip:
            if (spec.target == 0 || spec.target >= kNumPhysRegs) {
                return where + "register target must be in [1, " +
                       std::to_string(kNumPhysRegs - 1) + "]";
            }
            max_bit = 7;
            break;
          case FaultKind::kMemFlip:
            max_bit = 7;
            break;
          case FaultKind::kMetaFlip:
            if (spec.target & 3)
                return where + "meta target must be a word address";
            max_bit = 7;
            break;
          case FaultKind::kFfifoFlip:
          case FaultKind::kSbFlip:
            break;
        }
        if (spec.bit > max_bit) {
            return where + "bit must be <= " + std::to_string(max_bit) +
                   " for this kind";
        }
    }
    return {};
}

}  // namespace flexcore
