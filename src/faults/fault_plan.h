/**
 * @file
 * Deterministic fault-injection plans: a FaultPlan is a list of
 * FaultSpec entries, each naming one state element to corrupt (one bit
 * flip or packet-field corruption) at one exact trigger point — a core
 * cycle number or a commit index. Plans come from three sources: the
 * compact CLI spec syntax (`reg@i1200:t17:b3`), a JSON plan document
 * ({"faults": [...]}) and seeded random generation in the coverage
 * campaign tool (src/faults/coverage.h). The same plan always produces
 * the same injections, independent of host, thread count, or
 * fast-forwarding (docs/fault_injection.md).
 *
 * This header is dependency-light on purpose (common/types only) so
 * sim/config.h can embed a FaultPlan without include cycles.
 */

#ifndef FLEXCORE_FAULTS_FAULT_PLAN_H_
#define FLEXCORE_FAULTS_FAULT_PLAN_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace flexcore {

/** Which state element a fault corrupts. */
enum class FaultKind : u8 {
    kRegFlip,        //!< architectural register file (physical index)
    kShadowRegFlip,  //!< monitor shadow register file (fabric, §III-E)
    kMemFlip,        //!< backing memory byte (also invalidates µops)
    kMetaFlip,       //!< monitor per-word tag store (meta-data state)
    kFfifoFlip,      //!< queued forward-FIFO packet field
    kSbFlip,         //!< store-buffer entry address (timing-only)
};
inline constexpr unsigned kNumFaultKinds = 6;

/** When a fault fires. */
enum class FaultTrigger : u8 {
    kCycle,    //!< at the start of core cycle `when`
    kCommit,   //!< right after the `when`-th committed instruction
};

/** Packet field targeted by kFfifoFlip. */
enum class PacketField : u8 { kRes, kSrcv1, kSrcv2, kAddr, kDest };

std::string_view faultKindName(FaultKind kind);
std::string_view packetFieldName(PacketField field);
/** Parse a kind/field name; returns false on unknown names. */
bool parseFaultKind(std::string_view name, FaultKind *out);
bool parsePacketField(std::string_view name, PacketField *out);

/** One scheduled fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::kRegFlip;
    FaultTrigger trigger = FaultTrigger::kCycle;
    u64 when = 0;    //!< cycle number or 1-based commit index
    /**
     * Kind-dependent target selector: physical register index
     * (kRegFlip/kShadowRegFlip), byte address (kMemFlip), data word
     * address (kMetaFlip), or queue-position pick modulo the current
     * occupancy (kFfifoFlip/kSbFlip).
     */
    u32 target = 0;
    u32 bit = 0;     //!< bit to flip within the targeted element
    PacketField field = PacketField::kRes;   //!< kFfifoFlip only
    /**
     * Core whose state the fault targets (register file, store buffer,
     * per-core monitor meta-data, ...). 0 on single-core systems;
     * SystemConfig::finalize() rejects plans naming a core at or above
     * num_cores.
     */
    u32 core = 0;
};

/**
 * Compact one-fault spec syntax (CLI `--inject`, JSON "spec" echoes):
 *
 *   KIND@TRIGGER:tTARGET:bBIT[:fFIELD][:cCORE]
 *
 * where KIND is reg|shadow|mem|meta|ffifo|sb, TRIGGER is cN (cycle N)
 * or iN (commit index N), TARGET accepts decimal or 0x hex, and FIELD
 * (ffifo only) is res|srcv1|srcv2|addr|dest. A trailing cN after the
 * trigger names the target core on multi-core systems (the leading cN
 * is always the trigger; a second one is the core). Examples:
 *
 *   reg@i1200:t17:b3       flip bit 3 of phys reg 17 after commit 1200
 *   mem@c5000:t0x2040:b5   flip bit 5 of byte 0x2040 at cycle 5000
 *   ffifo@c900:t2:b12:fsrcv1
 *   reg@i800:t17:b3:c1     same flip, but in core 1's register file
 */
std::string formatFaultSpec(const FaultSpec &spec);
/** Parse the compact syntax; on failure returns false and sets @p error. */
bool parseFaultSpec(std::string_view text, FaultSpec *out,
                    std::string *error);

/** A full injection schedule. */
struct FaultPlan
{
    std::vector<FaultSpec> specs;

    bool empty() const { return specs.empty(); }
    size_t size() const { return specs.size(); }

    /** Canonical one-line rendering: specs joined with ','. */
    std::string format() const;
};

/**
 * Parse a plan document: either a JSON object {"faults": [{"kind":
 * "reg", "trigger": "commit", "when": 1200, "target": 17, "bit": 3,
 * "field": "res"}, ...]} (detected by a leading '{'), or newline/
 * comma-separated compact specs with '#' comments. Returns false and
 * sets @p error on malformed input.
 */
bool parseFaultPlan(std::string_view text, FaultPlan *out,
                    std::string *error);

/** Canonical JSON rendering of a plan (inverse of the JSON parse). */
std::string faultPlanJson(const FaultPlan &plan);

/** One spec as a JSON object (the element shape of faultPlanJson). */
std::string faultSpecJson(const FaultSpec &spec);

/**
 * Static validation: bit widths per kind (32 for kRegFlip/kFfifoFlip,
 * 8 for shadow/memory/meta flips), register targets below the physical
 * register file size, word-aligned kMetaFlip targets, non-zero trigger
 * points. Returns an empty string when valid, else the first problem.
 */
std::string validateFaultPlan(const FaultPlan &plan);

}  // namespace flexcore

#endif  // FLEXCORE_FAULTS_FAULT_PLAN_H_
