/**
 * @file
 * Outcome classification for fault-injection runs. Every run with a
 * non-empty FaultPlan lands in exactly one FaultOutcome bucket — the
 * same taxonomy the paper's soft-error discussion uses (detected /
 * benign / silent data corruption / crash / hang), which is what the
 * coverage campaign aggregates per {monitor, workload, fault model}
 * cell.
 */

#ifndef FLEXCORE_FAULTS_OUTCOME_H_
#define FLEXCORE_FAULTS_OUTCOME_H_

#include <string>
#include <string_view>

#include "faults/injector.h"
#include "sim/system.h"

namespace flexcore {

enum class FaultOutcome : u8 {
    kNotClassified,  //!< run did not carry a fault plan
    kDetected,       //!< a monitor check trapped after injection
    kBenign,         //!< program exited with golden console output
    kSdc,            //!< exited, but output differs (silent corruption)
    kCoreTrap,       //!< core-detected error (crash), not the monitor
    kHang,           //!< watchdog fired or the cycle limit was hit
};

inline constexpr unsigned kNumFaultOutcomes = 6;

std::string_view faultOutcomeName(FaultOutcome outcome);

/** Per-run fault verdict attached to SimOutcome. */
struct FaultReport
{
    FaultOutcome outcome = FaultOutcome::kNotClassified;
    u64 applied = 0;    //!< faults that landed in live state
    u64 skipped = 0;    //!< faults whose target was absent (empty FIFO)
    Cycle first_injection_cycle = kCycleNever;
    /** Detection latency in cycles (trap cycle minus first injection
     * cycle); -1 for every outcome except kDetected. */
    s64 detection_latency = -1;
};

/**
 * Classify one finished run. @p expected_console is the workload's
 * golden output (null when unknown: exits then classify as benign,
 * since SDC cannot be told apart without a reference).
 */
FaultReport classifyFaultRun(const RunResult &result,
                             const InjectionLog &log,
                             const std::string *expected_console);

/**
 * Human-readable first-difference summary of two byte strings, bounded
 * to @p max_bytes of excerpt from each side (non-printables escaped).
 * Empty when the strings are equal.
 */
std::string boundedDiff(std::string_view expected,
                        std::string_view actual, size_t max_bytes = 48);

}  // namespace flexcore

#endif  // FLEXCORE_FAULTS_OUTCOME_H_
