#include "faults/injector.h"

#include <algorithm>

#include "common/trace_event.h"
#include "sim/system.h"

namespace flexcore {

FaultInjector::FaultInjector(System *system, const FaultPlan &plan)
    : sys_(system)
{
    for (const FaultSpec &spec : plan.specs) {
        if (spec.trigger == FaultTrigger::kCycle)
            by_cycle_.push_back(spec);
        else
            by_commit_.push_back(spec);
    }
    const auto by_when = [](const FaultSpec &a, const FaultSpec &b) {
        return a.when < b.when;
    };
    std::stable_sort(by_cycle_.begin(), by_cycle_.end(), by_when);
    std::stable_sort(by_commit_.begin(), by_commit_.end(), by_when);
}

void
FaultInjector::applyDueCycleFaults(Cycle now)
{
    while (cycle_idx_ < by_cycle_.size() &&
           by_cycle_[cycle_idx_].when <= now)
        apply(by_cycle_[cycle_idx_++], now);
}

void
FaultInjector::apply(const FaultSpec &spec, Cycle now)
{
    // spec.core names the target core's state element; finalize()
    // guarantees it is in range, and on single-core systems it is
    // always 0 so every lookup below resolves to the classic target.
    bool applied = true;
    switch (spec.kind) {
      case FaultKind::kRegFlip:
        sys_->core(spec.core).regs().flipBitPhys(spec.target, spec.bit);
        break;

      case FaultKind::kShadowRegFlip:
        if (Monitor *monitor = sys_->monitorForCore(spec.core))
            monitor->regTags().flipBit(static_cast<u16>(spec.target),
                                       spec.bit);
        else
            applied = false;
        break;

      case FaultKind::kMemFlip:
        sys_->memoryAt(spec.core).flipBit(spec.target, spec.bit);
        // The flipped byte may sit in decoded text; force a re-decode
        // so the corrupted word is what actually executes.
        sys_->core(spec.core).invalidateUopsAt(spec.target);
        break;

      case FaultKind::kMetaFlip:
        if (Monitor *monitor = sys_->monitorForCore(spec.core)) {
            TagStore &tags = monitor->memTags();
            tags.write(spec.target,
                       tags.read(spec.target) ^
                           static_cast<u8>(1u << (spec.bit & 7)));
        } else {
            applied = false;
        }
        break;

      case FaultKind::kFfifoFlip: {
        FlexInterface *iface = sys_->ifaceForCore(spec.core);
        CommitPacket *pkt =
            iface ? iface->queuedPacket(spec.target) : nullptr;
        if (!pkt) {
            applied = false;   // empty FIFO (or no interface at all)
            break;
        }
        const u32 mask = 1u << (spec.bit & 31);
        switch (spec.field) {
          case PacketField::kRes: pkt->res ^= mask; break;
          case PacketField::kSrcv1: pkt->srcv1 ^= mask; break;
          case PacketField::kSrcv2: pkt->srcv2 ^= mask; break;
          case PacketField::kAddr: pkt->addr ^= mask; break;
          case PacketField::kDest:
            // DEST is the 9-bit physical register number (Table II).
            pkt->dest ^= static_cast<u16>(1u << (spec.bit % 9));
            break;
        }
        break;
      }

      case FaultKind::kSbFlip:
        applied = sys_->core(spec.core).storeBuffer().corruptEntry(
            spec.target, spec.bit);
        break;
    }

    if (applied) {
        ++log_.applied;
        if (log_.first_cycle == kCycleNever)
            log_.first_cycle = now;
        if (trace_) {
            trace_->faultMark(now, static_cast<u8>(spec.kind),
                              spec.target, static_cast<u8>(spec.bit));
        }
    } else {
        ++log_.skipped;
    }
}

}  // namespace flexcore
