#include "faults/outcome.h"

#include <algorithm>
#include <cstdio>

namespace flexcore {

std::string_view
faultOutcomeName(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::kNotClassified: return "not_classified";
      case FaultOutcome::kDetected: return "detected";
      case FaultOutcome::kBenign: return "benign";
      case FaultOutcome::kSdc: return "sdc";
      case FaultOutcome::kCoreTrap: return "core_trap";
      case FaultOutcome::kHang: return "hang";
    }
    return "?";
}

FaultReport
classifyFaultRun(const RunResult &result, const InjectionLog &log,
                 const std::string *expected_console)
{
    FaultReport report;
    report.applied = log.applied;
    report.skipped = log.skipped;
    report.first_injection_cycle = log.first_cycle;

    switch (result.exit) {
      case RunResult::Exit::kMonitorTrap:
        report.outcome = FaultOutcome::kDetected;
        if (log.first_cycle != kCycleNever &&
            result.cycles >= log.first_cycle) {
            report.detection_latency =
                static_cast<s64>(result.cycles - log.first_cycle);
        }
        break;
      case RunResult::Exit::kCoreTrap:
        report.outcome = FaultOutcome::kCoreTrap;
        break;
      case RunResult::Exit::kHang:
      case RunResult::Exit::kMaxCycles:
      case RunResult::Exit::kDeadline:
        // kMaxCycles is a hang the watchdog was not armed (or too
        // slow) to catch; both mean the program never finished.
        // kDeadline (the serving layer cancelled the run) is an
        // incomplete observation — callers should not reach this with
        // a cancelled run, but if one does, "never finished" is the
        // honest classification.
        report.outcome = FaultOutcome::kHang;
        break;
      case RunResult::Exit::kExited:
        report.outcome = (expected_console &&
                          result.console != *expected_console)
                             ? FaultOutcome::kSdc
                             : FaultOutcome::kBenign;
        break;
    }
    return report;
}

namespace {

void
appendEscaped(std::string *out, std::string_view bytes)
{
    for (char c : bytes) {
        const auto u = static_cast<unsigned char>(c);
        if (c == '\n') {
            *out += "\\n";
        } else if (c == '\t') {
            *out += "\\t";
        } else if (c == '\\') {
            *out += "\\\\";
        } else if (c == '"') {
            *out += "\\\"";
        } else if (u >= 0x20 && u < 0x7f) {
            *out += c;
        } else {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\x%02x", u);
            *out += buf;
        }
    }
}

void
appendExcerpt(std::string *out, std::string_view s, size_t from,
              size_t max_bytes)
{
    *out += '"';
    if (from < s.size()) {
        const size_t n = std::min(max_bytes, s.size() - from);
        appendEscaped(out, s.substr(from, n));
        if (from + n < s.size())
            *out += "...";
    }
    *out += '"';
}

}  // namespace

std::string
boundedDiff(std::string_view expected, std::string_view actual,
            size_t max_bytes)
{
    if (expected == actual)
        return {};
    const size_t common = std::min(expected.size(), actual.size());
    size_t at = 0;
    while (at < common && expected[at] == actual[at])
        ++at;
    std::string out = "first difference at byte " + std::to_string(at) +
                      " (expected " + std::to_string(expected.size()) +
                      " bytes, got " + std::to_string(actual.size()) +
                      "): expected ";
    appendExcerpt(&out, expected, at, max_bytes);
    out += " vs actual ";
    appendExcerpt(&out, actual, at, max_bytes);
    return out;
}

}  // namespace flexcore
