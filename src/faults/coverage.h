/**
 * @file
 * Detection-coverage campaigns: seeded random fault trials swept over
 * {monitor} x {workload} x {fault model}, classified per run and
 * aggregated into a coverage table (detection rate + latency histogram
 * per cell). Built on the parallel campaign runner, so the JSON output
 * is byte-identical for any --jobs count; every trial's fault is a
 * pure function of (campaign seed, workload, monitor, model, trial
 * index) and a golden reference run of the same cell.
 */

#ifndef FLEXCORE_FAULTS_COVERAGE_H_
#define FLEXCORE_FAULTS_COVERAGE_H_

#include <array>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "faults/outcome.h"
#include "sim/campaign.h"

namespace flexcore {

/** Declarative coverage campaign over monitors x workloads x models. */
struct FaultCovSpec
{
    std::string name = "faultcov";
    std::vector<Workload> workloads;
    std::vector<MonitorKind> monitors;
    /** Fault models; each trial draws one FaultSpec of this kind. */
    std::vector<FaultKind> models;
    unsigned trials = 20;   //!< per cell
    u64 seed = 1;           //!< campaign seed, part of every trial key
    /**
     * Template config for every run (mode, watchdog_commits,
     * fast_forward, ...). Per-job max_cycles is derived from the
     * cell's golden run; watchdog_commits is taken from here.
     */
    SystemConfig base;
};

/** Fault-free reference run of one (workload, monitor) cell. */
struct GoldenRef
{
    std::string workload;
    MonitorKind monitor = MonitorKind::kNone;
    Cycle cycles = 0;
    u64 instructions = 0;
};

/** One classified trial. */
struct FaultRunRow
{
    std::string key;
    std::string workload;
    MonitorKind monitor = MonitorKind::kNone;
    FaultKind model = FaultKind::kRegFlip;
    FaultSpec spec;
    FaultReport report;
    RunResult::Exit exit = RunResult::Exit::kMaxCycles;
    Cycle cycles = 0;
    std::string trap_reason;
};

/** Detection-latency aggregate (cycles, log2-bucketed histogram). */
struct LatencyStats
{
    static constexpr unsigned kBuckets = 20;

    u64 count = 0;
    s64 min = -1;
    s64 max = -1;
    double mean = 0.0;
    /** bucket b counts latencies with floor(log2(max(lat,1))) == b,
     * clamped to the last bucket. */
    std::array<u64, kBuckets> log2_hist{};

    void add(s64 latency);
};

/** Aggregated outcome counts of one (workload, monitor, model) cell. */
struct FaultCell
{
    std::string workload;
    MonitorKind monitor = MonitorKind::kNone;
    FaultKind model = FaultKind::kRegFlip;
    u64 trials = 0;
    /** Runs whose fault found no live target (e.g. empty FIFO). */
    u64 skipped_runs = 0;
    std::array<u64, kNumFaultOutcomes> counts{};
    LatencyStats latency;

    u64 outcomes(FaultOutcome o) const
    {
        return counts[static_cast<size_t>(o)];
    }
    double detectionRate() const
    {
        return trials ? static_cast<double>(
                            outcomes(FaultOutcome::kDetected)) /
                            static_cast<double>(trials)
                      : 0.0;
    }
};

struct FaultCovResult
{
    std::vector<GoldenRef> goldens;   //!< sorted by (workload, monitor)
    std::vector<FaultCell> cells;     //!< sorted by cell key
    std::vector<FaultRunRow> runs;    //!< sorted by trial key
};

/**
 * Run the campaign: one golden job per (workload, monitor) cell, then
 * trials x cells fault jobs, all through runCampaign (parallel,
 * deterministic merge). Fatal on invalid spec (no workloads/monitors/
 * models, or a golden run that does not exit cleanly).
 */
FaultCovResult runFaultCoverage(const FaultCovSpec &spec,
                                const CampaignOptions &opts = {});

/** Canonical JSON (byte-identical for any worker count). */
std::string faultCovJson(const FaultCovSpec &spec,
                         const FaultCovResult &result);

/** Human-readable coverage table. */
std::string faultCovSummary(const FaultCovResult &result);

}  // namespace flexcore

#endif  // FLEXCORE_FAULTS_COVERAGE_H_
