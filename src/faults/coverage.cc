#include "faults/coverage.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "assembler/assembler.h"
#include "common/jsonutil.h"
#include "common/log.h"
#include "common/rng.h"
#include "isa/registers.h"

namespace flexcore {

void
LatencyStats::add(s64 latency)
{
    if (latency < 0)
        return;
    if (count == 0 || latency < min)
        min = latency;
    if (count == 0 || latency > max)
        max = latency;
    mean += (static_cast<double>(latency) - mean) /
            static_cast<double>(count + 1);
    ++count;
    unsigned bucket = 0;
    for (u64 v = static_cast<u64>(latency); v > 1 && bucket + 1 < kBuckets;
         v >>= 1)
        ++bucket;
    ++log2_hist[bucket];
}

namespace {

std::string
goldenKey(std::string_view workload, MonitorKind monitor)
{
    std::string key = "golden|";
    key += workload;
    key += '|';
    key += monitorKindName(monitor);
    return key;
}

std::string
trialKey(std::string_view workload, MonitorKind monitor, FaultKind model,
         u64 seed, unsigned trial)
{
    std::string key;
    key += workload;
    key += '|';
    key += monitorKindName(monitor);
    key += '|';
    key += faultKindName(model);
    char buf[48];
    std::snprintf(buf, sizeof buf, "|s%" PRIu64 "|t%05u", seed, trial);
    key += buf;
    return key;
}

u32
belowClamped(Rng *rng, u64 bound)
{
    const u64 capped =
        std::min<u64>(bound ? bound : 1, 0xffffffffull);
    return rng->below(static_cast<u32>(capped));
}

/**
 * Draw one fault of the given model. Trigger points land inside the
 * golden run (commit index within the instruction count for register
 * flips, cycle within the golden cycle count otherwise); memory and
 * meta targets land inside the program image.
 */
FaultSpec
drawFault(FaultKind kind, Rng *rng, const GoldenRef &golden, Addr base,
          u32 image_bytes, u32 num_cores)
{
    FaultSpec spec;
    spec.kind = kind;
    switch (kind) {
      case FaultKind::kRegFlip:
        spec.trigger = FaultTrigger::kCommit;
        spec.when = 1 + belowClamped(rng, golden.instructions);
        spec.target = 1 + rng->below(kNumPhysRegs - 1);
        spec.bit = rng->below(32);
        break;
      case FaultKind::kShadowRegFlip:
        spec.trigger = FaultTrigger::kCommit;
        spec.when = 1 + belowClamped(rng, golden.instructions);
        spec.target = 1 + rng->below(kNumPhysRegs - 1);
        spec.bit = rng->below(8);
        break;
      case FaultKind::kMemFlip:
        spec.trigger = FaultTrigger::kCycle;
        spec.when = 1 + belowClamped(rng, golden.cycles);
        spec.target = base + rng->below(image_bytes);
        spec.bit = rng->below(8);
        break;
      case FaultKind::kMetaFlip:
        spec.trigger = FaultTrigger::kCycle;
        spec.when = 1 + belowClamped(rng, golden.cycles);
        spec.target =
            base + 4 * rng->below(std::max<u32>(image_bytes / 4, 1));
        spec.bit = rng->below(8);
        break;
      case FaultKind::kFfifoFlip:
        spec.trigger = FaultTrigger::kCycle;
        spec.when = 1 + belowClamped(rng, golden.cycles);
        spec.target = rng->below(16);   // pick modulo occupancy
        spec.bit = rng->below(32);
        spec.field = static_cast<PacketField>(rng->below(5));
        break;
      case FaultKind::kSbFlip:
        spec.trigger = FaultTrigger::kCycle;
        spec.when = 1 + belowClamped(rng, golden.cycles);
        spec.target = rng->below(8);    // pick modulo occupancy
        spec.bit = rng->below(32);
        break;
    }
    // Multi-core campaigns spread trials over every core's state, so
    // cross-core scenarios (flip one core's state, detect through
    // another's monitor or the shared fabric) arise naturally. The
    // extra draw happens only when num_cores > 1: single-core RNG
    // streams — and therefore existing coverage JSON — are untouched.
    if (num_cores > 1)
        spec.core = rng->below(num_cores);
    return spec;
}

struct TrialMeta
{
    std::string workload;
    MonitorKind monitor = MonitorKind::kNone;
    FaultKind model = FaultKind::kRegFlip;
    FaultSpec spec;
};

}  // namespace

FaultCovResult
runFaultCoverage(const FaultCovSpec &spec, const CampaignOptions &opts)
{
    if (spec.workloads.empty() || spec.monitors.empty() ||
        spec.models.empty() || spec.trials == 0) {
        FLEX_FATAL("fault coverage campaign '", spec.name,
                   "' needs at least one workload, monitor, model, and "
                   "trial");
    }

    // Program image extents for memory/meta target generation.
    std::map<std::string, std::pair<Addr, u32>> images;
    for (const Workload &workload : spec.workloads) {
        const Program prog = Assembler::assembleOrDie(workload.source);
        images[workload.name] = {prog.base(), prog.size()};
    }

    FaultCovResult result;

    // Phase 1: golden reference runs, one per (workload, monitor).
    // Verified against the golden model, so the cycle/instruction
    // references (and the SDC baseline) come from correct runs.
    std::vector<CampaignJob> golden_jobs;
    for (const Workload &workload : spec.workloads) {
        for (MonitorKind monitor : spec.monitors) {
            CampaignJob job;
            job.key = goldenKey(workload.name, monitor);
            job.workload = workload;
            job.config = spec.base;
            job.config.monitor = monitor;
            golden_jobs.push_back(std::move(job));
        }
    }
    CampaignOptions golden_opts = opts;
    golden_opts.verify = true;
    golden_opts.label = opts.label + ":golden";
    golden_opts.stat_paths.clear();
    std::map<std::string, GoldenRef> goldens;
    for (const CampaignResult &row :
         runCampaign(golden_jobs, golden_opts)) {
        GoldenRef ref;
        ref.workload = row.workload;
        ref.monitor = row.monitor;
        ref.cycles = row.outcome.result.cycles;
        ref.instructions = row.outcome.result.instructions;
        goldens[row.key] = ref;
        result.goldens.push_back(std::move(ref));
    }

    // Phase 2: seeded fault trials. Each trial's fault is drawn from
    // an RNG seeded by its key (which embeds the campaign seed), so
    // the schedule is independent of worker count and run order.
    std::vector<CampaignJob> fault_jobs;
    std::map<std::string, TrialMeta> metas;
    for (const Workload &workload : spec.workloads) {
        const auto [image_base, image_bytes] = images[workload.name];
        for (MonitorKind monitor : spec.monitors) {
            const GoldenRef &golden =
                goldens[goldenKey(workload.name, monitor)];
            for (FaultKind model : spec.models) {
                for (unsigned t = 0; t < spec.trials; ++t) {
                    const std::string key = trialKey(
                        workload.name, monitor, model, spec.seed, t);
                    Rng rng(jobSeed(key));
                    TrialMeta meta;
                    meta.workload = workload.name;
                    meta.monitor = monitor;
                    meta.model = model;
                    meta.spec = drawFault(model, &rng, golden,
                                          image_base, image_bytes,
                                          spec.base.num_cores);

                    CampaignJob job;
                    job.key = key;
                    job.workload = workload;
                    job.config = spec.base;
                    job.config.monitor = monitor;
                    job.config.faults.specs = {meta.spec};
                    // Leave ample room past the golden cycle count so
                    // slow-but-finishing runs still exit; real hangs
                    // are cut short by the watchdog long before this.
                    job.config.max_cycles =
                        golden.cycles * 8 + 100'000;
                    metas[key] = std::move(meta);
                    fault_jobs.push_back(std::move(job));
                }
            }
        }
    }
    CampaignOptions fault_opts = opts;
    fault_opts.verify = true;   // supplies the golden console for SDC
    fault_opts.stat_paths.clear();
    const std::vector<CampaignResult> rows =
        runCampaign(fault_jobs, fault_opts);

    // Merge: rows are sorted by key; cells aggregate in key order.
    std::map<std::string, FaultCell> cells;
    for (const CampaignResult &row : rows) {
        const TrialMeta &meta = metas.at(row.key);
        FaultRunRow run;
        run.key = row.key;
        run.workload = meta.workload;
        run.monitor = meta.monitor;
        run.model = meta.model;
        run.spec = meta.spec;
        run.report = row.outcome.fault;
        run.exit = row.outcome.result.exit;
        run.cycles = row.outcome.result.cycles;
        run.trap_reason = row.outcome.result.trap_reason;

        std::string cell_key = meta.workload;
        cell_key += '|';
        cell_key += monitorKindName(meta.monitor);
        cell_key += '|';
        cell_key += faultKindName(meta.model);
        FaultCell &cell = cells[cell_key];
        if (cell.trials == 0) {
            cell.workload = meta.workload;
            cell.monitor = meta.monitor;
            cell.model = meta.model;
        }
        ++cell.trials;
        ++cell.counts[static_cast<size_t>(run.report.outcome)];
        if (run.report.applied == 0)
            ++cell.skipped_runs;
        if (run.report.outcome == FaultOutcome::kDetected)
            cell.latency.add(run.report.detection_latency);

        result.runs.push_back(std::move(run));
    }
    result.cells.reserve(cells.size());
    for (auto &[key, cell] : cells)
        result.cells.push_back(std::move(cell));
    return result;
}

std::string
faultCovJson(const FaultCovSpec &spec, const FaultCovResult &result)
{
    std::string out;
    char buf[512];
    out += "{\n  \"campaign\": \"";
    out += jsonEscape(spec.name);
    std::snprintf(buf, sizeof buf,
                  "\",\n  \"seed\": %" PRIu64
                  ",\n  \"trials\": %u,\n  \"watchdog_commits\": %" PRIu64
                  ",\n  \"goldens\": [\n",
                  spec.seed, spec.trials, spec.base.watchdog_commits);
    out += buf;
    for (size_t i = 0; i < result.goldens.size(); ++i) {
        const GoldenRef &g = result.goldens[i];
        std::snprintf(buf, sizeof buf,
                      "    {\"workload\": \"%s\", \"monitor\": \"%s\", "
                      "\"cycles\": %" PRIu64 ", \"instructions\": %" PRIu64
                      "}%s\n",
                      jsonEscape(g.workload).c_str(),
                      std::string(monitorKindName(g.monitor)).c_str(),
                      g.cycles, g.instructions,
                      i + 1 < result.goldens.size() ? "," : "");
        out += buf;
    }
    out += "  ],\n  \"cells\": [\n";
    for (size_t i = 0; i < result.cells.size(); ++i) {
        const FaultCell &c = result.cells[i];
        std::snprintf(
            buf, sizeof buf,
            "    {\"workload\": \"%s\", \"monitor\": \"%s\", "
            "\"model\": \"%s\", \"trials\": %" PRIu64
            ", \"detected\": %" PRIu64 ", \"benign\": %" PRIu64
            ", \"sdc\": %" PRIu64 ", \"core_trap\": %" PRIu64
            ", \"hang\": %" PRIu64 ", \"skipped_runs\": %" PRIu64
            ", \"detection_rate\": %.17g",
            jsonEscape(c.workload).c_str(),
            std::string(monitorKindName(c.monitor)).c_str(),
            std::string(faultKindName(c.model)).c_str(), c.trials,
            c.outcomes(FaultOutcome::kDetected),
            c.outcomes(FaultOutcome::kBenign),
            c.outcomes(FaultOutcome::kSdc),
            c.outcomes(FaultOutcome::kCoreTrap),
            c.outcomes(FaultOutcome::kHang), c.skipped_runs,
            c.detectionRate());
        out += buf;
        std::snprintf(buf, sizeof buf,
                      ", \"latency_min\": %" PRId64
                      ", \"latency_max\": %" PRId64
                      ", \"latency_mean\": %.17g, \"latency_log2_hist\": [",
                      c.latency.min, c.latency.max, c.latency.mean);
        out += buf;
        for (unsigned b = 0; b < LatencyStats::kBuckets; ++b) {
            if (b > 0)
                out += ", ";
            out += std::to_string(c.latency.log2_hist[b]);
        }
        out += "]}";
        out += i + 1 < result.cells.size() ? ",\n" : "\n";
    }
    out += "  ],\n  \"runs\": [\n";
    for (size_t i = 0; i < result.runs.size(); ++i) {
        const FaultRunRow &r = result.runs[i];
        std::snprintf(
            buf, sizeof buf,
            "    {\"key\": \"%s\", \"fault\": \"%s\", "
            "\"outcome\": \"%s\", \"exit\": \"%s\", \"cycles\": %" PRIu64
            ", \"applied\": %" PRIu64 ", \"skipped\": %" PRIu64
            ", \"injected_at\": %" PRId64 ", \"latency\": %" PRId64,
            jsonEscape(r.key).c_str(),
            formatFaultSpec(r.spec).c_str(),
            std::string(faultOutcomeName(r.report.outcome)).c_str(),
            std::string(exitName(r.exit)).c_str(), r.cycles,
            r.report.applied, r.report.skipped,
            r.report.first_injection_cycle == kCycleNever
                ? s64{-1}
                : static_cast<s64>(r.report.first_injection_cycle),
            r.report.detection_latency);
        out += buf;
        if (!r.trap_reason.empty()) {
            out += ", \"trap_reason\": \"";
            out += jsonEscape(r.trap_reason);
            out += "\"";
        }
        out += "}";
        out += i + 1 < result.runs.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string
faultCovSummary(const FaultCovResult &result)
{
    std::string out;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%-12s %-8s %-8s %6s %7s %5s %5s %6s %5s %10s\n",
                  "workload", "monitor", "model", "det%", "benign",
                  "sdc", "hang", "crash", "skip", "lat(mean)");
    out += buf;
    out += std::string(80, '-');
    out += '\n';
    for (const FaultCell &c : result.cells) {
        std::snprintf(
            buf, sizeof buf,
            "%-12s %-8s %-8s %5.1f%% %7" PRIu64 " %5" PRIu64 " %5" PRIu64
            " %6" PRIu64 " %5" PRIu64 " %10.1f\n",
            c.workload.c_str(),
            std::string(monitorKindName(c.monitor)).c_str(),
            std::string(faultKindName(c.model)).c_str(),
            100.0 * c.detectionRate(),
            c.outcomes(FaultOutcome::kBenign),
            c.outcomes(FaultOutcome::kSdc),
            c.outcomes(FaultOutcome::kHang),
            c.outcomes(FaultOutcome::kCoreTrap), c.skipped_runs,
            c.latency.count ? c.latency.mean : 0.0);
        out += buf;
    }
    return out;
}

}  // namespace flexcore
