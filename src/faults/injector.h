/**
 * @file
 * The run-time fault injector: owns a FaultPlan during one System run
 * and applies each FaultSpec at its exact trigger point through small
 * mutation hooks on the owning components (register file, memory,
 * store buffer, forward FIFO, monitor shadow/tag state).
 *
 * Hot-path contract: a System without a plan constructs no injector at
 * all, so the only per-cycle cost of the feature is one null-pointer
 * check in System::tick() and Core::finishInstruction(). With a plan
 * loaded, onCycle()/onCommit() are O(1) comparisons until a trigger is
 * due. nextCycleTrigger() lets System::fastForward() cap quiescent
 * stretches so a bulk skip can never jump over a scheduled injection —
 * injections land on the same cycle with fast-forward on or off.
 */

#ifndef FLEXCORE_FAULTS_INJECTOR_H_
#define FLEXCORE_FAULTS_INJECTOR_H_

#include <vector>

#include "faults/fault_plan.h"

namespace flexcore {

class System;
class TraceSink;

/** What the injector actually did during the run. */
struct InjectionLog
{
    u64 applied = 0;   //!< faults that mutated state
    u64 skipped = 0;   //!< triggers that found no target (empty queue)
    Cycle first_cycle = kCycleNever;   //!< cycle of the first mutation
};

class FaultInjector
{
  public:
    /** @p system must outlive the injector. The plan is copied. */
    FaultInjector(System *system, const FaultPlan &plan);

    /** Apply all cycle-triggered faults due at @p now (tick start). */
    void
    onCycle(Cycle now)
    {
        if (cycle_idx_ < by_cycle_.size() &&
            by_cycle_[cycle_idx_].when <= now)
            applyDueCycleFaults(now);
    }

    /** Apply commit-triggered faults due after commit @p commit_index. */
    void
    onCommit(u64 commit_index, Cycle now)
    {
        while (commit_idx_ < by_commit_.size() &&
               by_commit_[commit_idx_].when <= commit_index)
            apply(by_commit_[commit_idx_++], now);
    }

    /** Next pending cycle trigger (kCycleNever when none remain). */
    Cycle
    nextCycleTrigger() const
    {
        return cycle_idx_ < by_cycle_.size() ? by_cycle_[cycle_idx_].when
                                             : kCycleNever;
    }

    const InjectionLog &log() const { return log_; }

    /** Attach a trace sink (System::attachTrace forwards it): every
     * *applied* fault then emits a kFaultMark stream record. */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }

  private:
    void applyDueCycleFaults(Cycle now);
    void apply(const FaultSpec &spec, Cycle now);

    System *sys_;
    std::vector<FaultSpec> by_cycle_;    //!< sorted by when
    std::vector<FaultSpec> by_commit_;   //!< sorted by when
    size_t cycle_idx_ = 0;
    size_t commit_idx_ = 0;
    InjectionLog log_;
    TraceSink *trace_ = nullptr;
};

}  // namespace flexcore

#endif  // FLEXCORE_FAULTS_INJECTOR_H_
