#include "memory/cache.h"

#include "common/bitutil.h"
#include "common/log.h"

namespace flexcore {

Cache::Cache(StatGroup *parent, const std::string &name, CacheParams params)
    : params_(params),
      stats_(name, parent),
      accesses_(&stats_, "accesses", "total lookups"),
      hits_(&stats_, "hits", "lookups that hit"),
      misses_(&stats_, "misses", "lookups that missed"),
      writebacks_(&stats_, "writebacks", "dirty lines evicted"),
      miss_rate_(&stats_, "miss_rate", "misses / accesses",
                 [this]() {
                     return static_cast<double>(misses_.value()) /
                            static_cast<double>(accesses_.value());
                 })
{
    if (!isPowerOfTwo(params_.size_bytes) ||
        !isPowerOfTwo(params_.line_bytes) || params_.assoc == 0 ||
        params_.size_bytes % (params_.line_bytes * params_.assoc) != 0) {
        FLEX_FATAL("bad cache geometry: size=", params_.size_bytes,
                   " line=", params_.line_bytes, " assoc=", params_.assoc);
    }
    num_sets_ = params_.size_bytes / (params_.line_bytes * params_.assoc);
    line_shift_ = log2Exact(params_.line_bytes);
    tag_shift_ = line_shift_ + log2Exact(num_sets_);
    lines_.resize(static_cast<size_t>(num_sets_) * params_.assoc);
}

bool
Cache::probeSlot(Addr addr, u32 *slot) const
{
    const u32 set = setIndex(addr);
    const u32 tag = tagOf(addr);
    const Line *base = &lines_[static_cast<size_t>(set) * params_.assoc];
    for (u32 way = 0; way < params_.assoc; ++way) {
        if (base[way].valid && base[way].tag == tag) {
            *slot = set * params_.assoc + way;
            return true;
        }
    }
    return false;
}

bool
Cache::contains(Addr addr) const
{
    const u32 set = setIndex(addr);
    const u32 tag = tagOf(addr);
    const Line *base = &lines_[static_cast<size_t>(set) * params_.assoc];
    for (u32 way = 0; way < params_.assoc; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return true;
    }
    return false;
}

Cache::FillResult
Cache::fill(Addr addr, bool dirty)
{
    const u32 set = setIndex(addr);
    const u32 tag = tagOf(addr);
    Line *base = &lines_[static_cast<size_t>(set) * params_.assoc];

    // Refilling a line that is already present (e.g. two misses to the
    // same line raced) just refreshes it.
    for (u32 way = 0; way < params_.assoc; ++way) {
        if (base[way].valid && base[way].tag == tag) {
            base[way].lru = ++use_clock_;
            base[way].dirty = base[way].dirty || dirty;
            FillResult refreshed;
            refreshed.slot = set * params_.assoc + way;
            last_slot_ = refreshed.slot;
            return refreshed;
        }
    }

    Line *victim = base;
    for (u32 way = 1; way < params_.assoc; ++way) {
        Line &line = base[way];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (victim->valid && line.lru < victim->lru)
            victim = &line;
    }

    FillResult result;
    if (victim->valid) {
        result.evicted_valid = true;
        result.victim_addr =
            (static_cast<Addr>(victim->tag) << tag_shift_) |
            (set << line_shift_);
        if (victim->dirty) {
            result.evicted_dirty = true;
            ++writebacks_;
        }
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tag;
    victim->lru = ++use_clock_;
    result.slot = static_cast<u32>(victim - lines_.data());
    last_slot_ = result.slot;
    return result;
}

void
Cache::invalidateAll()
{
    for (Line &line : lines_)
        line = Line{};
}

}  // namespace flexcore
