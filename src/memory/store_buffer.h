/**
 * @file
 * Write-through store buffer between the Leon3 core and the shared
 * bus. Stores retire into the buffer in one cycle; the buffer drains
 * one entry at a time through the bus. A full buffer stalls the core.
 */

#ifndef FLEXCORE_MEMORY_STORE_BUFFER_H_
#define FLEXCORE_MEMORY_STORE_BUFFER_H_

#include <deque>

#include "common/stats.h"
#include "common/types.h"
#include "memory/bus.h"

namespace flexcore {

class StoreBuffer
{
  public:
    StoreBuffer(StatGroup *parent, Bus *bus, u32 depth = 8);

    /** Bus arbitration port drains issue on (the owning core's port). */
    void setBusPort(u8 port) { bus_port_ = port; }

    /** True when no entry can be accepted this cycle. */
    bool full() const { return entries_.size() >= depth_; }
    bool empty() const { return entries_.empty() && !draining_; }

    /**
     * Accept a store. Returns false (and counts a stall) when full; the
     * core must retry next cycle.
     */
    bool push(Addr addr);

    /** Advance one cycle: issue the head entry to the bus if idle. */
    void
    tick()
    {
        // Called every system cycle; the buffer is empty for the vast
        // majority of them, so the no-op path must not leave the
        // header.
        if (!draining_ && !entries_.empty())
            issueHead();
    }

    /**
     * Fault-injection hook: flip one bit of a queued entry's address.
     * @p pick selects an entry modulo the current occupancy. Returns
     * false (nothing corrupted) when the buffer is empty. The store
     * buffer is a timing model (the functional store already hit
     * memory at execute), so this perturbs bus traffic, not data.
     */
    bool
    corruptEntry(u32 pick, u32 bit)
    {
        if (entries_.empty())
            return false;
        entries_[pick % entries_.size()] ^= Addr{1} << (bit & 31);
        return true;
    }

  private:
    /** Put the head entry on the bus (slow path of tick()). */
    void issueHead();

    Bus *bus_;
    u32 depth_;
    u8 bus_port_ = 0;
    std::deque<Addr> entries_;
    bool draining_ = false;   // head entry is on the bus

    StatGroup stats_;
    Counter stores_;
    Counter full_stalls_;
};

}  // namespace flexcore

#endif  // FLEXCORE_MEMORY_STORE_BUFFER_H_
