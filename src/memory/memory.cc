#include "memory/memory.h"

#include <cstring>

#include "common/log.h"

namespace flexcore {

const u8 Memory::kZeroPage[Memory::kPageSize] = {};

void
Memory::setSharedWindow(Memory *backing, Addr base, u32 size)
{
    if ((base & (kPageSize - 1)) != 0 || (size & (kPageSize - 1)) != 0)
        FLEX_PANIC("shared window must be page-aligned");
    shared_ = backing;
    shared_base_ = base;
    shared_size_ = size;
}

u8 *
Memory::pageFor(Addr addr)
{
    const u32 page = addr >> kPageShift;
    if (page == last_page_idx_)
        return last_page_;
    if (shared_ && addr - shared_base_ < shared_size_) {
        // Shared-window pages live in (and are owned by) the backing
        // memory; they are stable heap blocks, so caching one in this
        // memory's one-entry page cache is safe.
        u8 *block = shared_->pageFor(addr);
        last_page_idx_ = page;
        last_page_ = block;
        return block;
    }
    auto it = pages_.find(page);
    if (it == pages_.end()) {
        auto storage = std::make_unique<u8[]>(kPageSize);
        std::memset(storage.get(), 0, kPageSize);
        it = pages_.emplace(page, std::move(storage)).first;
    }
    last_page_idx_ = page;
    last_page_ = it->second.get();
    return last_page_;
}

const u8 *
Memory::pageForRead(Addr addr) const
{
    const u32 page = addr >> kPageShift;
    if (page == last_page_idx_)
        return last_page_;
    const Memory *owner =
        (shared_ && addr - shared_base_ < shared_size_) ? shared_ : this;
    const auto it = owner->pages_.find(page);
    if (it == owner->pages_.end())
        return kZeroPage;   // uncached: a write may allocate it later
    last_page_idx_ = page;
    last_page_ = it->second.get();
    return last_page_;
}

u8
Memory::read8(Addr addr) const
{
    return pageForRead(addr)[addr & (kPageSize - 1)];
}

u16
Memory::read16(Addr addr) const
{
    if (addr & 1)
        FLEX_PANIC("unaligned 16-bit read at ", addr);
    const u8 *page = pageForRead(addr);
    const u32 off = addr & (kPageSize - 1);
    return static_cast<u16>((page[off] << 8) | page[off + 1]);
}

u32
Memory::read32(Addr addr) const
{
    if (addr & 3)
        FLEX_PANIC("unaligned 32-bit read at ", addr);
    const u8 *page = pageForRead(addr);
    const u32 off = addr & (kPageSize - 1);
    return (u32{page[off]} << 24) | (u32{page[off + 1]} << 16) |
           (u32{page[off + 2]} << 8) | u32{page[off + 3]};
}

void
Memory::write8(Addr addr, u8 value)
{
    pageFor(addr)[addr & (kPageSize - 1)] = value;
}

void
Memory::write16(Addr addr, u16 value)
{
    if (addr & 1)
        FLEX_PANIC("unaligned 16-bit write at ", addr);
    u8 *page = pageFor(addr);
    const u32 off = addr & (kPageSize - 1);
    page[off] = static_cast<u8>(value >> 8);
    page[off + 1] = static_cast<u8>(value);
}

void
Memory::write32(Addr addr, u32 value)
{
    if (addr & 3)
        FLEX_PANIC("unaligned 32-bit write at ", addr);
    u8 *page = pageFor(addr);
    const u32 off = addr & (kPageSize - 1);
    page[off] = static_cast<u8>(value >> 24);
    page[off + 1] = static_cast<u8>(value >> 16);
    page[off + 2] = static_cast<u8>(value >> 8);
    page[off + 3] = static_cast<u8>(value);
}

void
Memory::writeBlock(Addr addr, const u8 *data, u32 size)
{
    for (u32 i = 0; i < size; ++i)
        write8(addr + i, data[i]);
}

void
Memory::readBlock(Addr addr, u8 *data, u32 size) const
{
    for (u32 i = 0; i < size; ++i)
        data[i] = read8(addr + i);
}

}  // namespace flexcore
