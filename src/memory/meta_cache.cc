#include "memory/meta_cache.h"

#include "common/log.h"

namespace flexcore {

MetaCache::MetaCache(StatGroup *parent, CacheParams params,
                     bool bit_mask_writes)
    : cache_(parent, "meta_cache", params),
      bit_mask_writes_(bit_mask_writes)
{
}

bool
MetaCache::access(Addr meta_addr, bool is_write)
{
    return cache_.access(meta_addr, is_write);
}

Cache::FillResult
MetaCache::fill(Addr meta_addr, bool dirty)
{
    return cache_.fill(meta_addr, dirty);
}

Addr
MetaCache::metaByteAddr(Addr meta_base, Addr data_addr,
                        unsigned tag_bits_per_word)
{
    const Addr word_index = data_addr >> 2;
    switch (tag_bits_per_word) {
      case 1: return meta_base + (word_index >> 3);
      case 4: return meta_base + (word_index >> 1);
      case 8: return meta_base + word_index;
      default:
        FLEX_PANIC("unsupported tag width ", tag_bits_per_word);
    }
}

}  // namespace flexcore
