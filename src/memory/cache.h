/**
 * @file
 * Timing-only set-associative cache with true-LRU replacement. Holds
 * tags and per-line dirty bits, never data (the functional image lives
 * in Memory). Serves both the Leon3 L1 caches (write-through,
 * no-allocate: dirty bits unused) and, via the dirty-bit support, the
 * write-back meta-data cache.
 */

#ifndef FLEXCORE_MEMORY_CACHE_H_
#define FLEXCORE_MEMORY_CACHE_H_

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace flexcore {

struct CacheParams
{
    u32 size_bytes = 32 * 1024;
    u32 line_bytes = 32;
    u32 assoc = 4;
};

class Cache
{
  public:
    Cache(StatGroup *parent, const std::string &name, CacheParams params);

    /** Result of a fill: whether a dirty victim must be written back. */
    struct FillResult
    {
        bool evicted_dirty = false;
        Addr victim_addr = 0;
    };

    /**
     * Look up @p addr; updates LRU and the line's dirty bit on a hit.
     * Counts the access in the hit/miss statistics.
     */
    bool access(Addr addr, bool set_dirty = false);

    /** Probe without updating LRU or statistics. */
    bool contains(Addr addr) const;

    /**
     * Allocate a line for @p addr (after a miss was serviced),
     * evicting the LRU way. @p dirty marks the new line dirty
     * (write-allocate stores).
     */
    FillResult fill(Addr addr, bool dirty = false);

    /** Invalidate everything (used between benchmark runs). */
    void invalidateAll();

    u64 hits() const { return hits_.value(); }
    u64 misses() const { return misses_.value(); }

    const CacheParams &params() const { return params_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        u32 tag = 0;
        u64 lru = 0;    // larger == more recently used
    };

    u32 setIndex(Addr addr) const;
    u32 tagOf(Addr addr) const;

    CacheParams params_;
    u32 num_sets_;
    u32 line_shift_;
    std::vector<Line> lines_;   // num_sets_ * assoc, set-major
    u64 use_clock_ = 0;

    StatGroup stats_;
    Counter accesses_;
    Counter hits_;
    Counter misses_;
    Counter writebacks_;
    Formula miss_rate_;
};

}  // namespace flexcore

#endif  // FLEXCORE_MEMORY_CACHE_H_
