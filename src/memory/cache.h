/**
 * @file
 * Timing-only set-associative cache with true-LRU replacement. Holds
 * tags and per-line dirty bits, never data (the functional image lives
 * in Memory). Serves both the Leon3 L1 caches (write-through,
 * no-allocate: dirty bits unused) and, via the dirty-bit support, the
 * write-back meta-data cache.
 */

#ifndef FLEXCORE_MEMORY_CACHE_H_
#define FLEXCORE_MEMORY_CACHE_H_

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace flexcore {

struct CacheParams
{
    u32 size_bytes = 32 * 1024;
    u32 line_bytes = 32;
    u32 assoc = 4;
};

class Cache
{
  public:
    Cache(StatGroup *parent, const std::string &name, CacheParams params);

    /**
     * Result of a fill: which line slot now holds the new line, and
     * whether a valid (and possibly dirty) victim was displaced.
     */
    struct FillResult
    {
        bool evicted_valid = false;   //!< a valid line was displaced
        bool evicted_dirty = false;   //!< ...and it needs a writeback
        Addr victim_addr = 0;         //!< line address of the victim
        u32 slot = 0;                 //!< line slot (set * assoc + way)
    };

    /**
     * Look up @p addr; updates LRU and the line's dirty bit on a hit.
     * Counts the access in the hit/miss statistics. On a hit,
     * lastSlot() reports the line slot that matched. Runs once per
     * fetched instruction, so it is defined inline.
     */
    bool
    access(Addr addr, bool set_dirty = false)
    {
        ++accesses_;
        const u32 set = setIndex(addr);
        const u32 tag = tagOf(addr);
        Line *base = &lines_[static_cast<size_t>(set) * params_.assoc];
        for (u32 way = 0; way < params_.assoc; ++way) {
            Line &line = base[way];
            if (line.valid && line.tag == tag) {
                line.lru = ++use_clock_;
                line.dirty = line.dirty || set_dirty;
                last_slot_ = set * params_.assoc + way;
                ++hits_;
                return true;
            }
        }
        ++misses_;
        return false;
    }

    /**
     * Credit @p n accesses that all hit the line most recently touched
     * by access(). Used by the threaded burst engine, which performs
     * one real access() when it enters an I-line and batches the
     * remaining same-line hits: since repeated hits on one line only
     * bump that line's LRU stamp, the relative LRU order of all lines
     * is unchanged by folding them into the single real access.
     */
    void addBatchedHits(u64 n)
    {
        accesses_ += n;
        hits_ += n;
    }

    /** Probe without updating LRU or statistics. */
    bool contains(Addr addr) const;

    /**
     * Probe for @p addr without touching LRU or statistics; on a hit,
     * stores the matching line slot into @p slot. Lets side structures
     * keyed by line slot (the core's pre-decoded µop cache) find the
     * entry backing an address.
     */
    bool probeSlot(Addr addr, u32 *slot) const;

    /** Line slot touched by the most recent access() hit or fill(). */
    u32 lastSlot() const { return last_slot_; }

    /** Total line slots (sets × associativity). */
    u32 numLineSlots() const { return num_sets_ * params_.assoc; }

    /**
     * Allocate a line for @p addr (after a miss was serviced),
     * evicting the LRU way. @p dirty marks the new line dirty
     * (write-allocate stores).
     */
    FillResult fill(Addr addr, bool dirty = false);

    /** Invalidate everything (used between benchmark runs). */
    void invalidateAll();

    /**
     * Coherence hook: drop the line covering @p addr if present,
     * without touching LRU state or the hit/miss statistics. Returns
     * true when a line was invalidated. Used by the multi-core
     * write-through coherence point — a remote store to a shared
     * address invalidates the local copy, so the next local access
     * misses and refills over the bus (docs/multicore.md).
     */
    bool
    invalidateLine(Addr addr)
    {
        const u32 set = setIndex(addr);
        const u32 tag = tagOf(addr);
        Line *base = &lines_[static_cast<size_t>(set) * params_.assoc];
        for (u32 way = 0; way < params_.assoc; ++way) {
            Line &line = base[way];
            if (line.valid && line.tag == tag) {
                line.valid = false;
                line.dirty = false;
                return true;
            }
        }
        return false;
    }

    u64 hits() const { return hits_.value(); }
    u64 misses() const { return misses_.value(); }

    const CacheParams &params() const { return params_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        u32 tag = 0;
        u64 lru = 0;    // larger == more recently used
    };

    u32 setIndex(Addr addr) const
    {
        return (addr >> line_shift_) & (num_sets_ - 1);
    }
    u32 tagOf(Addr addr) const { return addr >> tag_shift_; }

    CacheParams params_;
    u32 num_sets_;
    u32 line_shift_;
    u32 tag_shift_;   //!< line_shift_ + log2(num_sets_), precomputed
    std::vector<Line> lines_;   // num_sets_ * assoc, set-major
    u64 use_clock_ = 0;
    u32 last_slot_ = 0;

    StatGroup stats_;
    Counter accesses_;
    Counter hits_;
    Counter misses_;
    Counter writebacks_;
    Formula miss_rate_;
};

}  // namespace flexcore

#endif  // FLEXCORE_MEMORY_CACHE_H_
