/**
 * @file
 * The dedicated meta-data L1 cache (§III-D). Write-back/write-allocate
 * with bit-granularity write enables: a tag update smaller than a word
 * completes in a single cache access. The ablation mode (bit-mask
 * writes disabled) models the paper's observation that without this
 * feature every sub-word update costs an explicit read followed by an
 * explicit write.
 */

#ifndef FLEXCORE_MEMORY_META_CACHE_H_
#define FLEXCORE_MEMORY_META_CACHE_H_

#include "memory/cache.h"

namespace flexcore {

class MetaCache
{
  public:
    MetaCache(StatGroup *parent, CacheParams params,
              bool bit_mask_writes = true);

    /**
     * Timing lookup for a meta-data access. Returns true on a hit.
     * Writes mark the line dirty on a hit; on a miss the caller
     * refills via fill() once the bus transaction completes.
     */
    bool access(Addr meta_addr, bool is_write);

    /** Allocate after a serviced miss; may evict a dirty victim. */
    Cache::FillResult fill(Addr meta_addr, bool dirty);

    /**
     * Number of cache accesses a sub-word tag *write* costs: 1 with
     * bit-granularity write enables, 2 (read-modify-write) without.
     */
    u32 writeAccessCost() const { return bit_mask_writes_ ? 1 : 2; }

    bool bitMaskWrites() const { return bit_mask_writes_; }

    void invalidateAll() { cache_.invalidateAll(); }

    u64 hits() const { return cache_.hits(); }
    u64 misses() const { return cache_.misses(); }

    /**
     * Byte address of the meta-data for the data word containing
     * @p data_addr, given @p tag_bits_per_word (1, 4, or 8) and the
     * meta-data region base. Multiple data words share one meta byte
     * when tags are narrower than 8 bits.
     */
    static Addr metaByteAddr(Addr meta_base, Addr data_addr,
                             unsigned tag_bits_per_word);

  private:
    Cache cache_;
    bool bit_mask_writes_;
};

}  // namespace flexcore

#endif  // FLEXCORE_MEMORY_META_CACHE_H_
