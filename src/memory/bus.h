/**
 * @file
 * Shared memory bus with per-port transaction queues and deterministic
 * round-robin arbitration. Every core's I/D refills and write-through
 * store buffer, plus the meta-data cache's refills/writebacks, compete
 * here; a long meta-data refill therefore delays core misses exactly
 * as described in §V-C. With a single port (the default) the
 * round-robin grant degenerates to the original FCFS queue, bit for
 * bit; multi-core systems call setNumPorts(N) and tag each request
 * with its issuing core's port (docs/multicore.md).
 */

#ifndef FLEXCORE_MEMORY_BUS_H_
#define FLEXCORE_MEMORY_BUS_H_

#include <deque>
#include <functional>
#include <vector>

#include "common/stats.h"
#include "common/trace_event.h"
#include "common/types.h"
#include "memory/sdram.h"

namespace flexcore {

/** One queued bus transaction. */
struct BusRequest
{
    BusOp op = BusOp::kReadLine;
    Addr addr = 0;
    /** Invoked on the cycle the transaction completes. May be empty.
     * Kept third so {op, addr, callback} aggregates stay completion
     * callbacks. */
    std::function<void()> on_complete;
    /**
     * Invoked when the transaction reaches the head of the queue and
     * occupies the bus (synchronously from request() when the bus is
     * idle). Lets requesters split queueing delay from service time.
     * May be empty.
     */
    std::function<void()> on_start;
    /** Request port (core index); 0 for single-core and shared users. */
    u8 port = 0;
};

class Bus
{
  public:
    Bus(StatGroup *parent, const SdramTimings &timings);

    /**
     * Size the arbitration ports (default 1). Within a port requests
     * are FCFS; across ports the grant rotates round-robin from the
     * port after the last winner, so the interleave is a pure function
     * of the request schedule (deterministic for any host).
     */
    void setNumPorts(u32 ports);

    /** Enqueue a transaction on its port's queue. */
    void request(BusRequest req);

    /**
     * Advance one core-clock cycle. The bus is idle on the vast
     * majority of cycles, and an idle tick with sampling and tracing
     * off reduces to advancing the clock — keep that path inline.
     */
    void
    tick()
    {
        if (active_ || sampling_ || trace_ || queued_ != 0) {
            tickBusy();
            return;
        }
        ++now_;
    }

    /** True when no transaction is active or queued. */
    bool idle() const { return !active_ && queued_ == 0; }

    /** Transactions waiting behind the active one (all ports). */
    size_t queueDepth() const { return queued_; }

    /** Cycles until the active transaction completes (0 when idle). */
    u32 remainingCycles() const { return active_ ? remaining_ : 0; }

    /**
     * Bulk-advance @p cycles quiescent cycles at once: all queues must
     * be empty and any active transaction must have more than @p cycles
     * remaining, so the only per-cycle work is counter accrual. Charges
     * exactly what @p cycles calls to tick() would.
     */
    void advanceIdle(u64 cycles);

    /**
     * Enable per-cycle queue-depth sampling into the queue_depth
     * histogram (off by default: one branch per tick when disabled).
     */
    void setSampling(bool on) { sampling_ = on; }

    /** Attach a trace-event sink (null = off, the default). */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }

    /** Close the SDRAM row-run histograms (call at end of run). */
    void flushObservers() { row_model_.flush(); }

    const StatGroup &stats() const { return stats_; }

  private:
    void startNext();
    /** Slow path of tick(): active transaction, sampling, or tracing. */
    void tickBusy();

    SdramTimings timings_;
    /** Per-port FCFS queues; ports_.size() is the port count. */
    std::vector<std::deque<BusRequest>> ports_;
    size_t queued_ = 0;       //!< total requests across all ports
    u32 rr_next_ = 0;         //!< round-robin scan start
    bool active_ = false;
    BusRequest current_;
    u32 remaining_ = 0;

    bool sampling_ = false;
    TraceSink *trace_ = nullptr;
    /**
     * Internal cycle counter (tick() takes no argument). It runs one
     * ahead of the core's clock for requests issued later in the same
     * system cycle, so trace timestamps can be off by one cycle; the
     * durations themselves are exact.
     */
    Cycle now_ = 0;
    Cycle current_start_ = 0;
    size_t traced_depth_ = 0;

    StatGroup stats_;
    Counter line_reads_;
    Counter line_writes_;
    Counter word_writes_;
    Counter busy_cycles_;
    Counter queue_cycles_;
    Histogram queue_depth_;
    SdramRowModel row_model_;
};

}  // namespace flexcore

#endif  // FLEXCORE_MEMORY_BUS_H_
