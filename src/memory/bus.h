/**
 * @file
 * Shared memory bus with an FCFS transaction queue. The main core's
 * I/D refills, the write-through store buffer, and the meta-data
 * cache's refills/writebacks all compete here; a long meta-data refill
 * therefore delays core misses exactly as described in §V-C.
 */

#ifndef FLEXCORE_MEMORY_BUS_H_
#define FLEXCORE_MEMORY_BUS_H_

#include <deque>
#include <functional>

#include "common/stats.h"
#include "common/types.h"
#include "memory/sdram.h"

namespace flexcore {

/** One queued bus transaction. */
struct BusRequest
{
    BusOp op = BusOp::kReadLine;
    Addr addr = 0;
    /** Invoked on the cycle the transaction completes. May be empty. */
    std::function<void()> on_complete;
};

class Bus
{
  public:
    Bus(StatGroup *parent, const SdramTimings &timings);

    /** Enqueue a transaction (FCFS). */
    void request(BusRequest req);

    /** Advance one core-clock cycle. */
    void tick();

    /** True when no transaction is active or queued. */
    bool idle() const { return !active_ && queue_.empty(); }

    /** Transactions waiting behind the active one. */
    size_t queueDepth() const { return queue_.size(); }

    const StatGroup &stats() const { return stats_; }

  private:
    void startNext();

    SdramTimings timings_;
    std::deque<BusRequest> queue_;
    bool active_ = false;
    BusRequest current_;
    u32 remaining_ = 0;

    StatGroup stats_;
    Counter line_reads_;
    Counter line_writes_;
    Counter word_writes_;
    Counter busy_cycles_;
    Counter queue_cycles_;
};

}  // namespace flexcore

#endif  // FLEXCORE_MEMORY_BUS_H_
