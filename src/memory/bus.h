/**
 * @file
 * Shared memory bus with an FCFS transaction queue. The main core's
 * I/D refills, the write-through store buffer, and the meta-data
 * cache's refills/writebacks all compete here; a long meta-data refill
 * therefore delays core misses exactly as described in §V-C.
 */

#ifndef FLEXCORE_MEMORY_BUS_H_
#define FLEXCORE_MEMORY_BUS_H_

#include <deque>
#include <functional>

#include "common/stats.h"
#include "common/trace_event.h"
#include "common/types.h"
#include "memory/sdram.h"

namespace flexcore {

/** One queued bus transaction. */
struct BusRequest
{
    BusOp op = BusOp::kReadLine;
    Addr addr = 0;
    /** Invoked on the cycle the transaction completes. May be empty.
     * Kept third so {op, addr, callback} aggregates stay completion
     * callbacks. */
    std::function<void()> on_complete;
    /**
     * Invoked when the transaction reaches the head of the queue and
     * occupies the bus (synchronously from request() when the bus is
     * idle). Lets requesters split queueing delay from service time.
     * May be empty.
     */
    std::function<void()> on_start;
};

class Bus
{
  public:
    Bus(StatGroup *parent, const SdramTimings &timings);

    /** Enqueue a transaction (FCFS). */
    void request(BusRequest req);

    /**
     * Advance one core-clock cycle. The bus is idle on the vast
     * majority of cycles, and an idle tick with sampling and tracing
     * off reduces to advancing the clock — keep that path inline.
     */
    void
    tick()
    {
        if (active_ || sampling_ || trace_ || !queue_.empty()) {
            tickBusy();
            return;
        }
        ++now_;
    }

    /** True when no transaction is active or queued. */
    bool idle() const { return !active_ && queue_.empty(); }

    /** Transactions waiting behind the active one. */
    size_t queueDepth() const { return queue_.size(); }

    /** Cycles until the active transaction completes (0 when idle). */
    u32 remainingCycles() const { return active_ ? remaining_ : 0; }

    /**
     * Bulk-advance @p cycles quiescent cycles at once: the queue must
     * be empty and any active transaction must have more than @p cycles
     * remaining, so the only per-cycle work is counter accrual. Charges
     * exactly what @p cycles calls to tick() would.
     */
    void advanceIdle(u64 cycles);

    /**
     * Enable per-cycle queue-depth sampling into the queue_depth
     * histogram (off by default: one branch per tick when disabled).
     */
    void setSampling(bool on) { sampling_ = on; }

    /** Attach a trace-event sink (null = off, the default). */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }

    /** Close the SDRAM row-run histograms (call at end of run). */
    void flushObservers() { row_model_.flush(); }

    const StatGroup &stats() const { return stats_; }

  private:
    void startNext();
    /** Slow path of tick(): active transaction, sampling, or tracing. */
    void tickBusy();

    SdramTimings timings_;
    std::deque<BusRequest> queue_;
    bool active_ = false;
    BusRequest current_;
    u32 remaining_ = 0;

    bool sampling_ = false;
    TraceSink *trace_ = nullptr;
    /**
     * Internal cycle counter (tick() takes no argument). It runs one
     * ahead of the core's clock for requests issued later in the same
     * system cycle, so trace timestamps can be off by one cycle; the
     * durations themselves are exact.
     */
    Cycle now_ = 0;
    Cycle current_start_ = 0;
    size_t traced_depth_ = 0;

    StatGroup stats_;
    Counter line_reads_;
    Counter line_writes_;
    Counter word_writes_;
    Counter busy_cycles_;
    Counter queue_cycles_;
    Histogram queue_depth_;
    SdramRowModel row_model_;
};

}  // namespace flexcore

#endif  // FLEXCORE_MEMORY_BUS_H_
