/**
 * @file
 * Functional backing memory: a sparse, page-allocated flat byte store
 * covering the full 32-bit physical address space. Big-endian accessors
 * match the SPARC ISA.
 */

#ifndef FLEXCORE_MEMORY_MEMORY_H_
#define FLEXCORE_MEMORY_MEMORY_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace flexcore {

class Memory
{
  public:
    static constexpr u32 kPageShift = 12;
    static constexpr u32 kPageSize = 1u << kPageShift;

    u8 read8(Addr addr) const;
    u16 read16(Addr addr) const;    // addr must be 2-byte aligned
    u32 read32(Addr addr) const;    // addr must be 4-byte aligned

    void write8(Addr addr, u8 value);
    void write16(Addr addr, u16 value);
    void write32(Addr addr, u32 value);

    /** Bulk copy-in used by the program loader. */
    void writeBlock(Addr addr, const u8 *data, u32 size);

    /** Bulk copy-out used by tests and golden-model checks. */
    void readBlock(Addr addr, u8 *data, u32 size) const;

    /**
     * Fault-injection hook: flip one bit of the byte at @p addr.
     * Callers that may hit decoded text must also invalidate the
     * core's µop cache (Core::invalidateUopsAt).
     */
    void
    flipBit(Addr addr, u32 bit)
    {
        write8(addr, read8(addr) ^ static_cast<u8>(1u << (bit & 7)));
    }

    /** Number of pages that have been touched. */
    size_t allocatedPages() const { return pages_.size(); }

    /**
     * Alias @p size bytes at @p base (both page-aligned) onto
     * @p backing's storage: accesses in the window read and write the
     * backing memory's pages, so every Memory sharing one backing sees
     * the same bytes there. This is the multi-core coherent window
     * (docs/multicore.md); single-core systems never set one and pay
     * nothing on the cached-page fast path.
     */
    void setSharedWindow(Memory *backing, Addr base, u32 size);

  private:
    u8 *pageFor(Addr addr);
    const u8 *pageForRead(Addr addr) const;

    Memory *shared_ = nullptr;   //!< backing store for the window
    Addr shared_base_ = 0;
    u32 shared_size_ = 0;

    std::unordered_map<u32, std::unique_ptr<u8[]>> pages_;
    // One-entry page cache: consecutive accesses overwhelmingly land in
    // the same 4 KB page, so the common case skips the hash lookup.
    // Only ever points at an *allocated* page (never kZeroPage — a
    // later write could allocate the page behind a cached zero page),
    // and pages are never freed, so it needs no invalidation. The page
    // payloads are stable heap blocks, so rehashing is harmless too.
    mutable u32 last_page_idx_ = ~u32{0};
    mutable u8 *last_page_ = nullptr;
    static const u8 kZeroPage[kPageSize];
};

}  // namespace flexcore

#endif  // FLEXCORE_MEMORY_MEMORY_H_
