#include "memory/sdram.h"

namespace flexcore {

SdramRowModel::SdramRowModel(StatGroup *parent)
    : stats_("sdram", parent),
      row_hits_(&stats_, "row_hits",
                "transactions hitting a bank's open row"),
      row_misses_(&stats_, "row_misses",
                  "transactions opening a new row (incl. first access)"),
      run_length_(&stats_, "row_run_length",
                  "consecutive transactions to the same open row",
                  Histogram::Params{1, 0, 12, true})
{
}

void
SdramRowModel::observe(Addr addr)
{
    Bank &bank = banks_[(addr >> kBankShift) & (kNumBanks - 1)];
    const u32 row = addr >> kRowShift;
    if (bank.open && bank.row == row) {
        ++row_hits_;
        ++bank.run;
        return;
    }
    ++row_misses_;
    if (bank.run > 0)
        run_length_.add(bank.run);
    bank.open = true;
    bank.row = row;
    bank.run = 1;
}

void
SdramRowModel::flush()
{
    for (Bank &bank : banks_) {
        if (bank.run > 0)
            run_length_.add(bank.run);
        bank.run = 0;
        bank.open = false;
    }
}

}  // namespace flexcore
