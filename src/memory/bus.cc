#include "memory/bus.h"

namespace flexcore {

Bus::Bus(StatGroup *parent, const SdramTimings &timings)
    : timings_(timings),
      stats_("bus", parent),
      line_reads_(&stats_, "line_reads", "cache line refills"),
      line_writes_(&stats_, "line_writes", "dirty line writebacks"),
      word_writes_(&stats_, "word_writes", "write-through stores"),
      busy_cycles_(&stats_, "busy_cycles", "cycles the bus was occupied"),
      queue_cycles_(&stats_, "queue_cycles",
                    "aggregate cycles requests spent queued")
{
}

void
Bus::request(BusRequest req)
{
    switch (req.op) {
      case BusOp::kReadLine: ++line_reads_; break;
      case BusOp::kWriteLine: ++line_writes_; break;
      case BusOp::kWriteWord: ++word_writes_; break;
    }
    queue_.push_back(std::move(req));
    if (!active_)
        startNext();
}

void
Bus::startNext()
{
    current_ = std::move(queue_.front());
    queue_.pop_front();
    remaining_ = timings_.cost(current_.op);
    active_ = true;
}

void
Bus::tick()
{
    if (active_) {
        ++busy_cycles_;
        if (--remaining_ == 0) {
            active_ = false;
            // Move the callback out first: it may enqueue new requests.
            auto done = std::move(current_.on_complete);
            if (!queue_.empty())
                startNext();
            if (done)
                done();
        }
    }
    queue_cycles_ += queue_.size();
}

}  // namespace flexcore
