#include "memory/bus.h"

#include <cassert>

namespace flexcore {

namespace {

const char *
busOpName(BusOp op)
{
    switch (op) {
      case BusOp::kReadLine: return "line_read";
      case BusOp::kWriteLine: return "line_write";
      case BusOp::kWriteWord: return "word_write";
    }
    return "?";
}

}  // namespace

Bus::Bus(StatGroup *parent, const SdramTimings &timings)
    : timings_(timings),
      ports_(1),
      stats_("bus", parent),
      line_reads_(&stats_, "line_reads", "cache line refills"),
      line_writes_(&stats_, "line_writes", "dirty line writebacks"),
      word_writes_(&stats_, "word_writes", "write-through stores"),
      busy_cycles_(&stats_, "busy_cycles", "cycles the bus was occupied"),
      queue_cycles_(&stats_, "queue_cycles",
                    "aggregate cycles requests spent queued"),
      queue_depth_(&stats_, "queue_depth",
                   "requests queued behind the active transaction, "
                   "sampled per cycle",
                   Histogram::Params{0, 16, 16, false}),
      row_model_(&stats_)
{
}

void
Bus::setNumPorts(u32 ports)
{
    assert(ports >= 1);
    assert(queued_ == 0 && !active_);
    ports_.resize(ports);
    rr_next_ = 0;
}

void
Bus::request(BusRequest req)
{
    switch (req.op) {
      case BusOp::kReadLine: ++line_reads_; break;
      case BusOp::kWriteLine: ++line_writes_; break;
      case BusOp::kWriteWord: ++word_writes_; break;
    }
    assert(req.port < ports_.size());
    ports_[req.port].push_back(std::move(req));
    ++queued_;
    if (!active_)
        startNext();
    if (trace_ && queued_ != traced_depth_) {
        traced_depth_ = queued_;
        trace_->counter("bus_queue_depth", now_, traced_depth_);
    }
}

void
Bus::startNext()
{
    // Round-robin grant: scan from the port after the last winner.
    // With one port this always picks port 0 — exact FCFS.
    const u32 nports = static_cast<u32>(ports_.size());
    u32 port = rr_next_;
    while (ports_[port].empty())
        port = port + 1 < nports ? port + 1 : 0;
    current_ = std::move(ports_[port].front());
    ports_[port].pop_front();
    --queued_;
    rr_next_ = port + 1 < nports ? port + 1 : 0;
    remaining_ = timings_.cost(current_.op);
    active_ = true;
    current_start_ = now_;
    row_model_.observe(current_.addr);
    if (current_.on_start)
        current_.on_start();
}

void
Bus::tickBusy()
{
    if (active_) {
        ++busy_cycles_;
        if (--remaining_ == 0) {
            active_ = false;
            if (trace_) {
                trace_->complete(busOpName(current_.op), "bus", 2,
                                 current_start_, now_ + 1);
            }
            // Move the callback out first: it may enqueue new requests.
            auto done = std::move(current_.on_complete);
            if (queued_ != 0)
                startNext();
            if (done)
                done();
        }
    }
    queue_cycles_ += queued_;
    if (sampling_)
        queue_depth_.add(queued_);
    if (trace_ && queued_ != traced_depth_) {
        traced_depth_ = queued_;
        trace_->counter("bus_queue_depth", now_, traced_depth_);
    }
    ++now_;
}

void
Bus::advanceIdle(u64 cycles)
{
    // Preconditions guarantee no completion (and hence no callback, no
    // dequeue, no trace event) can occur inside the stretch, so the
    // per-cycle effects reduce to counter accrual.
    assert(queued_ == 0);
    assert(!active_ || remaining_ > cycles);
    if (active_) {
        busy_cycles_ += cycles;
        remaining_ -= static_cast<u32>(cycles);
    }
    if (sampling_)
        queue_depth_.add(0, cycles);
    now_ += cycles;
}

}  // namespace flexcore
