/**
 * @file
 * SDRAM timing parameters. The paper's prototype has no L2; both the
 * Leon3 L1 caches and the meta-data cache refill directly from off-chip
 * SDRAM over the shared memory bus, so one transaction's occupancy is
 * what creates the bus contention discussed in §V-C.
 */

#ifndef FLEXCORE_MEMORY_SDRAM_H_
#define FLEXCORE_MEMORY_SDRAM_H_

#include "common/stats.h"
#include "common/types.h"

namespace flexcore {

/** Kinds of bus/SDRAM transactions. */
enum class BusOp : u8 {
    kReadLine,    // 32-byte cache line refill
    kWriteWord,   // write-through word/halfword/byte store
    kWriteLine,   // meta-data cache dirty-line writeback
};

/**
 * Occupancy of the shared bus + SDRAM for each transaction type, in
 * core-clock cycles. Defaults approximate a 100 MHz-class SDR SDRAM
 * behind an AMBA AHB as in the Leon3 reference design: a line refill
 * costs row activation plus a burst of 8 words.
 */
struct SdramTimings
{
    u32 line_read = 30;
    u32 line_write = 26;
    u32 word_write = 3;

    u32 cost(BusOp op) const
    {
        switch (op) {
          case BusOp::kReadLine: return line_read;
          case BusOp::kWriteLine: return line_write;
          case BusOp::kWriteWord: return word_write;
        }
        return 1;
    }
};

/**
 * Observational row-buffer model: classifies each bus transaction as a
 * row hit or miss per bank and records the distribution of same-row
 * run lengths. Purely statistical — the fixed SdramTimings above stay
 * authoritative for timing, so attaching this model never perturbs the
 * golden traces.
 */
class SdramRowModel
{
  public:
    explicit SdramRowModel(StatGroup *parent);

    /** Classify one transaction (call at transaction start). */
    void observe(Addr addr);

    /** Close any open same-row runs (call at end of simulation). */
    void flush();

    u64 rowHits() const { return row_hits_.value(); }
    u64 rowMisses() const { return row_misses_.value(); }

  private:
    static constexpr u32 kNumBanks = 4;
    static constexpr u32 kBankShift = 13;   //!< 8 KB bank interleave
    static constexpr u32 kRowShift = 15;    //!< 32 KB rows

    struct Bank
    {
        bool open = false;
        u32 row = 0;
        u64 run = 0;   //!< consecutive accesses to the open row
    };

    Bank banks_[kNumBanks];
    StatGroup stats_;
    Counter row_hits_;
    Counter row_misses_;
    Histogram run_length_;
};

}  // namespace flexcore

#endif  // FLEXCORE_MEMORY_SDRAM_H_
