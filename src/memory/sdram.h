/**
 * @file
 * SDRAM timing parameters. The paper's prototype has no L2; both the
 * Leon3 L1 caches and the meta-data cache refill directly from off-chip
 * SDRAM over the shared memory bus, so one transaction's occupancy is
 * what creates the bus contention discussed in §V-C.
 */

#ifndef FLEXCORE_MEMORY_SDRAM_H_
#define FLEXCORE_MEMORY_SDRAM_H_

#include "common/types.h"

namespace flexcore {

/** Kinds of bus/SDRAM transactions. */
enum class BusOp : u8 {
    kReadLine,    // 32-byte cache line refill
    kWriteWord,   // write-through word/halfword/byte store
    kWriteLine,   // meta-data cache dirty-line writeback
};

/**
 * Occupancy of the shared bus + SDRAM for each transaction type, in
 * core-clock cycles. Defaults approximate a 100 MHz-class SDR SDRAM
 * behind an AMBA AHB as in the Leon3 reference design: a line refill
 * costs row activation plus a burst of 8 words.
 */
struct SdramTimings
{
    u32 line_read = 30;
    u32 line_write = 26;
    u32 word_write = 3;

    u32 cost(BusOp op) const
    {
        switch (op) {
          case BusOp::kReadLine: return line_read;
          case BusOp::kWriteLine: return line_write;
          case BusOp::kWriteWord: return word_write;
        }
        return 1;
    }
};

}  // namespace flexcore

#endif  // FLEXCORE_MEMORY_SDRAM_H_
