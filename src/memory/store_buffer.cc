#include "memory/store_buffer.h"

namespace flexcore {

StoreBuffer::StoreBuffer(StatGroup *parent, Bus *bus, u32 depth)
    : bus_(bus),
      depth_(depth),
      stats_("store_buffer", parent),
      stores_(&stats_, "stores", "stores accepted"),
      full_stalls_(&stats_, "full_stalls", "cycles rejected because full")
{
}

bool
StoreBuffer::push(Addr addr)
{
    if (full()) {
        ++full_stalls_;
        return false;
    }
    entries_.push_back(addr);
    ++stores_;
    return true;
}

void
StoreBuffer::issueHead()
{
    draining_ = true;
    BusRequest req;
    req.op = BusOp::kWriteWord;
    req.addr = entries_.front();
    req.port = bus_port_;
    req.on_complete = [this]() {
        entries_.pop_front();
        draining_ = false;
    };
    bus_->request(std::move(req));
}

}  // namespace flexcore
