/**
 * @file
 * Disassembler: renders a decoded instruction in SPARC assembly syntax
 * (the same syntax the assembler accepts, so round-trips are testable).
 */

#ifndef FLEXCORE_ISA_DISASM_H_
#define FLEXCORE_ISA_DISASM_H_

#include <string>

#include "common/types.h"
#include "isa/instruction.h"

namespace flexcore {

/**
 * Disassemble @p inst. @p pc is used to render branch/call targets as
 * absolute addresses.
 */
std::string disassemble(const Instruction &inst, Addr pc = 0);

/** Convenience: decode then disassemble a raw word. */
std::string disassemble(u32 word, Addr pc = 0);

}  // namespace flexcore

#endif  // FLEXCORE_ISA_DISASM_H_
