#include "isa/disasm.h"

#include <sstream>

#include "isa/encoding.h"
#include "isa/registers.h"

namespace flexcore {

namespace {

std::string
hex(u32 value)
{
    std::ostringstream oss;
    oss << "0x" << std::hex << value;
    return oss.str();
}

std::string
regOrImm(const Instruction &inst)
{
    if (inst.has_imm)
        return std::to_string(inst.simm);
    return archRegName(inst.rs2);
}

std::string
memOperand(const Instruction &inst)
{
    std::string out = "[" + archRegName(inst.rs1);
    if (inst.has_imm) {
        if (inst.simm > 0)
            out += "+" + std::to_string(inst.simm);
        else if (inst.simm < 0)
            out += std::to_string(inst.simm);
    } else {
        // Always print the index register (even %g0) so the text
        // re-assembles to the exact register-form encoding.
        out += "+" + archRegName(inst.rs2);
    }
    return out + "]";
}

std::string_view
cpopFnName(CpopFn fn)
{
    switch (fn) {
      case CpopFn::kSetRegTag: return "m.settag";
      case CpopFn::kClearRegTag: return "m.clrtag";
      case CpopFn::kSetMemTag: return "m.setmtag";
      case CpopFn::kClearMemTag: return "m.clrmtag";
      case CpopFn::kSetPolicy: return "m.policy";
      case CpopFn::kReadTag: return "m.read";
      case CpopFn::kSetBase: return "m.base";
      default: return "m.unknown";
    }
}

}  // namespace

std::string
disassemble(const Instruction &inst, Addr pc)
{
    if (!inst.valid)
        return "<invalid " + hex(inst.raw) + ">";

    std::ostringstream oss;
    switch (inst.op) {
      case Op::kSethi:
        if (inst.type == kTypeNop)
            return "nop";
        oss << "sethi " << hex(inst.imm22) << ", "
            << archRegName(inst.rd);
        break;
      case Op::kBicc:
        oss << "b" << condName(inst.cond) << (inst.annul ? ",a " : " ")
            << hex(pc + 4u * static_cast<u32>(inst.disp));
        break;
      case Op::kCall:
        oss << "call " << hex(pc + 4u * static_cast<u32>(inst.disp));
        break;
      case Op::kLd: case Op::kLdub: case Op::kLduh:
        oss << opName(inst.op) << " " << memOperand(inst) << ", "
            << archRegName(inst.rd);
        break;
      case Op::kSt: case Op::kStb: case Op::kSth:
        oss << opName(inst.op) << " " << archRegName(inst.rd) << ", "
            << memOperand(inst);
        break;
      case Op::kJmpl:
        oss << "jmpl " << archRegName(inst.rs1) << "+" << regOrImm(inst)
            << ", " << archRegName(inst.rd);
        break;
      case Op::kRdy:
        oss << "rd %y, " << archRegName(inst.rd);
        break;
      case Op::kWry:
        oss << "wr " << archRegName(inst.rs1) << ", %y";
        break;
      case Op::kTicc:
        oss << "t" << condName(inst.cond) << " ";
        if (inst.rs1)
            oss << archRegName(inst.rs1) << ", ";
        oss << regOrImm(inst);
        break;
      case Op::kCpop1:
      case Op::kCpop2:
        oss << cpopFnName(inst.cpop_fn) << " " << archRegName(inst.rs1);
        if (inst.has_imm)
            oss << ", " << inst.simm;
        else
            oss << ", " << archRegName(inst.rs2);
        oss << ", " << archRegName(inst.rd);
        break;
      default:
        oss << opName(inst.op) << " " << archRegName(inst.rs1) << ", "
            << regOrImm(inst) << ", " << archRegName(inst.rd);
        break;
    }
    return oss.str();
}

std::string
disassemble(u32 word, Addr pc)
{
    return disassemble(decode(word), pc);
}

}  // namespace flexcore
