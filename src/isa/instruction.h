/**
 * @file
 * Decoded-instruction representation. The core's decode stage produces
 * this struct; the core-to-fabric interface forwards selected fields of
 * it (plus runtime values) in a CommitPacket.
 */

#ifndef FLEXCORE_ISA_INSTRUCTION_H_
#define FLEXCORE_ISA_INSTRUCTION_H_

#include "common/types.h"
#include "isa/opcodes.h"

namespace flexcore {

/** A fully decoded SPARC-subset instruction. */
struct Instruction
{
    u32 raw = 0;                     //!< original 32-bit encoding
    Op op = Op::kInvalid;            //!< mnemonic-level opcode
    InstrType type = kTypeNop;       //!< CFGR forwarding class
    Cond cond = Cond::kA;            //!< condition (Bicc/Ticc)
    bool annul = false;              //!< Bicc annul bit
    u8 rd = 0;                       //!< destination architectural reg
    u8 rs1 = 0;                      //!< source 1 architectural reg
    u8 rs2 = 0;                      //!< source 2 architectural reg
    bool has_imm = false;            //!< i bit: rs2 replaced by simm
    s32 simm = 0;                    //!< simm13 (simm9 for CPop)
    u32 imm22 = 0;                   //!< SETHI immediate
    s32 disp = 0;                    //!< branch/call displacement (words)
    CpopFn cpop_fn = CpopFn::kSetRegTag;  //!< CPop function field
    bool valid = false;              //!< decoded successfully

    // The operand predicates run for every committed instruction (and
    // once more at decode for the µop cache), so they live here where
    // every caller can inline them.

    /** True if this instruction reads rs1 as a register operand. */
    bool
    readsRs1() const
    {
        switch (op) {
          case Op::kSethi:
          case Op::kBicc:
          case Op::kCall:
          case Op::kRdy:
            return false;
          default:
            return valid;
        }
    }

    /** True if this instruction reads rs2 as a register operand. */
    bool
    readsRs2() const
    {
        if (has_imm)
            return false;
        switch (op) {
          case Op::kSethi:
          case Op::kBicc:
          case Op::kCall:
          case Op::kRdy:
          case Op::kWry:   // wr %rs1, %y in our subset (rs2 unused)
            return false;
          default:
            return valid;
        }
    }

    /** True if this instruction writes rd. */
    bool
    writesRd() const
    {
        switch (op) {
          case Op::kBicc:
          case Op::kTicc:
          case Op::kWry:
          case Op::kSt:
          case Op::kStb:
          case Op::kSth:
          case Op::kCpop2:
            return false;
          case Op::kCpop1:
            // only 'read from co-processor' writes a register
            return cpop_fn == CpopFn::kReadTag;
          case Op::kCall:
            return true;   // writes %o7
          default:
            return valid && rd != 0;
        }
    }
};

/** The canonical NOP (sethi 0, %g0). */
Instruction makeNop();

}  // namespace flexcore

#endif  // FLEXCORE_ISA_INSTRUCTION_H_
