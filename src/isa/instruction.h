/**
 * @file
 * Decoded-instruction representation. The core's decode stage produces
 * this struct; the core-to-fabric interface forwards selected fields of
 * it (plus runtime values) in a CommitPacket.
 */

#ifndef FLEXCORE_ISA_INSTRUCTION_H_
#define FLEXCORE_ISA_INSTRUCTION_H_

#include "common/types.h"
#include "isa/opcodes.h"

namespace flexcore {

/** A fully decoded SPARC-subset instruction. */
struct Instruction
{
    u32 raw = 0;                     //!< original 32-bit encoding
    Op op = Op::kInvalid;            //!< mnemonic-level opcode
    InstrType type = kTypeNop;       //!< CFGR forwarding class
    Cond cond = Cond::kA;            //!< condition (Bicc/Ticc)
    bool annul = false;              //!< Bicc annul bit
    u8 rd = 0;                       //!< destination architectural reg
    u8 rs1 = 0;                      //!< source 1 architectural reg
    u8 rs2 = 0;                      //!< source 2 architectural reg
    bool has_imm = false;            //!< i bit: rs2 replaced by simm
    s32 simm = 0;                    //!< simm13 (simm9 for CPop)
    u32 imm22 = 0;                   //!< SETHI immediate
    s32 disp = 0;                    //!< branch/call displacement (words)
    CpopFn cpop_fn = CpopFn::kSetRegTag;  //!< CPop function field
    bool valid = false;              //!< decoded successfully

    /** True if this instruction reads rs1 as a register operand. */
    bool readsRs1() const;
    /** True if this instruction reads rs2 as a register operand. */
    bool readsRs2() const;
    /** True if this instruction writes rd. */
    bool writesRd() const;
};

/** The canonical NOP (sethi 0, %g0). */
Instruction makeNop();

}  // namespace flexcore

#endif  // FLEXCORE_ISA_INSTRUCTION_H_
