/**
 * @file
 * Architectural and physical (windowed) register naming for the SPARC
 * V8 subset. Architectural registers are %g0-%g7, %o0-%o7, %l0-%l7,
 * %i0-%i7 (indices 0-31). With NWINDOWS register windows the physical
 * file holds 8 globals plus 16 registers per window; the outs of window
 * w alias the ins of window w-1 (SAVE decrements CWP, RESTORE
 * increments it), exactly as in SPARC V8.
 */

#ifndef FLEXCORE_ISA_REGISTERS_H_
#define FLEXCORE_ISA_REGISTERS_H_

#include <string>

#include "common/types.h"

namespace flexcore {

/** Number of register windows (the Leon3 default). */
inline constexpr unsigned kNumWindows = 8;

/** Architectural register count visible at any instant. */
inline constexpr unsigned kNumArchRegs = 32;

/** Total physical integer registers: 8 globals + 16 per window. */
inline constexpr unsigned kNumPhysRegs = 8 + 16 * kNumWindows;

/** Well-known architectural register indices. */
inline constexpr unsigned kRegG0 = 0;
inline constexpr unsigned kRegO0 = 8;
inline constexpr unsigned kRegSp = 14;   // %o6
inline constexpr unsigned kRegO7 = 15;   // call return address
inline constexpr unsigned kRegL0 = 16;
inline constexpr unsigned kRegI0 = 24;
inline constexpr unsigned kRegFp = 30;   // %i6
inline constexpr unsigned kRegI7 = 31;

/**
 * Map an architectural register to its physical index for the given
 * current window pointer. Globals map to [0,8); windowed registers map
 * so that ins of window w coincide with outs of window (w+1) mod N.
 */
constexpr unsigned
physRegIndex(unsigned cwp, unsigned arch_reg)
{
    if (arch_reg < 8)
        return arch_reg;
    return 8 + (cwp * 16 + (arch_reg - 8)) % (16 * kNumWindows);
}

/** Canonical assembly name for an architectural register ("%o3"). */
std::string archRegName(unsigned arch_reg);

/**
 * Parse a register name. Accepts %g0-%g7/%o/%l/%i forms plus the
 * aliases %sp, %fp, and %r0-%r31. Returns false on failure.
 */
bool parseRegName(const std::string &name, unsigned *arch_reg);

}  // namespace flexcore

#endif  // FLEXCORE_ISA_REGISTERS_H_
