/**
 * @file
 * Opcode and instruction-class definitions for the SPARC V8 subset
 * implemented by the FlexCore simulator.
 *
 * The subset covers the integer instructions the Leon3 prototype in the
 * paper executes: ALU ops (with and without condition codes), SETHI,
 * loads/stores (word/half/byte), Bicc branches with annul bits and delay
 * slots, CALL/JMPL, SAVE/RESTORE with register windows, UMUL/SMUL/
 * UDIV/SDIV, RDY/WRY, Ticc software traps, and the two co-processor
 * opcode spaces (CPop1/CPop2) that carry monitor-visible instructions.
 */

#ifndef FLEXCORE_ISA_OPCODES_H_
#define FLEXCORE_ISA_OPCODES_H_

#include <string_view>

#include "common/types.h"

namespace flexcore {

/** Mnemonic-level opcodes. */
enum class Op : u8 {
    // Format 2
    kSethi,
    kBicc,      // all conditional branches; condition in Instruction::cond
    // Format 1
    kCall,
    // Format 3 arithmetic/logic (op = 2)
    kAdd, kAddcc,
    kSub, kSubcc,
    kAnd, kAndcc,
    kOr, kOrcc,
    kXor, kXorcc,
    kAndn, kOrn, kXnor,
    kSll, kSrl, kSra,
    kUmul, kSmul, kUmulcc, kSmulcc,
    kUdiv, kSdiv,
    kJmpl,
    kSave, kRestore,
    kRdy, kWry,
    kTicc,      // software trap (used for exit/putchar syscalls)
    kCpop1, kCpop2,
    // Format 3 memory (op = 3)
    kLd, kLdub, kLduh,
    kSt, kStb, kSth,
    kInvalid,
    kNumOps,
};

/**
 * CFGR instruction classes. The forwarding configuration register holds
 * two bits of policy per class (32 classes in the SPARC prototype,
 * Table II). Several Op values fold into one class (e.g. ADD and ADDcc
 * are both kTypeAluAdd).
 */
enum InstrType : u8 {
    kTypeNop = 0,
    kTypeAluAdd,
    kTypeAluSub,
    kTypeAluLogic,
    kTypeAluShift,
    kTypeSethi,
    kTypeMul,
    kTypeDiv,
    kTypeLoadWord,
    kTypeLoadByte,
    kTypeLoadHalf,
    kTypeStoreWord,
    kTypeStoreByte,
    kTypeStoreHalf,
    kTypeBranch,
    kTypeCall,
    kTypeIndirectJump,
    kTypeSave,
    kTypeRestore,
    kTypeReadY,
    kTypeWriteY,
    kTypeCpop1,
    kTypeCpop2,
    kTypeTrap,
    kNumUsedInstrTypes,
    kNumInstrTypes = 32,
};

/** Bicc condition field values (SPARC V8 encoding). */
enum class Cond : u8 {
    kN = 0x0,     // never
    kE = 0x1,     // equal (Z)
    kLe = 0x2,
    kL = 0x3,
    kLeu = 0x4,
    kCs = 0x5,    // carry set (unsigned <)
    kNeg = 0x6,
    kVs = 0x7,
    kA = 0x8,     // always
    kNe = 0x9,
    kG = 0xa,
    kGe = 0xb,
    kGu = 0xc,
    kCc = 0xd,    // carry clear (unsigned >=)
    kPos = 0xe,
    kVc = 0xf,
};

/**
 * Co-processor (CPop1) functions understood by the monitoring
 * extensions. The encoding deviates slightly from SPARC's CPop format
 * to make room for a signed 9-bit immediate: fn lives in bits [12:9].
 */
enum class CpopFn : u8 {
    kSetRegTag = 0,   // tag value in rd field; target reg = rs1
    kClearRegTag = 1,
    kSetMemTag = 2,   // addr = R[rs1] + simm9; tag value in rd field
    kClearMemTag = 3,
    kSetPolicy = 4,   // policy word = R[rs1] + simm9 (rs1 usually %g0)
    kReadTag = 5,     // 'read from co-processor': BFIFO value -> rd
    kSetBase = 6,     // meta-data base address = R[rs1]
    kNumFns,
};

/** Software trap numbers used with `ta` (trap always). */
enum class SysTrap : u8 {
    kExit = 0,       // halt simulation; exit code in %o0
    kPutChar = 1,    // console output of the low byte of %o0
    kPutInt = 2,     // console output of %o0 as decimal
    kCoreId = 3,     // %o0 = this core's index (0 on single-core)
};

/** Human-readable mnemonic for an opcode. */
std::string_view opName(Op op);

/** Human-readable name of a CFGR instruction class. */
std::string_view instrTypeName(InstrType type);

/** Human-readable branch-condition suffix ("a", "ne", ...). */
std::string_view condName(Cond cond);

/** The CFGR class an opcode belongs to. */
InstrType classOf(Op op);

// The opcode predicates below run on the per-commit hot path, so they
// are defined inline here.

/** True for LD/LDUB/LDUH. */
inline bool
isLoad(Op op)
{
    return op == Op::kLd || op == Op::kLdub || op == Op::kLduh;
}

/** True for ST/STB/STH. */
inline bool
isStore(Op op)
{
    return op == Op::kSt || op == Op::kStb || op == Op::kSth;
}

/** True for any ALU op (add/sub/logic/shift, with or without cc). */
inline bool
isAlu(Op op)
{
    switch (op) {
      case Op::kAdd: case Op::kAddcc:
      case Op::kSub: case Op::kSubcc:
      case Op::kAnd: case Op::kAndcc:
      case Op::kOr: case Op::kOrcc:
      case Op::kXor: case Op::kXorcc:
      case Op::kAndn: case Op::kOrn: case Op::kXnor:
      case Op::kSll: case Op::kSrl: case Op::kSra:
        return true;
      default:
        return false;
    }
}

/** True if the op writes the integer condition codes. */
inline bool
writesIcc(Op op)
{
    switch (op) {
      case Op::kAddcc: case Op::kSubcc:
      case Op::kAndcc: case Op::kOrcc: case Op::kXorcc:
      case Op::kUmulcc: case Op::kSmulcc:
        return true;
      default:
        return false;
    }
}

/** True for control transfers with a delay slot (Bicc, CALL, JMPL). */
inline bool
hasDelaySlot(Op op)
{
    return op == Op::kBicc || op == Op::kCall || op == Op::kJmpl;
}

}  // namespace flexcore

#endif  // FLEXCORE_ISA_OPCODES_H_
