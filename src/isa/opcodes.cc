#include "isa/opcodes.h"

#include "common/log.h"

namespace flexcore {

std::string_view
opName(Op op)
{
    switch (op) {
      case Op::kSethi: return "sethi";
      case Op::kBicc: return "b";
      case Op::kCall: return "call";
      case Op::kAdd: return "add";
      case Op::kAddcc: return "addcc";
      case Op::kSub: return "sub";
      case Op::kSubcc: return "subcc";
      case Op::kAnd: return "and";
      case Op::kAndcc: return "andcc";
      case Op::kOr: return "or";
      case Op::kOrcc: return "orcc";
      case Op::kXor: return "xor";
      case Op::kXorcc: return "xorcc";
      case Op::kAndn: return "andn";
      case Op::kOrn: return "orn";
      case Op::kXnor: return "xnor";
      case Op::kSll: return "sll";
      case Op::kSrl: return "srl";
      case Op::kSra: return "sra";
      case Op::kUmul: return "umul";
      case Op::kSmul: return "smul";
      case Op::kUmulcc: return "umulcc";
      case Op::kSmulcc: return "smulcc";
      case Op::kUdiv: return "udiv";
      case Op::kSdiv: return "sdiv";
      case Op::kJmpl: return "jmpl";
      case Op::kSave: return "save";
      case Op::kRestore: return "restore";
      case Op::kRdy: return "rd";
      case Op::kWry: return "wr";
      case Op::kTicc: return "ta";
      case Op::kCpop1: return "cpop1";
      case Op::kCpop2: return "cpop2";
      case Op::kLd: return "ld";
      case Op::kLdub: return "ldub";
      case Op::kLduh: return "lduh";
      case Op::kSt: return "st";
      case Op::kStb: return "stb";
      case Op::kSth: return "sth";
      case Op::kInvalid: return "<invalid>";
      default: return "<?>";
    }
}

std::string_view
instrTypeName(InstrType type)
{
    switch (type) {
      case kTypeNop: return "nop";
      case kTypeAluAdd: return "alu_add";
      case kTypeAluSub: return "alu_sub";
      case kTypeAluLogic: return "alu_logic";
      case kTypeAluShift: return "alu_shift";
      case kTypeSethi: return "sethi";
      case kTypeMul: return "mul";
      case kTypeDiv: return "div";
      case kTypeLoadWord: return "load_word";
      case kTypeLoadByte: return "load_byte";
      case kTypeLoadHalf: return "load_half";
      case kTypeStoreWord: return "store_word";
      case kTypeStoreByte: return "store_byte";
      case kTypeStoreHalf: return "store_half";
      case kTypeBranch: return "branch";
      case kTypeCall: return "call";
      case kTypeIndirectJump: return "indirect_jump";
      case kTypeSave: return "save";
      case kTypeRestore: return "restore";
      case kTypeReadY: return "rdy";
      case kTypeWriteY: return "wry";
      case kTypeCpop1: return "cpop1";
      case kTypeCpop2: return "cpop2";
      case kTypeTrap: return "trap";
      default: return "reserved";
    }
}

std::string_view
condName(Cond cond)
{
    switch (cond) {
      case Cond::kN: return "n";
      case Cond::kE: return "e";
      case Cond::kLe: return "le";
      case Cond::kL: return "l";
      case Cond::kLeu: return "leu";
      case Cond::kCs: return "cs";
      case Cond::kNeg: return "neg";
      case Cond::kVs: return "vs";
      case Cond::kA: return "a";
      case Cond::kNe: return "ne";
      case Cond::kG: return "g";
      case Cond::kGe: return "ge";
      case Cond::kGu: return "gu";
      case Cond::kCc: return "cc";
      case Cond::kPos: return "pos";
      case Cond::kVc: return "vc";
      default: return "?";
    }
}

InstrType
classOf(Op op)
{
    switch (op) {
      case Op::kSethi: return kTypeSethi;
      case Op::kBicc: return kTypeBranch;
      case Op::kCall: return kTypeCall;
      case Op::kAdd:
      case Op::kAddcc: return kTypeAluAdd;
      case Op::kSub:
      case Op::kSubcc: return kTypeAluSub;
      case Op::kAnd:
      case Op::kAndcc:
      case Op::kOr:
      case Op::kOrcc:
      case Op::kXor:
      case Op::kXorcc:
      case Op::kAndn:
      case Op::kOrn:
      case Op::kXnor: return kTypeAluLogic;
      case Op::kSll:
      case Op::kSrl:
      case Op::kSra: return kTypeAluShift;
      case Op::kUmul:
      case Op::kSmul:
      case Op::kUmulcc:
      case Op::kSmulcc: return kTypeMul;
      case Op::kUdiv:
      case Op::kSdiv: return kTypeDiv;
      case Op::kJmpl: return kTypeIndirectJump;
      case Op::kSave: return kTypeSave;
      case Op::kRestore: return kTypeRestore;
      case Op::kRdy: return kTypeReadY;
      case Op::kWry: return kTypeWriteY;
      case Op::kTicc: return kTypeTrap;
      case Op::kCpop1: return kTypeCpop1;
      case Op::kCpop2: return kTypeCpop2;
      case Op::kLd: return kTypeLoadWord;
      case Op::kLdub: return kTypeLoadByte;
      case Op::kLduh: return kTypeLoadHalf;
      case Op::kSt: return kTypeStoreWord;
      case Op::kStb: return kTypeStoreByte;
      case Op::kSth: return kTypeStoreHalf;
      default: return kTypeNop;
    }
}

}  // namespace flexcore
