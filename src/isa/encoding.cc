#include "isa/encoding.h"

#include "common/bitutil.h"
#include "common/log.h"

namespace flexcore {

namespace {

// op3 field values for format-3 (op = 2) instructions.
enum Op3Arith : u32 {
    kOp3Add = 0x00, kOp3And = 0x01, kOp3Or = 0x02, kOp3Xor = 0x03,
    kOp3Sub = 0x04, kOp3Andn = 0x05, kOp3Orn = 0x06, kOp3Xnor = 0x07,
    kOp3Umul = 0x0a, kOp3Smul = 0x0b, kOp3Udiv = 0x0e, kOp3Sdiv = 0x0f,
    kOp3Addcc = 0x10, kOp3Andcc = 0x11, kOp3Orcc = 0x12, kOp3Xorcc = 0x13,
    kOp3Subcc = 0x14, kOp3Umulcc = 0x1a, kOp3Smulcc = 0x1b,
    kOp3Sll = 0x25, kOp3Srl = 0x26, kOp3Sra = 0x27,
    kOp3Rdy = 0x28, kOp3Wry = 0x30,
    kOp3Cpop1 = 0x36, kOp3Cpop2 = 0x37,
    kOp3Jmpl = 0x38, kOp3Ticc = 0x3a,
    kOp3Save = 0x3c, kOp3Restore = 0x3d,
};

// op3 field values for format-3 memory (op = 3) instructions.
enum Op3Mem : u32 {
    kOp3Ld = 0x00, kOp3Ldub = 0x01, kOp3Lduh = 0x02,
    kOp3St = 0x04, kOp3Stb = 0x05, kOp3Sth = 0x06,
};

Op
arithOpFromOp3(u32 op3)
{
    switch (op3) {
      case kOp3Add: return Op::kAdd;
      case kOp3And: return Op::kAnd;
      case kOp3Or: return Op::kOr;
      case kOp3Xor: return Op::kXor;
      case kOp3Sub: return Op::kSub;
      case kOp3Andn: return Op::kAndn;
      case kOp3Orn: return Op::kOrn;
      case kOp3Xnor: return Op::kXnor;
      case kOp3Umul: return Op::kUmul;
      case kOp3Smul: return Op::kSmul;
      case kOp3Udiv: return Op::kUdiv;
      case kOp3Sdiv: return Op::kSdiv;
      case kOp3Addcc: return Op::kAddcc;
      case kOp3Andcc: return Op::kAndcc;
      case kOp3Orcc: return Op::kOrcc;
      case kOp3Xorcc: return Op::kXorcc;
      case kOp3Subcc: return Op::kSubcc;
      case kOp3Umulcc: return Op::kUmulcc;
      case kOp3Smulcc: return Op::kSmulcc;
      case kOp3Sll: return Op::kSll;
      case kOp3Srl: return Op::kSrl;
      case kOp3Sra: return Op::kSra;
      case kOp3Rdy: return Op::kRdy;
      case kOp3Wry: return Op::kWry;
      case kOp3Cpop1: return Op::kCpop1;
      case kOp3Cpop2: return Op::kCpop2;
      case kOp3Jmpl: return Op::kJmpl;
      case kOp3Ticc: return Op::kTicc;
      case kOp3Save: return Op::kSave;
      case kOp3Restore: return Op::kRestore;
      default: return Op::kInvalid;
    }
}

u32
op3FromArithOp(Op op)
{
    switch (op) {
      case Op::kAdd: return kOp3Add;
      case Op::kAnd: return kOp3And;
      case Op::kOr: return kOp3Or;
      case Op::kXor: return kOp3Xor;
      case Op::kSub: return kOp3Sub;
      case Op::kAndn: return kOp3Andn;
      case Op::kOrn: return kOp3Orn;
      case Op::kXnor: return kOp3Xnor;
      case Op::kUmul: return kOp3Umul;
      case Op::kSmul: return kOp3Smul;
      case Op::kUdiv: return kOp3Udiv;
      case Op::kSdiv: return kOp3Sdiv;
      case Op::kAddcc: return kOp3Addcc;
      case Op::kAndcc: return kOp3Andcc;
      case Op::kOrcc: return kOp3Orcc;
      case Op::kXorcc: return kOp3Xorcc;
      case Op::kSubcc: return kOp3Subcc;
      case Op::kUmulcc: return kOp3Umulcc;
      case Op::kSmulcc: return kOp3Smulcc;
      case Op::kSll: return kOp3Sll;
      case Op::kSrl: return kOp3Srl;
      case Op::kSra: return kOp3Sra;
      case Op::kRdy: return kOp3Rdy;
      case Op::kWry: return kOp3Wry;
      case Op::kCpop1: return kOp3Cpop1;
      case Op::kCpop2: return kOp3Cpop2;
      case Op::kJmpl: return kOp3Jmpl;
      case Op::kTicc: return kOp3Ticc;
      case Op::kSave: return kOp3Save;
      case Op::kRestore: return kOp3Restore;
      default: FLEX_PANIC("op3FromArithOp: not an arith op");
    }
}

Op
memOpFromOp3(u32 op3)
{
    switch (op3) {
      case kOp3Ld: return Op::kLd;
      case kOp3Ldub: return Op::kLdub;
      case kOp3Lduh: return Op::kLduh;
      case kOp3St: return Op::kSt;
      case kOp3Stb: return Op::kStb;
      case kOp3Sth: return Op::kSth;
      default: return Op::kInvalid;
    }
}

u32
op3FromMemOp(Op op)
{
    switch (op) {
      case Op::kLd: return kOp3Ld;
      case Op::kLdub: return kOp3Ldub;
      case Op::kLduh: return kOp3Lduh;
      case Op::kSt: return kOp3St;
      case Op::kStb: return kOp3Stb;
      case Op::kSth: return kOp3Sth;
      default: FLEX_PANIC("op3FromMemOp: not a memory op");
    }
}

}  // namespace

Instruction
decode(u32 word)
{
    Instruction inst;
    inst.raw = word;
    const u32 op = bits(word, 31, 30);

    switch (op) {
      case 0: {  // format 2: SETHI / Bicc
        const u32 op2 = bits(word, 24, 22);
        if (op2 == 0x4) {  // SETHI
            inst.op = Op::kSethi;
            inst.rd = static_cast<u8>(bits(word, 29, 25));
            inst.imm22 = bits(word, 21, 0);
            inst.valid = true;
            // The canonical NOP is sethi 0, %g0; give it its own
            // CFGR class so filters can ignore it cheaply.
            inst.type = (inst.rd == 0 && inst.imm22 == 0)
                ? kTypeNop : kTypeSethi;
            return inst;
        }
        if (op2 == 0x2) {  // Bicc
            inst.op = Op::kBicc;
            inst.annul = bit(word, 29) != 0;
            inst.cond = static_cast<Cond>(bits(word, 28, 25));
            inst.disp = signExtend(bits(word, 21, 0), 22);
            inst.valid = true;
            inst.type = kTypeBranch;
            return inst;
        }
        return inst;  // invalid
      }
      case 1: {  // format 1: CALL
        inst.op = Op::kCall;
        inst.disp = signExtend(bits(word, 29, 0), 30);
        inst.rd = 15;  // CALL writes %o7
        inst.valid = true;
        inst.type = kTypeCall;
        return inst;
      }
      case 2: {  // format 3: arithmetic / control / cpop
        const u32 op3 = bits(word, 24, 19);
        inst.op = arithOpFromOp3(op3);
        if (inst.op == Op::kInvalid)
            return inst;
        inst.rd = static_cast<u8>(bits(word, 29, 25));
        inst.rs1 = static_cast<u8>(bits(word, 18, 14));
        inst.has_imm = bit(word, 13) != 0;
        if (inst.op == Op::kCpop1 || inst.op == Op::kCpop2) {
            inst.cpop_fn = static_cast<CpopFn>(bits(word, 12, 9));
            if (inst.has_imm)
                inst.simm = signExtend(bits(word, 8, 0), 9);
            else
                inst.rs2 = static_cast<u8>(bits(word, 4, 0));
        } else if (inst.has_imm) {
            inst.simm = signExtend(bits(word, 12, 0), 13);
        } else {
            inst.rs2 = static_cast<u8>(bits(word, 4, 0));
        }
        if (inst.op == Op::kTicc)
            inst.cond = static_cast<Cond>(bits(word, 28, 25));
        inst.valid = true;
        inst.type = classOf(inst.op);
        return inst;
      }
      case 3: {  // format 3: memory
        const u32 op3 = bits(word, 24, 19);
        inst.op = memOpFromOp3(op3);
        if (inst.op == Op::kInvalid)
            return inst;
        inst.rd = static_cast<u8>(bits(word, 29, 25));
        inst.rs1 = static_cast<u8>(bits(word, 18, 14));
        inst.has_imm = bit(word, 13) != 0;
        if (inst.has_imm)
            inst.simm = signExtend(bits(word, 12, 0), 13);
        else
            inst.rs2 = static_cast<u8>(bits(word, 4, 0));
        inst.valid = true;
        inst.type = classOf(inst.op);
        return inst;
      }
    }
    return inst;
}

u32
encode(const Instruction &inst)
{
    switch (inst.op) {
      case Op::kSethi: {
        u32 word = 0;
        word = insertBits(word, 29, 25, inst.rd);
        word = insertBits(word, 24, 22, 0x4);
        word = insertBits(word, 21, 0, inst.imm22);
        return word;
      }
      case Op::kBicc: {
        u32 word = 0;
        word = insertBits(word, 29, 29, inst.annul ? 1 : 0);
        word = insertBits(word, 28, 25, static_cast<u32>(inst.cond));
        word = insertBits(word, 24, 22, 0x2);
        word = insertBits(word, 21, 0, static_cast<u32>(inst.disp));
        return word;
      }
      case Op::kCall: {
        u32 word = insertBits(0, 31, 30, 1);
        word = insertBits(word, 29, 0, static_cast<u32>(inst.disp));
        return word;
      }
      case Op::kLd: case Op::kLdub: case Op::kLduh:
      case Op::kSt: case Op::kStb: case Op::kSth: {
        u32 word = insertBits(0, 31, 30, 3);
        word = insertBits(word, 29, 25, inst.rd);
        word = insertBits(word, 24, 19, op3FromMemOp(inst.op));
        word = insertBits(word, 18, 14, inst.rs1);
        word = insertBits(word, 13, 13, inst.has_imm ? 1 : 0);
        if (inst.has_imm)
            word = insertBits(word, 12, 0, static_cast<u32>(inst.simm));
        else
            word = insertBits(word, 4, 0, inst.rs2);
        return word;
      }
      case Op::kInvalid:
      case Op::kNumOps:
        FLEX_PANIC("encode of invalid instruction");
      default: {  // format-3 arithmetic / control / cpop
        u32 word = insertBits(0, 31, 30, 2);
        word = insertBits(word, 29, 25, inst.rd);
        word = insertBits(word, 24, 19, op3FromArithOp(inst.op));
        word = insertBits(word, 18, 14, inst.rs1);
        word = insertBits(word, 13, 13, inst.has_imm ? 1 : 0);
        if (inst.op == Op::kCpop1 || inst.op == Op::kCpop2) {
            word = insertBits(word, 12, 9,
                              static_cast<u32>(inst.cpop_fn));
            if (inst.has_imm)
                word = insertBits(word, 8, 0, static_cast<u32>(inst.simm));
            else
                word = insertBits(word, 4, 0, inst.rs2);
        } else if (inst.has_imm) {
            word = insertBits(word, 12, 0, static_cast<u32>(inst.simm));
        } else {
            word = insertBits(word, 4, 0, inst.rs2);
        }
        if (inst.op == Op::kTicc) {
            word = insertBits(word, 28, 25, static_cast<u32>(inst.cond));
        }
        return word;
      }
    }
}

}  // namespace flexcore
