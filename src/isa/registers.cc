#include "isa/registers.h"

#include <cctype>

#include "common/log.h"

namespace flexcore {

std::string
archRegName(unsigned arch_reg)
{
    if (arch_reg >= kNumArchRegs)
        FLEX_PANIC("bad architectural register index ", arch_reg);
    static const char kGroups[4] = {'g', 'o', 'l', 'i'};
    std::string name = "%";
    name += kGroups[arch_reg / 8];
    name += static_cast<char>('0' + arch_reg % 8);
    return name;
}

bool
parseRegName(const std::string &name, unsigned *arch_reg)
{
    if (name.size() < 3 || name[0] != '%')
        return false;
    const std::string body = name.substr(1);
    if (body == "sp") {
        *arch_reg = kRegSp;
        return true;
    }
    if (body == "fp") {
        *arch_reg = kRegFp;
        return true;
    }
    if (body[0] == 'r') {
        unsigned idx = 0;
        for (size_t i = 1; i < body.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(body[i])))
                return false;
            idx = idx * 10 + (body[i] - '0');
        }
        if (idx >= kNumArchRegs)
            return false;
        *arch_reg = idx;
        return true;
    }
    if (body.size() != 2 || body[1] < '0' || body[1] > '7')
        return false;
    unsigned group;
    switch (body[0]) {
      case 'g': group = 0; break;
      case 'o': group = 1; break;
      case 'l': group = 2; break;
      case 'i': group = 3; break;
      default: return false;
    }
    *arch_reg = group * 8 + (body[1] - '0');
    return true;
}

}  // namespace flexcore
