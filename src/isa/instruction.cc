#include "isa/instruction.h"

namespace flexcore {

Instruction
makeNop()
{
    Instruction inst;
    inst.op = Op::kSethi;
    inst.type = kTypeNop;
    inst.rd = 0;
    inst.imm22 = 0;
    inst.valid = true;
    inst.raw = 0x01000000;  // sethi 0, %g0
    return inst;
}

}  // namespace flexcore
