#include "isa/instruction.h"

namespace flexcore {

bool
Instruction::readsRs1() const
{
    switch (op) {
      case Op::kSethi:
      case Op::kBicc:
      case Op::kCall:
      case Op::kRdy:
        return false;
      default:
        return valid;
    }
}

bool
Instruction::readsRs2() const
{
    if (has_imm)
        return false;
    switch (op) {
      case Op::kSethi:
      case Op::kBicc:
      case Op::kCall:
      case Op::kRdy:
      case Op::kWry:   // wr %rs1, %y in our subset (rs2 unused)
        return false;
      default:
        return valid;
    }
}

bool
Instruction::writesRd() const
{
    switch (op) {
      case Op::kBicc:
      case Op::kTicc:
      case Op::kWry:
      case Op::kSt:
      case Op::kStb:
      case Op::kSth:
      case Op::kCpop2:
        return false;
      case Op::kCpop1:
        // only the 'read from co-processor' function writes a register
        return cpop_fn == CpopFn::kReadTag;
      case Op::kCall:
        return true;   // writes %o7
      default:
        return valid && rd != 0;
    }
}

Instruction
makeNop()
{
    Instruction inst;
    inst.op = Op::kSethi;
    inst.type = kTypeNop;
    inst.rd = 0;
    inst.imm22 = 0;
    inst.valid = true;
    inst.raw = 0x01000000;  // sethi 0, %g0
    return inst;
}

}  // namespace flexcore
