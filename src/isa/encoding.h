/**
 * @file
 * Binary encode/decode between 32-bit SPARC V8 instruction words and
 * the decoded Instruction struct.
 *
 * The encodings follow the SPARC V8 manual for every instruction except
 * CPop1/CPop2, where we repurpose bits [13:9] as an i bit plus a 4-bit
 * function code and bits [8:0] as a signed 9-bit immediate so that
 * monitor-visible instructions can carry small offsets and tag values
 * (documented in DESIGN.md).
 */

#ifndef FLEXCORE_ISA_ENCODING_H_
#define FLEXCORE_ISA_ENCODING_H_

#include "common/types.h"
#include "isa/instruction.h"

namespace flexcore {

/** Decode a 32-bit instruction word; inst.valid = false on failure. */
Instruction decode(u32 word);

/**
 * Encode a decoded instruction back to its 32-bit word. The op, rd,
 * rs1, rs2, has_imm, simm/imm22/disp, cond, annul, and cpop_fn fields
 * must be populated; raw and type are ignored.
 */
u32 encode(const Instruction &inst);

}  // namespace flexcore

#endif  // FLEXCORE_ISA_ENCODING_H_
