/**
 * @file
 * PROF: a custom performance-monitoring extension (§II-B: "the
 * co-processing model can support simple profiling applications such
 * as custom performance monitors and detailed analysis of software
 * characteristics"). It counts instruction-mix events and tracks the
 * program's memory working set with a touched-bit per word in the
 * meta-data space; software reads the counters back with `m.read`.
 *
 * Profiling tolerates sampling, so PROF uses the CFGR's
 * accept-if-not-full policy for the trace classes: when the FIFO is
 * full, packets are dropped instead of stalling the core — the
 * interface's policy (ii), unused by the paper's four extensions.
 */

#ifndef FLEXCORE_MONITORS_PROF_H_
#define FLEXCORE_MONITORS_PROF_H_

#include "monitors/monitor.h"

namespace flexcore {

class ProfMonitor : public Monitor
{
  public:
    /** `m.read %rd, sel` selectors. */
    enum Selector : u8 {
        kSelPackets = 0,
        kSelLoads = 1,
        kSelStores = 2,
        kSelAlu = 3,
        kSelBranchesTaken = 4,
        kSelTouchedWords = 5,
        kSelJumps = 6,
    };

    std::string_view name() const override { return "prof"; }
    unsigned pipelineDepth() const override { return 3; }
    unsigned tagBitsPerWord() const override { return 1; }

    void process(const CommitPacket &packet,
                 MonitorResult *result) override;
    void reset() override;

    u64 packets() const { return packets_; }
    u64 loads() const { return loads_; }
    u64 stores() const { return stores_; }
    u64 touchedWords() const { return touched_words_; }

  private:
    u64 packets_ = 0;
    u64 loads_ = 0;
    u64 stores_ = 0;
    u64 alu_ = 0;
    u64 branches_taken_ = 0;
    u64 jumps_ = 0;
    u64 touched_words_ = 0;
};

}  // namespace flexcore

#endif  // FLEXCORE_MONITORS_PROF_H_
