/**
 * @file
 * Color-based Array Bound Check (BC, §IV-C): a 4-bit color per
 * register and an 8-bit tag per memory word (low nibble = location
 * color, high nibble = color of a pointer stored at that word).
 * Pointer colors propagate through arithmetic; each memory access
 * checks the accessing pointer's color against the location color.
 */

#ifndef FLEXCORE_MONITORS_BC_H_
#define FLEXCORE_MONITORS_BC_H_

#include "monitors/monitor.h"

namespace flexcore {

class BcMonitor : public Monitor
{
  public:
    std::string_view name() const override { return "bc"; }
    unsigned pipelineDepth() const override { return 5; }
    unsigned tagBitsPerWord() const override { return 8; }

    void process(const CommitPacket &packet,
                 MonitorResult *result) override;

    /** Functional inspection for tests/examples. */
    u8 regColor(u16 phys_reg) const
    {
        return reg_tags_.read(phys_reg) & 0xf;
    }
    u8 memColor(Addr addr) const { return mem_tags_.read(addr) & 0xf; }
    u8 storedPtrColor(Addr addr) const
    {
        return (mem_tags_.read(addr) >> 4) & 0xf;
    }

  private:
    void handleCpop(const CommitPacket &packet, MonitorResult *result);

    /** Color of the pointer used for the access (base + index). */
    u8 accessColor(const CommitPacket &packet) const;
};

}  // namespace flexcore

#endif  // FLEXCORE_MONITORS_BC_H_
