/**
 * @file
 * Soft Error Check (SEC, §IV-D): verifies every ALU result from the
 * main core. Additions, subtractions, logic, and shifts are re-executed
 * bit-exactly; multiplications are verified with modular arithmetic
 * (mod the Mersenne number 7), and divisions by recomputation. SEC
 * keeps no meta-data and needs no meta-data cache.
 */

#ifndef FLEXCORE_MONITORS_SEC_H_
#define FLEXCORE_MONITORS_SEC_H_

#include "core/alu.h"
#include "monitors/monitor.h"

namespace flexcore {

class SecMonitor : public Monitor
{
  public:
    std::string_view name() const override { return "sec"; }
    unsigned pipelineDepth() const override { return 6; }
    unsigned tagBitsPerWord() const override { return 0; }

    void configureCfgr(Cfgr *cfgr) const override;
    void process(const CommitPacket &packet,
                 MonitorResult *result) override;

    u64 checksPerformed() const { return checks_; }
    u64 errorsDetected() const { return errors_; }

    /** Residue of a value modulo the Mersenne number 2^3 - 1 = 7. */
    static u32 mod7(u32 value);

  private:
    Alu checker_alu_;   //!< fault-free re-execution unit
    u64 checks_ = 0;
    u64 errors_ = 0;
};

}  // namespace flexcore

#endif  // FLEXCORE_MONITORS_SEC_H_
