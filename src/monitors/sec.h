/**
 * @file
 * Soft Error Check (SEC, §IV-D): verifies every ALU result from the
 * main core. Additions, subtractions, logic, and shifts are re-executed
 * bit-exactly; multiplications are verified with modular arithmetic
 * (mod the Mersenne number 7), and divisions by recomputation.
 *
 * On top of the paper's ALU check, this SEC keeps a 4-bit residue code
 * per physical register in the fabric's shadow register file: every
 * forwarded register write stores `valid | mod7(value)`, and every
 * forwarded operand is checked against its stored residue. A single
 * bit flip in the register file changes the value by 2^k, and
 * 2^k mod 7 ∈ {1, 2, 4} is never 0, so any single-bit register
 * corruption that is subsequently *used* is guaranteed to change the
 * residue and be detected. SEC needs no per-word memory meta-data and
 * no meta-data cache.
 */

#ifndef FLEXCORE_MONITORS_SEC_H_
#define FLEXCORE_MONITORS_SEC_H_

#include "core/alu.h"
#include "monitors/monitor.h"

namespace flexcore {

class SecMonitor : public Monitor
{
  public:
    std::string_view name() const override { return "sec"; }
    unsigned pipelineDepth() const override { return 6; }
    unsigned tagBitsPerWord() const override { return 0; }

    void process(const CommitPacket &packet,
                 MonitorResult *result) override;

    u64 checksPerformed() const { return checks_; }
    u64 errorsDetected() const { return errors_; }

    /** Residue of a value modulo the Mersenne number 2^3 - 1 = 7. */
    static u32 mod7(u32 value);

    /** Shadow-entry encoding: bit 3 = residue known, bits 0..2 = mod7. */
    static constexpr u8 kResidueValid = 0x8;

  private:
    /** True iff @p phys has a known residue that contradicts @p value. */
    bool operandCorrupted(u16 phys, u32 value) const;

    Alu checker_alu_;   //!< fault-free re-execution unit
    u64 checks_ = 0;
    u64 errors_ = 0;
};

}  // namespace flexcore

#endif  // FLEXCORE_MONITORS_SEC_H_
