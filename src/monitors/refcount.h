/**
 * @file
 * REFCNT: reference-counting support for garbage collection (§II-B
 * cites Joao et al.'s hardware reference-counting acceleration as a
 * natural parallel-bookkeeping extension). Unlike the checking
 * extensions, REFCNT never traps: it performs pure bookkeeping.
 *
 * Software declares pointer slots (`m.setmtag [slot], 1`) and object
 * headers (`m.settag %robj` is not needed — objects are identified by
 * their base address). On every store to a declared slot the extension
 * decrements the reference count of the slot's previous target and
 * increments the new target's count, maintaining its own shadow copy
 * of slot contents so the old pointer never has to be re-read from
 * memory. The collector reads counts back with `m.read %rd, 0` (count
 * of the object at the address in the preceding `m.base`-style query
 * packet's ADDR field — here simply ADDR of the m.read itself).
 */

#ifndef FLEXCORE_MONITORS_REFCOUNT_H_
#define FLEXCORE_MONITORS_REFCOUNT_H_

#include <unordered_map>

#include "monitors/monitor.h"

namespace flexcore {

class RefCountMonitor : public Monitor
{
  public:
    std::string_view name() const override { return "refcnt"; }
    unsigned pipelineDepth() const override { return 4; }
    unsigned tagBitsPerWord() const override { return 1; }

    void process(const CommitPacket &packet,
                 MonitorResult *result) override;
    void reset() override;

    /** Current reference count of the object at @p base (0 if none). */
    s32 refCount(Addr base) const;

    /** Number of objects whose count dropped to zero (collectable). */
    u64 zeroEvents() const { return zero_events_; }

  private:
    void adjust(Addr object, s32 delta);

    /** Shadow copy of declared pointer slots' contents. */
    std::unordered_map<Addr, Addr> slot_values_;
    /** Reference counts keyed by object base address. */
    std::unordered_map<Addr, s32> counts_;
    u64 zero_events_ = 0;
};

}  // namespace flexcore

#endif  // FLEXCORE_MONITORS_REFCOUNT_H_
