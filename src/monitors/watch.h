/**
 * @file
 * WATCH: iWatcher-class hardware watchpoints (§II-B cites Zhou et
 * al.'s iWatcher as a FlexCore-suitable debugging extension). Software
 * marks words as watched (`m.setmtag [addr], mode`); the extension
 * counts every access to a watched word and, in trapping mode, stops
 * the program on the first access — without any code instrumentation
 * and at word granularity.
 *
 * Watch modes (4-bit tag):
 *   0 = not watched
 *   1 = count loads and stores (non-intrusive profiling of a variable)
 *   2 = trap on store (classic "who is corrupting this?" watchpoint)
 *   3 = trap on any access
 */

#ifndef FLEXCORE_MONITORS_WATCH_H_
#define FLEXCORE_MONITORS_WATCH_H_

#include "monitors/monitor.h"

namespace flexcore {

class WatchMonitor : public Monitor
{
  public:
    enum Mode : u8 {
        kNotWatched = 0,
        kCount = 1,
        kTrapStore = 2,
        kTrapAccess = 3,
    };

    /** `m.read` selectors. */
    enum Selector : u8 {
        kSelHits = 0,        //!< accesses to watched words
        kSelLoadHits = 1,
        kSelStoreHits = 2,
    };

    std::string_view name() const override { return "watch"; }
    unsigned pipelineDepth() const override { return 3; }
    unsigned tagBitsPerWord() const override { return 4; }

    void process(const CommitPacket &packet,
                 MonitorResult *result) override;
    void reset() override;

    Mode mode(Addr addr) const
    {
        return static_cast<Mode>(mem_tags_.read(addr) & 0x3);
    }
    u64 hits() const { return hits_; }

  private:
    u64 hits_ = 0;
    u64 load_hits_ = 0;
    u64 store_hits_ = 0;
};

}  // namespace flexcore

#endif  // FLEXCORE_MONITORS_WATCH_H_
