/**
 * @file
 * Software-instrumentation monitoring models. Instead of forwarding a
 * trace to a fabric, each committed instruction is expanded in-line
 * with the bookkeeping instruction sequence a binary-instrumentation
 * implementation (LIFT / Purify class, §V-C) would execute on the same
 * core: extra ALU work plus tag loads/stores that go through the real
 * D-cache to a shadow memory region.
 */

#ifndef FLEXCORE_MONITORS_SOFTWARE_H_
#define FLEXCORE_MONITORS_SOFTWARE_H_

#include <string_view>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace flexcore {

/** One synthetic instrumentation instruction. */
struct SwMicroOp
{
    enum class Kind : u8 { kAlu, kLoad, kStore };
    Kind kind = Kind::kAlu;
    Addr addr = 0;   //!< effective address for kLoad/kStore
};

/** Interface the core consults at commit when software monitoring is on. */
class SoftwareMonitor
{
  public:
    virtual ~SoftwareMonitor() = default;

    virtual std::string_view name() const = 0;

    /**
     * Append the instrumentation expansion of one committed
     * instruction to @p out. @p effective_addr is valid for loads and
     * stores.
     */
    virtual void expand(const Instruction &inst, Addr effective_addr,
                        std::vector<SwMicroOp> *out) const = 0;
};

/** Shadow-memory base used by all software monitors. */
inline constexpr Addr kSwShadowBase = 0x30000000;

/** Factory: software DIFT (LIFT-class inline taint tracking). */
SoftwareMonitor *softwareDift();
/** Factory: software UMC (Purify-class initialization tracking). */
SoftwareMonitor *softwareUmc();
/** Factory: software bounds checking (color-table lookups). */
SoftwareMonitor *softwareBc();
/** Factory: software SEC (instruction duplication + compare). */
SoftwareMonitor *softwareSec();

}  // namespace flexcore

#endif  // FLEXCORE_MONITORS_SOFTWARE_H_
