#include "monitors/prof.h"

#include "extensions/builtin.h"
#include "extensions/registry.h"
#include "synth/extension_synth.h"

namespace flexcore {

void
registerProfExtension(ExtensionRegistry &registry)
{
    using K = Primitive::Kind;
    ExtensionDescriptor desc;
    desc.kind = MonitorKind::kProf;
    desc.name = "prof";
    desc.doc = "working-set and instruction-mix profiler "
               "(droppable forwarding, counter bank on the fabric)";
    desc.make = [](const MonitorOptions &) -> std::unique_ptr<Monitor> {
        return std::make_unique<ProfMonitor>();
    };
    desc.pipeline_depth = 3;
    desc.tag_bits_per_word = 1;
    desc.default_flex_period = 2;
    // Trace classes may be sampled: drop rather than stall when full.
    desc.forwardClasses({kTypeAluAdd, kTypeAluSub, kTypeAluLogic,
                         kTypeAluShift, kTypeMul, kTypeDiv,
                         kTypeLoadWord, kTypeLoadByte, kTypeLoadHalf,
                         kTypeStoreWord, kTypeStoreByte, kTypeStoreHalf,
                         kTypeBranch, kTypeIndirectJump, kTypeCall},
                        ForwardPolicy::kIfNotFull);
    // Reads of the counters must not be dropped.
    desc.forwardClasses({kTypeCpop1, kTypeCpop2});
    desc.tapped_groups = 3;
    desc.build_fabric = [](const ExtensionDescriptor &d,
                           Inventory *fab) {
        // Working-set profiler: counters plus the touched-bit path.
        fab->critical_levels = 4.0;
        fab->add(K::kAdder, 32);          // tag address translation
        fab->add(K::kAdder, 32, 2);       // 32-bit event counters (inc)
        fab->add(K::kDecoder, 4);
        fab->add(K::kRandomLogic, 160);
        fab->add(K::kRegister, 32, 7);    // the counter bank
        fab->add(K::kRegister, 40, d.pipeline_depth);
    };
    registry.add(std::move(desc));
}

void
ProfMonitor::process(const CommitPacket &packet, MonitorResult *result)
{
    const Instruction &di = packet.di;

    if (di.op == Op::kCpop1 || di.op == Op::kCpop2) {
        if (di.cpop_fn == CpopFn::kReadTag) {
            result->has_bfifo = true;
            switch (static_cast<Selector>(di.simm & 0xff)) {
              case kSelPackets:
                result->bfifo = static_cast<u32>(packets_);
                break;
              case kSelLoads:
                result->bfifo = static_cast<u32>(loads_);
                break;
              case kSelStores:
                result->bfifo = static_cast<u32>(stores_);
                break;
              case kSelAlu:
                result->bfifo = static_cast<u32>(alu_);
                break;
              case kSelBranchesTaken:
                result->bfifo = static_cast<u32>(branches_taken_);
                break;
              case kSelTouchedWords:
                result->bfifo = static_cast<u32>(touched_words_);
                break;
              case kSelJumps:
                result->bfifo = static_cast<u32>(jumps_);
                break;
              default:
                result->bfifo = 0;
                break;
            }
        } else if (di.cpop_fn == CpopFn::kSetPolicy) {
            policy_ = packet.addr;
        } else if (di.cpop_fn == CpopFn::kSetBase) {
            meta_base_ = packet.res;
        }
        return;
    }

    ++packets_;
    if (isLoad(di.op) || isStore(di.op)) {
        if (isLoad(di.op))
            ++loads_;
        else
            ++stores_;
        // Working-set tracking: one touched bit per word.
        if (mem_tags_.read(packet.addr) == 0) {
            mem_tags_.write(packet.addr, 1);
            ++touched_words_;
            result->addOp(metaAddr(packet.addr), true);
        } else {
            result->addOp(metaAddr(packet.addr), false);
        }
        return;
    }
    switch (di.type) {
      case kTypeAluAdd: case kTypeAluSub: case kTypeAluLogic:
      case kTypeAluShift: case kTypeMul: case kTypeDiv:
        ++alu_;
        break;
      case kTypeBranch:
        branches_taken_ += packet.branch;
        break;
      case kTypeIndirectJump:
      case kTypeCall:
        ++jumps_;
        break;
      default:
        break;
    }
}

void
ProfMonitor::reset()
{
    Monitor::reset();
    packets_ = loads_ = stores_ = alu_ = 0;
    branches_taken_ = jumps_ = touched_words_ = 0;
}

}  // namespace flexcore
