#include "monitors/umc.h"

#include "extensions/builtin.h"
#include "extensions/registry.h"
#include "synth/extension_synth.h"

namespace flexcore {

void
registerUmcExtension(ExtensionRegistry &registry)
{
    using K = Primitive::Kind;
    ExtensionDescriptor desc;
    desc.kind = MonitorKind::kUmc;
    desc.name = "umc";
    desc.doc = "uninitialized memory check: init bit per word, set on "
               "stores, checked on loads";
    desc.make = [](const MonitorOptions &) -> std::unique_ptr<Monitor> {
        return std::make_unique<UmcMonitor>();
    };
    desc.pipeline_depth = 3;
    desc.tag_bits_per_word = 1;
    desc.default_flex_period = 2;
    desc.forwardClasses({kTypeLoadWord, kTypeLoadByte, kTypeLoadHalf,
                         kTypeStoreWord, kTypeStoreByte, kTypeStoreHalf,
                         kTypeCpop1, kTypeCpop2});
    desc.tapped_groups = 2;   // address + opcode
    desc.build_fabric = [](const ExtensionDescriptor &d,
                           Inventory *fab) {
        fab->critical_levels = 4.0;
        fab->add(K::kAdder, 32);          // tag address translation
        fab->add(K::kMux, 32);            // tag bit write alignment
        fab->add(K::kDecoder, 4);         // opcode dispatch
        fab->add(K::kComparator, 1);      // tag check
        fab->add(K::kRandomLogic, 130);   // pipeline + cache control
        fab->add(K::kRegister, 40, d.pipeline_depth);
    };
    desc.build_asic = [](const ExtensionDescriptor &,
                         Inventory *asic) {
        asic->sram_bits =
            metaCacheBits(4 * 1024, 32) + forwardFifoBits(64);
        asic->sram_macros = 3;
        asic->add(K::kAdder, 32);
        asic->add(K::kRandomLogic, 5800);
    };
    desc.paper_grid = true;
    registry.add(std::move(desc));
}

u8
UmcMonitor::byteMask(Op op, Addr addr)
{
    switch (op) {
      case Op::kLd: case Op::kSt:
        return 0xf;
      case Op::kLduh: case Op::kSth:
        return static_cast<u8>(0x3 << (addr & 2));
      default:   // byte access
        return static_cast<u8>(0x1 << (addr & 3));
    }
}

void
UmcMonitor::onProgramLoad(Addr base, u32 size)
{
    // The OS marks statically initialized image memory as written.
    const u8 full = byte_granular_ ? 0xf : 1;
    for (Addr addr = base & ~3u; addr < base + size; addr += 4)
        mem_tags_.write(addr, full);
}

void
UmcMonitor::process(const CommitPacket &packet, MonitorResult *result)
{
    const Instruction &di = packet.di;
    if (di.op == Op::kCpop1 || di.op == Op::kCpop2) {
        handleCpop(packet, result);
        return;
    }
    if (isStore(di.op)) {
        if (byte_granular_) {
            const u8 tag = mem_tags_.read(packet.addr);
            mem_tags_.write(packet.addr,
                            tag | byteMask(di.op, packet.addr));
        } else {
            mem_tags_.write(packet.addr, 1);
        }
        result->addOp(metaAddr(packet.addr), true);
        return;
    }
    if (isLoad(di.op)) {
        result->addOp(metaAddr(packet.addr), false);
        bool ok;
        if (byte_granular_) {
            const u8 need = byteMask(di.op, packet.addr);
            ok = (mem_tags_.read(packet.addr) & need) == need;
        } else {
            ok = mem_tags_.read(packet.addr) != 0;
        }
        if (!ok && (policy_ & 1))
            result->setTrap("uninitialized memory read");
        return;
    }
}

void
UmcMonitor::handleCpop(const CommitPacket &packet, MonitorResult *result)
{
    switch (packet.di.cpop_fn) {
      case CpopFn::kSetMemTag:
        mem_tags_.write(packet.addr, byte_granular_ ? 0xf : 1);
        result->addOp(metaAddr(packet.addr), true);
        break;
      case CpopFn::kClearMemTag:
        mem_tags_.write(packet.addr, 0);
        result->addOp(metaAddr(packet.addr), true);
        break;
      case CpopFn::kReadTag:
        result->has_bfifo = true;
        result->bfifo = mem_tags_.read(packet.addr);
        result->addOp(metaAddr(packet.addr), false);
        break;
      case CpopFn::kSetPolicy:
        policy_ = packet.addr;
        break;
      case CpopFn::kSetBase:
        meta_base_ = packet.res;
        break;
      default:
        break;   // register-tag ops are meaningless for UMC
    }
}

}  // namespace flexcore
