/**
 * @file
 * Dynamic Information Flow Tracking (DIFT, §IV-B): one taint bit per
 * register and per memory word. Taint propagates through ALU ops
 * (OR of source tags), loads, and stores; indirect jumps through a
 * tainted register raise an exception. Software manages tags with the
 * m.settag/m.clrtag/m.setmtag/m.clrmtag/m.policy instructions.
 */

#ifndef FLEXCORE_MONITORS_DIFT_H_
#define FLEXCORE_MONITORS_DIFT_H_

#include "monitors/monitor.h"

namespace flexcore {

class DiftMonitor : public Monitor
{
  public:
    /** Policy register bits. */
    static constexpr u32 kCheckIndirectJumps = 1u << 0;

    /**
     * @param tag_bits taint tag width per register/word: 1 (the
     * prototype's boolean taint) or 4 (multi-source taint labels, the
     * variant discussed in the paper's footnote 2 — a bitmask of up to
     * four distinct input sources, OR-combined on propagation).
     */
    explicit DiftMonitor(unsigned tag_bits = 1);

    std::string_view name() const override { return "dift"; }
    unsigned pipelineDepth() const override { return 4; }
    unsigned tagBitsPerWord() const override { return tag_bits_; }

    void process(const CommitPacket &packet,
                 MonitorResult *result) override;

    /** Functional inspection for tests/examples. */
    bool regTainted(u16 phys_reg) const
    {
        return reg_tags_.read(phys_reg) != 0;
    }
    bool memTainted(Addr addr) const { return mem_tags_.read(addr) != 0; }

    /** Full label bitmask (meaningful with multi-bit tags). */
    u8 regLabel(u16 phys_reg) const { return reg_tags_.read(phys_reg); }
    u8 memLabel(Addr addr) const { return mem_tags_.read(addr); }

  private:
    void handleCpop(const CommitPacket &packet, MonitorResult *result);

    u8 tagMask() const
    {
        return static_cast<u8>((1u << tag_bits_) - 1);
    }

    unsigned tag_bits_;
};

}  // namespace flexcore

#endif  // FLEXCORE_MONITORS_DIFT_H_
