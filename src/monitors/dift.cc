#include "monitors/dift.h"

#include "common/log.h"
#include "extensions/builtin.h"
#include "extensions/registry.h"
#include "flexcore/shadow_regfile.h"
#include "synth/extension_synth.h"

namespace flexcore {

DiftMonitor::DiftMonitor(unsigned tag_bits)
    : tag_bits_(tag_bits)
{
    if (tag_bits != 1 && tag_bits != 4)
        FLEX_FATAL("DIFT supports 1- or 4-bit tags, not ", tag_bits);
}

void
registerDiftExtension(ExtensionRegistry &registry)
{
    using K = Primitive::Kind;
    ExtensionDescriptor desc;
    desc.kind = MonitorKind::kDift;
    desc.name = "dift";
    desc.doc = "dynamic information-flow tracking: taint propagates "
               "through ALU/memory ops, checked at indirect jumps";
    desc.make = [](const MonitorOptions &options)
        -> std::unique_ptr<Monitor> {
        return std::make_unique<DiftMonitor>(options.dift_tag_bits);
    };
    desc.pipeline_depth = 4;
    desc.tag_bits_per_word = 1;   // the default 1-bit boolean taint
    desc.default_flex_period = 2;
    desc.forwardClasses({kTypeAluAdd, kTypeAluSub, kTypeAluLogic,
                         kTypeAluShift, kTypeSethi, kTypeMul, kTypeDiv,
                         kTypeLoadWord, kTypeLoadByte, kTypeLoadHalf,
                         kTypeStoreWord, kTypeStoreByte, kTypeStoreHalf,
                         kTypeIndirectJump, kTypeCall, kTypeSave,
                         kTypeRestore, kTypeCpop1, kTypeCpop2});
    desc.tapped_groups = 9;   // values, regs, opcode, addr, ...
    desc.build_fabric = [](const ExtensionDescriptor &d,
                           Inventory *fab) {
        fab->critical_levels = 4.3;
        fab->add(K::kAdder, 32);          // tag address translation
        fab->add(K::kMux, 32);            // tag routing
        fab->add(K::kDecoder, 5);         // rule dispatch
        fab->add(K::kComparator, 1);      // jump-target check
        fab->add(K::kRandomLogic, 218);   // propagation rules + policy
        fab->add(K::kRegister, 48, d.pipeline_depth);
    };
    desc.build_asic = [](const ExtensionDescriptor &,
                         Inventory *asic) {
        asic->sram_bits =
            metaCacheBits(4 * 1024, 32) + forwardFifoBits(64);
        asic->sram_macros = 3;
        asic->add(K::kAdder, 32);
        asic->add(K::kRegister, kNumPhysRegs);   // 1-bit tag regfile
        asic->add(K::kRandomLogic, 22900);
    };
    desc.paper_grid = true;
    registry.add(std::move(desc));
}

void
DiftMonitor::process(const CommitPacket &packet, MonitorResult *result)
{
    const Instruction &di = packet.di;

    if (di.op == Op::kCpop1 || di.op == Op::kCpop2) {
        handleCpop(packet, result);
        return;
    }

    if (isLoad(di.op)) {
        const u8 tag = mem_tags_.read(packet.addr);
        reg_tags_.write(packet.dest, tag);
        result->addOp(metaAddr(packet.addr), false);
        return;
    }
    if (isStore(di.op)) {
        // DEST carries the store-data register.
        mem_tags_.write(packet.addr, reg_tags_.read(packet.dest));
        result->addOp(metaAddr(packet.addr), true);
        return;
    }

    switch (di.type) {
      case kTypeSethi:
        reg_tags_.write(packet.dest, 0);   // immediate: untainted
        break;
      case kTypeAluAdd:
      case kTypeAluSub:
      case kTypeAluLogic:
      case kTypeAluShift:
      case kTypeMul:
      case kTypeDiv:
      case kTypeSave:
      case kTypeRestore: {
        const u8 tag = static_cast<u8>(reg_tags_.read(packet.src1) |
                                       reg_tags_.read(packet.src2));
        reg_tags_.write(packet.dest, tag);
        break;
      }
      case kTypeIndirectJump:
        if ((policy_ & kCheckIndirectJumps) &&
            reg_tags_.read(packet.src1) != 0) {
            result->setTrap("tainted indirect jump target");
        }
        // The link register receives the (untainted) return address.
        reg_tags_.write(packet.dest, 0);
        break;
      case kTypeCall:
        reg_tags_.write(packet.dest, 0);   // %o7 = PC, untainted
        break;
      default:
        break;
    }
}

void
DiftMonitor::handleCpop(const CommitPacket &packet, MonitorResult *result)
{
    // The tag value travels in the instruction's rd field (DEST); a
    // zero value means "the default label", i.e. plain taint bit 0.
    const u8 value =
        static_cast<u8>(packet.dest & 0x1f) & tagMask();
    switch (packet.di.cpop_fn) {
      case CpopFn::kSetRegTag:
        reg_tags_.write(packet.src1, value ? value : 1);
        break;
      case CpopFn::kClearRegTag:
        reg_tags_.write(packet.src1, 0);
        break;
      case CpopFn::kSetMemTag:
        mem_tags_.write(packet.addr, value ? value : 1);
        result->addOp(metaAddr(packet.addr), true);
        break;
      case CpopFn::kClearMemTag:
        mem_tags_.write(packet.addr, 0);
        result->addOp(metaAddr(packet.addr), true);
        break;
      case CpopFn::kSetPolicy:
        policy_ = packet.addr;
        break;
      case CpopFn::kReadTag:
        result->has_bfifo = true;
        result->bfifo = reg_tags_.read(packet.src1);
        break;
      case CpopFn::kSetBase:
        meta_base_ = packet.res;
        break;
      default:
        break;
    }
}

}  // namespace flexcore
