#include "monitors/sec.h"

#include "extensions/builtin.h"
#include "extensions/registry.h"
#include "synth/extension_synth.h"

namespace flexcore {

void
registerSecExtension(ExtensionRegistry &registry)
{
    using K = Primitive::Kind;
    ExtensionDescriptor desc;
    desc.kind = MonitorKind::kSec;
    desc.name = "sec";
    desc.doc = "soft-error check: re-executes ALU results and keeps "
               "mod-7 residues of every register write";
    desc.make = [](const MonitorOptions &) -> std::unique_ptr<Monitor> {
        return std::make_unique<SecMonitor>();
    };
    desc.pipeline_depth = 6;
    desc.tag_bits_per_word = 0;   // stateless in memory
    desc.default_flex_period = 4;
    // Every class that can write an integer register is forwarded so
    // the shadow residue file never goes stale: an unforwarded write
    // would leave the old residue behind and later reads of that
    // register would trap spuriously. Stores, branches, and traps
    // write no integer register and stay ignored; cpops stay ignored
    // because SEC itself is the co-processor.
    desc.forwardClasses({kTypeAluAdd, kTypeAluSub, kTypeAluLogic,
                         kTypeAluShift, kTypeMul, kTypeDiv, kTypeSethi,
                         kTypeLoadWord, kTypeLoadByte, kTypeLoadHalf,
                         kTypeCall, kTypeIndirectJump, kTypeSave,
                         kTypeRestore, kTypeReadY});
    desc.tapped_groups = 2;   // operands/result + opcode
    desc.build_fabric = [](const ExtensionDescriptor &d,
                           Inventory *fab) {
        fab->critical_levels = 5.6;
        fab->add(K::kAdder, 32);          // add/sub re-execution
        fab->add(K::kShifter, 32);        // shift re-execution
        fab->add(K::kComparator, 32, 2);  // result comparison
        fab->add(K::kMultiplier, 8);      // mod-7 residue unit
        fab->add(K::kRandomLogic, 828);   // logic-op checker + control
        fab->add(K::kRegister, 100, d.pipeline_depth);
    };
    desc.build_asic = [](const ExtensionDescriptor &,
                         Inventory *asic) {
        // No meta-data cache and no forward FIFO: the ASIC checker
        // taps the ALU directly (hence the tiny 0.15% area overhead
        // reported in the paper).
        asic->add(K::kAdder, 32);
        asic->add(K::kMultiplier, 4);
        asic->add(K::kRandomLogic, 470);
    };
    desc.paper_grid = true;
    registry.add(std::move(desc));
}

u32
SecMonitor::mod7(u32 value)
{
    // Repeated base-8 digit folding; 7 itself is congruent to 0.
    u32 sum = value;
    while (sum > 7) {
        u32 fold = 0;
        for (u32 v = sum; v != 0; v >>= 3)
            fold += v & 7;
        sum = fold;
    }
    return sum == 7 ? 0 : sum;
}

bool
SecMonitor::operandCorrupted(u16 phys, u32 value) const
{
    if (phys == 0)
        return false;
    const u8 tag = reg_tags_.read(phys);
    return (tag & kResidueValid) && (tag & 7) != mod7(value);
}

void
SecMonitor::process(const CommitPacket &packet, MonitorResult *result)
{
    const Instruction &di = packet.di;
    ++checks_;

    // Register residue check: the value read out of the register file
    // must still match the residue recorded when it was written. This
    // is what catches bit flips in the register file itself — the ALU
    // recomputation below runs on the same (corrupted) operands and
    // would agree with the faulty result.
    const bool residue_bad =
        operandCorrupted(packet.src1, packet.srcv1) ||
        operandCorrupted(packet.src2, packet.srcv2);

    bool alu_bad = false;
    switch (di.type) {
      case kTypeMul: {
        // Modular check: res ≡ a*b (mod 7) on the low 32 bits is not
        // exact, so check the full 64-bit product's residue against
        // the concatenated result (RES holds the low word, the high
        // word travels in the EXTRA... the prototype checks the low
        // word via full recomputation residues).
        const u64 product =
            static_cast<u64>(packet.srcv1) * packet.srcv2;
        const bool is_signed =
            di.op == Op::kSmul || di.op == Op::kSmulcc;
        const u64 sproduct = static_cast<u64>(
            static_cast<s64>(static_cast<s32>(packet.srcv1)) *
            static_cast<s64>(static_cast<s32>(packet.srcv2)));
        const u32 low = static_cast<u32>(is_signed ? sproduct : product);
        alu_bad = mod7(low) != mod7(packet.res);
        break;
      }
      case kTypeDiv: {
        // Recompute the quotient (Y assumed zero, matching the
        // `wr %g0, %y` convention of our runtime).
        const AluResult check =
            checker_alu_.execute(di.op, packet.srcv1, packet.srcv2, 0);
        alu_bad = !check.div_by_zero && check.value != packet.res;
        break;
      }
      case kTypeAluAdd:
      case kTypeAluSub:
      case kTypeAluLogic:
      case kTypeAluShift: {
        const AluResult check =
            checker_alu_.execute(di.op, packet.srcv1, packet.srcv2, 0);
        alu_bad = check.value != packet.res;
        break;
      }
      default:
        // Loads, sethi, call/jmpl, save/restore, rd %y: forwarded only
        // to keep the destination residue fresh; nothing to recompute.
        break;
    }

    if (residue_bad || alu_bad) {
        ++errors_;
        if (policy_ & 1) {
            result->setTrap(residue_bad
                                ? "register residue mismatch (soft error)"
                                : "ALU result mismatch (soft error)");
        }
    }

    // Record the destination's residue. Call/jmpl write the *link
    // address* (the instruction's own PC) to their destination; RES
    // carries the branch target for those, so derive the residue from
    // the PC instead.
    if (packet.dest != 0) {
        const u32 written = (di.type == kTypeCall ||
                             di.type == kTypeIndirectJump)
                                ? packet.pc
                                : packet.res;
        reg_tags_.write(packet.dest,
                        static_cast<u8>(kResidueValid | mod7(written)));
    }
}

}  // namespace flexcore
