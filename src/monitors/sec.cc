#include "monitors/sec.h"

namespace flexcore {

void
SecMonitor::configureCfgr(Cfgr *cfgr) const
{
    cfgr->setAll(ForwardPolicy::kIgnore);
    for (InstrType type : {kTypeAluAdd, kTypeAluSub, kTypeAluLogic,
                           kTypeAluShift, kTypeMul, kTypeDiv}) {
        cfgr->setPolicy(type, ForwardPolicy::kAlways);
    }
}

u32
SecMonitor::mod7(u32 value)
{
    // Repeated base-8 digit folding; 7 itself is congruent to 0.
    u32 sum = value;
    while (sum > 7) {
        u32 fold = 0;
        for (u32 v = sum; v != 0; v >>= 3)
            fold += v & 7;
        sum = fold;
    }
    return sum == 7 ? 0 : sum;
}

void
SecMonitor::process(const CommitPacket &packet, MonitorResult *result)
{
    const Instruction &di = packet.di;
    ++checks_;

    bool mismatch = false;
    switch (di.type) {
      case kTypeMul: {
        // Modular check: res ≡ a*b (mod 7) on the low 32 bits is not
        // exact, so check the full 64-bit product's residue against
        // the concatenated result (RES holds the low word, the high
        // word travels in the EXTRA... the prototype checks the low
        // word via full recomputation residues).
        const u64 product =
            static_cast<u64>(packet.srcv1) * packet.srcv2;
        const bool is_signed =
            di.op == Op::kSmul || di.op == Op::kSmulcc;
        const u64 sproduct = static_cast<u64>(
            static_cast<s64>(static_cast<s32>(packet.srcv1)) *
            static_cast<s64>(static_cast<s32>(packet.srcv2)));
        const u32 low = static_cast<u32>(is_signed ? sproduct : product);
        mismatch = mod7(low) != mod7(packet.res);
        break;
      }
      case kTypeDiv: {
        // Recompute the quotient (Y assumed zero, matching the
        // `wr %g0, %y` convention of our runtime).
        const AluResult check =
            checker_alu_.execute(di.op, packet.srcv1, packet.srcv2, 0);
        mismatch = !check.div_by_zero && check.value != packet.res;
        break;
      }
      case kTypeAluAdd:
      case kTypeAluSub:
      case kTypeAluLogic:
      case kTypeAluShift: {
        const AluResult check =
            checker_alu_.execute(di.op, packet.srcv1, packet.srcv2, 0);
        mismatch = check.value != packet.res;
        break;
      }
      default:
        return;
    }

    if (mismatch) {
        ++errors_;
        if (policy_ & 1)
            result->setTrap("ALU result mismatch (soft error)");
    }
}

}  // namespace flexcore
