#include "monitors/software.h"

#include "extensions/builtin.h"
#include "extensions/registry.h"

namespace flexcore {

namespace {

/**
 * Shared helper: expansion described as per-class costs. Shadow-table
 * accesses use the real D-cache path, so software monitoring both adds
 * instructions and pollutes the cache, as §V-C's cited software
 * systems do.
 */
class TableDrivenMonitor : public SoftwareMonitor
{
  public:
    struct Costs
    {
        u32 alu_alu = 0;        //!< extra ALU ops per monitored ALU op
        u32 mem_alu = 0;        //!< extra ALU ops per load/store
        bool mem_shadow = false;   //!< shadow-table access per load/store
        u32 jump_alu = 0;       //!< extra ALU ops per indirect jump
        u32 shadow_shift = 5;   //!< data addr -> shadow addr (>> shift)
    };

    TableDrivenMonitor(std::string_view name, Costs costs)
        : name_(name), costs_(costs)
    {
    }

    std::string_view name() const override { return name_; }

    void
    expand(const Instruction &inst, Addr effective_addr,
           std::vector<SwMicroOp> *out) const override
    {
        switch (inst.type) {
          case kTypeAluAdd:
          case kTypeAluSub:
          case kTypeAluLogic:
          case kTypeAluShift:
          case kTypeMul:
          case kTypeDiv:
            for (u32 i = 0; i < costs_.alu_alu; ++i)
                out->push_back({SwMicroOp::Kind::kAlu, 0});
            break;
          case kTypeLoadWord:
          case kTypeLoadByte:
          case kTypeLoadHalf:
          case kTypeStoreWord:
          case kTypeStoreByte:
          case kTypeStoreHalf: {
            for (u32 i = 0; i < costs_.mem_alu; ++i)
                out->push_back({SwMicroOp::Kind::kAlu, 0});
            if (costs_.mem_shadow) {
                const Addr shadow =
                    (kSwShadowBase +
                     (effective_addr >> costs_.shadow_shift)) &
                    ~3u;
                const bool is_store = isStore(inst.op);
                out->push_back({is_store ? SwMicroOp::Kind::kStore
                                         : SwMicroOp::Kind::kLoad,
                                shadow});
            }
            break;
          }
          case kTypeIndirectJump:
            for (u32 i = 0; i < costs_.jump_alu; ++i)
                out->push_back({SwMicroOp::Kind::kAlu, 0});
            break;
          default:
            break;
        }
    }

  private:
    std::string_view name_;
    Costs costs_;
};

}  // namespace

void
registerSoftwareModels(ExtensionRegistry &registry)
{
    registry.addSoftwareModel(
        MonitorKind::kUmc,
        []() -> const SoftwareMonitor * { return softwareUmc(); });
    registry.addSoftwareModel(
        MonitorKind::kDift,
        []() -> const SoftwareMonitor * { return softwareDift(); });
    registry.addSoftwareModel(
        MonitorKind::kBc,
        []() -> const SoftwareMonitor * { return softwareBc(); });
    registry.addSoftwareModel(
        MonitorKind::kSec,
        []() -> const SoftwareMonitor * { return softwareSec(); });
}

SoftwareMonitor *
softwareDift()
{
    // LIFT-class inline taint tracking: tag address computation and OR
    // per ALU op, shadow-tag move with address arithmetic per memory
    // op, check-and-branch before indirect jumps. LIFT reports 3.6x on
    // an aggressive out-of-order x86; an in-order core hides none of
    // the instrumentation.
    static TableDrivenMonitor monitor(
        "sw-dift", {.alu_alu = 3,
                    .mem_alu = 5,
                    .mem_shadow = true,
                    .jump_alu = 3,
                    .shadow_shift = 5});
    return &monitor;
}

SoftwareMonitor *
softwareUmc()
{
    // Purify-class initialization tracking: each access is wrapped in
    // an instrumented check sequence (state-byte load, mask, test,
    // branch, bookkeeping) - Purify reports up to 5.5x.
    static TableDrivenMonitor monitor(
        "sw-umc", {.alu_alu = 0,
                   .mem_alu = 12,
                   .mem_shadow = true,
                   .jump_alu = 0,
                   .shadow_shift = 5});
    return &monitor;
}

SoftwareMonitor *
softwareBc()
{
    // Bounds checking via a color/bounds table lookup per access plus
    // pointer-arithmetic bookkeeping.
    static TableDrivenMonitor monitor(
        "sw-bc", {.alu_alu = 0,
                  .mem_alu = 2,
                  .mem_shadow = true,
                  .jump_alu = 0,
                  .shadow_shift = 2});
    return &monitor;
}

SoftwareMonitor *
softwareSec()
{
    // Instruction duplication and compare (SWIFT-class).
    static TableDrivenMonitor monitor("sw-sec", {.alu_alu = 2,
                                                 .mem_alu = 1,
                                                 .mem_shadow = false,
                                                 .jump_alu = 1,
                                                 .shadow_shift = 5});
    return &monitor;
}

}  // namespace flexcore
