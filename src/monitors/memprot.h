/**
 * @file
 * MEMPROT: fine-grained (word-granular) memory protection in the
 * Mondrian style (§II-B cites Witchel et al.'s Mondrian memory
 * protection as a natural FlexCore extension). Each memory word
 * carries a permission tag; loads and stores are checked against it
 * and the extension traps on a violation. Software sets permissions
 * with `m.setmtag [addr], perm`.
 *
 * Permission encoding (4-bit tag, only 2 bits used):
 *   0 = default (read-write, the untagged state)
 *   1 = read-only
 *   2 = no-access
 *   3 = read-write (explicit)
 */

#ifndef FLEXCORE_MONITORS_MEMPROT_H_
#define FLEXCORE_MONITORS_MEMPROT_H_

#include "monitors/monitor.h"

namespace flexcore {

class MemProtMonitor : public Monitor
{
  public:
    enum Perm : u8 {
        kPermDefault = 0,
        kPermReadOnly = 1,
        kPermNoAccess = 2,
        kPermReadWrite = 3,
    };

    std::string_view name() const override { return "memprot"; }
    unsigned pipelineDepth() const override { return 3; }
    unsigned tagBitsPerWord() const override { return 4; }

    void process(const CommitPacket &packet,
                 MonitorResult *result) override;

    Perm permission(Addr addr) const
    {
        return static_cast<Perm>(mem_tags_.read(addr) & 0x3);
    }

  private:
    void handleCpop(const CommitPacket &packet, MonitorResult *result);
};

}  // namespace flexcore

#endif  // FLEXCORE_MONITORS_MEMPROT_H_
