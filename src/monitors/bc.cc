#include "monitors/bc.h"

#include "extensions/builtin.h"
#include "extensions/registry.h"
#include "flexcore/shadow_regfile.h"
#include "synth/extension_synth.h"

namespace flexcore {

void
registerBcExtension(ExtensionRegistry &registry)
{
    using K = Primitive::Kind;
    ExtensionDescriptor desc;
    desc.kind = MonitorKind::kBc;
    desc.name = "bc";
    desc.doc = "color-based array bounds check: pointer colors vs "
               "location colors on every load and store";
    desc.make = [](const MonitorOptions &) -> std::unique_ptr<Monitor> {
        return std::make_unique<BcMonitor>();
    };
    desc.pipeline_depth = 5;
    desc.tag_bits_per_word = 8;
    desc.default_flex_period = 2;
    // All arithmetic is forwarded: a pointer may flow through logic or
    // shift ops (alignment masks), so colors must follow conservatively.
    desc.forwardClasses({kTypeAluAdd, kTypeAluSub, kTypeAluLogic,
                         kTypeAluShift, kTypeLoadWord, kTypeLoadByte,
                         kTypeLoadHalf, kTypeStoreWord, kTypeStoreByte,
                         kTypeStoreHalf, kTypeSave, kTypeRestore,
                         kTypeCpop1, kTypeCpop2});
    desc.tapped_groups = 9;
    desc.build_fabric = [](const ExtensionDescriptor &d,
                           Inventory *fab) {
        fab->critical_levels = 5.0;
        fab->add(K::kAdder, 32);          // tag address translation
        fab->add(K::kAdder, 4, 2);        // color addition (two sources)
        fab->add(K::kComparator, 4, 2);   // color match (load + store)
        fab->add(K::kMux, 8);             // packed tag extract
        fab->add(K::kMux, 32);
        fab->add(K::kDecoder, 5);
        fab->add(K::kRandomLogic, 420);   // two-port sequencing control
        fab->add(K::kRegister, 56, d.pipeline_depth);
    };
    desc.build_asic = [](const ExtensionDescriptor &,
                         Inventory *asic) {
        asic->sram_bits =
            metaCacheBits(4 * 1024, 32) + forwardFifoBits(64);
        asic->sram_macros = 3;
        asic->add(K::kAdder, 32);
        asic->add(K::kRegister, kNumPhysRegs * 4);   // 4-bit colors
        asic->add(K::kRandomLogic, 41000);
    };
    desc.paper_grid = true;
    registry.add(std::move(desc));
}

u8
BcMonitor::accessColor(const CommitPacket &packet) const
{
    return static_cast<u8>((reg_tags_.read(packet.src1) +
                            reg_tags_.read(packet.src2)) &
                           0xf);
}

void
BcMonitor::process(const CommitPacket &packet, MonitorResult *result)
{
    const Instruction &di = packet.di;

    if (di.op == Op::kCpop1 || di.op == Op::kCpop2) {
        handleCpop(packet, result);
        return;
    }

    if (isLoad(di.op)) {
        const u8 mtag = mem_tags_.read(packet.addr);
        const u8 mem_color = mtag & 0xf;
        const u8 ptr_color = accessColor(packet);
        result->addOp(metaAddr(packet.addr), false);
        if ((policy_ & 1) && (mem_color != 0 || ptr_color != 0) &&
            ptr_color != mem_color) {
            result->setTrap("out-of-bounds load");
        }
        // The loaded value inherits the stored pointer color.
        reg_tags_.write(packet.dest, (mtag >> 4) & 0xf);
        return;
    }
    if (isStore(di.op)) {
        const u8 mtag = mem_tags_.read(packet.addr);
        const u8 mem_color = mtag & 0xf;
        const u8 ptr_color = accessColor(packet);
        // Check read, then tag write: two cache operations.
        result->addOp(metaAddr(packet.addr), false);
        result->addOp(metaAddr(packet.addr), true);
        if ((policy_ & 1) && (mem_color != 0 || ptr_color != 0) &&
            ptr_color != mem_color) {
            result->setTrap("out-of-bounds store");
        }
        const u8 data_color = reg_tags_.read(packet.dest) & 0xf;
        mem_tags_.write(packet.addr,
                        static_cast<u8>((data_color << 4) | mem_color));
        return;
    }

    switch (di.type) {
      case kTypeAluAdd:
      case kTypeAluSub:
      case kTypeAluLogic:
      case kTypeAluShift:
      case kTypeSave:
      case kTypeRestore: {
        // Pointer arithmetic: pointer + offset keeps the color
        // (offset registers carry color 0).
        const u8 color = static_cast<u8>((reg_tags_.read(packet.src1) +
                                          reg_tags_.read(packet.src2)) &
                                         0xf);
        reg_tags_.write(packet.dest, color);
        break;
      }
      case kTypeIndirectJump:
      case kTypeCall:
        // Link register receives a code address: colorless.
        reg_tags_.write(packet.dest, 0);
        break;
      default:
        break;
    }
}

void
BcMonitor::handleCpop(const CommitPacket &packet, MonitorResult *result)
{
    // For SetRegTag/SetMemTag the 4-bit color value travels in the
    // packet's DEST field (the instruction's rd slot).
    const u8 color = static_cast<u8>(packet.dest & 0xf);
    switch (packet.di.cpop_fn) {
      case CpopFn::kSetRegTag:
        reg_tags_.write(packet.src1, color);
        break;
      case CpopFn::kClearRegTag:
        reg_tags_.write(packet.src1, 0);
        break;
      case CpopFn::kSetMemTag: {
        // Allocation: set the location color, clear the pointer color.
        mem_tags_.write(packet.addr, color);
        result->addOp(metaAddr(packet.addr), true);
        break;
      }
      case CpopFn::kClearMemTag:
        mem_tags_.write(packet.addr, 0);
        result->addOp(metaAddr(packet.addr), true);
        break;
      case CpopFn::kSetPolicy:
        policy_ = packet.addr;
        break;
      case CpopFn::kReadTag:
        result->has_bfifo = true;
        result->bfifo = reg_tags_.read(packet.src1) & 0xf;
        break;
      case CpopFn::kSetBase:
        meta_base_ = packet.res;
        break;
      default:
        break;
    }
}

}  // namespace flexcore
