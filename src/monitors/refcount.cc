#include "monitors/refcount.h"

#include "extensions/builtin.h"
#include "extensions/registry.h"
#include "synth/extension_synth.h"

namespace flexcore {

void
registerRefCountExtension(ExtensionRegistry &registry)
{
    using K = Primitive::Kind;
    ExtensionDescriptor desc;
    desc.kind = MonitorKind::kRefCount;
    desc.name = "refcnt";
    desc.aliases = {"refcount"};
    desc.doc = "reference-counting GC support: per-object counts "
               "maintained from pointer stores";
    desc.make = [](const MonitorOptions &) -> std::unique_ptr<Monitor> {
        return std::make_unique<RefCountMonitor>();
    };
    desc.pipeline_depth = 4;
    desc.tag_bits_per_word = 1;
    desc.default_flex_period = 2;
    // Only stores mutate pointer slots; loads are irrelevant.
    desc.forwardClasses({kTypeStoreWord, kTypeCpop1, kTypeCpop2});
    desc.tapped_groups = 4;
    desc.build_fabric = [](const ExtensionDescriptor &d,
                           Inventory *fab) {
        // Bookkeeping-heavy: needs an adder for the count update and
        // wider state paths; counts and slot shadows live in meta-data
        // memory in a real implementation.
        fab->critical_levels = 4.5;
        fab->add(K::kAdder, 32, 2);       // inc/dec units
        fab->add(K::kAdder, 32);          // address translation
        fab->add(K::kMux, 32, 2);
        fab->add(K::kComparator, 32);     // zero detection
        fab->add(K::kRandomLogic, 220);
        fab->add(K::kRegister, 48, d.pipeline_depth);
    };
    registry.add(std::move(desc));
}

s32
RefCountMonitor::refCount(Addr base) const
{
    const auto it = counts_.find(base);
    return it == counts_.end() ? 0 : it->second;
}

void
RefCountMonitor::adjust(Addr object, s32 delta)
{
    if (object == 0)
        return;   // null pointers are not references
    s32 &count = counts_[object];
    count += delta;
    if (count <= 0) {
        ++zero_events_;
        counts_.erase(object);
    }
}

void
RefCountMonitor::process(const CommitPacket &packet,
                         MonitorResult *result)
{
    const Instruction &di = packet.di;

    if (di.op == Op::kCpop1 || di.op == Op::kCpop2) {
        switch (di.cpop_fn) {
          case CpopFn::kSetMemTag: {
            // Declare a pointer slot. Its current content (if the
            // program initialized it before declaring) is unknown to
            // us; slots are expected to be declared while null.
            mem_tags_.write(packet.addr, 1);
            slot_values_[packet.addr & ~3u] = 0;
            result->addOp(metaAddr(packet.addr), true);
            break;
          }
          case CpopFn::kClearMemTag: {
            // Retire a slot: its outgoing reference is dropped.
            const Addr slot = packet.addr & ~3u;
            const auto it = slot_values_.find(slot);
            if (it != slot_values_.end()) {
                adjust(it->second, -1);
                slot_values_.erase(it);
            }
            mem_tags_.write(packet.addr, 0);
            result->addOp(metaAddr(packet.addr), true);
            break;
          }
          case CpopFn::kReadTag:
            result->has_bfifo = true;
            result->bfifo =
                static_cast<u32>(refCount(packet.addr & ~3u));
            break;
          case CpopFn::kSetPolicy:
            policy_ = packet.addr;
            break;
          case CpopFn::kSetBase:
            meta_base_ = packet.res;
            break;
          default:
            break;
        }
        return;
    }

    if (di.op != Op::kSt)
        return;

    const Addr slot = packet.addr & ~3u;
    result->addOp(metaAddr(packet.addr), false);
    if (mem_tags_.read(packet.addr) == 0)
        return;   // not a declared pointer slot

    // RES carries the stored value: the new pointer target.
    auto &shadow = slot_values_[slot];
    adjust(shadow, -1);
    adjust(packet.res, +1);
    shadow = packet.res;
}

void
RefCountMonitor::reset()
{
    Monitor::reset();
    slot_values_.clear();
    counts_.clear();
    zero_events_ = 0;
}

}  // namespace flexcore
