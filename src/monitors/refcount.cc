#include "monitors/refcount.h"

namespace flexcore {

void
RefCountMonitor::configureCfgr(Cfgr *cfgr) const
{
    cfgr->setAll(ForwardPolicy::kIgnore);
    // Only stores mutate pointer slots; loads are irrelevant.
    for (InstrType type : {kTypeStoreWord, kTypeCpop1, kTypeCpop2})
        cfgr->setPolicy(type, ForwardPolicy::kAlways);
}

s32
RefCountMonitor::refCount(Addr base) const
{
    const auto it = counts_.find(base);
    return it == counts_.end() ? 0 : it->second;
}

void
RefCountMonitor::adjust(Addr object, s32 delta)
{
    if (object == 0)
        return;   // null pointers are not references
    s32 &count = counts_[object];
    count += delta;
    if (count <= 0) {
        ++zero_events_;
        counts_.erase(object);
    }
}

void
RefCountMonitor::process(const CommitPacket &packet,
                         MonitorResult *result)
{
    const Instruction &di = packet.di;

    if (di.op == Op::kCpop1 || di.op == Op::kCpop2) {
        switch (di.cpop_fn) {
          case CpopFn::kSetMemTag: {
            // Declare a pointer slot. Its current content (if the
            // program initialized it before declaring) is unknown to
            // us; slots are expected to be declared while null.
            mem_tags_.write(packet.addr, 1);
            slot_values_[packet.addr & ~3u] = 0;
            result->addOp(metaAddr(packet.addr), true);
            break;
          }
          case CpopFn::kClearMemTag: {
            // Retire a slot: its outgoing reference is dropped.
            const Addr slot = packet.addr & ~3u;
            const auto it = slot_values_.find(slot);
            if (it != slot_values_.end()) {
                adjust(it->second, -1);
                slot_values_.erase(it);
            }
            mem_tags_.write(packet.addr, 0);
            result->addOp(metaAddr(packet.addr), true);
            break;
          }
          case CpopFn::kReadTag:
            result->has_bfifo = true;
            result->bfifo =
                static_cast<u32>(refCount(packet.addr & ~3u));
            break;
          case CpopFn::kSetPolicy:
            policy_ = packet.addr;
            break;
          case CpopFn::kSetBase:
            meta_base_ = packet.res;
            break;
          default:
            break;
        }
        return;
    }

    if (di.op != Op::kSt)
        return;

    const Addr slot = packet.addr & ~3u;
    result->addOp(metaAddr(packet.addr), false);
    if (mem_tags_.read(packet.addr) == 0)
        return;   // not a declared pointer slot

    // RES carries the stored value: the new pointer target.
    auto &shadow = slot_values_[slot];
    adjust(shadow, -1);
    adjust(packet.res, +1);
    shadow = packet.res;
}

void
RefCountMonitor::reset()
{
    Monitor::reset();
    slot_values_.clear();
    counts_.clear();
    zero_events_ = 0;
}

}  // namespace flexcore
