/**
 * @file
 * Uninitialized Memory Check (UMC, §IV-A): one init bit per memory
 * word, set on stores, checked on loads; software clears tags on
 * de-allocation with m.clrmtag.
 */

#ifndef FLEXCORE_MONITORS_UMC_H_
#define FLEXCORE_MONITORS_UMC_H_

#include "monitors/monitor.h"

namespace flexcore {

class UmcMonitor : public Monitor
{
  public:
    /**
     * @param byte_granular false (default): one init bit per word, as
     * in the paper's prototype. true: one init bit per *byte* (4-bit
     * tags), the Purify-style variant that also catches reads of
     * uninitialized bytes inside a partially written word.
     */
    explicit UmcMonitor(bool byte_granular = false)
        : byte_granular_(byte_granular)
    {
    }

    std::string_view name() const override { return "umc"; }
    unsigned pipelineDepth() const override { return 3; }
    unsigned tagBitsPerWord() const override
    {
        return byte_granular_ ? 4 : 1;
    }

    void process(const CommitPacket &packet,
                 MonitorResult *result) override;
    void onProgramLoad(Addr base, u32 size) override;

    /** Functional inspection for tests/examples. */
    bool
    initialized(Addr addr) const
    {
        if (!byte_granular_)
            return mem_tags_.read(addr) != 0;
        return (mem_tags_.read(addr) >> (addr & 3)) & 1;
    }

  private:
    void handleCpop(const CommitPacket &packet, MonitorResult *result);

    /** Bitmask of the bytes within the word an access touches. */
    static u8 byteMask(Op op, Addr addr);

    bool byte_granular_;
};

}  // namespace flexcore

#endif  // FLEXCORE_MONITORS_UMC_H_
