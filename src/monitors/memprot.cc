#include "monitors/memprot.h"

namespace flexcore {

void
MemProtMonitor::configureCfgr(Cfgr *cfgr) const
{
    cfgr->setAll(ForwardPolicy::kIgnore);
    for (InstrType type :
         {kTypeLoadWord, kTypeLoadByte, kTypeLoadHalf, kTypeStoreWord,
          kTypeStoreByte, kTypeStoreHalf, kTypeCpop1, kTypeCpop2}) {
        cfgr->setPolicy(type, ForwardPolicy::kAlways);
    }
}

void
MemProtMonitor::process(const CommitPacket &packet,
                        MonitorResult *result)
{
    const Instruction &di = packet.di;
    if (di.op == Op::kCpop1 || di.op == Op::kCpop2) {
        handleCpop(packet, result);
        return;
    }
    if (!isLoad(di.op) && !isStore(di.op))
        return;

    const Perm perm = permission(packet.addr);
    result->addOp(metaAddr(packet.addr), false);
    if (!(policy_ & 1))
        return;
    if (perm == kPermNoAccess) {
        result->setTrap(isLoad(di.op)
                            ? "load from no-access word"
                            : "store to no-access word");
        return;
    }
    if (perm == kPermReadOnly && isStore(di.op))
        result->setTrap("store to read-only word");
}

void
MemProtMonitor::handleCpop(const CommitPacket &packet,
                           MonitorResult *result)
{
    switch (packet.di.cpop_fn) {
      case CpopFn::kSetMemTag:
        mem_tags_.write(packet.addr,
                        static_cast<u8>(packet.dest & 0x3));
        result->addOp(metaAddr(packet.addr), true);
        break;
      case CpopFn::kClearMemTag:
        mem_tags_.write(packet.addr, kPermDefault);
        result->addOp(metaAddr(packet.addr), true);
        break;
      case CpopFn::kReadTag:
        result->has_bfifo = true;
        result->bfifo = permission(packet.addr);
        result->addOp(metaAddr(packet.addr), false);
        break;
      case CpopFn::kSetPolicy:
        policy_ = packet.addr;
        break;
      case CpopFn::kSetBase:
        meta_base_ = packet.res;
        break;
      default:
        break;
    }
}

}  // namespace flexcore
