#include "monitors/memprot.h"

#include "extensions/builtin.h"
#include "extensions/registry.h"
#include "synth/extension_synth.h"

namespace flexcore {

void
registerMemProtExtension(ExtensionRegistry &registry)
{
    using K = Primitive::Kind;
    ExtensionDescriptor desc;
    desc.kind = MonitorKind::kMemProt;
    desc.name = "memprot";
    desc.doc = "Mondrian-style word-granular memory protection "
               "(read/write permission tags)";
    desc.make = [](const MonitorOptions &) -> std::unique_ptr<Monitor> {
        return std::make_unique<MemProtMonitor>();
    };
    desc.pipeline_depth = 3;
    desc.tag_bits_per_word = 4;
    desc.default_flex_period = 2;
    desc.forwardClasses({kTypeLoadWord, kTypeLoadByte, kTypeLoadHalf,
                         kTypeStoreWord, kTypeStoreByte, kTypeStoreHalf,
                         kTypeCpop1, kTypeCpop2});
    desc.tapped_groups = 2;
    desc.build_fabric = [](const ExtensionDescriptor &d,
                           Inventory *fab) {
        fab->critical_levels = 4.0;
        fab->add(K::kAdder, 32);
        fab->add(K::kMux, 32);
        fab->add(K::kComparator, 2, 2);   // permission checks
        fab->add(K::kDecoder, 4);
        fab->add(K::kRandomLogic, 140);
        fab->add(K::kRegister, 40, d.pipeline_depth);
    };
    registry.add(std::move(desc));
}

void
MemProtMonitor::process(const CommitPacket &packet,
                        MonitorResult *result)
{
    const Instruction &di = packet.di;
    if (di.op == Op::kCpop1 || di.op == Op::kCpop2) {
        handleCpop(packet, result);
        return;
    }
    if (!isLoad(di.op) && !isStore(di.op))
        return;

    const Perm perm = permission(packet.addr);
    result->addOp(metaAddr(packet.addr), false);
    if (!(policy_ & 1))
        return;
    if (perm == kPermNoAccess) {
        result->setTrap(isLoad(di.op)
                            ? "load from no-access word"
                            : "store to no-access word");
        return;
    }
    if (perm == kPermReadOnly && isStore(di.op))
        result->setTrap("store to read-only word");
}

void
MemProtMonitor::handleCpop(const CommitPacket &packet,
                           MonitorResult *result)
{
    switch (packet.di.cpop_fn) {
      case CpopFn::kSetMemTag:
        mem_tags_.write(packet.addr,
                        static_cast<u8>(packet.dest & 0x3));
        result->addOp(metaAddr(packet.addr), true);
        break;
      case CpopFn::kClearMemTag:
        mem_tags_.write(packet.addr, kPermDefault);
        result->addOp(metaAddr(packet.addr), true);
        break;
      case CpopFn::kReadTag:
        result->has_bfifo = true;
        result->bfifo = permission(packet.addr);
        result->addOp(metaAddr(packet.addr), false);
        break;
      case CpopFn::kSetPolicy:
        policy_ = packet.addr;
        break;
      case CpopFn::kSetBase:
        meta_base_ = packet.res;
        break;
      default:
        break;
    }
}

}  // namespace flexcore
