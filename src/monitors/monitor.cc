#include "monitors/monitor.h"

namespace flexcore {

u8 *
TagStore::findPage(u32 page) const
{
    if (slots_.empty())
        return nullptr;
    const u32 mask = static_cast<u32>(slots_.size()) - 1;
    for (u32 i = hashPage(page) & mask;; i = (i + 1) & mask) {
        const Slot &slot = slots_[i];
        if (slot.key == page) {
            last_page_ = page;
            last_tags_ = slot.tags.get();
            return slot.tags.get();
        }
        if (slot.key == kNoPage)
            return nullptr;
    }
}

u8 *
TagStore::createPage(u32 page)
{
    if (slots_.empty() || used_ * 2 >= slots_.size())
        grow();
    const u32 mask = static_cast<u32>(slots_.size()) - 1;
    u32 i = hashPage(page) & mask;
    while (slots_[i].key != kNoPage)
        i = (i + 1) & mask;
    Slot &slot = slots_[i];
    slot.key = page;
    slot.tags = std::make_unique<u8[]>(kWordsPerPage);
    ++used_;
    last_page_ = page;
    last_tags_ = slot.tags.get();
    return slot.tags.get();
}

void
TagStore::grow()
{
    const size_t capacity = slots_.empty() ? 64 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(capacity);
    const u32 mask = static_cast<u32>(capacity) - 1;
    for (Slot &slot : old) {
        if (slot.key == kNoPage)
            continue;
        u32 i = hashPage(slot.key) & mask;
        while (slots_[i].key != kNoPage)
            i = (i + 1) & mask;
        slots_[i] = std::move(slot);
    }
}

void
TagStore::clear()
{
    slots_.clear();
    used_ = 0;
    last_page_ = kNoPage;
    last_tags_ = nullptr;
}

Monitor::Monitor() = default;

void
Monitor::onProgramLoad(Addr /*base*/, u32 /*size*/)
{
}

void
Monitor::reset()
{
    mem_tags_.clear();
    reg_tags_.clear();
    meta_base_ = kDefaultMetaBase;
    policy_ = 1;
    last_trap_reason_.clear();
}

}  // namespace flexcore
