#include "monitors/monitor.h"

namespace flexcore {

u8
TagStore::read(Addr data_addr) const
{
    const u32 page = data_addr >> kPageShift;
    const auto it = pages_.find(page);
    if (it == pages_.end())
        return 0;
    return it->second[(data_addr >> 2) & (kWordsPerPage - 1)];
}

void
TagStore::write(Addr data_addr, u8 tag)
{
    const u32 page = data_addr >> kPageShift;
    auto it = pages_.find(page);
    if (it == pages_.end()) {
        if (tag == 0)
            return;
        it = pages_.emplace(page, std::array<u8, kWordsPerPage>{}).first;
    }
    it->second[(data_addr >> 2) & (kWordsPerPage - 1)] = tag;
}

Monitor::Monitor() = default;

void
Monitor::onProgramLoad(Addr /*base*/, u32 /*size*/)
{
}

void
Monitor::reset()
{
    mem_tags_.clear();
    reg_tags_.clear();
    meta_base_ = kDefaultMetaBase;
    policy_ = 1;
    last_trap_reason_.clear();
}

}  // namespace flexcore
