#include "monitors/watch.h"

namespace flexcore {

void
WatchMonitor::configureCfgr(Cfgr *cfgr) const
{
    cfgr->setAll(ForwardPolicy::kIgnore);
    for (InstrType type :
         {kTypeLoadWord, kTypeLoadByte, kTypeLoadHalf, kTypeStoreWord,
          kTypeStoreByte, kTypeStoreHalf, kTypeCpop1, kTypeCpop2}) {
        cfgr->setPolicy(type, ForwardPolicy::kAlways);
    }
}

void
WatchMonitor::process(const CommitPacket &packet, MonitorResult *result)
{
    const Instruction &di = packet.di;

    if (di.op == Op::kCpop1 || di.op == Op::kCpop2) {
        switch (di.cpop_fn) {
          case CpopFn::kSetMemTag:
            mem_tags_.write(packet.addr,
                            static_cast<u8>(packet.dest & 0x3));
            result->addOp(metaAddr(packet.addr), true);
            break;
          case CpopFn::kClearMemTag:
            mem_tags_.write(packet.addr, kNotWatched);
            result->addOp(metaAddr(packet.addr), true);
            break;
          case CpopFn::kReadTag:
            result->has_bfifo = true;
            switch (static_cast<Selector>(di.simm & 0xff)) {
              case kSelHits:
                result->bfifo = static_cast<u32>(hits_);
                break;
              case kSelLoadHits:
                result->bfifo = static_cast<u32>(load_hits_);
                break;
              case kSelStoreHits:
                result->bfifo = static_cast<u32>(store_hits_);
                break;
              default:
                result->bfifo = 0;
                break;
            }
            break;
          case CpopFn::kSetPolicy:
            policy_ = packet.addr;
            break;
          case CpopFn::kSetBase:
            meta_base_ = packet.res;
            break;
          default:
            break;
        }
        return;
    }

    if (!isLoad(di.op) && !isStore(di.op))
        return;

    const Mode watch_mode = mode(packet.addr);
    result->addOp(metaAddr(packet.addr), false);
    if (watch_mode == kNotWatched)
        return;

    ++hits_;
    if (isLoad(di.op))
        ++load_hits_;
    else
        ++store_hits_;

    if (!(policy_ & 1))
        return;
    if (watch_mode == kTrapAccess ||
        (watch_mode == kTrapStore && isStore(di.op))) {
        result->setTrap(isStore(di.op) ? "watchpoint hit (store)"
                                       : "watchpoint hit (load)");
    }
}

void
WatchMonitor::reset()
{
    Monitor::reset();
    hits_ = load_hits_ = store_hits_ = 0;
}

}  // namespace flexcore
