#include "monitors/watch.h"

#include "extensions/builtin.h"
#include "extensions/registry.h"
#include "synth/extension_synth.h"

namespace flexcore {

void
registerWatchExtension(ExtensionRegistry &registry)
{
    using K = Primitive::Kind;
    ExtensionDescriptor desc;
    desc.kind = MonitorKind::kWatch;
    desc.name = "watch";
    desc.doc = "iWatcher-style hardware watchpoints over tagged "
               "address ranges";
    desc.make = [](const MonitorOptions &) -> std::unique_ptr<Monitor> {
        return std::make_unique<WatchMonitor>();
    };
    desc.pipeline_depth = 3;
    desc.tag_bits_per_word = 4;
    desc.default_flex_period = 2;
    desc.forwardClasses({kTypeLoadWord, kTypeLoadByte, kTypeLoadHalf,
                         kTypeStoreWord, kTypeStoreByte, kTypeStoreHalf,
                         kTypeCpop1, kTypeCpop2});
    desc.tapped_groups = 2;
    desc.build_fabric = [](const ExtensionDescriptor &d,
                           Inventory *fab) {
        fab->critical_levels = 4.0;
        fab->add(K::kAdder, 32);
        fab->add(K::kAdder, 32, 3);       // hit counters
        fab->add(K::kComparator, 2, 2);   // mode decode
        fab->add(K::kRandomLogic, 130);
        fab->add(K::kRegister, 40, d.pipeline_depth);
    };
    registry.add(std::move(desc));
}

void
WatchMonitor::process(const CommitPacket &packet, MonitorResult *result)
{
    const Instruction &di = packet.di;

    if (di.op == Op::kCpop1 || di.op == Op::kCpop2) {
        switch (di.cpop_fn) {
          case CpopFn::kSetMemTag:
            mem_tags_.write(packet.addr,
                            static_cast<u8>(packet.dest & 0x3));
            result->addOp(metaAddr(packet.addr), true);
            break;
          case CpopFn::kClearMemTag:
            mem_tags_.write(packet.addr, kNotWatched);
            result->addOp(metaAddr(packet.addr), true);
            break;
          case CpopFn::kReadTag:
            result->has_bfifo = true;
            switch (static_cast<Selector>(di.simm & 0xff)) {
              case kSelHits:
                result->bfifo = static_cast<u32>(hits_);
                break;
              case kSelLoadHits:
                result->bfifo = static_cast<u32>(load_hits_);
                break;
              case kSelStoreHits:
                result->bfifo = static_cast<u32>(store_hits_);
                break;
              default:
                result->bfifo = 0;
                break;
            }
            break;
          case CpopFn::kSetPolicy:
            policy_ = packet.addr;
            break;
          case CpopFn::kSetBase:
            meta_base_ = packet.res;
            break;
          default:
            break;
        }
        return;
    }

    if (!isLoad(di.op) && !isStore(di.op))
        return;

    const Mode watch_mode = mode(packet.addr);
    result->addOp(metaAddr(packet.addr), false);
    if (watch_mode == kNotWatched)
        return;

    ++hits_;
    if (isLoad(di.op))
        ++load_hits_;
    else
        ++store_hits_;

    if (!(policy_ & 1))
        return;
    if (watch_mode == kTrapAccess ||
        (watch_mode == kTrapStore && isStore(di.op))) {
        result->setTrap(isStore(di.op) ? "watchpoint hit (store)"
                                       : "watchpoint hit (load)");
    }
}

void
WatchMonitor::reset()
{
    Monitor::reset();
    hits_ = load_hits_ = store_hits_ = 0;
}

}  // namespace flexcore
