/**
 * @file
 * Base class for FlexCore monitoring extensions ("co-processors" in the
 * paper's terminology) plus the shared per-word tag store. A Monitor's
 * functional semantics run when the fabric dequeues its packet; the
 * fabric models timing (pipeline occupancy, meta-data cache misses)
 * around the MetaAccess list the monitor reports.
 */

#ifndef FLEXCORE_MONITORS_MONITOR_H_
#define FLEXCORE_MONITORS_MONITOR_H_

#include <array>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/types.h"
#include "flexcore/cfgr.h"
#include "flexcore/packet.h"
#include "flexcore/shadow_regfile.h"
#include "memory/meta_cache.h"

namespace flexcore {

/** Default meta-data region base (managed by the OS per §III-F). */
inline constexpr Addr kDefaultMetaBase = 0x40000000;

/** One meta-data cache access required by a packet. */
struct MetaAccess
{
    Addr addr = 0;
    bool is_write = false;
};

/** Functional outcome of processing one packet. */
struct MonitorResult
{
    std::array<MetaAccess, 2> ops;
    unsigned num_ops = 0;
    bool trap = false;
    const char *trap_reason = nullptr;
    bool has_bfifo = false;
    u32 bfifo = 0;

    void
    addOp(Addr addr, bool is_write)
    {
        if (num_ops >= ops.size())
            return;   // a packet never needs more than two accesses
        ops[num_ops].addr = addr;
        ops[num_ops].is_write = is_write;
        ++num_ops;
    }

    void
    setTrap(const char *reason)
    {
        trap = true;
        trap_reason = reason;
    }
};

/**
 * Per-word tag storage (functional meta-data state). Tags are keyed by
 * the *data* word address; widths up to 8 bits. Page-granular backing
 * keeps lookups fast for multi-megabyte workloads.
 */
class TagStore
{
  public:
    static constexpr u32 kPageShift = 12;          // 4 KB of data words
    static constexpr u32 kWordsPerPage = 1u << (kPageShift - 2);

    u8 read(Addr data_addr) const;
    void write(Addr data_addr, u8 tag);
    void clear() { pages_.clear(); }

  private:
    std::unordered_map<u32, std::array<u8, kWordsPerPage>> pages_;
};

class Monitor
{
  public:
    Monitor();
    virtual ~Monitor() = default;

    virtual std::string_view name() const = 0;

    /** Pipeline depth in fabric cycles (§IV: 3 to 6 stages). */
    virtual unsigned pipelineDepth() const = 0;

    /** Meta-data width per data word (0 = stateless, e.g. SEC). */
    virtual unsigned tagBitsPerWord() const = 0;

    /** Program the CFGR with this extension's forwarding classes. */
    virtual void configureCfgr(Cfgr *cfgr) const = 0;

    /** Functional semantics for one forwarded packet. */
    virtual void process(const CommitPacket &packet,
                         MonitorResult *result) = 0;

    /**
     * Hook invoked when a program image is loaded (models the OS
     * initializing meta-data for statically initialized memory).
     */
    virtual void onProgramLoad(Addr base, u32 size);

    /** Reset all meta-data state between runs. */
    virtual void reset();

    /** Human-readable reason of the most recent trap request. */
    const std::string &lastTrapReason() const { return last_trap_reason_; }
    void noteTrap(const char *reason) { last_trap_reason_ = reason; }

    Addr metaBase() const { return meta_base_; }
    void setMetaBase(Addr base) { meta_base_ = base; }

    u32 policy() const { return policy_; }
    void setPolicy(u32 policy) { policy_ = policy; }

    /** Meta-data byte address for a data address under this monitor. */
    Addr
    metaAddr(Addr data_addr) const
    {
        return MetaCache::metaByteAddr(meta_base_, data_addr,
                                       tagBitsPerWord());
    }

  protected:
    TagStore mem_tags_;
    ShadowRegFile reg_tags_;
    Addr meta_base_ = kDefaultMetaBase;
    u32 policy_ = 1;   //!< bit 0: checks raise traps
    std::string last_trap_reason_;
};

}  // namespace flexcore

#endif  // FLEXCORE_MONITORS_MONITOR_H_
