/**
 * @file
 * Base class for FlexCore monitoring extensions ("co-processors" in the
 * paper's terminology) plus the shared per-word tag store. A Monitor's
 * functional semantics run when the fabric dequeues its packet; the
 * fabric models timing (pipeline occupancy, meta-data cache misses)
 * around the MetaAccess list the monitor reports.
 */

#ifndef FLEXCORE_MONITORS_MONITOR_H_
#define FLEXCORE_MONITORS_MONITOR_H_

#include <array>
#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "flexcore/cfgr.h"
#include "flexcore/packet.h"
#include "flexcore/shadow_regfile.h"
#include "memory/meta_cache.h"

namespace flexcore {

/** Default meta-data region base (managed by the OS per §III-F). */
inline constexpr Addr kDefaultMetaBase = 0x40000000;

/** One meta-data cache access required by a packet. */
struct MetaAccess
{
    Addr addr = 0;
    bool is_write = false;
};

/** Functional outcome of processing one packet. */
struct MonitorResult
{
    std::array<MetaAccess, 2> ops;
    unsigned num_ops = 0;
    bool trap = false;
    const char *trap_reason = nullptr;
    bool has_bfifo = false;
    u32 bfifo = 0;

    void
    addOp(Addr addr, bool is_write)
    {
        // A packet never needs more than two meta accesses with the
        // current extensions. A third is a monitor bug — losing it
        // silently would skew the fabric timing model, so fail loudly
        // in debug builds instead of dropping it.
        assert(num_ops < ops.size() &&
               "MonitorResult::addOp: more meta accesses than "
               "MonitorResult can carry; widen MonitorResult::ops");
        if (num_ops >= ops.size())
            return;
        ops[num_ops].addr = addr;
        ops[num_ops].is_write = is_write;
        ++num_ops;
    }

    void
    setTrap(const char *reason)
    {
        trap = true;
        trap_reason = reason;
    }
};

/**
 * Per-word tag storage (functional meta-data state). Tags are keyed by
 * the *data* word address; widths up to 8 bits.
 *
 * Every forwarded load/store costs at least one TagStore lookup, so
 * this sits squarely on the simulator's hot path. The backing is an
 * open-addressed page table (power-of-two slots, linear probing) in
 * front of stable 1 KB tag pages, plus a one-entry last-page cache:
 * the common case — consecutive accesses landing in the same 4 KB data
 * page — resolves with one compare and one indexed load, no hashing.
 */
class TagStore
{
  public:
    static constexpr u32 kPageShift = 12;          // 4 KB of data words
    static constexpr u32 kWordsPerPage = 1u << (kPageShift - 2);

    u8
    read(Addr data_addr) const
    {
        const u32 page = data_addr >> kPageShift;
        if (page == last_page_)
            return last_tags_[wordIndex(data_addr)];
        if (shared_ && data_addr - shared_base_ < shared_size_)
            return shared_->read(data_addr);
        const u8 *tags = findPage(page);
        return tags ? tags[wordIndex(data_addr)] : 0;
    }

    void
    write(Addr data_addr, u8 tag)
    {
        const u32 page = data_addr >> kPageShift;
        if (page == last_page_) {
            last_tags_[wordIndex(data_addr)] = tag;
            return;
        }
        if (shared_ && data_addr - shared_base_ < shared_size_) {
            shared_->write(data_addr, tag);
            return;
        }
        u8 *tags = findPage(page);
        if (!tags) {
            if (tag == 0)
                return;   // absent pages read as all-zero anyway
            tags = createPage(page);
        }
        tags[wordIndex(data_addr)] = tag;
    }

    void clear();

    /**
     * Route tags for the multi-core coherent window to @p backing, so
     * every core's monitor sees one set of tags for shared data — the
     * meta-data leg of cross-core information flow (docs/multicore.md).
     * The local last-page cache never holds window pages (window
     * addresses are delegated before they reach findPage/createPage),
     * so the fast path above stays sound. Single-core systems never
     * set a window and only pay a null check after a last-page miss.
     */
    void
    setSharedWindow(TagStore *backing, Addr base, u32 size)
    {
        shared_ = backing;
        shared_base_ = base;
        shared_size_ = size;
    }

  private:
    /** Sentinel above any reachable page index (Addr is 32-bit, so
     * real page indices fit in 20 bits). */
    static constexpr u32 kNoPage = ~u32{0};

    static u32
    wordIndex(Addr data_addr)
    {
        return (data_addr >> 2) & (kWordsPerPage - 1);
    }

    static u32
    hashPage(u32 page)
    {
        return page * 0x9e3779b1u;   // Fibonacci hashing
    }

    /** Probe for @p page; updates the last-page cache on a hit. */
    u8 *findPage(u32 page) const;
    /** Insert a zero-filled page (grows at 50% load). */
    u8 *createPage(u32 page);
    void grow();

    struct Slot
    {
        u32 key = kNoPage;
        std::unique_ptr<u8[]> tags;   // kWordsPerPage bytes, stable
    };

    std::vector<Slot> slots_;
    size_t used_ = 0;
    TagStore *shared_ = nullptr;   //!< backing for the coherent window
    Addr shared_base_ = 0;
    u32 shared_size_ = 0;
    // Last-page cache. The tag arrays are heap blocks owned through
    // stable unique_ptrs, so growing the slot table never invalidates
    // the cached pointer.
    mutable u32 last_page_ = kNoPage;
    mutable u8 *last_tags_ = nullptr;
};

class Monitor
{
  public:
    Monitor();
    virtual ~Monitor() = default;

    virtual std::string_view name() const = 0;

    /** Pipeline depth in fabric cycles (§IV: 3 to 6 stages). */
    virtual unsigned pipelineDepth() const = 0;

    /** Meta-data width per data word (0 = stateless, e.g. SEC). */
    virtual unsigned tagBitsPerWord() const = 0;

    /** Functional semantics for one forwarded packet. */
    virtual void process(const CommitPacket &packet,
                         MonitorResult *result) = 0;

    /**
     * Hook invoked when a program image is loaded (models the OS
     * initializing meta-data for statically initialized memory).
     */
    virtual void onProgramLoad(Addr base, u32 size);

    /** Reset all meta-data state between runs. */
    virtual void reset();

    /** Human-readable reason of the most recent trap request. */
    const std::string &lastTrapReason() const { return last_trap_reason_; }
    void noteTrap(const char *reason) { last_trap_reason_ = reason; }

    Addr metaBase() const { return meta_base_; }
    void setMetaBase(Addr base) { meta_base_ = base; }

    u32 policy() const { return policy_; }
    void setPolicy(u32 policy) { policy_ = policy; }

    /**
     * Fault-injection access to the monitor's functional meta-data
     * state: the shadow register file and the per-word tag store.
     * The injector flips bits here to model soft errors in the
     * fabric's embedded meta-data storage (§III-E).
     */
    ShadowRegFile &regTags() { return reg_tags_; }
    TagStore &memTags() { return mem_tags_; }

    /** Meta-data byte address for a data address under this monitor. */
    Addr
    metaAddr(Addr data_addr) const
    {
        return MetaCache::metaByteAddr(meta_base_, data_addr,
                                       tagBitsPerWord());
    }

  protected:
    TagStore mem_tags_;
    ShadowRegFile reg_tags_;
    Addr meta_base_ = kDefaultMetaBase;
    u32 policy_ = 1;   //!< bit 0: checks raise traps
    std::string last_trap_reason_;
};

}  // namespace flexcore

#endif  // FLEXCORE_MONITORS_MONITOR_H_
