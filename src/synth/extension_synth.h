/**
 * @file
 * Structural descriptions of the monitoring extensions and the
 * dedicated FlexCore modules, as both fabric (FPGA) netlists and the
 * extra blocks their full-ASIC variants add to Leon3. These drive the
 * Table III reproduction. The per-extension inventories are built by
 * the builder callbacks each extension registers in the
 * ExtensionRegistry (src/extensions/); this module only assembles
 * them plus the shared FlexCore hardware.
 */

#ifndef FLEXCORE_SYNTH_EXTENSION_SYNTH_H_
#define FLEXCORE_SYNTH_EXTENSION_SYNTH_H_

#include "sim/config.h"
#include "synth/resources.h"

namespace flexcore {

struct ExtensionSynth
{
    std::string name;
    Inventory fabric;       //!< mapped onto the reconfigurable fabric
    Inventory asic_extra;   //!< added to Leon3 in the full-ASIC variant
    unsigned tapped_groups; //!< commit-stage signal groups tapped
};

/** Structural description of one extension. */
ExtensionSynth extensionSynth(MonitorKind kind);

/**
 * The dedicated FlexCore hardware (core-fabric interface, 4 KB
 * meta-data cache, 64-entry forward FIFO, shadow register file, CFGR).
 */
Inventory commonModulesInventory();
unsigned commonTappedGroups();

/** FIFO SRAM bits for a given depth (Table II entry width). */
u64 forwardFifoBits(u32 depth);

/** Meta-data cache SRAM bits (data + tags) for a given geometry. */
u64 metaCacheBits(u32 size_bytes, u32 line_bytes);

}  // namespace flexcore

#endif  // FLEXCORE_SYNTH_EXTENSION_SYNTH_H_
