/**
 * @file
 * ASIC area / frequency / power models for a 65 nm standard-cell flow
 * (Synopsys DC class, §V-A). The unmodified Leon3 numbers from the
 * paper (835,525 µm², 365 mW, 465 MHz with 32 KB L1s) anchor the
 * model; extensions add SRAM-macro area (memory-compiler-style
 * bits + periphery), standard-cell gate area, a small frequency
 * penalty proportional to how many internal pipeline signal groups
 * they tap, and power from per-structure densities at the paper's
 * fixed 0.1 toggle rate.
 */

#ifndef FLEXCORE_SYNTH_ASIC_MODEL_H_
#define FLEXCORE_SYNTH_ASIC_MODEL_H_

#include "synth/resources.h"

namespace flexcore {

struct AsicEstimate
{
    double area_um2 = 0;
    double fmax_mhz = 0;
    double power_mw = 0;
};

class AsicModel
{
  public:
    // Calibration anchors from Table III.
    static constexpr double kBaselineAreaUm2 = 835525.0;
    static constexpr double kBaselinePowerMw = 365.0;
    static constexpr double kBaselineFreqMhz = 465.0;

    // 65 nm macro/cell coefficients.
    static constexpr double kSramBitAreaUm2 = 1.1;
    static constexpr double kSramMacroPeripheryUm2 = 8000.0;
    static constexpr double kGateAreaUm2 = 1.7;

    // Power densities (mW per µm² at 465 MHz, toggle rate 0.1).
    static constexpr double kLogicPowerPerUm2 = 0.00016;
    static constexpr double kSramPowerPerUm2 = 0.00025;

    // Critical-path loading added per tapped commit-stage signal group.
    static constexpr double kTapDelayPsPerGroup = 4.7;

    /** Area added by an extension's resources. */
    static double extraAreaUm2(const AsicResources &resources);

    /** Core frequency with @p tapped_groups pipeline taps. */
    static double fmaxMhz(unsigned tapped_groups);

    /** Power added by an extension's resources. */
    static double extraPowerMw(const AsicResources &resources);

    /** Estimate for Leon3 + extension (absolute, Table III style). */
    static AsicEstimate estimateWithExtension(
        const AsicResources &resources, unsigned tapped_groups);
};

}  // namespace flexcore

#endif  // FLEXCORE_SYNTH_ASIC_MODEL_H_
