/**
 * @file
 * Table III generator: area, power, and maximum frequency for the
 * baseline Leon3, the four full-ASIC extensions, the dedicated
 * FlexCore modules, and the four extensions mapped onto the fabric.
 */

#ifndef FLEXCORE_SYNTH_REPORT_H_
#define FLEXCORE_SYNTH_REPORT_H_

#include <string>
#include <vector>

#include "synth/extension_synth.h"

namespace flexcore {

struct SynthRow
{
    std::string group;        // "Baseline" / "ASIC" / "FlexCore"
    std::string extension;    // "-", "UMC", ..., "Common"
    std::string description;
    double fmax_mhz = 0;
    double area_um2 = 0;
    double area_overhead = 0;     //!< fraction of baseline; <0 = n/a
    double power_mw = 0;
    double power_overhead = 0;    //!< fraction of baseline; <0 = n/a
};

/** All rows of Table III, in the paper's order. */
std::vector<SynthRow> synthesisTable();

/** Render the table as aligned text. */
std::string renderSynthesisTable(const std::vector<SynthRow> &rows);

}  // namespace flexcore

#endif  // FLEXCORE_SYNTH_REPORT_H_
