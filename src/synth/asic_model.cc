#include "synth/asic_model.h"

namespace flexcore {

double
AsicModel::extraAreaUm2(const AsicResources &resources)
{
    return resources.sram_bits * kSramBitAreaUm2 +
           resources.sram_macros * kSramMacroPeripheryUm2 +
           resources.gates * kGateAreaUm2;
}

double
AsicModel::fmaxMhz(unsigned tapped_groups)
{
    const double base_period_ns = 1000.0 / kBaselineFreqMhz;
    const double period_ns =
        base_period_ns + tapped_groups * kTapDelayPsPerGroup / 1000.0;
    return 1000.0 / period_ns;
}

double
AsicModel::extraPowerMw(const AsicResources &resources)
{
    const double sram_area = resources.sram_bits * kSramBitAreaUm2 +
                             resources.sram_macros *
                                 kSramMacroPeripheryUm2;
    const double logic_area = resources.gates * kGateAreaUm2;
    return sram_area * kSramPowerPerUm2 +
           logic_area * kLogicPowerPerUm2;
}

AsicEstimate
AsicModel::estimateWithExtension(const AsicResources &resources,
                                 unsigned tapped_groups)
{
    AsicEstimate est;
    est.area_um2 = kBaselineAreaUm2 + extraAreaUm2(resources);
    est.fmax_mhz = fmaxMhz(tapped_groups);
    est.power_mw = kBaselinePowerMw + extraPowerMw(resources);
    return est;
}

}  // namespace flexcore
