/**
 * @file
 * Structural resource inventories used by the synthesis models. Each
 * monitoring extension is described as a netlist-level inventory
 * (adders, comparators, muxes, registers, decoders, SRAM bits); the
 * FPGA model maps the inventory to 6-input LUTs and the ASIC model to
 * gate and SRAM-macro area.
 */

#ifndef FLEXCORE_SYNTH_RESOURCES_H_
#define FLEXCORE_SYNTH_RESOURCES_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace flexcore {

/** One primitive block in a datapath inventory. */
struct Primitive
{
    enum class Kind : u8 {
        kAdder,        //!< ripple/carry adder, width bits
        kComparator,   //!< equality/magnitude compare, width bits
        kMux,          //!< 2:1 mux, width bits (ways folded into count)
        kRegister,     //!< pipeline/architectural flip-flops, width bits
        kDecoder,      //!< n:2^n decoder, width = n
        kRandomLogic,  //!< control logic, width = equivalent 2-input gates
        kShifter,      //!< barrel shifter, width bits (log stages)
        kMultiplier,   //!< array multiplier, width x width
    };
    Kind kind;
    u32 width = 0;
    u32 count = 1;
};

/** A named hardware block: primitives plus embedded SRAM. */
struct Inventory
{
    std::string name;
    std::vector<Primitive> primitives;
    u64 sram_bits = 0;      //!< dedicated SRAM (cache/FIFO/regfile)
    u32 sram_macros = 0;    //!< number of distinct SRAM arrays
    /**
     * LUT levels between pipeline registers on the critical path
     * (drives the FPGA frequency model).
     */
    double critical_levels = 4.0;

    void
    add(Primitive::Kind kind, u32 width, u32 count = 1)
    {
        primitives.push_back({kind, width, count});
    }
};

/** FPGA mapping result. */
struct FpgaResources
{
    u32 luts = 0;
    u32 ffs = 0;
    double critical_levels = 4.0;
};

/** ASIC mapping result. */
struct AsicResources
{
    u64 gates = 0;        //!< NAND2-equivalent gates
    u64 sram_bits = 0;
    u32 sram_macros = 0;
};

/** Map an inventory to FPGA LUT/FF counts (6-LUT fabric). */
FpgaResources mapToFpga(const Inventory &inventory);

/** Map an inventory to ASIC gate counts. */
AsicResources mapToAsic(const Inventory &inventory);

}  // namespace flexcore

#endif  // FLEXCORE_SYNTH_RESOURCES_H_
