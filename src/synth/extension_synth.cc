#include "synth/extension_synth.h"

#include <cctype>

#include "common/log.h"
#include "extensions/registry.h"
#include "flexcore/packet.h"
#include "flexcore/shadow_regfile.h"

namespace flexcore {

namespace {
using K = Primitive::Kind;
}  // namespace

u64
forwardFifoBits(u32 depth)
{
    return u64{depth} * ffifoEntryBits();
}

u64
metaCacheBits(u32 size_bytes, u32 line_bytes)
{
    const u32 lines = size_bytes / line_bytes;
    const u32 tag_bits = 22;   // 32b addr - index - offset, plus state
    return u64{size_bytes} * 8 + u64{lines} * tag_bits;
}

ExtensionSynth
extensionSynth(MonitorKind kind)
{
    const ExtensionDescriptor *desc =
        ExtensionRegistry::instance().find(kind);
    if (!desc)
        FLEX_FATAL("no synthesis model for monitor kind ",
                   static_cast<int>(kind));

    ExtensionSynth ext;
    // Report names are the canonical name in caps ("umc" -> "UMC").
    for (char c : desc->name)
        ext.name += static_cast<char>(
            std::toupper(static_cast<unsigned char>(c)));
    ext.tapped_groups = desc->tapped_groups;

    ext.fabric.name = std::string(desc->name) + "-fabric";
    desc->build_fabric(*desc, &ext.fabric);

    if (desc->build_asic) {
        ext.asic_extra.name = std::string(desc->name) + "-asic";
        desc->build_asic(*desc, &ext.asic_extra);
    }
    return ext;
}

Inventory
commonModulesInventory()
{
    Inventory inv;
    inv.name = "flexcore-common";
    inv.sram_bits = metaCacheBits(4 * 1024, 32) + forwardFifoBits(64) +
                    ShadowRegFile::storageBits();
    inv.sram_macros = 4;
    inv.add(K::kRegister, 64);          // CFGR
    inv.add(K::kRegister, 293, 2);      // CDC synchronizer stages
    inv.add(K::kAdder, 32);             // generic address path
    // The general-purpose interface (full Table II field muxing,
    // per-class policy logic, decode, BFIFO/CTRL) is substantially
    // larger than any single ASIC extension's glue logic.
    inv.add(K::kRandomLogic, 103000);
    return inv;
}

unsigned
commonTappedGroups()
{
    return 7;
}

}  // namespace flexcore
