#include "synth/extension_synth.h"

#include "common/log.h"
#include "flexcore/packet.h"
#include "flexcore/shadow_regfile.h"

namespace flexcore {

namespace {
using K = Primitive::Kind;
}  // namespace

u64
forwardFifoBits(u32 depth)
{
    return u64{depth} * ffifoEntryBits();
}

u64
metaCacheBits(u32 size_bytes, u32 line_bytes)
{
    const u32 lines = size_bytes / line_bytes;
    const u32 tag_bits = 22;   // 32b addr - index - offset, plus state
    return u64{size_bytes} * 8 + u64{lines} * tag_bits;
}

ExtensionSynth
extensionSynth(MonitorKind kind)
{
    ExtensionSynth ext;
    const u64 cache_bits = metaCacheBits(4 * 1024, 32);
    const u64 fifo_bits = forwardFifoBits(64);

    switch (kind) {
      case MonitorKind::kUmc: {
        ext.name = "UMC";
        ext.tapped_groups = 2;   // address + opcode

        Inventory &fab = ext.fabric;
        fab.name = "umc-fabric";
        fab.critical_levels = 4.0;
        fab.add(K::kAdder, 32);          // tag address translation
        fab.add(K::kMux, 32);            // tag bit write alignment
        fab.add(K::kDecoder, 4);         // opcode dispatch
        fab.add(K::kComparator, 1);      // tag check
        fab.add(K::kRandomLogic, 130);   // pipeline + cache control
        fab.add(K::kRegister, 40, 3);    // 3 pipeline stages

        Inventory &asic = ext.asic_extra;
        asic.name = "umc-asic";
        asic.sram_bits = cache_bits + fifo_bits;
        asic.sram_macros = 3;
        asic.add(K::kAdder, 32);
        asic.add(K::kRandomLogic, 5800);
        break;
      }
      case MonitorKind::kDift: {
        ext.name = "DIFT";
        ext.tapped_groups = 9;   // values, regs, opcode, addr, ...

        Inventory &fab = ext.fabric;
        fab.name = "dift-fabric";
        fab.critical_levels = 4.3;
        fab.add(K::kAdder, 32);          // tag address translation
        fab.add(K::kMux, 32);            // tag routing
        fab.add(K::kDecoder, 5);         // rule dispatch
        fab.add(K::kComparator, 1);      // jump-target check
        fab.add(K::kRandomLogic, 218);   // propagation rules + policy
        fab.add(K::kRegister, 48, 4);    // 4 pipeline stages

        Inventory &asic = ext.asic_extra;
        asic.name = "dift-asic";
        asic.sram_bits = cache_bits + fifo_bits;
        asic.sram_macros = 3;
        asic.add(K::kAdder, 32);
        asic.add(K::kRegister, kNumPhysRegs);   // 1-bit tag regfile
        asic.add(K::kRandomLogic, 22900);
        break;
      }
      case MonitorKind::kBc: {
        ext.name = "BC";
        ext.tapped_groups = 9;

        Inventory &fab = ext.fabric;
        fab.name = "bc-fabric";
        fab.critical_levels = 5.0;
        fab.add(K::kAdder, 32);          // tag address translation
        fab.add(K::kAdder, 4, 2);        // color addition (two sources)
        fab.add(K::kComparator, 4, 2);   // color match (load + store)
        fab.add(K::kMux, 8);             // packed tag extract
        fab.add(K::kMux, 32);
        fab.add(K::kDecoder, 5);
        fab.add(K::kRandomLogic, 420);   // two-port sequencing control
        fab.add(K::kRegister, 56, 5);    // 5 pipeline stages

        Inventory &asic = ext.asic_extra;
        asic.name = "bc-asic";
        asic.sram_bits = cache_bits + fifo_bits;
        asic.sram_macros = 3;
        asic.add(K::kAdder, 32);
        asic.add(K::kRegister, kNumPhysRegs * 4);   // 4-bit colors
        asic.add(K::kRandomLogic, 41000);
        break;
      }
      case MonitorKind::kSec: {
        ext.name = "SEC";
        ext.tapped_groups = 2;   // operands/result + opcode

        Inventory &fab = ext.fabric;
        fab.name = "sec-fabric";
        fab.critical_levels = 5.6;
        fab.add(K::kAdder, 32);          // add/sub re-execution
        fab.add(K::kShifter, 32);        // shift re-execution
        fab.add(K::kComparator, 32, 2);  // result comparison
        fab.add(K::kMultiplier, 8);      // mod-7 residue unit
        fab.add(K::kRandomLogic, 828);   // logic-op checker + control
        fab.add(K::kRegister, 100, 6);   // 6 pipeline stages

        Inventory &asic = ext.asic_extra;
        asic.name = "sec-asic";
        // No meta-data cache and no forward FIFO: the ASIC checker
        // taps the ALU directly (hence the tiny 0.15% area overhead
        // reported in the paper).
        asic.add(K::kAdder, 32);
        asic.add(K::kMultiplier, 4);
        asic.add(K::kRandomLogic, 470);
        break;
      }
      case MonitorKind::kProf: {
        // Working-set profiler: counters plus the touched-bit path.
        ext.name = "PROF";
        ext.tapped_groups = 3;
        Inventory &fab = ext.fabric;
        fab.name = "prof-fabric";
        fab.critical_levels = 4.0;
        fab.add(K::kAdder, 32);          // tag address translation
        fab.add(K::kAdder, 32, 2);       // 32-bit event counters (inc)
        fab.add(K::kDecoder, 4);
        fab.add(K::kRandomLogic, 160);
        fab.add(K::kRegister, 32, 7);    // the counter bank
        fab.add(K::kRegister, 40, 3);
        break;
      }
      case MonitorKind::kMemProt: {
        ext.name = "MEMPROT";
        ext.tapped_groups = 2;
        Inventory &fab = ext.fabric;
        fab.name = "memprot-fabric";
        fab.critical_levels = 4.0;
        fab.add(K::kAdder, 32);
        fab.add(K::kMux, 32);
        fab.add(K::kComparator, 2, 2);   // permission checks
        fab.add(K::kDecoder, 4);
        fab.add(K::kRandomLogic, 140);
        fab.add(K::kRegister, 40, 3);
        break;
      }
      case MonitorKind::kWatch: {
        ext.name = "WATCH";
        ext.tapped_groups = 2;
        Inventory &fab = ext.fabric;
        fab.name = "watch-fabric";
        fab.critical_levels = 4.0;
        fab.add(K::kAdder, 32);
        fab.add(K::kAdder, 32, 3);       // hit counters
        fab.add(K::kComparator, 2, 2);   // mode decode
        fab.add(K::kRandomLogic, 130);
        fab.add(K::kRegister, 40, 3);
        break;
      }
      case MonitorKind::kRefCount: {
        // Bookkeeping-heavy: needs an adder for the count update and
        // wider state paths; counts and slot shadows live in meta-data
        // memory in a real implementation.
        ext.name = "REFCNT";
        ext.tapped_groups = 4;
        Inventory &fab = ext.fabric;
        fab.name = "refcnt-fabric";
        fab.critical_levels = 4.5;
        fab.add(K::kAdder, 32, 2);       // inc/dec units
        fab.add(K::kAdder, 32);          // address translation
        fab.add(K::kMux, 32, 2);
        fab.add(K::kComparator, 32);     // zero detection
        fab.add(K::kRandomLogic, 220);
        fab.add(K::kRegister, 48, 4);
        break;
      }
      case MonitorKind::kNone:
        FLEX_FATAL("no synthesis model for MonitorKind::kNone");
    }
    return ext;
}

Inventory
commonModulesInventory()
{
    Inventory inv;
    inv.name = "flexcore-common";
    inv.sram_bits = metaCacheBits(4 * 1024, 32) + forwardFifoBits(64) +
                    ShadowRegFile::storageBits();
    inv.sram_macros = 4;
    inv.add(K::kRegister, 64);          // CFGR
    inv.add(K::kRegister, 293, 2);      // CDC synchronizer stages
    inv.add(K::kAdder, 32);             // generic address path
    // The general-purpose interface (full Table II field muxing,
    // per-class policy logic, decode, BFIFO/CTRL) is substantially
    // larger than any single ASIC extension's glue logic.
    inv.add(K::kRandomLogic, 103000);
    return inv;
}

unsigned
commonTappedGroups()
{
    return 7;
}

}  // namespace flexcore
