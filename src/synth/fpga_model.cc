#include "synth/fpga_model.h"

namespace flexcore {

double
FpgaModel::fmaxMhz(double critical_levels)
{
    const double period_ns =
        critical_levels * kLevelDelayNs + kBaseDelayNs;
    return 1000.0 / period_ns;
}

double
FpgaModel::powerMw(u32 luts, double fmhz)
{
    return kClockBaseMw + kDynPerLutMhzMw * luts * fmhz;
}

FpgaEstimate
FpgaModel::estimate(const FpgaResources &resources)
{
    FpgaEstimate est;
    est.luts = resources.luts;
    est.area_um2 = areaUm2(resources.luts);
    est.fmax_mhz = fmaxMhz(resources.critical_levels);
    est.dynamic_power_mw = powerMw(resources.luts, est.fmax_mhz);
    return est;
}

}  // namespace flexcore
