#include "synth/resources.h"

namespace flexcore {

namespace {

/** 6-LUTs per primitive instance (standard mapping results). */
u32
lutsFor(const Primitive &p)
{
    switch (p.kind) {
      case Primitive::Kind::kAdder:
        // One LUT per bit with carry chains.
        return p.width;
      case Primitive::Kind::kComparator:
        // 3 bits per 6-LUT plus a reduction tree.
        return p.width / 3 + 2;
      case Primitive::Kind::kMux:
        // A 6-LUT implements a 2:1 mux for 2-3 bits.
        return (p.width + 1) / 2;
      case Primitive::Kind::kRegister:
        return 0;   // flip-flops live next to LUTs
      case Primitive::Kind::kDecoder:
        // 2^n outputs, ~1 LUT per 2 outputs for small n.
        return (1u << p.width) / 2;
      case Primitive::Kind::kRandomLogic:
        // ~2.5 2-input gates per 6-LUT after packing.
        return (p.width * 2 + 4) / 5;
      case Primitive::Kind::kShifter:
        // log2(width) mux stages, width bits each, 2 bits per LUT.
        return p.width * 5 / 2;
      case Primitive::Kind::kMultiplier:
        // Array multiplier in soft logic (no DSP blocks assumed).
        return p.width * p.width / 4;
    }
    return 0;
}

u32
ffsFor(const Primitive &p)
{
    return p.kind == Primitive::Kind::kRegister ? p.width : 0;
}

/** NAND2-equivalent gates per primitive instance. */
u64
gatesFor(const Primitive &p)
{
    switch (p.kind) {
      case Primitive::Kind::kAdder:
        return u64{p.width} * 6;        // full adder ~6 gates/bit
      case Primitive::Kind::kComparator:
        return u64{p.width} * 3;
      case Primitive::Kind::kMux:
        return u64{p.width} * 3;
      case Primitive::Kind::kRegister:
        return u64{p.width} * 8;        // DFF ~8 gate-equivalents
      case Primitive::Kind::kDecoder:
        return (u64{1} << p.width) * 2;
      case Primitive::Kind::kRandomLogic:
        return p.width;
      case Primitive::Kind::kShifter: {
        u32 stages = 0;
        for (u32 w = p.width; w > 1; w >>= 1)
            ++stages;
        return u64{p.width} * stages * 3;
      }
      case Primitive::Kind::kMultiplier:
        return u64{p.width} * p.width * 5;
    }
    return 0;
}

}  // namespace

FpgaResources
mapToFpga(const Inventory &inventory)
{
    FpgaResources res;
    res.critical_levels = inventory.critical_levels;
    for (const Primitive &p : inventory.primitives) {
        res.luts += lutsFor(p) * p.count;
        res.ffs += ffsFor(p) * p.count;
    }
    return res;
}

AsicResources
mapToAsic(const Inventory &inventory)
{
    AsicResources res;
    res.sram_bits = inventory.sram_bits;
    res.sram_macros = inventory.sram_macros;
    for (const Primitive &p : inventory.primitives)
        res.gates += gatesFor(p) * p.count;
    return res;
}

}  // namespace flexcore
