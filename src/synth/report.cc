#include "synth/report.h"

#include <cstdio>
#include <sstream>

#include "extensions/registry.h"
#include "synth/asic_model.h"
#include "synth/fpga_model.h"

namespace flexcore {

std::vector<SynthRow>
synthesisTable()
{
    // Table III covers the paper's four-extension evaluation set,
    // which the extensions themselves declare via paper_grid.
    const std::vector<MonitorKind> kinds =
        ExtensionRegistry::instance().paperGrid();
    std::vector<SynthRow> rows;

    SynthRow base;
    base.group = "Baseline";
    base.extension = "-";
    base.description = "Unmodified Leon3 w/ 32KB L1";
    base.fmax_mhz = AsicModel::kBaselineFreqMhz;
    base.area_um2 = AsicModel::kBaselineAreaUm2;
    base.area_overhead = -1;
    base.power_mw = AsicModel::kBaselinePowerMw;
    base.power_overhead = -1;
    rows.push_back(base);

    for (MonitorKind kind : kinds) {
        const ExtensionSynth ext = extensionSynth(kind);
        const AsicResources res = mapToAsic(ext.asic_extra);
        const AsicEstimate est =
            AsicModel::estimateWithExtension(res, ext.tapped_groups);
        SynthRow row;
        row.group = "ASIC";
        row.extension = ext.name;
        row.description = "Leon3 w/ " + ext.name;
        row.fmax_mhz = est.fmax_mhz;
        row.area_um2 = est.area_um2;
        row.area_overhead =
            (est.area_um2 - AsicModel::kBaselineAreaUm2) /
            AsicModel::kBaselineAreaUm2;
        row.power_mw = est.power_mw;
        row.power_overhead =
            (est.power_mw - AsicModel::kBaselinePowerMw) /
            AsicModel::kBaselinePowerMw;
        rows.push_back(row);
    }

    {
        const Inventory common = commonModulesInventory();
        const AsicResources res = mapToAsic(common);
        const AsicEstimate est = AsicModel::estimateWithExtension(
            res, commonTappedGroups());
        SynthRow row;
        row.group = "FlexCore";
        row.extension = "Common";
        row.description = "Leon3 w/ dedicated FlexCore modules";
        row.fmax_mhz = est.fmax_mhz;
        row.area_um2 = est.area_um2;
        row.area_overhead =
            (est.area_um2 - AsicModel::kBaselineAreaUm2) /
            AsicModel::kBaselineAreaUm2;
        row.power_mw = est.power_mw;
        row.power_overhead =
            (est.power_mw - AsicModel::kBaselinePowerMw) /
            AsicModel::kBaselinePowerMw;
        rows.push_back(row);
    }

    for (MonitorKind kind : kinds) {
        const ExtensionSynth ext = extensionSynth(kind);
        const FpgaResources res = mapToFpga(ext.fabric);
        const FpgaEstimate est = FpgaModel::estimate(res);
        SynthRow row;
        row.group = "FlexCore";
        row.extension = ext.name;
        row.description = ext.name + " on Flex fabric (FPGA)";
        row.fmax_mhz = est.fmax_mhz;
        row.area_um2 = est.area_um2;
        row.area_overhead = est.area_um2 / AsicModel::kBaselineAreaUm2;
        row.power_mw = est.dynamic_power_mw;
        row.power_overhead =
            est.dynamic_power_mw / AsicModel::kBaselinePowerMw;
        rows.push_back(row);
    }
    return rows;
}

std::string
renderSynthesisTable(const std::vector<SynthRow> &rows)
{
    std::ostringstream oss;
    char line[256];
    std::snprintf(line, sizeof(line), "%-9s %-7s %-38s %9s %11s %9s %8s %9s\n",
                  "Group", "Ext", "Description", "Freq(MHz)", "Area(um^2)",
                  "AreaOvhd", "Pwr(mW)", "PwrOvhd");
    oss << line;
    for (const SynthRow &row : rows) {
        char area_ov[16], pwr_ov[16];
        if (row.area_overhead < 0)
            std::snprintf(area_ov, sizeof(area_ov), "%8s", "-");
        else
            std::snprintf(area_ov, sizeof(area_ov), "%7.1f%%",
                          row.area_overhead * 100.0);
        if (row.power_overhead < 0)
            std::snprintf(pwr_ov, sizeof(pwr_ov), "%8s", "-");
        else
            std::snprintf(pwr_ov, sizeof(pwr_ov), "%7.1f%%",
                          row.power_overhead * 100.0);
        std::snprintf(line, sizeof(line),
                      "%-9s %-7s %-38s %9.0f %11.0f %9s %8.0f %9s\n",
                      row.group.c_str(), row.extension.c_str(),
                      row.description.c_str(), row.fmax_mhz,
                      row.area_um2, area_ov, row.power_mw, pwr_ov);
        oss << line;
    }
    return oss.str();
}

}  // namespace flexcore
