/**
 * @file
 * FPGA area / frequency / power models for extensions mapped onto the
 * Virtex-5-class reconfigurable fabric, following the paper's
 * methodology (§V-A): the Kuon-Rose tile-area model for area (807 µm²
 * per 6-LUT at 65 nm), a LUT-level critical-path model for frequency,
 * and a Virtex-5-power-spreadsheet-style model with toggle rate 0.1
 * and static probability 0.5 for dynamic power.
 */

#ifndef FLEXCORE_SYNTH_FPGA_MODEL_H_
#define FLEXCORE_SYNTH_FPGA_MODEL_H_

#include "synth/resources.h"

namespace flexcore {

struct FpgaEstimate
{
    u32 luts = 0;
    double area_um2 = 0;
    double fmax_mhz = 0;
    double dynamic_power_mw = 0;
};

class FpgaModel
{
  public:
    /** Kuon-Rose: CLB tile of 10 6-LUTs is 8,069 µm² at 65 nm. */
    static constexpr double kAreaPerLutUm2 = 806.9;

    /** Per-LUT-level delay (logic + local routing), ns. */
    static constexpr double kLevelDelayNs = 0.585;
    /** Fixed path overhead (clock-to-out, setup, global routing), ns. */
    static constexpr double kBaseDelayNs = 1.42;

    /** Toggle rate assumed by the paper's power estimates. */
    static constexpr double kToggleRate = 0.1;
    /** Dynamic power per LUT per MHz at the assumed toggle rate, mW. */
    static constexpr double kDynPerLutMhzMw = 0.000205;
    /** Clock tree + static baseline of the used region, mW. */
    static constexpr double kClockBaseMw = 14.9;

    /** Full estimate for a mapped inventory. */
    static FpgaEstimate estimate(const FpgaResources &resources);

    static double areaUm2(u32 luts) { return luts * kAreaPerLutUm2; }
    static double fmaxMhz(double critical_levels);
    static double powerMw(u32 luts, double fmhz);
};

}  // namespace flexcore

#endif  // FLEXCORE_SYNTH_FPGA_MODEL_H_
