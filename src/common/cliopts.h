/**
 * @file
 * Shared typed command-line parsing for the flexcore tools. Each tool
 * declares its flags once (name, typed destination, help text); the
 * parser generates --help from the declarations, validates values
 * (a malformed number is a hard error, never a silent zero), and
 * rejects unknown flags with a nearest-name suggestion.
 */

#ifndef FLEXCORE_COMMON_CLIOPTS_H_
#define FLEXCORE_COMMON_CLIOPTS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace flexcore::cli {

class Parser
{
  public:
    /** @p prog is the tool name, @p summary one usage line. */
    Parser(std::string prog, std::string summary);

    // ---- Declarations (call before parse) ----

    /** Boolean switch: present sets *out to true. */
    void flag(const std::string &name, bool *out,
              const std::string &help);

    /** Value options; the value is validated by type. */
    void option(const std::string &name, std::string *out,
                const std::string &metavar, const std::string &help);
    void option(const std::string &name, u32 *out,
                const std::string &metavar, const std::string &help);
    void option(const std::string &name, u64 *out,
                const std::string &metavar, const std::string &help);
    void option(const std::string &name, double *out,
                const std::string &metavar, const std::string &help);

    /** Repeatable string option; each occurrence appends. */
    void list(const std::string &name, std::vector<std::string> *out,
              const std::string &metavar, const std::string &help);

    /**
     * Enumerated option: the value must be one of @p choices; @p apply
     * receives the matching index. The help line lists the choices.
     */
    void choice(const std::string &name,
                std::vector<std::string> choices,
                std::function<void(size_t)> apply,
                const std::string &help);

    /** Positional argument (at most one may be declared). */
    void positional(const std::string &metavar, std::string *out,
                    bool required = true);

    /** Extra free-form text appended to --help. */
    void footer(std::string text);

    // ---- Parsing ----

    /**
     * Parse @p argv. Returns false with *error set on any problem
     * (unknown flag — with a nearest-name suggestion, missing or
     * malformed value, unexpected positional). --help/-h sets
     * helpRequested() and returns true without consuming further
     * arguments.
     */
    bool tryParse(int argc, char **argv, std::string *error);

    /**
     * tryParse wrapper for tool main()s: on --help prints helpText()
     * to stdout and exits 0; on error prints the message and the usage
     * line to stderr and exits 2.
     */
    void parseOrExit(int argc, char **argv);

    bool helpRequested() const { return help_requested_; }
    std::string helpText() const;
    std::string usageLine() const;

  private:
    struct Opt
    {
        std::string name;
        std::string metavar;   //!< empty for boolean flags
        std::string help;
        bool takes_value = false;
        /** Applies a value; returns false with *error on bad input. */
        std::function<bool(const std::string &, std::string *)> apply;
    };

    const Opt *find(const std::string &name) const;
    std::string suggest(const std::string &name) const;
    void addOpt(Opt opt);

    std::string prog_;
    std::string summary_;
    std::string footer_;
    std::vector<Opt> opts_;
    std::string pos_metavar_;
    std::string *pos_out_ = nullptr;
    bool pos_required_ = false;
    bool help_requested_ = false;
};

}  // namespace flexcore::cli

#endif  // FLEXCORE_COMMON_CLIOPTS_H_
