/**
 * @file
 * Work-stealing thread pool used by the parallel campaign runner.
 *
 * Each worker owns a deque: it pops work from the front of its own
 * queue and steals from the back of its neighbours' queues when it runs
 * dry. External submissions are distributed round-robin. Tasks must not
 * throw; a task that cannot make progress should report failure through
 * its own result slot (or call FLEX_FATAL, which exits the process).
 */

#ifndef FLEXCORE_COMMON_THREADPOOL_H_
#define FLEXCORE_COMMON_THREADPOOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace flexcore {

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @p threads 0 picks defaultThreadCount(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. Safe to call from worker tasks. */
    void submit(Task task);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static unsigned defaultThreadCount();

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void workerLoop(unsigned self);
    bool popLocal(unsigned self, Task *task);
    bool steal(unsigned self, Task *task);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;

    // cv_mutex_ guards the sleep/wake protocol; the counters are
    // atomics so the hot path can update them without it.
    std::mutex cv_mutex_;
    std::condition_variable work_cv_;   //!< wakes idle workers
    std::condition_variable done_cv_;   //!< wakes wait()
    std::atomic<u64> queued_{0};        //!< tasks sitting in queues
    std::atomic<u64> unfinished_{0};    //!< queued + running tasks
    std::atomic<u64> next_queue_{0};    //!< round-robin submit cursor
    std::atomic<bool> stop_{false};
};

}  // namespace flexcore

#endif  // FLEXCORE_COMMON_THREADPOOL_H_
