#include "common/outputspec.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cliopts.h"
#include "common/ioutil.h"
#include "common/trace_event.h"
#include "extensions/registry.h"
#include "faults/fault_plan.h"

namespace flexcore {

void
OutputSpec::attach(cli::Parser *parser, u32 groups)
{
    groups_ = groups;
    if (groups & kSpecExecMode) {
        parser->option("--exec-mode", &exec_mode_name, "MODE",
                       "execution engine: interp (golden, default) or "
                       "threaded (function-pointer superblock dispatch; "
                       "identical results, faster)");
    }
    if (groups & kSpecSampling) {
        parser->option("--sample-window", &sample_window, "N",
                       "sampled timing: detailed instructions per "
                       "sampling unit (requires --sample-period)");
        parser->option("--sample-period", &sample_period, "N",
                       "sampled timing: instructions per sampling unit; "
                       "the first --sample-window of each unit in full "
                       "detail, the rest functionally warmed (cycles "
                       "become a CPI-extrapolated estimate)");
    }
    if (groups & kSpecMaxCycles) {
        parser->option("--max-cycles", &max_cycles, "N",
                       "simulation cycle limit (0 = default)");
    }
    if (groups & kSpecWatchdog) {
        parser->option("--watchdog-commits", &watchdog_commits, "N",
                       "end a run as a hang after N consecutive cycles "
                       "without a commit (0 = off)");
    }
    if (groups & kSpecFaults) {
        parser->list("--inject", &inject_specs, "SPEC",
                     "schedule one fault, e.g. reg@i1200:t17:b3 or "
                     "mem@c5000:t0x2040:b5 or ffifo@c900:t2:b12:fsrcv1; "
                     "a trailing :cN targets core N; repeatable");
        parser->option("--fault-plan", &fault_plan_path, "FILE",
                       "load a fault plan (JSON document or compact "
                       "specs, see docs/fault_injection.md)");
    }
    if (groups & kSpecStatsJson) {
        parser->option("--stats-json", &stats_json_path, "FILE",
                       "write the statistics tree to FILE as canonical "
                       "JSON (- = stdout)");
    }
    if (groups & kSpecProfileFile) {
        parser->option("--profile-json", &profile_json_path, "FILE",
                       "write the per-PC cycle-attribution hotspot "
                       "report to FILE as canonical JSON (- = stdout)");
    }
    if (groups & kSpecProfileEmbed) {
        parser->flag("--profile-json", &profile_embed,
                     "embed the per-PC cycle-attribution hotspot report "
                     "in every result row as a \"profile\" object");
    }
    if (groups & (kSpecProfileFile | kSpecProfileEmbed)) {
        parser->option("--profile-top", &profile_top, "N",
                       (groups & kSpecProfileEmbed)
                           ? "PCs per bucket in embedded profiles "
                             "(default 10; implies --profile-json)"
                           : "PCs per bucket in the --profile-json top "
                             "lists (default 10)");
    }
    if (groups & kSpecTrace) {
        parser->option("--trace-json", &trace_json_path, "FILE",
                       "write a Chrome trace-event file to FILE (open "
                       "in Perfetto or chrome://tracing)");
        parser->option("--trace-out", &trace_out_path, "FILE",
                       "stream a binary FXTR trace to FILE (O(1) "
                       "memory; inspect with flexcore-trace)");
    }
    if (groups & kSpecFastForward) {
        parser->flag("--no-fast-forward", &no_fast_forward,
                     "disable quiescent-stretch fast-forwarding "
                     "(results are identical either way; this exists "
                     "to prove it)");
    }
    if (groups & kSpecHistograms) {
        parser->flag("--no-histograms", &no_histograms,
                     "suppress the histogram sampling that --stats-json "
                     "normally implies (for byte-comparing stats "
                     "against an --exec-mode threaded run, which cannot "
                     "sample)");
    }
    if (groups & kSpecCores) {
        parser->option("--cores", &cores, "N",
                       "number of cores (default 1; multi-core runs are "
                       "interpreter-only, see docs/multicore.md)");
        parser->option("--fabric-sharing", &fabric_sharing_name, "KIND",
                       "multi-core fabric topology: per_core (default, "
                       "one fabric per core) or shared (one fabric "
                       "time-multiplexed across cores)");
    }
    if (groups & kSpecListMonitors) {
        parser->flag("--list-monitors", &list_monitors,
                     "list every registered monitoring extension and "
                     "exit");
    }
}

bool
OutputSpec::handledListMonitors() const
{
    if (!list_monitors)
        return false;
    std::fputs(listMonitorsText().c_str(), stdout);
    return true;
}

bool
OutputSpec::apply(SystemConfig *config, const char *tool) const
{
    if (!exec_mode_name.empty() &&
        !parseExecMode(exec_mode_name, &config->exec_mode)) {
        std::fprintf(stderr,
                     "%s: unknown exec mode '%s' (interp or threaded)\n",
                     tool, exec_mode_name.c_str());
        return false;
    }
    if (groups_ & kSpecSampling) {
        config->sample_window = sample_window;
        config->sample_period = sample_period;
    }
    if ((groups_ & kSpecMaxCycles) && max_cycles != 0)
        config->max_cycles = max_cycles;
    if (groups_ & kSpecWatchdog)
        config->watchdog_commits = watchdog_commits;
    if (no_fast_forward)
        config->fast_forward = false;
    if (groups_ & kSpecCores) {
        config->num_cores = cores;
        if (!fabric_sharing_name.empty() &&
            !parseFabricSharing(fabric_sharing_name,
                                &config->fabric_sharing)) {
            std::fprintf(stderr,
                         "%s: unknown fabric sharing '%s' (per_core or "
                         "shared)\n",
                         tool, fabric_sharing_name.c_str());
            return false;
        }
    }

    if (!fault_plan_path.empty()) {
        std::ifstream plan_file(fault_plan_path);
        if (!plan_file) {
            std::fprintf(stderr, "%s: cannot open %s\n", tool,
                         fault_plan_path.c_str());
            return false;
        }
        std::stringstream plan_text;
        plan_text << plan_file.rdbuf();
        std::string error;
        if (!parseFaultPlan(plan_text.str(), &config->faults, &error)) {
            std::fprintf(stderr, "%s: %s: %s\n", tool,
                         fault_plan_path.c_str(), error.c_str());
            return false;
        }
    }
    for (const std::string &text : inject_specs) {
        FaultSpec spec;
        std::string error;
        if (!parseFaultSpec(text, &spec, &error)) {
            std::fprintf(stderr, "%s: --inject %s: %s\n", tool,
                         text.c_str(), error.c_str());
            return false;
        }
        config->faults.specs.push_back(spec);
    }
    if (groups_ & kSpecFaults) {
        if (std::string why = validateFaultPlan(config->faults);
            !why.empty()) {
            std::fprintf(stderr, "%s: invalid fault plan: %s\n", tool,
                         why.c_str());
            return false;
        }
    }

    if (!trace_json_path.empty() && !trace_out_path.empty()) {
        std::fprintf(stderr,
                     "%s: --trace-json and --trace-out are mutually "
                     "exclusive (one trace sink per run)\n",
                     tool);
        return false;
    }
    // Observability output implies histogram sampling: the JSON should
    // carry populated occupancy/queue-depth distributions. Threaded
    // dispatch and sampled timing skip per-cycle bookkeeping, so the
    // implication is suppressed there (an explicit --trace-json under
    // sampling still reaches finalize() and is rejected with a typed
    // error; under threaded it is legal and falls back to the
    // per-cycle loop).
    if ((!stats_json_path.empty() || !trace_json_path.empty()) &&
        !no_histograms && config->exec_mode == ExecMode::kInterp &&
        config->sample_period == 0) {
        config->histograms = true;
    }
    return true;
}

bool
OutputSpec::profileRequested() const
{
    return !profile_json_path.empty() || profile_embed ||
           ((groups_ & kSpecProfileEmbed) && profile_top != 0);
}

u32
OutputSpec::effectiveProfileTop() const
{
    return profile_top != 0 ? profile_top : 10;
}

bool
OutputSpec::jsonOnStdout() const
{
    // --trace-json/--trace-out on stdout claim it too: interleaving a
    // trace document (or a binary FXTR stream) with the simulated
    // console would corrupt both.
    return isStdoutPath(stats_json_path) ||
           isStdoutPath(profile_json_path) ||
           isStdoutPath(trace_json_path) ||
           isStdoutPath(trace_out_path);
}

void
OutputSpec::configureRequest(
    SimRequest *request, TraceBuffer *trace_sink,
    std::optional<TraceStreamWriter> *trace_out) const
{
    if (!stats_json_path.empty())
        request->statsJson();
    if (profileRequested())
        request->profileJson(effectiveProfileTop());
    if (!trace_json_path.empty() && trace_sink)
        request->trace(trace_sink);
    if (!trace_out_path.empty() && trace_out) {
        trace_out->emplace(trace_out_path);
        request->traceStream(&**trace_out);
    }
}

void
OutputSpec::configureWireRequest(SimRequest *request) const
{
    if (!stats_json_path.empty())
        request->statsJson();
    if (profileRequested())
        request->profileJson(effectiveProfileTop());
    if (!trace_out_path.empty())
        request->traceFxtr();
}

void
OutputSpec::writeOutputs(const SimOutcome &outcome,
                         TraceBuffer *trace_sink) const
{
    if (!stats_json_path.empty())
        writeTextOrStdout(stats_json_path, outcome.stats_json);
    if (!profile_json_path.empty())
        writeTextOrStdout(profile_json_path, outcome.profile_json);
    if (!trace_json_path.empty() && trace_sink)
        trace_sink->write(trace_json_path);
}

}  // namespace flexcore
