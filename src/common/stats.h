/**
 * @file
 * Lightweight statistics registry. Every simulated component owns a
 * StatGroup; counters register themselves with a name so end-of-run
 * reports can be produced generically.
 */

#ifndef FLEXCORE_COMMON_STATS_H_
#define FLEXCORE_COMMON_STATS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace flexcore {

class StatGroup;

/** A named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;
    Counter(StatGroup *group, std::string name, std::string desc);

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(u64 n) { value_ += n; return *this; }
    void reset() { value_ = 0; }

    u64 value() const { return value_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    u64 value_ = 0;
};

/**
 * A collection of counters belonging to one component. Groups form a
 * tree through the parent pointer so a System can enumerate everything.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);

    /** Register a counter; called by the Counter constructor. */
    void registerCounter(Counter *counter);
    void registerChild(StatGroup *child);

    const std::string &name() const { return name_; }
    const std::vector<Counter *> &counters() const { return counters_; }
    const std::vector<StatGroup *> &children() const { return children_; }

    /** Reset all counters in this group and its descendants. */
    void resetAll();

    /**
     * Render "group.counter value # desc" lines for this group and its
     * descendants, one per counter.
     */
    std::string dump(const std::string &prefix = "") const;

    /** Find a counter value by dotted path ("core.cycles"); 0 if absent. */
    u64 lookup(const std::string &dotted_path) const;

  private:
    std::string name_;
    std::vector<Counter *> counters_;
    std::vector<StatGroup *> children_;
};

}  // namespace flexcore

#endif  // FLEXCORE_COMMON_STATS_H_
