/**
 * @file
 * Lightweight statistics registry. Every simulated component owns a
 * StatGroup; counters, histograms, and derived formulas register
 * themselves with a name so end-of-run reports can be produced
 * generically, as a flat text dump or as canonical JSON.
 */

#ifndef FLEXCORE_COMMON_STATS_H_
#define FLEXCORE_COMMON_STATS_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace flexcore {

class StatGroup;

/** A named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;
    Counter(StatGroup *group, std::string name, std::string desc);

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(u64 n) { value_ += n; return *this; }
    void reset() { value_ = 0; }

    u64 value() const { return value_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    u64 value_ = 0;
};

/**
 * A fixed-bin distribution of u64 samples (FIFO occupancies, queue
 * depths, stall-episode lengths, ...). Bin edges are either linear
 * (equal-width over [lo, hi)) or log2 (bin i covers [lo<<i, lo<<(i+1)),
 * lo >= 1). Samples below the first bin or at/above the last edge land
 * in dedicated underflow/overflow bins, so count() always equals the
 * number of add() calls and nothing is silently dropped.
 */
class Histogram
{
  public:
    struct Params
    {
        u64 lo = 0;          //!< inclusive lower edge of bin 0
        u64 hi = 64;         //!< exclusive upper edge of the last bin
                             //!< (ignored for log2 binning)
        u32 bins = 16;
        bool log2 = false;   //!< log2-width bins anchored at lo (>= 1)
    };

    Histogram() = default;
    Histogram(StatGroup *group, std::string name, std::string desc,
              Params params);

    void add(u64 value) { add(value, 1); }
    /**
     * Record @p value @p n times in one call — equivalent to (and
     * indistinguishable from) n add(value) calls. Lets fast-forwarded
     * idle stretches charge bulk samples without a per-cycle loop.
     */
    void add(u64 value, u64 n);
    void reset();

    u64 count() const { return count_; }
    u64 underflow() const { return underflow_; }
    u64 overflow() const { return overflow_; }
    u64 sum() const { return sum_; }
    /** Smallest/largest sample seen (0 when empty). */
    u64 min() const { return count_ ? min_ : 0; }
    u64 max() const { return count_ ? max_ : 0; }
    double mean() const;

    /**
     * Approximate percentile (p in [0, 100]) from the bin counts: the
     * inclusive lower edge of the bin holding the rank-ceil(p/100*n)
     * sample. Underflow resolves to min(), overflow to max(). Exact
     * when every bin is one unit wide; deterministic always.
     */
    double percentile(double p) const;

    u32 numBins() const { return params_.bins; }
    u64 binCount(u32 bin) const { return counts_[bin]; }
    /** Inclusive lower edge of @p bin. */
    u64 binLower(u32 bin) const;

    const Params &params() const { return params_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    Params params_;
    std::vector<u64> counts_;
    u64 count_ = 0;
    u64 underflow_ = 0;
    u64 overflow_ = 0;
    u64 sum_ = 0;
    u64 min_ = ~u64{0};
    u64 max_ = 0;
};

/**
 * A named derived statistic (IPC, miss rate, fill fraction, ...):
 * a function over other statistics, evaluated lazily at report time so
 * it never costs anything on the simulation hot path.
 */
class Formula
{
  public:
    Formula() = default;
    Formula(StatGroup *group, std::string name, std::string desc,
            std::function<double()> fn);

    /** Evaluate; non-finite results (x/0) collapse to 0. */
    double value() const;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::function<double()> fn_;
};

/**
 * A collection of statistics belonging to one component. Groups form a
 * tree through the parent pointer so a System can enumerate everything.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);

    /** Register a counter; called by the Counter constructor. */
    void registerCounter(Counter *counter);
    void registerHistogram(Histogram *histogram);
    void registerFormula(Formula *formula);
    void registerChild(StatGroup *child);

    const std::string &name() const { return name_; }
    const std::vector<Counter *> &counters() const { return counters_; }
    const std::vector<Histogram *> &histograms() const
    {
        return histograms_;
    }
    const std::vector<Formula *> &formulas() const { return formulas_; }
    const std::vector<StatGroup *> &children() const { return children_; }

    /** Reset all counters/histograms in this group and descendants. */
    void resetAll();

    /**
     * Render "group.counter value # desc" lines for this group and its
     * descendants, one per counter; histograms render one line per
     * summary statistic (.count/.min/.max/.mean/.p50/.p90/.p99) and
     * formulas one line each.
     */
    std::string dump(const std::string &prefix = "") const;

    /**
     * Canonical JSON for this group's subtree: 2-space indented, keys
     * sorted alphabetically within each section, empty sections
     * omitted, %.17g doubles. The same tree state always renders to
     * the same bytes. Schema: docs/observability.md.
     */
    std::string json() const;

    /**
     * Find a counter by dotted path ("core.cycles"). Distinguishes a
     * missing path from a zero-valued counter — use this whenever the
     * path comes from user input (CLI stat selections, sweep specs).
     */
    std::optional<u64> tryLookup(const std::string &dotted_path) const;

    /** Convenience wrapper around tryLookup(): 0 if absent. */
    u64 lookup(const std::string &dotted_path) const
    {
        return tryLookup(dotted_path).value_or(0);
    }

  private:
    void jsonInto(std::string *out, const std::string &indent) const;

    std::string name_;
    std::vector<Counter *> counters_;
    std::vector<Histogram *> histograms_;
    std::vector<Formula *> formulas_;
    std::vector<StatGroup *> children_;
};

/** Geometric mean of a non-empty vector (FLEX_PANIC if empty). */
double geomean(const std::vector<double> &values);

}  // namespace flexcore

#endif  // FLEXCORE_COMMON_STATS_H_
