/**
 * @file
 * Minimal POSIX socket plumbing for flexcore-serve and its clients:
 * endpoint parsing ("unix:/path/to.sock" or "tcp:host:port"), blocking
 * listen/accept/connect, and the length-prefixed frame protocol both
 * sides speak — every message is a `u32` little-endian payload length
 * followed by exactly that many bytes (docs/serve.md).
 *
 * Everything returns errors by value (false / -1 plus a message);
 * nothing here is fatal, because a misbehaving peer must never take
 * the server down.
 */

#ifndef FLEXCORE_COMMON_NETIO_H_
#define FLEXCORE_COMMON_NETIO_H_

#include <string>
#include <string_view>

#include "common/rng.h"
#include "common/types.h"

namespace flexcore::netio {

/** Hard upper bound on a frame payload; larger prefixes are a
 * protocol error (a desynchronized or hostile peer, not a real
 * request). Servers enforce a much smaller configurable cap on top of
 * this (flexcore-serve --max-frame-bytes). */
inline constexpr u32 kMaxFrameBytes = 256u * 1024 * 1024;

/** A parsed "unix:PATH" or "tcp:HOST:PORT" address. */
struct Endpoint
{
    bool is_unix = true;
    std::string path;   //!< unix: filesystem path of the socket
    std::string host;   //!< tcp: numeric or named host
    u16 port = 0;       //!< tcp only
};

/** Parse an endpoint string; false + message for malformed input. */
bool parseEndpoint(std::string_view text, Endpoint *out,
                   std::string *error);

/** Render an endpoint back to its canonical string form. */
std::string endpointString(const Endpoint &endpoint);

/**
 * Create, bind, and listen. Unix endpoints unlink a stale socket file
 * first (the server owns its path). Returns the listening fd, or -1
 * with @p error set.
 */
int listenOn(const Endpoint &endpoint, std::string *error);

/** Accept one client; -1 on error (including listener shutdown). */
int acceptClient(int listen_fd);

/** Connect to a server; returns the fd or -1 with @p error set. */
int connectTo(const Endpoint &endpoint, std::string *error);

/**
 * Backoff delay before retry number @p attempt (0-based): an
 * exponential ramp from @p base_ms capped at @p max_ms, jittered
 * uniformly into [cap/2, cap] by @p rng. Pure given the Rng state, so
 * a key-derived seed makes every client's retry schedule deterministic
 * (and different clients never thundering-herd in phase).
 */
u32 backoffDelayMs(u32 base_ms, u32 max_ms, u32 attempt, Rng *rng);

/**
 * connectTo with bounded exponential backoff, for scripts that start
 * the server and the client back to back and for clients riding out a
 * briefly-overloaded listener: up to @p attempts tries, sleeping
 * backoffDelayMs(base_ms, max_ms, k) between try k and k+1, jitter
 * seeded by @p jitter_seed (derive it from a stable per-client key).
 * On success @p retries_out (if non-null) receives the number of
 * failed attempts that preceded it.
 */
int connectWithBackoff(const Endpoint &endpoint, int attempts,
                       u32 base_ms, u32 max_ms, u64 jitter_seed,
                       u32 *retries_out, std::string *error);

/** Put a socket into non-blocking mode (servers pair this with the
 * timed frame I/O below so no peer can park a thread forever). */
bool setNonBlocking(int fd);

/** Poll @p fd for readability; true when readable, false on timeout
 * or poll error. @p timeout_ms < 0 waits forever. */
bool waitReadable(int fd, int timeout_ms);

/** Write one frame (u32 LE length + payload). False on any I/O error. */
bool sendFrame(int fd, std::string_view payload);

/**
 * sendFrame with an overall wall-clock budget: each blocked write
 * waits in poll(POLLOUT) for the remaining budget, so a peer that
 * stops reading (slow-loris on the response path) costs at most
 * @p timeout_ms before the frame is abandoned. @p timeout_ms < 0
 * means no budget (identical to sendFrame).
 */
bool sendFrameLimited(int fd, std::string_view payload, int timeout_ms);

/**
 * Read one frame. Returns false with an empty @p error on clean EOF
 * (the peer hung up between frames) and with a message for truncated
 * frames or oversized length prefixes.
 */
bool recvFrame(int fd, std::string *payload, std::string *error);

/** Outcome of recvFrameLimited (the server-side receive path). */
enum class RecvStatus : u8 {
    kFrame,        //!< one complete frame in @p payload
    kEof,          //!< clean EOF before any byte of a frame
    kIdleTimeout,  //!< no first byte within idle_timeout_ms
    kFrameTimeout, //!< frame started but did not finish in time
    kTooLarge,     //!< length prefix exceeds max_bytes (nothing read)
    kError,        //!< truncated frame or I/O error
};

/**
 * Read one frame defensively. @p idle_timeout_ms bounds the wait for
 * the frame's *first* byte (< 0 = forever); once a byte has arrived
 * the whole frame must complete within @p frame_timeout_ms (< 0 =
 * forever) — that is what defeats slow-loris writes. A length prefix
 * above @p max_bytes returns kTooLarge *without allocating or reading
 * the claimed payload*, so a hostile 4-byte prefix can never balloon
 * server memory; the caller should answer with a typed error and drop
 * the connection (the stream is desynchronized past repair). Works on
 * blocking and non-blocking fds alike.
 */
RecvStatus recvFrameLimited(int fd, std::string *payload, u32 max_bytes,
                            int idle_timeout_ms, int frame_timeout_ms,
                            std::string *error);

/**
 * shutdown(2) both directions (idempotent for fd < 0). Unlike close(),
 * this wakes a thread blocked in accept()/recv() on the fd — it is how
 * a server's shutdown op kicks the accept loop awake from another
 * thread. The fd itself stays allocated until closeSocket().
 */
void shutdownSocket(int fd);

/**
 * shutdown(2) the read side only (idempotent for fd < 0). Wakes a
 * thread parked in recv()/poll() with EOF while leaving the write
 * side intact — how drain unsticks idle connection readers without
 * cutting a response that is still being written on the same fd.
 */
void shutdownSocketRead(int fd);

/** Close a socket fd (idempotent for fd < 0). */
void closeSocket(int fd);

}  // namespace flexcore::netio

#endif  // FLEXCORE_COMMON_NETIO_H_
