/**
 * @file
 * Minimal POSIX socket plumbing for flexcore-serve and its clients:
 * endpoint parsing ("unix:/path/to.sock" or "tcp:host:port"), blocking
 * listen/accept/connect, and the length-prefixed frame protocol both
 * sides speak — every message is a `u32` little-endian payload length
 * followed by exactly that many bytes (docs/serve.md).
 *
 * Everything returns errors by value (false / -1 plus a message);
 * nothing here is fatal, because a misbehaving peer must never take
 * the server down.
 */

#ifndef FLEXCORE_COMMON_NETIO_H_
#define FLEXCORE_COMMON_NETIO_H_

#include <string>
#include <string_view>

#include "common/types.h"

namespace flexcore::netio {

/** Upper bound on a frame payload; larger prefixes are a protocol
 * error (a desynchronized or hostile peer, not a real request). */
inline constexpr u32 kMaxFrameBytes = 256u * 1024 * 1024;

/** A parsed "unix:PATH" or "tcp:HOST:PORT" address. */
struct Endpoint
{
    bool is_unix = true;
    std::string path;   //!< unix: filesystem path of the socket
    std::string host;   //!< tcp: numeric or named host
    u16 port = 0;       //!< tcp only
};

/** Parse an endpoint string; false + message for malformed input. */
bool parseEndpoint(std::string_view text, Endpoint *out,
                   std::string *error);

/** Render an endpoint back to its canonical string form. */
std::string endpointString(const Endpoint &endpoint);

/**
 * Create, bind, and listen. Unix endpoints unlink a stale socket file
 * first (the server owns its path). Returns the listening fd, or -1
 * with @p error set.
 */
int listenOn(const Endpoint &endpoint, std::string *error);

/** Accept one client; -1 on error (including listener shutdown). */
int acceptClient(int listen_fd);

/** Connect to a server; returns the fd or -1 with @p error set. */
int connectTo(const Endpoint &endpoint, std::string *error);

/**
 * connectTo with retry, for scripts that start the server and the
 * client back to back: retries @p attempts times, sleeping
 * @p delay_ms between tries, so the client never races the listener.
 */
int connectWithRetry(const Endpoint &endpoint, int attempts,
                     int delay_ms, std::string *error);

/** Write one frame (u32 LE length + payload). False on any I/O error. */
bool sendFrame(int fd, std::string_view payload);

/**
 * Read one frame. Returns false with an empty @p error on clean EOF
 * (the peer hung up between frames) and with a message for truncated
 * frames or oversized length prefixes.
 */
bool recvFrame(int fd, std::string *payload, std::string *error);

/**
 * shutdown(2) both directions (idempotent for fd < 0). Unlike close(),
 * this wakes a thread blocked in accept()/recv() on the fd — it is how
 * a server's shutdown op kicks the accept loop awake from another
 * thread. The fd itself stays allocated until closeSocket().
 */
void shutdownSocket(int fd);

/** Close a socket fd (idempotent for fd < 0). */
void closeSocket(int fd);

}  // namespace flexcore::netio

#endif  // FLEXCORE_COMMON_NETIO_H_
