#include "common/trace_stream.h"

#include <algorithm>
#include <cinttypes>
#include <cstring>

#include "common/log.h"

namespace flexcore {

namespace {

/** Flush threshold for the writer's pending-byte ring. */
constexpr size_t kFlushBytes = 64 * 1024;

u16
load16(const u8 *p)
{
    return static_cast<u16>(p[0] | (u16{p[1]} << 8));
}

u32
load32(const u8 *p)
{
    return u32{p[0]} | (u32{p[1]} << 8) | (u32{p[2]} << 16) |
           (u32{p[3]} << 24);
}

u64
load64(const u8 *p)
{
    return u64{load32(p)} | (u64{load32(p + 4)} << 32);
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceStreamWriter

TraceStreamWriter::TraceStreamWriter(const std::string &path)
    : path_(path)
{
    if (path == "-") {
        file_ = stdout;
    } else {
        file_ = std::fopen(path.c_str(), "wb");
        if (!file_)
            FLEX_FATAL("cannot open '", path, "' for writing");
        close_file_ = true;
    }
    writeHeader();
}

TraceStreamWriter::TraceStreamWriter(std::string *sink)
    : path_("<memory>"), sink_(sink)
{
    writeHeader();
}

void
TraceStreamWriter::writeHeader()
{
    buffer_.reserve(kFlushBytes + 512);
    buffer_.insert(buffer_.end(), kTraceMagic, kTraceMagic + 4);
    put32(kTraceVersion);
    buffer_.insert(buffer_.end(), scratch_.begin(), scratch_.end());
    scratch_.clear();
}

TraceStreamWriter::~TraceStreamWriter()
{
    finish();
}

void
TraceStreamWriter::put16(u16 v)
{
    scratch_.push_back(static_cast<u8>(v));
    scratch_.push_back(static_cast<u8>(v >> 8));
}

void
TraceStreamWriter::put32(u32 v)
{
    put16(static_cast<u16>(v));
    put16(static_cast<u16>(v >> 16));
}

void
TraceStreamWriter::put64(u64 v)
{
    put32(static_cast<u32>(v));
    put32(static_cast<u32>(v >> 32));
}

void
TraceStreamWriter::beginRecord(TraceRecordType type)
{
    scratch_.clear();
    put8(static_cast<u8>(type));
}

void
TraceStreamWriter::endRecord()
{
    const size_t len = scratch_.size();
    if (len > 0xffff)
        FLEX_FATAL("trace record too large (", len, " bytes)");
    buffer_.push_back(static_cast<u8>(len));
    buffer_.push_back(static_cast<u8>(len >> 8));
    buffer_.insert(buffer_.end(), scratch_.begin(), scratch_.end());
    ++records_;
    if (buffer_.size() >= kFlushBytes)
        flushBuffer();
}

void
TraceStreamWriter::flushBuffer()
{
    if (buffer_.empty())
        return;
    if (sink_) {
        sink_->append(reinterpret_cast<const char *>(buffer_.data()),
                      buffer_.size());
        buffer_.clear();
        return;
    }
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size()) {
        if (close_file_)
            std::fclose(file_);
        file_ = nullptr;
        FLEX_FATAL("short write to '", path_, "'");
    }
    buffer_.clear();
}

u16
TraceStreamWriter::intern(const char *name)
{
    const auto fast = by_pointer_.find(name);
    if (fast != by_pointer_.end())
        return fast->second;
    // The same literal can live at different addresses across
    // translation units: the content map owns the canonical id.
    const auto [it, inserted] =
        by_content_.try_emplace(name, static_cast<u16>(by_content_.size()));
    if (inserted) {
        if (by_content_.size() > 0xffff)
            FLEX_FATAL("trace stream interned too many names");
        beginRecord(TraceRecordType::kString);
        put16(it->second);
        const size_t n = std::strlen(name);
        scratch_.insert(scratch_.end(), name, name + n);
        endRecord();
    }
    by_pointer_.emplace(name, it->second);
    return it->second;
}

void
TraceStreamWriter::counter(const char *name, Cycle ts, u64 value)
{
    const u16 id = intern(name);
    beginRecord(TraceRecordType::kCounter);
    put16(id);
    put64(ts);
    put64(value);
    endRecord();
    if (ts > last_ts_)
        last_ts_ = ts;
}

void
TraceStreamWriter::complete(const char *name, const char *cat, u32 tid,
                            Cycle start, Cycle end)
{
    const u16 name_id = intern(name);
    const u16 cat_id = intern(cat);
    beginRecord(TraceRecordType::kComplete);
    put16(name_id);
    put16(cat_id);
    put8(static_cast<u8>(tid));
    put64(start);
    put64(end > start ? end - start : 0);
    endRecord();
    if (end > last_ts_)
        last_ts_ = end;
}

void
TraceStreamWriter::instant(const char *name, const char *cat, u32 tid,
                           Cycle ts)
{
    const u16 name_id = intern(name);
    const u16 cat_id = intern(cat);
    beginRecord(TraceRecordType::kInstant);
    put16(name_id);
    put16(cat_id);
    put8(static_cast<u8>(tid));
    put64(ts);
    endRecord();
    if (ts > last_ts_)
        last_ts_ = ts;
}

void
TraceStreamWriter::commit(Cycle now, Addr pc, u32 inst)
{
    beginRecord(TraceRecordType::kCommit);
    put64(now);
    put32(pc);
    put32(inst);
    endRecord();
    ++commits_;
    if (now > last_ts_)
        last_ts_ = now;
}

void
TraceStreamWriter::faultMark(Cycle now, u8 kind, u64 target, u8 bit)
{
    beginRecord(TraceRecordType::kFaultMark);
    put64(now);
    put8(kind);
    put64(target);
    put8(bit);
    endRecord();
    if (now > last_ts_)
        last_ts_ = now;
}

void
TraceStreamWriter::window(Cycle now, u64 instructions, bool detailed)
{
    beginRecord(TraceRecordType::kWindow);
    put64(now);
    put64(instructions);
    put8(detailed ? 1 : 0);
    endRecord();
    if (now > last_ts_)
        last_ts_ = now;
}

void
TraceStreamWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (!file_ && !sink_)
        return;
    beginRecord(TraceRecordType::kSummary);
    put64(records_);   // record count *before* this footer
    put64(commits_);
    put64(last_ts_);
    endRecord();
    flushBuffer();
    if (file_) {
        if (close_file_)
            std::fclose(file_);
        else
            std::fflush(file_);   // stdout stays open for the caller
        file_ = nullptr;
    }
    sink_ = nullptr;
}

// ---------------------------------------------------------------------------
// TraceReader

TraceReader::TraceReader(const std::string &path)
{
    if (path == "-") {
        file_ = stdin;
    } else {
        file_ = std::fopen(path.c_str(), "rb");
        if (!file_) {
            error_ = "cannot open '" + path + "'";
            return;
        }
        close_file_ = true;
    }
    readHeader();
}

TraceReader::TraceReader(const void *data, size_t size)
    : mem_(static_cast<const u8 *>(data)), mem_size_(size)
{
    readHeader();
}

void
TraceReader::readHeader()
{
    u8 header[8];
    if (readBytes(header, sizeof(header)) != sizeof(header)) {
        fail("truncated header");
        return;
    }
    if (std::memcmp(header, kTraceMagic, 4) != 0) {
        fail("bad magic (not a FXTR trace stream)");
        return;
    }
    const u32 version = load32(header + 4);
    if (version != kTraceVersion)
        fail("unsupported stream version " + std::to_string(version));
}

TraceReader::~TraceReader()
{
    if (file_ && close_file_)
        std::fclose(file_);
}

size_t
TraceReader::readBytes(void *out, size_t n)
{
    if (mem_) {
        const size_t take = std::min(n, mem_size_ - mem_pos_);
        std::memcpy(out, mem_ + mem_pos_, take);
        mem_pos_ += take;
        return take;
    }
    return std::fread(out, 1, n, file_);
}

bool
TraceReader::atEnd() const
{
    if (mem_)
        return mem_pos_ >= mem_size_;
    return std::feof(file_) != 0;
}

bool
TraceReader::fail(const std::string &why)
{
    if (error_.empty())
        error_ = why;
    return false;
}

const char *
TraceReader::internedName(u16 id)
{
    if (id >= names_.size())
        return nullptr;
    return names_[id].c_str();
}

bool
TraceReader::next(TraceRecord *out)
{
    if ((!file_ && !mem_) || !error_.empty())
        return false;
    for (;;) {
        u8 len_bytes[2];
        const size_t got = readBytes(len_bytes, 2);
        if (got == 0 && atEnd())
            return false;   // clean end of stream
        if (got != 2)
            return fail("truncated record length");
        const u16 len = load16(len_bytes);
        if (len < 1)
            return fail("empty record");
        u8 payload[0xffff];
        if (readBytes(payload, len) != len)
            return fail("truncated record payload");
        ++records_read_;
        const TraceRecordType type =
            static_cast<TraceRecordType>(payload[0]);
        const u8 *p = payload + 1;
        const size_t n = static_cast<size_t>(len) - 1;
        *out = TraceRecord{};
        out->type = type;
        switch (type) {
          case TraceRecordType::kString: {
            if (n < 2)
                return fail("short kString record");
            const u16 id = load16(p);
            if (id != names_.size())
                return fail("non-sequential string id");
            names_.emplace_back(reinterpret_cast<const char *>(p + 2),
                                n - 2);
            continue;   // interning is internal; decode the next record
          }
          case TraceRecordType::kCounter: {
            if (n != 18)
                return fail("short kCounter record");
            out->name = internedName(load16(p));
            if (!out->name)
                return fail("unknown string id");
            out->ts = load64(p + 2);
            out->a = load64(p + 10);
            return true;
          }
          case TraceRecordType::kComplete: {
            if (n != 21)
                return fail("short kComplete record");
            out->name = internedName(load16(p));
            out->cat = internedName(load16(p + 2));
            if (!out->name || !out->cat)
                return fail("unknown string id");
            out->tid = p[4];
            out->ts = load64(p + 5);
            out->a = load64(p + 13);
            return true;
          }
          case TraceRecordType::kInstant: {
            if (n != 13)
                return fail("short kInstant record");
            out->name = internedName(load16(p));
            out->cat = internedName(load16(p + 2));
            if (!out->name || !out->cat)
                return fail("unknown string id");
            out->tid = p[4];
            out->ts = load64(p + 5);
            return true;
          }
          case TraceRecordType::kCommit: {
            if (n != 16)
                return fail("short kCommit record");
            out->ts = load64(p);
            out->a = load32(p + 8);
            out->b = load32(p + 12);
            return true;
          }
          case TraceRecordType::kFaultMark: {
            if (n != 18)
                return fail("short kFaultMark record");
            out->ts = load64(p);
            out->c = p[8];
            out->a = load64(p + 9);
            out->b = p[17];
            return true;
          }
          case TraceRecordType::kWindow: {
            if (n != 17)
                return fail("short kWindow record");
            out->ts = load64(p);
            out->a = load64(p + 8);
            out->b = p[16];
            return true;
          }
          case TraceRecordType::kSummary: {
            if (n != 24)
                return fail("short kSummary record");
            out->a = load64(p);
            out->b = load64(p + 8);
            out->c = load64(p + 16);
            return true;
          }
        }
        // Unknown type: skippable by design (forward compatibility).
        continue;
    }
}

// ---------------------------------------------------------------------------
// Consumers

bool
renderChromeJson(const std::string &path, std::string *json,
                 std::string *error)
{
    TraceReader reader(path);
    TraceBuffer buffer;
    TraceRecord r;
    while (reader.next(&r)) {
        switch (r.type) {
          case TraceRecordType::kCounter:
            buffer.counter(r.name, r.ts, r.a);
            break;
          case TraceRecordType::kComplete:
            buffer.complete(r.name, r.cat, r.tid, r.ts, r.ts + r.a);
            break;
          case TraceRecordType::kInstant:
            buffer.instant(r.name, r.cat, r.tid, r.ts);
            break;
          default:
            break;   // stream-only records have no Chrome phase
        }
    }
    if (!reader.valid()) {
        if (error)
            *error = reader.error();
        return false;
    }
    *json = buffer.json();
    return true;
}

std::string
describeRecord(const TraceRecord &r)
{
    char buf[256];
    switch (r.type) {
      case TraceRecordType::kCounter:
        std::snprintf(buf, sizeof(buf),
                      "counter %s ts=%" PRIu64 " value=%" PRIu64, r.name,
                      r.ts, r.a);
        break;
      case TraceRecordType::kComplete:
        std::snprintf(buf, sizeof(buf),
                      "complete %s cat=%s tid=%u ts=%" PRIu64
                      " dur=%" PRIu64,
                      r.name, r.cat, r.tid, r.ts, r.a);
        break;
      case TraceRecordType::kInstant:
        std::snprintf(buf, sizeof(buf),
                      "instant %s cat=%s tid=%u ts=%" PRIu64, r.name,
                      r.cat, r.tid, r.ts);
        break;
      case TraceRecordType::kCommit:
        std::snprintf(buf, sizeof(buf),
                      "commit cycle=%" PRIu64 " pc=0x%08" PRIx64
                      " inst=0x%08" PRIx64,
                      r.ts, r.a, r.b);
        break;
      case TraceRecordType::kFaultMark:
        std::snprintf(buf, sizeof(buf),
                      "fault cycle=%" PRIu64 " kind=%" PRIu64
                      " target=%" PRIu64 " bit=%" PRIu64,
                      r.ts, r.c, r.a, r.b);
        break;
      case TraceRecordType::kWindow:
        std::snprintf(buf, sizeof(buf),
                      "window cycle=%" PRIu64 " instructions=%" PRIu64
                      " detailed=%" PRIu64,
                      r.ts, r.a, r.b);
        break;
      case TraceRecordType::kSummary:
        std::snprintf(buf, sizeof(buf),
                      "summary records=%" PRIu64 " commits=%" PRIu64
                      " last_ts=%" PRIu64,
                      r.a, r.b, r.c);
        break;
      default:
        std::snprintf(buf, sizeof(buf), "unknown type=%u",
                      static_cast<unsigned>(r.type));
        break;
    }
    return buf;
}

namespace {

bool
sameRecord(const TraceRecord &a, const TraceRecord &b)
{
    return a.type == b.type && std::strcmp(a.name, b.name) == 0 &&
           std::strcmp(a.cat, b.cat) == 0 && a.tid == b.tid &&
           a.ts == b.ts && a.a == b.a && a.b == b.b && a.c == b.c;
}

std::string
sideDesc(bool have, const TraceRecord &r, const TraceReader &reader)
{
    if (have)
        return describeRecord(r);
    if (!reader.valid())
        return "<error: " + reader.error() + ">";
    return "<end of stream>";
}

}  // namespace

TraceDiff
diffStreams(const std::string &path_a, const std::string &path_b)
{
    TraceDiff out;
    TraceReader ra(path_a);
    TraceReader rb(path_b);
    TraceRecord a;
    TraceRecord b;
    for (u64 index = 0;; ++index) {
        const bool ha = ra.next(&a);
        const bool hb = rb.next(&b);
        if (!ha && !hb && ra.valid() && rb.valid()) {
            out.identical = true;
            out.index = index;
            return out;
        }
        if (!ha || !hb || !sameRecord(a, b)) {
            out.identical = false;
            out.index = index;
            out.a_desc = sideDesc(ha, a, ra);
            out.b_desc = sideDesc(hb, b, rb);
            return out;
        }
    }
}

}  // namespace flexcore
