/**
 * @file
 * OutputSpec: the flag surface the flexcore tools share. Before this
 * existed, every CLI re-declared (and subtly re-implemented) the same
 * options — --exec-mode, --sample-window/--sample-period,
 * --inject/--fault-plan, --watchdog-commits, --stats-json,
 * --profile-json/--profile-top, --trace-json/--trace-out,
 * --no-fast-forward/--no-histograms, --list-monitors — so help text,
 * validation, and the histograms implication drifted between tools.
 *
 * A tool now declares which groups it exposes (a bitmask), attaches
 * them to its cli::Parser, and after parsing calls apply() to resolve
 * names into a SystemConfig with uniform error reporting. The
 * configureRequest()/writeOutputs() pair transfers the output selection
 * onto a SimRequest and writes the artifacts afterwards, and
 * configureWireRequest() does the same for a request that travels over
 * the wire to flexcore-serve (where the sinks live server-side).
 */

#ifndef FLEXCORE_COMMON_OUTPUTSPEC_H_
#define FLEXCORE_COMMON_OUTPUTSPEC_H_

#include <optional>
#include <string>
#include <vector>

#include "common/trace_stream.h"
#include "sim/sim_request.h"

namespace flexcore::cli {
class Parser;
}

namespace flexcore {

class TraceBuffer;

/** Flag groups a tool opts into (bitwise-or for OutputSpec::attach). */
enum : u32 {
    kSpecExecMode = 1u << 0,      //!< --exec-mode
    kSpecSampling = 1u << 1,      //!< --sample-window / --sample-period
    kSpecFaults = 1u << 2,        //!< --inject / --fault-plan
    kSpecWatchdog = 1u << 3,      //!< --watchdog-commits
    kSpecMaxCycles = 1u << 4,     //!< --max-cycles
    kSpecStatsJson = 1u << 5,     //!< --stats-json FILE
    kSpecProfileFile = 1u << 6,   //!< --profile-json FILE, --profile-top
    kSpecProfileEmbed = 1u << 7,  //!< --profile-json flag, --profile-top
    kSpecTrace = 1u << 8,         //!< --trace-json / --trace-out
    kSpecFastForward = 1u << 9,   //!< --no-fast-forward
    kSpecHistograms = 1u << 10,   //!< --no-histograms
    kSpecListMonitors = 1u << 11, //!< --list-monitors
    kSpecCores = 1u << 12,        //!< --cores / --fabric-sharing
};

class OutputSpec
{
  public:
    /**
     * Declare the selected flag @p groups on @p parser. Call once,
     * before parseOrExit(); defaults may be preset on the public
     * members first (e.g. faultcov's 50 000-commit watchdog).
     */
    void attach(cli::Parser *parser, u32 groups);

    /**
     * Handle --list-monitors: when given, print the registry listing
     * to stdout and return true (the tool should exit 0).
     */
    bool handledListMonitors() const;

    /**
     * Resolve the parsed values into @p config: exec-mode name,
     * sampling parameters, watchdog/cycle limits, fast-forward, the
     * fault plan (file + --inject specs, validated), the
     * --trace-json/--trace-out exclusivity check, and the histograms
     * implication (a stats/trace JSON request on an unsampled interp
     * run turns on histogram sampling unless --no-histograms).
     * Returns false after printing a "tool: why" line to stderr; the
     * caller should exit 2.
     */
    bool apply(SystemConfig *config, const char *tool) const;

    /** Any profile output requested (file path or embed flag)? */
    bool profileRequested() const;

    /** --profile-top with the shared default of 10 applied. */
    u32 effectiveProfileTop() const;

    /** True when a "-" output claims stdout (console must move). */
    bool jsonOnStdout() const;

    /**
     * Transfer the output selection onto a local @p request and attach
     * the caller-owned trace sinks: @p trace_sink backs --trace-json,
     * @p trace_out is emplaced for --trace-out (pass nulls for tools
     * without the trace group).
     */
    void configureRequest(SimRequest *request, TraceBuffer *trace_sink,
                          std::optional<TraceStreamWriter> *trace_out)
        const;

    /**
     * Transfer the output selection onto a request bound for
     * flexcore-serve: statsJson/profileJson become response fields and
     * --trace-out becomes a traceFxtr request (the server renders into
     * memory and ships the bytes back in a second frame).
     */
    void configureWireRequest(SimRequest *request) const;

    /** Write the requested artifacts after the run ("-" = stdout). */
    void writeOutputs(const SimOutcome &outcome,
                      TraceBuffer *trace_sink) const;

    // Raw parsed values; tools read what they need after parseOrExit.
    std::string exec_mode_name;
    u64 sample_window = 0;
    u64 sample_period = 0;
    std::vector<std::string> inject_specs;
    std::string fault_plan_path;
    u64 watchdog_commits = 0;
    u64 max_cycles = 0;   //!< 0 = keep the config default
    std::string stats_json_path;
    std::string profile_json_path;
    bool profile_embed = false;
    u32 profile_top = 0;   //!< 0 = the shared default of 10
    std::string trace_json_path;
    std::string trace_out_path;
    bool no_fast_forward = false;
    bool no_histograms = false;
    bool list_monitors = false;
    u32 cores = 1;                     //!< --cores
    std::string fabric_sharing_name;   //!< --fabric-sharing

  private:
    u32 groups_ = 0;
};

}  // namespace flexcore

#endif  // FLEXCORE_COMMON_OUTPUTSPEC_H_
