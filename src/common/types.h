/**
 * @file
 * Fundamental fixed-width types and small value helpers shared by every
 * FlexCore module.
 */

#ifndef FLEXCORE_COMMON_TYPES_H_
#define FLEXCORE_COMMON_TYPES_H_

#include <cstdint>

namespace flexcore {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

/** Physical/virtual byte address in the simulated machine. */
using Addr = u32;

/** Simulation time, measured in core-clock cycles. */
using Cycle = u64;

/** A value that means "no cycle"/"not scheduled". */
inline constexpr Cycle kCycleNever = ~Cycle{0};

}  // namespace flexcore

#endif  // FLEXCORE_COMMON_TYPES_H_
