#include "common/trace_event.h"

#include <cinttypes>
#include <cstdio>

#include "common/jsonutil.h"
#include "common/log.h"

namespace flexcore {

std::string
TraceBuffer::json() const
{
    std::string out;
    out.reserve(64 + events_.size() * 96);
    out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    char buf[256];
    for (size_t i = 0; i < events_.size(); ++i) {
        const Event &e = events_[i];
        switch (e.kind) {
          case Kind::kCounter:
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\": \"C\", \"name\": \"%s\", \"pid\": 1, "
                          "\"tid\": 0, \"ts\": %" PRIu64
                          ", \"args\": {\"value\": %" PRIu64 "}}",
                          jsonEscape(e.name).c_str(), e.ts, e.aux);
            break;
          case Kind::kComplete:
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\": \"X\", \"name\": \"%s\", \"cat\": "
                          "\"%s\", \"pid\": 1, \"tid\": %u, \"ts\": "
                          "%" PRIu64 ", \"dur\": %" PRIu64 "}",
                          jsonEscape(e.name).c_str(),
                          jsonEscape(e.cat).c_str(), e.tid, e.ts, e.aux);
            break;
          case Kind::kInstant:
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\": \"i\", \"name\": \"%s\", \"cat\": "
                          "\"%s\", \"pid\": 1, \"tid\": %u, \"ts\": "
                          "%" PRIu64 ", \"s\": \"g\"}",
                          jsonEscape(e.name).c_str(),
                          jsonEscape(e.cat).c_str(), e.tid, e.ts);
            break;
        }
        out += "  ";
        out += buf;
        out += (i + 1 < events_.size()) ? ",\n" : "\n";
    }
    out += "]}\n";
    return out;
}

void
TraceBuffer::write(const std::string &path) const
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        FLEX_FATAL("cannot open '", path, "' for writing");
    const std::string text = json();
    if (std::fwrite(text.data(), 1, text.size(), file) != text.size()) {
        std::fclose(file);
        FLEX_FATAL("short write to '", path, "'");
    }
    std::fclose(file);
}

}  // namespace flexcore
