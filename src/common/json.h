/**
 * @file
 * General JSON parsing for wire-schema consumers (the SimRequest /
 * SimResponse API, flexcore-serve, flexcore-loadgen). The emit side of
 * the codebase stays hand-rendered (common/jsonutil.h) so byte layout
 * is under our control; this is the matching *read* side: a strict
 * RFC 8259 recursive-descent parser into a JsonValue tree that
 * preserves object key order and distinguishes unsigned-integral
 * numbers (the common case for counters) from general doubles.
 *
 * Parsing never aborts the process: malformed input returns false with
 * a position-bearing message, which the serve path maps to a typed
 * kBadRequest error response instead of a dropped connection.
 */

#ifndef FLEXCORE_COMMON_JSON_H_
#define FLEXCORE_COMMON_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.h"

namespace flexcore {

class JsonValue
{
  public:
    enum class Type : u8 {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Type type = Type::kNull;
    bool boolean = false;
    /** Numbers keep both renderings: num is always valid; uint is
     * valid (and exact) iff is_uint — negative or fractional values
     * clear it. */
    double num = 0.0;
    u64 uint = 0;
    bool is_uint = false;
    std::string str;
    std::vector<JsonValue> array;
    /** Members in document order (duplicate keys are a parse error). */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::kNull; }
    bool isBool() const { return type == Type::kBool; }
    bool isNumber() const { return type == Type::kNumber; }
    bool isString() const { return type == Type::kString; }
    bool isArray() const { return type == Type::kArray; }
    bool isObject() const { return type == Type::kObject; }

    /** Object member lookup; null when absent or not an object. */
    const JsonValue *find(std::string_view key) const;
};

/**
 * Parse one complete JSON document. Returns false with a
 * human-readable explanation (including the byte offset) in @p error
 * on any syntax violation, trailing garbage, or duplicate object key.
 */
bool parseJson(std::string_view text, JsonValue *out,
               std::string *error);

}  // namespace flexcore

#endif  // FLEXCORE_COMMON_JSON_H_
