#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace flexcore {

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (type != Type::kObject)
        return nullptr;
    for (const auto &[name, value] : object) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

namespace {

class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(JsonValue *out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after the document");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &why)
    {
        if (error_ && error_->empty()) {
            *error_ = "JSON parse error at offset " +
                      std::to_string(pos_) + ": " + why;
        }
        return false;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consumeIf(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    expect(char c)
    {
        if (consumeIf(c))
            return true;
        return fail(std::string("expected '") + c + "'");
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(JsonValue *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        switch (peek()) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"':
            out->type = JsonValue::Type::kString;
            return parseString(&out->str);
          case 't':
            out->type = JsonValue::Type::kBool;
            out->boolean = true;
            return literal("true");
          case 'f':
            out->type = JsonValue::Type::kBool;
            out->boolean = false;
            return literal("false");
          case 'n':
            out->type = JsonValue::Type::kNull;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue *out, int depth)
    {
        out->type = JsonValue::Type::kObject;
        ++pos_;   // '{'
        skipWs();
        if (consumeIf('}'))
            return true;
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(&key))
                return false;
            for (const auto &[name, value] : out->object) {
                (void)value;
                if (name == key)
                    return fail("duplicate key \"" + key + "\"");
            }
            skipWs();
            if (!expect(':'))
                return false;
            JsonValue member;
            if (!parseValue(&member, depth + 1))
                return false;
            out->object.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (consumeIf(','))
                continue;
            return expect('}');
        }
    }

    bool
    parseArray(JsonValue *out, int depth)
    {
        out->type = JsonValue::Type::kArray;
        ++pos_;   // '['
        skipWs();
        if (consumeIf(']'))
            return true;
        while (true) {
            JsonValue element;
            if (!parseValue(&element, depth + 1))
                return false;
            out->array.push_back(std::move(element));
            skipWs();
            if (consumeIf(','))
                continue;
            return expect(']');
        }
    }

    /** Append one Unicode code point as UTF-8. */
    static void
    appendUtf8(std::string *out, u32 cp)
    {
        if (cp < 0x80) {
            *out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            *out += static_cast<char>(0xc0 | (cp >> 6));
            *out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            *out += static_cast<char>(0xe0 | (cp >> 12));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            *out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            *out += static_cast<char>(0xf0 | (cp >> 18));
            *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            *out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    parseHex4(u32 *out)
    {
        u32 value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = peek();
            u32 digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<u32>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<u32>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<u32>(c - 'A' + 10);
            else
                return fail("bad \\u escape");
            value = value << 4 | digit;
            ++pos_;
        }
        *out = value;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (!expect('"'))
            return false;
        out->clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'n': *out += '\n'; break;
              case 'r': *out += '\r'; break;
              case 't': *out += '\t'; break;
              case 'u': {
                u32 cp = 0;
                if (!parseHex4(&cp))
                    return false;
                if (cp >= 0xd800 && cp < 0xdc00) {
                    // Surrogate pair: the low half must follow.
                    if (!consumeIf('\\') || !consumeIf('u'))
                        return fail("unpaired surrogate");
                    u32 lo = 0;
                    if (!parseHex4(&lo))
                        return false;
                    if (lo < 0xdc00 || lo > 0xdfff)
                        return fail("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp < 0xe000) {
                    return fail("unpaired surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool
    parseNumber(JsonValue *out)
    {
        const size_t start = pos_;
        bool negative = false;
        if (consumeIf('-'))
            negative = true;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("expected a value");
        // Leading zero may not be followed by more digits (RFC 8259).
        if (peek() == '0' && pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
            return fail("leading zero in number");
        bool integral = true;
        bool overflow = false;
        u64 magnitude = 0;
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            const u64 digit = static_cast<u64>(peek() - '0');
            if (magnitude > (~u64{0} - digit) / 10)
                overflow = true;
            else
                magnitude = magnitude * 10 + digit;
            ++pos_;
        }
        if (consumeIf('.')) {
            integral = false;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digits must follow the decimal point");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            integral = false;
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digits must follow the exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        out->type = JsonValue::Type::kNumber;
        const std::string copy(text_.substr(start, pos_ - start));
        out->num = std::strtod(copy.c_str(), nullptr);
        out->is_uint = integral && !negative && !overflow;
        out->uint = out->is_uint ? magnitude : 0;
        return true;
    }

    std::string_view text_;
    std::string *error_;
    size_t pos_ = 0;
};

}  // namespace

bool
parseJson(std::string_view text, JsonValue *out, std::string *error)
{
    if (error)
        error->clear();
    *out = JsonValue{};
    return Parser(text, error).parse(out);
}

}  // namespace flexcore
