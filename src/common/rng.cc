#include "common/rng.h"

#include "common/log.h"

namespace flexcore {

Rng::Rng(u64 seed)
    : state_(seed ? seed : 0x9e3779b97f4a7c15ull)
{
}

u64
Rng::next64()
{
    // xorshift64* (Vigna); good quality for simulation inputs and cheap.
    u64 x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
}

u32
Rng::below(u32 bound)
{
    if (bound == 0)
        FLEX_PANIC("Rng::below called with bound 0");
    return static_cast<u32>(next64() % bound);
}

u32
Rng::range(u32 lo, u32 hi)
{
    if (lo > hi)
        FLEX_PANIC("Rng::range with lo > hi");
    return lo + below(hi - lo + 1);
}

double
Rng::real()
{
    return static_cast<double>(next64() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace flexcore
