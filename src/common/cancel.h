/**
 * @file
 * Cooperative cancellation for long-running simulations.
 *
 * A CancelToken is a tiny value the *owner* arms (a sticky flag, an
 * optional wall-clock deadline, an optional parent token) and the
 * *worker* polls at safe boundaries — System::run() checks one every
 * few tens of thousands of simulated cycles, so a cancelled or expired
 * token ends the run with RunResult::Exit::kDeadline within
 * milliseconds of real time while every data structure stays valid.
 * Nothing is ever torn down asynchronously: cancellation is a request,
 * and the simulation acknowledges it at its own (bounded) pace.
 *
 * flexcore-serve chains tokens: every request carries its own token
 * (armed with the server's per-request deadline) whose parent is the
 * server-wide drain token, so one cancel() at drain-timeout reclaims
 * every in-flight simulation at once (docs/serve.md).
 *
 * Thread-safety: cancel() and expired() are safe from any thread at
 * any time. deadline() and the parent link must be set before the
 * token is shared with the worker (they are plain fields, armed once
 * by the owner during setup).
 */

#ifndef FLEXCORE_COMMON_CANCEL_H_
#define FLEXCORE_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>

namespace flexcore {

class CancelToken
{
  public:
    CancelToken() = default;

    /** Chain to @p parent: this token also expires when @p parent
     * does. The parent must outlive this token. */
    explicit CancelToken(const CancelToken *parent) : parent_(parent) {}

    /** Sticky manual cancellation; safe from any thread. */
    void
    cancel()
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    /** Arm a wall-clock deadline (before sharing the token). */
    void
    deadline(std::chrono::steady_clock::time_point when)
    {
        deadline_ = when;
        has_deadline_ = true;
    }

    /** Convenience: deadline @p ms milliseconds from now. */
    void
    deadlineAfterMs(long ms)
    {
        deadline(std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(ms));
    }

    bool hasDeadline() const { return has_deadline_; }

    /**
     * True once the token is cancelled, its deadline has passed, or
     * its parent has expired. The flag check comes first so manual
     * cancellation never pays the clock read.
     */
    bool
    expired() const
    {
        if (cancelled_.load(std::memory_order_relaxed))
            return true;
        if (has_deadline_ &&
            std::chrono::steady_clock::now() >= deadline_)
            return true;
        return parent_ && parent_->expired();
    }

  private:
    std::atomic<bool> cancelled_{false};
    bool has_deadline_ = false;
    std::chrono::steady_clock::time_point deadline_{};
    const CancelToken *parent_ = nullptr;
};

}  // namespace flexcore

#endif  // FLEXCORE_COMMON_CANCEL_H_
