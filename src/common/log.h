/**
 * @file
 * Minimal gem5-style logging: panic() for simulator bugs, fatal() for
 * user errors, warn()/inform() for status messages.
 */

#ifndef FLEXCORE_COMMON_LOG_H_
#define FLEXCORE_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace flexcore {

/** Verbosity levels for status messages. */
enum class LogLevel { kQuiet, kNormal, kVerbose };

/** Set the global verbosity (default kNormal). */
void setLogLevel(LogLevel level);
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Fold a list of streamable values into one string. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

}  // namespace detail

/**
 * panic: a condition that indicates a bug in the simulator itself.
 * Aborts so a debugger/core dump can capture state.
 */
#define FLEX_PANIC(...)                                                 \
    ::flexcore::detail::panicImpl(__FILE__, __LINE__,                   \
                                  ::flexcore::detail::format(__VA_ARGS__))

/**
 * fatal: a condition caused by user input (bad configuration, malformed
 * assembly, ...). Exits with an error code.
 */
#define FLEX_FATAL(...)                                                 \
    ::flexcore::detail::fatalImpl(__FILE__, __LINE__,                   \
                                  ::flexcore::detail::format(__VA_ARGS__))

/** warn: suspicious but recoverable condition. */
#define FLEX_WARN(...)                                                  \
    ::flexcore::detail::warnImpl(::flexcore::detail::format(__VA_ARGS__))

/** inform: normal operating status for the user. */
#define FLEX_INFORM(...)                                                \
    ::flexcore::detail::informImpl(::flexcore::detail::format(__VA_ARGS__))

}  // namespace flexcore

#endif  // FLEXCORE_COMMON_LOG_H_
