/**
 * @file
 * Streaming, bounded-memory binary trace format ("FXTR").
 *
 * The Chrome trace-event buffer (common/trace_event.h) holds every
 * event in memory until the end of the run, which cannot survive long
 * runs and is why PR 2 forbade tracing under threaded dispatch and
 * sampled timing. This module is the streaming alternative: a
 * `TraceStreamWriter` is a `TraceSink` that *encodes each emission as
 * a compact length-prefixed binary record and flushes it through a
 * fixed-size ring to a file*, so memory stays O(1) no matter how long
 * the run is, and richer records (instruction commits, fault-injection
 * marks, sampling-window boundaries) ride along without bloating the
 * Chrome JSON path.
 *
 * ## On-disk layout (all integers little-endian)
 *
 *     +0  magic   4 bytes  'F' 'X' 'T' 'R'
 *     +4  version u32      currently 1
 *     +8  records...
 *
 * Each record is `u16 length` followed by `length` bytes: a `u8 type`
 * and a type-specific payload. Unknown record types can therefore be
 * skipped, making the format forward-extensible. Record types:
 *
 * | type          | id | payload                                       |
 * |---------------|----|-----------------------------------------------|
 * | kString       | 1  | u16 string_id, then the bytes of the name     |
 * | kCounter      | 2  | u16 name_id, u64 ts, u64 value                |
 * | kComplete     | 3  | u16 name_id, u16 cat_id, u8 tid, u64 ts, u64 dur |
 * | kInstant      | 4  | u16 name_id, u16 cat_id, u8 tid, u64 ts       |
 * | kCommit       | 5  | u64 cycle, u32 pc, u32 inst                   |
 * | kFaultMark    | 6  | u64 cycle, u8 kind, u64 target, u8 bit        |
 * | kWindow       | 7  | u64 cycle, u64 instructions, u8 detailed      |
 * | kSummary      | 8  | u64 records, u64 commits, u64 last_ts         |
 *
 * Event/category names are interned: the first use of a name emits a
 * kString record assigning it the next id, and every later reference
 * is two bytes. A kSummary record is appended by finish() as an
 * integrity footer (`records` counts every record before it, kString
 * records included).
 *
 * `TraceReader` decodes a stream record by record; `renderChromeJson`
 * replays the counter/complete/instant records through a TraceBuffer,
 * so on runs whose event sequence matches a buffered run the exported
 * JSON is byte-identical to `--trace-json` (cmp-gated in CI);
 * `diffStreams` reports the first record where two streams diverge.
 */

#ifndef FLEXCORE_COMMON_TRACE_STREAM_H_
#define FLEXCORE_COMMON_TRACE_STREAM_H_

#include <cstdio>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/trace_event.h"
#include "common/types.h"

namespace flexcore {

/** Binary record types (the on-disk `u8 type` values). */
enum class TraceRecordType : u8 {
    kString = 1,
    kCounter = 2,
    kComplete = 3,
    kInstant = 4,
    kCommit = 5,
    kFaultMark = 6,
    kWindow = 7,
    kSummary = 8,
};

inline constexpr char kTraceMagic[4] = {'F', 'X', 'T', 'R'};
inline constexpr u32 kTraceVersion = 1;

/**
 * TraceSink that encodes every emission into the FXTR byte stream.
 * Writes go through a fixed-capacity buffer flushed to the file
 * whenever it fills, so memory use is constant for arbitrarily long
 * runs. finish() appends the kSummary footer and closes the file; the
 * destructor calls it if the caller did not. I/O errors are fatal
 * (FLEX_FATAL), matching TraceBuffer::write().
 */
class TraceStreamWriter final : public TraceSink
{
  public:
    /** Opens @p path ("-" = stdout, switched to binary) for writing and
     * emits the header. */
    explicit TraceStreamWriter(const std::string &path);
    /**
     * Memory-sink mode: append the encoded stream to @p sink instead of
     * a file — how flexcore-serve ships a requested trace back over the
     * socket without touching the filesystem. @p sink must outlive the
     * writer; its final contents (after finish()) are byte-identical to
     * a file written from the same run.
     */
    explicit TraceStreamWriter(std::string *sink);
    ~TraceStreamWriter() override;

    TraceStreamWriter(const TraceStreamWriter &) = delete;
    TraceStreamWriter &operator=(const TraceStreamWriter &) = delete;

    void counter(const char *name, Cycle ts, u64 value) override;
    void complete(const char *name, const char *cat, u32 tid,
                  Cycle start, Cycle end) override;
    void instant(const char *name, const char *cat, u32 tid,
                 Cycle ts) override;
    void commit(Cycle now, Addr pc, u32 inst) override;
    void faultMark(Cycle now, u8 kind, u64 target, u8 bit) override;
    void window(Cycle now, u64 instructions, bool detailed) override;

    /** Append the kSummary footer, flush, and close. Idempotent. */
    void finish();

    u64 recordCount() const { return records_; }

  private:
    u16 intern(const char *name);
    void beginRecord(TraceRecordType type);
    void endRecord();
    void flushBuffer();
    void put8(u8 v) { scratch_.push_back(v); }
    void put16(u16 v);
    void put32(u32 v);
    void put64(u64 v);

    void writeHeader();

    std::string path_;
    std::FILE *file_ = nullptr;
    bool close_file_ = false;     //!< false for stdout / memory sinks
    std::string *sink_ = nullptr; //!< memory-sink mode when non-null
    std::vector<u8> buffer_;    //!< pending bytes, flushed at capacity
    std::vector<u8> scratch_;   //!< the record being encoded
    u64 records_ = 0;
    u64 commits_ = 0;
    u64 last_ts_ = 0;
    bool finished_ = false;

    /**
     * Name interning. Names are string literals addressed by pointer
     * at the call sites, but the same literal can have distinct
     * addresses across translation units, so a pointer-keyed fast path
     * backs onto a content-keyed map that owns the canonical ids.
     */
    std::unordered_map<const void *, u16> by_pointer_;
    std::map<std::string, u16> by_content_;
};

/** One decoded record. String fields point into the reader's intern
 * table and stay valid for the reader's lifetime. */
struct TraceRecord
{
    TraceRecordType type = TraceRecordType::kSummary;
    const char *name = "";   //!< kCounter/kComplete/kInstant/kString
    const char *cat = "";    //!< kComplete/kInstant
    u32 tid = 0;
    u64 ts = 0;       //!< event timestamp / cycle of the record
    u64 a = 0;        //!< counter value | dur | pc | target | instructions | records
    u64 b = 0;        //!< inst | bit | detailed flag | commits
    u64 c = 0;        //!< fault kind | summary last_ts
};

/** Sequential decoder for a FXTR stream. */
class TraceReader
{
  public:
    /** Open @p path ("-" = stdin, switched to binary); on failure
     * returns with valid() == false and an explanation in error(). */
    explicit TraceReader(const std::string &path);
    /** Decode an in-memory stream (the bytes a memory-sink writer or a
     * serve response produced). @p data must outlive the reader. */
    TraceReader(const void *data, size_t size);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool valid() const { return error_.empty(); }
    const std::string &error() const { return error_; }

    /**
     * Decode the next record into @p out. Returns false at a clean end
     * of stream *or* on a malformed record — check valid() to tell the
     * two apart. kString records are consumed internally (they update
     * the intern table) and never surfaced.
     */
    bool next(TraceRecord *out);

    u64 recordsRead() const { return records_read_; }

  private:
    const char *internedName(u16 id);
    bool fail(const std::string &why);
    /** Read up to @p n bytes from the file or the memory buffer. */
    size_t readBytes(void *out, size_t n);
    bool atEnd() const;
    void readHeader();

    std::FILE *file_ = nullptr;
    bool close_file_ = false;       //!< false for stdin / memory input
    const u8 *mem_ = nullptr;       //!< memory-input mode when non-null
    size_t mem_size_ = 0;
    size_t mem_pos_ = 0;
    std::string error_;
    u64 records_read_ = 0;
    /** id -> name; deque keeps addresses stable as it grows. */
    std::deque<std::string> names_;
};

/**
 * Replay the Chrome-phase records (kCounter/kComplete/kInstant) of the
 * stream at @p path through a TraceBuffer and return its JSON — the
 * `flexcore-trace export --chrome` engine. Returns false and sets
 * @p error on a malformed stream.
 */
bool renderChromeJson(const std::string &path, std::string *json,
                      std::string *error);

/** Result of comparing two streams record by record. */
struct TraceDiff
{
    bool identical = false;
    u64 index = 0;            //!< first diverging record (0-based)
    std::string a_desc;       //!< human-readable decoded record, or
    std::string b_desc;       //!< "<end of stream>" / "<error: ...>"
};

/** Compare two streams; fills @p out with the first divergence. */
TraceDiff diffStreams(const std::string &path_a,
                      const std::string &path_b);

/** One line of human-readable decode, for diff output and tests. */
std::string describeRecord(const TraceRecord &r);

}  // namespace flexcore

#endif  // FLEXCORE_COMMON_TRACE_STREAM_H_
