/**
 * @file
 * Deterministic pseudo-random number generator (xorshift64*) used by
 * workload input generation and fault injection. Deterministic across
 * platforms so experiments and tests are reproducible.
 */

#ifndef FLEXCORE_COMMON_RNG_H_
#define FLEXCORE_COMMON_RNG_H_

#include "common/types.h"

namespace flexcore {

class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    u64 next64();

    /** Next 32-bit value. */
    u32 next32() { return static_cast<u32>(next64() >> 32); }

    /** Uniform in [0, bound). @p bound must be > 0. */
    u32 below(u32 bound);

    /** Uniform in [lo, hi] inclusive. */
    u32 range(u32 lo, u32 hi);

    /** Uniform real in [0, 1). */
    double real();

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return real() < p; }

  private:
    u64 state_;
};

}  // namespace flexcore

#endif  // FLEXCORE_COMMON_RNG_H_
