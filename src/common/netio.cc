#include "common/netio.h"

#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace flexcore::netio {

namespace {

bool
fail(std::string *error, std::string why)
{
    if (error && error->empty())
        *error = std::move(why);
    return false;
}

std::string
errnoText()
{
    return std::strerror(errno);
}

/** send() with MSG_NOSIGNAL so a hung-up peer yields EPIPE, not a
 * process-killing SIGPIPE. */
bool
sendAll(int fd, const void *data, size_t size)
{
    const char *p = static_cast<const char *>(data);
    while (size > 0) {
        const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        size -= static_cast<size_t>(n);
    }
    return true;
}

/** Read exactly @p size bytes; returns bytes read (short = EOF/error). */
size_t
recvAll(int fd, void *data, size_t size)
{
    char *p = static_cast<char *>(data);
    size_t got = 0;
    while (got < size) {
        const ssize_t n = ::recv(fd, p + got, size - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break;
        got += static_cast<size_t>(n);
    }
    return got;
}

bool
fillUnixAddr(const std::string &path, sockaddr_un *addr,
             std::string *error)
{
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr->sun_path)) {
        return fail(error, "unix socket path too long: " + path);
    }
    std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
    return true;
}

/** Resolve a tcp endpoint; returns a connected or bound fd, or -1. */
int
tcpSocket(const Endpoint &endpoint, bool listen_side,
          std::string *error)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    if (listen_side)
        hints.ai_flags = AI_PASSIVE;
    const std::string port = std::to_string(endpoint.port);
    addrinfo *list = nullptr;
    const int rc = ::getaddrinfo(
        endpoint.host.empty() ? nullptr : endpoint.host.c_str(),
        port.c_str(), &hints, &list);
    if (rc != 0) {
        fail(error, std::string("cannot resolve ") +
                        endpointString(endpoint) + ": " +
                        ::gai_strerror(rc));
        return -1;
    }
    int fd = -1;
    for (addrinfo *ai = list; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (listen_side) {
            const int one = 1;
            ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one));
            if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0)
                break;
        } else {
            if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
                break;
        }
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(list);
    if (fd < 0) {
        fail(error, (listen_side ? "cannot bind " : "cannot connect to ") +
                        endpointString(endpoint) + ": " + errnoText());
    }
    return fd;
}

}  // namespace

bool
parseEndpoint(std::string_view text, Endpoint *out, std::string *error)
{
    if (text.rfind("unix:", 0) == 0) {
        out->is_unix = true;
        out->path = std::string(text.substr(5));
        if (out->path.empty())
            return fail(error, "unix endpoint needs a path");
        return true;
    }
    if (text.rfind("tcp:", 0) == 0) {
        const std::string_view rest = text.substr(4);
        const size_t colon = rest.rfind(':');
        if (colon == std::string_view::npos || colon + 1 >= rest.size()) {
            return fail(error,
                        "tcp endpoint must be tcp:HOST:PORT, got \"" +
                            std::string(text) + "\"");
        }
        out->is_unix = false;
        out->host = std::string(rest.substr(0, colon));
        const std::string port_text(rest.substr(colon + 1));
        char *end = nullptr;
        const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
        if (*end != '\0' || port == 0 || port > 0xffff) {
            return fail(error,
                        "bad tcp port \"" + port_text + "\"");
        }
        out->port = static_cast<u16>(port);
        return true;
    }
    return fail(error,
                "endpoint must start with unix: or tcp:, got \"" +
                    std::string(text) + "\"");
}

std::string
endpointString(const Endpoint &endpoint)
{
    if (endpoint.is_unix)
        return "unix:" + endpoint.path;
    return "tcp:" + endpoint.host + ":" + std::to_string(endpoint.port);
}

int
listenOn(const Endpoint &endpoint, std::string *error)
{
    int fd = -1;
    if (endpoint.is_unix) {
        sockaddr_un addr;
        if (!fillUnixAddr(endpoint.path, &addr, error))
            return -1;
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            fail(error, "cannot create socket: " + errnoText());
            return -1;
        }
        // The server owns its path: a stale file from a previous run
        // (crash, kill -9) must not block startup.
        ::unlink(endpoint.path.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            fail(error, "cannot bind " + endpointString(endpoint) +
                            ": " + errnoText());
            ::close(fd);
            return -1;
        }
    } else {
        fd = tcpSocket(endpoint, /*listen_side=*/true, error);
        if (fd < 0)
            return -1;
    }
    if (::listen(fd, 64) != 0) {
        fail(error, "cannot listen on " + endpointString(endpoint) +
                        ": " + errnoText());
        ::close(fd);
        return -1;
    }
    return fd;
}

int
acceptClient(int listen_fd)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        return -1;
    }
}

int
connectTo(const Endpoint &endpoint, std::string *error)
{
    if (!endpoint.is_unix)
        return tcpSocket(endpoint, /*listen_side=*/false, error);
    sockaddr_un addr;
    if (!fillUnixAddr(endpoint.path, &addr, error))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        fail(error, "cannot create socket: " + errnoText());
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        fail(error, "cannot connect to " + endpointString(endpoint) +
                        ": " + errnoText());
        ::close(fd);
        return -1;
    }
    return fd;
}

u32
backoffDelayMs(u32 base_ms, u32 max_ms, u32 attempt, Rng *rng)
{
    if (base_ms == 0)
        base_ms = 1;
    // Shift saturates well before attempt 32 would overflow: 16 doubles
    // of any base >= 1 ms already exceeds every sane max_ms cap.
    const u32 shift = attempt < 16 ? attempt : 16;
    u64 cap = u64{base_ms} << shift;
    if (cap > max_ms)
        cap = max_ms;
    if (cap < base_ms)
        cap = base_ms;
    // Jitter into [cap/2, cap]: enough spread to decorrelate clients
    // that started in lockstep, never less than half the ramp.
    const u32 half = static_cast<u32>(cap / 2);
    return half + static_cast<u32>(rng->below(cap - half + 1));
}

int
connectWithBackoff(const Endpoint &endpoint, int attempts, u32 base_ms,
                   u32 max_ms, u64 jitter_seed, u32 *retries_out,
                   std::string *error)
{
    Rng rng(jitter_seed);
    if (retries_out)
        *retries_out = 0;
    for (int i = 0; i < attempts; ++i) {
        std::string attempt_error;
        const int fd = connectTo(endpoint, &attempt_error);
        if (fd >= 0)
            return fd;
        if (retries_out)
            *retries_out = static_cast<u32>(i + 1);
        if (i + 1 == attempts)
            return fail(error, attempt_error), -1;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            backoffDelayMs(base_ms, max_ms, static_cast<u32>(i),
                           &rng)));
    }
    return fail(error, "no connect attempts made"), -1;
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool
waitReadable(int fd, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc > 0)
            return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
        if (rc == 0)
            return false;
        if (errno != EINTR)
            return false;
    }
}

bool
sendFrame(int fd, std::string_view payload)
{
    const u32 size = static_cast<u32>(payload.size());
    if (payload.size() > kMaxFrameBytes)
        return false;
    u8 prefix[4] = {
        static_cast<u8>(size),
        static_cast<u8>(size >> 8),
        static_cast<u8>(size >> 16),
        static_cast<u8>(size >> 24),
    };
    return sendAll(fd, prefix, sizeof(prefix)) &&
           sendAll(fd, payload.data(), payload.size());
}

bool
recvFrame(int fd, std::string *payload, std::string *error)
{
    if (error)
        error->clear();
    u8 prefix[4];
    const size_t got = recvAll(fd, prefix, sizeof(prefix));
    if (got == 0)
        return false;   // clean EOF between frames
    if (got != sizeof(prefix))
        return fail(error, "truncated frame length prefix");
    const u32 size = u32{prefix[0]} | (u32{prefix[1]} << 8) |
                     (u32{prefix[2]} << 16) | (u32{prefix[3]} << 24);
    if (size > kMaxFrameBytes) {
        return fail(error, "frame of " + std::to_string(size) +
                               " bytes exceeds the " +
                               std::to_string(kMaxFrameBytes) +
                               "-byte limit");
    }
    payload->resize(size);
    if (size > 0 && recvAll(fd, payload->data(), size) != size)
        return fail(error, "truncated frame payload");
    return true;
}

bool
sendFrameLimited(int fd, std::string_view payload, int timeout_ms)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    using clock = std::chrono::steady_clock;
    const clock::time_point deadline =
        clock::now() + std::chrono::milliseconds(
                           timeout_ms < 0 ? 0 : timeout_ms);
    const auto remainingMs = [&]() -> int {
        if (timeout_ms < 0)
            return -1;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - clock::now())
                .count();
        return left > 0 ? static_cast<int>(left) : 0;
    };
    const auto sendTimed = [&](const void *data, size_t size) -> bool {
        const char *p = static_cast<const char *>(data);
        while (size > 0) {
            const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
            if (n >= 0) {
                p += n;
                size -= static_cast<size_t>(n);
                continue;
            }
            if (errno == EINTR)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK)
                return false;
            // Peer's receive window is full; wait for POLLOUT within
            // the remaining budget. A peer that never drains (slow
            // loris on the response path) burns at most timeout_ms.
            const int wait_ms = remainingMs();
            if (wait_ms == 0)
                return false;
            pollfd pfd{};
            pfd.fd = fd;
            pfd.events = POLLOUT;
            const int rc = ::poll(&pfd, 1, wait_ms);
            if (rc == 0)
                return false;
            if (rc < 0 && errno != EINTR)
                return false;
        }
        return true;
    };
    const u32 size = static_cast<u32>(payload.size());
    const u8 prefix[4] = {
        static_cast<u8>(size),
        static_cast<u8>(size >> 8),
        static_cast<u8>(size >> 16),
        static_cast<u8>(size >> 24),
    };
    return sendTimed(prefix, sizeof(prefix)) &&
           sendTimed(payload.data(), payload.size());
}

RecvStatus
recvFrameLimited(int fd, std::string *payload, u32 max_bytes,
                 int idle_timeout_ms, int frame_timeout_ms,
                 std::string *error)
{
    if (error)
        error->clear();
    using clock = std::chrono::steady_clock;
    clock::time_point frame_deadline{};
    bool started = false;

    const auto remainingMs = [&]() -> int {
        if (!started)
            return idle_timeout_ms;
        if (frame_timeout_ms < 0)
            return -1;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                frame_deadline - clock::now())
                .count();
        return left > 0 ? static_cast<int>(left) : 0;
    };

    // Read exactly @p size bytes, poll-gated: the idle budget governs
    // the wait for the very first byte, the frame budget everything
    // after it. Distinguishes clean EOF (before any byte) from a
    // truncated frame (after some).
    const auto recvTimed = [&](void *data, size_t size) -> RecvStatus {
        char *p = static_cast<char *>(data);
        size_t got = 0;
        while (got < size) {
            const int wait_ms = remainingMs();
            if (started && wait_ms == 0)
                return RecvStatus::kFrameTimeout;
            if (!waitReadable(fd, wait_ms))
                return started ? RecvStatus::kFrameTimeout
                               : RecvStatus::kIdleTimeout;
            const ssize_t n = ::recv(fd, p + got, size - got, 0);
            if (n < 0) {
                if (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK)
                    continue;
                fail(error, "recv: " + errnoText());
                return RecvStatus::kError;
            }
            if (n == 0) {
                if (!started)
                    return RecvStatus::kEof;
                fail(error, "peer hung up mid-frame");
                return RecvStatus::kError;
            }
            got += static_cast<size_t>(n);
            if (!started) {
                started = true;
                if (frame_timeout_ms >= 0)
                    frame_deadline =
                        clock::now() +
                        std::chrono::milliseconds(frame_timeout_ms);
            }
        }
        return RecvStatus::kFrame;
    };

    u8 prefix[4];
    const RecvStatus prefix_status = recvTimed(prefix, sizeof(prefix));
    if (prefix_status != RecvStatus::kFrame)
        return prefix_status;
    const u32 size = u32{prefix[0]} | (u32{prefix[1]} << 8) |
                     (u32{prefix[2]} << 16) | (u32{prefix[3]} << 24);
    if (size > max_bytes) {
        // Deliberately do NOT resize the payload buffer: a hostile
        // 4-byte prefix must never turn into a real allocation.
        fail(error, "frame of " + std::to_string(size) +
                        " bytes exceeds the " +
                        std::to_string(max_bytes) + "-byte limit");
        return RecvStatus::kTooLarge;
    }
    payload->resize(size);
    if (size > 0) {
        const RecvStatus body_status =
            recvTimed(payload->data(), size);
        if (body_status == RecvStatus::kEof) {
            // Unreachable in practice (started is already true), but
            // a mid-frame EOF must never masquerade as a clean one.
            fail(error, "peer hung up mid-frame");
            return RecvStatus::kError;
        }
        if (body_status != RecvStatus::kFrame)
            return body_status;
    }
    return RecvStatus::kFrame;
}

void
shutdownSocket(int fd)
{
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR);
}

void
shutdownSocketRead(int fd)
{
    if (fd >= 0)
        ::shutdown(fd, SHUT_RD);
}

void
closeSocket(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

}  // namespace flexcore::netio
