#include "common/threadpool.h"

namespace flexcore {

unsigned
ThreadPool::defaultThreadCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    queues_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(cv_mutex_);
        stop_.store(true, std::memory_order_relaxed);
    }
    work_cv_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
ThreadPool::submit(Task task)
{
    const unsigned target = static_cast<unsigned>(
        next_queue_.fetch_add(1, std::memory_order_relaxed) %
        queues_.size());
    {
        std::lock_guard<std::mutex> queue_lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(task));
    }
    unfinished_.fetch_add(1, std::memory_order_relaxed);
    {
        // Publish under cv_mutex_ so a worker checking the predicate
        // cannot miss the wakeup.
        std::lock_guard<std::mutex> lock(cv_mutex_);
        queued_.fetch_add(1, std::memory_order_relaxed);
    }
    work_cv_.notify_one();
}

bool
ThreadPool::popLocal(unsigned self, Task *task)
{
    WorkerQueue &queue = *queues_[self];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.tasks.empty())
        return false;
    *task = std::move(queue.tasks.front());
    queue.tasks.pop_front();
    return true;
}

bool
ThreadPool::steal(unsigned self, Task *task)
{
    const unsigned n = static_cast<unsigned>(queues_.size());
    for (unsigned d = 1; d < n; ++d) {
        WorkerQueue &victim = *queues_[(self + d) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.tasks.empty())
            continue;
        *task = std::move(victim.tasks.back());
        victim.tasks.pop_back();
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        Task task;
        if (popLocal(self, &task) || steal(self, &task)) {
            queued_.fetch_sub(1, std::memory_order_relaxed);
            task();
            if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) ==
                1) {
                std::lock_guard<std::mutex> lock(cv_mutex_);
                done_cv_.notify_all();
            }
            continue;
        }
        std::unique_lock<std::mutex> lock(cv_mutex_);
        work_cv_.wait(lock, [this] {
            return stop_.load(std::memory_order_relaxed) ||
                   queued_.load(std::memory_order_relaxed) > 0;
        });
        if (stop_.load(std::memory_order_relaxed) &&
            queued_.load(std::memory_order_relaxed) == 0) {
            return;
        }
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(cv_mutex_);
    done_cv_.wait(lock, [this] {
        return unfinished_.load(std::memory_order_acquire) == 0;
    });
}

}  // namespace flexcore
