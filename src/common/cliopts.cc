#include "common/cliopts.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/log.h"

namespace flexcore::cli {

namespace {

/** Levenshtein distance, for unknown-flag suggestions. */
size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<size_t> row(b.size() + 1);
    for (size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
        size_t diag = row[0];
        row[0] = i;
        for (size_t j = 1; j <= b.size(); ++j) {
            const size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
            const size_t next =
                std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
            diag = row[j];
            row[j] = next;
        }
    }
    return row[b.size()];
}

bool
parseU64(const std::string &text, u64 *out, std::string *error)
{
    if (text.empty()) {
        *error = "empty number";
        return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 0);
    if (errno == ERANGE || end == text.c_str() || *end != '\0' ||
        text[0] == '-') {
        *error = "'" + text + "' is not a valid unsigned integer";
        return false;
    }
    *out = value;
    return true;
}

}  // namespace

Parser::Parser(std::string prog, std::string summary)
    : prog_(std::move(prog)), summary_(std::move(summary))
{
}

void
Parser::addOpt(Opt opt)
{
    if (find(opt.name))
        FLEX_PANIC("duplicate option declaration ", opt.name);
    opts_.push_back(std::move(opt));
}

void
Parser::flag(const std::string &name, bool *out,
             const std::string &help)
{
    Opt opt;
    opt.name = name;
    opt.help = help;
    opt.takes_value = false;
    opt.apply = [out](const std::string &, std::string *) {
        *out = true;
        return true;
    };
    addOpt(std::move(opt));
}

void
Parser::option(const std::string &name, std::string *out,
               const std::string &metavar, const std::string &help)
{
    Opt opt;
    opt.name = name;
    opt.metavar = metavar;
    opt.help = help;
    opt.takes_value = true;
    opt.apply = [out](const std::string &value, std::string *) {
        *out = value;
        return true;
    };
    addOpt(std::move(opt));
}

void
Parser::option(const std::string &name, u32 *out,
               const std::string &metavar, const std::string &help)
{
    Opt opt;
    opt.name = name;
    opt.metavar = metavar;
    opt.help = help;
    opt.takes_value = true;
    opt.apply = [out](const std::string &value, std::string *error) {
        u64 wide = 0;
        if (!parseU64(value, &wide, error))
            return false;
        if (wide > std::numeric_limits<u32>::max()) {
            *error = "'" + value + "' exceeds 32 bits";
            return false;
        }
        *out = static_cast<u32>(wide);
        return true;
    };
    addOpt(std::move(opt));
}

void
Parser::option(const std::string &name, u64 *out,
               const std::string &metavar, const std::string &help)
{
    Opt opt;
    opt.name = name;
    opt.metavar = metavar;
    opt.help = help;
    opt.takes_value = true;
    opt.apply = [out](const std::string &value, std::string *error) {
        return parseU64(value, out, error);
    };
    addOpt(std::move(opt));
}

void
Parser::option(const std::string &name, double *out,
               const std::string &metavar, const std::string &help)
{
    Opt opt;
    opt.name = name;
    opt.metavar = metavar;
    opt.help = help;
    opt.takes_value = true;
    opt.apply = [out](const std::string &value, std::string *error) {
        errno = 0;
        char *end = nullptr;
        const double parsed = std::strtod(value.c_str(), &end);
        if (errno == ERANGE || end == value.c_str() || *end != '\0') {
            *error = "'" + value + "' is not a valid number";
            return false;
        }
        *out = parsed;
        return true;
    };
    addOpt(std::move(opt));
}

void
Parser::list(const std::string &name, std::vector<std::string> *out,
             const std::string &metavar, const std::string &help)
{
    Opt opt;
    opt.name = name;
    opt.metavar = metavar;
    opt.help = help + " (repeatable)";
    opt.takes_value = true;
    opt.apply = [out](const std::string &value, std::string *) {
        out->push_back(value);
        return true;
    };
    addOpt(std::move(opt));
}

void
Parser::choice(const std::string &name,
               std::vector<std::string> choices,
               std::function<void(size_t)> apply,
               const std::string &help)
{
    std::string metavar;
    for (const std::string &c : choices) {
        if (!metavar.empty())
            metavar += '|';
        metavar += c;
    }
    Opt opt;
    opt.name = name;
    opt.metavar = metavar;
    opt.help = help;
    opt.takes_value = true;
    opt.apply = [choices = std::move(choices), apply = std::move(apply),
                 name](const std::string &value, std::string *error) {
        const auto it =
            std::find(choices.begin(), choices.end(), value);
        if (it == choices.end()) {
            *error = "invalid value '" + value + "' for " + name +
                     " (expected ";
            for (size_t c = 0; c < choices.size(); ++c) {
                if (c > 0)
                    *error += c + 1 < choices.size() ? ", " : " or ";
                *error += choices[c];
            }
            *error += ")";
            return false;
        }
        apply(static_cast<size_t>(it - choices.begin()));
        return true;
    };
    addOpt(std::move(opt));
}

void
Parser::positional(const std::string &metavar, std::string *out,
                   bool required)
{
    pos_metavar_ = metavar;
    pos_out_ = out;
    pos_required_ = required;
}

void
Parser::footer(std::string text)
{
    footer_ = std::move(text);
}

const Parser::Opt *
Parser::find(const std::string &name) const
{
    for (const Opt &opt : opts_) {
        if (opt.name == name)
            return &opt;
    }
    return nullptr;
}

std::string
Parser::suggest(const std::string &name) const
{
    size_t best = std::numeric_limits<size_t>::max();
    const Opt *winner = nullptr;
    for (const Opt &opt : opts_) {
        const size_t d = editDistance(name, opt.name);
        if (d < best) {
            best = d;
            winner = &opt;
        }
    }
    // Only suggest near-misses; "--z" should not suggest "--monitor".
    if (winner && best <= std::max<size_t>(2, name.size() / 3))
        return winner->name;
    return {};
}

bool
Parser::tryParse(int argc, char **argv, std::string *error)
{
    bool saw_positional = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            help_requested_ = true;
            return true;
        }
        if (arg.size() > 1 && arg[0] == '-' && arg != "-") {
            const Opt *opt = find(arg);
            if (!opt) {
                *error = "unknown option " + arg;
                const std::string hint = suggest(arg);
                if (!hint.empty())
                    *error += " (did you mean " + hint + "?)";
                return false;
            }
            std::string value;
            if (opt->takes_value) {
                if (i + 1 >= argc) {
                    *error = "option " + arg + " requires a value (" +
                             opt->metavar + ")";
                    return false;
                }
                value = argv[++i];
            }
            std::string detail;
            if (!opt->apply(value, &detail)) {
                *error = "option " + arg + ": " + detail;
                return false;
            }
            continue;
        }
        if (!pos_out_ || saw_positional) {
            *error = "unexpected argument '" + arg + "'";
            return false;
        }
        *pos_out_ = arg;
        saw_positional = true;
    }
    if (pos_out_ && pos_required_ && !saw_positional) {
        *error = "missing required argument " + pos_metavar_;
        return false;
    }
    return true;
}

void
Parser::parseOrExit(int argc, char **argv)
{
    std::string error;
    if (!tryParse(argc, argv, &error)) {
        std::fprintf(stderr, "%s: %s\n%s", prog_.c_str(),
                     error.c_str(), usageLine().c_str());
        std::exit(2);
    }
    if (help_requested_) {
        std::fputs(helpText().c_str(), stdout);
        std::exit(0);
    }
}

std::string
Parser::usageLine() const
{
    std::string line = "usage: " + prog_ + " [options]";
    if (pos_out_) {
        line += ' ';
        if (!pos_required_)
            line += '[';
        line += pos_metavar_;
        if (!pos_required_)
            line += ']';
    }
    line += "\n";
    return line;
}

std::string
Parser::helpText() const
{
    std::string text = usageLine();
    if (!summary_.empty())
        text += summary_ + "\n";
    text += "\noptions:\n";
    size_t width = 0;
    const auto lhs = [](const Opt &opt) {
        std::string s = opt.name;
        if (opt.takes_value) {
            s += ' ';
            s += opt.metavar;
        }
        return s;
    };
    for (const Opt &opt : opts_)
        width = std::max(width, lhs(opt).size());
    for (const Opt &opt : opts_) {
        std::string left = lhs(opt);
        left.resize(width, ' ');
        text += "  " + left + "  " + opt.help + "\n";
    }
    text += "  --help";
    text.resize(text.size() + width - 4, ' ');
    text += "  show this help\n";
    if (!footer_.empty()) {
        text += "\n";
        text += footer_;
        if (footer_.back() != '\n')
            text += '\n';
    }
    return text;
}

}  // namespace flexcore::cli
