/**
 * @file
 * Trace-sink interface plus the buffered Chrome trace-event emitter
 * (loadable in Perfetto and chrome://tracing). Components hold a
 * `TraceSink *` that is null when tracing is off, so the hot path pays
 * exactly one predictable branch and no virtual dispatch; only with a
 * sink attached do emissions go through the interface, to either:
 *
 *  - `TraceBuffer` — buffers POD events in memory and renders the
 *    Chrome trace-event JSON once at the end of the run; or
 *  - `TraceStreamWriter` (common/trace_stream.h) — encodes each event
 *    into the bounded-memory binary record stream as it happens.
 *
 * Timestamps are simulated core-clock cycles reported in the trace's
 * microsecond field (1 cycle == 1 us), which keeps the viewer's zoom
 * and duration arithmetic exact.
 */

#ifndef FLEXCORE_COMMON_TRACE_EVENT_H_
#define FLEXCORE_COMMON_TRACE_EVENT_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace flexcore {

/**
 * Receiver of simulation trace emissions. Names and categories must be
 * string *literals* (or otherwise outlive the sink): implementations
 * may store them by pointer.
 *
 * The first three events map one-to-one onto Chrome trace-event
 * phases; the last three are richer records that only the binary
 * stream persists (`TraceBuffer` ignores them so its Chrome JSON stays
 * byte-identical to what it produced before they existed).
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /**
     * Counter track sample ("ph":"C"). Call on value *changes* only —
     * Chrome draws steps between samples, so per-cycle emission would
     * bloat the file without adding information.
     */
    virtual void counter(const char *name, Cycle ts, u64 value) = 0;

    /** Complete duration event ("ph":"X") covering [start, end). */
    virtual void complete(const char *name, const char *cat, u32 tid,
                          Cycle start, Cycle end) = 0;

    /** Instant event ("ph":"i", global scope). */
    virtual void instant(const char *name, const char *cat, u32 tid,
                         Cycle ts) = 0;

    /** One committed instruction (stream-only record). */
    virtual void commit(Cycle now, Addr pc, u32 inst)
    {
        (void)now; (void)pc; (void)inst;
    }

    /** An applied fault injection (stream-only record). */
    virtual void faultMark(Cycle now, u8 kind, u64 target, u8 bit)
    {
        (void)now; (void)kind; (void)target; (void)bit;
    }

    /**
     * A sampled-timing window boundary (stream-only record):
     * @p detailed is true entering a detailed window, false entering
     * functional warming. @p instructions is the commit count so far.
     */
    virtual void window(Cycle now, u64 instructions, bool detailed)
    {
        (void)now; (void)instructions; (void)detailed;
    }
};

/** Buffers events in memory; renders Chrome trace-event JSON once. */
class TraceBuffer final : public TraceSink
{
  public:
    void
    counter(const char *name, Cycle ts, u64 value) override
    {
        events_.push_back({Kind::kCounter, name, nullptr, 0, ts, value});
    }

    void
    complete(const char *name, const char *cat, u32 tid, Cycle start,
             Cycle end) override
    {
        events_.push_back(
            {Kind::kComplete, name, cat, tid, start,
             end > start ? end - start : 0});
    }

    void
    instant(const char *name, const char *cat, u32 tid, Cycle ts) override
    {
        events_.push_back({Kind::kInstant, name, cat, tid, ts, 0});
    }

    bool empty() const { return events_.empty(); }
    size_t size() const { return events_.size(); }
    void clear() { events_.clear(); }

    /** Render the Chrome trace-event JSON document. */
    std::string json() const;

    /** Write json() to @p path (FLEX_FATAL on I/O failure). */
    void write(const std::string &path) const;

  private:
    enum class Kind : u8 { kCounter, kComplete, kInstant };

    /**
     * One buffered event. Names and categories are stored by pointer
     * so the per-event cost is a 40-byte append, cheap enough to leave
     * call sites unguarded beyond the null-sink check.
     */
    struct Event
    {
        Kind kind;
        const char *name;
        const char *cat;
        u32 tid;
        Cycle ts;
        u64 aux;   //!< counter value or duration
    };

    std::vector<Event> events_;
};

}  // namespace flexcore

#endif  // FLEXCORE_COMMON_TRACE_EVENT_H_
