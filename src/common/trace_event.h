/**
 * @file
 * Chrome trace-event JSON emitter (loadable in Perfetto and
 * chrome://tracing). Components hold a `TraceSink *` that is null when
 * tracing is off, so the hot path pays exactly one predictable branch
 * and no virtual dispatch; when attached, events buffer in memory as
 * POD records and render to JSON once at the end of the run.
 *
 * Timestamps are simulated core-clock cycles reported in the trace's
 * microsecond field (1 cycle == 1 us), which keeps the viewer's zoom
 * and duration arithmetic exact.
 */

#ifndef FLEXCORE_COMMON_TRACE_EVENT_H_
#define FLEXCORE_COMMON_TRACE_EVENT_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace flexcore {

class TraceSink
{
  public:
    /**
     * Counter track sample ("ph":"C"). Call on value *changes* only —
     * Chrome draws steps between samples, so per-cycle emission would
     * bloat the file without adding information.
     */
    void
    counter(const char *name, Cycle ts, u64 value)
    {
        events_.push_back({Kind::kCounter, name, nullptr, 0, ts, value});
    }

    /** Complete duration event ("ph":"X") covering [start, end). */
    void
    complete(const char *name, const char *cat, u32 tid, Cycle start,
             Cycle end)
    {
        events_.push_back(
            {Kind::kComplete, name, cat, tid, start,
             end > start ? end - start : 0});
    }

    /** Instant event ("ph":"i", global scope). */
    void
    instant(const char *name, const char *cat, u32 tid, Cycle ts)
    {
        events_.push_back({Kind::kInstant, name, cat, tid, ts, 0});
    }

    bool empty() const { return events_.empty(); }
    size_t size() const { return events_.size(); }
    void clear() { events_.clear(); }

    /** Render the Chrome trace-event JSON document. */
    std::string json() const;

    /** Write json() to @p path (FLEX_FATAL on I/O failure). */
    void write(const std::string &path) const;

  private:
    enum class Kind : u8 { kCounter, kComplete, kInstant };

    /**
     * One buffered event. Names and categories must be string
     * *literals* (or otherwise outlive the sink): they are stored by
     * pointer so the per-event cost is a 40-byte append, cheap enough
     * to leave call sites unguarded beyond the null-sink check.
     */
    struct Event
    {
        Kind kind;
        const char *name;
        const char *cat;
        u32 tid;
        Cycle ts;
        u64 aux;   //!< counter value or duration
    };

    std::vector<Event> events_;
};

}  // namespace flexcore

#endif  // FLEXCORE_COMMON_TRACE_EVENT_H_
