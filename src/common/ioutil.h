/**
 * @file
 * Small output helpers shared by the CLI tools. The convention across
 * every tool is that a destination path of "-" means stdout, so JSON
 * reports can feed a pipeline (`--stats-json - | python3 -m json.tool`)
 * without a temp file. Diagnostics always go to stderr, keeping stdout
 * clean for the machine-readable payload.
 */

#ifndef FLEXCORE_COMMON_IOUTIL_H_
#define FLEXCORE_COMMON_IOUTIL_H_

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/log.h"

namespace flexcore {

/** True when @p path selects stdout under the "-" convention. */
inline bool
isStdoutPath(const std::string &path)
{
    return path == "-";
}

/**
 * Read all of @p path into @p text, or all of stdin when the path is
 * "-" (the input-side mirror of the "-" output convention). Returns
 * false when the file cannot be opened; the caller owns the error
 * message (it knows the flag the path came from).
 */
inline bool
readTextOrStdin(const std::string &path, std::string *text)
{
    std::stringstream buffer;
    if (isStdoutPath(path)) {
        buffer << std::cin.rdbuf();
    } else {
        std::ifstream file(path, std::ios::binary);
        if (!file)
            return false;
        buffer << file.rdbuf();
    }
    *text = buffer.str();
    return true;
}

/**
 * Write @p text (plus a trailing newline if it lacks one) to @p path,
 * or to stdout when the path is "-". Fatal on I/O failure: a tool that
 * silently drops its requested report is worse than one that aborts.
 */
inline void
writeTextOrStdout(const std::string &path, const std::string &text)
{
    const bool needs_newline = text.empty() || text.back() != '\n';
    if (isStdoutPath(path)) {
        std::fputs(text.c_str(), stdout);
        if (needs_newline)
            std::fputc('\n', stdout);
        std::fflush(stdout);
        return;
    }
    std::ofstream out(path, std::ios::binary);
    if (!out)
        FLEX_FATAL("cannot open '", path, "' for writing");
    out << text;
    if (needs_newline)
        out << '\n';
    if (!out)
        FLEX_FATAL("write to '", path, "' failed");
}

}  // namespace flexcore

#endif  // FLEXCORE_COMMON_IOUTIL_H_
