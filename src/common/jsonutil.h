/**
 * @file
 * Tiny canonical-JSON building blocks shared by every JSON emitter in
 * the simulator (statistics tree, campaign tables, trace events). All
 * emitters hand-render their JSON so the byte layout is fully under our
 * control: same inputs, same bytes, on every platform — the property
 * the determinism checks compare with cmp(1).
 */

#ifndef FLEXCORE_COMMON_JSONUTIL_H_
#define FLEXCORE_COMMON_JSONUTIL_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace flexcore {

/** Escape a string for inclusion inside JSON double quotes. */
inline std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Render a double as a JSON number. %.17g round-trips every IEEE-754
 * binary64 value; non-finite values (which JSON cannot express) become
 * 0 so a division by a zero-valued counter never corrupts the output.
 */
inline std::string
jsonDouble(double value)
{
    if (!std::isfinite(value))
        value = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

}  // namespace flexcore

#endif  // FLEXCORE_COMMON_JSONUTIL_H_
