#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/jsonutil.h"
#include "common/log.h"

namespace flexcore {

Counter::Counter(StatGroup *group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (group)
        group->registerCounter(this);
}

Histogram::Histogram(StatGroup *group, std::string name, std::string desc,
                     Params params)
    : name_(std::move(name)), desc_(std::move(desc)), params_(params)
{
    if (params_.bins == 0)
        FLEX_PANIC("histogram '", name_, "' has zero bins");
    if (params_.log2) {
        if (params_.lo == 0)
            FLEX_PANIC("log2 histogram '", name_, "' needs lo >= 1");
        if (params_.bins >= 64)
            FLEX_PANIC("log2 histogram '", name_, "' has too many bins");
        params_.hi = params_.lo << params_.bins;
    } else if (params_.hi <= params_.lo) {
        FLEX_PANIC("histogram '", name_, "' has an empty range");
    }
    counts_.assign(params_.bins, 0);
    if (group)
        group->registerHistogram(this);
}

void
Histogram::add(u64 value, u64 n)
{
    if (n == 0)
        return;
    count_ += n;
    sum_ += value * n;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    if (value < params_.lo) {
        underflow_ += n;
        return;
    }
    if (value >= params_.hi) {
        overflow_ += n;
        return;
    }
    u32 idx;
    if (params_.log2) {
        // floor(log2(value / lo)): 64 - countl_zero - 1 of the ratio.
        const u64 ratio = value / params_.lo;
        idx = 63u - static_cast<u32>(std::countl_zero(ratio));
    } else {
        // Exact integer binning: values on an edge go to the upper bin.
        const u64 span = params_.hi - params_.lo;
        idx = static_cast<u32>(
            static_cast<unsigned __int128>(value - params_.lo) *
            params_.bins / span);
    }
    counts_[idx] += n;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = underflow_ = overflow_ = sum_ = 0;
    min_ = ~u64{0};
    max_ = 0;
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) /
                        static_cast<double>(count_)
                  : 0.0;
}

u64
Histogram::binLower(u32 bin) const
{
    if (params_.log2)
        return params_.lo << bin;
    const u64 span = params_.hi - params_.lo;
    // First value that maps to this bin under add()'s integer binning.
    return params_.lo + (bin * span + params_.bins - 1) / params_.bins;
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    u64 rank = static_cast<u64>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    rank = std::clamp<u64>(rank, 1, count_);
    u64 cumulative = underflow_;
    if (rank <= cumulative)
        return static_cast<double>(min());
    for (u32 i = 0; i < params_.bins; ++i) {
        cumulative += counts_[i];
        if (rank <= cumulative)
            return static_cast<double>(binLower(i));
    }
    return static_cast<double>(max());
}

Formula::Formula(StatGroup *group, std::string name, std::string desc,
                 std::function<double()> fn)
    : name_(std::move(name)), desc_(std::move(desc)), fn_(std::move(fn))
{
    if (group)
        group->registerFormula(this);
}

double
Formula::value() const
{
    if (!fn_)
        return 0.0;
    const double v = fn_();
    return std::isfinite(v) ? v : 0.0;
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name))
{
    if (parent)
        parent->registerChild(this);
}

void
StatGroup::registerCounter(Counter *counter)
{
    counters_.push_back(counter);
}

void
StatGroup::registerHistogram(Histogram *histogram)
{
    histograms_.push_back(histogram);
}

void
StatGroup::registerFormula(Formula *formula)
{
    formulas_.push_back(formula);
}

void
StatGroup::registerChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::resetAll()
{
    for (Counter *c : counters_)
        c->reset();
    for (Histogram *h : histograms_)
        h->reset();
    for (StatGroup *g : children_)
        g->resetAll();
}

namespace {

std::string
shortDouble(double value)
{
    if (!std::isfinite(value))
        value = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
}

}  // namespace

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream oss;
    const std::string path = prefix.empty() ? name_ : prefix + "." + name_;
    for (const Counter *c : counters_) {
        oss << path << "." << c->name() << " " << c->value()
            << " # " << c->desc() << "\n";
    }
    for (const Histogram *h : histograms_) {
        const std::string base = path + "." + h->name();
        oss << base << ".count " << h->count() << " # " << h->desc()
            << "\n";
        oss << base << ".min " << h->min() << "\n";
        oss << base << ".max " << h->max() << "\n";
        oss << base << ".mean " << shortDouble(h->mean()) << "\n";
        oss << base << ".p50 " << shortDouble(h->percentile(50)) << "\n";
        oss << base << ".p90 " << shortDouble(h->percentile(90)) << "\n";
        oss << base << ".p99 " << shortDouble(h->percentile(99)) << "\n";
    }
    for (const Formula *f : formulas_) {
        oss << path << "." << f->name() << " " << shortDouble(f->value())
            << " # " << f->desc() << "\n";
    }
    for (const StatGroup *g : children_)
        oss << g->dump(path);
    return oss.str();
}

namespace {

/** Append one histogram as a single-line JSON object. */
void
histogramJson(std::string *out, const Histogram &h)
{
    *out += "{\"count\": " + std::to_string(h.count());
    *out += ", \"min\": " + std::to_string(h.min());
    *out += ", \"max\": " + std::to_string(h.max());
    *out += ", \"mean\": " + jsonDouble(h.mean());
    *out += ", \"p50\": " + jsonDouble(h.percentile(50));
    *out += ", \"p90\": " + jsonDouble(h.percentile(90));
    *out += ", \"p99\": " + jsonDouble(h.percentile(99));
    *out += ", \"underflow\": " + std::to_string(h.underflow());
    *out += ", \"overflow\": " + std::to_string(h.overflow());
    *out += ", \"bins\": [";
    bool first = true;
    for (u32 i = 0; i < h.numBins(); ++i) {
        if (h.binCount(i) == 0)
            continue;   // sparse: only populated bins, [lower, count]
        if (!first)
            *out += ", ";
        first = false;
        *out += "[" + std::to_string(h.binLower(i)) + ", " +
                std::to_string(h.binCount(i)) + "]";
    }
    *out += "]}";
}

template <typename T>
std::vector<const T *>
sortedByName(const std::vector<T *> &items)
{
    std::vector<const T *> sorted(items.begin(), items.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const T *a, const T *b) { return a->name() < b->name(); });
    return sorted;
}

}  // namespace

void
StatGroup::jsonInto(std::string *out, const std::string &indent) const
{
    const std::string inner = indent + "  ";
    const std::string entry = inner + "  ";
    *out += "{";
    bool first_section = true;
    const auto section = [&](const char *key) {
        *out += first_section ? "\n" : ",\n";
        first_section = false;
        *out += inner + "\"" + key + "\": {\n";
    };

    if (!counters_.empty()) {
        section("counters");
        const auto sorted = sortedByName(counters_);
        for (size_t i = 0; i < sorted.size(); ++i) {
            *out += entry + "\"" + jsonEscape(sorted[i]->name()) +
                    "\": " + std::to_string(sorted[i]->value());
            *out += (i + 1 < sorted.size()) ? ",\n" : "\n";
        }
        *out += inner + "}";
    }
    if (!formulas_.empty()) {
        section("formulas");
        const auto sorted = sortedByName(formulas_);
        for (size_t i = 0; i < sorted.size(); ++i) {
            *out += entry + "\"" + jsonEscape(sorted[i]->name()) +
                    "\": " + jsonDouble(sorted[i]->value());
            *out += (i + 1 < sorted.size()) ? ",\n" : "\n";
        }
        *out += inner + "}";
    }
    if (!histograms_.empty()) {
        section("histograms");
        const auto sorted = sortedByName(histograms_);
        for (size_t i = 0; i < sorted.size(); ++i) {
            *out += entry + "\"" + jsonEscape(sorted[i]->name()) + "\": ";
            histogramJson(out, *sorted[i]);
            *out += (i + 1 < sorted.size()) ? ",\n" : "\n";
        }
        *out += inner + "}";
    }
    if (!children_.empty()) {
        section("groups");
        const auto sorted = sortedByName(children_);
        for (size_t i = 0; i < sorted.size(); ++i) {
            *out += entry + "\"" + jsonEscape(sorted[i]->name()) + "\": ";
            sorted[i]->jsonInto(out, entry);
            *out += (i + 1 < sorted.size()) ? ",\n" : "\n";
        }
        *out += inner + "}";
    }
    *out += first_section ? "}" : "\n" + indent + "}";
}

std::string
StatGroup::json() const
{
    std::string out;
    jsonInto(&out, "");
    out += "\n";
    return out;
}

std::optional<u64>
StatGroup::tryLookup(const std::string &dotted_path) const
{
    const auto dot = dotted_path.find('.');
    if (dot == std::string::npos) {
        for (const Counter *c : counters_) {
            if (c->name() == dotted_path)
                return c->value();
        }
        return std::nullopt;
    }
    const std::string head = dotted_path.substr(0, dot);
    const std::string tail = dotted_path.substr(dot + 1);
    for (const StatGroup *g : children_) {
        if (g->name() == head)
            return g->tryLookup(tail);
    }
    return std::nullopt;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        FLEX_PANIC("geomean of empty vector");
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace flexcore
