#include "common/stats.h"

#include <sstream>

namespace flexcore {

Counter::Counter(StatGroup *group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (group)
        group->registerCounter(this);
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name))
{
    if (parent)
        parent->registerChild(this);
}

void
StatGroup::registerCounter(Counter *counter)
{
    counters_.push_back(counter);
}

void
StatGroup::registerChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::resetAll()
{
    for (Counter *c : counters_)
        c->reset();
    for (StatGroup *g : children_)
        g->resetAll();
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream oss;
    const std::string path = prefix.empty() ? name_ : prefix + "." + name_;
    for (const Counter *c : counters_) {
        oss << path << "." << c->name() << " " << c->value()
            << " # " << c->desc() << "\n";
    }
    for (const StatGroup *g : children_)
        oss << g->dump(path);
    return oss.str();
}

u64
StatGroup::lookup(const std::string &dotted_path) const
{
    const auto dot = dotted_path.find('.');
    if (dot == std::string::npos) {
        for (const Counter *c : counters_) {
            if (c->name() == dotted_path)
                return c->value();
        }
        return 0;
    }
    const std::string head = dotted_path.substr(0, dot);
    const std::string tail = dotted_path.substr(dot + 1);
    for (const StatGroup *g : children_) {
        if (g->name() == head)
            return g->lookup(tail);
    }
    return 0;
}

}  // namespace flexcore
