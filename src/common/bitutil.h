/**
 * @file
 * Bit-manipulation helpers used by the ISA encoder/decoder, the caches,
 * and the monitoring extensions.
 */

#ifndef FLEXCORE_COMMON_BITUTIL_H_
#define FLEXCORE_COMMON_BITUTIL_H_

#include <bit>

#include "common/types.h"

namespace flexcore {

/** Extract bits [hi:lo] (inclusive) of @p value, right-justified. */
constexpr u32
bits(u32 value, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    const u32 mask = width >= 32 ? ~u32{0} : ((u32{1} << width) - 1);
    return (value >> lo) & mask;
}

/** Extract a single bit of @p value. */
constexpr u32
bit(u32 value, unsigned pos)
{
    return (value >> pos) & 1u;
}

/** Insert @p field into bits [hi:lo] of @p value and return the result. */
constexpr u32
insertBits(u32 value, unsigned hi, unsigned lo, u32 field)
{
    const unsigned width = hi - lo + 1;
    const u32 mask = width >= 32 ? ~u32{0} : ((u32{1} << width) - 1);
    return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extend the low @p width bits of @p value to 32 bits. */
constexpr s32
signExtend(u32 value, unsigned width)
{
    const unsigned shift = 32 - width;
    return static_cast<s32>(value << shift) >> shift;
}

/** True if @p value is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(u64 value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
log2Exact(u64 value)
{
    unsigned n = 0;
    while (value > 1) {
        value >>= 1;
        ++n;
    }
    return n;
}

/** Round @p value up to the next multiple of @p align (a power of two). */
constexpr u32
alignUp(u32 value, u32 align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Population count on a 32-bit value. */
inline unsigned
popcount32(u32 value)
{
    return static_cast<unsigned>(std::popcount(value));
}

}  // namespace flexcore

#endif  // FLEXCORE_COMMON_BITUTIL_H_
