#include "serve/server.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <thread>

#include "common/json.h"

namespace flexcore::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

/** Render the small non-sim replies by hand (fixed field order). */
std::string
okJson(const char *op)
{
    return std::string("{\"ok\": true, \"op\": \"") + op + "\"}";
}

/** A typed error rendered exactly like a SimResponse rejection. */
std::string
typedErrorJson(ConfigError::Code code, std::string message)
{
    SimResponse response;
    response.error = makeConfigError(code, std::move(message));
    return simResponseJson(response);
}

std::string
badRequestJson(std::string message)
{
    return typedErrorJson(ConfigError::Code::kBadRequest,
                          std::move(message));
}

}  // namespace

Server::Server(ThreadPool *pool, ProgramCache *cache,
               ServeLimits limits)
    : pool_(pool), cache_(cache), limits_(limits),
      start_time_(SteadyClock::now())
{
}

Server::~Server()
{
    netio::closeSocket(listen_fd_);
    if (wake_read_fd_ >= 0)
        ::close(wake_read_fd_);
    if (wake_write_fd_ >= 0)
        ::close(wake_write_fd_);
}

bool
Server::listen(const netio::Endpoint &endpoint, std::string *error)
{
    endpoint_ = endpoint;
    listen_fd_ = netio::listenOn(endpoint_, error);
    if (listen_fd_ < 0)
        return false;
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
        if (error)
            *error = "cannot create wake pipe";
        netio::closeSocket(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_ = pipe_fds[1];
    // The write end must never block inside a signal handler.
    netio::setNonBlocking(wake_write_fd_);
    return true;
}

void
Server::beginShutdown()
{
    if (draining_.exchange(true))
        return;
    // shutdown(2) on the listener kicks the accept loop out of a
    // blocking accept (close() would not); the wake byte covers the
    // poll it may be sitting in instead.
    netio::shutdownSocket(listen_fd_);
    if (wake_write_fd_ >= 0) {
        const char byte = 1;
        [[maybe_unused]] const ssize_t n =
            ::write(wake_write_fd_, &byte, 1);
    }
}

void
Server::noteSimServed()
{
    const u64 served = sims_.fetch_add(1) + 1;
    if (limits_.max_requests != 0 && served >= limits_.max_requests)
        beginShutdown();
}

std::string
Server::statsJson() const
{
    std::string out = "{\"ok\": true, \"op\": \"stats\", \"sims\": " +
                      std::to_string(sims_.load()) + ", \"errors\": " +
                      std::to_string(errors_.load());
    out += ", \"cache\": ";
    if (cache_) {
        out += "{\"hits\": " + std::to_string(cache_->hits()) +
               ", \"misses\": " + std::to_string(cache_->misses()) +
               ", \"entries\": " + std::to_string(cache_->size()) + "}";
    } else {
        out += "null";
    }
    out += ", \"threads\": " + std::to_string(pool_->threadCount()) +
           "}";
    return out;
}

std::string
Server::healthJson() const
{
    const u64 uptime_ms = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            SteadyClock::now() - start_time_)
            .count());
    std::string out = "{\"ok\": true, \"op\": \"health\"";
    out += std::string(", \"draining\": ") +
           (draining_.load() ? "true" : "false");
    out += ", \"conns\": " + std::to_string(conns_.load());
    out += ", \"pending\": " + std::to_string(pending_.load());
    out += ", \"running\": " + std::to_string(running_.load());
    out += ", \"sims\": " + std::to_string(sims_.load());
    out += ", \"errors\": " + std::to_string(errors_.load());
    out += ", \"shed\": " + std::to_string(shed_.load());
    out += ", \"uptime_ms\": " + std::to_string(uptime_ms);
    // Capacity facts for load balancers: the worker count actually
    // serving simulations, and what the host could provide.
    out += ", \"workers\": " + std::to_string(pool_->threadCount());
    out += ", \"hardware_concurrency\": " +
           std::to_string(std::thread::hardware_concurrency());
    out += ", \"cache\": ";
    if (cache_) {
        out += "{\"hits\": " + std::to_string(cache_->hits()) +
               ", \"misses\": " + std::to_string(cache_->misses()) +
               ", \"entries\": " + std::to_string(cache_->size()) + "}";
    } else {
        out += "null";
    }
    out += ", \"threads\": " + std::to_string(pool_->threadCount()) +
           "}";
    return out;
}

Server::Reply
Server::handlePayload(std::string_view payload)
{
    Reply reply;
    JsonValue doc;
    std::string parse_error;
    if (!parseJson(payload, &doc, &parse_error)) {
        errors_.fetch_add(1);
        reply.frame = badRequestJson("request frame is not valid "
                                     "JSON: " +
                                     parse_error);
        return reply;
    }
    const JsonValue *op = doc.find("op");
    if (!doc.isObject() || !op || !op->isString()) {
        errors_.fetch_add(1);
        reply.frame = badRequestJson(
            "request must be an object with a string \"op\" field");
        return reply;
    }

    if (op->str == "ping") {
        reply.frame = okJson("ping");
        return reply;
    }
    if (op->str == "stats") {
        reply.frame = statsJson();
        return reply;
    }
    if (op->str == "health") {
        reply.frame = healthJson();
        return reply;
    }
    if (op->str == "shutdown") {
        beginShutdown();
        reply.frame = okJson("shutdown");
        return reply;
    }
    if (op->str != "sim") {
        errors_.fetch_add(1);
        reply.frame = badRequestJson(
            "unknown op \"" + op->str +
            "\" (expected ping, stats, health, sim, or shutdown)");
        return reply;
    }

    // ---- op: sim — admission control first, decode second ----
    if (draining_.load()) {
        errors_.fetch_add(1);
        shed_.fetch_add(1);
        reply.frame = typedErrorJson(
            ConfigError::Code::kShuttingDown,
            "server is draining; no new simulations");
        return reply;
    }
    if (limits_.max_pending != 0 &&
        pending_.load() >= limits_.max_pending) {
        // Racy by design: two connections can both pass the check and
        // overshoot by at most the connection count — shedding is a
        // back-pressure valve, not an exact semaphore.
        errors_.fetch_add(1);
        shed_.fetch_add(1);
        reply.frame = typedErrorJson(
            ConfigError::Code::kOverloaded,
            "pending queue full (" +
                std::to_string(limits_.max_pending) +
                " requests waiting); retry with backoff");
        return reply;
    }

    const JsonValue *request_doc = doc.find("request");
    if (!request_doc) {
        errors_.fetch_add(1);
        reply.frame =
            badRequestJson("op \"sim\" needs a \"request\" object");
        return reply;
    }
    SimRequest request;
    ConfigError decode_error;
    if (!SimRequest::fromJson(*request_doc, &request, &decode_error)) {
        errors_.fetch_add(1);
        SimResponse rejection;
        rejection.error = decode_error;
        reply.frame = simResponseJson(rejection);
        return reply;
    }
    if (limits_.max_request_cycles != 0 &&
        request.mutableConfig().max_cycles >
            limits_.max_request_cycles) {
        // A deterministic budget clamp, complementary to the
        // wall-clock deadline: exceeding it is a plain kMaxCycles
        // result, not an error.
        request.mutableConfig().max_cycles = limits_.max_request_cycles;
    }

    // The deadline counts from admission: time spent waiting for a
    // pool worker burns it too (the whole point — a saturated server
    // must not let requests wait forever).
    CancelToken token(&drain_token_);
    if (limits_.default_deadline_ms > 0)
        token.deadlineAfterMs(limits_.default_deadline_ms);

    const bool want_trace = request.traceFxtrRequested();
    const auto t0 = SteadyClock::now();
    std::string trace;
    SimResponse response;
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    pending_.fetch_add(1);
    pool_->submit([&] {
        pending_.fetch_sub(1);
        running_.fetch_add(1);
        SimResponse r =
            serveSimRequest(std::move(request), cache_,
                            want_trace ? &trace : nullptr, &token);
        running_.fetch_sub(1);
        std::lock_guard<std::mutex> lock(mutex);
        response = std::move(r);
        done = true;
        cv.notify_one();
    });
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return done; });
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          SteadyClock::now() - t0)
                          .count();

    if (response.error)
        errors_.fetch_add(1);
    else
        noteSimServed();
    if (!limits_.quiet) {
        std::fprintf(
            stderr,
            "[flexcore-serve] sim #%llu %s cycles=%llu cache=%s "
            "%.1fms\n",
            static_cast<unsigned long long>(sims_.load()),
            response.error
                ? configErrorName(response.error.code).data()
                : exitName(response.result.exit).data(),
            static_cast<unsigned long long>(response.result.cycles),
            response.cache_hit ? "hit" : "miss", ms);
    }
    reply.frame = simResponseJson(response);
    if (want_trace && !response.error) {
        reply.trace = std::move(trace);
        reply.has_trace = true;
    }
    return reply;
}

void
Server::serveConnection(int fd)
{
    // Non-blocking + poll-budgeted I/O: no peer can park this thread.
    netio::setNonBlocking(fd);
    int idle_spent_ms = 0;
    for (;;) {
        if (draining_.load())
            break;
        // Short poll slices so the loop notices drain mode promptly;
        // the idle budget accumulates across slices.
        int slice_ms = 200;
        if (limits_.idle_timeout_ms >= 0) {
            const int left = limits_.idle_timeout_ms - idle_spent_ms;
            slice_ms = left < slice_ms ? left : slice_ms;
        }
        std::string payload;
        std::string error;
        const netio::RecvStatus status = netio::recvFrameLimited(
            fd, &payload, limits_.max_frame_bytes, slice_ms,
            limits_.frame_timeout_ms, &error);
        if (status == netio::RecvStatus::kIdleTimeout) {
            idle_spent_ms += slice_ms;
            if (limits_.idle_timeout_ms >= 0 &&
                idle_spent_ms >= limits_.idle_timeout_ms) {
                if (!limits_.quiet)
                    std::fprintf(stderr, "[flexcore-serve] reaping "
                                         "idle connection\n");
                break;
            }
            continue;
        }
        if (status == netio::RecvStatus::kTooLarge) {
            // The stream is desynchronized past repair (we never read
            // the claimed payload): answer typed, then drop.
            errors_.fetch_add(1);
            netio::sendFrameLimited(
                fd,
                typedErrorJson(ConfigError::Code::kFrameTooLarge,
                               error),
                limits_.frame_timeout_ms);
            break;
        }
        if (status != netio::RecvStatus::kFrame) {
            if (status == netio::RecvStatus::kError &&
                !error.empty() && !limits_.quiet)
                std::fprintf(stderr, "[flexcore-serve] client: %s\n",
                             error.c_str());
            break;  // kEof, kFrameTimeout, kError
        }
        idle_spent_ms = 0;
        const Reply reply = handlePayload(payload);
        if (!netio::sendFrameLimited(fd, reply.frame,
                                     limits_.frame_timeout_ms))
            break;
        if (reply.has_trace &&
            !netio::sendFrameLimited(fd, reply.trace,
                                     limits_.frame_timeout_ms))
            break;
        if (reply.close)
            break;
    }
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        for (size_t i = 0; i < conn_fds_.size(); ++i) {
            if (conn_fds_[i] == fd) {
                conn_fds_[i] = conn_fds_.back();
                conn_fds_.pop_back();
                break;
            }
        }
    }
    netio::closeSocket(fd);
    conns_.fetch_sub(1);
}

void
Server::acceptLoop()
{
    while (!draining_.load()) {
        pollfd pfds[2];
        pfds[0].fd = listen_fd_;
        pfds[0].events = POLLIN;
        pfds[0].revents = 0;
        pfds[1].fd = wake_read_fd_;
        pfds[1].events = POLLIN;
        pfds[1].revents = 0;
        const int rc = ::poll(pfds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pfds[1].revents != 0)
            break;  // wake byte: a signal handler requested drain
        if (pfds[0].revents == 0)
            continue;
        const int fd = netio::acceptClient(listen_fd_);
        if (fd < 0)
            break;  // listener shut down (shutdown op / max-requests)
        if (limits_.max_conns != 0 &&
            conns_.load() >= limits_.max_conns) {
            errors_.fetch_add(1);
            shed_.fetch_add(1);
            netio::sendFrameLimited(
                fd,
                typedErrorJson(ConfigError::Code::kOverloaded,
                               "connection limit reached (" +
                                   std::to_string(limits_.max_conns) +
                                   "); retry with backoff"),
                limits_.frame_timeout_ms);
            netio::closeSocket(fd);
            continue;
        }
        conns_.fetch_add(1);
        std::lock_guard<std::mutex> lock(conn_mutex_);
        conn_fds_.push_back(fd);
        conn_threads_.emplace_back(&Server::serveConnection, this, fd);
    }
    beginShutdown();  // idempotent: covers the wake-fd path
}

void
Server::drain()
{
    // Phase 1: give in-flight simulations the drain budget.
    const bool bounded = limits_.drain_timeout_ms >= 0;
    const auto deadline =
        SteadyClock::now() +
        std::chrono::milliseconds(bounded ? limits_.drain_timeout_ms
                                          : 0);
    while (pending_.load() + running_.load() > 0) {
        if (bounded && SteadyClock::now() >= deadline) {
            // Phase 2: budget spent — one cancel reclaims every
            // worker (each request token is a child of this one).
            if (!limits_.quiet)
                std::fprintf(stderr,
                             "[flexcore-serve] drain timeout: "
                             "cancelling %u in-flight sims\n",
                             pending_.load() + running_.load());
            drain_token_.cancel();
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // Cancelled runs unwind within milliseconds (System polls the
    // token every ~64Ki simulated cycles) and their deadline_exceeded
    // responses still get written before the connections close.
    while (pending_.load() + running_.load() > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    // Kick connections still parked in a read so nobody waits out a
    // full poll slice, then join everything. Read side only: a
    // connection thread may still be writing its final response (the
    // counters hit zero before the reply is serialized), and cutting
    // the write would lose a response the sim already earned.
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        for (int fd : conn_fds_)
            netio::shutdownSocketRead(fd);
    }
    for (std::thread &t : conn_threads_)
        t.join();
    conn_threads_.clear();
}

void
Server::serve()
{
    start_time_ = SteadyClock::now();
    std::fprintf(stderr,
                 "[flexcore-serve] listening on %s (%u workers, "
                 "cache %s)\n",
                 netio::endpointString(endpoint_).c_str(),
                 pool_->threadCount(), cache_ ? "on" : "off");
    acceptLoop();
    drain();
    netio::closeSocket(listen_fd_);
    listen_fd_ = -1;
    if (endpoint_.is_unix)
        ::unlink(endpoint_.path.c_str());
}

}  // namespace flexcore::serve
