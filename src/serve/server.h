/**
 * @file
 * The flexcore-serve engine as a library: protocol handling, admission
 * control, request deadlines, and graceful drain, separated from the
 * thin CLI in tools/flexcore_serve.cc so tests can drive the protocol
 * loop without sockets (tests/test_serve_resilience.cc feeds
 * handlePayload() raw fuzzed bytes) and the chaos harness has a stable
 * surface to attack.
 *
 * Resilience model (docs/serve.md):
 *
 *  - **Deadlines.** Every sim request gets a CancelToken chained to
 *    the server-wide drain token and armed with --default-deadline-ms.
 *    System::run() polls it every ~64Ki simulated cycles, so a
 *    non-terminating program is cut within milliseconds of expiry and
 *    the worker thread is reclaimed; the client sees a typed
 *    `deadline_exceeded` response and the server keeps serving.
 *    --max-request-cycles independently clamps the simulated-cycle
 *    budget (a deterministic bound; exceeding it is kMaxCycles).
 *
 *  - **Overload shedding.** --max-pending bounds sim requests admitted
 *    but not yet running; past it the server fails fast with a typed
 *    `overloaded` response instead of queueing unboundedly.
 *    --max-conns bounds concurrent connections the same way. The
 *    `health` op reports depth/in-flight/cache/uptime so load
 *    balancers can back off before the shed point.
 *
 *  - **Graceful drain.** SIGTERM/SIGINT (via the self-pipe wake fd) or
 *    the `shutdown` op stop the accept loop; in-flight simulations get
 *    --drain-timeout-ms to finish before the drain token cancels them
 *    all; new sims are refused with `shutting_down`; idle connections
 *    are reaped by the poll-based read timeouts. The server then joins
 *    every thread and exits 0.
 *
 *  - **Hostile peers.** Frames are read with recvFrameLimited: an
 *    oversized length prefix (> --max-frame-bytes) is answered with a
 *    typed `frame_too_large` error and the connection dropped without
 *    ever allocating the claimed size; a frame that starts but stalls
 *    (slow loris) times out after --frame-timeout-ms; responses are
 *    written with the same budget so a peer that stops reading cannot
 *    park a thread either.
 */

#ifndef FLEXCORE_SERVE_SERVER_H_
#define FLEXCORE_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/netio.h"
#include "common/threadpool.h"
#include "sim/sim_response.h"

namespace flexcore::serve {

/** Every resilience knob, in flag order (tools/flexcore_serve.cc). */
struct ServeLimits
{
    /** Largest frame a client may send; prefixes above it get a typed
     * frame_too_large rejection with no allocation. Far below the
     * 256 MiB protocol hard bound on purpose: the biggest legitimate
     * request is a few hundred KiB of assembly source. */
    u32 max_frame_bytes = 8u * 1024 * 1024;
    /** Wall-clock deadline per sim request, ms (0 = none). Counts from
     * admission, so queue wait burns deadline too. */
    long default_deadline_ms = 0;
    /** Clamp on each request's simulated-cycle budget (0 = none). */
    u64 max_request_cycles = 0;
    /** Max sim requests admitted but not yet running (0 = unbounded);
     * past it new sims are shed with a typed `overloaded` error. */
    u32 max_pending = 0;
    /** Max concurrent connections (0 = unbounded); excess connections
     * get one `overloaded` frame and are closed. */
    u32 max_conns = 0;
    /** Reap a connection idle (no frame started) this long, ms
     * (< 0 = never). */
    int idle_timeout_ms = -1;
    /** Budget for one frame to finish once started, and for one
     * response write, ms (< 0 = unbounded). The slow-loris bound. */
    int frame_timeout_ms = 10'000;
    /** How long drain mode lets in-flight sims finish before the
     * drain token cancels them (< 0 = wait forever). */
    int drain_timeout_ms = 5'000;
    /** Stop after N successful sims (0 = run until shutdown). */
    u64 max_requests = 0;
    bool quiet = false;
};

class Server
{
  public:
    /** @p cache may be null (no program cache). The pool and cache
     * must outlive the server. */
    Server(ThreadPool *pool, ProgramCache *cache, ServeLimits limits);
    ~Server();

    /** Bind + listen + create the wake pipe; false with @p error set
     * on failure. Call once, before serve(). */
    bool listen(const netio::Endpoint &endpoint, std::string *error);

    /**
     * Accept and serve until a shutdown trigger (shutdown op, wake-fd
     * byte, --max-requests), then drain: stop accepting, give
     * in-flight sims drain_timeout_ms, cancel stragglers, join every
     * connection thread. Returns when the server is fully quiesced.
     */
    void serve();

    /**
     * Enter drain mode from any thread. Signal handlers must NOT call
     * this (it takes locks); they write one byte to wakeWriteFd()
     * instead and the accept loop calls this.
     */
    void beginShutdown();

    /** Self-pipe write end for async-signal-safe shutdown requests
     * (write one byte from the SIGTERM/SIGINT handler). -1 before
     * listen(). */
    int wakeWriteFd() const { return wake_write_fd_; }

    /** What the connection loop does with one handled payload. */
    struct Reply
    {
        std::string frame;       //!< primary response document
        std::string trace;       //!< out-of-band FXTR frame
        bool has_trace = false;  //!< send @p trace as a second frame
        bool close = false;      //!< drop the connection after sending
    };

    /**
     * Handle one received payload — the whole protocol lives here,
     * socket-free, so fuzz tests can feed arbitrary bytes and assert
     * "typed error out, never a crash". Thread-safe (one call per
     * connection thread).
     */
    Reply handlePayload(std::string_view payload);

    // ---- Final-report counters ----
    u64 sims() const { return sims_.load(); }
    u64 errors() const { return errors_.load(); }
    u64 shed() const { return shed_.load(); }
    const ServeLimits &limits() const { return limits_; }

  private:
    void acceptLoop();
    void drain();
    void serveConnection(int fd);
    std::string healthJson() const;
    std::string statsJson() const;
    void noteSimServed();

    ThreadPool *pool_;
    ProgramCache *cache_;
    ServeLimits limits_;

    netio::Endpoint endpoint_;
    int listen_fd_ = -1;
    int wake_read_fd_ = -1;
    int wake_write_fd_ = -1;

    /** Parent of every request token; cancelled at drain timeout. */
    CancelToken drain_token_;
    std::atomic<bool> draining_{false};

    std::atomic<u64> sims_{0};     //!< successful sim responses
    std::atomic<u64> errors_{0};   //!< typed error responses
    std::atomic<u64> shed_{0};     //!< overloaded/shutting_down refusals
    std::atomic<u32> pending_{0};  //!< admitted, not yet running
    std::atomic<u32> running_{0};  //!< executing on the pool
    std::atomic<u32> conns_{0};    //!< live connections
    std::chrono::steady_clock::time_point start_time_{};

    std::mutex conn_mutex_;
    std::vector<std::thread> conn_threads_;
    std::vector<int> conn_fds_;  //!< live fds (for drain kick)
};

}  // namespace flexcore::serve

#endif  // FLEXCORE_SERVE_SERVER_H_
