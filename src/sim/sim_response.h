/**
 * @file
 * SimResponse: the structured result of executing one wire-schema
 * SimRequest, plus the server-side executor (serveSimRequest) and the
 * content-addressed cache of assembled programs it consults.
 *
 * A response is either an error — a typed ConfigError (the same kBad*
 * family SystemConfig::finalize() produces) with a human-readable
 * message — or a success carrying the RunResult, the fault verdict for
 * fault runs, sampled counters, and the canonical stats/profile JSON
 * documents. The canonical documents are embedded as *escaped JSON
 * strings*, not nested objects, so a client can extract them with a
 * plain unescape and land on bytes identical to what flexcore-run
 * writes locally — the property the serve smoke test cmp(1)-gates
 * (docs/serve.md).
 */

#ifndef FLEXCORE_SIM_SIM_RESPONSE_H_
#define FLEXCORE_SIM_SIM_RESPONSE_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/sim_request.h"

namespace flexcore {

/** Structured outcome of one served request. */
struct SimResponse
{
    /** Falsy = success; else the typed rejection (kBadRequest, ...). */
    ConfigError error;

    /** True when the assembled program came from the server cache. */
    bool cache_hit = false;
    /** FNV-1a 64 of the request's assembly source (0 for program-less
     * errors); the cache key. */
    u64 source_hash = 0;

    RunResult result;
    bool fault_run = false;   //!< the request carried a fault plan
    FaultReport fault;        //!< valid iff fault_run
    std::string golden_diff;  //!< bounded first-difference (SDC only)

    /** Requested (path, value) counter samples, request order. */
    std::vector<std::pair<std::string, u64>> stats;
    std::string stats_json;    //!< canonical stats document, exact bytes
    std::string stats_text;    //!< flat stats dump
    std::string profile_json;  //!< canonical per-PC hotspot report

    /**
     * Size of the FXTR trace that accompanies this response (0 = none).
     * The trace bytes themselves travel out of band — as a second
     * length-prefixed frame on the socket — because embedding a binary
     * stream in JSON would bloat it by ~2x.
     */
    u64 trace_bytes = 0;
};

/** Canonical JSON rendering of a response (docs/serve.md). */
std::string simResponseJson(const SimResponse &response);

/**
 * Decode a response document (the client side). Returns false with an
 * explanation for malformed documents; a well-formed *error response*
 * returns true with @p out ->error set.
 */
bool simResponseFromJson(std::string_view text, SimResponse *out,
                         std::string *error);

/** FNV-1a 64 over a byte string (the program-cache content address). */
u64 fnv1a64(std::string_view data);

/**
 * Thread-safe content-addressed cache of assembled programs, keyed by
 * the FNV-1a 64 hash of the assembly source text. Values are immutable
 * and shared: concurrent runs reference one Program image while each
 * System keeps its own µop tables (pre-decode state is per-core and
 * rebuilt lazily, so sharing the image is safe). Unbounded by design —
 * a benchmark suite is a handful of sources; an eviction policy would
 * be speculation.
 */
class ProgramCache
{
  public:
    /** Null when the hash is absent. Counts a hit or a miss. */
    std::shared_ptr<const Program> lookup(u64 hash);

    /** Insert (first writer wins; later duplicates are dropped). */
    void insert(u64 hash, std::shared_ptr<const Program> program);

    u64 hits() const;
    u64 misses() const;
    size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<u64, std::shared_ptr<const Program>> programs_;
    u64 hits_ = 0;
    u64 misses_ = 0;
};

/**
 * Execute one request the way flexcore-serve does: finalize the config
 * (typed error on rejection), resolve the program through @p cache
 * (assembling on a miss; assembly diagnostics become kBadSource),
 * attach a memory-sink FXTR writer when the request asks for a trace
 * and @p trace_out is non-null, run, and package every requested
 * surface. @p cache may be null (no caching — every call assembles).
 *
 * @p cancel (nullable) is the request's cooperative cancel token: an
 * already-expired token fails fast with kDeadlineExceeded before the
 * run starts (the request sat in a queue past its deadline), and one
 * expiring mid-run ends the simulation with Exit::kDeadline, mapped
 * here to the same typed kDeadlineExceeded error.
 *
 * Functional-verification failures on non-fault runs remain fatal even
 * here: a golden-output mismatch means the simulator is broken, not
 * the request.
 */
SimResponse serveSimRequest(SimRequest request, ProgramCache *cache,
                            std::string *trace_out,
                            const CancelToken *cancel = nullptr);

}  // namespace flexcore

#endif  // FLEXCORE_SIM_SIM_RESPONSE_H_
