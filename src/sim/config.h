/**
 * @file
 * Top-level simulation configuration: which monitoring extension runs,
 * in which implementation (baseline / ASIC / FlexCore fabric /
 * software instrumentation), and all structural parameters.
 */

#ifndef FLEXCORE_SIM_CONFIG_H_
#define FLEXCORE_SIM_CONFIG_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/core.h"
#include "faults/fault_plan.h"
#include "flexcore/fabric.h"
#include "monitors/monitor.h"

namespace flexcore {

enum class MonitorKind : u8 {
    kNone,
    kUmc,      //!< uninitialized memory check
    kDift,     //!< dynamic information flow tracking
    kBc,       //!< color-based array bound check
    kSec,      //!< soft-error check
    kProf,     //!< custom performance/working-set profiler (§II-B)
    kMemProt,  //!< Mondrian-style fine-grained memory protection
    kWatch,    //!< iWatcher-style hardware watchpoints
    kRefCount, //!< reference-counting GC support (pure bookkeeping)
};

enum class ImplMode : u8 {
    kBaseline,    //!< unmodified Leon3
    kAsic,        //!< extension in custom hardware at the core clock
    kFlexFabric,  //!< extension on the reconfigurable fabric
    kSoftware,    //!< inline software instrumentation on the core
};

/**
 * How the functional+timing loop executes. Both modes produce
 * byte-identical results (tests/test_differential.cc proves it);
 * threaded dispatch is a host-side optimization only.
 */
enum class ExecMode : u8 {
    kInterp,    //!< per-cycle interpreter state machine (golden)
    kThreaded,  //!< function-pointer superblock bursts over the µop cache
};

/**
 * Fabric topology for multi-core systems (docs/multicore.md). With one
 * core the two are identical — one core, one fabric either way.
 */
enum class FabricSharing : u8 {
    kPerCore,  //!< one fabric + interface instance per core
    kShared,   //!< one fabric time-multiplexed across all cores
};

std::string_view monitorKindName(MonitorKind kind);
std::string_view implModeName(ImplMode mode);
std::string_view execModeName(ExecMode mode);
std::string_view fabricSharingName(FabricSharing sharing);

/** Case-insensitive parse of "interp" / "threaded". */
bool parseExecMode(std::string_view name, ExecMode *mode);

/** Case-insensitive parse of "per_core" / "shared". */
bool parseFabricSharing(std::string_view name, FabricSharing *sharing);

/** Case-insensitive parse of "baseline"/"asic"/"flexcore"/"software". */
bool parseImplMode(std::string_view name, ImplMode *mode);

/**
 * Case-insensitive parse of a monitor name ("none", any canonical
 * extension name, or a registered alias such as "refcount"). Returns
 * false, leaving @p kind untouched, for unknown names.
 */
bool parseMonitorKind(std::string_view name, MonitorKind *kind);

/**
 * Construct a fresh monitor instance of the given kind (null = none).
 * @p dift_tag_bits selects the DIFT taint-tag width (1 or 4).
 */
std::unique_ptr<Monitor> makeMonitor(MonitorKind kind,
                                     unsigned dift_tag_bits = 1);

/**
 * Fabric clock divisor used in the paper's evaluation: UMC/DIFT/BC run
 * at half the core clock, SEC at one quarter (from the synthesis
 * frequency estimates, §V-C). Looked up from the extension registry.
 */
u32 defaultFlexPeriod(MonitorKind kind);

/**
 * Typed outcome of SystemConfig::finalize(). A falsy error means the
 * configuration is valid and fully resolved. Callers that accept user
 * input (tools, SimRequest) surface the message; System's constructor
 * treats any error as fatal.
 */
struct ConfigError
{
    enum class Code : u8 {
        kNone,
        kMissingMonitor,    //!< ASIC/fabric mode without a monitor
        kMonitorOnBaseline, //!< baseline mode cannot host a monitor
        kBadDiftTagBits,    //!< dift_tag_bits not in {1, 4}
        kStrayFlexPeriod,   //!< flex_period set outside fabric mode
        kBadCycleLimit,     //!< max_cycles is zero
        kBadWatchdog,       //!< watchdog_commits >= max_cycles
        kBadFaultPlan,      //!< a FaultSpec fails static validation
        kBadSampleWindow,   //!< sample_window/sample_period inconsistent
        kThreadedHistograms, //!< threaded dispatch + per-cycle histograms
        kSamplingHistograms, //!< sampled timing + per-cycle histograms
        kSamplingTrace,     //!< sampled timing + trace-event capture
        kSamplingExecMode,  //!< sampled timing + non-default exec_mode
        kSamplingSoftware,  //!< sampled timing + software instrumentation
        kBadCores,          //!< num_cores out of range or bad combo
        kBadFabricSharing,  //!< unknown fabric-sharing topology name

        // ---- Wire-schema (SimRequest JSON) request errors ----
        kBadRequest,        //!< malformed JSON or schema violation
        kBadVersion,        //!< missing/unsupported "v" field
        kBadMonitor,        //!< unknown monitor name
        kBadImplMode,       //!< unknown implementation-mode name
        kBadExecMode,       //!< unknown exec-mode name
        kBadWorkload,       //!< unknown workload name or scale
        kBadSource,         //!< request source fails to assemble

        // ---- Serving errors (flexcore-serve resilience layer) ----
        kDeadlineExceeded,  //!< request deadline/cycle clamp hit
        kOverloaded,        //!< admission control shed the request
        kShuttingDown,      //!< server draining; no new simulations
        kFrameTooLarge,     //!< frame length prefix above the serve cap
    };

    Code code = Code::kNone;
    std::string message;

    explicit operator bool() const { return code != Code::kNone; }
};

std::string_view configErrorName(ConfigError::Code code);

/**
 * Inverse of configErrorName (exact match; "none" maps to kNone).
 * Returns false for unknown names — used when decoding a SimResponse
 * received over the wire.
 */
bool parseConfigErrorName(std::string_view name,
                          ConfigError::Code *code);

/** Build a ConfigError in one expression (falsy iff code is kNone). */
ConfigError makeConfigError(ConfigError::Code code,
                            std::string message);

struct SystemConfig
{
    /** Most cores a System will instantiate (arbitrary sanity bound). */
    static constexpr u32 kMaxCores = 8;

    /**
     * Coherent shared-memory window for multi-core runs. Each core of
     * an N-core system owns a private functional memory (all cores
     * load the same program image, so identical addresses name
     * per-core copies); accesses inside this window hit one memory
     * shared by every core, and stores to it are the coherence point:
     * remote D-cache lines and µops covering the address are
     * invalidated. Single-core systems have one memory and never
     * consult the window. See docs/multicore.md.
     */
    static constexpr Addr kSharedWindowBase = 0x30000000;
    static constexpr u32 kSharedWindowBytes = 64 * 1024;
    /** Per-core stack offset: core i's initial %sp is stack_top minus
     * i times this, so the N private stacks stay disjoint even though
     * each core owns a private memory (uniform layout aids debugging). */
    static constexpr u32 kStackStridePerCore = 64 * 1024;

    MonitorKind monitor = MonitorKind::kNone;
    ImplMode mode = ImplMode::kBaseline;

    /**
     * Number of cores (1..kMaxCores). Multi-core runs are interpreter
     * only: finalize() rejects threaded dispatch, sampled timing,
     * software instrumentation, and buffering trace capture when
     * num_cores > 1 (kBadCores). num_cores == 1 is the pre-refactor
     * system, bit for bit.
     */
    u32 num_cores = 1;

    /** Fabric topology for num_cores > 1 (ignored with one core). */
    FabricSharing fabric_sharing = FabricSharing::kPerCore;

    CoreParams core;
    SdramTimings sdram;
    FlexInterface::Params iface;
    FabricParams fabric;

    /** 0 = pick defaultFlexPeriod(monitor) for kFlexFabric runs. */
    u32 flex_period = 0;

    /** DIFT taint-tag width: 1 (default) or 4 (multi-source labels). */
    u32 dift_tag_bits = 1;

    /**
     * Execution engine for the run loop. kThreaded is observably
     * identical to kInterp (same cycles, traces, stats, verdicts) but
     * dispatches committed instructions through function-pointer
     * superblocks instead of the per-cycle state machine. Incompatible
     * with per-cycle histogram sampling (finalize() rejects the
     * combination); attaching a trace sink is legal — the run then
     * falls back to the per-cycle loop, producing a byte-identical
     * trace at interpreter speed. See docs/performance.md.
     */
    ExecMode exec_mode = ExecMode::kInterp;

    /**
     * SMARTS-style sampled timing (0 = off, the default, meaning every
     * cycle is simulated in full detail). When sample_period is N > 0,
     * execution proceeds in sampling units of N committed instructions:
     * the first sample_window instructions of each unit run through the
     * exact cycle-accurate model (a "detailed window"); the rest are
     * functionally warmed — architectural and monitor shadow state stay
     * exact, but no cycles are modeled. RunResult then reports
     * estimated_cycles extrapolated from the detailed windows' CPI.
     * Monitor verdicts (traps) remain exact; cycle counts become
     * estimates with a measured error bound (tests/test_sampling.cc,
     * docs/performance.md).
     */
    u64 sample_window = 0;  //!< detailed instructions per unit
    u64 sample_period = 0;  //!< instructions per sampling unit (0 = off)

    /**
     * Set (by SimRequest) when a *buffering* trace sink (TraceBuffer)
     * is attached, so finalize() can reject buffer-everything capture
     * under sampled timing, whose warmed stretches skip the per-cycle
     * episode bookkeeping full traces depend on. The streaming binary
     * trace (TraceStreamWriter) does not set this: it is legal under
     * sampling, with kWindow records marking the boundaries.
     */
    bool trace_events = false;

    /**
     * Force precise monitor exceptions: every forwarded class uses the
     * CFGR wait-for-acknowledgement policy, so commit stalls until the
     * co-processor finishes each instruction (§III-C's discussion of
     * precise exceptions on in-order cores).
     */
    bool precise_exceptions = false;

    /**
     * Enable per-cycle histogram sampling (FFIFO occupancy, bus queue
     * depth, fabric freeze runs). Off by default so the hot loop pays
     * nothing; purely observational, never affects timing.
     */
    bool histograms = false;

    u64 max_cycles = 500'000'000;

    /**
     * No-commit watchdog (0 = off): if this many consecutive cycles
     * pass without the core committing an instruction or micro-op,
     * the run ends with RunResult::Exit::kHang. Progress-based and
     * orthogonal to max_cycles — a committing infinite loop still
     * runs to the cycle limit, but a wedged pipeline (e.g. a fault
     * corrupting a wait condition) terminates promptly. Exact under
     * fast-forwarding: bulk skips cap at the watchdog deadline.
     */
    u64 watchdog_commits = 0;

    /**
     * Quiescence fast-forward: when the whole system is provably idle
     * (core stalled on a known-latency refill or a fixed-latency unit,
     * store buffer empty, fabric drained), System::run() advances
     * multiple cycles at once while charging the exact same cycle
     * buckets. Purely a host-side optimization — stats, traces, and
     * RunResult are byte-identical either way (docs/performance.md).
     */
    bool fast_forward = true;

    /** ALU transient-fault injection (exercises SEC). */
    double fault_rate = 0.0;
    u64 fault_seed = 1;

    /**
     * Deterministic fault-injection schedule (empty = no injector is
     * constructed and the hot path pays nothing). Validated by
     * finalize(); applied by src/faults/injector at exact cycle or
     * commit-index points. See docs/fault_injection.md.
     */
    FaultPlan faults;

    /**
     * Validate and resolve mode-dependent parameters (fabric period,
     * synchronizer latency). Idempotent: System's constructor always
     * calls it, so callers only need to when they want the typed error
     * instead of the constructor's fatal. Returns a falsy ConfigError
     * on success; on error the config is unchanged and unusable.
     */
    [[nodiscard]] ConfigError finalize();

  private:
    bool finalized_ = false;
};

}  // namespace flexcore

#endif  // FLEXCORE_SIM_CONFIG_H_
