/**
 * @file
 * The full simulated system: memory, shared bus, Leon3-class core,
 * and (depending on the configuration) the FlexCore interface, the
 * reconfigurable fabric or ASIC extension, or a software
 * instrumentation model.
 */

#ifndef FLEXCORE_SIM_SYSTEM_H_
#define FLEXCORE_SIM_SYSTEM_H_

#include <memory>
#include <string>

#include "common/cancel.h"
#include "sim/config.h"

namespace flexcore {

class FaultInjector;
class PcProfile;
class ThreadedEngine;

/** Outcome of a simulation run. */
struct RunResult
{
    enum class Exit : u8 {
        kExited,        //!< program executed `ta 0`
        kMonitorTrap,   //!< a monitor check failed
        kCoreTrap,      //!< core-detected error (div-by-zero, ...)
        kMaxCycles,     //!< cycle limit reached
        kHang,          //!< no-commit watchdog fired (wedged pipeline)
        kDeadline,      //!< cancelled via CancelToken (wall-clock)
    };

    Exit exit = Exit::kMaxCycles;
    u32 exit_code = 0;
    TrapInfo trap;
    std::string trap_reason;    //!< monitor-provided detail
    u32 trap_inst = 0;          //!< instruction word at trap.pc
    /** Total cycles. Exact in full-detail runs; in sampled-timing runs
     * this is estimated_cycles (an extrapolation, not a count). */
    Cycle cycles = 0;
    u64 instructions = 0;
    std::string console;

    // ---- Sampled-timing fields (SystemConfig::sample_period > 0) ----
    /** True when the run used sampled timing and cycles is an estimate. */
    bool sampled = false;
    /** CPI extrapolation from the detailed windows:
     * detailed_cycles x instructions / detailed_instructions. */
    Cycle estimated_cycles = 0;  //!< == cycles in sampled runs
    Cycle detailed_cycles = 0;   //!< cycles actually simulated in detail
    u64 detailed_instructions = 0;  //!< instructions committed in detail
};

std::string_view exitName(RunResult::Exit exit);

class System
{
  public:
    explicit System(SystemConfig config);
    ~System();

    /** Load a program image and configure the monitor/CFGR. */
    void load(const Program &program);

    /**
     * Run until the program halts, a trap fires, or max_cycles.
     * When SystemConfig::fast_forward is set (the default), provably
     * uneventful stretches — the whole system quiescent while a fixed
     * stall or a lone SDRAM refill drains — advance in bulk, charging
     * the exact CycleBuckets the single-step path would; debug builds
     * verify that claim by single-stepping each predicted stretch
     * under asserts. Results, stats, and traces are byte-identical
     * either way (see docs/performance.md).
     */
    RunResult run();

    /** Single-cycle step (for tests). */
    void tick();

    /**
     * Attach a trace sink — a buffering `TraceBuffer` or a streaming
     * `TraceStreamWriter` — to the core, bus, fabric, and fault
     * injector (null detaches). run() closes open episodes when the
     * run ends.
     */
    void attachTrace(TraceSink *sink);

    /**
     * Attach a cooperative cancel token (null detaches; set before
     * run()). The run loops poll it every ~64Ki simulated cycles —
     * cheap enough to be invisible, frequent enough that an expired
     * token ends even a never-committing, never-idle program within
     * milliseconds — and return Exit::kDeadline with all state intact.
     * Simulated results up to the cancellation point are unchanged;
     * with no token attached the run loops are byte-for-byte the old
     * ones (the checks live on the monitored/burst-clamp paths only).
     */
    void setCancel(const CancelToken *cancel) { cancel_ = cancel; }

    /**
     * Attach a per-PC cycle profiler (null detaches). Attach before
     * load(): load() sizes the profile table for the program's text
     * segment, and attribution must start at cycle zero for the
     * profile total to equal core.cycles.
     */
    void attachProfile(PcProfile *profile);

    const SystemConfig &config() const { return config_; }
    Memory &memory() { return *memory_; }
    Bus &bus() { return *bus_; }
    Core &core() { return *core_; }
    FlexInterface *iface() { return iface_.get(); }
    Fabric *fabric() { return fabric_.get(); }
    Monitor *monitor() { return monitor_.get(); }
    StatGroup &stats() { return stats_; }
    Cycle cycles() const { return now_; }

    /** Non-null iff the config carries a fault plan. */
    const FaultInjector *injector() const { return injector_.get(); }

  private:
    /** Bulk-skip one quiescent stretch, if the system is in one. */
    void fastForward();

    /** Sampled-timing run loop (SystemConfig::sample_period > 0). */
    RunResult runSampled();
    /** Shared run() epilogue: flush observers, classify the exit. */
    RunResult finishRun(bool hung, bool cancelled, u64 wd);
    /** A state functional warming may take over from: core drained,
     * store buffer empty, bus idle, fabric not frozen, no pending
     * trap. Queued forward packets are fine — warm() drains them
     * functionally before it starts committing. */
    bool sampleBoundaryReady() const;

    SystemConfig config_;
    StatGroup stats_;
    std::unique_ptr<Memory> memory_;
    std::unique_ptr<Bus> bus_;
    std::unique_ptr<Core> core_;
    std::unique_ptr<Monitor> monitor_;
    std::unique_ptr<FlexInterface> iface_;
    std::unique_ptr<Fabric> fabric_;
    std::unique_ptr<FaultInjector> injector_;
    /** Threaded-dispatch/warming engine; constructed only when
     * exec_mode is kThreaded or sampled timing is on. */
    std::unique_ptr<ThreadedEngine> engine_;
    Cycle now_ = 0;
    /** Cycle at which the no-commit watchdog fires (kCycleNever when
     * off); pushed forward by every committed instruction/micro-op.
     * fastForward() caps bulk skips here so the kHang cycle count is
     * byte-identical with fast-forwarding on or off. */
    Cycle watchdog_deadline_ = kCycleNever;
    /** Cooperative cancellation (null = feature off, zero cost). */
    const CancelToken *cancel_ = nullptr;
    /** Next simulated cycle at which cancel_ is polled; refreshed to
     * now_ + kCancelCheckCycles after every poll. */
    Cycle next_cancel_check_ = kCycleNever;
    TraceSink *trace_ = nullptr;
    PcProfile *profile_ = nullptr;
    size_t traced_ffifo_depth_ = 0;
};

}  // namespace flexcore

#endif  // FLEXCORE_SIM_SYSTEM_H_
