/**
 * @file
 * The full simulated system: memory, shared bus, Leon3-class core,
 * and (depending on the configuration) the FlexCore interface, the
 * reconfigurable fabric or ASIC extension, or a software
 * instrumentation model.
 */

#ifndef FLEXCORE_SIM_SYSTEM_H_
#define FLEXCORE_SIM_SYSTEM_H_

#include <memory>
#include <string>

#include "sim/config.h"

namespace flexcore {

class FaultInjector;

/** Outcome of a simulation run. */
struct RunResult
{
    enum class Exit : u8 {
        kExited,        //!< program executed `ta 0`
        kMonitorTrap,   //!< a monitor check failed
        kCoreTrap,      //!< core-detected error (div-by-zero, ...)
        kMaxCycles,     //!< cycle limit reached
        kHang,          //!< no-commit watchdog fired (wedged pipeline)
    };

    Exit exit = Exit::kMaxCycles;
    u32 exit_code = 0;
    TrapInfo trap;
    std::string trap_reason;    //!< monitor-provided detail
    u32 trap_inst = 0;          //!< instruction word at trap.pc
    Cycle cycles = 0;
    u64 instructions = 0;
    std::string console;
};

std::string_view exitName(RunResult::Exit exit);

class System
{
  public:
    explicit System(SystemConfig config);
    ~System();

    /** Load a program image and configure the monitor/CFGR. */
    void load(const Program &program);

    /**
     * Run until the program halts, a trap fires, or max_cycles.
     * When SystemConfig::fast_forward is set (the default), provably
     * uneventful stretches — the whole system quiescent while a fixed
     * stall or a lone SDRAM refill drains — advance in bulk, charging
     * the exact CycleBuckets the single-step path would; debug builds
     * verify that claim by single-stepping each predicted stretch
     * under asserts. Results, stats, and traces are byte-identical
     * either way (see docs/performance.md).
     */
    RunResult run();

    /** Single-cycle step (for tests). */
    void tick();

    /**
     * Attach a Chrome trace-event sink to the core and bus (null
     * detaches). run() closes open episodes when the run ends.
     */
    void attachTrace(TraceSink *sink);

    const SystemConfig &config() const { return config_; }
    Memory &memory() { return *memory_; }
    Bus &bus() { return *bus_; }
    Core &core() { return *core_; }
    FlexInterface *iface() { return iface_.get(); }
    Fabric *fabric() { return fabric_.get(); }
    Monitor *monitor() { return monitor_.get(); }
    StatGroup &stats() { return stats_; }
    Cycle cycles() const { return now_; }

    /** Non-null iff the config carries a fault plan. */
    const FaultInjector *injector() const { return injector_.get(); }

  private:
    /** Bulk-skip one quiescent stretch, if the system is in one. */
    void fastForward();

    SystemConfig config_;
    StatGroup stats_;
    std::unique_ptr<Memory> memory_;
    std::unique_ptr<Bus> bus_;
    std::unique_ptr<Core> core_;
    std::unique_ptr<Monitor> monitor_;
    std::unique_ptr<FlexInterface> iface_;
    std::unique_ptr<Fabric> fabric_;
    std::unique_ptr<FaultInjector> injector_;
    Cycle now_ = 0;
    /** Cycle at which the no-commit watchdog fires (kCycleNever when
     * off); pushed forward by every committed instruction/micro-op.
     * fastForward() caps bulk skips here so the kHang cycle count is
     * byte-identical with fast-forwarding on or off. */
    Cycle watchdog_deadline_ = kCycleNever;
    TraceSink *trace_ = nullptr;
    size_t traced_ffifo_depth_ = 0;
};

}  // namespace flexcore

#endif  // FLEXCORE_SIM_SYSTEM_H_
