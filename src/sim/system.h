/**
 * @file
 * The full simulated system: one or more Leon3-class cores on a shared
 * round-robin bus, per-core private memory with a coherent shared
 * window, and (depending on the configuration) the FlexCore interface
 * and reconfigurable fabric — one instance per core, or one
 * time-multiplexed fabric serving every core (SystemConfig::
 * fabric_sharing) — an ASIC extension, or a software instrumentation
 * model. Single-core configurations (the default) construct exactly
 * the classic topology and are byte-identical to it; see
 * docs/multicore.md for the multi-core model.
 */

#ifndef FLEXCORE_SIM_SYSTEM_H_
#define FLEXCORE_SIM_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "sim/config.h"

namespace flexcore {

class FaultInjector;
class PcProfile;
class ThreadedEngine;

/** Outcome of a simulation run. */
struct RunResult
{
    enum class Exit : u8 {
        kExited,        //!< program executed `ta 0`
        kMonitorTrap,   //!< a monitor check failed
        kCoreTrap,      //!< core-detected error (div-by-zero, ...)
        kMaxCycles,     //!< cycle limit reached
        kHang,          //!< no-commit watchdog fired (wedged pipeline)
        kDeadline,      //!< cancelled via CancelToken (wall-clock)
    };

    Exit exit = Exit::kMaxCycles;
    u32 exit_code = 0;
    TrapInfo trap;
    std::string trap_reason;    //!< monitor-provided detail
    u32 trap_inst = 0;          //!< instruction word at trap.pc
    /** Total cycles. Exact in full-detail runs; in sampled-timing runs
     * this is estimated_cycles (an extrapolation, not a count). */
    Cycle cycles = 0;
    u64 instructions = 0;
    std::string console;

    // ---- Sampled-timing fields (SystemConfig::sample_period > 0) ----
    /** True when the run used sampled timing and cycles is an estimate. */
    bool sampled = false;
    /** CPI extrapolation from the detailed windows:
     * detailed_cycles x instructions / detailed_instructions. */
    Cycle estimated_cycles = 0;  //!< == cycles in sampled runs
    Cycle detailed_cycles = 0;   //!< cycles actually simulated in detail
    u64 detailed_instructions = 0;  //!< instructions committed in detail
};

std::string_view exitName(RunResult::Exit exit);

class System
{
  public:
    explicit System(SystemConfig config);
    ~System();

    /** Load a program image and configure the monitor/CFGR. */
    void load(const Program &program);

    /**
     * Run until the program halts, a trap fires, or max_cycles.
     * When SystemConfig::fast_forward is set (the default), provably
     * uneventful stretches — the whole system quiescent while a fixed
     * stall or a lone SDRAM refill drains — advance in bulk, charging
     * the exact CycleBuckets the single-step path would; debug builds
     * verify that claim by single-stepping each predicted stretch
     * under asserts. Results, stats, and traces are byte-identical
     * either way (see docs/performance.md).
     */
    RunResult run();

    /** Single-cycle step (for tests). */
    void tick();

    /**
     * Attach a trace sink — a buffering `TraceBuffer` or a streaming
     * `TraceStreamWriter` — to the core, bus, fabric, and fault
     * injector (null detaches). run() closes open episodes when the
     * run ends.
     */
    void attachTrace(TraceSink *sink);

    /**
     * Attach a cooperative cancel token (null detaches; set before
     * run()). The run loops poll it every ~64Ki simulated cycles —
     * cheap enough to be invisible, frequent enough that an expired
     * token ends even a never-committing, never-idle program within
     * milliseconds — and return Exit::kDeadline with all state intact.
     * Simulated results up to the cancellation point are unchanged;
     * with no token attached the run loops are byte-for-byte the old
     * ones (the checks live on the monitored/burst-clamp paths only).
     */
    void setCancel(const CancelToken *cancel) { cancel_ = cancel; }

    /**
     * Attach a per-PC cycle profiler to core 0 (null detaches). Attach
     * before load(): load() sizes the profile table for the program's
     * text segment, and attribution must start at cycle zero for the
     * profile total to equal core.cycles.
     */
    void attachProfile(PcProfile *profile);

    /**
     * Attach a profiler to core @p i. Each core needs its own table —
     * the per-core invariant (profile total == that core's cycles)
     * is debug-asserted every tick, so the per-core tables provably
     * sum to the per-core cycle counters.
     */
    void attachProfileAt(u32 i, PcProfile *profile);

    const SystemConfig &config() const { return config_; }
    u32 numCores() const { return config_.num_cores; }
    Memory &memory() { return *memory_; }
    Bus &bus() { return *bus_; }
    /** Core 0 — kept for the (overwhelming) single-core call sites.
     * Multi-core-aware code should use core(i). */
    Core &core() { return *core_; }
    /** Core @p i (0-based; i < numCores()). */
    Core &
    core(u32 i)
    {
        return i == 0 ? *core_ : *extra_cores_[i - 1];
    }
    /** Core @p i's private functional memory. */
    Memory &
    memoryAt(u32 i)
    {
        return i == 0 ? *memory_ : *extra_memories_[i - 1];
    }
    FlexInterface *iface() { return iface_.get(); }
    Fabric *fabric() { return fabric_.get(); }
    Monitor *monitor() { return monitor_.get(); }
    /** The interface serving core @p i (the shared one, or core i's). */
    FlexInterface *
    ifaceForCore(u32 i)
    {
        if (i == 0 || config_.fabric_sharing == FabricSharing::kShared)
            return iface_.get();
        return extra_ifaces_[i - 1].get();
    }
    /** The fabric processing core @p i's packets. */
    Fabric *
    fabricForCore(u32 i)
    {
        if (i == 0 || config_.fabric_sharing == FabricSharing::kShared)
            return fabric_.get();
        return extra_fabrics_[i - 1].get();
    }
    /** The monitor instance holding core @p i's meta-data state (one
     * per core in both fabric topologies). */
    Monitor *
    monitorForCore(u32 i)
    {
        return i == 0 ? monitor_.get() : extra_monitors_[i - 1].get();
    }
    StatGroup &stats() { return stats_; }
    Cycle cycles() const { return now_; }

    /** Non-null iff the config carries a fault plan. */
    const FaultInjector *injector() const { return injector_.get(); }

  private:
    /** Construct cores 1..N-1 and wire coherence + fabric topology. */
    void buildExtraCores();

    /** Bulk-skip one quiescent stretch, if the system is in one. */
    void fastForward();

    /** Sampled-timing run loop (SystemConfig::sample_period > 0). */
    RunResult runSampled();
    /** Multi-core run loop (num_cores > 1; interpreter only). */
    RunResult runMulti();
    /** One multi-core cycle: bus, fabrics, cores in index order. */
    void tickMulti();
    /** All-cores quiescent bulk skip (multi-core fast-forward). */
    void fastForwardMulti();
    /** True when the run is over: every core halted, or any core
     * halted on a trap (the trap ends the whole run). */
    bool multiRunDone();
    /** Commit progress summed over all cores (watchdog food). */
    u64 totalProgress();
    /** Shared run() epilogue: flush observers, classify the exit. */
    RunResult finishRun(bool hung, bool cancelled, u64 wd);
    /** A state functional warming may take over from: core drained,
     * store buffer empty, bus idle, fabric not frozen, no pending
     * trap. Queued forward packets are fine — warm() drains them
     * functionally before it starts committing. */
    bool sampleBoundaryReady() const;

    SystemConfig config_;
    StatGroup stats_;
    std::unique_ptr<Memory> memory_;
    std::unique_ptr<Bus> bus_;
    std::unique_ptr<Core> core_;
    std::unique_ptr<Monitor> monitor_;
    std::unique_ptr<FlexInterface> iface_;
    std::unique_ptr<Fabric> fabric_;
    /**
     * Cores 1..N-1 of a multi-core system (index i-1 is core i); all
     * empty on single-core, where construction is byte-identical to
     * the classic topology. Core 0 stays in the flat members above —
     * and keeps the flat legacy stat names — while each extra core's
     * components live under a "cI" wrapper stat group. Every core has
     * its own monitor instance (private shadow/meta-data state); in
     * the shared-fabric topology the extra interface/fabric vectors
     * stay empty and the one fabric dispatches over a monitor bank.
     */
    std::vector<std::unique_ptr<StatGroup>> core_groups_;
    std::vector<std::unique_ptr<Memory>> extra_memories_;
    std::vector<std::unique_ptr<Core>> extra_cores_;
    std::vector<std::unique_ptr<Monitor>> extra_monitors_;
    std::vector<std::unique_ptr<FlexInterface>> extra_ifaces_;
    std::vector<std::unique_ptr<Fabric>> extra_fabrics_;
    /** Backing for the coherent shared window (multi-core only):
     * functional data and, under a monitor, its tags. */
    std::unique_ptr<Memory> shared_mem_;
    std::unique_ptr<TagStore> shared_tags_;
    std::unique_ptr<FaultInjector> injector_;
    /** Threaded-dispatch/warming engine; constructed only when
     * exec_mode is kThreaded or sampled timing is on. */
    std::unique_ptr<ThreadedEngine> engine_;
    Cycle now_ = 0;
    /** Cycle at which the no-commit watchdog fires (kCycleNever when
     * off); pushed forward by every committed instruction/micro-op.
     * fastForward() caps bulk skips here so the kHang cycle count is
     * byte-identical with fast-forwarding on or off. */
    Cycle watchdog_deadline_ = kCycleNever;
    /** Cooperative cancellation (null = feature off, zero cost). */
    const CancelToken *cancel_ = nullptr;
    /** Next simulated cycle at which cancel_ is polled; refreshed to
     * now_ + kCancelCheckCycles after every poll. */
    Cycle next_cancel_check_ = kCycleNever;
    TraceSink *trace_ = nullptr;
    PcProfile *profile_ = nullptr;
    /** Profilers attached to cores 1..N-1 (index i-1; may hold nulls).
     * Tracked so load() can size each table like core 0's. */
    std::vector<PcProfile *> extra_profiles_;
    size_t traced_ffifo_depth_ = 0;
};

}  // namespace flexcore

#endif  // FLEXCORE_SIM_SYSTEM_H_
