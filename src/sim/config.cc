#include "sim/config.h"

#include "common/log.h"
#include "monitors/bc.h"
#include "monitors/dift.h"
#include "monitors/memprot.h"
#include "monitors/prof.h"
#include "monitors/refcount.h"
#include "monitors/watch.h"
#include "monitors/sec.h"
#include "monitors/umc.h"

namespace flexcore {

std::string_view
monitorKindName(MonitorKind kind)
{
    switch (kind) {
      case MonitorKind::kNone: return "none";
      case MonitorKind::kUmc: return "umc";
      case MonitorKind::kDift: return "dift";
      case MonitorKind::kBc: return "bc";
      case MonitorKind::kSec: return "sec";
      case MonitorKind::kProf: return "prof";
      case MonitorKind::kMemProt: return "memprot";
      case MonitorKind::kWatch: return "watch";
      case MonitorKind::kRefCount: return "refcnt";
    }
    return "?";
}

std::string_view
implModeName(ImplMode mode)
{
    switch (mode) {
      case ImplMode::kBaseline: return "baseline";
      case ImplMode::kAsic: return "asic";
      case ImplMode::kFlexFabric: return "flexcore";
      case ImplMode::kSoftware: return "software";
    }
    return "?";
}

std::unique_ptr<Monitor>
makeMonitor(MonitorKind kind, unsigned dift_tag_bits)
{
    switch (kind) {
      case MonitorKind::kNone: return nullptr;
      case MonitorKind::kUmc: return std::make_unique<UmcMonitor>();
      case MonitorKind::kDift:
        return std::make_unique<DiftMonitor>(dift_tag_bits);
      case MonitorKind::kBc: return std::make_unique<BcMonitor>();
      case MonitorKind::kSec: return std::make_unique<SecMonitor>();
      case MonitorKind::kProf: return std::make_unique<ProfMonitor>();
      case MonitorKind::kMemProt:
        return std::make_unique<MemProtMonitor>();
      case MonitorKind::kWatch:
        return std::make_unique<WatchMonitor>();
      case MonitorKind::kRefCount:
        return std::make_unique<RefCountMonitor>();
    }
    return nullptr;
}

u32
defaultFlexPeriod(MonitorKind kind)
{
    return kind == MonitorKind::kSec ? 4 : 2;
}

void
SystemConfig::finalize()
{
    if (mode == ImplMode::kBaseline || mode == ImplMode::kSoftware) {
        if (monitor != MonitorKind::kNone && mode == ImplMode::kBaseline)
            monitor = MonitorKind::kNone;
        return;
    }
    if (monitor == MonitorKind::kNone)
        FLEX_FATAL("ASIC/FlexCore mode requires a monitor kind");
    if (mode == ImplMode::kAsic) {
        fabric.period = 1;
        iface.sync_cycles = 0;   // same clock domain, direct taps
    } else {
        fabric.period =
            flex_period ? flex_period : defaultFlexPeriod(monitor);
        iface.sync_cycles = 1;
    }
}

}  // namespace flexcore
