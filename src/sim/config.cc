#include "sim/config.h"

#include <cctype>

#include "common/log.h"
#include "extensions/registry.h"

namespace flexcore {

std::string_view
monitorKindName(MonitorKind kind)
{
    if (kind == MonitorKind::kNone)
        return "none";
    const ExtensionDescriptor *desc =
        ExtensionRegistry::instance().find(kind);
    return desc ? desc->name : "?";
}

bool
parseMonitorKind(std::string_view name, MonitorKind *kind)
{
    auto isNone = [](std::string_view text) {
        if (text.size() != 4)
            return false;
        constexpr std::string_view kNoneName = "none";
        for (size_t i = 0; i < text.size(); ++i) {
            if (std::tolower(static_cast<unsigned char>(text[i])) !=
                kNoneName[i])
                return false;
        }
        return true;
    };
    if (isNone(name)) {
        *kind = MonitorKind::kNone;
        return true;
    }
    const ExtensionDescriptor *desc =
        ExtensionRegistry::instance().find(name);
    if (!desc)
        return false;
    *kind = desc->kind;
    return true;
}

std::string_view
implModeName(ImplMode mode)
{
    switch (mode) {
      case ImplMode::kBaseline: return "baseline";
      case ImplMode::kAsic: return "asic";
      case ImplMode::kFlexFabric: return "flexcore";
      case ImplMode::kSoftware: return "software";
    }
    return "?";
}

std::string_view
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::kInterp: return "interp";
      case ExecMode::kThreaded: return "threaded";
    }
    return "?";
}

bool
parseExecMode(std::string_view name, ExecMode *mode)
{
    auto matches = [&name](std::string_view want) {
        if (name.size() != want.size())
            return false;
        for (size_t i = 0; i < name.size(); ++i) {
            if (std::tolower(static_cast<unsigned char>(name[i])) !=
                want[i])
                return false;
        }
        return true;
    };
    if (matches("interp")) {
        *mode = ExecMode::kInterp;
        return true;
    }
    if (matches("threaded")) {
        *mode = ExecMode::kThreaded;
        return true;
    }
    return false;
}

std::string_view
fabricSharingName(FabricSharing sharing)
{
    switch (sharing) {
      case FabricSharing::kPerCore: return "per_core";
      case FabricSharing::kShared: return "shared";
    }
    return "?";
}

bool
parseFabricSharing(std::string_view name, FabricSharing *sharing)
{
    auto matches = [&name](std::string_view want) {
        if (name.size() != want.size())
            return false;
        for (size_t i = 0; i < name.size(); ++i) {
            if (std::tolower(static_cast<unsigned char>(name[i])) !=
                want[i])
                return false;
        }
        return true;
    };
    if (matches("per_core")) {
        *sharing = FabricSharing::kPerCore;
        return true;
    }
    if (matches("shared")) {
        *sharing = FabricSharing::kShared;
        return true;
    }
    return false;
}

bool
parseImplMode(std::string_view name, ImplMode *mode)
{
    static constexpr ImplMode kAll[] = {
        ImplMode::kBaseline, ImplMode::kAsic, ImplMode::kFlexFabric,
        ImplMode::kSoftware};
    for (ImplMode candidate : kAll) {
        const std::string_view want = implModeName(candidate);
        if (name.size() != want.size())
            continue;
        bool match = true;
        for (size_t i = 0; i < name.size(); ++i) {
            if (std::tolower(static_cast<unsigned char>(name[i])) !=
                want[i]) {
                match = false;
                break;
            }
        }
        if (match) {
            *mode = candidate;
            return true;
        }
    }
    return false;
}

std::unique_ptr<Monitor>
makeMonitor(MonitorKind kind, unsigned dift_tag_bits)
{
    const ExtensionDescriptor *desc =
        ExtensionRegistry::instance().find(kind);
    if (!desc)
        return nullptr;
    MonitorOptions options;
    options.dift_tag_bits = dift_tag_bits;
    return desc->make(options);
}

u32
defaultFlexPeriod(MonitorKind kind)
{
    const ExtensionDescriptor *desc =
        ExtensionRegistry::instance().find(kind);
    return desc ? desc->default_flex_period : 2;
}

std::string_view
configErrorName(ConfigError::Code code)
{
    switch (code) {
      case ConfigError::Code::kNone: return "none";
      case ConfigError::Code::kMissingMonitor: return "missing_monitor";
      case ConfigError::Code::kMonitorOnBaseline:
        return "monitor_on_baseline";
      case ConfigError::Code::kBadDiftTagBits:
        return "bad_dift_tag_bits";
      case ConfigError::Code::kStrayFlexPeriod:
        return "stray_flex_period";
      case ConfigError::Code::kBadCycleLimit: return "bad_cycle_limit";
      case ConfigError::Code::kBadWatchdog: return "bad_watchdog";
      case ConfigError::Code::kBadFaultPlan: return "bad_fault_plan";
      case ConfigError::Code::kBadSampleWindow:
        return "bad_sample_window";
      case ConfigError::Code::kThreadedHistograms:
        return "threaded_histograms";
      case ConfigError::Code::kSamplingHistograms:
        return "sampling_histograms";
      case ConfigError::Code::kSamplingTrace: return "sampling_trace";
      case ConfigError::Code::kSamplingExecMode:
        return "sampling_exec_mode";
      case ConfigError::Code::kSamplingSoftware:
        return "sampling_software";
      case ConfigError::Code::kBadCores: return "bad_cores";
      case ConfigError::Code::kBadFabricSharing:
        return "bad_fabric_sharing";
      case ConfigError::Code::kBadRequest: return "bad_request";
      case ConfigError::Code::kBadVersion: return "bad_version";
      case ConfigError::Code::kBadMonitor: return "bad_monitor";
      case ConfigError::Code::kBadImplMode: return "bad_impl_mode";
      case ConfigError::Code::kBadExecMode: return "bad_exec_mode";
      case ConfigError::Code::kBadWorkload: return "bad_workload";
      case ConfigError::Code::kBadSource: return "bad_source";
      case ConfigError::Code::kDeadlineExceeded:
        return "deadline_exceeded";
      case ConfigError::Code::kOverloaded: return "overloaded";
      case ConfigError::Code::kShuttingDown: return "shutting_down";
      case ConfigError::Code::kFrameTooLarge:
        return "frame_too_large";
    }
    return "?";
}

bool
parseConfigErrorName(std::string_view name, ConfigError::Code *code)
{
    static constexpr ConfigError::Code kAll[] = {
        ConfigError::Code::kNone,
        ConfigError::Code::kMissingMonitor,
        ConfigError::Code::kMonitorOnBaseline,
        ConfigError::Code::kBadDiftTagBits,
        ConfigError::Code::kStrayFlexPeriod,
        ConfigError::Code::kBadCycleLimit,
        ConfigError::Code::kBadWatchdog,
        ConfigError::Code::kBadFaultPlan,
        ConfigError::Code::kBadSampleWindow,
        ConfigError::Code::kThreadedHistograms,
        ConfigError::Code::kSamplingHistograms,
        ConfigError::Code::kSamplingTrace,
        ConfigError::Code::kSamplingExecMode,
        ConfigError::Code::kSamplingSoftware,
        ConfigError::Code::kBadCores,
        ConfigError::Code::kBadFabricSharing,
        ConfigError::Code::kBadRequest,
        ConfigError::Code::kBadVersion,
        ConfigError::Code::kBadMonitor,
        ConfigError::Code::kBadImplMode,
        ConfigError::Code::kBadExecMode,
        ConfigError::Code::kBadWorkload,
        ConfigError::Code::kBadSource,
        ConfigError::Code::kDeadlineExceeded,
        ConfigError::Code::kOverloaded,
        ConfigError::Code::kShuttingDown,
        ConfigError::Code::kFrameTooLarge,
    };
    for (ConfigError::Code candidate : kAll) {
        if (name == configErrorName(candidate)) {
            *code = candidate;
            return true;
        }
    }
    return false;
}

ConfigError
makeConfigError(ConfigError::Code code, std::string message)
{
    ConfigError error;
    error.code = code;
    error.message = std::move(message);
    return error;
}

namespace {

ConfigError
configError(ConfigError::Code code, std::string message)
{
    return makeConfigError(code, std::move(message));
}

}  // namespace

ConfigError
SystemConfig::finalize()
{
    if (finalized_)
        return {};

    // Validation: reject contradictory configurations instead of
    // silently fixing them up — a forgotten --mode or a stray --period
    // should fail loudly, not quietly change the experiment.
    if (dift_tag_bits != 1 && dift_tag_bits != 4) {
        return configError(
            ConfigError::Code::kBadDiftTagBits,
            "dift_tag_bits must be 1 or 4, not " +
                std::to_string(dift_tag_bits));
    }
    if (flex_period != 0 && mode != ImplMode::kFlexFabric) {
        return configError(
            ConfigError::Code::kStrayFlexPeriod,
            std::string("flex_period is only meaningful in flexcore "
                        "mode (mode is ") +
                std::string(implModeName(mode)) + ")");
    }
    if (mode == ImplMode::kBaseline && monitor != MonitorKind::kNone) {
        return configError(
            ConfigError::Code::kMonitorOnBaseline,
            std::string("baseline mode has no monitor hardware; drop "
                        "the monitor or pick asic/flexcore/software "
                        "mode (monitor is ") +
                std::string(monitorKindName(monitor)) + ")");
    }
    if ((mode == ImplMode::kAsic || mode == ImplMode::kFlexFabric) &&
        monitor == MonitorKind::kNone) {
        return configError(ConfigError::Code::kMissingMonitor,
                           "ASIC/FlexCore mode requires a monitor kind");
    }
    if (max_cycles == 0) {
        return configError(ConfigError::Code::kBadCycleLimit,
                           "max_cycles must be non-zero");
    }
    if (watchdog_commits != 0 && watchdog_commits >= max_cycles) {
        return configError(
            ConfigError::Code::kBadWatchdog,
            "watchdog_commits (" + std::to_string(watchdog_commits) +
                ") must be below max_cycles (" +
                std::to_string(max_cycles) +
                ") or the watchdog can never fire first");
    }
    if (std::string why = validateFaultPlan(faults); !why.empty()) {
        return configError(ConfigError::Code::kBadFaultPlan,
                           "invalid fault plan: " + why);
    }
    if (exec_mode == ExecMode::kThreaded && histograms) {
        return configError(
            ConfigError::Code::kThreadedHistograms,
            "threaded dispatch skips per-cycle bookkeeping and cannot "
            "populate per-cycle histograms; use --exec-mode interp for "
            "histogram runs");
    }
    // Note trace capture (trace_events) is legal under kThreaded: a
    // run with a trace sink attached falls back from burst dispatch to
    // the per-cycle interpreter loop (System::run), which produces a
    // byte-identical trace — and the streaming binary trace needs no
    // flag at all (tools attach a TraceStreamWriter directly).
    if (sample_period != 0 || sample_window != 0) {
        if (sample_window == 0 || sample_period == 0 ||
            sample_window > sample_period) {
            return configError(
                ConfigError::Code::kBadSampleWindow,
                "sampled timing needs 0 < sample_window (" +
                    std::to_string(sample_window) +
                    ") <= sample_period (" +
                    std::to_string(sample_period) + ")");
        }
        if (histograms) {
            return configError(
                ConfigError::Code::kSamplingHistograms,
                "sampled timing skips cycle simulation between detailed "
                "windows and cannot populate per-cycle histograms");
        }
        if (trace_events) {
            return configError(
                ConfigError::Code::kSamplingTrace,
                "sampled timing cannot capture full trace-event files; "
                "drop --trace-json or the sampling flags");
        }
        if (exec_mode != ExecMode::kInterp) {
            return configError(
                ConfigError::Code::kSamplingExecMode,
                "sampled timing replaces the execution engine; leave "
                "--exec-mode at interp");
        }
        if (mode == ImplMode::kSoftware) {
            return configError(
                ConfigError::Code::kSamplingSoftware,
                "sampled timing cannot warm through software "
                "instrumentation (the expansion is timing-driven); use "
                "asic/flexcore mode or drop the sampling flags");
        }
    }
    if (num_cores == 0 || num_cores > kMaxCores) {
        return configError(
            ConfigError::Code::kBadCores,
            "num_cores must be 1.." + std::to_string(kMaxCores) +
                ", not " + std::to_string(num_cores));
    }
    if (num_cores > 1) {
        // Multi-core runs are interpreter-only: every engine that
        // bypasses the per-cycle loop (burst dispatch, sampled
        // warming, software expansion) reasons about exactly one core,
        // and the buffering trace sink has no core column.
        if (exec_mode == ExecMode::kThreaded) {
            return configError(
                ConfigError::Code::kBadCores,
                "multi-core runs are interpreter-only; drop "
                "--exec-mode threaded or run with --cores 1");
        }
        if (sample_period != 0 || sample_window != 0) {
            return configError(
                ConfigError::Code::kBadCores,
                "sampled timing models exactly one core; drop the "
                "sampling flags or run with --cores 1");
        }
        if (mode == ImplMode::kSoftware) {
            return configError(
                ConfigError::Code::kBadCores,
                "software instrumentation models exactly one core; "
                "use asic/flexcore mode or run with --cores 1");
        }
        if (trace_events) {
            return configError(
                ConfigError::Code::kBadCores,
                "trace-event capture has no core column; use the "
                "binary --trace-out stream or run with --cores 1");
        }
    }
    for (const FaultSpec &spec : faults.specs) {
        if (spec.core >= num_cores) {
            return configError(
                ConfigError::Code::kBadFaultPlan,
                "fault spec targets core " + std::to_string(spec.core) +
                    " but the system has " + std::to_string(num_cores) +
                    (num_cores == 1 ? " core" : " cores"));
        }
    }

    if (mode == ImplMode::kAsic) {
        fabric.period = 1;
        iface.sync_cycles = 0;   // same clock domain, direct taps
    } else if (mode == ImplMode::kFlexFabric) {
        fabric.period =
            flex_period ? flex_period : defaultFlexPeriod(monitor);
        iface.sync_cycles = 1;
    }
    finalized_ = true;
    return {};
}

}  // namespace flexcore
