/**
 * @file
 * Experiment-level helpers shared by tests, benches, and examples:
 * assemble-and-run, functional verification against golden output, and
 * the summary numbers each experiment reports.
 */

#ifndef FLEXCORE_SIM_RUNNER_H_
#define FLEXCORE_SIM_RUNNER_H_

#include <utility>
#include <vector>

#include "sim/system.h"
#include "workloads/workload.h"

namespace flexcore {

/** Everything an experiment needs from one run. */
struct SimOutcome
{
    RunResult result;
    u64 forwarded = 0;       //!< packets pushed into the FFIFO
    u64 dropped = 0;
    u64 commit_stalls = 0;   //!< cycles commit stalled on a full FFIFO
    u64 meta_misses = 0;
    u64 meta_accesses = 0;
    double fwd_fraction = 0; //!< forwarded / committed instructions
    /** Requested (dotted path, value) counter samples, request order. */
    std::vector<std::pair<std::string, u64>> stats;
};

/**
 * Assemble @p source and run it under @p config. Each entry of
 * @p stat_paths is a dotted counter path under the "system" stats root
 * (e.g. "core.cycles", "bus.busy_cycles"), captured into
 * SimOutcome::stats after the run. Paths this configuration cannot
 * resolve are skipped (campaign grids mix configs); runCampaign
 * rejects paths that resolve in no row.
 */
SimOutcome runSource(const std::string &source, SystemConfig config,
                     const std::vector<std::string> &stat_paths = {});

/**
 * Run a workload and verify its console output against the golden
 * model; calls FLEX_FATAL on a functional mismatch or abnormal exit so
 * every benchmark number comes from a verified run.
 */
SimOutcome runWorkloadChecked(const Workload &workload,
                              SystemConfig config,
                              const std::vector<std::string> &stat_paths =
                                  {});

/** Geometric mean of a non-empty vector. */
double geomean(const std::vector<double> &values);

}  // namespace flexcore

#endif  // FLEXCORE_SIM_RUNNER_H_
