/**
 * @file
 * Legacy run helpers, now thin shims over SimRequest (sim_request.h).
 * New code should build a SimRequest directly; these wrappers exist for
 * one PR of migration grace and will be removed.
 */

#ifndef FLEXCORE_SIM_RUNNER_H_
#define FLEXCORE_SIM_RUNNER_H_

#include <vector>

#include "sim/sim_request.h"

namespace flexcore {

/**
 * Assemble @p source and run it under @p config.
 * @deprecated Use SimRequest(config).source(source).stats(paths).run().
 */
[[deprecated("use SimRequest(config).source(...).run()")]]
SimOutcome runSource(const std::string &source, SystemConfig config,
                     const std::vector<std::string> &stat_paths = {});

/**
 * Run a workload and verify its console output against the golden
 * model.
 * @deprecated Use SimRequest(config).workload(workload).run().
 */
[[deprecated("use SimRequest(config).workload(...).run()")]]
SimOutcome runWorkloadChecked(const Workload &workload,
                              SystemConfig config,
                              const std::vector<std::string> &stat_paths =
                                  {});

}  // namespace flexcore

#endif  // FLEXCORE_SIM_RUNNER_H_
