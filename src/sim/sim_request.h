/**
 * @file
 * SimRequest: the one way to run a simulation. A builder-style value
 * type that unifies what used to be separate run helpers /
 * ad-hoc System wiring in tools and benches:
 *
 *   SimOutcome out = SimRequest(config)
 *                        .workload(wl)          // or .source(s)/.program(p)
 *                        .stats({"core.cycles"})
 *                        .statsJson()
 *                        .run();
 *
 * run() assembles (if needed), builds the System, attaches tracing,
 * runs to completion, optionally verifies console output against the
 * workload's golden model, and captures every requested observability
 * surface into the returned SimOutcome.
 */

#ifndef FLEXCORE_SIM_SIM_REQUEST_H_
#define FLEXCORE_SIM_SIM_REQUEST_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/core.h"
#include "faults/outcome.h"
#include "sim/system.h"
#include "workloads/workload.h"

namespace flexcore {

/** Everything an experiment needs from one run. */
struct SimOutcome
{
    RunResult result;
    /**
     * Fault verdict, filled iff the config carried a FaultPlan. Fault
     * runs are classified instead of verified: a wrong console output
     * is an SDC observation, not a fatal error.
     */
    FaultReport fault;
    /** Bounded first-difference summary vs golden output (SDC only). */
    std::string golden_diff;
    u64 forwarded = 0;       //!< packets pushed into the FFIFO
    u64 dropped = 0;
    u64 commit_stalls = 0;   //!< cycles commit stalled on a full FFIFO
    u64 meta_misses = 0;
    u64 meta_accesses = 0;
    double fwd_fraction = 0; //!< forwarded / committed instructions
    /** Requested (dotted path, value) counter samples, request order. */
    std::vector<std::pair<std::string, u64>> stats;
    /** Canonical stats-tree JSON (empty unless statsJson() requested). */
    std::string stats_json;
    /** Flat stats-tree text dump (empty unless statsDump() requested). */
    std::string stats_text;
    /** Canonical per-PC hotspot report (empty unless profileJson()). */
    std::string profile_json;
};

class SimRequest
{
  public:
    explicit SimRequest(SystemConfig config) : config_(std::move(config))
    {
    }

    /** Run raw assembly source (no functional verification). */
    SimRequest &
    source(std::string asm_source)
    {
        source_ = std::move(asm_source);
        return *this;
    }

    /** Run a pre-assembled program (no functional verification). */
    SimRequest &
    program(Program prog)
    {
        program_ = std::move(prog);
        return *this;
    }

    /**
     * Run a workload; implies verify(true), so a wrong console output
     * or abnormal exit is fatal and every reported number comes from a
     * functionally verified run.
     */
    SimRequest &
    workload(Workload wl)
    {
        workload_ = std::move(wl);
        verify_ = true;
        return *this;
    }

    /**
     * Toggle golden-model verification (workload runs only). Disable
     * for scenario workloads that trap by design.
     */
    SimRequest &
    verify(bool on = true)
    {
        verify_ = on;
        return *this;
    }

    /**
     * Sample dotted counter paths under the "system" stats root (e.g.
     * "core.cycles") into SimOutcome::stats after the run. Paths this
     * configuration cannot resolve are skipped (campaign grids mix
     * configs); runCampaign rejects paths that resolve in no row.
     */
    SimRequest &
    stats(std::vector<std::string> paths)
    {
        stat_paths_ = std::move(paths);
        return *this;
    }

    /** Capture the canonical stats JSON into SimOutcome::stats_json. */
    SimRequest &
    statsJson(bool on = true)
    {
        stats_json_ = on;
        return *this;
    }

    /** Capture the flat stats text dump into SimOutcome::stats_text. */
    SimRequest &
    statsDump(bool on = true)
    {
        stats_dump_ = on;
        return *this;
    }

    /**
     * Attach a *buffering* Chrome trace-event sink for the run (null =
     * off). Sets SystemConfig::trace_events so sampled-timing configs
     * reject it with a typed error. For the streaming binary trace use
     * traceStream() instead.
     */
    SimRequest &
    trace(TraceSink *sink)
    {
        trace_ = sink;
        return *this;
    }

    /**
     * Attach a streaming binary trace writer (common/trace_stream.h).
     * Legal in every exec mode and under sampled timing (window
     * boundaries become kWindow records). Mutually exclusive with
     * trace() — there is one sink slot per run.
     */
    SimRequest &
    traceStream(TraceSink *writer)
    {
        trace_stream_ = writer;
        return *this;
    }

    /**
     * Attach an externally owned per-PC profiler; it is (re)sized and
     * zeroed at program load and filled during the run. See
     * src/core/profile.h.
     */
    SimRequest &
    profile(PcProfile *profile)
    {
        profile_ = profile;
        return *this;
    }

    /**
     * Capture the canonical per-PC hotspot report (top @p top_n PCs
     * per bucket) into SimOutcome::profile_json. Uses the profiler
     * from profile() when one is attached, else an internal one.
     */
    SimRequest &
    profileJson(u32 top_n = 10)
    {
        profile_top_ = top_n;
        return *this;
    }

    /** Attach a per-committed-instruction hook. */
    SimRequest &
    tracer(Core::Tracer hook)
    {
        tracer_ = std::move(hook);
        return *this;
    }

    /**
     * Execute the request. Exactly one of source()/program()/workload()
     * must have been set; anything else is fatal (a misbuilt experiment
     * should fail loudly, not fall back to something else).
     */
    SimOutcome run();

  private:
    SystemConfig config_;
    std::optional<std::string> source_;
    std::optional<Program> program_;
    std::optional<Workload> workload_;
    bool verify_ = false;
    std::vector<std::string> stat_paths_;
    bool stats_json_ = false;
    bool stats_dump_ = false;
    TraceSink *trace_ = nullptr;
    TraceSink *trace_stream_ = nullptr;
    PcProfile *profile_ = nullptr;
    u32 profile_top_ = 0;   //!< 0 = no profile_json capture
    Core::Tracer tracer_;
};

}  // namespace flexcore

#endif  // FLEXCORE_SIM_SIM_REQUEST_H_
