/**
 * @file
 * SimRequest: the one way to run a simulation. A builder-style value
 * type that unifies what used to be separate run helpers /
 * ad-hoc System wiring in tools and benches:
 *
 *   SimOutcome out = SimRequest(config)
 *                        .workload(wl)          // or .source(s)/.program(p)
 *                        .stats({"core.cycles"})
 *                        .statsJson()
 *                        .run();
 *
 * run() assembles (if needed), builds the System, attaches tracing,
 * runs to completion, optionally verifies console output against the
 * workload's golden model, and captures every requested observability
 * surface into the returned SimOutcome.
 *
 * SimRequest is also the simulator's *wire schema*: toJson() renders a
 * canonical, versioned JSON document and fromJson() reconstructs an
 * equivalent request from one, mapping every malformed input to a
 * typed ConfigError (never a fatal). The round trip is exact for every
 * serializable request — `fromJson(toJson(r))` produces byte-identical
 * run output — which is what lets flexcore-serve execute requests
 * built by remote clients (docs/serve.md). Requests carrying
 * process-local state (raw Program images, trace-sink pointers,
 * tracer hooks, ad-hoc Workload objects) are not serializable;
 * toJson() on one is fatal.
 */

#ifndef FLEXCORE_SIM_SIM_REQUEST_H_
#define FLEXCORE_SIM_SIM_REQUEST_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/core.h"
#include "faults/outcome.h"
#include "sim/system.h"
#include "workloads/workload.h"

namespace flexcore {

class JsonValue;

/** Everything an experiment needs from one run. */
struct SimOutcome
{
    RunResult result;
    /**
     * Fault verdict, filled iff the config carried a FaultPlan. Fault
     * runs are classified instead of verified: a wrong console output
     * is an SDC observation, not a fatal error.
     */
    FaultReport fault;
    /** Bounded first-difference summary vs golden output (SDC only). */
    std::string golden_diff;
    u64 forwarded = 0;       //!< packets pushed into the FFIFO
    u64 dropped = 0;
    u64 commit_stalls = 0;   //!< cycles commit stalled on a full FFIFO
    u64 meta_misses = 0;
    u64 meta_accesses = 0;
    double fwd_fraction = 0; //!< forwarded / committed instructions
    /** Requested (dotted path, value) counter samples, request order. */
    std::vector<std::pair<std::string, u64>> stats;
    /** Canonical stats-tree JSON (empty unless statsJson() requested). */
    std::string stats_json;
    /** Flat stats-tree text dump (empty unless statsDump() requested). */
    std::string stats_text;
    /** Canonical per-PC hotspot report (empty unless profileJson()). */
    std::string profile_json;
};

class SimRequest
{
  public:
    /** Wire-schema version accepted and emitted by to/fromJson. */
    static constexpr u32 kWireVersion = 1;

    SimRequest() = default;

    explicit SimRequest(SystemConfig config) : config_(std::move(config))
    {
    }

    /** Run raw assembly source (no functional verification). */
    SimRequest &
    source(std::string asm_source)
    {
        source_ = std::move(asm_source);
        return *this;
    }

    /** Run a pre-assembled program (no functional verification). */
    SimRequest &
    program(Program prog)
    {
        program_ = std::move(prog);
        return *this;
    }

    /**
     * Run a workload; implies verify(true), so a wrong console output
     * or abnormal exit is fatal and every reported number comes from a
     * functionally verified run.
     */
    SimRequest &
    workload(Workload wl)
    {
        workload_ = std::move(wl);
        verify_ = true;
        return *this;
    }

    /**
     * Run a named suite workload ("sha", "gmac", ..., "qsort") at the
     * given scale; fatal for unknown names (use fromJson for typed
     * rejection). Unlike workload(), the request stays serializable:
     * toJson() emits the name + scale, not the generated source.
     */
    SimRequest &workloadByName(std::string_view name,
                               WorkloadScale scale = WorkloadScale::kTest);

    /**
     * Supply an already-assembled image for the run, skipping the
     * assembly step. Composes with workload()/workloadByName()/source()
     * — the named input still provides the golden console output and
     * the wire identity; the program is trusted to be its assembly.
     * This is flexcore-serve's cache-hit path: the shared_ptr lets many
     * concurrent runs reference one immutable image.
     */
    SimRequest &
    preassembled(std::shared_ptr<const Program> prog)
    {
        preassembled_ = std::move(prog);
        return *this;
    }

    /**
     * Toggle golden-model verification (workload runs only). Disable
     * for scenario workloads that trap by design.
     */
    SimRequest &
    verify(bool on = true)
    {
        verify_ = on;
        return *this;
    }

    /**
     * Sample dotted counter paths under the "system" stats root (e.g.
     * "core.cycles") into SimOutcome::stats after the run. Paths this
     * configuration cannot resolve are skipped (campaign grids mix
     * configs); runCampaign rejects paths that resolve in no row.
     */
    SimRequest &
    stats(std::vector<std::string> paths)
    {
        stat_paths_ = std::move(paths);
        return *this;
    }

    /** Capture the canonical stats JSON into SimOutcome::stats_json. */
    SimRequest &
    statsJson(bool on = true)
    {
        stats_json_ = on;
        return *this;
    }

    /** Capture the flat stats text dump into SimOutcome::stats_text. */
    SimRequest &
    statsDump(bool on = true)
    {
        stats_dump_ = on;
        return *this;
    }

    /**
     * Attach a *buffering* Chrome trace-event sink for the run (null =
     * off). Sets SystemConfig::trace_events so sampled-timing configs
     * reject it with a typed error. For the streaming binary trace use
     * traceStream() instead.
     */
    SimRequest &
    trace(TraceSink *sink)
    {
        trace_ = sink;
        return *this;
    }

    /**
     * Attach a streaming binary trace writer (common/trace_stream.h).
     * Legal in every exec mode and under sampled timing (window
     * boundaries become kWindow records). Mutually exclusive with
     * trace() — there is one sink slot per run.
     */
    SimRequest &
    traceStream(TraceSink *writer)
    {
        trace_stream_ = writer;
        return *this;
    }

    /**
     * Attach an externally owned per-PC profiler; it is (re)sized and
     * zeroed at program load and filled during the run. See
     * src/core/profile.h.
     */
    SimRequest &
    profile(PcProfile *profile)
    {
        profile_ = profile;
        return *this;
    }

    /**
     * Capture the canonical per-PC hotspot report (top @p top_n PCs
     * per bucket) into SimOutcome::profile_json. Uses the profiler
     * from profile() when one is attached, else an internal one.
     */
    SimRequest &
    profileJson(u32 top_n = 10)
    {
        profile_top_ = top_n;
        return *this;
    }

    /** Attach a per-committed-instruction hook. */
    SimRequest &
    tracer(Core::Tracer hook)
    {
        tracer_ = std::move(hook);
        return *this;
    }

    /**
     * Attach a cooperative cancel token (common/cancel.h); the token
     * must outlive run(). A cancelled/expired token ends the run with
     * RunResult::Exit::kDeadline — reported, never verified (a
     * cancelled run has no business FLEX_FATALing on a console
     * mismatch it never got to produce). Executor-side state: tokens
     * do not serialize, and the serving layer attaches its own.
     */
    SimRequest &
    cancel(const CancelToken *token)
    {
        cancel_ = token;
        return *this;
    }

    /**
     * Request the FXTR streaming binary trace in the wire schema
     * ("output": {"trace_fxtr": true}). SimRequest itself carries no
     * sink — the executor (serveSimRequest, flexcore-serve) attaches a
     * TraceStreamWriter when this is set.
     */
    SimRequest &
    traceFxtr(bool on = true)
    {
        trace_fxtr_ = on;
        return *this;
    }

    // ---- Read-side accessors (serve / loadgen / tests) ----

    const SystemConfig &config() const { return config_; }
    SystemConfig &mutableConfig() { return config_; }

    /**
     * The assembly text this request would run: the raw source, or the
     * workload's generated source. Null for program()-only requests.
     * This is the content-address flexcore-serve hashes for its
     * assembled-program cache.
     */
    const std::string *sourceText() const;

    bool hasWorkload() const { return workload_.has_value(); }
    /** Empty unless the workload came from workloadByName(). */
    const std::string &workloadName() const { return workload_name_; }
    WorkloadScale workloadScale() const { return workload_scale_; }
    bool verifyRequested() const { return verify_; }
    const std::vector<std::string> &statPaths() const
    {
        return stat_paths_;
    }
    bool statsJsonRequested() const { return stats_json_; }
    bool statsDumpRequested() const { return stats_dump_; }
    u32 profileTop() const { return profile_top_; }
    bool traceFxtrRequested() const { return trace_fxtr_; }

    /**
     * Validate and resolve the embedded config in place, returning the
     * typed error instead of System's fatal. Idempotent; run() after a
     * successful finalizeConfig() behaves identically.
     */
    [[nodiscard]] ConfigError finalizeConfig()
    {
        return config_.finalize();
    }

    // ---- Wire schema (versioned, canonical) ----

    /**
     * Render the canonical v1 JSON document: every field is emitted,
     * always in the same order, so equal requests produce equal bytes.
     * Fatal for non-serializable requests (raw program()/workload()
     * inputs, attached sinks/hooks) — serialize intent, not pointers.
     */
    std::string toJson() const;

    /**
     * Reconstruct a request from a v1 document. Strict: unknown keys,
     * wrong types, and schema violations are rejected with a typed
     * ConfigError (kBadRequest / kBadVersion / kBadMonitor /
     * kBadImplMode / kBadExecMode / kBadWorkload), never a fatal.
     * Structural validation only — cross-field constraints are left to
     * finalizeConfig() so wire clients get the same kBad* codes local
     * CLI users do.
     */
    static bool fromJson(std::string_view text, SimRequest *out,
                         ConfigError *error);

    /** fromJson over an already-parsed document (the serve path, which
     * extracts the request as a subtree of its protocol envelope). */
    static bool fromJson(const JsonValue &doc, SimRequest *out,
                         ConfigError *error);

    /**
     * Execute the request. Exactly one of source()/program()/workload()
     * (or a lone preassembled()) must have been set; anything else is
     * fatal (a misbuilt experiment should fail loudly, not fall back to
     * something else).
     */
    SimOutcome run();

  private:
    SystemConfig config_;
    std::optional<std::string> source_;
    std::optional<Program> program_;
    std::optional<Workload> workload_;
    std::shared_ptr<const Program> preassembled_;
    std::string workload_name_;   //!< set by workloadByName() only
    WorkloadScale workload_scale_ = WorkloadScale::kTest;
    bool verify_ = false;
    std::vector<std::string> stat_paths_;
    bool stats_json_ = false;
    bool stats_dump_ = false;
    bool trace_fxtr_ = false;
    TraceSink *trace_ = nullptr;
    TraceSink *trace_stream_ = nullptr;
    PcProfile *profile_ = nullptr;
    u32 profile_top_ = 0;   //!< 0 = no profile_json capture
    const CancelToken *cancel_ = nullptr;
    Core::Tracer tracer_;
};

}  // namespace flexcore

#endif  // FLEXCORE_SIM_SIM_REQUEST_H_
