/**
 * @file
 * Parallel experiment campaigns: a declarative sweep spec expands into
 * independent simulation jobs (one System instance each), the jobs run
 * on a work-stealing thread pool, and the outcomes merge into a stable,
 * sorted result table with a canonical JSON rendering.
 *
 * Determinism contract: every job derives its RNG seed from its job
 * key (a pure function of the swept parameters, never of submission or
 * completion order), each job simulates in a private System, and the
 * merged results are sorted by key — so `--jobs 1` and `--jobs N`
 * produce byte-identical JSON. See docs/campaign.md.
 */

#ifndef FLEXCORE_SIM_CAMPAIGN_H_
#define FLEXCORE_SIM_CAMPAIGN_H_

#include <string>
#include <vector>

#include "sim/sim_request.h"
#include "workloads/workload.h"

namespace flexcore {

/** One independent simulation: a workload under one configuration. */
struct CampaignJob
{
    std::string key;       //!< unique identity; results sort on this
    Workload workload;
    SystemConfig config;   //!< fault_seed = jobSeed(key) in expanded jobs
    /** Resolved fabric/ASIC clock divisor (0 off the fabric). Kept
     * separate from config.flex_period, which is only set in fabric
     * mode (finalize() rejects it elsewhere). */
    u32 resolved_period = 0;
};

/** One merged row of a campaign: the job identity plus its outcome. */
struct CampaignResult
{
    std::string key;
    std::string workload;
    MonitorKind monitor = MonitorKind::kNone;
    ImplMode mode = ImplMode::kBaseline;
    u32 flex_period = 0;     //!< resolved divisor (0 off the fabric)
    u32 fifo_depth = 0;      //!< resolved FFIFO depth (0 off the fabric)
    u32 dcache_bytes = 0;
    u32 cores = 1;           //!< number of cores in the job's system
    u64 seed = 0;            //!< the job's fault_seed
    SimOutcome outcome;
};

/**
 * A declarative sweep grid. Axes cross-product; invalid combinations
 * are skipped rather than crossed:
 *  - kBaseline ignores the monitor/period/FIFO axes (one job per
 *    workload × D-cache point);
 *  - kSoftware ignores period/FIFO and requires a monitor;
 *  - kAsic runs at period 1 regardless of flex_periods;
 *  - kFlexFabric resolves period 0 to defaultFlexPeriod(monitor).
 * Duplicate keys after resolution (e.g. periods {0, 2} for UMC) are
 * emitted once.
 */
struct SweepSpec
{
    std::string name = "sweep";
    std::vector<Workload> workloads;
    std::vector<MonitorKind> monitors{MonitorKind::kNone};
    std::vector<ImplMode> modes{ImplMode::kBaseline};
    std::vector<u32> flex_periods{0};   //!< 0 = per-monitor default
    std::vector<u32> fifo_depths{0};    //!< 0 = base config's depth
    std::vector<u32> dcache_bytes{0};   //!< 0 = base config's D$ size
    /** Core-count axis (docs/multicore.md); the fabric topology comes
     * from base.fabric_sharing. Software mode skips points above one
     * core (finalize() would reject the combination). */
    std::vector<u32> core_counts{1};
    SystemConfig base;                  //!< template for every job
};

/**
 * Canonical identity of one job. The same parameters always produce
 * the same key, independent of how or when the job was created. A
 * "|cN" suffix appears only for multi-core jobs, so every pre-existing
 * single-core key (and its derived seed) is byte-identical.
 */
std::string jobKey(std::string_view workload, MonitorKind monitor,
                   ImplMode mode, u32 flex_period, u32 fifo_depth,
                   u32 dcache_bytes, u32 cores = 1);

/** Deterministic per-job seed: FNV-1a 64 over the key bytes. */
u64 jobSeed(std::string_view key);

/** Expand a sweep grid into jobs, sorted by key, seeds applied. */
std::vector<CampaignJob> expandSweep(const SweepSpec &spec);

struct CampaignOptions
{
    unsigned jobs = 0;      //!< worker threads; 0 = hardware threads
    bool progress = false;  //!< live "done/total" line on stderr
    std::string label = "campaign";   //!< progress-line prefix
    /** Verify console output against the golden model (FLEX_FATAL on
     * mismatch). Disable for scenario runs that trap by design. */
    bool verify = true;
    /**
     * Dotted counter paths (see SimRequest::stats) sampled and embedded
     * per job in each JSON row as a "stats" object. Unknown paths
     * FLEX_FATAL.
     */
    std::vector<std::string> stat_paths;
    /**
     * When > 0, attach a per-PC profiler (core/profile.h) to every job
     * and embed its hotspot report (top profile_top PCs per cycle
     * bucket) in each JSON row as a "profile" object. 0 (default)
     * leaves existing campaign files byte-identical.
     */
    u32 profile_top = 0;
};

/**
 * Run every job (parallel over @p opts.jobs workers) and merge the
 * outcomes sorted by key. The result is identical for any worker
 * count, including 1.
 */
std::vector<CampaignResult> runCampaign(
    const std::vector<CampaignJob> &jobs,
    const CampaignOptions &opts = {});

/** Find the result with exactly @p key (null if absent). */
const CampaignResult *findResult(
    const std::vector<CampaignResult> &results, std::string_view key);

/**
 * Render results as canonical JSON (sorted rows, fixed field order,
 * shortest-round-trip doubles) — the byte-identity surface for the
 * determinism tests. Schema: docs/campaign.md.
 */
std::string campaignJson(std::string_view name,
                         const std::vector<CampaignResult> &results);

/** Write campaignJson to @p path ("-" = stdout; FLEX_FATAL on I/O
 * failure). */
void writeCampaignJson(const std::string &path, std::string_view name,
                       const std::vector<CampaignResult> &results);

}  // namespace flexcore

#endif  // FLEXCORE_SIM_CAMPAIGN_H_
