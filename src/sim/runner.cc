#include "sim/runner.h"

namespace flexcore {

// The shim bodies are the only sanctioned callers of the deprecated
// API (they *are* it); silence the self-referential warning.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

SimOutcome
runSource(const std::string &source, SystemConfig config,
          const std::vector<std::string> &stat_paths)
{
    return SimRequest(std::move(config))
        .source(source)
        .stats(stat_paths)
        .run();
}

SimOutcome
runWorkloadChecked(const Workload &workload, SystemConfig config,
                   const std::vector<std::string> &stat_paths)
{
    return SimRequest(std::move(config))
        .workload(workload)
        .stats(stat_paths)
        .run();
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace flexcore

// flexcore::SimOutcome used to live here; sim_request.h owns it now.
