#include "sim/runner.h"

#include <cmath>

#include "assembler/assembler.h"
#include "common/log.h"

namespace flexcore {

SimOutcome
runSource(const std::string &source, SystemConfig config,
          const std::vector<std::string> &stat_paths)
{
    const Program program = Assembler::assembleOrDie(source);
    System system(std::move(config));
    system.load(program);

    SimOutcome outcome;
    outcome.result = system.run();
    // A path that does not resolve for this configuration is skipped,
    // not fatal: campaign grids mix configs (a baseline row has no
    // "interface" group). runCampaign rejects paths no row resolves.
    for (const std::string &path : stat_paths) {
        if (const auto value = system.stats().tryLookup(path))
            outcome.stats.emplace_back(path, *value);
    }
    if (FlexInterface *iface = system.iface()) {
        outcome.forwarded = iface->forwardedCount();
        outcome.dropped = iface->droppedCount();
        outcome.commit_stalls = iface->stallCycles();
        if (outcome.result.instructions > 0) {
            outcome.fwd_fraction =
                static_cast<double>(outcome.forwarded) /
                static_cast<double>(outcome.result.instructions);
        }
    }
    if (Fabric *fabric = system.fabric()) {
        outcome.meta_misses = fabric->metaCache().misses();
        outcome.meta_accesses =
            fabric->metaCache().misses() + fabric->metaCache().hits();
    }
    return outcome;
}

SimOutcome
runWorkloadChecked(const Workload &workload, SystemConfig config,
                   const std::vector<std::string> &stat_paths)
{
    SimOutcome outcome =
        runSource(workload.source, std::move(config), stat_paths);
    if (outcome.result.exit != RunResult::Exit::kExited) {
        FLEX_FATAL("workload '", workload.name, "' did not exit cleanly: ",
                   exitName(outcome.result.exit), " (",
                   outcome.result.trap_reason, ") after ",
                   outcome.result.cycles, " cycles at pc=",
                   outcome.result.trap.pc);
    }
    if (outcome.result.console != workload.expected_console) {
        FLEX_FATAL("workload '", workload.name,
                   "' output mismatch:\n  expected: ",
                   workload.expected_console,
                   "\n  actual:   ", outcome.result.console);
    }
    return outcome;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        FLEX_PANIC("geomean of empty vector");
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace flexcore
