#include "sim/sim_request.h"

#include "assembler/assembler.h"
#include "common/json.h"
#include "common/jsonutil.h"
#include "common/log.h"
#include "core/profile.h"

namespace flexcore {

SimRequest &
SimRequest::workloadByName(std::string_view name, WorkloadScale scale)
{
    Workload wl;
    if (!makeWorkload(name, scale, &wl)) {
        FLEX_FATAL("unknown workload '", std::string(name), "' (known: ",
                   knownWorkloadNames(), ")");
    }
    workload_ = std::move(wl);
    workload_name_ = std::string(name);
    workload_scale_ = scale;
    verify_ = true;
    return *this;
}

const std::string *
SimRequest::sourceText() const
{
    if (workload_)
        return &workload_->source;
    if (source_)
        return &*source_;
    return nullptr;
}

// ---------------------------------------------------------------------------
// Wire schema v1
//
// {"v": 1,
//  "config": {"monitor": ..., "mode": ..., "exec_mode": ...,
//             ["cores": N, "fabric_sharing": "per_core"|"shared",]
//             "flex_period": N, "dift_tag_bits": N, "fifo_depth": N,
//             "mcache_bytes": N, "icache_bytes": N, "dcache_bytes": N,
//             "precise_exceptions": B, "histograms": B,
//             "fast_forward": B, "max_cycles": N, "watchdog_commits": N,
//             "sample_window": N, "sample_period": N, "fault_rate": F,
//             "fault_seed": N, "faults": [...]},
//  "input": {"workload": "...", "scale": "..."} | {"source": "..."},
//  "verify": B,
//  "output": {"stats": [...], "stats_json": B, "stats_dump": B,
//             "profile_top": N, "trace_fxtr": B}}
//
// toJson always emits every field in this order; fromJson treats every
// field except "v" and "input" as optional (omitted = default) and
// rejects unknown keys, so typos fail loudly instead of silently
// running a different experiment. Multi-core fields ("cores",
// "fabric_sharing", a fault's "core") are emitted only when they hold
// non-default values, so every single-core request — and every
// pre-multi-core client — round-trips byte-identically under v1.

std::string
SimRequest::toJson() const
{
    if (program_)
        FLEX_FATAL("SimRequest::toJson: a raw program() image is not "
                   "serializable; use source() or workloadByName()");
    if (workload_ && workload_name_.empty())
        FLEX_FATAL("SimRequest::toJson: an ad-hoc workload() object is "
                   "not serializable; use workloadByName()");
    if (!workload_ && !source_)
        FLEX_FATAL("SimRequest::toJson: request has no serializable "
                   "input (source or named workload)");
    if (trace_ || trace_stream_ || profile_ || tracer_)
        FLEX_FATAL("SimRequest::toJson: attached sinks/hooks are "
                   "process-local and not serializable; request wire "
                   "outputs via statsJson()/profileJson()/traceFxtr()");

    std::string out;
    out.reserve(512);
    out += "{\"v\": " + std::to_string(kWireVersion);

    out += ", \"config\": {\"monitor\": \"";
    out += monitorKindName(config_.monitor);
    out += "\", \"mode\": \"";
    out += implModeName(config_.mode);
    out += "\", \"exec_mode\": \"";
    out += execModeName(config_.exec_mode);
    out += "\"";
    if (config_.num_cores != 1) {
        out += ", \"cores\": " + std::to_string(config_.num_cores);
        out += ", \"fabric_sharing\": \"";
        out += fabricSharingName(config_.fabric_sharing);
        out += "\"";
    }
    out += ", \"flex_period\": " + std::to_string(config_.flex_period);
    out += ", \"dift_tag_bits\": " +
           std::to_string(config_.dift_tag_bits);
    out += ", \"fifo_depth\": " +
           std::to_string(config_.iface.fifo_depth);
    out += ", \"mcache_bytes\": " +
           std::to_string(config_.fabric.meta_cache.size_bytes);
    out += ", \"icache_bytes\": " +
           std::to_string(config_.core.icache.size_bytes);
    out += ", \"dcache_bytes\": " +
           std::to_string(config_.core.dcache.size_bytes);
    out += std::string(", \"precise_exceptions\": ") +
           (config_.precise_exceptions ? "true" : "false");
    out += std::string(", \"histograms\": ") +
           (config_.histograms ? "true" : "false");
    out += std::string(", \"fast_forward\": ") +
           (config_.fast_forward ? "true" : "false");
    out += ", \"max_cycles\": " + std::to_string(config_.max_cycles);
    out += ", \"watchdog_commits\": " +
           std::to_string(config_.watchdog_commits);
    out += ", \"sample_window\": " +
           std::to_string(config_.sample_window);
    out += ", \"sample_period\": " +
           std::to_string(config_.sample_period);
    out += ", \"fault_rate\": " + jsonDouble(config_.fault_rate);
    out += ", \"fault_seed\": " + std::to_string(config_.fault_seed);
    out += ", \"faults\": [";
    for (size_t i = 0; i < config_.faults.specs.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += faultSpecJson(config_.faults.specs[i]);
    }
    out += "]}";

    out += ", \"input\": {";
    if (!workload_name_.empty()) {
        out += "\"workload\": \"" + jsonEscape(workload_name_) +
               "\", \"scale\": \"";
        out += workloadScaleName(workload_scale_);
        out += "\"";
    } else {
        out += "\"source\": \"" + jsonEscape(*source_) + "\"";
    }
    out += "}";

    out += std::string(", \"verify\": ") + (verify_ ? "true" : "false");

    out += ", \"output\": {\"stats\": [";
    for (size_t i = 0; i < stat_paths_.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "\"" + jsonEscape(stat_paths_[i]) + "\"";
    }
    out += "]";
    out += std::string(", \"stats_json\": ") +
           (stats_json_ ? "true" : "false");
    out += std::string(", \"stats_dump\": ") +
           (stats_dump_ ? "true" : "false");
    out += ", \"profile_top\": " + std::to_string(profile_top_);
    out += std::string(", \"trace_fxtr\": ") +
           (trace_fxtr_ ? "true" : "false");
    out += "}}";
    return out;
}

namespace {

bool
wireFail(ConfigError *error, ConfigError::Code code, std::string why)
{
    if (error)
        *error = makeConfigError(code, std::move(why));
    return false;
}

bool
badRequest(ConfigError *error, std::string why)
{
    return wireFail(error, ConfigError::Code::kBadRequest,
                    std::move(why));
}

bool
getBool(const JsonValue &v, std::string_view key, bool *out,
        ConfigError *error)
{
    if (!v.isBool()) {
        return badRequest(error, "\"" + std::string(key) +
                                     "\" must be a boolean");
    }
    *out = v.boolean;
    return true;
}

bool
getU64(const JsonValue &v, std::string_view key, u64 *out,
       ConfigError *error)
{
    if (!v.isNumber() || !v.is_uint) {
        return badRequest(error, "\"" + std::string(key) +
                                     "\" must be a non-negative integer");
    }
    *out = v.uint;
    return true;
}

bool
getU32(const JsonValue &v, std::string_view key, u32 *out,
       ConfigError *error)
{
    u64 wide = 0;
    if (!getU64(v, key, &wide, error))
        return false;
    if (wide > 0xffffffffULL) {
        return badRequest(error, "\"" + std::string(key) +
                                     "\" does not fit in 32 bits");
    }
    *out = static_cast<u32>(wide);
    return true;
}

bool
getString(const JsonValue &v, std::string_view key, std::string *out,
          ConfigError *error)
{
    if (!v.isString()) {
        return badRequest(error, "\"" + std::string(key) +
                                     "\" must be a string");
    }
    *out = v.str;
    return true;
}

bool
parseWireFaultSpec(const JsonValue &v, FaultSpec *out,
                   ConfigError *error)
{
    if (!v.isObject())
        return badRequest(error, "each fault must be an object");
    bool have_kind = false;
    bool have_when = false;
    for (const auto &[key, value] : v.object) {
        if (key == "kind") {
            std::string name;
            if (!getString(value, key, &name, error))
                return false;
            if (!parseFaultKind(name, &out->kind)) {
                return badRequest(error,
                                  "unknown fault kind \"" + name + "\"");
            }
            have_kind = true;
        } else if (key == "trigger") {
            std::string name;
            if (!getString(value, key, &name, error))
                return false;
            if (name == "cycle") {
                out->trigger = FaultTrigger::kCycle;
            } else if (name == "commit") {
                out->trigger = FaultTrigger::kCommit;
            } else {
                return badRequest(error, "fault trigger must be "
                                         "\"cycle\" or \"commit\"");
            }
        } else if (key == "when") {
            if (!getU64(value, key, &out->when, error))
                return false;
            have_when = true;
        } else if (key == "target") {
            if (!getU32(value, key, &out->target, error))
                return false;
        } else if (key == "bit") {
            if (!getU32(value, key, &out->bit, error))
                return false;
        } else if (key == "field") {
            std::string name;
            if (!getString(value, key, &name, error))
                return false;
            if (!parsePacketField(name, &out->field)) {
                return badRequest(
                    error, "unknown packet field \"" + name + "\"");
            }
        } else if (key == "core") {
            if (!getU32(value, key, &out->core, error))
                return false;
        } else {
            return badRequest(error,
                              "unknown fault key \"" + key + "\"");
        }
    }
    if (!have_kind || !have_when)
        return badRequest(error, "a fault needs \"kind\" and \"when\"");
    return true;
}

bool
parseWireConfig(const JsonValue &v, SystemConfig *config,
                ConfigError *error)
{
    if (!v.isObject())
        return badRequest(error, "\"config\" must be an object");
    for (const auto &[key, value] : v.object) {
        if (key == "monitor") {
            std::string name;
            if (!getString(value, key, &name, error))
                return false;
            if (!parseMonitorKind(name, &config->monitor)) {
                return wireFail(error, ConfigError::Code::kBadMonitor,
                                "unknown monitor \"" + name + "\"");
            }
        } else if (key == "mode") {
            std::string name;
            if (!getString(value, key, &name, error))
                return false;
            if (!parseImplMode(name, &config->mode)) {
                return wireFail(error, ConfigError::Code::kBadImplMode,
                                "unknown mode \"" + name + "\"");
            }
        } else if (key == "exec_mode") {
            std::string name;
            if (!getString(value, key, &name, error))
                return false;
            if (!parseExecMode(name, &config->exec_mode)) {
                return wireFail(error, ConfigError::Code::kBadExecMode,
                                "unknown exec_mode \"" + name + "\"");
            }
        } else if (key == "cores") {
            if (!getU32(value, key, &config->num_cores, error))
                return false;
        } else if (key == "fabric_sharing") {
            std::string name;
            if (!getString(value, key, &name, error))
                return false;
            if (!parseFabricSharing(name, &config->fabric_sharing)) {
                return wireFail(
                    error, ConfigError::Code::kBadFabricSharing,
                    "unknown fabric_sharing \"" + name + "\"");
            }
        } else if (key == "flex_period") {
            if (!getU32(value, key, &config->flex_period, error))
                return false;
        } else if (key == "dift_tag_bits") {
            if (!getU32(value, key, &config->dift_tag_bits, error))
                return false;
        } else if (key == "fifo_depth") {
            if (!getU32(value, key, &config->iface.fifo_depth, error))
                return false;
        } else if (key == "mcache_bytes") {
            if (!getU32(value, key, &config->fabric.meta_cache.size_bytes,
                        error))
                return false;
        } else if (key == "icache_bytes") {
            if (!getU32(value, key, &config->core.icache.size_bytes,
                        error))
                return false;
        } else if (key == "dcache_bytes") {
            if (!getU32(value, key, &config->core.dcache.size_bytes,
                        error))
                return false;
        } else if (key == "precise_exceptions") {
            if (!getBool(value, key, &config->precise_exceptions, error))
                return false;
        } else if (key == "histograms") {
            if (!getBool(value, key, &config->histograms, error))
                return false;
        } else if (key == "fast_forward") {
            if (!getBool(value, key, &config->fast_forward, error))
                return false;
        } else if (key == "max_cycles") {
            if (!getU64(value, key, &config->max_cycles, error))
                return false;
        } else if (key == "watchdog_commits") {
            if (!getU64(value, key, &config->watchdog_commits, error))
                return false;
        } else if (key == "sample_window") {
            if (!getU64(value, key, &config->sample_window, error))
                return false;
        } else if (key == "sample_period") {
            if (!getU64(value, key, &config->sample_period, error))
                return false;
        } else if (key == "fault_rate") {
            if (!value.isNumber() || value.num < 0) {
                return badRequest(error, "\"fault_rate\" must be a "
                                         "non-negative number");
            }
            config->fault_rate = value.num;
        } else if (key == "fault_seed") {
            if (!getU64(value, key, &config->fault_seed, error))
                return false;
        } else if (key == "faults") {
            if (!value.isArray())
                return badRequest(error, "\"faults\" must be an array");
            for (const JsonValue &element : value.array) {
                FaultSpec spec;
                if (!parseWireFaultSpec(element, &spec, error))
                    return false;
                config->faults.specs.push_back(spec);
            }
        } else {
            return badRequest(error,
                              "unknown config key \"" + key + "\"");
        }
    }
    return true;
}

}  // namespace

bool
SimRequest::fromJson(std::string_view text, SimRequest *out,
                     ConfigError *error)
{
    JsonValue doc;
    std::string parse_error;
    if (!parseJson(text, &doc, &parse_error))
        return badRequest(error, parse_error);
    return fromJson(doc, out, error);
}

bool
SimRequest::fromJson(const JsonValue &doc, SimRequest *out,
                     ConfigError *error)
{
    if (!doc.isObject())
        return badRequest(error, "request must be a JSON object");

    const JsonValue *v = nullptr;
    const JsonValue *config = nullptr;
    const JsonValue *input = nullptr;
    const JsonValue *verify = nullptr;
    const JsonValue *output = nullptr;
    for (const auto &[key, value] : doc.object) {
        if (key == "v")
            v = &value;
        else if (key == "config")
            config = &value;
        else if (key == "input")
            input = &value;
        else if (key == "verify")
            verify = &value;
        else if (key == "output")
            output = &value;
        else
            return badRequest(error,
                              "unknown request key \"" + key + "\"");
    }

    if (!v || !v->isNumber() || !v->is_uint) {
        return wireFail(error, ConfigError::Code::kBadVersion,
                        "request needs an integer \"v\" version field");
    }
    if (v->uint != kWireVersion) {
        return wireFail(error, ConfigError::Code::kBadVersion,
                        "unsupported request version " +
                            std::to_string(v->uint) + " (this build "
                            "speaks version " +
                            std::to_string(kWireVersion) + ")");
    }

    SimRequest req;
    if (config && !parseWireConfig(*config, &req.config_, error))
        return false;

    if (!input)
        return badRequest(error, "request needs an \"input\" object");
    if (!input->isObject())
        return badRequest(error, "\"input\" must be an object");
    std::string workload_name;
    std::string scale_name;
    bool have_scale = false;
    for (const auto &[key, value] : input->object) {
        if (key == "workload") {
            if (!getString(value, key, &workload_name, error))
                return false;
        } else if (key == "scale") {
            if (!getString(value, key, &scale_name, error))
                return false;
            have_scale = true;
        } else if (key == "source") {
            std::string source;
            if (!getString(value, key, &source, error))
                return false;
            req.source_ = std::move(source);
        } else {
            return badRequest(error,
                              "unknown input key \"" + key + "\"");
        }
    }
    if (!workload_name.empty()) {
        if (req.source_) {
            return badRequest(error, "input has both \"workload\" and "
                                     "\"source\"; pick one");
        }
        WorkloadScale scale = WorkloadScale::kTest;
        if (have_scale && !parseWorkloadScale(scale_name, &scale)) {
            return wireFail(error, ConfigError::Code::kBadWorkload,
                            "unknown workload scale \"" + scale_name +
                                "\" (use \"test\" or \"full\")");
        }
        Workload wl;
        if (!makeWorkload(workload_name, scale, &wl)) {
            return wireFail(error, ConfigError::Code::kBadWorkload,
                            "unknown workload \"" + workload_name +
                                "\" (known: " + knownWorkloadNames() +
                                ")");
        }
        req.workload_ = std::move(wl);
        req.workload_name_ = workload_name;
        req.workload_scale_ = scale;
        req.verify_ = true;
    } else if (have_scale) {
        return badRequest(error,
                          "\"scale\" is only meaningful with a "
                          "\"workload\" input");
    } else if (!req.source_) {
        return badRequest(error, "input needs a \"workload\" name or a "
                                 "\"source\" string");
    }

    if (verify && !getBool(*verify, "verify", &req.verify_, error))
        return false;
    if (req.verify_ && !req.workload_) {
        return badRequest(error, "\"verify\" requires a workload input "
                                 "(the golden output comes from it)");
    }

    if (output) {
        if (!output->isObject())
            return badRequest(error, "\"output\" must be an object");
        for (const auto &[key, value] : output->object) {
            if (key == "stats") {
                if (!value.isArray()) {
                    return badRequest(error,
                                      "\"stats\" must be an array");
                }
                for (const JsonValue &element : value.array) {
                    std::string path;
                    if (!getString(element, "stats[]", &path, error))
                        return false;
                    req.stat_paths_.push_back(std::move(path));
                }
            } else if (key == "stats_json") {
                if (!getBool(value, key, &req.stats_json_, error))
                    return false;
            } else if (key == "stats_dump") {
                if (!getBool(value, key, &req.stats_dump_, error))
                    return false;
            } else if (key == "profile_top") {
                if (!getU32(value, key, &req.profile_top_, error))
                    return false;
            } else if (key == "trace_fxtr") {
                if (!getBool(value, key, &req.trace_fxtr_, error))
                    return false;
            } else {
                return badRequest(error,
                                  "unknown output key \"" + key + "\"");
            }
        }
    }

    *out = std::move(req);
    if (error)
        *error = {};
    return true;
}

SimOutcome
SimRequest::run()
{
    const int inputs = (source_ ? 1 : 0) + (program_ ? 1 : 0) +
                       (workload_ ? 1 : 0);
    if (program_ && preassembled_) {
        FLEX_FATAL("SimRequest: program() and preassembled() are "
                   "mutually exclusive");
    }
    if (inputs != 1 && !(inputs == 0 && preassembled_)) {
        FLEX_FATAL("SimRequest needs exactly one of source()/program()/"
                   "workload(), got ", inputs);
    }
    if (verify_ && !workload_) {
        FLEX_FATAL("SimRequest::verify() needs a workload (the golden "
                   "console output comes from it)");
    }

    Program assembled;
    const Program *prog = nullptr;
    if (preassembled_) {
        prog = preassembled_.get();
    } else if (program_) {
        assembled = std::move(*program_);
        prog = &assembled;
    } else {
        const std::string &src =
            workload_ ? workload_->source : *source_;
        assembled = Assembler::assembleOrDie(src);
        prog = &assembled;
    }

    // Mark buffered trace capture before finalize() (which System's
    // constructor runs) so sampled-timing configs reject it with a
    // typed error instead of silently missing events. The streaming
    // sink deliberately does not set the flag: it is legal everywhere.
    if (trace_)
        config_.trace_events = true;
    if (trace_ && trace_stream_) {
        FLEX_FATAL("SimRequest has one trace-sink slot: use trace() or "
                   "traceStream(), not both");
    }

    const bool fault_run = !config_.faults.empty();
    System system(std::move(config_));
    const u32 ncores = system.numCores();
    // Profilers attach before load(): load() sizes each table for the
    // program text, and attribution must start at cycle zero for each
    // profile total to equal its core's cycles. An external profile_
    // observes core 0 only; profile_top_ gets one table per core.
    std::vector<PcProfile> local_profiles;
    PcProfile *profile = profile_;
    if (!profile && profile_top_) {
        local_profiles.resize(ncores);
        profile = &local_profiles[0];
    }
    if (profile_)
        system.attachProfile(profile_);
    for (u32 i = 0; i < local_profiles.size(); ++i)
        system.attachProfileAt(i, &local_profiles[i]);
    system.load(*prog);
    if (trace_)
        system.attachTrace(trace_);
    if (trace_stream_)
        system.attachTrace(trace_stream_);
    if (tracer_)
        system.core().setTracer(std::move(tracer_));
    if (cancel_)
        system.setCancel(cancel_);

    SimOutcome outcome;
    outcome.result = system.run();

    // On an N-core system every core runs the same image and the
    // run's console is the per-core consoles concatenated in core
    // order, so the golden output is N copies of the single-core
    // expectation (registered workloads never diverge by core id).
    std::string expected_console;
    if (workload_) {
        for (u32 i = 0; i < ncores; ++i)
            expected_console += workload_->expected_console;
    }

    if (fault_run) {
        // Fault runs are classified, never fatally verified: a wrong
        // exit or console is the experiment's *observation*.
        const std::string *golden =
            workload_ ? &expected_console : nullptr;
        const InjectionLog log = system.injector()
                                     ? system.injector()->log()
                                     : InjectionLog{};
        outcome.fault = classifyFaultRun(outcome.result, log, golden);
        if (outcome.fault.outcome == FaultOutcome::kSdc) {
            outcome.golden_diff = boundedDiff(
                expected_console, outcome.result.console);
        }
    } else if (verify_ &&
               outcome.result.exit != RunResult::Exit::kDeadline) {
        // A cancelled run is reported as kDeadline, not verified: it
        // was cut off mid-flight, so "did not exit cleanly" would be
        // the cancellation's fault, not the workload's.
        if (outcome.result.exit != RunResult::Exit::kExited) {
            FLEX_FATAL("workload '", workload_->name,
                       "' did not exit cleanly: ",
                       exitName(outcome.result.exit), " (",
                       outcome.result.trap_reason, ") after ",
                       outcome.result.cycles, " cycles at pc=",
                       outcome.result.trap.pc);
        }
        if (outcome.result.console != expected_console) {
            FLEX_FATAL("workload '", workload_->name,
                       "' output mismatch: ",
                       boundedDiff(expected_console,
                                   outcome.result.console));
        }
    }

    // A path that does not resolve for this configuration is skipped,
    // not fatal: campaign grids mix configs (a baseline row has no
    // "interface" group). runCampaign rejects paths no row resolves.
    for (const std::string &path : stat_paths_) {
        if (const auto value = system.stats().tryLookup(path))
            outcome.stats.emplace_back(path, *value);
    }
    if (FlexInterface *iface = system.iface()) {
        outcome.forwarded = iface->forwardedCount();
        outcome.dropped = iface->droppedCount();
        outcome.commit_stalls = iface->stallCycles();
        if (outcome.result.instructions > 0) {
            outcome.fwd_fraction =
                static_cast<double>(outcome.forwarded) /
                static_cast<double>(outcome.result.instructions);
        }
    }
    if (Fabric *fabric = system.fabric()) {
        outcome.meta_misses = fabric->metaCache().misses();
        outcome.meta_accesses =
            fabric->metaCache().misses() + fabric->metaCache().hits();
    }
    if (stats_json_)
        outcome.stats_json = system.stats().json();
    if (stats_dump_)
        outcome.stats_text = system.stats().dump();
    if (profile_top_ && profile) {
        if (local_profiles.size() > 1) {
            // Per-core tables: each core's profile provably sums to
            // that core's cycles, so emit one object per core.
            std::string &json = outcome.profile_json;
            json = "{\"cores\": [";
            for (size_t i = 0; i < local_profiles.size(); ++i) {
                if (i > 0)
                    json += ", ";
                json += local_profiles[i].json(profile_top_);
            }
            json += "]}";
        } else {
            outcome.profile_json = profile->json(profile_top_);
        }
    }
    return outcome;
}

}  // namespace flexcore
