#include "sim/sim_request.h"

#include "assembler/assembler.h"
#include "common/log.h"
#include "core/profile.h"

namespace flexcore {

SimOutcome
SimRequest::run()
{
    const int inputs = (source_ ? 1 : 0) + (program_ ? 1 : 0) +
                       (workload_ ? 1 : 0);
    if (inputs != 1) {
        FLEX_FATAL("SimRequest needs exactly one of source()/program()/"
                   "workload(), got ", inputs);
    }
    if (verify_ && !workload_) {
        FLEX_FATAL("SimRequest::verify() needs a workload (the golden "
                   "console output comes from it)");
    }

    Program prog;
    if (program_) {
        prog = std::move(*program_);
    } else {
        const std::string &src =
            workload_ ? workload_->source : *source_;
        prog = Assembler::assembleOrDie(src);
    }

    // Mark buffered trace capture before finalize() (which System's
    // constructor runs) so sampled-timing configs reject it with a
    // typed error instead of silently missing events. The streaming
    // sink deliberately does not set the flag: it is legal everywhere.
    if (trace_)
        config_.trace_events = true;
    if (trace_ && trace_stream_) {
        FLEX_FATAL("SimRequest has one trace-sink slot: use trace() or "
                   "traceStream(), not both");
    }

    const bool fault_run = !config_.faults.empty();
    System system(std::move(config_));
    // The profiler attaches before load(): load() sizes its table for
    // the program text, and attribution must start at cycle zero for
    // the profile total to equal core.cycles.
    PcProfile local_profile;
    PcProfile *profile =
        profile_ ? profile_ : (profile_top_ ? &local_profile : nullptr);
    if (profile)
        system.attachProfile(profile);
    system.load(prog);
    if (trace_)
        system.attachTrace(trace_);
    if (trace_stream_)
        system.attachTrace(trace_stream_);
    if (tracer_)
        system.core().setTracer(std::move(tracer_));

    SimOutcome outcome;
    outcome.result = system.run();

    if (fault_run) {
        // Fault runs are classified, never fatally verified: a wrong
        // exit or console is the experiment's *observation*.
        const std::string *golden =
            workload_ ? &workload_->expected_console : nullptr;
        const InjectionLog log = system.injector()
                                     ? system.injector()->log()
                                     : InjectionLog{};
        outcome.fault = classifyFaultRun(outcome.result, log, golden);
        if (outcome.fault.outcome == FaultOutcome::kSdc) {
            outcome.golden_diff = boundedDiff(
                workload_->expected_console, outcome.result.console);
        }
    } else if (verify_) {
        if (outcome.result.exit != RunResult::Exit::kExited) {
            FLEX_FATAL("workload '", workload_->name,
                       "' did not exit cleanly: ",
                       exitName(outcome.result.exit), " (",
                       outcome.result.trap_reason, ") after ",
                       outcome.result.cycles, " cycles at pc=",
                       outcome.result.trap.pc);
        }
        if (outcome.result.console != workload_->expected_console) {
            FLEX_FATAL("workload '", workload_->name,
                       "' output mismatch: ",
                       boundedDiff(workload_->expected_console,
                                   outcome.result.console));
        }
    }

    // A path that does not resolve for this configuration is skipped,
    // not fatal: campaign grids mix configs (a baseline row has no
    // "interface" group). runCampaign rejects paths no row resolves.
    for (const std::string &path : stat_paths_) {
        if (const auto value = system.stats().tryLookup(path))
            outcome.stats.emplace_back(path, *value);
    }
    if (FlexInterface *iface = system.iface()) {
        outcome.forwarded = iface->forwardedCount();
        outcome.dropped = iface->droppedCount();
        outcome.commit_stalls = iface->stallCycles();
        if (outcome.result.instructions > 0) {
            outcome.fwd_fraction =
                static_cast<double>(outcome.forwarded) /
                static_cast<double>(outcome.result.instructions);
        }
    }
    if (Fabric *fabric = system.fabric()) {
        outcome.meta_misses = fabric->metaCache().misses();
        outcome.meta_accesses =
            fabric->metaCache().misses() + fabric->metaCache().hits();
    }
    if (stats_json_)
        outcome.stats_json = system.stats().json();
    if (stats_dump_)
        outcome.stats_text = system.stats().dump();
    if (profile_top_ && profile)
        outcome.profile_json = profile->json(profile_top_);
    return outcome;
}

}  // namespace flexcore
