#include "sim/sim_response.h"

#include <optional>

#include "assembler/assembler.h"
#include "common/json.h"
#include "common/jsonutil.h"
#include "common/log.h"
#include "common/trace_stream.h"
#include "core/trap.h"
#include "faults/outcome.h"

namespace flexcore {

u64
fnv1a64(std::string_view data)
{
    // Same constants as campaign.cc's jobSeed: a pure function of the
    // bytes, so the cache key never depends on arrival order.
    u64 hash = 0xcbf29ce484222325ull;
    for (char c : data) {
        hash ^= static_cast<u8>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

// ---------------------------------------------------------------------------
// ProgramCache

std::shared_ptr<const Program>
ProgramCache::lookup(u64 hash)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = programs_.find(hash);
    if (it == programs_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    return it->second;
}

void
ProgramCache::insert(u64 hash, std::shared_ptr<const Program> program)
{
    std::lock_guard<std::mutex> lock(mutex_);
    programs_.try_emplace(hash, std::move(program));
}

u64
ProgramCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

u64
ProgramCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

size_t
ProgramCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return programs_.size();
}

// ---------------------------------------------------------------------------
// Response wire schema

namespace {

constexpr RunResult::Exit kAllExits[] = {
    RunResult::Exit::kExited,    RunResult::Exit::kMonitorTrap,
    RunResult::Exit::kCoreTrap,  RunResult::Exit::kMaxCycles,
    RunResult::Exit::kHang,      RunResult::Exit::kDeadline,
};

constexpr TrapKind kAllTrapKinds[] = {
    TrapKind::kNone,        TrapKind::kMonitor,
    TrapKind::kDivByZero,   TrapKind::kMemAlign,
    TrapKind::kIllegalInstr, TrapKind::kWindowError,
    TrapKind::kBadSyscall,
};

bool
parseExitName(std::string_view name, RunResult::Exit *out)
{
    for (RunResult::Exit exit : kAllExits) {
        if (name == exitName(exit)) {
            *out = exit;
            return true;
        }
    }
    return false;
}

bool
parseTrapKindName(std::string_view name, TrapKind *out)
{
    for (TrapKind kind : kAllTrapKinds) {
        if (name == trapKindName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

bool
parseFaultOutcomeName(std::string_view name, FaultOutcome *out)
{
    for (unsigned i = 0; i < kNumFaultOutcomes; ++i) {
        const auto candidate = static_cast<FaultOutcome>(i);
        if (name == faultOutcomeName(candidate)) {
            *out = candidate;
            return true;
        }
    }
    return false;
}

void
appendJsonString(std::string *out, std::string_view key,
                 std::string_view value)
{
    *out += "\"";
    *out += key;
    *out += "\": \"";
    *out += jsonEscape(value);
    *out += "\"";
}

std::string
runResultJson(const RunResult &r)
{
    std::string out = "{\"exit\": \"";
    out += exitName(r.exit);
    out += "\", \"exit_code\": " + std::to_string(r.exit_code);
    out += ", \"trap_kind\": \"";
    out += trapKindName(r.trap.kind);
    out += "\", \"trap_pc\": " + std::to_string(r.trap.pc);
    out += ", ";
    appendJsonString(&out, "trap_reason", r.trap_reason);
    out += ", \"trap_inst\": " + std::to_string(r.trap_inst);
    out += ", \"cycles\": " + std::to_string(r.cycles);
    out += ", \"instructions\": " + std::to_string(r.instructions);
    out += ", ";
    appendJsonString(&out, "console", r.console);
    out += std::string(", \"sampled\": ") + (r.sampled ? "true" : "false");
    out += ", \"estimated_cycles\": " + std::to_string(r.estimated_cycles);
    out += ", \"detailed_cycles\": " + std::to_string(r.detailed_cycles);
    out += ", \"detailed_instructions\": " +
           std::to_string(r.detailed_instructions);
    out += "}";
    return out;
}

std::string
faultReportJson(const FaultReport &f)
{
    std::string out = "{\"outcome\": \"";
    out += faultOutcomeName(f.outcome);
    out += "\", \"applied\": " + std::to_string(f.applied);
    out += ", \"skipped\": " + std::to_string(f.skipped);
    out += ", \"first_injection_cycle\": " +
           std::to_string(f.first_injection_cycle);
    out += ", \"detection_latency\": " +
           std::to_string(f.detection_latency);
    out += "}";
    return out;
}

bool
docFail(std::string *error, std::string why)
{
    if (error && error->empty())
        *error = std::move(why);
    return false;
}

bool
docString(const JsonValue &v, std::string_view key, std::string *out,
          std::string *error)
{
    if (!v.isString()) {
        return docFail(error, "\"" + std::string(key) +
                                  "\" must be a string");
    }
    *out = v.str;
    return true;
}

bool
docU64(const JsonValue &v, std::string_view key, u64 *out,
       std::string *error)
{
    if (!v.isNumber() || !v.is_uint) {
        return docFail(error, "\"" + std::string(key) +
                                  "\" must be a non-negative integer");
    }
    *out = v.uint;
    return true;
}

bool
docU32(const JsonValue &v, std::string_view key, u32 *out,
       std::string *error)
{
    u64 wide = 0;
    if (!docU64(v, key, &wide, error))
        return false;
    if (wide > 0xffffffffULL) {
        return docFail(error, "\"" + std::string(key) +
                                  "\" does not fit in 32 bits");
    }
    *out = static_cast<u32>(wide);
    return true;
}

bool
docBool(const JsonValue &v, std::string_view key, bool *out,
        std::string *error)
{
    if (!v.isBool()) {
        return docFail(error, "\"" + std::string(key) +
                                  "\" must be a boolean");
    }
    *out = v.boolean;
    return true;
}

bool
parseRunResult(const JsonValue &v, RunResult *out, std::string *error)
{
    if (!v.isObject())
        return docFail(error, "\"result\" must be an object");
    for (const auto &[key, value] : v.object) {
        if (key == "exit") {
            std::string name;
            if (!docString(value, key, &name, error))
                return false;
            if (!parseExitName(name, &out->exit))
                return docFail(error, "unknown exit \"" + name + "\"");
        } else if (key == "exit_code") {
            if (!docU32(value, key, &out->exit_code, error))
                return false;
        } else if (key == "trap_kind") {
            std::string name;
            if (!docString(value, key, &name, error))
                return false;
            if (!parseTrapKindName(name, &out->trap.kind)) {
                return docFail(error,
                               "unknown trap kind \"" + name + "\"");
            }
        } else if (key == "trap_pc") {
            u64 pc = 0;
            if (!docU64(value, key, &pc, error))
                return false;
            out->trap.pc = static_cast<Addr>(pc);
        } else if (key == "trap_reason") {
            if (!docString(value, key, &out->trap_reason, error))
                return false;
        } else if (key == "trap_inst") {
            if (!docU32(value, key, &out->trap_inst, error))
                return false;
        } else if (key == "cycles") {
            if (!docU64(value, key, &out->cycles, error))
                return false;
        } else if (key == "instructions") {
            if (!docU64(value, key, &out->instructions, error))
                return false;
        } else if (key == "console") {
            if (!docString(value, key, &out->console, error))
                return false;
        } else if (key == "sampled") {
            if (!docBool(value, key, &out->sampled, error))
                return false;
        } else if (key == "estimated_cycles") {
            if (!docU64(value, key, &out->estimated_cycles, error))
                return false;
        } else if (key == "detailed_cycles") {
            if (!docU64(value, key, &out->detailed_cycles, error))
                return false;
        } else if (key == "detailed_instructions") {
            if (!docU64(value, key, &out->detailed_instructions, error))
                return false;
        } else {
            return docFail(error,
                           "unknown result key \"" + key + "\"");
        }
    }
    return true;
}

bool
parseFaultReport(const JsonValue &v, FaultReport *out,
                 std::string *error)
{
    if (!v.isObject())
        return docFail(error, "\"fault\" must be an object or null");
    for (const auto &[key, value] : v.object) {
        if (key == "outcome") {
            std::string name;
            if (!docString(value, key, &name, error))
                return false;
            if (!parseFaultOutcomeName(name, &out->outcome)) {
                return docFail(error,
                               "unknown fault outcome \"" + name + "\"");
            }
        } else if (key == "applied") {
            if (!docU64(value, key, &out->applied, error))
                return false;
        } else if (key == "skipped") {
            if (!docU64(value, key, &out->skipped, error))
                return false;
        } else if (key == "first_injection_cycle") {
            if (!docU64(value, key, &out->first_injection_cycle, error))
                return false;
        } else if (key == "detection_latency") {
            if (!value.isNumber()) {
                return docFail(error, "\"detection_latency\" must be "
                                      "a number");
            }
            out->detection_latency =
                value.is_uint ? static_cast<s64>(value.uint)
                              : static_cast<s64>(value.num);
        } else {
            return docFail(error, "unknown fault key \"" + key + "\"");
        }
    }
    return true;
}

}  // namespace

std::string
simResponseJson(const SimResponse &response)
{
    std::string out = "{\"v\": " + std::to_string(SimRequest::kWireVersion);
    if (response.error) {
        out += ", \"ok\": false, \"error\": {\"code\": \"";
        out += configErrorName(response.error.code);
        out += "\", ";
        appendJsonString(&out, "message", response.error.message);
        out += "}}";
        return out;
    }
    out += ", \"ok\": true";
    out += std::string(", \"cache_hit\": ") +
           (response.cache_hit ? "true" : "false");
    out += ", \"source_hash\": " + std::to_string(response.source_hash);
    out += ", \"result\": " + runResultJson(response.result);
    out += ", \"fault\": ";
    out += response.fault_run ? faultReportJson(response.fault) : "null";
    out += ", ";
    appendJsonString(&out, "golden_diff", response.golden_diff);
    out += ", \"stats\": [";
    for (size_t i = 0; i < response.stats.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "{";
        appendJsonString(&out, "path", response.stats[i].first);
        out += ", \"value\": " + std::to_string(response.stats[i].second);
        out += "}";
    }
    out += "], ";
    appendJsonString(&out, "stats_json", response.stats_json);
    out += ", ";
    appendJsonString(&out, "stats_dump", response.stats_text);
    out += ", ";
    appendJsonString(&out, "profile_json", response.profile_json);
    out += ", \"trace_bytes\": " + std::to_string(response.trace_bytes);
    out += "}";
    return out;
}

bool
simResponseFromJson(std::string_view text, SimResponse *out,
                    std::string *error)
{
    if (error)
        error->clear();
    *out = SimResponse{};
    JsonValue doc;
    std::string parse_error;
    if (!parseJson(text, &doc, &parse_error))
        return docFail(error, parse_error);
    if (!doc.isObject())
        return docFail(error, "response must be a JSON object");

    bool ok = false;
    bool have_ok = false;
    const JsonValue *fault = nullptr;
    for (const auto &[key, value] : doc.object) {
        if (key == "v") {
            u64 version = 0;
            if (!docU64(value, key, &version, error))
                return false;
            if (version != SimRequest::kWireVersion) {
                return docFail(error, "unsupported response version " +
                                          std::to_string(version));
            }
        } else if (key == "ok") {
            if (!docBool(value, key, &ok, error))
                return false;
            have_ok = true;
        } else if (key == "error") {
            if (!value.isObject())
                return docFail(error, "\"error\" must be an object");
            std::string code_name;
            for (const auto &[ekey, evalue] : value.object) {
                if (ekey == "code") {
                    if (!docString(evalue, ekey, &code_name, error))
                        return false;
                } else if (ekey == "message") {
                    if (!docString(evalue, ekey, &out->error.message,
                                   error))
                        return false;
                } else {
                    return docFail(error, "unknown error key \"" +
                                              ekey + "\"");
                }
            }
            if (!parseConfigErrorName(code_name, &out->error.code)) {
                return docFail(error, "unknown error code \"" +
                                          code_name + "\"");
            }
        } else if (key == "cache_hit") {
            if (!docBool(value, key, &out->cache_hit, error))
                return false;
        } else if (key == "source_hash") {
            if (!docU64(value, key, &out->source_hash, error))
                return false;
        } else if (key == "result") {
            if (!parseRunResult(value, &out->result, error))
                return false;
        } else if (key == "fault") {
            fault = &value;
        } else if (key == "golden_diff") {
            if (!docString(value, key, &out->golden_diff, error))
                return false;
        } else if (key == "stats") {
            if (!value.isArray())
                return docFail(error, "\"stats\" must be an array");
            for (const JsonValue &element : value.array) {
                if (!element.isObject()) {
                    return docFail(error,
                                   "each stats entry must be an object");
                }
                std::string path;
                u64 sample = 0;
                for (const auto &[skey, svalue] : element.object) {
                    if (skey == "path") {
                        if (!docString(svalue, skey, &path, error))
                            return false;
                    } else if (skey == "value") {
                        if (!docU64(svalue, skey, &sample, error))
                            return false;
                    } else {
                        return docFail(error, "unknown stats key \"" +
                                                  skey + "\"");
                    }
                }
                out->stats.emplace_back(std::move(path), sample);
            }
        } else if (key == "stats_json") {
            if (!docString(value, key, &out->stats_json, error))
                return false;
        } else if (key == "stats_dump") {
            if (!docString(value, key, &out->stats_text, error))
                return false;
        } else if (key == "profile_json") {
            if (!docString(value, key, &out->profile_json, error))
                return false;
        } else if (key == "trace_bytes") {
            if (!docU64(value, key, &out->trace_bytes, error))
                return false;
        } else {
            return docFail(error,
                           "unknown response key \"" + key + "\"");
        }
    }
    if (!have_ok)
        return docFail(error, "response needs an \"ok\" field");
    if (!ok && !out->error) {
        return docFail(error,
                       "error response carries no \"error\" object");
    }
    if (fault && !fault->isNull()) {
        out->fault_run = true;
        if (!parseFaultReport(*fault, &out->fault, error))
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// serveSimRequest

SimResponse
serveSimRequest(SimRequest request, ProgramCache *cache,
                std::string *trace_out, const CancelToken *cancel)
{
    SimResponse response;
    if (cancel && cancel->expired()) {
        // The request spent its whole deadline queued (or the server
        // is past drain-timeout); don't burn cycles on a run whose
        // answer nobody is waiting for.
        response.error = makeConfigError(
            ConfigError::Code::kDeadlineExceeded,
            "deadline expired before the simulation started");
        return response;
    }
    if (ConfigError err = request.finalizeConfig()) {
        response.error = std::move(err);
        return response;
    }
    response.fault_run = !request.config().faults.empty();

    if (const std::string *src = request.sourceText()) {
        response.source_hash = fnv1a64(*src);
        std::shared_ptr<const Program> cached =
            cache ? cache->lookup(response.source_hash) : nullptr;
        if (cached) {
            response.cache_hit = true;
            request.preassembled(std::move(cached));
        } else {
            auto fresh = std::make_shared<Program>();
            Assembler assembler;
            if (!assembler.assemble(*src, fresh.get())) {
                response.error =
                    makeConfigError(ConfigError::Code::kBadSource,
                                    assembler.errorText());
                return response;
            }
            if (cache)
                cache->insert(response.source_hash, fresh);
            request.preassembled(std::move(fresh));
        }
    }

    std::optional<TraceStreamWriter> writer;
    if (request.traceFxtrRequested() && trace_out) {
        trace_out->clear();
        writer.emplace(trace_out);
        request.traceStream(&*writer);
    }

    if (cancel)
        request.cancel(cancel);
    SimOutcome outcome = request.run();
    if (outcome.result.exit == RunResult::Exit::kDeadline) {
        // Mid-run cancellation: surface the typed error; the partial
        // RunResult still rides along in response.result for
        // diagnostics (cycles burned before the cut).
        response.error = makeConfigError(
            ConfigError::Code::kDeadlineExceeded,
            "deadline exceeded: " + outcome.result.trap_reason);
    }
    if (writer) {
        writer->finish();
        // An error response carries no out-of-band trace frame (the
        // wire document omits trace_bytes on errors, and sending an
        // unannounced frame would desynchronize the stream).
        if (!response.error)
            response.trace_bytes = trace_out->size();
        else
            trace_out->clear();
    }

    response.result = std::move(outcome.result);
    response.fault = outcome.fault;
    response.golden_diff = std::move(outcome.golden_diff);
    response.stats = std::move(outcome.stats);
    response.stats_json = std::move(outcome.stats_json);
    response.stats_text = std::move(outcome.stats_text);
    response.profile_json = std::move(outcome.profile_json);
    return response;
}

}  // namespace flexcore
