#include "sim/campaign.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <set>

#include "common/ioutil.h"
#include "common/jsonutil.h"
#include "common/log.h"
#include "common/threadpool.h"

namespace flexcore {

namespace {

/** Parameters of one grid point after mode-specific resolution. */
struct ResolvedPoint
{
    MonitorKind monitor = MonitorKind::kNone;
    ImplMode mode = ImplMode::kBaseline;
    u32 period = 0;
    u32 fifo = 0;
    u32 dcache = 0;
    u32 cores = 1;
};

}  // namespace

std::string
jobKey(std::string_view workload, MonitorKind monitor, ImplMode mode,
       u32 flex_period, u32 fifo_depth, u32 dcache_bytes, u32 cores)
{
    std::string key;
    key += workload;
    key += '|';
    key += monitorKindName(monitor);
    key += '|';
    key += implModeName(mode);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "|p%u|f%u|d%u", flex_period,
                  fifo_depth, dcache_bytes);
    key += buf;
    if (cores != 1) {
        // Suffix only on multi-core jobs: single-core keys (and the
        // seeds hashed from them) keep their pre-multi-core bytes.
        std::snprintf(buf, sizeof(buf), "|c%u", cores);
        key += buf;
    }
    return key;
}

u64
jobSeed(std::string_view key)
{
    // FNV-1a 64: a pure function of the key bytes, so the seed can
    // never depend on submission or completion order.
    u64 hash = 0xcbf29ce484222325ull;
    for (char c : key) {
        hash ^= static_cast<u8>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::vector<CampaignJob>
expandSweep(const SweepSpec &spec)
{
    if (spec.workloads.empty())
        FLEX_FATAL("sweep '", spec.name, "' has no workloads");

    // Resolve the mode-dependent axes first so duplicate grid points
    // (e.g. flex_periods {0, 2} for UMC) collapse before expansion.
    std::vector<ResolvedPoint> points;
    std::set<std::string> seen;
    const u32 base_fifo = spec.base.iface.fifo_depth;
    const u32 base_dcache = spec.base.core.dcache.size_bytes;
    for (u32 cores : spec.core_counts) {
      for (ImplMode mode : spec.modes) {
        for (MonitorKind monitor : spec.monitors) {
            for (u32 period : spec.flex_periods) {
                for (u32 fifo : spec.fifo_depths) {
                    for (u32 dcache : spec.dcache_bytes) {
                        // Multi-core is interpreter-hardware only;
                        // finalize() rejects software instrumentation.
                        if (mode == ImplMode::kSoftware && cores > 1)
                            continue;
                        ResolvedPoint pt;
                        pt.mode = mode;
                        pt.cores = cores ? cores : 1;
                        pt.dcache = dcache ? dcache : base_dcache;
                        switch (mode) {
                          case ImplMode::kBaseline:
                            // No monitor hardware: the monitor,
                            // period, and FIFO axes are meaningless.
                            break;
                          case ImplMode::kSoftware:
                            if (monitor == MonitorKind::kNone)
                                continue;
                            pt.monitor = monitor;
                            break;
                          case ImplMode::kAsic:
                            if (monitor == MonitorKind::kNone)
                                continue;
                            pt.monitor = monitor;
                            pt.period = 1;
                            pt.fifo = fifo ? fifo : base_fifo;
                            break;
                          case ImplMode::kFlexFabric:
                            if (monitor == MonitorKind::kNone)
                                continue;
                            pt.monitor = monitor;
                            pt.period = period
                                            ? period
                                            : defaultFlexPeriod(monitor);
                            pt.fifo = fifo ? fifo : base_fifo;
                            break;
                        }
                        const std::string id = jobKey(
                            "", pt.monitor, pt.mode, pt.period, pt.fifo,
                            pt.dcache, pt.cores);
                        if (seen.insert(id).second)
                            points.push_back(pt);
                    }
                }
            }
        }
      }
    }

    std::vector<CampaignJob> jobs;
    jobs.reserve(spec.workloads.size() * points.size());
    for (const Workload &workload : spec.workloads) {
        for (const ResolvedPoint &pt : points) {
            CampaignJob job;
            job.key = jobKey(workload.name, pt.monitor, pt.mode,
                             pt.period, pt.fifo, pt.dcache, pt.cores);
            job.workload = workload;
            job.config = spec.base;
            job.config.monitor = pt.monitor;
            job.config.mode = pt.mode;
            job.config.num_cores = pt.cores;
            // flex_period is only valid (and only meaningful) in
            // fabric mode; the resolved period still identifies ASIC
            // rows (period 1) in the key and the result table.
            job.config.flex_period =
                pt.mode == ImplMode::kFlexFabric ? pt.period : 0;
            job.resolved_period = pt.period;
            if (pt.fifo)
                job.config.iface.fifo_depth = pt.fifo;
            job.config.core.dcache.size_bytes = pt.dcache;
            job.config.fault_seed = jobSeed(job.key);
            jobs.push_back(std::move(job));
        }
    }
    std::sort(jobs.begin(), jobs.end(),
              [](const CampaignJob &a, const CampaignJob &b) {
                  return a.key < b.key;
              });
    return jobs;
}

std::vector<CampaignResult>
runCampaign(const std::vector<CampaignJob> &jobs,
            const CampaignOptions &opts)
{
    std::vector<CampaignResult> results(jobs.size());

    std::atomic<size_t> done{0};
    std::mutex progress_mutex;
    const auto report = [&](size_t finished) {
        if (!opts.progress)
            return;
        std::lock_guard<std::mutex> lock(progress_mutex);
        std::fprintf(stderr, "\r[%s] %zu/%zu jobs", opts.label.c_str(),
                     finished, jobs.size());
        if (finished == jobs.size())
            std::fputc('\n', stderr);
        std::fflush(stderr);
    };

    {
        ThreadPool pool(opts.jobs);
        for (size_t i = 0; i < jobs.size(); ++i) {
            pool.submit([&, i] {
                const CampaignJob &job = jobs[i];
                CampaignResult &row = results[i];
                row.key = job.key;
                row.workload = job.workload.name;
                row.monitor = job.config.monitor;
                row.mode = job.config.mode;
                row.flex_period = job.resolved_period;
                row.fifo_depth =
                    (job.config.mode == ImplMode::kAsic ||
                     job.config.mode == ImplMode::kFlexFabric)
                        ? job.config.iface.fifo_depth
                        : 0;
                row.dcache_bytes = job.config.core.dcache.size_bytes;
                row.cores = job.config.num_cores;
                row.seed = job.config.fault_seed;
                SimRequest request(job.config);
                if (opts.verify)
                    request.workload(job.workload);
                else
                    request.source(job.workload.source);
                if (opts.profile_top)
                    request.profileJson(opts.profile_top);
                row.outcome = request.stats(opts.stat_paths).run();
                report(done.fetch_add(1, std::memory_order_acq_rel) + 1);
            });
        }
        pool.wait();
    }

    // Merge order is the key order, never the completion order.
    std::sort(results.begin(), results.end(),
              [](const CampaignResult &a, const CampaignResult &b) {
                  return a.key < b.key;
              });

    // Rows silently skip paths their configuration lacks (a baseline
    // row has no "interface" group), but a path *no* row resolved is a
    // typo, not heterogeneity — reject it loudly.
    for (const std::string &path : opts.stat_paths) {
        const bool resolved_somewhere = std::any_of(
            results.begin(), results.end(),
            [&](const CampaignResult &row) {
                return std::any_of(
                    row.outcome.stats.begin(), row.outcome.stats.end(),
                    [&](const auto &kv) { return kv.first == path; });
            });
        if (!results.empty() && !resolved_somewhere) {
            FLEX_FATAL("stat path '", path,
                       "' matched no job in this campaign (dotted "
                       "counter path under the system root, e.g. "
                       "core.cycles)");
        }
    }
    return results;
}

const CampaignResult *
findResult(const std::vector<CampaignResult> &results,
           std::string_view key)
{
    for (const CampaignResult &row : results) {
        if (row.key == key)
            return &row;
    }
    return nullptr;
}

std::string
campaignJson(std::string_view name,
             const std::vector<CampaignResult> &results)
{
    std::string out;
    out += "{\n  \"campaign\": \"";
    out += jsonEscape(name);
    out += "\",\n  \"results\": [\n";
    char buf[512];
    for (size_t i = 0; i < results.size(); ++i) {
        const CampaignResult &row = results[i];
        out += "    {\"key\": \"";
        out += jsonEscape(row.key);
        out += "\", \"workload\": \"";
        out += jsonEscape(row.workload);
        out += "\", \"monitor\": \"";
        out += monitorKindName(row.monitor);
        out += "\", \"mode\": \"";
        out += implModeName(row.mode);
        std::snprintf(
            buf, sizeof(buf),
            "\", \"flex_period\": %u, \"fifo_depth\": %u, "
            "\"dcache_bytes\": %u, \"seed\": %" PRIu64
            ", \"exit\": \"%s\", \"exit_code\": %u, "
            "\"cycles\": %" PRIu64 ", \"instructions\": %" PRIu64
            ", \"forwarded\": %" PRIu64 ", \"dropped\": %" PRIu64
            ", \"commit_stalls\": %" PRIu64 ", \"meta_misses\": %" PRIu64
            ", \"meta_accesses\": %" PRIu64 ", \"fwd_fraction\": %.17g",
            row.flex_period, row.fifo_depth, row.dcache_bytes, row.seed,
            std::string(exitName(row.outcome.result.exit)).c_str(),
            row.outcome.result.exit_code, row.outcome.result.cycles,
            row.outcome.result.instructions, row.outcome.forwarded,
            row.outcome.dropped, row.outcome.commit_stalls,
            row.outcome.meta_misses, row.outcome.meta_accesses,
            row.outcome.fwd_fraction);
        out += buf;
        if (row.cores != 1) {
            // The core count rides only on multi-core rows, so every
            // pre-multi-core campaign file keeps its old bytes.
            std::snprintf(buf, sizeof(buf), ", \"cores\": %u",
                          row.cores);
            out += buf;
        }
        const RunResult &rr = row.outcome.result;
        if (rr.exit == RunResult::Exit::kMonitorTrap ||
            rr.exit == RunResult::Exit::kCoreTrap ||
            rr.exit == RunResult::Exit::kHang) {
            // Trap detail rides only on rows that actually trapped or
            // hung, so trap-free campaign files keep their old bytes.
            std::snprintf(buf, sizeof(buf),
                          ", \"trap_kind\": \"%s\", \"trap_pc\": %u, "
                          "\"trap_inst\": %u, \"trap_reason\": \"%s\"",
                          std::string(trapKindName(rr.trap.kind)).c_str(),
                          rr.trap.pc, rr.trap_inst,
                          jsonEscape(rr.trap_reason).c_str());
            out += buf;
        }
        if (row.outcome.fault.outcome != FaultOutcome::kNotClassified) {
            const FaultReport &fr = row.outcome.fault;
            std::snprintf(
                buf, sizeof(buf),
                ", \"fault\": {\"outcome\": \"%s\", \"applied\": %" PRIu64
                ", \"skipped\": %" PRIu64
                ", \"first_injection_cycle\": %" PRId64
                ", \"detection_latency\": %" PRId64 "}",
                std::string(faultOutcomeName(fr.outcome)).c_str(),
                fr.applied, fr.skipped,
                fr.first_injection_cycle == kCycleNever
                    ? s64{-1}
                    : static_cast<s64>(fr.first_injection_cycle),
                fr.detection_latency);
            out += buf;
        }
        if (!row.outcome.stats.empty()) {
            // Request order (the sweep's --stat order), not sorted.
            // Which paths a row carries is a pure function of its
            // config (unresolvable ones are skipped), so the bytes
            // stay deterministic for any worker count.
            out += ", \"stats\": {";
            for (size_t s = 0; s < row.outcome.stats.size(); ++s) {
                if (s > 0)
                    out += ", ";
                out += "\"" + jsonEscape(row.outcome.stats[s].first) +
                       "\": " + std::to_string(row.outcome.stats[s].second);
            }
            out += "}";
        }
        if (!row.outcome.profile_json.empty()) {
            // Per-PC attribution rides only on rows whose campaign
            // requested it, so existing files keep their old bytes.
            out += ", \"profile\": ";
            out += row.outcome.profile_json;
        }
        out += "}";
        out += (i + 1 < results.size()) ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

void
writeCampaignJson(const std::string &path, std::string_view name,
                  const std::vector<CampaignResult> &results)
{
    // The document already ends in a newline, so the shared writer's
    // trailing-newline normalization keeps existing files byte-stable
    // while adding the "-" = stdout convention.
    writeTextOrStdout(path, campaignJson(name, results));
}

}  // namespace flexcore
