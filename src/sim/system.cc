#include "sim/system.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "core/profile.h"
#include "core/threaded.h"
#include "extensions/registry.h"
#include "faults/injector.h"

namespace flexcore {

std::string_view
exitName(RunResult::Exit exit)
{
    switch (exit) {
      case RunResult::Exit::kExited: return "exited";
      case RunResult::Exit::kMonitorTrap: return "monitor_trap";
      case RunResult::Exit::kCoreTrap: return "core_trap";
      case RunResult::Exit::kMaxCycles: return "max_cycles";
      case RunResult::Exit::kHang: return "hang";
      case RunResult::Exit::kDeadline: return "deadline";
    }
    return "?";
}

namespace {

/**
 * Simulated cycles between CancelToken polls. One steady_clock read
 * per 64Ki cycles is noise next to the work those cycles do, yet even
 * the slowest configurations clear that many cycles in well under a
 * millisecond — so a deadline is honored within milliseconds of
 * expiry no matter what the guest program does (commit loops defeat
 * the watchdog; never-idle loops defeat fast-forward; neither defeats
 * a cycle counter).
 */
constexpr Cycle kCancelCheckCycles = 65536;

}  // namespace

System::System(SystemConfig config)
    : config_(std::move(config)), stats_("system")
{
    if (ConfigError error = config_.finalize()) {
        FLEX_FATAL("invalid system configuration [",
                   configErrorName(error.code), "]: ", error.message);
    }
    config_.fabric.histograms = config_.histograms;
    memory_ = std::make_unique<Memory>();
    bus_ = std::make_unique<Bus>(&stats_, config_.sdram);
    bus_->setSampling(config_.histograms);
    core_ = std::make_unique<Core>(&stats_, memory_.get(), bus_.get(),
                                   config_.core);

    if (config_.mode == ImplMode::kAsic ||
        config_.mode == ImplMode::kFlexFabric) {
        monitor_ = makeMonitor(config_.monitor, config_.dift_tag_bits);
        iface_ = std::make_unique<FlexInterface>(&stats_, config_.iface);
        fabric_ = std::make_unique<Fabric>(&stats_, iface_.get(),
                                           bus_.get(), monitor_.get(),
                                           config_.fabric);
        core_->attachInterface(iface_.get());
    } else if (config_.mode == ImplMode::kSoftware) {
        core_->attachSoftwareMonitor(
            ExtensionRegistry::instance().softwareModel(config_.monitor));
    }

    if (config_.fault_rate > 0.0) {
        core_->alu().enableFaultInjection(config_.fault_rate,
                                          config_.fault_seed);
    }

    if (config_.num_cores > 1)
        buildExtraCores();

    if (!config_.faults.empty()) {
        injector_ = std::make_unique<FaultInjector>(this, config_.faults);
        core_->setFaultInjector(injector_.get());
    }

    if (config_.exec_mode == ExecMode::kThreaded ||
        config_.sample_period != 0) {
        engine_ = std::make_unique<ThreadedEngine>(
            core_.get(), bus_.get(), iface_.get(), fabric_.get(),
            monitor_.get(), injector_.get());
    }
}

void
System::buildExtraCores()
{
    const u32 ncores = config_.num_cores;
    const Addr wbase = SystemConfig::kSharedWindowBase;
    const u32 wbytes = SystemConfig::kSharedWindowBytes;
    const bool hardware = config_.mode == ImplMode::kAsic ||
                          config_.mode == ImplMode::kFlexFabric;

    bus_->setNumPorts(ncores);
    // Private memory per core, aliased onto one backing store over the
    // coherent window: each core runs its own copy of the image (the
    // contention workload), and only window accesses observe peers.
    shared_mem_ = std::make_unique<Memory>();
    memory_->setSharedWindow(shared_mem_.get(), wbase, wbytes);
    if (hardware) {
        shared_tags_ = std::make_unique<TagStore>();
        monitor_->memTags().setSharedWindow(shared_tags_.get(), wbase,
                                            wbytes);
        iface_->setNumCores(ncores);
    }

    for (u32 i = 1; i < ncores; ++i) {
        auto group = std::make_unique<StatGroup>("c" + std::to_string(i),
                                                 &stats_);
        auto mem = std::make_unique<Memory>();
        mem->setSharedWindow(shared_mem_.get(), wbase, wbytes);
        CoreParams core_params = config_.core;
        core_params.stack_top -= i * SystemConfig::kStackStridePerCore;
        auto core = std::make_unique<Core>(group.get(), mem.get(),
                                           bus_.get(), core_params);
        core->setCoreId(static_cast<u8>(i));
        if (config_.fault_rate > 0.0) {
            core->alu().enableFaultInjection(config_.fault_rate,
                                             config_.fault_seed + i);
        }
        if (hardware) {
            auto mon = makeMonitor(config_.monitor, config_.dift_tag_bits);
            mon->memTags().setSharedWindow(shared_tags_.get(), wbase,
                                           wbytes);
            if (config_.fabric_sharing == FabricSharing::kPerCore) {
                auto ifc = std::make_unique<FlexInterface>(group.get(),
                                                           config_.iface);
                ifc->setNumCores(ncores);
                auto fab = std::make_unique<Fabric>(group.get(), ifc.get(),
                                                    bus_.get(), mon.get(),
                                                    config_.fabric);
                fab->setBusPort(static_cast<u8>(i));
                core->attachInterface(ifc.get());
                extra_ifaces_.push_back(std::move(ifc));
                extra_fabrics_.push_back(std::move(fab));
            } else {
                core->attachInterface(iface_.get());
            }
            extra_monitors_.push_back(std::move(mon));
        }
        extra_memories_.push_back(std::move(mem));
        extra_cores_.push_back(std::move(core));
        core_groups_.push_back(std::move(group));
    }
    extra_profiles_.assign(ncores - 1, nullptr);

    if (hardware && config_.fabric_sharing == FabricSharing::kShared) {
        std::vector<Monitor *> bank;
        bank.push_back(monitor_.get());
        for (auto &mon : extra_monitors_)
            bank.push_back(mon.get());
        fabric_->setMonitorBank(std::move(bank));
    }

    // Write-through coherence: each core invalidates every peer's
    // cached window lines (and stale decoded µops) on a window store.
    for (u32 i = 0; i < ncores; ++i) {
        std::vector<Core *> peers;
        for (u32 j = 0; j < ncores; ++j) {
            if (j != i)
                peers.push_back(&core(j));
        }
        core(i).setCoherence(wbase, wbytes, std::move(peers));
    }
}

System::~System() = default;

void
System::load(const Program &program)
{
    core_->loadProgram(program);
    if (profile_)
        profile_->onProgramLoad(program.base(), program.size());
    // Every extra core runs its own copy of the image out of its
    // private memory; the coherent-window backing starts zeroed.
    for (u32 i = 1; i < config_.num_cores; ++i) {
        core(i).loadProgram(program);
        if (extra_profiles_[i - 1]) {
            extra_profiles_[i - 1]->onProgramLoad(program.base(),
                                                  program.size());
        }
    }
    if (monitor_) {
        if (shared_tags_)
            shared_tags_->clear();
        for (u32 i = 0; i < config_.num_cores; ++i) {
            Monitor *mon = monitorForCore(i);
            mon->reset();
            mon->onProgramLoad(program.base(), program.size());
        }
        const auto configure = [this](FlexInterface *ifc) {
            programCfgr(config_.monitor, &ifc->cfgr());
            if (config_.precise_exceptions) {
                // Precise monitoring (§III-C): commit waits for the
                // co-processor's acknowledgement on every forwarded
                // class.
                Cfgr &cfgr = ifc->cfgr();
                for (unsigned t = 0; t < kNumInstrTypes; ++t) {
                    const auto type = static_cast<InstrType>(t);
                    if (cfgr.policy(type) != ForwardPolicy::kIgnore)
                        cfgr.setPolicy(type, ForwardPolicy::kWaitAck);
                }
            }
        };
        configure(iface_.get());
        for (auto &ifc : extra_ifaces_)
            configure(ifc.get());
    }
}

void
System::attachTrace(TraceSink *sink)
{
    trace_ = sink;
    core_->setTraceSink(sink);
    bus_->setTraceSink(sink);
    if (fabric_)
        fabric_->setTraceSink(sink);
    if (injector_)
        injector_->setTraceSink(sink);
    traced_ffifo_depth_ = 0;
}

void
System::attachProfile(PcProfile *profile)
{
    profile_ = profile;
    core_->setProfile(profile);
}

void
System::attachProfileAt(u32 i, PcProfile *profile)
{
    if (i == 0) {
        attachProfile(profile);
        return;
    }
    extra_profiles_[i - 1] = profile;
    core(i).setProfile(profile);
}

void
System::tick()
{
    if (!extra_cores_.empty()) {
        tickMulti();
        return;
    }
    if (injector_)
        injector_->onCycle(now_);
    bus_->tick();
    if (fabric_)
        fabric_->tick(now_);
    core_->tick(now_);
    core_->storeBuffer().tick();
    if (iface_) {
        if (config_.histograms)
            iface_->sampleOccupancy();
        if (trace_ && iface_->fifoSize() != traced_ffifo_depth_) {
            traced_ffifo_depth_ = iface_->fifoSize();
            trace_->counter("ffifo_occupancy", now_,
                            traced_ffifo_depth_);
        }
    }
    ++now_;
}

void
System::tickMulti()
{
    // Deterministic total order every cycle: injector, bus, fabrics
    // (core-index order), then each core and its store buffer in core-
    // index order. Cores offering to a shared interface therefore push
    // in index order within the cycle — that tick order *is* the FFIFO
    // arbitration, with no randomness to seed (docs/multicore.md).
    if (injector_)
        injector_->onCycle(now_);
    bus_->tick();
    if (fabric_)
        fabric_->tick(now_);
    for (auto &fab : extra_fabrics_)
        fab->tick(now_);
    core_->tick(now_);
    core_->storeBuffer().tick();
    for (auto &c : extra_cores_) {
        c->tick(now_);
        c->storeBuffer().tick();
    }
    if (config_.histograms && iface_) {
        iface_->sampleOccupancy();
        for (auto &ifc : extra_ifaces_)
            ifc->sampleOccupancy();
    }
    ++now_;
}

void
System::fastForward()
{
    // Whole-system quiescence: nothing in flight anywhere except the
    // single condition the core is waiting out.
    if (core_->halted() || now_ >= config_.max_cycles)
        return;
    if (!core_->storeBuffer().empty())
        return;
    if (fabric_ && !fabric_->idle())
        return;
    if (iface_ && iface_->fifoSize() != 0)
        return;
    const Core::IdleStretch stretch = core_->idleStretch();
    if (stretch.cycles == 0)
        return;
    u64 k = std::min<u64>(stretch.cycles, config_.max_cycles - now_);
    if (injector_) {
        // Never skip over a cycle-triggered fault: cap the stretch so
        // a real tick() executes at the trigger cycle (where onCycle
        // drains it) in both the bulk and the debug-lockstep path.
        const Cycle next = injector_->nextCycleTrigger();
        if (next != kCycleNever)
            k = std::min<u64>(k, next > now_ ? next - now_ : 0);
    }
    if (watchdog_deadline_ != kCycleNever) {
        // A quiescent stretch commits nothing, so it may expire the
        // watchdog: stop exactly at the deadline and let run()'s
        // post-fast-forward check fire, byte-identical to serial.
        k = std::min<u64>(k, watchdog_deadline_ - now_);
    }
    if (k == 0)
        return;
#ifndef NDEBUG
    // Lockstep verification: single-step the predicted stretch and
    // assert every cycle charged the predicted bucket. Debug builds
    // thus prove the bulk path's claim while producing the exact
    // single-step behavior.
    const u64 cycles_before = core_->cycles();
    const u64 bucket_before = core_->cyclesIn(stretch.bucket);
    for (u64 i = 0; i < k; ++i)
        tick();
    assert(core_->cycles() == cycles_before + k &&
           "fast-forward stretch must advance the core every cycle");
    assert(core_->cyclesIn(stretch.bucket) == bucket_before + k &&
           "fast-forward stretch must charge the predicted bucket");
#else
    core_->advanceIdle(k, stretch.bucket);
    bus_->advanceIdle(k);
    if (fabric_)
        fabric_->advanceIdle(k);
    if (iface_ && config_.histograms)
        iface_->sampleOccupancy(k);
    now_ += k;
#endif
}

RunResult
System::run()
{
    if (!extra_cores_.empty())
        return runMulti();
    if (config_.sample_period != 0)
        return runSampled();

    const u64 wd = config_.watchdog_commits;
    bool hung = false;
    bool cancelled = false;
    next_cancel_check_ = cancel_ ? now_ + kCancelCheckCycles
                                 : kCycleNever;
    // Burst dispatch requires the commit fast path to be exactly the
    // inline one: no per-commit fault hooks, no watchdog bookkeeping,
    // no ALU fault injection, no software-instrumentation expansion,
    // and no per-cycle observers (a trace sink or a profiler needs
    // every cycle to pass through Core::tick()). Any of those falls
    // back to the interpreter loops below, which produce identical
    // results by definition (kThreaded only changes how eligible
    // cycles are dispatched, never what they do) — so a streaming
    // trace of a threaded run is byte-identical to the interp trace,
    // and a threaded run without observers keeps its full burst speed.
    const bool burstable = config_.exec_mode == ExecMode::kThreaded &&
                           !injector_ && wd == 0 &&
                           config_.fault_rate == 0.0 &&
                           config_.mode != ImplMode::kSoftware &&
                           !trace_ && !profile_;
    if (burstable) {
        while (!core_->halted() && now_ < config_.max_cycles) {
            // The engine consumes every provably plain fetch/latency
            // cycle; anything else (misses, FIFO waits, micro-ops,
            // traps, drains) is handed back to the interpreter tick.
            // A cancel token clamps the burst at its next poll cycle;
            // burst boundaries are not observable, so results stay
            // byte-identical to the unclamped run.
            now_ = engine_->burst(
                now_, std::min(config_.max_cycles,
                               next_cancel_check_));
            if (cancel_ && now_ >= next_cancel_check_) {
                next_cancel_check_ = now_ + kCancelCheckCycles;
                if (cancel_->expired()) {
                    cancelled = true;
                    break;
                }
            }
            if (core_->halted() || now_ >= config_.max_cycles)
                break;
            tick();
            if (config_.fast_forward && core_->idleCandidate())
                fastForward();
        }
    } else if (!injector_ && wd == 0) {
        // Hot path: identical per-cycle work to the pre-watchdog
        // loops. A cancel token only chunks the loop — the inner
        // bound is a constant between polls, so the tick sequence
        // (and therefore every result) is unchanged, and a run
        // without a token collapses to a single chunk.
        while (!core_->halted() && now_ < config_.max_cycles) {
            const Cycle bound =
                std::min(config_.max_cycles, next_cancel_check_);
            if (config_.fast_forward) {
                while (!core_->halted() && now_ < bound) {
                    tick();
                    // idleCandidate() is a two-branch filter for the
                    // same states idleStretch() can accept, so
                    // skipping fastForward() elsewhere changes
                    // nothing. A stretch may overshoot the poll
                    // bound; the poll below catches up.
                    if (core_->idleCandidate())
                        fastForward();
                }
            } else {
                while (!core_->halted() && now_ < bound)
                    tick();
            }
            if (cancel_ && now_ >= next_cancel_check_) {
                next_cancel_check_ = now_ + kCancelCheckCycles;
                if (cancel_->expired()) {
                    cancelled = true;
                    break;
                }
            }
        }
    } else {
        // Monitored loop: tracks commit progress (instructions plus
        // micro-ops, so long window spill/fill sequences count) for
        // the no-commit watchdog, lets fastForward() cap stretches
        // at fault triggers and the watchdog deadline, and polls the
        // cancel token every kCancelCheckCycles.
        u64 last_progress = core_->instructions() + core_->microOps();
        watchdog_deadline_ = wd ? now_ + wd : kCycleNever;
        while (!core_->halted() && now_ < config_.max_cycles) {
            tick();
            const u64 progress =
                core_->instructions() + core_->microOps();
            if (progress != last_progress) {
                last_progress = progress;
                if (wd)
                    watchdog_deadline_ = now_ + wd;
            } else if (now_ >= watchdog_deadline_) {
                hung = true;
                break;
            }
            if (config_.fast_forward && core_->idleCandidate()) {
                fastForward();
                // The skipped stretch commits nothing, so only the
                // deadline (at which fastForward stops) can expire.
                if (now_ >= watchdog_deadline_) {
                    hung = true;
                    break;
                }
            }
            if (now_ >= next_cancel_check_) {
                next_cancel_check_ = now_ + kCancelCheckCycles;
                if (cancel_->expired()) {
                    cancelled = true;
                    break;
                }
            }
        }
        watchdog_deadline_ = kCycleNever;
    }
    return finishRun(hung, cancelled, wd);
}

bool
System::multiRunDone()
{
    // The run ends when every core has halted (each exits via its own
    // `ta 0`), or as soon as any core halts on a trap: the trap is the
    // run's result (a monitor detection, or a core-detected error),
    // and letting the other cores run on would only blur its cycle
    // attribution.
    bool all_halted = true;
    for (u32 i = 0; i < config_.num_cores; ++i) {
        const Core &c = core(i);
        if (!c.halted())
            all_halted = false;
        else if (c.trap().pending())
            return true;
    }
    return all_halted;
}

u64
System::totalProgress()
{
    u64 progress = 0;
    for (u32 i = 0; i < config_.num_cores; ++i)
        progress += core(i).instructions() + core(i).microOps();
    return progress;
}

void
System::fastForwardMulti()
{
    // All-cores quiescence: every fabric idle, every FFIFO and store
    // buffer empty, and every still-running core in a provable idle
    // stretch. Core::idleStretch() already demands an idle (or
    // exclusively-ours) bus, so with several active cores this only
    // fires when all of them sit in fixed-latency stalls — but those
    // lockstep stretches are exactly where a naive multi-core loop
    // burns its cycles.
    if (now_ >= config_.max_cycles)
        return;
    if (fabric_ && !fabric_->idle())
        return;
    for (auto &fab : extra_fabrics_) {
        if (!fab->idle())
            return;
    }
    if (iface_ && iface_->fifoSize() != 0)
        return;
    for (auto &ifc : extra_ifaces_) {
        if (ifc->fifoSize() != 0)
            return;
    }
    struct Pending
    {
        Core *core;
        Core::CycleBucket bucket;
    };
    Pending pending[SystemConfig::kMaxCores];
    u32 npending = 0;
    u64 k = config_.max_cycles - now_;
    for (u32 i = 0; i < config_.num_cores; ++i) {
        Core &c = core(i);
        if (c.halted())
            continue;
        if (!c.storeBuffer().empty())
            return;
        const Core::IdleStretch stretch = c.idleStretch();
        if (stretch.cycles == 0)
            return;
        k = std::min<u64>(k, stretch.cycles);
        pending[npending++] = {&c, stretch.bucket};
    }
    if (npending == 0)
        return;
    if (injector_) {
        const Cycle next = injector_->nextCycleTrigger();
        if (next != kCycleNever)
            k = std::min<u64>(k, next > now_ ? next - now_ : 0);
    }
    if (watchdog_deadline_ != kCycleNever)
        k = std::min<u64>(k, watchdog_deadline_ - now_);
    if (k == 0)
        return;
#ifndef NDEBUG
    // Lockstep verification, as in the single-core path: single-step
    // the stretch and assert every active core charged its predicted
    // bucket on every one of the k cycles.
    u64 cycles_before[SystemConfig::kMaxCores];
    u64 bucket_before[SystemConfig::kMaxCores];
    for (u32 p = 0; p < npending; ++p) {
        cycles_before[p] = pending[p].core->cycles();
        bucket_before[p] = pending[p].core->cyclesIn(pending[p].bucket);
    }
    for (u64 i = 0; i < k; ++i)
        tickMulti();
    for (u32 p = 0; p < npending; ++p) {
        assert(pending[p].core->cycles() == cycles_before[p] + k &&
               "multi-core fast-forward must advance every active core");
        assert(pending[p].core->cyclesIn(pending[p].bucket) ==
                   bucket_before[p] + k &&
               "multi-core fast-forward must charge predicted buckets");
    }
#else
    for (u32 p = 0; p < npending; ++p)
        pending[p].core->advanceIdle(k, pending[p].bucket);
    bus_->advanceIdle(k);
    if (fabric_)
        fabric_->advanceIdle(k);
    for (auto &fab : extra_fabrics_)
        fab->advanceIdle(k);
    if (config_.histograms && iface_) {
        iface_->sampleOccupancy(k);
        for (auto &ifc : extra_ifaces_)
            ifc->sampleOccupancy(k);
    }
    now_ += k;
#endif
}

RunResult
System::runMulti()
{
    // Multi-core runs always use the monitored-loop shape: totalled
    // commit progress feeds the watchdog, fast-forward demands
    // all-cores quiescence, and the cancel token is polled on the
    // same cycle grid as the single-core loops.
    const u64 wd = config_.watchdog_commits;
    bool hung = false;
    bool cancelled = false;
    u64 last_progress = totalProgress();
    watchdog_deadline_ = wd ? now_ + wd : kCycleNever;
    next_cancel_check_ = cancel_ ? now_ + kCancelCheckCycles
                                 : kCycleNever;
    while (!multiRunDone() && now_ < config_.max_cycles) {
        tickMulti();
        const u64 progress = totalProgress();
        if (progress != last_progress) {
            last_progress = progress;
            if (wd)
                watchdog_deadline_ = now_ + wd;
        } else if (now_ >= watchdog_deadline_) {
            hung = true;
            break;
        }
        if (config_.fast_forward) {
            fastForwardMulti();
            if (now_ >= watchdog_deadline_) {
                hung = true;
                break;
            }
        }
        if (now_ >= next_cancel_check_) {
            next_cancel_check_ = now_ + kCancelCheckCycles;
            if (cancel_->expired()) {
                cancelled = true;
                break;
            }
        }
    }
    watchdog_deadline_ = kCycleNever;
    return finishRun(hung, cancelled, wd);
}

bool
System::sampleBoundaryReady() const
{
    // Deliberately weaker than full quiescence: queued FFIFO packets
    // and occupied monitor-pipe stages are allowed, because the
    // warming engine drains them functionally at the window boundary
    // (ThreadedEngine::drainFunctional). Under a saturating monitor
    // the FFIFO never empties while the core keeps committing, so
    // requiring it empty would pin the run inside one endless
    // detailed window. What must be clean is the core itself (no
    // partial instruction, micro-op, or ack wait), the store buffer,
    // the bus (no refill in flight anywhere, which also means the
    // fabric cannot be frozen mid-miss), and any undelivered trap.
    return core_->quiescent() && core_->storeBuffer().empty() &&
           bus_->idle() && (!fabric_ || !fabric_->frozen()) &&
           (!iface_ || !iface_->trapPending());
}

RunResult
System::runSampled()
{
    const u64 window = config_.sample_window;
    const u64 period = config_.sample_period;
    const u64 wd = config_.watchdog_commits;
    bool hung = false;
    bool cancelled = false;
    u64 detailed_insts = 0;
    u64 last_progress = core_->instructions() + core_->microOps();
    watchdog_deadline_ = wd ? now_ + wd : kCycleNever;
    next_cancel_check_ = cancel_ ? now_ + kCancelCheckCycles
                                 : kCycleNever;

    while (!core_->halted() && now_ < config_.max_cycles) {
        // Detailed window: exact cycle-accurate simulation until
        // sample_window instructions committed, then keep going until
        // the system reaches a sampling boundary (core drained,
        // refills and store-buffer writes finished; any still-queued
        // forward packets are drained functionally by warm()).
        if (trace_)
            trace_->window(now_, core_->instructions(), true);
        const u64 start_insts = core_->instructions();
        const u64 detail_target = start_insts + window;
        while (!core_->halted() && now_ < config_.max_cycles &&
               (core_->instructions() < detail_target ||
                !sampleBoundaryReady())) {
            tick();
            const u64 progress =
                core_->instructions() + core_->microOps();
            if (progress != last_progress) {
                last_progress = progress;
                if (wd)
                    watchdog_deadline_ = now_ + wd;
            } else if (wd && now_ >= watchdog_deadline_) {
                hung = true;
                break;
            }
            if (config_.fast_forward && core_->idleCandidate()) {
                fastForward();
                if (wd && now_ >= watchdog_deadline_) {
                    hung = true;
                    break;
                }
            }
            if (now_ >= next_cancel_check_) {
                next_cancel_check_ = now_ + kCancelCheckCycles;
                if (cancel_->expired()) {
                    cancelled = true;
                    break;
                }
            }
        }
        detailed_insts += core_->instructions() - start_insts;
        if (hung || cancelled || core_->halted() ||
            now_ >= config_.max_cycles)
            break;

        // Functional warming for the remainder of the sampling unit.
        const u64 executed = core_->instructions() - start_insts;
        if (executed < period) {
            if (trace_)
                trace_->window(now_, core_->instructions(), false);
            engine_->warm(period - executed);
            last_progress = core_->instructions() + core_->microOps();
            if (wd)
                watchdog_deadline_ = now_ + wd;
            // Warming advances instructions but not now_, so the
            // cycle-gated poll above cannot fire during it; one
            // explicit poll per warmed stretch bounds its latency.
            if (cancel_ && cancel_->expired()) {
                cancelled = true;
                break;
            }
        }
    }
    watchdog_deadline_ = kCycleNever;

    RunResult result = finishRun(hung, cancelled, wd);
    result.sampled = true;
    result.detailed_cycles = now_;
    result.detailed_instructions = detailed_insts;
    // CPI extrapolation: every simulated cycle belongs to a detailed
    // window, so total cycles ~= detailed CPI x total instructions.
    // A run that never left the detailed windows is exact by
    // construction (estimated == detailed when nothing was warmed).
    const u64 total_insts = result.instructions;
    if (detailed_insts > 0 && total_insts > detailed_insts) {
        result.estimated_cycles = static_cast<Cycle>(
            (static_cast<double>(now_) /
             static_cast<double>(detailed_insts)) *
            static_cast<double>(total_insts));
    } else {
        result.estimated_cycles = now_;
    }
    result.cycles = result.estimated_cycles;
    return result;
}

RunResult
System::finishRun(bool hung, bool cancelled, u64 wd)
{
    core_->flushTrace();
    if (fabric_)
        fabric_->flushTrace(now_);
    bus_->flushObservers();

    // The report core: the first (lowest-index) core that trapped —
    // the event that ended a multi-core run — or core 0 otherwise.
    // Single-core, this is always core 0 and the classification below
    // reduces exactly to the classic one (a trap implies halted, and
    // an unhalted core implies no trap).
    u32 report_core = 0;
    for (u32 i = 0; i < config_.num_cores; ++i) {
        if (core(i).trap().pending()) {
            report_core = i;
            break;
        }
    }
    Core &reporter = core(report_core);
    bool all_halted = true;
    u64 instructions = 0;
    std::string console;
    for (u32 i = 0; i < config_.num_cores; ++i) {
        all_halted = all_halted && core(i).halted();
        instructions += core(i).instructions();
        console += core(i).consoleOutput();
    }

    RunResult result;
    result.cycles = now_;
    result.instructions = instructions;
    result.console = std::move(console);
    result.exit_code = core_->exitCode();
    result.trap = reporter.trap();
    if (cancelled) {
        result.exit = RunResult::Exit::kDeadline;
        result.trap_reason = "cancelled after " +
                             std::to_string(now_) + " cycles";
    } else if (hung) {
        result.exit = RunResult::Exit::kHang;
        result.trap_reason = "no commit in " + std::to_string(wd) +
                             " cycles (watchdog)";
    } else if (reporter.trap().kind == TrapKind::kMonitor) {
        result.exit = RunResult::Exit::kMonitorTrap;
        if (monitor_)
            result.trap_reason =
                monitorForCore(report_core)->lastTrapReason();
    } else if (reporter.trap().pending()) {
        result.exit = RunResult::Exit::kCoreTrap;
        result.trap_reason = reporter.trap().detail;
    } else if (!all_halted) {
        result.exit = RunResult::Exit::kMaxCycles;
    } else {
        result.exit = RunResult::Exit::kExited;
    }
    if ((result.exit == RunResult::Exit::kMonitorTrap ||
         result.exit == RunResult::Exit::kCoreTrap) &&
        (result.trap.pc & 3u) == 0) {
        result.trap_inst = memoryAt(report_core).read32(result.trap.pc);
    }
    return result;
}

}  // namespace flexcore
