#include "sim/system.h"

#include "monitors/software.h"

namespace flexcore {

std::string_view
exitName(RunResult::Exit exit)
{
    switch (exit) {
      case RunResult::Exit::kExited: return "exited";
      case RunResult::Exit::kMonitorTrap: return "monitor_trap";
      case RunResult::Exit::kCoreTrap: return "core_trap";
      case RunResult::Exit::kMaxCycles: return "max_cycles";
    }
    return "?";
}

namespace {

const SoftwareMonitor *
softwareModelFor(MonitorKind kind)
{
    switch (kind) {
      case MonitorKind::kUmc: return softwareUmc();
      case MonitorKind::kDift: return softwareDift();
      case MonitorKind::kBc: return softwareBc();
      case MonitorKind::kSec: return softwareSec();
      case MonitorKind::kProf:
      case MonitorKind::kMemProt:
      case MonitorKind::kWatch:
      case MonitorKind::kRefCount:
      case MonitorKind::kNone: return nullptr;
    }
    return nullptr;
}

}  // namespace

System::System(SystemConfig config)
    : config_(std::move(config)), stats_("system")
{
    config_.finalize();
    config_.fabric.histograms = config_.histograms;
    memory_ = std::make_unique<Memory>();
    bus_ = std::make_unique<Bus>(&stats_, config_.sdram);
    bus_->setSampling(config_.histograms);
    core_ = std::make_unique<Core>(&stats_, memory_.get(), bus_.get(),
                                   config_.core);

    if (config_.mode == ImplMode::kAsic ||
        config_.mode == ImplMode::kFlexFabric) {
        monitor_ = makeMonitor(config_.monitor, config_.dift_tag_bits);
        iface_ = std::make_unique<FlexInterface>(&stats_, config_.iface);
        fabric_ = std::make_unique<Fabric>(&stats_, iface_.get(),
                                           bus_.get(), monitor_.get(),
                                           config_.fabric);
        core_->attachInterface(iface_.get());
    } else if (config_.mode == ImplMode::kSoftware) {
        core_->attachSoftwareMonitor(softwareModelFor(config_.monitor));
    }

    if (config_.fault_rate > 0.0) {
        core_->alu().enableFaultInjection(config_.fault_rate,
                                          config_.fault_seed);
    }
}

System::~System() = default;

void
System::load(const Program &program)
{
    core_->loadProgram(program);
    if (monitor_) {
        monitor_->reset();
        monitor_->onProgramLoad(program.base(), program.size());
        monitor_->configureCfgr(&iface_->cfgr());
        if (config_.precise_exceptions) {
            // Precise monitoring (§III-C): commit waits for the
            // co-processor's acknowledgement on every forwarded class.
            Cfgr &cfgr = iface_->cfgr();
            for (unsigned t = 0; t < kNumInstrTypes; ++t) {
                const auto type = static_cast<InstrType>(t);
                if (cfgr.policy(type) != ForwardPolicy::kIgnore)
                    cfgr.setPolicy(type, ForwardPolicy::kWaitAck);
            }
        }
    }
}

void
System::attachTrace(TraceSink *sink)
{
    trace_ = sink;
    core_->setTraceSink(sink);
    bus_->setTraceSink(sink);
    traced_ffifo_depth_ = 0;
}

void
System::tick()
{
    bus_->tick();
    if (fabric_)
        fabric_->tick(now_);
    core_->tick(now_);
    core_->storeBuffer().tick();
    if (iface_) {
        if (config_.histograms)
            iface_->sampleOccupancy();
        if (trace_ && iface_->fifoSize() != traced_ffifo_depth_) {
            traced_ffifo_depth_ = iface_->fifoSize();
            trace_->counter("ffifo_occupancy", now_,
                            traced_ffifo_depth_);
        }
    }
    ++now_;
}

RunResult
System::run()
{
    while (!core_->halted() && now_ < config_.max_cycles)
        tick();
    core_->flushTrace();
    bus_->flushObservers();

    RunResult result;
    result.cycles = now_;
    result.instructions = core_->instructions();
    result.console = core_->consoleOutput();
    result.exit_code = core_->exitCode();
    result.trap = core_->trap();
    if (!core_->halted()) {
        result.exit = RunResult::Exit::kMaxCycles;
    } else if (core_->trap().kind == TrapKind::kMonitor) {
        result.exit = RunResult::Exit::kMonitorTrap;
        if (monitor_)
            result.trap_reason = monitor_->lastTrapReason();
    } else if (core_->trap().pending()) {
        result.exit = RunResult::Exit::kCoreTrap;
        result.trap_reason = core_->trap().detail;
    } else {
        result.exit = RunResult::Exit::kExited;
    }
    return result;
}

}  // namespace flexcore
