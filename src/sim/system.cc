#include "sim/system.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "core/profile.h"
#include "core/threaded.h"
#include "extensions/registry.h"
#include "faults/injector.h"

namespace flexcore {

std::string_view
exitName(RunResult::Exit exit)
{
    switch (exit) {
      case RunResult::Exit::kExited: return "exited";
      case RunResult::Exit::kMonitorTrap: return "monitor_trap";
      case RunResult::Exit::kCoreTrap: return "core_trap";
      case RunResult::Exit::kMaxCycles: return "max_cycles";
      case RunResult::Exit::kHang: return "hang";
      case RunResult::Exit::kDeadline: return "deadline";
    }
    return "?";
}

namespace {

/**
 * Simulated cycles between CancelToken polls. One steady_clock read
 * per 64Ki cycles is noise next to the work those cycles do, yet even
 * the slowest configurations clear that many cycles in well under a
 * millisecond — so a deadline is honored within milliseconds of
 * expiry no matter what the guest program does (commit loops defeat
 * the watchdog; never-idle loops defeat fast-forward; neither defeats
 * a cycle counter).
 */
constexpr Cycle kCancelCheckCycles = 65536;

}  // namespace

System::System(SystemConfig config)
    : config_(std::move(config)), stats_("system")
{
    if (ConfigError error = config_.finalize()) {
        FLEX_FATAL("invalid system configuration [",
                   configErrorName(error.code), "]: ", error.message);
    }
    config_.fabric.histograms = config_.histograms;
    memory_ = std::make_unique<Memory>();
    bus_ = std::make_unique<Bus>(&stats_, config_.sdram);
    bus_->setSampling(config_.histograms);
    core_ = std::make_unique<Core>(&stats_, memory_.get(), bus_.get(),
                                   config_.core);

    if (config_.mode == ImplMode::kAsic ||
        config_.mode == ImplMode::kFlexFabric) {
        monitor_ = makeMonitor(config_.monitor, config_.dift_tag_bits);
        iface_ = std::make_unique<FlexInterface>(&stats_, config_.iface);
        fabric_ = std::make_unique<Fabric>(&stats_, iface_.get(),
                                           bus_.get(), monitor_.get(),
                                           config_.fabric);
        core_->attachInterface(iface_.get());
    } else if (config_.mode == ImplMode::kSoftware) {
        core_->attachSoftwareMonitor(
            ExtensionRegistry::instance().softwareModel(config_.monitor));
    }

    if (config_.fault_rate > 0.0) {
        core_->alu().enableFaultInjection(config_.fault_rate,
                                          config_.fault_seed);
    }

    if (!config_.faults.empty()) {
        injector_ = std::make_unique<FaultInjector>(this, config_.faults);
        core_->setFaultInjector(injector_.get());
    }

    if (config_.exec_mode == ExecMode::kThreaded ||
        config_.sample_period != 0) {
        engine_ = std::make_unique<ThreadedEngine>(
            core_.get(), bus_.get(), iface_.get(), fabric_.get(),
            monitor_.get(), injector_.get());
    }
}

System::~System() = default;

void
System::load(const Program &program)
{
    core_->loadProgram(program);
    if (profile_)
        profile_->onProgramLoad(program.base(), program.size());
    if (monitor_) {
        monitor_->reset();
        monitor_->onProgramLoad(program.base(), program.size());
        programCfgr(config_.monitor, &iface_->cfgr());
        if (config_.precise_exceptions) {
            // Precise monitoring (§III-C): commit waits for the
            // co-processor's acknowledgement on every forwarded class.
            Cfgr &cfgr = iface_->cfgr();
            for (unsigned t = 0; t < kNumInstrTypes; ++t) {
                const auto type = static_cast<InstrType>(t);
                if (cfgr.policy(type) != ForwardPolicy::kIgnore)
                    cfgr.setPolicy(type, ForwardPolicy::kWaitAck);
            }
        }
    }
}

void
System::attachTrace(TraceSink *sink)
{
    trace_ = sink;
    core_->setTraceSink(sink);
    bus_->setTraceSink(sink);
    if (fabric_)
        fabric_->setTraceSink(sink);
    if (injector_)
        injector_->setTraceSink(sink);
    traced_ffifo_depth_ = 0;
}

void
System::attachProfile(PcProfile *profile)
{
    profile_ = profile;
    core_->setProfile(profile);
}

void
System::tick()
{
    if (injector_)
        injector_->onCycle(now_);
    bus_->tick();
    if (fabric_)
        fabric_->tick(now_);
    core_->tick(now_);
    core_->storeBuffer().tick();
    if (iface_) {
        if (config_.histograms)
            iface_->sampleOccupancy();
        if (trace_ && iface_->fifoSize() != traced_ffifo_depth_) {
            traced_ffifo_depth_ = iface_->fifoSize();
            trace_->counter("ffifo_occupancy", now_,
                            traced_ffifo_depth_);
        }
    }
    ++now_;
}

void
System::fastForward()
{
    // Whole-system quiescence: nothing in flight anywhere except the
    // single condition the core is waiting out.
    if (core_->halted() || now_ >= config_.max_cycles)
        return;
    if (!core_->storeBuffer().empty())
        return;
    if (fabric_ && !fabric_->idle())
        return;
    if (iface_ && iface_->fifoSize() != 0)
        return;
    const Core::IdleStretch stretch = core_->idleStretch();
    if (stretch.cycles == 0)
        return;
    u64 k = std::min<u64>(stretch.cycles, config_.max_cycles - now_);
    if (injector_) {
        // Never skip over a cycle-triggered fault: cap the stretch so
        // a real tick() executes at the trigger cycle (where onCycle
        // drains it) in both the bulk and the debug-lockstep path.
        const Cycle next = injector_->nextCycleTrigger();
        if (next != kCycleNever)
            k = std::min<u64>(k, next > now_ ? next - now_ : 0);
    }
    if (watchdog_deadline_ != kCycleNever) {
        // A quiescent stretch commits nothing, so it may expire the
        // watchdog: stop exactly at the deadline and let run()'s
        // post-fast-forward check fire, byte-identical to serial.
        k = std::min<u64>(k, watchdog_deadline_ - now_);
    }
    if (k == 0)
        return;
#ifndef NDEBUG
    // Lockstep verification: single-step the predicted stretch and
    // assert every cycle charged the predicted bucket. Debug builds
    // thus prove the bulk path's claim while producing the exact
    // single-step behavior.
    const u64 cycles_before = core_->cycles();
    const u64 bucket_before = core_->cyclesIn(stretch.bucket);
    for (u64 i = 0; i < k; ++i)
        tick();
    assert(core_->cycles() == cycles_before + k &&
           "fast-forward stretch must advance the core every cycle");
    assert(core_->cyclesIn(stretch.bucket) == bucket_before + k &&
           "fast-forward stretch must charge the predicted bucket");
#else
    core_->advanceIdle(k, stretch.bucket);
    bus_->advanceIdle(k);
    if (fabric_)
        fabric_->advanceIdle(k);
    if (iface_ && config_.histograms)
        iface_->sampleOccupancy(k);
    now_ += k;
#endif
}

RunResult
System::run()
{
    if (config_.sample_period != 0)
        return runSampled();

    const u64 wd = config_.watchdog_commits;
    bool hung = false;
    bool cancelled = false;
    next_cancel_check_ = cancel_ ? now_ + kCancelCheckCycles
                                 : kCycleNever;
    // Burst dispatch requires the commit fast path to be exactly the
    // inline one: no per-commit fault hooks, no watchdog bookkeeping,
    // no ALU fault injection, no software-instrumentation expansion,
    // and no per-cycle observers (a trace sink or a profiler needs
    // every cycle to pass through Core::tick()). Any of those falls
    // back to the interpreter loops below, which produce identical
    // results by definition (kThreaded only changes how eligible
    // cycles are dispatched, never what they do) — so a streaming
    // trace of a threaded run is byte-identical to the interp trace,
    // and a threaded run without observers keeps its full burst speed.
    const bool burstable = config_.exec_mode == ExecMode::kThreaded &&
                           !injector_ && wd == 0 &&
                           config_.fault_rate == 0.0 &&
                           config_.mode != ImplMode::kSoftware &&
                           !trace_ && !profile_;
    if (burstable) {
        while (!core_->halted() && now_ < config_.max_cycles) {
            // The engine consumes every provably plain fetch/latency
            // cycle; anything else (misses, FIFO waits, micro-ops,
            // traps, drains) is handed back to the interpreter tick.
            // A cancel token clamps the burst at its next poll cycle;
            // burst boundaries are not observable, so results stay
            // byte-identical to the unclamped run.
            now_ = engine_->burst(
                now_, std::min(config_.max_cycles,
                               next_cancel_check_));
            if (cancel_ && now_ >= next_cancel_check_) {
                next_cancel_check_ = now_ + kCancelCheckCycles;
                if (cancel_->expired()) {
                    cancelled = true;
                    break;
                }
            }
            if (core_->halted() || now_ >= config_.max_cycles)
                break;
            tick();
            if (config_.fast_forward && core_->idleCandidate())
                fastForward();
        }
    } else if (!injector_ && wd == 0) {
        // Hot path: identical per-cycle work to the pre-watchdog
        // loops. A cancel token only chunks the loop — the inner
        // bound is a constant between polls, so the tick sequence
        // (and therefore every result) is unchanged, and a run
        // without a token collapses to a single chunk.
        while (!core_->halted() && now_ < config_.max_cycles) {
            const Cycle bound =
                std::min(config_.max_cycles, next_cancel_check_);
            if (config_.fast_forward) {
                while (!core_->halted() && now_ < bound) {
                    tick();
                    // idleCandidate() is a two-branch filter for the
                    // same states idleStretch() can accept, so
                    // skipping fastForward() elsewhere changes
                    // nothing. A stretch may overshoot the poll
                    // bound; the poll below catches up.
                    if (core_->idleCandidate())
                        fastForward();
                }
            } else {
                while (!core_->halted() && now_ < bound)
                    tick();
            }
            if (cancel_ && now_ >= next_cancel_check_) {
                next_cancel_check_ = now_ + kCancelCheckCycles;
                if (cancel_->expired()) {
                    cancelled = true;
                    break;
                }
            }
        }
    } else {
        // Monitored loop: tracks commit progress (instructions plus
        // micro-ops, so long window spill/fill sequences count) for
        // the no-commit watchdog, lets fastForward() cap stretches
        // at fault triggers and the watchdog deadline, and polls the
        // cancel token every kCancelCheckCycles.
        u64 last_progress = core_->instructions() + core_->microOps();
        watchdog_deadline_ = wd ? now_ + wd : kCycleNever;
        while (!core_->halted() && now_ < config_.max_cycles) {
            tick();
            const u64 progress =
                core_->instructions() + core_->microOps();
            if (progress != last_progress) {
                last_progress = progress;
                if (wd)
                    watchdog_deadline_ = now_ + wd;
            } else if (now_ >= watchdog_deadline_) {
                hung = true;
                break;
            }
            if (config_.fast_forward && core_->idleCandidate()) {
                fastForward();
                // The skipped stretch commits nothing, so only the
                // deadline (at which fastForward stops) can expire.
                if (now_ >= watchdog_deadline_) {
                    hung = true;
                    break;
                }
            }
            if (now_ >= next_cancel_check_) {
                next_cancel_check_ = now_ + kCancelCheckCycles;
                if (cancel_->expired()) {
                    cancelled = true;
                    break;
                }
            }
        }
        watchdog_deadline_ = kCycleNever;
    }
    return finishRun(hung, cancelled, wd);
}

bool
System::sampleBoundaryReady() const
{
    // Deliberately weaker than full quiescence: queued FFIFO packets
    // and occupied monitor-pipe stages are allowed, because the
    // warming engine drains them functionally at the window boundary
    // (ThreadedEngine::drainFunctional). Under a saturating monitor
    // the FFIFO never empties while the core keeps committing, so
    // requiring it empty would pin the run inside one endless
    // detailed window. What must be clean is the core itself (no
    // partial instruction, micro-op, or ack wait), the store buffer,
    // the bus (no refill in flight anywhere, which also means the
    // fabric cannot be frozen mid-miss), and any undelivered trap.
    return core_->quiescent() && core_->storeBuffer().empty() &&
           bus_->idle() && (!fabric_ || !fabric_->frozen()) &&
           (!iface_ || !iface_->trapPending());
}

RunResult
System::runSampled()
{
    const u64 window = config_.sample_window;
    const u64 period = config_.sample_period;
    const u64 wd = config_.watchdog_commits;
    bool hung = false;
    bool cancelled = false;
    u64 detailed_insts = 0;
    u64 last_progress = core_->instructions() + core_->microOps();
    watchdog_deadline_ = wd ? now_ + wd : kCycleNever;
    next_cancel_check_ = cancel_ ? now_ + kCancelCheckCycles
                                 : kCycleNever;

    while (!core_->halted() && now_ < config_.max_cycles) {
        // Detailed window: exact cycle-accurate simulation until
        // sample_window instructions committed, then keep going until
        // the system reaches a sampling boundary (core drained,
        // refills and store-buffer writes finished; any still-queued
        // forward packets are drained functionally by warm()).
        if (trace_)
            trace_->window(now_, core_->instructions(), true);
        const u64 start_insts = core_->instructions();
        const u64 detail_target = start_insts + window;
        while (!core_->halted() && now_ < config_.max_cycles &&
               (core_->instructions() < detail_target ||
                !sampleBoundaryReady())) {
            tick();
            const u64 progress =
                core_->instructions() + core_->microOps();
            if (progress != last_progress) {
                last_progress = progress;
                if (wd)
                    watchdog_deadline_ = now_ + wd;
            } else if (wd && now_ >= watchdog_deadline_) {
                hung = true;
                break;
            }
            if (config_.fast_forward && core_->idleCandidate()) {
                fastForward();
                if (wd && now_ >= watchdog_deadline_) {
                    hung = true;
                    break;
                }
            }
            if (now_ >= next_cancel_check_) {
                next_cancel_check_ = now_ + kCancelCheckCycles;
                if (cancel_->expired()) {
                    cancelled = true;
                    break;
                }
            }
        }
        detailed_insts += core_->instructions() - start_insts;
        if (hung || cancelled || core_->halted() ||
            now_ >= config_.max_cycles)
            break;

        // Functional warming for the remainder of the sampling unit.
        const u64 executed = core_->instructions() - start_insts;
        if (executed < period) {
            if (trace_)
                trace_->window(now_, core_->instructions(), false);
            engine_->warm(period - executed);
            last_progress = core_->instructions() + core_->microOps();
            if (wd)
                watchdog_deadline_ = now_ + wd;
            // Warming advances instructions but not now_, so the
            // cycle-gated poll above cannot fire during it; one
            // explicit poll per warmed stretch bounds its latency.
            if (cancel_ && cancel_->expired()) {
                cancelled = true;
                break;
            }
        }
    }
    watchdog_deadline_ = kCycleNever;

    RunResult result = finishRun(hung, cancelled, wd);
    result.sampled = true;
    result.detailed_cycles = now_;
    result.detailed_instructions = detailed_insts;
    // CPI extrapolation: every simulated cycle belongs to a detailed
    // window, so total cycles ~= detailed CPI x total instructions.
    // A run that never left the detailed windows is exact by
    // construction (estimated == detailed when nothing was warmed).
    const u64 total_insts = result.instructions;
    if (detailed_insts > 0 && total_insts > detailed_insts) {
        result.estimated_cycles = static_cast<Cycle>(
            (static_cast<double>(now_) /
             static_cast<double>(detailed_insts)) *
            static_cast<double>(total_insts));
    } else {
        result.estimated_cycles = now_;
    }
    result.cycles = result.estimated_cycles;
    return result;
}

RunResult
System::finishRun(bool hung, bool cancelled, u64 wd)
{
    core_->flushTrace();
    if (fabric_)
        fabric_->flushTrace(now_);
    bus_->flushObservers();

    RunResult result;
    result.cycles = now_;
    result.instructions = core_->instructions();
    result.console = core_->consoleOutput();
    result.exit_code = core_->exitCode();
    result.trap = core_->trap();
    if (cancelled) {
        result.exit = RunResult::Exit::kDeadline;
        result.trap_reason = "cancelled after " +
                             std::to_string(now_) + " cycles";
    } else if (hung) {
        result.exit = RunResult::Exit::kHang;
        result.trap_reason = "no commit in " + std::to_string(wd) +
                             " cycles (watchdog)";
    } else if (!core_->halted()) {
        result.exit = RunResult::Exit::kMaxCycles;
    } else if (core_->trap().kind == TrapKind::kMonitor) {
        result.exit = RunResult::Exit::kMonitorTrap;
        if (monitor_)
            result.trap_reason = monitor_->lastTrapReason();
    } else if (core_->trap().pending()) {
        result.exit = RunResult::Exit::kCoreTrap;
        result.trap_reason = core_->trap().detail;
    } else {
        result.exit = RunResult::Exit::kExited;
    }
    if ((result.exit == RunResult::Exit::kMonitorTrap ||
         result.exit == RunResult::Exit::kCoreTrap) &&
        (result.trap.pc & 3u) == 0) {
        result.trap_inst = memory_->read32(result.trap.pc);
    }
    return result;
}

}  // namespace flexcore
