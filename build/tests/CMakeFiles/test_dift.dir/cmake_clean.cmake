file(REMOVE_RECURSE
  "CMakeFiles/test_dift.dir/test_dift.cc.o"
  "CMakeFiles/test_dift.dir/test_dift.cc.o.d"
  "test_dift"
  "test_dift.pdb"
  "test_dift[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
