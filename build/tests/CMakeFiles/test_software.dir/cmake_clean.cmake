file(REMOVE_RECURSE
  "CMakeFiles/test_software.dir/test_software.cc.o"
  "CMakeFiles/test_software.dir/test_software.cc.o.d"
  "test_software"
  "test_software.pdb"
  "test_software[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
