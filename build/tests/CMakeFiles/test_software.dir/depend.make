# Empty dependencies file for test_software.
# This may be replaced when dependencies are built.
