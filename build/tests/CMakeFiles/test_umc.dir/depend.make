# Empty dependencies file for test_umc.
# This may be replaced when dependencies are built.
