file(REMOVE_RECURSE
  "CMakeFiles/test_umc.dir/test_umc.cc.o"
  "CMakeFiles/test_umc.dir/test_umc.cc.o.d"
  "test_umc"
  "test_umc.pdb"
  "test_umc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_umc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
