file(REMOVE_RECURSE
  "CMakeFiles/test_interface.dir/test_interface.cc.o"
  "CMakeFiles/test_interface.dir/test_interface.cc.o.d"
  "test_interface"
  "test_interface.pdb"
  "test_interface[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
