# Empty dependencies file for test_interface.
# This may be replaced when dependencies are built.
