file(REMOVE_RECURSE
  "CMakeFiles/test_bc.dir/test_bc.cc.o"
  "CMakeFiles/test_bc.dir/test_bc.cc.o.d"
  "test_bc"
  "test_bc.pdb"
  "test_bc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
