file(REMOVE_RECURSE
  "CMakeFiles/test_sec.dir/test_sec.cc.o"
  "CMakeFiles/test_sec.dir/test_sec.cc.o.d"
  "test_sec"
  "test_sec.pdb"
  "test_sec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
