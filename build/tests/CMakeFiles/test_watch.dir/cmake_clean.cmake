file(REMOVE_RECURSE
  "CMakeFiles/test_watch.dir/test_watch.cc.o"
  "CMakeFiles/test_watch.dir/test_watch.cc.o.d"
  "test_watch"
  "test_watch.pdb"
  "test_watch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
