# Empty dependencies file for test_watch.
# This may be replaced when dependencies are built.
