# Empty compiler generated dependencies file for test_refcount.
# This may be replaced when dependencies are built.
