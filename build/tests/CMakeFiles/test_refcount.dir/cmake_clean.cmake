file(REMOVE_RECURSE
  "CMakeFiles/test_refcount.dir/test_refcount.cc.o"
  "CMakeFiles/test_refcount.dir/test_refcount.cc.o.d"
  "test_refcount"
  "test_refcount.pdb"
  "test_refcount[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
