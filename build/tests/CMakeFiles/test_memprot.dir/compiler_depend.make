# Empty compiler generated dependencies file for test_memprot.
# This may be replaced when dependencies are built.
