file(REMOVE_RECURSE
  "CMakeFiles/test_memprot.dir/test_memprot.cc.o"
  "CMakeFiles/test_memprot.dir/test_memprot.cc.o.d"
  "test_memprot"
  "test_memprot.pdb"
  "test_memprot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memprot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
