# Empty compiler generated dependencies file for ablation_precise.
# This may be replaced when dependencies are built.
