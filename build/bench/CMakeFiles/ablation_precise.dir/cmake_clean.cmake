file(REMOVE_RECURSE
  "CMakeFiles/ablation_precise.dir/ablation_precise.cc.o"
  "CMakeFiles/ablation_precise.dir/ablation_precise.cc.o.d"
  "ablation_precise"
  "ablation_precise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_precise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
