# Empty dependencies file for ablation_bitmask.
# This may be replaced when dependencies are built.
