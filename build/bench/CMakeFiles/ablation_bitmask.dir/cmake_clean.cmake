file(REMOVE_RECURSE
  "CMakeFiles/ablation_bitmask.dir/ablation_bitmask.cc.o"
  "CMakeFiles/ablation_bitmask.dir/ablation_bitmask.cc.o.d"
  "ablation_bitmask"
  "ablation_bitmask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bitmask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
