file(REMOVE_RECURSE
  "CMakeFiles/software_comparison.dir/software_comparison.cc.o"
  "CMakeFiles/software_comparison.dir/software_comparison.cc.o.d"
  "software_comparison"
  "software_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
