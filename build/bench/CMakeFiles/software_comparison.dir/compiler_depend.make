# Empty compiler generated dependencies file for software_comparison.
# This may be replaced when dependencies are built.
