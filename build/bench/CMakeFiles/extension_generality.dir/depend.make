# Empty dependencies file for extension_generality.
# This may be replaced when dependencies are built.
