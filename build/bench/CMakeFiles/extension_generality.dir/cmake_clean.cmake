file(REMOVE_RECURSE
  "CMakeFiles/extension_generality.dir/extension_generality.cc.o"
  "CMakeFiles/extension_generality.dir/extension_generality.cc.o.d"
  "extension_generality"
  "extension_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
