# Empty dependencies file for fig4_forwarding.
# This may be replaced when dependencies are built.
