file(REMOVE_RECURSE
  "CMakeFiles/fig4_forwarding.dir/fig4_forwarding.cc.o"
  "CMakeFiles/fig4_forwarding.dir/fig4_forwarding.cc.o.d"
  "fig4_forwarding"
  "fig4_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
