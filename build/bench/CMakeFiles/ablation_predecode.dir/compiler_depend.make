# Empty compiler generated dependencies file for ablation_predecode.
# This may be replaced when dependencies are built.
