file(REMOVE_RECURSE
  "CMakeFiles/ablation_predecode.dir/ablation_predecode.cc.o"
  "CMakeFiles/ablation_predecode.dir/ablation_predecode.cc.o.d"
  "ablation_predecode"
  "ablation_predecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_predecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
