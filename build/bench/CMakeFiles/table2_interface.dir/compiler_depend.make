# Empty compiler generated dependencies file for table2_interface.
# This may be replaced when dependencies are built.
