file(REMOVE_RECURSE
  "CMakeFiles/table2_interface.dir/table2_interface.cc.o"
  "CMakeFiles/table2_interface.dir/table2_interface.cc.o.d"
  "table2_interface"
  "table2_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
