# Empty dependencies file for ablation_mcache.
# This may be replaced when dependencies are built.
