file(REMOVE_RECURSE
  "CMakeFiles/ablation_mcache.dir/ablation_mcache.cc.o"
  "CMakeFiles/ablation_mcache.dir/ablation_mcache.cc.o.d"
  "ablation_mcache"
  "ablation_mcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
