file(REMOVE_RECURSE
  "CMakeFiles/table1_extensions.dir/table1_extensions.cc.o"
  "CMakeFiles/table1_extensions.dir/table1_extensions.cc.o.d"
  "table1_extensions"
  "table1_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
