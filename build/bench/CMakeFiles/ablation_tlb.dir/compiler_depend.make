# Empty compiler generated dependencies file for ablation_tlb.
# This may be replaced when dependencies are built.
