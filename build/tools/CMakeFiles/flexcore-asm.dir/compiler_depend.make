# Empty compiler generated dependencies file for flexcore-asm.
# This may be replaced when dependencies are built.
