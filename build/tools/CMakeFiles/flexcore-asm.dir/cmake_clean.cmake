file(REMOVE_RECURSE
  "CMakeFiles/flexcore-asm.dir/flexcore_asm.cc.o"
  "CMakeFiles/flexcore-asm.dir/flexcore_asm.cc.o.d"
  "flexcore-asm"
  "flexcore-asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexcore-asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
