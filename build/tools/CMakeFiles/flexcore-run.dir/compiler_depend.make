# Empty compiler generated dependencies file for flexcore-run.
# This may be replaced when dependencies are built.
