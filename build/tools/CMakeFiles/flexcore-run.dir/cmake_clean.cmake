file(REMOVE_RECURSE
  "CMakeFiles/flexcore-run.dir/flexcore_run.cc.o"
  "CMakeFiles/flexcore-run.dir/flexcore_run.cc.o.d"
  "flexcore-run"
  "flexcore-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexcore-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
