# Empty compiler generated dependencies file for flexcore.
# This may be replaced when dependencies are built.
