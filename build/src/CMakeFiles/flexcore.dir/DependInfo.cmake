
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assembler/assembler.cc" "src/CMakeFiles/flexcore.dir/assembler/assembler.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/assembler/assembler.cc.o.d"
  "/root/repo/src/assembler/lexer.cc" "src/CMakeFiles/flexcore.dir/assembler/lexer.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/assembler/lexer.cc.o.d"
  "/root/repo/src/assembler/parser.cc" "src/CMakeFiles/flexcore.dir/assembler/parser.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/assembler/parser.cc.o.d"
  "/root/repo/src/assembler/program.cc" "src/CMakeFiles/flexcore.dir/assembler/program.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/assembler/program.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/flexcore.dir/common/log.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/flexcore.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/flexcore.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/common/stats.cc.o.d"
  "/root/repo/src/core/alu.cc" "src/CMakeFiles/flexcore.dir/core/alu.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/core/alu.cc.o.d"
  "/root/repo/src/core/core.cc" "src/CMakeFiles/flexcore.dir/core/core.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/core/core.cc.o.d"
  "/root/repo/src/core/regfile.cc" "src/CMakeFiles/flexcore.dir/core/regfile.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/core/regfile.cc.o.d"
  "/root/repo/src/core/trap.cc" "src/CMakeFiles/flexcore.dir/core/trap.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/core/trap.cc.o.d"
  "/root/repo/src/flexcore/cfgr.cc" "src/CMakeFiles/flexcore.dir/flexcore/cfgr.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/flexcore/cfgr.cc.o.d"
  "/root/repo/src/flexcore/fabric.cc" "src/CMakeFiles/flexcore.dir/flexcore/fabric.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/flexcore/fabric.cc.o.d"
  "/root/repo/src/flexcore/interface.cc" "src/CMakeFiles/flexcore.dir/flexcore/interface.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/flexcore/interface.cc.o.d"
  "/root/repo/src/flexcore/packet.cc" "src/CMakeFiles/flexcore.dir/flexcore/packet.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/flexcore/packet.cc.o.d"
  "/root/repo/src/flexcore/shadow_regfile.cc" "src/CMakeFiles/flexcore.dir/flexcore/shadow_regfile.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/flexcore/shadow_regfile.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/flexcore.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/encoding.cc" "src/CMakeFiles/flexcore.dir/isa/encoding.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/isa/encoding.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/CMakeFiles/flexcore.dir/isa/instruction.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/isa/instruction.cc.o.d"
  "/root/repo/src/isa/opcodes.cc" "src/CMakeFiles/flexcore.dir/isa/opcodes.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/isa/opcodes.cc.o.d"
  "/root/repo/src/isa/registers.cc" "src/CMakeFiles/flexcore.dir/isa/registers.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/isa/registers.cc.o.d"
  "/root/repo/src/memory/bus.cc" "src/CMakeFiles/flexcore.dir/memory/bus.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/memory/bus.cc.o.d"
  "/root/repo/src/memory/cache.cc" "src/CMakeFiles/flexcore.dir/memory/cache.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/memory/cache.cc.o.d"
  "/root/repo/src/memory/memory.cc" "src/CMakeFiles/flexcore.dir/memory/memory.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/memory/memory.cc.o.d"
  "/root/repo/src/memory/meta_cache.cc" "src/CMakeFiles/flexcore.dir/memory/meta_cache.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/memory/meta_cache.cc.o.d"
  "/root/repo/src/memory/sdram.cc" "src/CMakeFiles/flexcore.dir/memory/sdram.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/memory/sdram.cc.o.d"
  "/root/repo/src/memory/store_buffer.cc" "src/CMakeFiles/flexcore.dir/memory/store_buffer.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/memory/store_buffer.cc.o.d"
  "/root/repo/src/monitors/bc.cc" "src/CMakeFiles/flexcore.dir/monitors/bc.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/monitors/bc.cc.o.d"
  "/root/repo/src/monitors/dift.cc" "src/CMakeFiles/flexcore.dir/monitors/dift.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/monitors/dift.cc.o.d"
  "/root/repo/src/monitors/memprot.cc" "src/CMakeFiles/flexcore.dir/monitors/memprot.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/monitors/memprot.cc.o.d"
  "/root/repo/src/monitors/monitor.cc" "src/CMakeFiles/flexcore.dir/monitors/monitor.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/monitors/monitor.cc.o.d"
  "/root/repo/src/monitors/prof.cc" "src/CMakeFiles/flexcore.dir/monitors/prof.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/monitors/prof.cc.o.d"
  "/root/repo/src/monitors/refcount.cc" "src/CMakeFiles/flexcore.dir/monitors/refcount.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/monitors/refcount.cc.o.d"
  "/root/repo/src/monitors/sec.cc" "src/CMakeFiles/flexcore.dir/monitors/sec.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/monitors/sec.cc.o.d"
  "/root/repo/src/monitors/software.cc" "src/CMakeFiles/flexcore.dir/monitors/software.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/monitors/software.cc.o.d"
  "/root/repo/src/monitors/umc.cc" "src/CMakeFiles/flexcore.dir/monitors/umc.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/monitors/umc.cc.o.d"
  "/root/repo/src/monitors/watch.cc" "src/CMakeFiles/flexcore.dir/monitors/watch.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/monitors/watch.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/flexcore.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/CMakeFiles/flexcore.dir/sim/runner.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/sim/runner.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/flexcore.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/sim/system.cc.o.d"
  "/root/repo/src/synth/asic_model.cc" "src/CMakeFiles/flexcore.dir/synth/asic_model.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/synth/asic_model.cc.o.d"
  "/root/repo/src/synth/extension_synth.cc" "src/CMakeFiles/flexcore.dir/synth/extension_synth.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/synth/extension_synth.cc.o.d"
  "/root/repo/src/synth/fpga_model.cc" "src/CMakeFiles/flexcore.dir/synth/fpga_model.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/synth/fpga_model.cc.o.d"
  "/root/repo/src/synth/report.cc" "src/CMakeFiles/flexcore.dir/synth/report.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/synth/report.cc.o.d"
  "/root/repo/src/synth/resources.cc" "src/CMakeFiles/flexcore.dir/synth/resources.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/synth/resources.cc.o.d"
  "/root/repo/src/workloads/basicmath.cc" "src/CMakeFiles/flexcore.dir/workloads/basicmath.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/workloads/basicmath.cc.o.d"
  "/root/repo/src/workloads/bitcount.cc" "src/CMakeFiles/flexcore.dir/workloads/bitcount.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/workloads/bitcount.cc.o.d"
  "/root/repo/src/workloads/fft.cc" "src/CMakeFiles/flexcore.dir/workloads/fft.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/workloads/fft.cc.o.d"
  "/root/repo/src/workloads/gmac.cc" "src/CMakeFiles/flexcore.dir/workloads/gmac.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/workloads/gmac.cc.o.d"
  "/root/repo/src/workloads/qsort.cc" "src/CMakeFiles/flexcore.dir/workloads/qsort.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/workloads/qsort.cc.o.d"
  "/root/repo/src/workloads/scenarios.cc" "src/CMakeFiles/flexcore.dir/workloads/scenarios.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/workloads/scenarios.cc.o.d"
  "/root/repo/src/workloads/sha.cc" "src/CMakeFiles/flexcore.dir/workloads/sha.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/workloads/sha.cc.o.d"
  "/root/repo/src/workloads/stringsearch.cc" "src/CMakeFiles/flexcore.dir/workloads/stringsearch.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/workloads/stringsearch.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/flexcore.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/flexcore.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
