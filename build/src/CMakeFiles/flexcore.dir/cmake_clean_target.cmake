file(REMOVE_RECURSE
  "libflexcore.a"
)
