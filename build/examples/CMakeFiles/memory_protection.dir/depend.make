# Empty dependencies file for memory_protection.
# This may be replaced when dependencies are built.
