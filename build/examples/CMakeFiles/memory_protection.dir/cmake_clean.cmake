file(REMOVE_RECURSE
  "CMakeFiles/memory_protection.dir/memory_protection.cpp.o"
  "CMakeFiles/memory_protection.dir/memory_protection.cpp.o.d"
  "memory_protection"
  "memory_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
