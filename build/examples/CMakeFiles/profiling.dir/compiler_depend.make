# Empty compiler generated dependencies file for profiling.
# This may be replaced when dependencies are built.
