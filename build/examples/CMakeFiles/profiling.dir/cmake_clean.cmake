file(REMOVE_RECURSE
  "CMakeFiles/profiling.dir/profiling.cpp.o"
  "CMakeFiles/profiling.dir/profiling.cpp.o.d"
  "profiling"
  "profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
