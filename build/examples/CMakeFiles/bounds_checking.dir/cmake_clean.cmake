file(REMOVE_RECURSE
  "CMakeFiles/bounds_checking.dir/bounds_checking.cpp.o"
  "CMakeFiles/bounds_checking.dir/bounds_checking.cpp.o.d"
  "bounds_checking"
  "bounds_checking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_checking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
