# Empty compiler generated dependencies file for bounds_checking.
# This may be replaced when dependencies are built.
