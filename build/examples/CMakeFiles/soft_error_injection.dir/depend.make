# Empty dependencies file for soft_error_injection.
# This may be replaced when dependencies are built.
