file(REMOVE_RECURSE
  "CMakeFiles/soft_error_injection.dir/soft_error_injection.cpp.o"
  "CMakeFiles/soft_error_injection.dir/soft_error_injection.cpp.o.d"
  "soft_error_injection"
  "soft_error_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_error_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
