# Empty dependencies file for watchpoints.
# This may be replaced when dependencies are built.
