file(REMOVE_RECURSE
  "CMakeFiles/watchpoints.dir/watchpoints.cpp.o"
  "CMakeFiles/watchpoints.dir/watchpoints.cpp.o.d"
  "watchpoints"
  "watchpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watchpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
