# Empty compiler generated dependencies file for watchpoints.
# This may be replaced when dependencies are built.
