file(REMOVE_RECURSE
  "CMakeFiles/taint_tracking.dir/taint_tracking.cpp.o"
  "CMakeFiles/taint_tracking.dir/taint_tracking.cpp.o.d"
  "taint_tracking"
  "taint_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taint_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
