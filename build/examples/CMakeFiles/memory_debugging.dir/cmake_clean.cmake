file(REMOVE_RECURSE
  "CMakeFiles/memory_debugging.dir/memory_debugging.cpp.o"
  "CMakeFiles/memory_debugging.dir/memory_debugging.cpp.o.d"
  "memory_debugging"
  "memory_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
