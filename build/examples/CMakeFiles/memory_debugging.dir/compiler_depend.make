# Empty compiler generated dependencies file for memory_debugging.
# This may be replaced when dependencies are built.
